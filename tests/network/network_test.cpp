#include "network/network.hpp"

#include <gtest/gtest.h>

#include "fsp/builder.hpp"

namespace ccfsp {
namespace {

Network two_process_net() {
  auto alphabet = std::make_shared<Alphabet>();
  Fsp p = FspBuilder(alphabet, "P").trans("0", "a", "1").build();
  Fsp q = FspBuilder(alphabet, "Q").trans("0", "a", "1").build();
  std::vector<Fsp> v;
  v.push_back(std::move(p));
  v.push_back(std::move(q));
  return Network(alphabet, std::move(v));
}

TEST(Network, AcceptsPairwiseSharing) {
  Network net = two_process_net();
  EXPECT_EQ(net.size(), 2u);
  EXPECT_EQ(net.total_states(), 4u);
  EXPECT_EQ(net.comm_graph().num_edges(), 1u);
}

TEST(Network, RejectsActionInOneProcess) {
  auto alphabet = std::make_shared<Alphabet>();
  Fsp p = FspBuilder(alphabet, "P").trans("0", "a", "1").build();
  Fsp q = FspBuilder(alphabet, "Q").trans("0", "b", "1").trans("1", "a", "2").build();
  std::vector<Fsp> v;
  v.push_back(std::move(p));
  v.push_back(std::move(q));
  // "b" appears only in Q.
  EXPECT_THROW(Network(alphabet, std::move(v)), std::logic_error);
}

TEST(Network, RejectsActionInThreeProcesses) {
  auto alphabet = std::make_shared<Alphabet>();
  std::vector<Fsp> v;
  for (int i = 0; i < 3; ++i) {
    v.push_back(FspBuilder(alphabet, "P" + std::to_string(i)).trans("0", "a", "1").build());
  }
  EXPECT_THROW(Network(alphabet, std::move(v)), std::logic_error);
}

TEST(Network, RejectsForeignAlphabet) {
  auto a1 = std::make_shared<Alphabet>();
  auto a2 = std::make_shared<Alphabet>();
  Fsp p = FspBuilder(a1, "P").trans("0", "x", "1").build();
  Fsp q = FspBuilder(a2, "Q").trans("0", "x", "1").build();
  std::vector<Fsp> v;
  v.push_back(std::move(p));
  v.push_back(std::move(q));
  EXPECT_THROW(Network(a1, std::move(v)), std::logic_error);
}

TEST(Network, SharedActionsAndEdgeLabels) {
  auto alphabet = std::make_shared<Alphabet>();
  Fsp p = FspBuilder(alphabet, "P").trans("0", "a", "1").trans("1", "b", "2").build();
  Fsp q = FspBuilder(alphabet, "Q").trans("0", "a", "1").trans("1", "b", "2").build();
  std::vector<Fsp> v;
  v.push_back(std::move(p));
  v.push_back(std::move(q));
  Network net(alphabet, std::move(v));
  EXPECT_EQ(net.shared_actions(0, 1).count(), 2u);
}

TEST(Network, TreeAndShapePredicates) {
  auto alphabet = std::make_shared<Alphabet>();
  std::vector<Fsp> v;
  // Chain P0 - P1 - P2.
  v.push_back(FspBuilder(alphabet, "P0").trans("0", "x01", "1").build());
  v.push_back(FspBuilder(alphabet, "P1").trans("0", "x01", "1").trans("1", "x12", "2").build());
  v.push_back(FspBuilder(alphabet, "P2").trans("0", "x12", "1").build());
  Network net(alphabet, std::move(v));
  EXPECT_TRUE(net.is_tree_network());
  EXPECT_FALSE(net.is_ring_network());
  EXPECT_TRUE(net.all_linear());
  EXPECT_TRUE(net.all_trees());
  EXPECT_TRUE(net.all_acyclic());
}

TEST(Network, DotContainsProcessNames) {
  Network net = two_process_net();
  std::string dot = net.to_dot();
  EXPECT_NE(dot.find("\"P\""), std::string::npos);
  EXPECT_NE(dot.find("\"Q\""), std::string::npos);
  EXPECT_NE(dot.find("a"), std::string::npos);
}

}  // namespace
}  // namespace ccfsp
