#include "network/families.hpp"

#include <gtest/gtest.h>

namespace ccfsp {
namespace {

TEST(Families, Figure3Shape) {
  Network net = figure3_network();
  EXPECT_EQ(net.size(), 2u);
  EXPECT_TRUE(net.process(0).is_linear());
  EXPECT_TRUE(net.process(1).is_tree());
  EXPECT_TRUE(net.process(1).has_tau_moves());
}

TEST(Families, SeparationNetworkShape) {
  Network net = success_separation_network();
  EXPECT_EQ(net.size(), 3u);
  EXPECT_TRUE(net.is_tree_network());
  EXPECT_FALSE(net.process(0).has_tau_moves());  // P plays the game
  EXPECT_TRUE(net.process(0).is_tree());
  EXPECT_TRUE(net.all_acyclic());
}

class PhilosophersTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PhilosophersTest, IsSection4RingOfCyclicProcesses) {
  std::size_t n = GetParam();
  Network net = dining_philosophers(n);
  EXPECT_EQ(net.size(), 2 * n);
  for (std::size_t i = 0; i < net.size(); ++i) {
    EXPECT_FALSE(net.process(i).has_leaves()) << net.process(i).name();
    EXPECT_FALSE(net.process(i).has_tau_moves());
    EXPECT_FALSE(net.process(i).is_acyclic());
  }
  if (n >= 3) {
    EXPECT_TRUE(net.is_ring_network());
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, PhilosophersTest, ::testing::Values(2, 3, 4, 5));

TEST(Families, TokenRingShape) {
  Network net = token_ring(4);
  EXPECT_EQ(net.size(), 4u);
  EXPECT_TRUE(net.is_ring_network());
  for (std::size_t i = 0; i < net.size(); ++i) {
    EXPECT_FALSE(net.process(i).has_leaves());
    EXPECT_EQ(net.process(i).num_states(), 2u);
  }
}

TEST(Families, MultiplyByTwoChainShape) {
  Network net = multiply_by_2_chain(5);
  EXPECT_EQ(net.size(), 5u);
  EXPECT_TRUE(net.is_tree_network());
  // Every C_N edge carries exactly one symbol (the Theorem 4 hypothesis).
  for (auto [i, j] : net.comm_graph().edges()) {
    EXPECT_EQ(net.shared_actions(i, j).count(), 1u);
  }
  // Root and middles are leafless cyclic; the budget end deliberately not.
  EXPECT_FALSE(net.process(0).has_leaves());
  EXPECT_TRUE(net.process(net.size() - 1).has_leaves());
}

TEST(Families, SizeValidation) {
  EXPECT_THROW(dining_philosophers(1), std::invalid_argument);
  EXPECT_THROW(token_ring(1), std::invalid_argument);
  EXPECT_THROW(multiply_by_2_chain(1), std::invalid_argument);
}

}  // namespace
}  // namespace ccfsp
