#include "network/ktree.hpp"

#include <gtest/gtest.h>

#include "network/generate.hpp"

namespace ccfsp {
namespace {

TEST(KTree, TreeNetworkIsOneTree) {
  Rng rng(5);
  NetworkGenOptions opt;
  opt.num_processes = 7;
  Network net = random_tree_network(rng, opt);
  ASSERT_TRUE(net.is_tree_network());
  auto part = ktree_partition(net);
  EXPECT_EQ(part.width, 1u);
  EXPECT_EQ(part.parts.size(), 7u);
  EXPECT_TRUE(is_valid_ktree_partition(net, part));
}

TEST(KTree, RingNetworkPartitionsIntoSmallParts) {
  // Figure 8a: a ring is a 2-tree. Our block-cut partition puts the whole
  // ring (one biconnected component) into a single part; the paper's 2-tree
  // partition pairs processes up. Both must validate.
  Rng rng(6);
  NetworkGenOptions opt;
  opt.num_processes = 6;
  Network net = random_ring_network(rng, opt);
  ASSERT_TRUE(net.is_ring_network());

  auto part = ktree_partition(net);
  EXPECT_TRUE(is_valid_ktree_partition(net, part));
  // One biconnected component covering the ring.
  EXPECT_EQ(part.width, 6u);

  // The paper's Figure 8a folding: pair opposite sides of the ring so the
  // quotient is a path ({0}, {1,5}, {2,4}, {3}). A contiguous chunking like
  // {0,1},{2,3},{4,5} would leave a quotient cycle and must be rejected.
  KTreePartition fold;
  fold.parts = {{0}, {1, 5}, {2, 4}, {3}};
  fold.quotient_edges = {{0, 1}, {1, 2}, {2, 3}};
  fold.width = 2;
  EXPECT_TRUE(is_valid_ktree_partition(net, fold));

  KTreePartition chunks;
  chunks.parts = {{0, 1}, {2, 3}, {4, 5}};
  chunks.quotient_edges = {{0, 1}, {1, 2}};
  chunks.width = 2;
  EXPECT_FALSE(is_valid_ktree_partition(net, chunks));
}

TEST(KTree, InvalidPartitionsRejected) {
  Rng rng(7);
  NetworkGenOptions opt;
  opt.num_processes = 4;
  Network net = random_ring_network(rng, opt);

  KTreePartition overlap;
  overlap.parts = {{0, 1}, {1, 2}, {3}};
  EXPECT_FALSE(is_valid_ktree_partition(net, overlap));

  KTreePartition missing;
  missing.parts = {{0, 1}, {2}};
  EXPECT_FALSE(is_valid_ktree_partition(net, missing));

  // Singletons on a ring: the quotient contains the ring cycle.
  KTreePartition cyclic;
  cyclic.parts = {{0}, {1}, {2}, {3}};
  EXPECT_FALSE(is_valid_ktree_partition(net, cyclic));
}

TEST(KTree, PartOfFindsOwner) {
  Rng rng(8);
  NetworkGenOptions opt;
  opt.num_processes = 5;
  Network net = random_tree_network(rng, opt);
  auto part = ktree_partition(net);
  for (std::size_t i = 0; i < net.size(); ++i) {
    std::size_t p = part.part_of(i);
    bool found = false;
    for (std::size_t v : part.parts[p]) found |= v == i;
    EXPECT_TRUE(found);
  }
  EXPECT_THROW(part.part_of(99), std::out_of_range);
}

TEST(KTree, RandomizedPartitionsAlwaysValid) {
  for (std::uint64_t seed = 0; seed < 15; ++seed) {
    Rng rng(seed);
    NetworkGenOptions opt;
    opt.num_processes = 3 + rng.below(8);
    Network net = seed % 2 ? random_tree_network(rng, opt) : random_ring_network(rng, opt);
    auto part = ktree_partition(net);
    EXPECT_TRUE(is_valid_ktree_partition(net, part)) << "seed " << seed;
  }
}

}  // namespace
}  // namespace ccfsp
