#include "algebra/compose.hpp"

#include <gtest/gtest.h>

#include "fsp/builder.hpp"
#include "fsp/generate.hpp"
#include "network/generate.hpp"
#include "semantics/lang.hpp"

namespace ccfsp {
namespace {

class ComposeTest : public ::testing::Test {
 protected:
  AlphabetPtr alphabet = std::make_shared<Alphabet>();
};

TEST_F(ComposeTest, HandshakeSynchronizes) {
  Fsp p = FspBuilder(alphabet, "P").trans("0", "a", "1").build();
  Fsp q = FspBuilder(alphabet, "Q").trans("0", "a", "1").build();
  Fsp prod = reachable_product(p, q);
  // (0,0) -a-> (1,1): two states, one synchronized transition.
  EXPECT_EQ(prod.num_states(), 2u);
  EXPECT_EQ(prod.num_transitions(), 1u);
  EXPECT_EQ(prod.out(prod.start())[0].action, *alphabet->find("a"));

  Fsp comp = compose(p, q);
  EXPECT_EQ(comp.num_transitions(), 1u);
  EXPECT_EQ(comp.out(comp.start())[0].action, kTau);  // hidden
  EXPECT_TRUE(comp.sigma().empty());
}

TEST_F(ComposeTest, PrivateMovesInterleave) {
  Fsp p = FspBuilder(alphabet, "P").trans("0", "a", "1").build();
  Fsp q = FspBuilder(alphabet, "Q").trans("0", "b", "1").build();
  // No shared symbols: full interleaving diamond.
  Fsp prod = reachable_product(p, q);
  EXPECT_EQ(prod.num_states(), 4u);
  EXPECT_EQ(prod.num_transitions(), 4u);
}

TEST_F(ComposeTest, MismatchedHandshakeBlocks) {
  Fsp p = FspBuilder(alphabet, "P").trans("0", "a", "1").trans("1", "b", "2").build();
  Fsp q = FspBuilder(alphabet, "Q").trans("0", "b", "1").trans("1", "a", "2").build();
  // P insists a-then-b, Q insists b-then-a: deadlock at the start.
  Fsp prod = reachable_product(p, q);
  EXPECT_EQ(prod.num_states(), 1u);
  EXPECT_TRUE(prod.is_leaf(prod.start()));
}

TEST_F(ComposeTest, FullProductContainsUnreachablePairs) {
  Fsp p = FspBuilder(alphabet, "P").trans("0", "a", "1").build();
  Fsp q = FspBuilder(alphabet, "Q").trans("0", "a", "1").build();
  Fsp full = full_product(p, q);
  EXPECT_EQ(full.num_states(), 4u);  // includes (0,1) and (1,0)
  EXPECT_EQ(full.trimmed().num_states(), 2u);
}

TEST_F(ComposeTest, TauMovesAreAlwaysPrivate) {
  Fsp p = FspBuilder(alphabet, "P").trans("0", "tau", "1").trans("1", "a", "2").build();
  Fsp q = FspBuilder(alphabet, "Q").trans("0", "a", "1").build();
  Fsp prod = reachable_product(p, q);
  // (0,0) -tau-> (1,0) -a-> (2,1).
  EXPECT_EQ(prod.num_states(), 3u);
  EXPECT_EQ(prod.num_transitions(), 2u);
}

TEST_F(ComposeTest, CompositionSigmaIsSymmetricDifference) {
  Fsp p = FspBuilder(alphabet, "P").trans("0", "a", "1").trans("1", "x", "2").build();
  Fsp q = FspBuilder(alphabet, "Q").trans("0", "a", "1").trans("1", "y", "2").build();
  Fsp comp = compose(p, q);
  ActionSet sigma = comp.sigma_set();
  EXPECT_FALSE(sigma.test(*alphabet->find("a")));
  EXPECT_TRUE(sigma.test(*alphabet->find("x")));
  EXPECT_TRUE(sigma.test(*alphabet->find("y")));
}

TEST_F(ComposeTest, DeclaredButUnusedSymbolsSurvive) {
  // Symbols the composite can no longer exercise must stay in Sigma, or a
  // later composition would let a partner run unsynchronized.
  Fsp p = FspBuilder(alphabet, "P").trans("0", "a", "1").action("z").build();
  Fsp q = FspBuilder(alphabet, "Q").trans("0", "a", "1").build();
  Fsp comp = compose(p, q);
  EXPECT_TRUE(comp.sigma_set().test(*alphabet->find("z")));
}

TEST_F(ComposeTest, Lemma1CommutativityByAtoms) {
  Rng rng(31);
  for (int iter = 0; iter < 10; ++iter) {
    std::vector<ActionId> shared{alphabet->intern("s" + std::to_string(iter))};
    std::vector<ActionId> pa = shared, pb = shared;
    pa.push_back(alphabet->intern("a" + std::to_string(iter)));
    pb.push_back(alphabet->intern("b" + std::to_string(iter)));
    TreeFspOptions opt;
    opt.num_states = 5;
    Fsp p = random_tree_fsp(rng, alphabet, pa, opt, "P");
    Fsp q = random_tree_fsp(rng, alphabet, pb, opt, "Q");
    EXPECT_TRUE(isomorphic_by_atoms(compose(p, q), compose(q, p)));
  }
}

TEST_F(ComposeTest, Lemma1AssociativityByAtoms) {
  // Three processes in a chain: P - Q - R.
  Fsp p = FspBuilder(alphabet, "Pa").trans("0", "pq", "1").build();
  Fsp q = FspBuilder(alphabet, "Qa")
              .trans("0", "pq", "1")
              .trans("1", "qr", "2")
              .build();
  Fsp r = FspBuilder(alphabet, "Ra").trans("0", "qr", "1").build();
  Fsp left = compose(compose(p, q), r);
  Fsp right = compose(p, compose(q, r));
  EXPECT_TRUE(isomorphic_by_atoms(left, right));
}

TEST_F(ComposeTest, Lemma1AssociativityRandomized) {
  Rng rng(77);
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    Rng srng(seed);
    NetworkGenOptions opt;
    opt.num_processes = 3;
    opt.states_per_process = 4;
    Network net = random_tree_network(srng, opt);
    const Fsp &a = net.process(0), &b = net.process(1), &c = net.process(2);
    EXPECT_TRUE(isomorphic_by_atoms(compose(compose(a, b), c), compose(a, compose(b, c))))
        << "seed " << seed;
  }
}

TEST_F(ComposeTest, ComposeAllFoldsEverything) {
  Fsp p = FspBuilder(alphabet, "Pf").trans("0", "m", "1").build();
  Fsp q = FspBuilder(alphabet, "Qf").trans("0", "m", "1").trans("1", "n", "2").build();
  Fsp r = FspBuilder(alphabet, "Rf").trans("0", "n", "1").build();
  Fsp all = compose_all({&p, &q, &r});
  // Global process: everything hidden, all moves tau.
  EXPECT_TRUE(all.sigma().empty());
  EXPECT_EQ(all.num_states(), 3u);  // (0,0,0) -> (1,1,0) -> (1,2,1)
}

TEST_F(ComposeTest, DifferentAlphabetsRejected) {
  auto other = std::make_shared<Alphabet>();
  Fsp p = FspBuilder(alphabet, "P").trans("0", "a", "1").build();
  Fsp q = FspBuilder(other, "Q").trans("0", "a", "1").build();
  EXPECT_THROW(compose(p, q), std::logic_error);
}

TEST_F(ComposeTest, IsomorphismDetectsDifferences) {
  Fsp p = FspBuilder(alphabet, "P").trans("0", "a", "1").build();
  Fsp q = FspBuilder(alphabet, "Q").trans("0", "a", "1").build();
  Fsp pq = compose(p, q);
  EXPECT_TRUE(isomorphic_by_atoms(pq, pq));
  Fsp r = FspBuilder(alphabet, "R").trans("0", "a", "1").build();
  EXPECT_FALSE(isomorphic_by_atoms(pq, compose(p, r)));  // different atoms
}

}  // namespace
}  // namespace ccfsp
