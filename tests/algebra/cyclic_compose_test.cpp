#include <gtest/gtest.h>

#include "algebra/compose.hpp"
#include "fsp/builder.hpp"
#include "semantics/lang.hpp"

namespace ccfsp {
namespace {

class CyclicComposeTest : public ::testing::Test {
 protected:
  AlphabetPtr alphabet = std::make_shared<Alphabet>();
};

TEST_F(CyclicComposeTest, NoDivergenceNoNewLeaves) {
  Fsp p = FspBuilder(alphabet, "P").trans("0", "a", "1").trans("1", "a", "0").build();
  Fsp q = FspBuilder(alphabet, "Q").trans("0", "a", "1").trans("1", "a", "0").build();
  Fsp plain = compose(p, q);
  Fsp cyc = cyclic_compose(p, q);
  // The composition alternates tau moves around a 2-cycle of taus... wait:
  // all moves are hidden handshakes, so the composite IS a tau cycle and
  // every state on it must gain a divergence leaf.
  EXPECT_GT(cyc.num_states(), plain.num_states());
  EXPECT_TRUE(cyc.has_leaves());
}

TEST_F(CyclicComposeTest, DivergenceLeafAddedBelowTauCycle) {
  // Q alone: a tau self-loop reachable after one visible action.
  Fsp q = FspBuilder(alphabet, "Q")
              .trans("0", "x", "1")
              .trans("1", "tau", "1")
              .build();
  Fsp augmented = add_divergence_leaves(q);
  // State 1 (and only state 1: state 0 cannot tau-reach the loop) gets the
  // escape leaf.
  EXPECT_EQ(augmented.num_states(), 3u);
  bool leaf_found = false;
  for (StateId s = 0; s < augmented.num_states(); ++s) {
    if (augmented.is_leaf(s)) leaf_found = true;
  }
  EXPECT_TRUE(leaf_found);
  // Lang unchanged by the augmentation.
  EXPECT_TRUE(lang_contains(augmented, {*alphabet->find("x")}));
  EXPECT_FALSE(lang_contains(augmented, {*alphabet->find("x"), *alphabet->find("x")}));
}

TEST_F(CyclicComposeTest, StatesReachingTauCycleViaTauAlsoGetLeaves) {
  Fsp q = FspBuilder(alphabet, "Q")
              .trans("0", "tau", "1")
              .trans("1", "tau", "2")
              .trans("2", "tau", "1")
              .trans("0", "a", "3")
              .trans("3", "a", "0")
              .build();
  Fsp augmented = add_divergence_leaves(q);
  // 0, 1, 2 are divergent (0 tau-reaches the {1,2} cycle); 3 is not.
  std::size_t divergent_taus = 0;
  for (StateId s = 0; s < 4; ++s) {
    for (const auto& t : augmented.out(s)) {
      if (t.action == kTau && augmented.is_leaf(t.target)) ++divergent_taus;
    }
  }
  EXPECT_EQ(divergent_taus, 3u);
}

TEST_F(CyclicComposeTest, IdempotentWhenNoCycles) {
  Fsp p = FspBuilder(alphabet, "P").trans("0", "a", "1").trans("1", "tau", "2").build();
  Fsp augmented = add_divergence_leaves(p);
  EXPECT_EQ(augmented.num_states(), p.num_states());
}

TEST_F(CyclicComposeTest, HiddenHandshakeCyclesBecomeDivergence) {
  // P and Q handshake on b forever while the outside only sees silence:
  // composition must offer the divergence leaf (Section 4's rationale).
  Fsp p = FspBuilder(alphabet, "P").trans("0", "b", "0").build();
  Fsp q = FspBuilder(alphabet, "Q")
              .trans("0", "b", "0")
              .trans("0", "c", "0")
              .build();
  Fsp cyc = cyclic_compose(p, q);
  bool has_divergence_leaf = false;
  for (StateId s = 0; s < cyc.num_states(); ++s) {
    if (cyc.is_leaf(s)) has_divergence_leaf = true;
  }
  EXPECT_TRUE(has_divergence_leaf);
  // And the composite still offers the outside action c forever.
  ActionId c = *alphabet->find("c");
  EXPECT_TRUE(lang_contains(cyc, {c, c, c}));
}

TEST_F(CyclicComposeTest, CyclicComposeAllAssociativeUpToLanguage) {
  Fsp a = FspBuilder(alphabet, "A").trans("0", "m", "0").build();
  Fsp b = FspBuilder(alphabet, "B")
              .trans("0", "m", "1")
              .trans("1", "n", "0")
              .build();
  Fsp c = FspBuilder(alphabet, "C").trans("0", "n", "0").build();
  Fsp left = cyclic_compose(cyclic_compose(a, b), c);
  Fsp right = cyclic_compose(a, cyclic_compose(b, c));
  // Exact state naming differs (divergence leaves are fresh), but the
  // observable language must agree: both are fully hidden systems.
  EXPECT_TRUE(left.sigma().empty());
  EXPECT_TRUE(right.sigma().empty());
  EXPECT_EQ(left.has_leaves(), right.has_leaves());
}

}  // namespace
}  // namespace ccfsp
