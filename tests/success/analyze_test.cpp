// The degradation ladder: correct rung selection, agreement with the direct
// deciders, graceful budget exhaustion, and — crucially for a resource
// governor — determinism: the same network under the same budget must
// produce the identical outcome and rung trace, run after run.
#include "success/analyze.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>

#include "network/families.hpp"
#include "network/generate.hpp"
#include "success/cyclic.hpp"
#include "success/linear.hpp"
#include "success/tree_pipeline.hpp"
#include "util/failpoint.hpp"
#include "util/rng.hpp"

namespace ccfsp {
namespace {

TEST(Analyze, LinearNetworkDecidedByLinearRung) {
  Network net = wave_chain_network(5, 3);
  AnalysisReport r = analyze(net, 0);
  ASSERT_EQ(r.status, OutcomeStatus::kDecided);
  ASSERT_TRUE(r.decided_by.has_value());
  EXPECT_EQ(*r.decided_by, Rung::kLinear);
  EXPECT_FALSE(r.cyclic_semantics);

  bool expect = linear_network_success(net, 0);
  EXPECT_EQ(r.verdict.unavoidable_success, expect);
  EXPECT_EQ(r.verdict.success_collab, expect);
  if (r.verdict.adversity_applicable) {
    EXPECT_EQ(r.verdict.success_adversity, expect);
  }
}

TEST(Analyze, AcyclicNonLinearFallsThroughToTree) {
  Network net = figure3_network();
  ASSERT_TRUE(net.all_acyclic());
  AnalysisReport r = analyze(net, 0);
  ASSERT_EQ(r.status, OutcomeStatus::kDecided);
  // The linear rung must have been tried and reported inapplicable.
  ASSERT_GE(r.rungs.size(), 2u);
  EXPECT_EQ(r.rungs[0].rung, Rung::kLinear);
  EXPECT_EQ(r.rungs[0].status, OutcomeStatus::kUnsupported);
  EXPECT_FALSE(r.rungs[0].detail.empty());

  Theorem3Result direct = theorem3_decide(net, 0);
  EXPECT_EQ(r.verdict.unavoidable_success, direct.unavoidable_success);
  EXPECT_EQ(r.verdict.success_collab, direct.success_collab);
}

TEST(Analyze, CyclicNetworkUsesSectionFourLadder) {
  Network net = dining_philosophers(3);
  AnalysisReport r = analyze(net, 0);
  EXPECT_TRUE(r.cyclic_semantics);
  ASSERT_EQ(r.status, OutcomeStatus::kDecided);
  for (const RungOutcome& ro : r.rungs) {
    EXPECT_TRUE(ro.rung == Rung::kUnary || ro.rung == Rung::kHeuristic ||
                ro.rung == Rung::kExplicit);
  }
  CyclicDecision direct = cyclic_decide_explicit(net, 0);
  EXPECT_EQ(r.verdict.unavoidable_success, !direct.potential_blocking);
  EXPECT_EQ(r.verdict.success_collab, direct.success_collab);
  if (direct.success_adversity.has_value() && r.verdict.success_adversity.has_value()) {
    EXPECT_EQ(*r.verdict.success_adversity, *direct.success_adversity);
  }
}

TEST(Analyze, ExplicitRungMatchesCyclicExplicitDecider) {
  Network net = token_ring(3);
  AnalyzeOptions opt;
  opt.rungs = {Rung::kExplicit};
  AnalysisReport r = analyze(net, 0, opt);
  ASSERT_EQ(r.status, OutcomeStatus::kDecided);
  ASSERT_TRUE(r.decided_by.has_value());
  EXPECT_EQ(*r.decided_by, Rung::kExplicit);

  CyclicDecision direct = cyclic_decide_explicit(net, 0);
  EXPECT_EQ(r.verdict.unavoidable_success, !direct.potential_blocking);
  EXPECT_EQ(r.verdict.success_collab, direct.success_collab);
}

TEST(Analyze, TinyBudgetExhaustsGracefullyWithPartialTrace) {
  Network net = dining_philosophers(4);
  AnalyzeOptions opt;
  opt.budget = Budget::with_states(8);
  AnalysisReport r = analyze(net, 0, opt);
  EXPECT_EQ(r.status, OutcomeStatus::kBudgetExhausted);
  // Every attempted rung is in the trace with a classified outcome.
  ASSERT_FALSE(r.rungs.empty());
  bool some_exhausted = false;
  for (const RungOutcome& ro : r.rungs) {
    some_exhausted |= ro.status == OutcomeStatus::kBudgetExhausted;
  }
  EXPECT_TRUE(some_exhausted);
}

TEST(Analyze, PartialVerdictSurvivesLaterExhaustion) {
  // unary answers S_c on the multiply-by-2 chain; with a state budget too
  // small for the heuristic/explicit rungs, S_c must still be reported.
  Network net = multiply_by_2_chain(4);
  AnalyzeOptions opt;
  opt.budget = Budget::with_states(4);
  AnalysisReport r = analyze(net, 0, opt);
  if (r.status == OutcomeStatus::kBudgetExhausted) {
    EXPECT_TRUE(r.verdict.success_collab.has_value())
        << "the unary rung's S_c answer should survive later rungs' exhaustion";
  }
}

TEST(Analyze, InvalidIndexIsInvalidInput) {
  Network net = wave_chain_network(3, 2);
  AnalysisReport r = analyze(net, 99);
  EXPECT_EQ(r.status, OutcomeStatus::kInvalidInput);
}

TEST(Analyze, RequestedInapplicableRungsAreRecordedNotSkipped) {
  Network net = dining_philosophers(3);  // cyclic
  AnalyzeOptions opt;
  opt.rungs = {Rung::kLinear, Rung::kTree, Rung::kExplicit};
  AnalysisReport r = analyze(net, 0, opt);
  ASSERT_EQ(r.rungs.size(), 3u);
  EXPECT_EQ(r.rungs[0].status, OutcomeStatus::kUnsupported);  // not all-linear
  EXPECT_EQ(r.rungs[1].status, OutcomeStatus::kUnsupported);  // cyclic input
  EXPECT_EQ(r.rungs[2].status, OutcomeStatus::kDecided);
}

/// The determinism contract: identical inputs + identical state budgets =>
/// identical report, bit for bit. (Deadlines are inherently racy, so the
/// guarantee is stated for state/byte budgets; see docs/robustness.md.)
void expect_identical_reports(const Network& net, std::size_t p, const AnalyzeOptions& opt) {
  AnalysisReport a = analyze(net, p, opt);
  AnalysisReport b = analyze(net, p, opt);
  EXPECT_EQ(a.status, b.status);
  EXPECT_EQ(a.cyclic_semantics, b.cyclic_semantics);
  EXPECT_EQ(a.decided_by.has_value(), b.decided_by.has_value());
  if (a.decided_by && b.decided_by) EXPECT_EQ(*a.decided_by, *b.decided_by);
  EXPECT_EQ(a.verdict.unavoidable_success, b.verdict.unavoidable_success);
  EXPECT_EQ(a.verdict.success_collab, b.verdict.success_collab);
  EXPECT_EQ(a.verdict.success_adversity, b.verdict.success_adversity);
  ASSERT_EQ(a.rungs.size(), b.rungs.size());
  for (std::size_t i = 0; i < a.rungs.size(); ++i) {
    EXPECT_EQ(a.rungs[i].rung, b.rungs[i].rung) << "rung " << i;
    EXPECT_EQ(a.rungs[i].status, b.rungs[i].status) << "rung " << i;
    EXPECT_EQ(a.rungs[i].states_charged, b.rungs[i].states_charged) << "rung " << i;
    EXPECT_EQ(a.rungs[i].detail, b.rungs[i].detail) << "rung " << i;
  }
}

TEST(AnalyzeDeterminism, SameBudgetSameTrace) {
  {
    Network net = dining_philosophers(4);
    for (std::size_t cap : {std::size_t{4}, std::size_t{64}, std::size_t{1} << 16}) {
      AnalyzeOptions opt;
      opt.budget = Budget::with_states(cap);
      expect_identical_reports(net, 0, opt);
    }
  }
  {
    Rng rng(0x5eed);
    Network net = wave_tree_network(rng, 6, 3);
    AnalyzeOptions opt;
    opt.budget = Budget::with_states(1u << 14);
    opt.rungs = {Rung::kExplicit};  // force the nondeterminism-prone rung
    expect_identical_reports(net, 0, opt);
  }
  {
    Network net = figure3_network();
    AnalyzeOptions opt;
    opt.budget = Budget::with_states(1u << 12);
    expect_identical_reports(net, 0, opt);
  }
}

// The rung trace must never lose the budget dimension: every record whose
// status is kBudgetExhausted — first attempts, escalated retries, and the
// skip markers for rungs never started — carries the wall that tripped.
TEST(AnalyzeBudgetReason, EveryEscalatedAttemptCarriesTheDimension) {
  failpoint::ScopedDisarm guard;
  failpoint::Spec s;
  s.action = failpoint::Action::kThrowBudget;
  s.dimension = failpoint::BudgetKind::kBytes;
  s.trigger = failpoint::Trigger::kEveryK;
  s.n = 1;  // every attempt trips
  failpoint::arm("analyze.rung", s);

  Network net = figure3_network();
  AnalyzeOptions opt;
  opt.rungs = {Rung::kTree};
  opt.retries = 2;
  AnalysisReport r = analyze(net, 0, opt);

  ASSERT_EQ(r.rungs.size(), 3u);  // first try + two escalated retries
  for (unsigned i = 0; i < 3; ++i) {
    EXPECT_EQ(r.rungs[i].rung, Rung::kTree);
    EXPECT_EQ(r.rungs[i].attempt, i);
    EXPECT_EQ(r.rungs[i].status, OutcomeStatus::kBudgetExhausted);
    EXPECT_EQ(r.rungs[i].budget_reason, BudgetDimension::kBytes) << "attempt " << i;
  }
  EXPECT_EQ(r.status, OutcomeStatus::kBudgetExhausted);
}

TEST(AnalyzeBudgetReason, SkipMarkerCarriesTheSpentDimension) {
  // A cancellation mid-rung dooms every later rung; the pre-rung skip
  // marker must say *which* wall was spent, like any other attempt record.
  failpoint::ScopedDisarm guard;
  CancelToken token;
  failpoint::Spec s;
  s.action = failpoint::Action::kCallback;
  s.trigger = failpoint::Trigger::kOnHit;
  s.n = 1;
  s.callback = [token](const char*, std::uint64_t) {
    token.cancel();
    throw BudgetExceeded(BudgetDimension::kCancelled, "analyze.rung", 0, 0);
  };
  failpoint::arm("analyze.rung", s);

  Network net = figure3_network();
  AnalyzeOptions opt;
  opt.budget.watch(token);
  opt.rungs = {Rung::kTree, Rung::kExplicit};
  AnalysisReport r = analyze(net, 0, opt);

  ASSERT_EQ(r.rungs.size(), 2u);
  EXPECT_EQ(r.rungs[0].rung, Rung::kTree);
  EXPECT_EQ(r.rungs[0].budget_reason, BudgetDimension::kCancelled);
  // The skip marker for the never-started explicit rung: this is the record
  // that used to come out with budget_reason == kNone.
  EXPECT_EQ(r.rungs[1].rung, Rung::kExplicit);
  EXPECT_EQ(r.rungs[1].status, OutcomeStatus::kBudgetExhausted);
  EXPECT_EQ(r.rungs[1].budget_reason, BudgetDimension::kCancelled);
  EXPECT_EQ(r.rungs[1].states_charged, 0u);
  for (const RungOutcome& ro : r.rungs) {
    if (ro.status == OutcomeStatus::kBudgetExhausted) {
      EXPECT_NE(ro.budget_reason, BudgetDimension::kNone);
    }
  }
}

TEST(AnalyzeBudgetReason, RealDeadlineSkipMarkerCarriesDeadline) {
  // Same property without failpoints: an already-spent deadline makes the
  // very first rung a skip marker carrying kDeadline.
  Network net = figure3_network();
  AnalyzeOptions opt;
  opt.budget.limit_duration(std::chrono::milliseconds(0));
  AnalysisReport r = analyze(net, 0, opt);
  ASSERT_EQ(r.rungs.size(), 1u);
  EXPECT_EQ(r.rungs[0].status, OutcomeStatus::kBudgetExhausted);
  EXPECT_EQ(r.rungs[0].budget_reason, BudgetDimension::kDeadline);
  EXPECT_EQ(r.status, OutcomeStatus::kBudgetExhausted);
}

}  // namespace
}  // namespace ccfsp
