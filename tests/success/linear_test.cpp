#include "success/linear.hpp"

#include <gtest/gtest.h>

#include "fsp/builder.hpp"
#include "network/generate.hpp"
#include "success/baseline.hpp"
#include "success/game.hpp"

namespace ccfsp {
namespace {

TEST(Linear, HappyChainSucceeds) {
  auto alphabet = std::make_shared<Alphabet>();
  std::vector<Fsp> procs;
  procs.push_back(FspBuilder(alphabet, "P").trans("0", "a", "1").trans("1", "b", "2").build());
  procs.push_back(FspBuilder(alphabet, "Q").trans("0", "a", "1").trans("1", "b", "2").build());
  Network net(alphabet, std::move(procs));
  EXPECT_TRUE(linear_network_success(net, 0));
}

TEST(Linear, OrderMismatchDeadlocks) {
  auto alphabet = std::make_shared<Alphabet>();
  std::vector<Fsp> procs;
  procs.push_back(FspBuilder(alphabet, "P").trans("0", "a", "1").trans("1", "b", "2").build());
  procs.push_back(FspBuilder(alphabet, "Q").trans("0", "b", "1").trans("1", "a", "2").build());
  Network net(alphabet, std::move(procs));
  EXPECT_FALSE(linear_network_success(net, 0));
}

TEST(Linear, UnmatchedOccurrenceKillsSuffix) {
  // P says a a; Q says a only: P's second a can never fire.
  auto alphabet = std::make_shared<Alphabet>();
  std::vector<Fsp> procs;
  procs.push_back(FspBuilder(alphabet, "P").trans("0", "a", "1").trans("1", "a", "2").build());
  procs.push_back(FspBuilder(alphabet, "Q").trans("0", "a", "1").build());
  Network net(alphabet, std::move(procs));
  EXPECT_FALSE(linear_network_success(net, 0));
  // Q, on the other hand, completes fine.
  EXPECT_TRUE(linear_network_success(net, 1));
}

TEST(Linear, IrrelevantDeadlockElsewhereDoesNotHurtP) {
  // P talks to Q and finishes; R and S deadlock with each other.
  auto alphabet = std::make_shared<Alphabet>();
  std::vector<Fsp> procs;
  procs.push_back(FspBuilder(alphabet, "P").trans("0", "a", "1").build());
  procs.push_back(FspBuilder(alphabet, "Q").trans("0", "a", "1").build());
  procs.push_back(FspBuilder(alphabet, "R").trans("0", "x", "1").trans("1", "y", "2").build());
  procs.push_back(FspBuilder(alphabet, "S").trans("0", "y", "1").trans("1", "x", "2").build());
  Network net(alphabet, std::move(procs));
  EXPECT_TRUE(linear_network_success(net, 0));
  EXPECT_FALSE(linear_network_success(net, 2));
}

TEST(Linear, TauOnlyProcessSucceedsTrivially) {
  auto alphabet = std::make_shared<Alphabet>();
  std::vector<Fsp> procs;
  procs.push_back(FspBuilder(alphabet, "P").trans("0", "tau", "1").action("a").build());
  procs.push_back(FspBuilder(alphabet, "Q").state("0").action("a").build());
  Network net(alphabet, std::move(procs));
  EXPECT_TRUE(linear_network_success(net, 0));
}

TEST(Linear, RejectsNonLinearProcess) {
  auto alphabet = std::make_shared<Alphabet>();
  std::vector<Fsp> procs;
  procs.push_back(FspBuilder(alphabet, "P").trans("0", "a", "1").trans("0", "b", "2").build());
  procs.push_back(FspBuilder(alphabet, "Q").trans("0", "a", "1").trans("1", "b", "2").build());
  Network net(alphabet, std::move(procs));
  EXPECT_THROW(linear_network_success(net, 0), std::logic_error);
}

class LinearRandomized : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LinearRandomized, AgreesWithGlobalBaselineAndGame) {
  // Proposition 1 says S_u = S_a = S_c for linear networks; check all three
  // against their oracles on random chains.
  Rng rng(GetParam());
  std::size_t m = 2 + rng.below(4);
  std::size_t len = 1 + rng.below(5);
  Network net = random_linear_chain_network(rng, m, len);
  for (std::size_t p = 0; p < net.size(); ++p) {
    bool fast = linear_network_success(net, p);
    bool s_c = success_collab_global(net, p);
    bool s_u = !potential_blocking_global(net, p);
    EXPECT_EQ(fast, s_c) << "seed " << GetParam() << " p " << p;
    EXPECT_EQ(fast, s_u) << "seed " << GetParam() << " p " << p;
    if (!net.process(p).has_tau_moves()) {
      EXPECT_EQ(fast, success_adversity_network(net, p))
          << "seed " << GetParam() << " p " << p;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LinearRandomized,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15,
                                           16, 17, 18, 19, 20));

}  // namespace
}  // namespace ccfsp
