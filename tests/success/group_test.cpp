#include "success/group.hpp"

#include <gtest/gtest.h>

#include "fsp/builder.hpp"
#include "network/families.hpp"
#include "success/baseline.hpp"

namespace ccfsp {
namespace {

TEST(Group, SingletonGroupMatchesPlainPredicates) {
  Network net = figure3_network();
  GroupSuccess g = group_success(net, {0});
  EXPECT_EQ(g.success_collab, success_collab_global(net, 0));
  EXPECT_EQ(g.unavoidable_success, !potential_blocking_global(net, 0));
}

TEST(Group, WholeNetworkGroupIsGlobalTermination) {
  // P and Q handshake to completion: the full group always terminates.
  auto alphabet = std::make_shared<Alphabet>();
  std::vector<Fsp> procs;
  procs.push_back(FspBuilder(alphabet, "P").trans("0", "a", "1").build());
  procs.push_back(FspBuilder(alphabet, "Q").trans("0", "a", "1").build());
  Network net(alphabet, std::move(procs));
  GroupSuccess g = group_success(net, {0, 1});
  EXPECT_TRUE(g.unavoidable_success);
  EXPECT_TRUE(g.success_collab);
}

TEST(Group, GroupStricterThanEachMember) {
  // Figure 3: P alone can succeed, but the group {P, Q} cannot always —
  // and when Q taus away it is stranded mid-path, so even S_c of the pair
  // depends on which leaf Q lands on. Q's tau branch ends at a leaf of Q,
  // so the group CAN jointly succeed; unavoidably, no.
  Network net = figure3_network();
  GroupSuccess g = group_success(net, {0, 1});
  EXPECT_FALSE(g.unavoidable_success);
  EXPECT_TRUE(g.success_collab);
}

TEST(Group, MemberStuckMakesGroupFail) {
  // P finishes; Q has an unmatched tail. {P} succeeds, {P, Q} never does.
  auto alphabet = std::make_shared<Alphabet>();
  std::vector<Fsp> procs;
  procs.push_back(FspBuilder(alphabet, "P").trans("0", "a", "1").action("never").build());
  procs.push_back(
      FspBuilder(alphabet, "Q").trans("0", "a", "1").trans("1", "never", "2").build());
  Network net(alphabet, std::move(procs));
  EXPECT_TRUE(group_success(net, {0}).unavoidable_success);
  GroupSuccess pair = group_success(net, {0, 1});
  EXPECT_FALSE(pair.success_collab);
  EXPECT_FALSE(pair.unavoidable_success);
}

TEST(Group, CyclicNetworksNeverParkTheGroup) {
  Network net = token_ring(3);
  GroupSuccess g = group_success(net, {0, 1, 2});
  EXPECT_FALSE(g.unavoidable_success);
  EXPECT_FALSE(g.success_collab);
}

TEST(Group, Validation) {
  Network net = figure3_network();
  EXPECT_THROW(group_success(net, {}), std::invalid_argument);
  EXPECT_THROW(group_success(net, {0, 0}), std::invalid_argument);
  EXPECT_THROW(group_success(net, {5}), std::invalid_argument);
}

}  // namespace
}  // namespace ccfsp
