#include "success/unary_sc.hpp"

#include <gtest/gtest.h>

#include "algebra/compose.hpp"
#include "fsp/builder.hpp"
#include "network/families.hpp"
#include "success/baseline.hpp"

namespace ccfsp {
namespace {

TEST(Theorem4Step, BudgetOnlyMachine) {
  // Machine s0 -c-> s1 -p-> s2 -p-> s0: with child budget L on c, the
  // parent bound is exactly 2L (the multiply-by-2 middle process).
  auto alphabet = std::make_shared<Alphabet>();
  Fsp machine = FspBuilder(alphabet, "M")
                    .trans("s0", "c", "s1")
                    .trans("s1", "p", "s2")
                    .trans("s2", "p", "s0")
                    .build();
  ActionId p = *alphabet->find("p");
  ActionId c = *alphabet->find("c");
  for (std::int64_t l : {0, 1, 2, 7}) {
    UnaryBound out = unary_reduction_step(machine, p, {{c, UnaryBound::of(BigInt(l))}});
    EXPECT_EQ(out, UnaryBound::of(BigInt(2 * l))) << l;
  }
  // Unlimited child -> unlimited parent.
  EXPECT_EQ(unary_reduction_step(machine, p, {{c, UnaryBound::inf()}}), UnaryBound::inf());
}

TEST(Theorem4Step, AgreesWithExplicitComposition) {
  // Cross-validate the ILP step against composing with an explicit budget
  // process and computing the bound on the composite.
  auto alphabet = std::make_shared<Alphabet>();
  Fsp machine = FspBuilder(alphabet, "M")
                    .trans("s0", "c", "s1")
                    .trans("s1", "p", "s2")
                    .trans("s2", "c", "s3")
                    .trans("s3", "p", "s0")
                    .trans("s1", "c", "s1")
                    .build();
  ActionId p = *alphabet->find("p");
  ActionId c = *alphabet->find("c");
  for (std::int64_t l = 0; l <= 6; ++l) {
    Fsp budget = unary_budget_fsp(alphabet, c, static_cast<std::size_t>(l), "B");
    Fsp composite = compose(machine, budget);
    UnaryBound expect = unary_bound_explicit(composite, p);
    UnaryBound got = unary_reduction_step(machine, p, {{c, UnaryBound::of(BigInt(l))}});
    EXPECT_EQ(got, expect) << "l=" << l;
  }
}

TEST(Theorem4Step, TwoChildBudgets) {
  // s0 -c1-> s1 -c2-> s2 -p-> s0: each p costs one of each child.
  auto alphabet = std::make_shared<Alphabet>();
  Fsp machine = FspBuilder(alphabet, "M")
                    .trans("s0", "c1", "s1")
                    .trans("s1", "c2", "s2")
                    .trans("s2", "p", "s0")
                    .build();
  ActionId p = *alphabet->find("p");
  UnaryBound out = unary_reduction_step(
      machine, p,
      {{*alphabet->find("c1"), UnaryBound::of(BigInt(5))},
       {*alphabet->find("c2"), UnaryBound::of(BigInt(3))}});
  EXPECT_EQ(out, UnaryBound::of(BigInt(3)));
}

TEST(Theorem4Step, UnusedBudgetSymbolIgnored) {
  auto alphabet = std::make_shared<Alphabet>();
  Fsp machine = FspBuilder(alphabet, "M").trans("s0", "p", "s1").build();
  ActionId p = *alphabet->find("p");
  ActionId ghost = alphabet->intern("ghost");
  UnaryBound out = unary_reduction_step(machine, p, {{ghost, UnaryBound::of(BigInt(0))}});
  EXPECT_EQ(out, UnaryBound::of(BigInt(1)));
}

TEST(Theorem4, MultiplyByTwoChainGivesExponentialBudget) {
  // The paper's flagship point: the root-edge budget is 2^(m-2), an O(m)-bit
  // number that must be carried in binary.
  for (std::size_t m : {2u, 3u, 4u, 6u, 10u, 34u}) {
    Network net = multiply_by_2_chain(m);
    UnaryScResult r = unary_success_collab(net, 0);
    ASSERT_EQ(r.root_budgets.size(), 1u) << m;
    ASSERT_FALSE(r.root_budgets[0].second.infinite) << m;
    EXPECT_EQ(r.root_budgets[0].second.count, BigInt::pow2(m - 2)) << m;
    // Root loops on a finite budget: it cannot run forever.
    EXPECT_FALSE(r.success_collab) << m;
  }
}

TEST(Theorem4, MultiplyByKChains) {
  // factor^(m-2) for other factors, including the degenerate factor 1.
  for (std::size_t k : {1u, 3u, 5u}) {
    Network net = multiply_by_k_chain(6, k);
    UnaryScResult r = unary_success_collab(net, 0);
    BigInt expect(1);
    for (int i = 0; i < 4; ++i) expect *= BigInt(static_cast<std::int64_t>(k));
    EXPECT_EQ(r.root_budgets[0].second.count, expect) << k;
  }
}

TEST(Theorem4, BigChainStaysPolynomial) {
  // 80 processes -> budget 2^78; explicit analysis would need ~2^78 states.
  Network net = multiply_by_2_chain(80);
  UnaryScResult r = unary_success_collab(net, 0);
  EXPECT_EQ(r.root_budgets[0].second.count, BigInt::pow2(78));
}

TEST(Theorem4, InfiniteContextMakesRootLive) {
  // Two mutually feeding loops: Root <-t1-> Feeder where the feeder allows
  // t1 forever: S_c holds.
  auto alphabet = std::make_shared<Alphabet>();
  std::vector<Fsp> procs;
  procs.push_back(FspBuilder(alphabet, "Root").trans("r", "t1", "r").build());
  procs.push_back(FspBuilder(alphabet, "Feeder").trans("f", "t1", "f").build());
  Network net(alphabet, std::move(procs));
  UnaryScResult r = unary_success_collab(net, 0);
  EXPECT_TRUE(r.success_collab);
  EXPECT_TRUE(r.root_budgets[0].second.infinite);
  // Sanity against the explicit cyclic decider.
  EXPECT_TRUE(success_collab_cyclic_global(net, 0));
}

TEST(Theorem4, MixedBudgetRoot) {
  // Root needs one bounded handshake to reach its free cycle.
  auto alphabet = std::make_shared<Alphabet>();
  std::vector<Fsp> procs;
  procs.push_back(FspBuilder(alphabet, "Root")
                      .trans("r0", "once", "r1")
                      .trans("r1", "free", "r1")
                      .build());
  procs.push_back(FspBuilder(alphabet, "OnceGiver").trans("b0", "once", "b1").build());
  procs.push_back(FspBuilder(alphabet, "FreeGiver").trans("f", "free", "f").build());
  Network net(alphabet, std::move(procs));
  UnaryScResult r = unary_success_collab(net, 0);
  EXPECT_TRUE(r.success_collab);

  // Starve the bounded handshake instead: no way to reach the free cycle.
  auto alphabet2 = std::make_shared<Alphabet>();
  std::vector<Fsp> procs2;
  procs2.push_back(FspBuilder(alphabet2, "Root")
                       .trans("r0", "once", "r1")
                       .trans("r1", "free", "r1")
                       .build());
  procs2.push_back([&] {
    FspBuilder b(alphabet2, "Withholder");
    b.state("b0");
    b.action("once");
    return b.build();
  }());
  procs2.push_back(FspBuilder(alphabet2, "FreeGiver").trans("f", "free", "f").build());
  Network net2(alphabet2, std::move(procs2));
  UnaryScResult r2 = unary_success_collab(net2, 0);
  EXPECT_FALSE(r2.success_collab);
}

TEST(Theorem4, ValidatesHypotheses) {
  // Two symbols on one edge violates the unary hypothesis.
  auto alphabet = std::make_shared<Alphabet>();
  std::vector<Fsp> procs;
  procs.push_back(FspBuilder(alphabet, "A").trans("0", "x", "1").trans("1", "y", "0").build());
  procs.push_back(FspBuilder(alphabet, "B").trans("0", "x", "1").trans("1", "y", "0").build());
  Network net(alphabet, std::move(procs));
  EXPECT_THROW(unary_success_collab(net, 0), std::logic_error);
}

TEST(Theorem4, AgreesWithExplicitCyclicCollabOnSmallChains) {
  for (std::size_t m : {2u, 3u, 4u}) {
    Network net = multiply_by_2_chain(m);
    EXPECT_EQ(unary_success_collab(net, 0).success_collab,
              success_collab_cyclic_global(net, 0))
        << m;
  }
}

}  // namespace
}  // namespace ccfsp
