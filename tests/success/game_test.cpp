#include "success/game.hpp"

#include <gtest/gtest.h>

#include "fsp/builder.hpp"
#include "network/families.hpp"
#include "success/context.hpp"

namespace ccfsp {
namespace {

class GameTest : public ::testing::Test {
 protected:
  AlphabetPtr alphabet = std::make_shared<Alphabet>();
};

TEST_F(GameTest, Figure3AdversaryWins) {
  // Q can tau to its dead branch before offering a: P loses.
  Network net = figure3_network();
  EXPECT_FALSE(success_adversity_network(net, 0));
}

TEST_F(GameTest, SeparationExampleInformedPlayerWins) {
  // P right-branches on a and reaches its leaf regardless of P4's defection.
  Network net = success_separation_network();
  EXPECT_TRUE(success_adversity_network(net, 0));
}

TEST_F(GameTest, DeterministicHandshakesAlwaysWin) {
  Fsp p = FspBuilder(alphabet, "P").trans("0", "a", "1").trans("1", "b", "2").build();
  Fsp q = FspBuilder(alphabet, "Q").trans("0", "a", "1").trans("1", "b", "2").build();
  EXPECT_TRUE(success_adversity(p, q));
}

TEST_F(GameTest, PartialInformationDefeatsP) {
  // Q secretly (tau) commits to demanding aa or ab; P hears only "a" and
  // must choose its branch blindly: no winning strategy.
  Fsp p = FspBuilder(alphabet, "P")
              .trans("0", "a", "L")
              .trans("0", "a", "R")
              .trans("L", "a", "L2")
              .trans("R", "b", "R2")
              .build();
  Fsp q = FspBuilder(alphabet, "Q")
              .trans("0", "tau", "qa")
              .trans("0", "tau", "qb")
              .trans("qa", "a", "qa1")
              .trans("qa1", "a", "qa2")
              .trans("qb", "a", "qb1")
              .trans("qb1", "b", "qb2")
              .build();
  EXPECT_FALSE(success_adversity(p, q));
}

TEST_F(GameTest, VisibleCommitmentLetsPWin) {
  // Same shape, but Q reveals its commitment through distinct first actions.
  Fsp p = FspBuilder(alphabet, "P")
              .trans("0", "x", "L")
              .trans("0", "y", "R")
              .trans("L", "a", "L2")
              .trans("R", "b", "R2")
              .build();
  Fsp q = FspBuilder(alphabet, "Q")
              .trans("0", "tau", "qa")
              .trans("0", "tau", "qb")
              .trans("qa", "x", "qa1")
              .trans("qa1", "a", "qa2")
              .trans("qb", "y", "qb1")
              .trans("qb1", "b", "qb2")
              .build();
  EXPECT_TRUE(success_adversity(p, q));
}

TEST_F(GameTest, PWithTauMovesRejected) {
  Fsp p = FspBuilder(alphabet, "P").trans("0", "tau", "1").trans("1", "a", "2").build();
  Fsp q = FspBuilder(alphabet, "Q").trans("0", "a", "1").build();
  EXPECT_THROW(success_adversity(p, q), std::logic_error);
}

TEST_F(GameTest, LeafStartIsImmediateWin) {
  Fsp p = [&] {
    FspBuilder b(alphabet, "P");
    b.state("only");
    b.action("a");
    return b.build();
  }();
  Fsp q = FspBuilder(alphabet, "Q").trans("0", "a", "1").build();
  EXPECT_TRUE(success_adversity(p, q));
  // In the cyclic game stopping means losing, even at the start.
  EXPECT_FALSE(success_adversity(p, q, /*cyclic_goal=*/true));
}

TEST_F(GameTest, CyclicGoalTokenRing) {
  Network net = token_ring(3);
  // Deterministic circulation: every station moves forever.
  EXPECT_TRUE(success_adversity_network(net, 0, /*cyclic_goal=*/true));
}

TEST_F(GameTest, CyclicGoalPhilosopherLoses) {
  // The adversary steers the neighbors into the deadlock.
  Network net = dining_philosophers(2);
  EXPECT_FALSE(success_adversity_network(net, 0, /*cyclic_goal=*/true));
}

TEST_F(GameTest, CyclicAdversaryCanHideInTauDivergence) {
  // Q may handshake forever or silently diverge; divergence strands P, and
  // the ||' divergence leaf exposes exactly that option to the game.
  Fsp p = FspBuilder(alphabet, "P").trans("0", "a", "0").build();
  Fsp q_raw = FspBuilder(alphabet, "Q")
                  .trans("0", "a", "1")
                  .trans("1", "a", "0")
                  .trans("1", "tau", "1")
                  .build();
  Fsp q = add_divergence_leaves(q_raw);
  EXPECT_FALSE(success_adversity(p, q, /*cyclic_goal=*/true));
}

TEST_F(GameTest, StatsReported) {
  Network net = success_separation_network();
  GameStats stats;
  success_adversity_network(net, 0, false, 1u << 22, &stats);
  EXPECT_GT(stats.positions, 0u);
  EXPECT_GT(stats.beliefs, 0u);
}

}  // namespace
}  // namespace ccfsp
