#include "success/star.hpp"

#include <gtest/gtest.h>

#include "fsp/builder.hpp"
#include "network/families.hpp"
#include "success/baseline.hpp"
#include "success/game.hpp"

namespace ccfsp {
namespace {

class StarTest : public ::testing::Test {
 protected:
  AlphabetPtr alphabet = std::make_shared<Alphabet>();
};

TEST_F(StarTest, Figure3ViaLemmas) {
  // P: 1 -a-> 2; Q: 1 -a-> 2 | 1 -tau-> 3. Lemma 3 gives S_c, Lemma 4
  // gives potential blocking (Q's (eps, {}) possibility at state 3).
  Fsp p = FspBuilder(alphabet, "P").trans("1", "a", "2").build();
  Fsp q = FspBuilder(alphabet, "Q").trans("1", "a", "2").trans("1", "tau", "3").build();
  StarContext ctx;
  ctx.factors = {&q};
  EXPECT_TRUE(star_success_collab(p, ctx));
  EXPECT_TRUE(star_potential_blocking(p, ctx));
  EXPECT_FALSE(star_success_adversity(p, ctx));
}

TEST_F(StarTest, SeparationExampleViaLemmas) {
  Network net = success_separation_network();
  StarContext ctx;
  ctx.factors = {&net.process(1), &net.process(2)};
  const Fsp& p = net.process(0);
  EXPECT_TRUE(star_success_collab(p, ctx));
  EXPECT_TRUE(star_potential_blocking(p, ctx));   // left branch strands P
  EXPECT_TRUE(star_success_adversity(p, ctx));    // right branch always works
}

TEST_F(StarTest, IndependentFactorsInterleave) {
  // P needs a then b; factor A provides a, factor B provides b. Lemma 3
  // must accept the interleaved string by per-factor projection.
  Fsp p = FspBuilder(alphabet, "P").trans("0", "a", "1").trans("1", "b", "2").build();
  Fsp qa = FspBuilder(alphabet, "A").trans("0", "a", "1").build();
  Fsp qb = FspBuilder(alphabet, "B").trans("0", "b", "1").build();
  StarContext ctx;
  ctx.factors = {&qa, &qb};
  EXPECT_TRUE(star_success_collab(p, ctx));
  EXPECT_FALSE(star_potential_blocking(p, ctx));
  EXPECT_TRUE(star_success_adversity(p, ctx));
}

TEST_F(StarTest, BlockingRequiresAllFactorsToRefuse) {
  // P stable wanting {a, b}: factor A can exhaust a, but factor B always
  // offers b — no blocking.
  Fsp p = FspBuilder(alphabet, "P")
              .trans("0", "a", "1")
              .trans("0", "b", "2")
              .build();
  Fsp qa = FspBuilder(alphabet, "A")
               .trans("0", "tau", "dead")
               .trans("0", "a", "1")
               .build();
  Fsp qb = FspBuilder(alphabet, "B").trans("0", "b", "1").build();
  StarContext ctx;
  ctx.factors = {&qa, &qb};
  EXPECT_FALSE(star_potential_blocking(p, ctx));
  EXPECT_TRUE(star_success_adversity(p, ctx));

  // Make B defectable too: now the context can refuse everything.
  Fsp qb2 = FspBuilder(alphabet, "B2")
                .trans("0", "tau", "dead")
                .trans("0", "b", "1")
                .build();
  StarContext ctx2;
  ctx2.factors = {&qa, &qb2};
  EXPECT_TRUE(star_potential_blocking(p, ctx2));
  EXPECT_FALSE(star_success_adversity(p, ctx2));
}

TEST_F(StarTest, UnsharedWantedSymbolBlocksForever) {
  // P wants "ghost" which no factor owns: that branch is dead; P's only
  // stable state wanting {ghost} is a blocking witness.
  Fsp p = FspBuilder(alphabet, "P").trans("0", "ghost", "1").build();
  Fsp q = [&] {
    FspBuilder b(alphabet, "Q");
    b.state("0");
    b.action("other");
    return b.build();
  }();
  StarContext ctx;
  ctx.factors = {&q};
  EXPECT_FALSE(star_success_collab(p, ctx));
  EXPECT_TRUE(star_potential_blocking(p, ctx));
}

TEST_F(StarTest, OverlappingFactorAlphabetsRejected) {
  Fsp p = FspBuilder(alphabet, "P").trans("0", "a", "1").build();
  Fsp q1 = FspBuilder(alphabet, "Q1").trans("0", "a", "1").build();
  Fsp q2 = FspBuilder(alphabet, "Q2").trans("0", "a", "1").build();
  StarContext ctx;
  ctx.factors = {&q1, &q2};
  EXPECT_THROW(star_success_collab(p, ctx), std::logic_error);
}

TEST_F(StarTest, AdversityDemandsTauFreeTreeP) {
  Fsp p_tau = FspBuilder(alphabet, "P").trans("0", "tau", "1").trans("1", "a", "2").build();
  Fsp q = FspBuilder(alphabet, "Q").trans("0", "a", "1").build();
  StarContext ctx;
  ctx.factors = {&q};
  EXPECT_THROW(star_success_adversity(p_tau, ctx), std::logic_error);
}

TEST_F(StarTest, AgreesWithGameOnSmallStars) {
  // Cross-validate Lemma 5 evaluation against the knowledge-set game.
  Network net = success_separation_network();
  StarContext ctx;
  ctx.factors = {&net.process(1), &net.process(2)};
  EXPECT_EQ(star_success_adversity(net.process(0), ctx),
            success_adversity_network(net, 0));
}

}  // namespace
}  // namespace ccfsp
