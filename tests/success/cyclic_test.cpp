#include "success/cyclic.hpp"

#include <gtest/gtest.h>

#include "network/families.hpp"
#include "network/generate.hpp"

namespace ccfsp {
namespace {

TEST(Cyclic, TokenRingExplicit) {
  Network net = token_ring(4);
  CyclicDecision d = cyclic_decide_explicit(net, 0);
  EXPECT_FALSE(d.potential_blocking);
  EXPECT_TRUE(d.success_collab);
  ASSERT_TRUE(d.success_adversity.has_value());
  EXPECT_TRUE(*d.success_adversity);
}

TEST(Cyclic, PhilosophersExplicit) {
  Network net = dining_philosophers(3);
  CyclicDecision d = cyclic_decide_explicit(net, 0);
  EXPECT_TRUE(d.potential_blocking);   // the classic deadlock
  EXPECT_TRUE(d.success_collab);       // but benevolent scheduling dines forever
  ASSERT_TRUE(d.success_adversity.has_value());
  EXPECT_FALSE(*d.success_adversity);  // neighbors can force the deadlock
}

TEST(Cyclic, TreeHeuristicMatchesExplicitOnFamilies) {
  for (std::size_t n : {2u, 3u}) {
    Network phil = dining_philosophers(n);
    CyclicDecision a = cyclic_decide_explicit(phil, 0);
    CyclicDecision b = cyclic_decide_tree(phil, 0);
    EXPECT_EQ(a.potential_blocking, b.potential_blocking) << n;
    EXPECT_EQ(a.success_collab, b.success_collab) << n;
    EXPECT_EQ(a.success_adversity, b.success_adversity) << n;
  }
  Network ring = token_ring(5);
  CyclicDecision a = cyclic_decide_explicit(ring, 0);
  CyclicDecision b = cyclic_decide_tree(ring, 0);
  EXPECT_EQ(a.potential_blocking, b.potential_blocking);
  EXPECT_EQ(a.success_collab, b.success_collab);
  EXPECT_EQ(a.success_adversity, b.success_adversity);
}

class CyclicRandomized : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CyclicRandomized, HeuristicAgreesWithExplicit) {
  Rng rng(GetParam());
  NetworkGenOptions opt;
  opt.num_processes = 2 + rng.below(3);
  opt.states_per_process = 3 + rng.below(3);
  opt.symbols_per_edge = 1 + rng.below(2);
  Network net = random_cyclic_tree_network(rng, opt);
  for (std::size_t p = 0; p < net.size(); ++p) {
    CyclicDecision a = cyclic_decide_explicit(net, p);
    CyclicDecision b = cyclic_decide_tree(net, p);
    EXPECT_EQ(a.potential_blocking, b.potential_blocking)
        << "seed " << GetParam() << " p " << p;
    EXPECT_EQ(a.success_collab, b.success_collab) << "seed " << GetParam() << " p " << p;
    EXPECT_EQ(a.success_adversity, b.success_adversity)
        << "seed " << GetParam() << " p " << p;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CyclicRandomized,
                         ::testing::Values(41, 42, 43, 44, 45, 46, 47, 48, 49, 50, 51, 52, 53,
                                           54, 55));

TEST(Cyclic, AblationOptionsStillSound) {
  Network net = dining_philosophers(3);
  CyclicDecision oracle = cyclic_decide_explicit(net, 0);
  for (bool bisim : {false, true}) {
    for (bool tau : {false, true}) {
      CyclicHeuristicOptions opt;
      opt.use_bisimulation = bisim;
      opt.use_tau_compression = tau;
      CyclicDecision d = cyclic_decide_tree(net, 0, opt);
      EXPECT_EQ(d.potential_blocking, oracle.potential_blocking) << bisim << tau;
      EXPECT_EQ(d.success_collab, oracle.success_collab) << bisim << tau;
      EXPECT_EQ(d.success_adversity, oracle.success_adversity) << bisim << tau;
    }
  }
}

}  // namespace
}  // namespace ccfsp
