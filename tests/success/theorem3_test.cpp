// Theorem 3 end-to-end: the polynomial tree-network pipeline must agree
// with the exponential explicit-global-machine oracles on every predicate,
// across many random tree and ring (2-tree) networks.
#include "success/tree_pipeline.hpp"

#include <gtest/gtest.h>

#include "network/families.hpp"
#include "network/generate.hpp"
#include "success/baseline.hpp"
#include "success/game.hpp"

namespace ccfsp {
namespace {

void expect_agrees_with_oracle(const Network& net, std::size_t p_index, const char* label) {
  Theorem3Result fast = theorem3_decide(net, p_index);
  bool s_c = success_collab_global(net, p_index);
  bool s_u = !potential_blocking_global(net, p_index);
  EXPECT_EQ(fast.success_collab, s_c) << label;
  EXPECT_EQ(fast.unavoidable_success, s_u) << label;
  if (fast.success_adversity.has_value()) {
    EXPECT_EQ(*fast.success_adversity, success_adversity_network(net, p_index)) << label;
  }
}

TEST(Theorem3, Figure3) {
  Network net = figure3_network();
  Theorem3Result r = theorem3_decide(net, 0);
  EXPECT_TRUE(r.success_collab);
  EXPECT_FALSE(r.unavoidable_success);
  ASSERT_TRUE(r.success_adversity.has_value());
  EXPECT_FALSE(*r.success_adversity);
}

TEST(Theorem3, SeparationExample) {
  Network net = success_separation_network();
  Theorem3Result r = theorem3_decide(net, 0);
  EXPECT_TRUE(r.success_collab);
  EXPECT_FALSE(r.unavoidable_success);
  ASSERT_TRUE(r.success_adversity.has_value());
  EXPECT_TRUE(*r.success_adversity);
  EXPECT_EQ(r.partition_width, 1u);
}

class Theorem3TreeRandomized : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Theorem3TreeRandomized, AgreesWithOracleOnTreeNetworks) {
  Rng rng(GetParam());
  NetworkGenOptions opt;
  opt.num_processes = 2 + rng.below(4);
  opt.states_per_process = 4 + rng.below(4);
  opt.symbols_per_edge = 1 + rng.below(2);
  opt.tau_probability = 0.2;
  Network net = random_tree_network(rng, opt);
  for (std::size_t p = 0; p < net.size(); ++p) {
    expect_agrees_with_oracle(net, p, ("seed=" + std::to_string(GetParam()) +
                                       " p=" + std::to_string(p)).c_str());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Theorem3TreeRandomized,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15,
                                           21, 22, 23, 24, 25, 26, 27, 28, 29, 30));

class Theorem3RingRandomized : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Theorem3RingRandomized, AgreesWithOracleOnRingNetworks) {
  // Figure 8a: rings are 2-trees; the pipeline pairs processes up.
  Rng rng(GetParam());
  NetworkGenOptions opt;
  opt.num_processes = 3 + rng.below(3);
  opt.states_per_process = 4;
  opt.symbols_per_edge = 1;
  opt.tau_probability = 0.15;
  Network net = random_ring_network(rng, opt);
  expect_agrees_with_oracle(net, 0, ("ring seed=" + std::to_string(GetParam())).c_str());
}

INSTANTIATE_TEST_SUITE_P(Seeds, Theorem3RingRandomized,
                         ::testing::Values(31, 32, 33, 34, 35, 36, 37, 38, 39, 40));

class Theorem3RingFolded : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Theorem3RingFolded, FoldPartitionAgreesWithOracle) {
  // Force the Figure 8a width-2 fold (the automatic block-cut partition
  // treats the whole ring as one part, which is valid but not the point).
  Rng rng(GetParam());
  NetworkGenOptions opt;
  opt.num_processes = 4 + rng.below(3);
  opt.states_per_process = 4;
  opt.symbols_per_edge = 1;
  opt.tau_probability = 0.15;
  Network net = random_ring_network(rng, opt);
  std::size_t m = net.size();

  KTreePartition fold;
  fold.parts.push_back({0});
  for (std::size_t d = 1; 2 * d <= m; ++d) {
    std::size_t a = d, b = m - d;
    if (a == b) {
      fold.parts.push_back({a});
      break;
    }
    fold.parts.push_back({a, b});
  }
  for (std::size_t i = 0; i + 1 < fold.parts.size(); ++i) fold.quotient_edges.push_back({i, i + 1});
  fold.width = 2;
  ASSERT_TRUE(is_valid_ktree_partition(net, fold));

  Theorem3Result fast = theorem3_decide(net, 0, {}, &fold);
  EXPECT_EQ(fast.partition_width, 2u);
  EXPECT_EQ(fast.success_collab, success_collab_global(net, 0)) << GetParam();
  EXPECT_EQ(fast.unavoidable_success, !potential_blocking_global(net, 0)) << GetParam();
  if (fast.success_adversity.has_value()) {
    EXPECT_EQ(*fast.success_adversity, success_adversity_network(net, 0)) << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Theorem3RingFolded,
                         ::testing::Values(81, 82, 83, 84, 85, 86, 87, 88, 89, 90));

TEST(Theorem3, AblationWithoutNormalFormAgreesButGrows) {
  Rng rng(1234);
  NetworkGenOptions opt;
  opt.num_processes = 5;
  opt.states_per_process = 5;
  Network net = random_tree_network(rng, opt);
  Theorem3Options with_nf;
  Theorem3Options without_nf;
  without_nf.use_normal_form = false;
  Theorem3Result a = theorem3_decide(net, 0, with_nf);
  Theorem3Result b = theorem3_decide(net, 0, without_nf);
  EXPECT_EQ(a.success_collab, b.success_collab);
  EXPECT_EQ(a.unavoidable_success, b.unavoidable_success);
  EXPECT_EQ(a.success_adversity, b.success_adversity);
}

TEST(Theorem3, SuppliedPartitionIsValidated) {
  Network net = figure3_network();
  KTreePartition bogus;
  bogus.parts = {{0}};  // misses process 1
  EXPECT_THROW(theorem3_decide(net, 0, {}, &bogus), std::logic_error);
}

TEST(Theorem3, RejectsCyclicProcesses) {
  Network net = token_ring(3);
  EXPECT_THROW(theorem3_decide(net, 0), std::logic_error);
}

TEST(Theorem3, ReportsDiagnostics) {
  Rng rng(9);
  NetworkGenOptions opt;
  opt.num_processes = 4;
  Network net = random_tree_network(rng, opt);
  Theorem3Result r = theorem3_decide(net, 0);
  EXPECT_EQ(r.partition_width, 1u);
  EXPECT_GT(r.max_intermediate_states, 0u);
}

}  // namespace
}  // namespace ccfsp
