#include "success/simulate.hpp"

#include <gtest/gtest.h>

#include "fsp/builder.hpp"
#include "network/families.hpp"
#include "network/generate.hpp"
#include "success/baseline.hpp"

namespace ccfsp {
namespace {

TEST(Simulate, DeterministicForSeed) {
  Network net = dining_philosophers(3);
  SimulationResult a = simulate_random(net, 99, 50);
  SimulationResult b = simulate_random(net, 99, 50);
  ASSERT_EQ(a.steps.size(), b.steps.size());
  for (std::size_t i = 0; i < a.steps.size(); ++i) {
    EXPECT_EQ(a.steps[i].mover, b.steps[i].mover);
    EXPECT_EQ(a.steps[i].action, b.steps[i].action);
  }
  EXPECT_EQ(a.final_tuple, b.final_tuple);
}

TEST(Simulate, StepsAreLegalMoves) {
  // Replay each step against the process definitions.
  Network net = dining_philosophers(3);
  SimulationResult r = simulate_random(net, 7, 100);
  std::vector<StateId> tuple(net.size());
  for (std::size_t i = 0; i < net.size(); ++i) tuple[i] = net.process(i).start();
  for (const auto& step : r.steps) {
    const Fsp& mover = net.process(step.mover);
    bool mover_ok = false;
    StateId mover_next = 0;
    for (const auto& t : mover.out(tuple[step.mover])) {
      if (t.action == step.action) {
        mover_ok = true;
        mover_next = t.target;
        break;
      }
    }
    ASSERT_TRUE(mover_ok);
    tuple[step.mover] = mover_next;
    if (step.partner != step.mover) {
      const Fsp& partner = net.process(step.partner);
      bool partner_ok = false;
      for (const auto& t : partner.out(tuple[step.partner])) {
        if (t.action == step.action) {
          partner_ok = true;
          tuple[step.partner] = t.target;
          break;
        }
      }
      ASSERT_TRUE(partner_ok);
    }
  }
  EXPECT_EQ(tuple, r.final_tuple);
}

TEST(Simulate, TokenRingNeverSticks) {
  Network net = token_ring(4);
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    SimulationResult r = simulate_random(net, seed, 5000);
    EXPECT_FALSE(r.stuck) << seed;
    EXPECT_EQ(r.steps.size(), 5000u);
  }
}

TEST(Simulate, StuckRunsImplyPotentialBlocking) {
  // Differential check: any stuck schedule with P off-leaf certifies
  // not-S_u, so it must agree with the analytic decider.
  for (std::uint64_t seed = 100; seed < 130; ++seed) {
    Rng rng(seed);
    NetworkGenOptions opt;
    opt.num_processes = 2 + rng.below(3);
    opt.states_per_process = 4;
    Network net = random_tree_network(rng, opt);
    SimulationResult r = simulate_random(net, seed * 31, 1000);
    if (!r.stuck) continue;  // acyclic nets always stick eventually, but be safe
    for (std::size_t p = 0; p < net.size(); ++p) {
      if (!net.process(p).is_leaf(r.final_tuple[p])) {
        EXPECT_TRUE(potential_blocking_global(net, p)) << "seed " << seed << " p " << p;
      }
    }
  }
}

TEST(Simulate, SuCertifiedNetworksNeverJamP) {
  // If S_u holds for P, no schedule may ever strand it off-leaf.
  auto alphabet = std::make_shared<Alphabet>();
  std::vector<Fsp> procs;
  procs.push_back(FspBuilder(alphabet, "P").trans("0", "a", "1").trans("1", "b", "2").build());
  procs.push_back(FspBuilder(alphabet, "Q").trans("0", "a", "1").trans("1", "b", "2").build());
  Network net(alphabet, std::move(procs));
  ASSERT_FALSE(potential_blocking_global(net, 0));
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    SimulationResult r = simulate_random(net, seed, 100);
    ASSERT_TRUE(r.stuck);
    EXPECT_TRUE(net.process(0).is_leaf(r.final_tuple[0])) << seed;
  }
}

TEST(Simulate, FormatScheduleMentionsMovers) {
  Network net = token_ring(3);
  SimulationResult r = simulate_random(net, 1, 3);
  std::string text = format_schedule(net, r);
  EXPECT_NE(text.find("St0"), std::string::npos);
  EXPECT_NE(text.find("pass"), std::string::npos);
  EXPECT_NE(text.find("still running"), std::string::npos);
}

}  // namespace
}  // namespace ccfsp
