// Strategy extraction is validated by *playing* it: a random adversary
// drives the context through legal moves, the extracted strategy answers,
// and player P must end on a leaf every single time (the definition of a
// winning strategy — no luck involved).
#include <gtest/gtest.h>

#include "fsp/builder.hpp"
#include "network/families.hpp"
#include "reductions/gadget_thm2.hpp"
#include "success/context.hpp"
#include "success/game.hpp"
#include "util/rng.hpp"

namespace ccfsp {
namespace {

/// Play one game of Figure 4 to completion with random adversary choices.
/// Returns true iff P ends on one of its leaves.
bool simulate_once(const Fsp& p, const Fsp& q, Strategy& strategy, Rng& rng,
                   std::size_t max_rounds = 10000) {
  strategy.reset();
  StateId q_state = q.tau_closure(q.start())[rng.below(q.tau_closure(q.start()).size())];
  for (std::size_t round = 0; round < max_rounds; ++round) {
    // Q must pick a with q ==a==> and p --a-->; enumerate its legal moves.
    ActionSet p_out = p.out_actions(strategy.current());
    std::vector<ActionId> offers;
    for (std::size_t a : q.ready_actions(q_state).to_indices()) {
      if (p_out.test(a)) offers.push_back(static_cast<ActionId>(a));
    }
    if (offers.empty()) {
      return p.is_leaf(strategy.current());  // game over
    }
    ActionId a = offers[rng.below(offers.size())];
    auto succs = q.arrow_successors(q_state, a);
    q_state = succs[rng.below(succs.size())];
    strategy.respond(a);
  }
  return false;  // only reachable for cyclic games (not used here)
}

TEST(Strategy, AbsentWhenQWins) {
  Network net = figure3_network();
  Fsp q = compose_context(net, 0);
  EXPECT_FALSE(winning_strategy(net.process(0), q).has_value());
}

TEST(Strategy, SeparationExampleStrategySurvivesAllPlays) {
  Network net = success_separation_network();
  Fsp q = compose_context(net, 0);
  auto strategy = winning_strategy(net.process(0), q);
  ASSERT_TRUE(strategy.has_value());
  Rng rng(5);
  for (int game = 0; game < 200; ++game) {
    EXPECT_TRUE(simulate_once(net.process(0), q, *strategy, rng)) << "game " << game;
  }
}

TEST(Strategy, RespondsOnlyToOfferableActions) {
  Network net = success_separation_network();
  Fsp q = compose_context(net, 0);
  auto strategy = winning_strategy(net.process(0), q);
  ASSERT_TRUE(strategy.has_value());
  ActionId bogus = net.alphabet()->intern("bogus_action");
  EXPECT_THROW(strategy->respond(bogus), std::logic_error);
}

TEST(Strategy, QbfGadgetStrategyEncodesTheSkolemChoices) {
  // A valid QBF yields a strategy for P that survives every universal
  // choice the adversary throws at it.
  Qbf q;
  q.prefix = {Quantifier::kExists, Quantifier::kForAll, Quantifier::kExists};
  q.matrix.num_vars = 3;
  q.matrix.clauses = {{{0, false}, {1, true}, {2, false}},
                      {{0, false}, {1, false}, {2, true}}};
  ASSERT_TRUE(solve_qbf(q));
  Thm2Gadget g = thm2_adversity_gadget(q);
  Fsp ctx = compose_context(g.net, g.distinguished);
  auto strategy = winning_strategy(g.net.process(g.distinguished), ctx);
  ASSERT_TRUE(strategy.has_value());
  Rng rng(17);
  for (int game = 0; game < 300; ++game) {
    EXPECT_TRUE(simulate_once(g.net.process(g.distinguished), ctx, *strategy, rng))
        << "game " << game;
  }
}

TEST(Strategy, CyclicGoalStrategyKeepsMovingForever) {
  // Token ring: station 0 has a winning strategy for the cyclic game; drive
  // it for thousands of rounds against a random adversary and it must never
  // stall.
  Network net = token_ring(3);
  Fsp q = compose_context(net, 0, /*cyclic=*/true);
  auto strategy = winning_strategy(net.process(0), q, /*cyclic_goal=*/true);
  ASSERT_TRUE(strategy.has_value());
  const Fsp& p = net.process(0);
  Rng rng(23);
  strategy->reset();
  StateId q_state = q.tau_closure(q.start())[0];
  for (int round = 0; round < 5000; ++round) {
    ActionSet p_out = p.out_actions(strategy->current());
    std::vector<ActionId> offers;
    for (std::size_t a : q.ready_actions(q_state).to_indices()) {
      if (p_out.test(a)) offers.push_back(static_cast<ActionId>(a));
    }
    ASSERT_FALSE(offers.empty()) << "game stalled at round " << round;
    ActionId a = offers[rng.below(offers.size())];
    auto succs = q.arrow_successors(q_state, a);
    q_state = succs[rng.below(succs.size())];
    strategy->respond(a);
  }
}

TEST(Strategy, NoCyclicStrategyForPhilosopher) {
  Network net = dining_philosophers(2);
  Fsp q = compose_context(net, 0, /*cyclic=*/true);
  EXPECT_FALSE(winning_strategy(net.process(0), q, /*cyclic_goal=*/true).has_value());
}

TEST(Strategy, DeterministicChainIsFollowed) {
  auto alphabet = std::make_shared<Alphabet>();
  Fsp p = FspBuilder(alphabet, "P").trans("0", "a", "1").trans("1", "b", "2").build();
  Fsp q = FspBuilder(alphabet, "Q").trans("0", "a", "1").trans("1", "b", "2").build();
  auto strategy = winning_strategy(p, q);
  ASSERT_TRUE(strategy.has_value());
  EXPECT_EQ(strategy->current(), p.start());
  StateId after_a = strategy->respond(*alphabet->find("a"));
  EXPECT_FALSE(p.is_leaf(after_a));
  StateId after_b = strategy->respond(*alphabet->find("b"));
  EXPECT_TRUE(p.is_leaf(after_b));
  strategy->reset();
  EXPECT_EQ(strategy->current(), p.start());
}

}  // namespace
}  // namespace ccfsp
