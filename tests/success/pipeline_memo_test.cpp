// The three Theorem 3 pipeline configurations — flat kernels with the
// subtree memo (the default), flat kernels without it, and the retained
// pre-flat reference pipeline — must return identical decisions on every
// network; the memo is a pure cache. The wave/ktree families additionally
// pin that the memo actually fires there, and the budget/failpoint taxonomy
// must surface unchanged through the flat paths.
#include "success/tree_pipeline.hpp"

#include <gtest/gtest.h>

#include "network/families.hpp"
#include "network/generate.hpp"
#include "util/failpoint.hpp"

namespace ccfsp {
namespace {

Theorem3Result decide(const Network& net, bool flat, bool memoize) {
  Theorem3Options opt;
  opt.use_flat_kernels = flat;
  opt.memoize = memoize;
  return theorem3_decide(net, 0, opt);
}

void expect_all_modes_agree(const Network& net, const char* label) {
  Theorem3Result memoized = decide(net, /*flat=*/true, /*memoize=*/true);
  Theorem3Result plain = decide(net, /*flat=*/true, /*memoize=*/false);
  Theorem3Result reference = decide(net, /*flat=*/false, /*memoize=*/false);
  for (const Theorem3Result* r : {&plain, &reference}) {
    EXPECT_EQ(memoized.unavoidable_success, r->unavoidable_success) << label;
    EXPECT_EQ(memoized.success_collab, r->success_collab) << label;
    EXPECT_EQ(memoized.success_adversity, r->success_adversity) << label;
  }
  // The memo is inert when disabled.
  EXPECT_EQ(plain.memo_hits, 0u) << label;
  EXPECT_EQ(plain.memo_misses, 0u) << label;
  EXPECT_EQ(reference.memo_hits, 0u) << label;
}

class PipelineModesRandomized : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PipelineModesRandomized, AgreeOnRandomTreeNetworks) {
  Rng rng(GetParam());
  NetworkGenOptions opt;
  opt.num_processes = 2 + rng.below(4);
  opt.states_per_process = 4 + rng.below(4);
  opt.symbols_per_edge = 1 + rng.below(2);
  opt.tau_probability = 0.2;
  Network net = random_tree_network(rng, opt);
  expect_all_modes_agree(net, ("seed=" + std::to_string(GetParam())).c_str());
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineModesRandomized,
                         ::testing::Values(101, 102, 103, 104, 105, 106, 107, 108, 109, 110,
                                           111, 112, 113, 114, 115));

TEST(PipelineModes, AgreeOnRingNetworks) {
  for (std::uint64_t seed : {201u, 202u, 203u, 204u}) {
    Rng rng(seed);
    NetworkGenOptions opt;
    opt.num_processes = 3 + rng.below(3);
    opt.states_per_process = 4;
    opt.symbols_per_edge = 1;
    opt.tau_probability = 0.15;
    Network net = random_ring_network(rng, opt);
    expect_all_modes_agree(net, ("ring seed=" + std::to_string(seed)).c_str());
  }
}

TEST(PipelineModes, AgreeOnFigureNetworks) {
  expect_all_modes_agree(figure3_network(), "figure3");
  expect_all_modes_agree(success_separation_network(), "separation");
}

TEST(PipelineModes, MemoFiresOnWaveTree) {
  Rng rng(0x77a7e5);
  Network net = wave_tree_network(rng, 20, 3);
  Theorem3Result memoized = decide(net, true, true);
  Theorem3Result plain = decide(net, true, false);
  EXPECT_EQ(memoized.unavoidable_success, plain.unavoidable_success);
  EXPECT_EQ(memoized.success_collab, plain.success_collab);
  EXPECT_EQ(memoized.success_adversity, plain.success_adversity);
  // Wave processes are deadlock-free by construction.
  EXPECT_TRUE(memoized.success_collab);
  // Sibling subtrees of the wave tree repeat up to action renaming: the
  // memo must fold some of them.
  EXPECT_GT(memoized.memo_hits, 0u);
  EXPECT_GT(memoized.memo_misses, 0u);
}

TEST(PipelineModes, MemoFiresHeavilyOnCompleteKTree) {
  // Every equal-height subtree of the complete binary wave tree is the same
  // process up to renaming: of the 14 non-root subtree folds, only the
  // handful of distinct heights should miss.
  Network net = wave_ktree_network(2, 15, 3);
  Theorem3Result memoized = decide(net, true, true);
  Theorem3Result plain = decide(net, true, false);
  EXPECT_EQ(memoized.unavoidable_success, plain.unavoidable_success);
  EXPECT_EQ(memoized.success_collab, plain.success_collab);
  EXPECT_EQ(memoized.success_adversity, plain.success_adversity);
  EXPECT_GT(memoized.memo_hits, memoized.memo_misses);
}

TEST(PipelineModes, BudgetTripsThroughFlatPath) {
  Rng rng(0xbad9e7);
  Network net = wave_tree_network(rng, 12, 3);
  for (bool memoize : {true, false}) {
    Theorem3Options opt;
    opt.memoize = memoize;
    Budget tiny = Budget::with_states(4);
    opt.budget = &tiny;
    try {
      theorem3_decide(net, 0, opt);
      FAIL() << "expected BudgetExceeded, memoize=" << memoize;
    } catch (const BudgetExceeded& e) {
      EXPECT_EQ(e.reason(), BudgetDimension::kStates) << memoize;
    }
  }
}

TEST(PipelineModes, PossLimitTripsThroughFlatPath) {
  Rng rng(0x11217);
  Network net = wave_tree_network(rng, 12, 3);
  Theorem3Options opt;
  opt.poss_limit = 2;
  EXPECT_THROW(theorem3_decide(net, 0, opt), BudgetExceeded);
}

TEST(PipelineModes, MemoFailpointSurfacesFromTheDecider) {
  failpoint::ScopedDisarm guard;
  failpoint::Spec s;
  s.action = failpoint::Action::kThrowBudget;
  s.trigger = failpoint::Trigger::kOnHit;
  s.n = 1;
  failpoint::arm("cache.nf_memo", s);
  Rng rng(0xfa11);
  NetworkGenOptions opt;
  opt.num_processes = 4;
  Network net = random_tree_network(rng, opt);
  EXPECT_THROW(theorem3_decide(net, 0), BudgetExceeded);
}

TEST(PipelineModes, RefineFailpointReachesReferencePipelineOnly) {
  // The Moore oracles never pop splitters; the Paige–Tarjan kernel sits
  // behind minimize()/bisimulation_classes, which the Theorem 3 pipeline
  // itself does not call — so arming the refine site must not perturb the
  // decider in either mode. (Coverage of the site itself: refine_test.)
  failpoint::ScopedDisarm guard;
  failpoint::Spec s;
  s.action = failpoint::Action::kThrowBudget;
  s.trigger = failpoint::Trigger::kOnHit;
  s.n = 1;
  failpoint::arm("normal_form.refine", s);
  Network net = figure3_network();
  EXPECT_NO_THROW(theorem3_decide(net, 0));
}

}  // namespace
}  // namespace ccfsp
