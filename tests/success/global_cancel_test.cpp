// Satellite: cancellation arriving *mid-level* during the parallel global
// build must join every worker, surface as a structured BudgetExhausted
// (never std::terminate, never a truncated machine), and leave no poisoned
// state behind — a clean rebuild right after the abort produces the same
// machine as the sequential oracle. Exercised on the shipped model corpus
// and on random networks, with 2 and 8 workers (the TSan CI shard runs
// this file under -fsanitize=thread).
#include <gtest/gtest.h>

#include <chrono>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include "fsp/parse.hpp"
#include "network/generate.hpp"
#include "network/network.hpp"
#include "success/analyze.hpp"
#include "success/global.hpp"
#include "util/failpoint.hpp"

namespace ccfsp {
namespace {

const char* const kModels[] = {
    "barrier.ccfsp",         "bounded_buffer.ccfsp",  "handshake_deadlock.ccfsp",
    "lossy_rpc.ccfsp",       "mutex_semaphore.ccfsp", "pipeline.ccfsp",
    "readers_writers.ccfsp", "train_crossing.ccfsp",  "two_phase_commit.ccfsp",
};

Network load_model(const std::string& name, AlphabetPtr alphabet) {
  std::string path = std::string(CCFSP_MODELS_DIR) + "/" + name;
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open model " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return Network(alphabet, parse_processes(ss.str(), alphabet));
}

/// Arm "global.worker" so that the Nth state expanded by any worker cancels
/// `token` — a deterministic mid-level cancellation, raised from inside the
/// pool itself while sibling workers are still expanding.
void arm_cancel_on_worker_hit(const CancelToken& token, std::uint64_t nth) {
  failpoint::Spec s;
  s.action = failpoint::Action::kCallback;
  s.trigger = failpoint::Trigger::kOnHit;
  s.n = nth;
  s.callback = [token](const char*, std::uint64_t) { token.cancel(); };
  failpoint::arm("global.worker", s);
}

bool same_machine(const GlobalMachine& a, const GlobalMachine& b) {
  return a.width == b.width && a.words == b.words && a.tuple_words == b.tuple_words &&
         a.edge_target == b.edge_target && a.edge_action == b.edge_action &&
         a.edge_pair == b.edge_pair && a.edge_offsets == b.edge_offsets;
}

TEST(GlobalCancel, MidLevelCancelOnModelCorpusJoinsWorkersAndClassifies) {
  failpoint::ScopedDisarm guard;
  for (const char* model : kModels) {
    auto alphabet = std::make_shared<Alphabet>();
    Network net = load_model(model, alphabet);
    GlobalMachine oracle = build_global(net, Budget::unlimited(), 1);
    for (unsigned threads : {2u, 8u}) {
      CancelToken token;
      arm_cancel_on_worker_hit(token, 1);
      auto out = try_build_global(net, Budget().watch(token), threads);
      ASSERT_EQ(out.status(), OutcomeStatus::kBudgetExhausted)
          << model << " threads=" << threads << ": " << out.message();
      EXPECT_EQ(out.budget_reason(), BudgetDimension::kCancelled)
          << model << " threads=" << threads;
      // Nothing is poisoned: the very next build (failpoint disarmed, fresh
      // token) reproduces the sequential oracle bit for bit.
      failpoint::disarm_all();
      GlobalMachine rebuilt = build_global(net, Budget::unlimited(), threads);
      EXPECT_TRUE(same_machine(oracle, rebuilt)) << model << " threads=" << threads;
    }
  }
}

TEST(GlobalCancel, MidLevelCancelOnRandomNetworks) {
  failpoint::ScopedDisarm guard;
  NetworkGenOptions opt;
  opt.num_processes = 5;
  opt.states_per_process = 5;
  for (std::uint64_t seed : {11u, 23u, 47u}) {
    Rng tree_rng(seed), cyc_rng(seed ^ 0xabcd);
    const Network nets[] = {random_tree_network(tree_rng, opt),
                            random_cyclic_tree_network(cyc_rng, opt)};
    for (const Network& net : nets) {
      for (unsigned threads : {2u, 8u}) {
        CancelToken token;
        // every:3 instead of hit:1 — the cancel lands on the 3rd, 6th, ...
        // expanded state, i.e. genuinely mid-level once the frontier widens.
        failpoint::Spec s;
        s.action = failpoint::Action::kCallback;
        s.trigger = failpoint::Trigger::kEveryK;
        s.n = 3;
        s.callback = [token](const char*, std::uint64_t) { token.cancel(); };
        failpoint::arm("global.worker", s);
        auto out = try_build_global(net, Budget().watch(token), threads);
        // Tiny state spaces can finish before the 3rd expansion; anything
        // else must classify as a cancellation. Never a crash or a hang.
        if (out.status() != OutcomeStatus::kDecided) {
          ASSERT_EQ(out.status(), OutcomeStatus::kBudgetExhausted)
              << "seed=" << seed << " threads=" << threads;
          EXPECT_EQ(out.budget_reason(), BudgetDimension::kCancelled);
        }
        failpoint::disarm_all();
      }
    }
  }
}

TEST(GlobalCancel, AnalyzeClassifiesWorkerCancelAndDoesNotRetryIt) {
  failpoint::ScopedDisarm guard;
  auto alphabet = std::make_shared<Alphabet>();
  Network net = load_model("pipeline.ccfsp", alphabet);
  for (unsigned threads : {2u, 8u}) {
    CancelToken token;
    arm_cancel_on_worker_hit(token, 1);
    AnalyzeOptions opt;
    opt.budget = Budget().watch(token);
    opt.rungs = {Rung::kExplicit};
    opt.threads = threads;
    opt.retries = 3;  // must NOT be consumed: cancellation is final
    AnalysisReport r;
    ASSERT_NO_THROW(r = analyze(net, 0, opt)) << "threads=" << threads;
    EXPECT_EQ(r.status, OutcomeStatus::kBudgetExhausted) << "threads=" << threads;
    ASSERT_EQ(r.rungs.size(), 1u) << "threads=" << threads;
    EXPECT_EQ(r.rungs[0].attempt, 0u);
    EXPECT_EQ(r.rungs[0].budget_reason, BudgetDimension::kCancelled);
    failpoint::disarm_all();
  }
}

TEST(GlobalCancel, RacyExternalCancelDuringParallelBuildIsAlwaysClassified) {
  // The nondeterministic variant: a supervising thread cancels at an
  // arbitrary moment relative to the level structure. Whatever the timing,
  // the outcome is classified and the workers are joined (TSan watches the
  // synchronization; the ASSERT watches the taxonomy).
  Network net = wave_chain_network(8, 4);
  for (unsigned threads : {2u, 8u}) {
    for (int delay_us : {0, 200, 1000, 5000}) {
      CancelToken token;
      std::thread killer([token, delay_us] {
        std::this_thread::sleep_for(std::chrono::microseconds(delay_us));
        token.cancel();
      });
      auto out = try_build_global(net, Budget().watch(token), threads);
      killer.join();
      ASSERT_TRUE(out.status() == OutcomeStatus::kDecided ||
                  out.status() == OutcomeStatus::kBudgetExhausted)
          << "threads=" << threads << " delay=" << delay_us;
      if (out.status() == OutcomeStatus::kBudgetExhausted) {
        EXPECT_EQ(out.budget_reason(), BudgetDimension::kCancelled);
      }
    }
  }
}

}  // namespace
}  // namespace ccfsp
