// Property tests for the flat global-machine engine: the packed/CSR build
// must agree bit-for-bit — state numbering, edge order, everything — with
// the retained map-based reference, and the parallel build must agree
// bit-for-bit with the sequential one on random networks and on every
// shipped model. Budget exhaustion must surface through the PR's outcome
// taxonomy in both modes.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "fsp/parse.hpp"
#include "network/families.hpp"
#include "network/generate.hpp"
#include "network/network.hpp"
#include "success/global.hpp"
#include "util/outcome.hpp"
#include "util/rng.hpp"

namespace ccfsp {
namespace {

void expect_identical(const GlobalMachine& a, const GlobalMachine& b, const char* what) {
  ASSERT_EQ(a.width, b.width) << what;
  ASSERT_EQ(a.words, b.words) << what;
  ASSERT_EQ(a.tuple_words, b.tuple_words) << what;
  ASSERT_EQ(a.edge_offsets, b.edge_offsets) << what;
  ASSERT_EQ(a.edge_target, b.edge_target) << what;
  ASSERT_EQ(a.edge_action, b.edge_action) << what;
  ASSERT_EQ(a.edge_pair, b.edge_pair) << what;
  // Every builder finalizes to exact capacity, so the retained footprint is
  // part of the bit-identity contract too (csr.bytes relies on it).
  ASSERT_EQ(a.memory_bytes(), b.memory_bytes()) << what;
}

Network load_model(const std::string& name, AlphabetPtr alphabet) {
  std::string path = std::string(CCFSP_MODELS_DIR) + "/" + name;
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open model " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return Network(alphabet, parse_processes(ss.str(), alphabet));
}

const char* const kModels[] = {
    "barrier.ccfsp",         "bounded_buffer.ccfsp",  "handshake_deadlock.ccfsp",
    "lossy_rpc.ccfsp",       "mutex_semaphore.ccfsp", "pipeline.ccfsp",
    "readers_writers.ccfsp", "train_crossing.ccfsp",  "two_phase_commit.ccfsp",
};

std::vector<Network> sample_networks() {
  std::vector<Network> nets;
  for (std::uint64_t seed : {1u, 7u, 42u}) {
    Rng rng(seed);
    NetworkGenOptions opt;
    opt.num_processes = 4;
    opt.states_per_process = 5;
    nets.push_back(random_tree_network(rng, opt));
    nets.push_back(random_ring_network(rng, opt));
    nets.push_back(random_cyclic_tree_network(rng, opt));
  }
  nets.push_back(wave_chain_network(4, 3));
  {
    Rng rng(0x5eed);
    nets.push_back(wave_tree_network(rng, 5, 2));
  }
  nets.push_back(dining_philosophers(4));
  return nets;
}

TEST(GlobalFlat, FlatBuildIdenticalToReference) {
  for (const Network& net : sample_networks()) {
    GlobalMachine ref = build_global_reference(net, Budget::with_states(1u << 20));
    GlobalMachine flat = build_global(net, Budget::with_states(1u << 20), 1);
    expect_identical(ref, flat, "flat vs reference");
  }
}

TEST(GlobalFlat, ParallelBuildBitIdenticalToSequential) {
  for (const Network& net : sample_networks()) {
    GlobalMachine seq = build_global(net, Budget::with_states(1u << 20), 1);
    for (unsigned threads : {2u, 4u}) {
      GlobalMachine par = build_global(net, Budget::with_states(1u << 20), threads);
      expect_identical(seq, par, "parallel vs sequential");
    }
  }
}

TEST(GlobalFlat, ParallelBitIdenticalOnModelCorpus) {
  for (const char* name : kModels) {
    auto alphabet = std::make_shared<Alphabet>();
    Network net = load_model(name, alphabet);
    GlobalMachine seq = build_global(net, Budget::with_states(1u << 20), 1);
    GlobalMachine par = build_global(net, Budget::with_states(1u << 20), 4);
    ASSERT_NO_FATAL_FAILURE(expect_identical(seq, par, name)) << name;
  }
}

TEST(GlobalFlat, SmallFrontiersNeverLeaveTheSequentialPath) {
  // --threads means "up to": every corpus model's BFS levels sit far below
  // kParallelFrontierThreshold, so a threads=4 build must not spawn a
  // single worker pool — and still produce the bit-identical machine.
  for (const char* name : kModels) {
    auto alphabet = std::make_shared<Alphabet>();
    Network net = load_model(name, alphabet);
    GlobalMachine seq = build_global(net, Budget::with_states(1u << 20), 1);
    GlobalMachine par = build_global(net, Budget::with_states(1u << 20), 4);
    EXPECT_EQ(par.levels_spawned, 0u) << name;
    ASSERT_NO_FATAL_FAILURE(expect_identical(seq, par, name)) << name;
  }
  // Mid-sized generated networks (hundreds to a few thousand states, but
  // no level near the threshold) stay gated too.
  for (const Network& net : sample_networks()) {
    GlobalMachine par = build_global(net, Budget::with_states(1u << 20), 4);
    EXPECT_EQ(par.levels_spawned, 0u);
  }
}

TEST(GlobalFlat, LargeFrontiersSpawnAndStayBitIdentical) {
  // phil:10 has BFS levels past the threshold: the gate must open there,
  // and the spawned build must still match the sequential one exactly.
  Network net = dining_philosophers(10);
  GlobalMachine seq = build_global(net, Budget::with_states(1u << 20), 1);
  GlobalMachine par = build_global(net, Budget::with_states(1u << 20), 4);
  EXPECT_EQ(seq.levels_spawned, 0u);
  EXPECT_GT(par.levels_spawned, 0u);
  EXPECT_LT(par.levels_spawned, seq.num_states());
  expect_identical(seq, par, "phil10");
}

TEST(GlobalFlat, BudgetExhaustionClassifiedInBothModes) {
  Network net = wave_chain_network(6, 4);  // comfortably more than 8 states
  for (unsigned threads : {1u, 4u}) {
    auto outcome = try_build_global(net, Budget::with_states(8), threads);
    ASSERT_EQ(outcome.status(), OutcomeStatus::kBudgetExhausted) << threads;
    EXPECT_EQ(outcome.budget_reason(), BudgetDimension::kStates) << threads;
    EXPECT_GE(outcome.states_explored(), 1u) << threads;
  }
}

TEST(GlobalFlat, ThrowingEntryPointStillThrowsBudgetExceeded) {
  Network net = wave_chain_network(6, 4);
  EXPECT_THROW(build_global(net, Budget::with_states(8), 1), BudgetExceeded);
  EXPECT_THROW(build_global(net, Budget::with_states(8), 4), BudgetExceeded);
}

TEST(GlobalFlat, OwnerTableRejectsThreeOwnerAction) {
  // A Definition 2 network cannot even be constructed with a three-owner
  // action (Network's constructor enforces it), so the validation is exposed
  // on raw process vectors: three processes sharing one symbol.
  auto alphabet = std::make_shared<Alphabet>();
  ActionId a = alphabet->intern("a");
  std::vector<Fsp> ps;
  for (int i = 0; i < 3; ++i) {
    Fsp p(alphabet, "P" + std::to_string(i));
    StateId s0 = p.add_state();
    StateId s1 = p.add_state();
    p.add_transition(s0, a, s1);
    ps.push_back(std::move(p));
  }
  EXPECT_THROW(action_owner_table(ps, alphabet->size()), std::invalid_argument);

  // Through the guarded bridge this is kInvalidInput, not a crash.
  auto outcome = run_guarded([&] { return action_owner_table(ps, alphabet->size()); });
  EXPECT_EQ(outcome.status(), OutcomeStatus::kInvalidInput);
  EXPECT_NE(outcome.message().find("exactly 2"), std::string::npos) << outcome.message();
}

TEST(GlobalFlat, OwnerTableAcceptsTwoOwnersAndUnusedActions) {
  auto alphabet = std::make_shared<Alphabet>();
  ActionId a = alphabet->intern("a");
  ActionId unused = alphabet->intern("unused");
  std::vector<Fsp> ps;
  for (int i = 0; i < 2; ++i) {
    Fsp p(alphabet, "P" + std::to_string(i));
    StateId s0 = p.add_state();
    StateId s1 = p.add_state();
    p.add_transition(s0, a, s1);
    ps.push_back(std::move(p));
  }
  auto owners = action_owner_table(ps, alphabet->size());
  ASSERT_EQ(owners.size(), alphabet->size());
  EXPECT_EQ(owners[a], (std::pair<std::uint32_t, std::uint32_t>{0, 1}));
  EXPECT_EQ(owners[unused].first, UINT32_MAX);
}

TEST(GlobalFlat, SingleStateNetwork) {
  // Degenerate: one process, one state, no transitions.
  auto alphabet = std::make_shared<Alphabet>();
  Fsp p(alphabet, "P");
  p.add_state();
  Network net(alphabet, {p});
  for (unsigned threads : {1u, 4u}) {
    GlobalMachine g = build_global(net, Budget::with_states(16), threads);
    EXPECT_EQ(g.num_states(), 1u);
    EXPECT_EQ(g.num_edges(), 0u);
    EXPECT_TRUE(g.is_stuck(0));
  }
}

}  // namespace
}  // namespace ccfsp
