#include "success/baseline.hpp"

#include <gtest/gtest.h>

#include "fsp/builder.hpp"
#include "network/families.hpp"

namespace ccfsp {
namespace {

TEST(Baseline, Figure3Example) {
  // The paper's Figure 3 point: S_c holds but S_u fails (Q may tau away).
  Network net = figure3_network();
  EXPECT_TRUE(success_collab_global(net, 0));
  EXPECT_TRUE(potential_blocking_global(net, 0));  // = not S_u
}

TEST(Baseline, SeparationExampleSplitsAllThree) {
  // S_u false, S_a true, S_c true — the closing example of Section 3.3.
  Network net = success_separation_network();
  EXPECT_TRUE(success_collab_global(net, 0));
  EXPECT_TRUE(potential_blocking_global(net, 0));
}

TEST(Baseline, GuaranteedSuccessNetwork) {
  auto alphabet = std::make_shared<Alphabet>();
  std::vector<Fsp> procs;
  procs.push_back(FspBuilder(alphabet, "P").trans("0", "a", "1").trans("1", "b", "2").build());
  procs.push_back(FspBuilder(alphabet, "Q").trans("0", "a", "1").trans("1", "b", "2").build());
  Network net(alphabet, std::move(procs));
  EXPECT_TRUE(success_collab_global(net, 0));
  EXPECT_FALSE(potential_blocking_global(net, 0));
}

TEST(Baseline, DoomedNetwork) {
  auto alphabet = std::make_shared<Alphabet>();
  std::vector<Fsp> procs;
  procs.push_back(FspBuilder(alphabet, "P").trans("0", "a", "1").trans("1", "b", "2").build());
  procs.push_back(FspBuilder(alphabet, "Q").trans("0", "b", "1").trans("1", "a", "2").build());
  Network net(alphabet, std::move(procs));
  EXPECT_FALSE(success_collab_global(net, 0));
  EXPECT_TRUE(potential_blocking_global(net, 0));
}

TEST(Baseline, BlockingIsAboutTheDistinguishedProcess) {
  // P finishes its one action; Q is left with an unfinishable tail. P is
  // fine (no potential blocking for P) but Q is blocked as distinguished.
  auto alphabet = std::make_shared<Alphabet>();
  std::vector<Fsp> procs;
  procs.push_back(FspBuilder(alphabet, "P").trans("0", "a", "1").action("never").build());
  procs.push_back(
      FspBuilder(alphabet, "Q").trans("0", "a", "1").trans("1", "never", "2").build());
  Network net(alphabet, std::move(procs));
  EXPECT_FALSE(potential_blocking_global(net, 0));
  EXPECT_TRUE(potential_blocking_global(net, 1));
  EXPECT_TRUE(success_collab_global(net, 0));
  EXPECT_FALSE(success_collab_global(net, 1));
}

TEST(BaselineCyclic, TokenRingRunsForever) {
  Network net = token_ring(4);
  for (std::size_t i = 0; i < net.size(); ++i) {
    EXPECT_TRUE(success_collab_cyclic_global(net, i));
    EXPECT_FALSE(potential_blocking_cyclic_global(net, i));
  }
}

TEST(BaselineCyclic, PhilosophersCanDeadlock) {
  Network net = dining_philosophers(3);
  EXPECT_TRUE(potential_blocking_cyclic_global(net, 0));
  // With collaboration they also dine forever.
  EXPECT_TRUE(success_collab_cyclic_global(net, 0));
}

TEST(BaselineCyclic, StarvationByNonPCycleDetected) {
  // P needs Q once; Q can instead loop with R forever: potential blocking
  // for P through a non-P cycle, not a stuck state.
  auto alphabet = std::make_shared<Alphabet>();
  std::vector<Fsp> procs;
  procs.push_back(FspBuilder(alphabet, "P").trans("0", "a", "1").trans("1", "a", "0").build());
  procs.push_back(FspBuilder(alphabet, "Q")
                      .trans("0", "a", "1")
                      .trans("1", "a", "0")
                      .trans("0", "r", "0")
                      .build());
  procs.push_back(FspBuilder(alphabet, "R").trans("0", "r", "0").build());
  Network net(alphabet, std::move(procs));
  EXPECT_TRUE(potential_blocking_cyclic_global(net, 0));
  EXPECT_TRUE(success_collab_cyclic_global(net, 0));
  // R by contrast can also be starved (Q may prefer P forever).
  EXPECT_TRUE(potential_blocking_cyclic_global(net, 2));
}

}  // namespace
}  // namespace ccfsp
