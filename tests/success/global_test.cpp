#include "success/global.hpp"

#include <gtest/gtest.h>

#include "fsp/builder.hpp"
#include "network/families.hpp"

namespace ccfsp {
namespace {

TEST(GlobalMachine, Figure3StateSpace) {
  // P: 1 -a-> 2;  Q: 1 -a-> 2, 1 -tau-> 3.
  // Global states: (1,1), (2,2), (1,3).
  Network net = figure3_network();
  GlobalMachine g = build_global(net);
  EXPECT_EQ(g.num_states(), 3u);
  EXPECT_EQ(g.out_targets(0).size(), 2u);  // handshake a, or Q's tau
  std::size_t stuck = 0;
  for (std::uint32_t s = 0; s < g.num_states(); ++s) {
    if (g.is_stuck(s)) ++stuck;
  }
  EXPECT_EQ(stuck, 2u);  // (2,2) and (1,3)
}

TEST(GlobalMachine, HandshakeMovesBothComponents) {
  auto alphabet = std::make_shared<Alphabet>();
  std::vector<Fsp> procs;
  procs.push_back(FspBuilder(alphabet, "P").trans("0", "a", "1").build());
  procs.push_back(FspBuilder(alphabet, "Q").trans("0", "a", "1").build());
  Network net(alphabet, std::move(procs));
  GlobalMachine g = build_global(net);
  ASSERT_EQ(g.out_targets(0).size(), 1u);
  const std::uint32_t e = g.edge_offsets[0];
  EXPECT_TRUE(g.process_moves(e, 0));
  EXPECT_TRUE(g.process_moves(e, 1));
  EXPECT_EQ(g.tuple_vec(g.target(e)), (std::vector<StateId>{1, 1}));
}

TEST(GlobalMachine, TauMovesSingleComponent) {
  auto alphabet = std::make_shared<Alphabet>();
  std::vector<Fsp> procs;
  procs.push_back(FspBuilder(alphabet, "P").trans("0", "tau", "1").trans("1", "a", "2").build());
  procs.push_back(FspBuilder(alphabet, "Q").trans("0", "a", "1").build());
  Network net(alphabet, std::move(procs));
  GlobalMachine g = build_global(net);
  const std::uint32_t e = g.edge_offsets[0];
  EXPECT_TRUE(g.process_moves(e, 0));
  EXPECT_FALSE(g.process_moves(e, 1));
}

TEST(GlobalMachine, TokenRingIsALoop) {
  Network net = token_ring(3);
  GlobalMachine g = build_global(net);
  // Token circulates: exactly 3 global states, one edge each, no stuck.
  EXPECT_EQ(g.num_states(), 3u);
  for (std::uint32_t s = 0; s < g.num_states(); ++s) {
    EXPECT_EQ(g.out_targets(s).size(), 1u);
  }
}

TEST(GlobalMachine, PhilosophersHaveDeadlockState) {
  Network net = dining_philosophers(3);
  GlobalMachine g = build_global(net);
  bool deadlock = false;
  for (std::uint32_t s = 0; s < g.num_states(); ++s) {
    if (g.is_stuck(s)) deadlock = true;
  }
  EXPECT_TRUE(deadlock);
}

TEST(GlobalMachine, StateBudgetEnforced) {
  Network net = dining_philosophers(5);
  EXPECT_THROW(build_global(net, 10), std::runtime_error);
}

}  // namespace
}  // namespace ccfsp
