#include "success/witness.hpp"

#include <gtest/gtest.h>

#include "fsp/builder.hpp"
#include "network/families.hpp"
#include "network/generate.hpp"
#include "success/baseline.hpp"

namespace ccfsp {
namespace {

TEST(Witness, Figure3BlockingSchedule) {
  Network net = figure3_network();
  auto w = blocking_witness(net, 0);
  ASSERT_TRUE(w.has_value());
  // Shortest blocking run: Q taus to its dead branch — one step.
  EXPECT_EQ(w->steps.size(), 1u);
  EXPECT_EQ(w->steps[0].mover, 1u);  // Q moved
  EXPECT_EQ(w->steps[0].partner, 1u);  // alone (tau)
  // P is still at its start in the final tuple.
  EXPECT_EQ(w->final_tuple[0], net.process(0).start());
}

TEST(Witness, Figure3SuccessSchedule) {
  Network net = figure3_network();
  auto w = collab_witness(net, 0);
  ASSERT_TRUE(w.has_value());
  EXPECT_EQ(w->steps.size(), 1u);  // the a-handshake
  EXPECT_EQ(w->steps[0].mover, 0u);
  EXPECT_EQ(w->steps[0].partner, 1u);
  EXPECT_TRUE(net.process(0).is_leaf(w->final_tuple[0]));
}

TEST(Witness, AbsentWhenPredicateFalse) {
  auto alphabet = std::make_shared<Alphabet>();
  std::vector<Fsp> procs;
  procs.push_back(FspBuilder(alphabet, "P").trans("0", "a", "1").build());
  procs.push_back(FspBuilder(alphabet, "Q").trans("0", "a", "1").build());
  Network net(alphabet, std::move(procs));
  EXPECT_FALSE(blocking_witness(net, 0).has_value());  // S_u holds
  EXPECT_TRUE(collab_witness(net, 0).has_value());
}

TEST(Witness, StepsReplayToTheFinalTuple) {
  // Each step's tuple must follow from the previous by exactly one legal
  // move of the network; check the last tuple is genuinely stuck.
  Rng rng(4);
  NetworkGenOptions opt;
  opt.num_processes = 3;
  opt.states_per_process = 5;
  Network net = random_tree_network(rng, opt);
  auto w = blocking_witness(net, 0);
  if (!w) GTEST_SKIP() << "instance has no blocking";
  ASSERT_FALSE(w->steps.empty());
  EXPECT_EQ(w->steps.back().tuple_after, w->final_tuple);
  // Final tuple is stuck: rebuild the global machine and locate it.
  GlobalMachine g = build_global(net);
  for (std::uint32_t s = 0; s < g.num_states(); ++s) {
    if (g.tuple_vec(s) == w->final_tuple) {
      EXPECT_TRUE(g.is_stuck(s));
    }
  }
}

TEST(Witness, WitnessExistenceMatchesPredicates) {
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    Rng rng(seed);
    NetworkGenOptions opt;
    opt.num_processes = 2 + rng.below(3);
    opt.states_per_process = 4;
    Network net = random_tree_network(rng, opt);
    EXPECT_EQ(blocking_witness(net, 0).has_value(), potential_blocking_global(net, 0))
        << seed;
    EXPECT_EQ(collab_witness(net, 0).has_value(), success_collab_global(net, 0)) << seed;
  }
}

TEST(Witness, FormatMentionsProcessesAndActions) {
  Network net = figure3_network();
  auto w = collab_witness(net, 0);
  ASSERT_TRUE(w.has_value());
  std::string text = format_witness(net, *w);
  EXPECT_NE(text.find("P"), std::string::npos);
  EXPECT_NE(text.find("--a--"), std::string::npos);
  EXPECT_NE(text.find("final:"), std::string::npos);
}

TEST(LassoWitness, StuckStateGivesEmptyCycle) {
  Network net = dining_philosophers(3);
  auto w = cyclic_blocking_witness(net, 0);
  ASSERT_TRUE(w.has_value());
  EXPECT_FALSE(w->is_starvation());
  EXPECT_EQ(w->prefix.size(), 3u);  // the three left-fork pickups
}

TEST(LassoWitness, StarvationGivesPumpableCycle) {
  // P needs Q; Q can instead loop with R forever (see baseline_test).
  auto alphabet = std::make_shared<Alphabet>();
  std::vector<Fsp> procs;
  procs.push_back(FspBuilder(alphabet, "P").trans("0", "a", "1").trans("1", "a", "0").build());
  procs.push_back(FspBuilder(alphabet, "Q")
                      .trans("0", "a", "1")
                      .trans("1", "a", "0")
                      .trans("0", "r", "0")
                      .build());
  procs.push_back(FspBuilder(alphabet, "R").trans("0", "r", "0").build());
  Network net(alphabet, std::move(procs));
  auto w = cyclic_blocking_witness(net, 0);
  ASSERT_TRUE(w.has_value());
  EXPECT_TRUE(w->is_starvation());
  // Every cycle step avoids P.
  for (const auto& step : w->cycle) {
    EXPECT_NE(step.mover, 0u);
    EXPECT_NE(step.partner, 0u);
  }
  std::string text = format_lasso(net, *w);
  EXPECT_NE(text.find("cycle"), std::string::npos);
}

TEST(LassoWitness, AbsentForLiveNetworks) {
  Network net = token_ring(4);
  for (std::size_t p = 0; p < net.size(); ++p) {
    EXPECT_FALSE(cyclic_blocking_witness(net, p).has_value()) << p;
  }
}

TEST(LassoWitness, MatchesCyclicBlockingDecider) {
  for (std::uint64_t seed = 200; seed < 212; ++seed) {
    Rng rng(seed);
    NetworkGenOptions opt;
    opt.num_processes = 2 + rng.below(3);
    opt.states_per_process = 4;
    Network net = random_cyclic_tree_network(rng, opt);
    for (std::size_t p = 0; p < net.size(); ++p) {
      EXPECT_EQ(cyclic_blocking_witness(net, p).has_value(),
                potential_blocking_cyclic_global(net, p))
          << "seed " << seed << " p " << p;
    }
  }
}

TEST(Witness, PhilosopherDeadlockScheduleIsTheClassicOne) {
  Network net = dining_philosophers(3);
  auto w = blocking_witness(net, 0);
  ASSERT_TRUE(w.has_value());
  // Three pickups, each a phil-fork handshake.
  EXPECT_EQ(w->steps.size(), 3u);
  for (const auto& step : w->steps) {
    EXPECT_NE(step.mover, step.partner);
  }
}

}  // namespace
}  // namespace ccfsp
