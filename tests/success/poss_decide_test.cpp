// The Lemma 3/4 deciders working straight off possibility automata must
// agree with the explicit global machine on everything — this is the
// paper's central semantic claim (success predicates are functions of
// possibilities) run as a differential test.
#include "success/poss_decide.hpp"

#include <gtest/gtest.h>

#include "fsp/builder.hpp"
#include "network/families.hpp"
#include "network/generate.hpp"
#include "success/baseline.hpp"
#include "success/context.hpp"

namespace ccfsp {
namespace {

TEST(PossDecide, Figure3) {
  Network net = figure3_network();
  Fsp q = compose_context(net, 0);
  EXPECT_TRUE(collab_by_possibilities(net.process(0), q));
  EXPECT_TRUE(blocking_by_possibilities(net.process(0), q));
}

TEST(PossDecide, HappyPairNeverBlocks) {
  auto alphabet = std::make_shared<Alphabet>();
  Fsp p = FspBuilder(alphabet, "P").trans("0", "a", "1").trans("1", "b", "2").build();
  Fsp q = FspBuilder(alphabet, "Q").trans("0", "a", "1").trans("1", "b", "2").build();
  EXPECT_TRUE(collab_by_possibilities(p, q));
  EXPECT_FALSE(blocking_by_possibilities(p, q));
}

TEST(PossDecide, OrderMismatchBlocksAndNeverCompletes) {
  auto alphabet = std::make_shared<Alphabet>();
  Fsp p = FspBuilder(alphabet, "P").trans("0", "a", "1").trans("1", "b", "2").build();
  Fsp q = FspBuilder(alphabet, "Q").trans("0", "b", "1").trans("1", "a", "2").build();
  EXPECT_FALSE(collab_by_possibilities(p, q));
  EXPECT_TRUE(blocking_by_possibilities(p, q));
}

class PossDecideRandomized : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PossDecideRandomized, AgreesWithGlobalOnAcyclicNetworks) {
  Rng rng(GetParam());
  NetworkGenOptions opt;
  opt.num_processes = 2 + rng.below(3);
  opt.states_per_process = 4 + rng.below(3);
  opt.tau_probability = 0.2;
  Network net = random_tree_network(rng, opt);
  for (std::size_t p_idx = 0; p_idx < net.size(); ++p_idx) {
    Fsp q = compose_context(net, p_idx);
    const Fsp& p = net.process(p_idx);
    EXPECT_EQ(collab_by_possibilities(p, q), success_collab_global(net, p_idx))
        << "seed " << GetParam() << " p " << p_idx;
    EXPECT_EQ(blocking_by_possibilities(p, q), potential_blocking_global(net, p_idx))
        << "seed " << GetParam() << " p " << p_idx;
  }
}

TEST_P(PossDecideRandomized, CyclicBlockingAgreesWithGlobal) {
  Rng rng(GetParam() + 5000);
  NetworkGenOptions opt;
  opt.num_processes = 2 + rng.below(3);
  opt.states_per_process = 3 + rng.below(3);
  opt.symbols_per_edge = 1 + rng.below(2);
  Network net = random_cyclic_tree_network(rng, opt);
  for (std::size_t p_idx = 0; p_idx < net.size(); ++p_idx) {
    Fsp q = compose_context(net, p_idx, /*cyclic=*/true);
    EXPECT_EQ(cyclic_blocking_by_possibilities(net.process(p_idx), q),
              potential_blocking_cyclic_global(net, p_idx))
        << "seed " << GetParam() << " p " << p_idx;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PossDecideRandomized,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15,
                                           16, 17, 18, 19, 20));

TEST(PossDecide, CyclicDivergenceCountsAsRefusal) {
  // Q can silently diverge after one handshake: under the cyclic reading
  // that refuses everything, so blocking holds even though a live branch
  // exists too.
  auto alphabet = std::make_shared<Alphabet>();
  Fsp p = FspBuilder(alphabet, "P").trans("0", "x", "0").build();
  Fsp q_raw = FspBuilder(alphabet, "Q")
                  .trans("0", "x", "1")
                  .trans("1", "x", "0")
                  .trans("1", "tau", "1")
                  .build();
  Fsp q = add_divergence_leaves(q_raw);
  EXPECT_TRUE(cyclic_blocking_by_possibilities(p, q));
  // Without the divergence treatment the tau-loop is invisible to Poss —
  // exactly why Section 4 modifies the composition operator.
  EXPECT_FALSE(cyclic_blocking_by_possibilities(p, q_raw));
}

TEST(PossDecide, PhilosophersBlockTokenRingDoesNot) {
  Network phil = dining_philosophers(3);
  Fsp qp = compose_context(phil, 0, /*cyclic=*/true);
  EXPECT_TRUE(cyclic_blocking_by_possibilities(phil.process(0), qp));

  Network ring = token_ring(4);
  Fsp qr = compose_context(ring, 0, /*cyclic=*/true);
  EXPECT_FALSE(cyclic_blocking_by_possibilities(ring.process(0), qr));
}

}  // namespace
}  // namespace ccfsp
