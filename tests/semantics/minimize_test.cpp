#include <gtest/gtest.h>

#include "equiv/equivalences.hpp"
#include "fsp/builder.hpp"
#include "fsp/generate.hpp"
#include "semantics/normal_form.hpp"
#include "semantics/poss_automaton.hpp"

namespace ccfsp {
namespace {

AnnotatedDfa poss_dfa(const Fsp& f) {
  return annotated_determinize(f, SemanticAnnotation::kPossibilities);
}

TEST(Minimize, MergesBehaviorallyEqualStates) {
  auto alphabet = std::make_shared<Alphabet>();
  // Two a-branches with identical continuations determinize into one path,
  // but add distinct prefixes that converge behaviourally: x-a and y-a both
  // lead to "offer b then stop".
  Fsp f = FspBuilder(alphabet, "P")
              .trans("0", "x", "1")
              .trans("0", "y", "2")
              .trans("1", "a", "3")
              .trans("2", "a", "4")
              .trans("3", "b", "5")
              .trans("4", "b", "6")
              .build();
  AnnotatedDfa dfa = poss_dfa(f);
  AnnotatedDfa min = minimize(dfa);
  EXPECT_LT(min.num_states(), dfa.num_states());
  EXPECT_TRUE(annotated_dfa_equivalent(dfa, min));
}

TEST(Minimize, CanonicalAcrossEquivalentInputs) {
  // An FSP and its possibility normal form have equal possibilities; their
  // minimized automata must be IDENTICAL (same numbering), not merely
  // equivalent.
  Rng rng(88);
  auto alphabet = std::make_shared<Alphabet>();
  std::vector<ActionId> pool{alphabet->intern("a"), alphabet->intern("b")};
  for (int iter = 0; iter < 15; ++iter) {
    TreeFspOptions opt;
    opt.num_states = 9;
    opt.tau_probability = 0.3;
    Fsp f = random_tree_fsp(rng, alphabet, pool, opt, "T");
    Fsp nf = poss_normal_form(f);
    AnnotatedDfa a = minimize(poss_dfa(f));
    AnnotatedDfa b = minimize(poss_dfa(nf));
    EXPECT_EQ(a.start, b.start) << iter;
    ASSERT_EQ(a.num_states(), b.num_states()) << iter;
    EXPECT_EQ(a.trans, b.trans) << iter;
    EXPECT_EQ(a.annotation, b.annotation) << iter;
  }
}

TEST(Minimize, IdempotentAndEquivalencePreserving) {
  Rng rng(99);
  auto alphabet = std::make_shared<Alphabet>();
  std::vector<ActionId> pool{alphabet->intern("a"), alphabet->intern("b")};
  for (int iter = 0; iter < 10; ++iter) {
    Fsp f = random_cyclic_fsp(rng, alphabet, pool, 6, 4, "C");
    AnnotatedDfa dfa = poss_dfa(f);
    AnnotatedDfa min1 = minimize(dfa);
    AnnotatedDfa min2 = minimize(min1);
    EXPECT_EQ(min1.num_states(), min2.num_states());
    EXPECT_TRUE(annotated_dfa_equivalent(dfa, min1));
  }
}

TEST(Minimize, DistinguishesByAnnotationEvenWithEqualTransitions) {
  auto alphabet = std::make_shared<Alphabet>();
  // Same language (a b), same DFA transition skeleton, but Q's state after
  // "a" can also tau-drift to a dead stable state — an extra (a, {})
  // possibility that only the annotation sees.
  Fsp p = FspBuilder(alphabet, "P")
              .trans("0", "a", "1")
              .trans("1", "b", "2")
              .build();
  Fsp q = FspBuilder(alphabet, "Q")
              .trans("0", "a", "1")
              .trans("1", "b", "2")
              .trans("1", "tau", "3")
              .build();
  AnnotatedDfa mp = minimize(poss_dfa(p));
  AnnotatedDfa mq = minimize(poss_dfa(q));
  EXPECT_FALSE(annotated_dfa_equivalent(mp, mq));
}

TEST(Minimize, AgreesWithDirectEquivalenceCheck) {
  Rng rng(123);
  auto alphabet = std::make_shared<Alphabet>();
  std::vector<ActionId> pool{alphabet->intern("a"), alphabet->intern("b")};
  for (int iter = 0; iter < 20; ++iter) {
    TreeFspOptions opt;
    opt.num_states = 7;
    opt.tau_probability = 0.25;
    Fsp f = random_tree_fsp(rng, alphabet, pool, opt, "F");
    Fsp g = random_tree_fsp(rng, alphabet, pool, opt, "G");
    bool direct = possibility_equivalent(f, g);
    AnnotatedDfa mf = minimize(poss_dfa(f));
    AnnotatedDfa mg = minimize(poss_dfa(g));
    bool via_min = mf.trans == mg.trans && mf.annotation == mg.annotation &&
                   mf.start == mg.start;
    EXPECT_EQ(direct, via_min) << iter;
  }
}

}  // namespace
}  // namespace ccfsp
