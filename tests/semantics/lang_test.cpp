#include "semantics/lang.hpp"

#include <gtest/gtest.h>

#include "fsp/builder.hpp"

namespace ccfsp {
namespace {

class LangTest : public ::testing::Test {
 protected:
  AlphabetPtr alphabet = std::make_shared<Alphabet>();
  ActionId a() { return alphabet->intern("a"); }
  ActionId b() { return alphabet->intern("b"); }
};

TEST_F(LangTest, MembershipWithTauMoves) {
  Fsp f = FspBuilder(alphabet, "P")
              .trans("0", "tau", "1")
              .trans("1", "a", "2")
              .trans("2", "b", "3")
              .build();
  EXPECT_TRUE(lang_contains(f, {}));
  EXPECT_TRUE(lang_contains(f, {a()}));
  EXPECT_TRUE(lang_contains(f, {a(), b()}));
  EXPECT_FALSE(lang_contains(f, {b()}));
  EXPECT_FALSE(lang_contains(f, {a(), a()}));
}

TEST_F(LangTest, MembershipOnNondeterministicBranches) {
  Fsp f = FspBuilder(alphabet, "P")
              .trans("0", "a", "1")
              .trans("0", "a", "2")
              .trans("2", "b", "3")
              .build();
  EXPECT_TRUE(lang_contains(f, {a(), b()}));  // must pick the 0->2 branch
}

TEST_F(LangTest, EnumerateLangIsPrefixClosedAndComplete) {
  Fsp f = FspBuilder(alphabet, "P")
              .trans("0", "a", "1")
              .trans("1", "b", "2")
              .trans("0", "b", "3")
              .build();
  auto strings = enumerate_lang(f, 5);
  // {eps, a, ab, b}
  EXPECT_EQ(strings.size(), 4u);
  for (const auto& s : strings) {
    EXPECT_TRUE(lang_contains(f, s));
    if (!s.empty()) {
      std::vector<ActionId> prefix(s.begin(), s.end() - 1);
      EXPECT_TRUE(lang_contains(f, prefix));
    }
  }
}

TEST_F(LangTest, EnumerateRespectsMaxLen) {
  Fsp f = FspBuilder(alphabet, "P").trans("0", "a", "0").build();
  auto strings = enumerate_lang(f, 3);
  EXPECT_EQ(strings.size(), 4u);  // eps, a, aa, aaa
}

TEST_F(LangTest, InfiniteDetection) {
  Fsp finite = FspBuilder(alphabet, "F").trans("0", "a", "1").build();
  EXPECT_FALSE(lang_infinite(finite));

  Fsp loop = FspBuilder(alphabet, "L").trans("0", "a", "1").trans("1", "b", "0").build();
  EXPECT_TRUE(lang_infinite(loop));

  // A tau-only cycle does not make the language infinite.
  Fsp tau_loop = FspBuilder(alphabet, "T")
                     .trans("0", "a", "1")
                     .trans("1", "tau", "1")
                     .build();
  EXPECT_FALSE(lang_infinite(tau_loop));
}

TEST_F(LangTest, LongestStringLength) {
  Fsp f = FspBuilder(alphabet, "P")
              .trans("0", "a", "1")
              .trans("1", "tau", "2")
              .trans("2", "b", "3")
              .trans("0", "b", "4")
              .build();
  auto len = longest_string_length(f);
  ASSERT_TRUE(len.has_value());
  EXPECT_EQ(*len, 2u);  // "ab"

  Fsp inf = FspBuilder(alphabet, "I").trans("0", "a", "0").build();
  EXPECT_FALSE(longest_string_length(inf).has_value());
}

TEST_F(LangTest, LongestStringLengthWithTauCycleInside) {
  // tau cycle mid-path must not be counted as observable length.
  Fsp f = FspBuilder(alphabet, "P")
              .trans("0", "a", "1")
              .trans("1", "tau", "2")
              .trans("2", "tau", "1")
              .trans("2", "b", "3")
              .build();
  auto len = longest_string_length(f);
  ASSERT_TRUE(len.has_value());
  EXPECT_EQ(*len, 2u);
}

TEST_F(LangTest, IntersectionInfiniteOnMatchingLoops) {
  Fsp p = FspBuilder(alphabet, "P").trans("0", "a", "0").build();
  Fsp q = FspBuilder(alphabet, "Q").trans("0", "a", "1").trans("1", "a", "0").build();
  EXPECT_TRUE(lang_intersection_infinite(p, q));
}

TEST_F(LangTest, IntersectionFiniteWhenHandshakesRunOut) {
  Fsp p = FspBuilder(alphabet, "P").trans("0", "a", "0").build();
  Fsp q = FspBuilder(alphabet, "Q").trans("0", "a", "1").build();  // only one a
  EXPECT_FALSE(lang_intersection_infinite(p, q));
}

TEST_F(LangTest, IntersectionIgnoresPureTauCycles) {
  Fsp p = FspBuilder(alphabet, "P").trans("0", "a", "0").build();
  Fsp q = FspBuilder(alphabet, "Q")
              .trans("0", "a", "1")
              .trans("1", "tau", "1")
              .build();
  // Q can stall forever silently but only one shared action ever happens.
  EXPECT_FALSE(lang_intersection_infinite(p, q));
}

TEST_F(LangTest, IntersectionNeedsBothSidesToLoop) {
  Fsp p = FspBuilder(alphabet, "P")
              .trans("0", "a", "1")
              .trans("1", "b", "0")
              .build();
  Fsp q = FspBuilder(alphabet, "Q")
              .trans("0", "a", "1")
              .trans("1", "b", "2")
              .trans("2", "a", "2")  // wrong continuation: a forever, no b
              .build();
  EXPECT_FALSE(lang_intersection_infinite(p, q));
  (void)b();
}

}  // namespace
}  // namespace ccfsp
