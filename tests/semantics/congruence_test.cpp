// Property-based checks of Lemma 2 (acyclic) and Lemma 2' (cyclic): the
// possibility and language equivalences are congruences for composition.
// Equivalent-but-different processes are manufactured from a given P1 by
// possibility normal forms (acyclic) and bisimulation quotients (cyclic) —
// both provably equivalence-preserving — and then composed against a random
// partner.
#include <gtest/gtest.h>

#include "algebra/compose.hpp"
#include "equiv/bisim.hpp"
#include "equiv/equivalences.hpp"
#include "fsp/generate.hpp"
#include "semantics/normal_form.hpp"

namespace ccfsp {
namespace {

class CongruenceTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CongruenceTest, Lemma2PossCongruenceOnTrees) {
  Rng rng(GetParam());
  auto alphabet = std::make_shared<Alphabet>();
  std::vector<ActionId> shared{alphabet->intern("s1"), alphabet->intern("s2")};
  std::vector<ActionId> partner_pool = shared;
  partner_pool.push_back(alphabet->intern("p1"));
  std::vector<ActionId> subject_pool = shared;
  subject_pool.push_back(alphabet->intern("q1"));

  TreeFspOptions opt;
  opt.num_states = 8;
  opt.tau_probability = 0.25;
  Fsp p = random_tree_fsp(rng, alphabet, partner_pool, opt, "P");
  Fsp p1 = random_tree_fsp(rng, alphabet, subject_pool, opt, "P1");
  Fsp p2 = poss_normal_form(p1);
  ASSERT_TRUE(possibility_equivalent(p1, p2));

  EXPECT_TRUE(possibility_equivalent(compose(p, p1), compose(p, p2)));
  EXPECT_TRUE(language_equivalent(compose(p, p1), compose(p, p2)));
}

TEST_P(CongruenceTest, Lemma2PossCongruenceOnDags) {
  Rng rng(GetParam() + 1000);
  auto alphabet = std::make_shared<Alphabet>();
  std::vector<ActionId> shared{alphabet->intern("s")};
  std::vector<ActionId> partner_pool = shared;
  partner_pool.push_back(alphabet->intern("x"));
  std::vector<ActionId> subject_pool = shared;
  subject_pool.push_back(alphabet->intern("y"));

  TreeFspOptions opt;
  opt.num_states = 7;
  opt.tau_probability = 0.2;
  Fsp p = random_acyclic_fsp(rng, alphabet, partner_pool, opt, 3, "P");
  Fsp p1 = random_acyclic_fsp(rng, alphabet, subject_pool, opt, 3, "P1");
  Fsp p2 = poss_normal_form(p1);

  EXPECT_TRUE(possibility_equivalent(compose(p, p1), compose(p, p2)));
}

TEST_P(CongruenceTest, Lemma2PrimeCyclicCongruenceViaBisim) {
  Rng rng(GetParam() + 2000);
  auto alphabet = std::make_shared<Alphabet>();
  std::vector<ActionId> shared{alphabet->intern("cs")};
  std::vector<ActionId> partner_pool = shared;
  partner_pool.push_back(alphabet->intern("cx"));
  std::vector<ActionId> subject_pool = shared;
  subject_pool.push_back(alphabet->intern("cy"));

  Fsp p = random_cyclic_fsp(rng, alphabet, partner_pool, 5, 3, "P");
  Fsp p1 = random_cyclic_fsp(rng, alphabet, subject_pool, 5, 3, "P1");
  Fsp p2 = quotient_by_bisimulation(p1);
  ASSERT_TRUE(possibility_equivalent(p1, p2));

  Fsp c1 = cyclic_compose(p, p1);
  Fsp c2 = cyclic_compose(p, p2);
  EXPECT_TRUE(possibility_equivalent(c1, c2));
  EXPECT_TRUE(language_equivalent(c1, c2));
}

TEST_P(CongruenceTest, CompositionOrderIrrelevantForPossibilities) {
  // Commutativity at the semantic level (Lemma 1 consequence).
  Rng rng(GetParam() + 3000);
  auto alphabet = std::make_shared<Alphabet>();
  std::vector<ActionId> shared{alphabet->intern("os")};
  std::vector<ActionId> pa = shared, pb = shared;
  pa.push_back(alphabet->intern("oa"));
  pb.push_back(alphabet->intern("ob"));
  TreeFspOptions opt;
  opt.num_states = 6;
  Fsp p = random_tree_fsp(rng, alphabet, pa, opt, "A");
  Fsp q = random_tree_fsp(rng, alphabet, pb, opt, "B");
  EXPECT_TRUE(possibility_equivalent(compose(p, q), compose(q, p)));
}

INSTANTIATE_TEST_SUITE_P(Seeds, CongruenceTest,
                         ::testing::Values(1, 2, 3, 4, 5, 11, 23, 47, 101, 999));

}  // namespace
}  // namespace ccfsp
