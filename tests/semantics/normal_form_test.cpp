#include "semantics/normal_form.hpp"

#include <gtest/gtest.h>

#include "equiv/equivalences.hpp"
#include "fsp/builder.hpp"
#include "fsp/generate.hpp"
#include "semantics/lang.hpp"

namespace ccfsp {
namespace {

class NormalFormTest : public ::testing::Test {
 protected:
  AlphabetPtr alphabet = std::make_shared<Alphabet>();
};

TEST_F(NormalFormTest, PreservesPossibilitiesOnTrees) {
  Rng rng(2024);
  std::vector<ActionId> pool{alphabet->intern("a"), alphabet->intern("b"),
                             alphabet->intern("c")};
  for (int iter = 0; iter < 30; ++iter) {
    TreeFspOptions opt;
    opt.num_states = 12;
    opt.tau_probability = 0.3;
    Fsp f = random_tree_fsp(rng, alphabet, pool, opt, "T");
    Fsp nf = poss_normal_form(f);
    EXPECT_TRUE(possibility_equivalent(f, nf)) << "iter " << iter;
    EXPECT_TRUE(language_equivalent(f, nf)) << "iter " << iter;
  }
}

TEST_F(NormalFormTest, PreservesPossibilitiesOnDags) {
  Rng rng(99);
  std::vector<ActionId> pool{alphabet->intern("a"), alphabet->intern("b")};
  for (int iter = 0; iter < 20; ++iter) {
    TreeFspOptions opt;
    opt.num_states = 8;
    opt.tau_probability = 0.25;
    Fsp f = random_acyclic_fsp(rng, alphabet, pool, opt, 4, "D");
    Fsp nf = poss_normal_form(f);
    EXPECT_TRUE(possibility_equivalent(f, nf)) << "iter " << iter;
  }
}

TEST_F(NormalFormTest, IdempotentUpToEquivalence) {
  Rng rng(5);
  std::vector<ActionId> pool{alphabet->intern("a"), alphabet->intern("b")};
  TreeFspOptions opt;
  opt.num_states = 10;
  Fsp f = random_tree_fsp(rng, alphabet, pool, opt, "T");
  Fsp nf1 = poss_normal_form(f);
  Fsp nf2 = poss_normal_form(nf1);
  EXPECT_TRUE(possibility_equivalent(nf1, nf2));
  // Second application cannot grow the representation.
  EXPECT_LE(nf2.num_states(), nf1.num_states() + 1);
}

TEST_F(NormalFormTest, CollapsesRedundantStructure) {
  // Two tau branches with identical futures: one possibility, small form.
  Fsp f = FspBuilder(alphabet, "R")
              .trans("r", "tau", "x")
              .trans("r", "tau", "y")
              .trans("x", "a", "x1")
              .trans("y", "a", "y1")
              .build();
  Fsp nf = poss_normal_form(f);
  EXPECT_LT(nf.num_states(), f.num_states());
  EXPECT_TRUE(possibility_equivalent(f, nf));
}

TEST_F(NormalFormTest, PreservesDeclaredSigma) {
  Fsp f = FspBuilder(alphabet, "S").trans("0", "a", "1").action("ghost").build();
  Fsp nf = poss_normal_form(f);
  EXPECT_TRUE(nf.sigma_set().test(*alphabet->find("ghost")));
}

TEST_F(NormalFormTest, FromPossibilitiesExactRealization) {
  ActionId a = alphabet->intern("a");
  ActionId b = alphabet->intern("b");
  // {(eps,{a}), (eps,{b}), (a,{}), (b,{})}: a process that commits silently
  // to offering a or b.
  std::vector<Possibility> poss{{{}, {a}}, {{}, {b}}, {{a}, {}}, {{b}, {}}};
  Fsp f = fsp_from_possibilities(poss, alphabet, "built");
  auto extracted = possibilities_acyclic(f);
  canonicalize(poss);
  EXPECT_EQ(extracted, poss);
}

TEST_F(NormalFormTest, FromPossibilitiesRejectsBadSets) {
  ActionId a = alphabet->intern("a");
  EXPECT_THROW(fsp_from_possibilities({}, alphabet, "x"), std::invalid_argument);
  // Not prefix-closed: string "a" with no possibility for eps.
  EXPECT_THROW(fsp_from_possibilities({{{a}, {}}}, alphabet, "x"), std::invalid_argument);
  // Ready action leading outside the string set.
  EXPECT_THROW(fsp_from_possibilities({{{}, {a}}}, alphabet, "x"), std::invalid_argument);
}

TEST_F(NormalFormTest, UncoveredLanguageExtensionsSurvive) {
  // Regression for the subtle case: "a" is in the language only via an
  // unstable root, while the only stable sibling at eps offers {b}. The
  // normal form needs a direct router edge for "a".
  Fsp f = FspBuilder(alphabet, "U")
              .trans("r", "a", "x")
              .trans("r", "tau", "y")
              .trans("y", "b", "z")
              .build();
  Fsp nf = poss_normal_form(f);
  EXPECT_TRUE(possibility_equivalent(f, nf));
  EXPECT_TRUE(lang_contains(nf, {*alphabet->find("a")}));
}

TEST_F(NormalFormTest, SizeLinearInPossibilities) {
  // A long linear process: the normal form stays linear in size.
  Rng rng(8);
  std::vector<ActionId> pool{alphabet->intern("a"), alphabet->intern("b")};
  Fsp f = random_linear_fsp(rng, alphabet, pool, 40, 0.2, "L");
  Fsp nf = poss_normal_form(f);
  EXPECT_LE(nf.num_states(), 3 * f.num_states());
}

}  // namespace
}  // namespace ccfsp
