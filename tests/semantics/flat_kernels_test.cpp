// Property tests for the flat reduction kernels against their retained
// oracles: annotated_determinize (CSR/interned subset construction) vs the
// original map/set implementation, minimize (Paige–Tarjan) vs the Moore
// loop, and poss_normal_form (DFA unfolding) vs the possibility-extraction
// reference — all of which must agree *exactly*, numbering and labels
// included, not merely up to equivalence. Budget and failpoint behaviour of
// the new paths is pinned here too.
#include <gtest/gtest.h>

#include "fsp/builder.hpp"
#include "fsp/generate.hpp"
#include "semantics/normal_form.hpp"
#include "semantics/poss_automaton.hpp"
#include "util/budget.hpp"
#include "util/failpoint.hpp"

namespace ccfsp {
namespace {

void expect_dfa_identical(const AnnotatedDfa& a, const AnnotatedDfa& b, const char* what) {
  EXPECT_EQ(a.start, b.start) << what;
  EXPECT_EQ(a.trans, b.trans) << what;
  EXPECT_EQ(a.annotation, b.annotation) << what;
  EXPECT_EQ(a.subsets, b.subsets) << what;
}

void expect_fsp_identical(const Fsp& a, const Fsp& b, const char* what) {
  ASSERT_EQ(a.num_states(), b.num_states()) << what;
  EXPECT_EQ(a.start(), b.start()) << what;
  EXPECT_EQ(a.sigma(), b.sigma()) << what;
  for (StateId s = 0; s < a.num_states(); ++s) {
    EXPECT_EQ(a.out(s), b.out(s)) << what << " state " << s;
    EXPECT_EQ(a.state_label(s), b.state_label(s)) << what << " state " << s;
  }
}

class FlatKernels : public ::testing::Test {
 protected:
  AlphabetPtr alphabet = std::make_shared<Alphabet>();
  std::vector<ActionId> pool{alphabet->intern("a"), alphabet->intern("b"),
                             alphabet->intern("c")};
};

constexpr SemanticAnnotation kKinds[] = {SemanticAnnotation::kLanguage,
                                         SemanticAnnotation::kPossibilities,
                                         SemanticAnnotation::kFailures};

TEST_F(FlatKernels, DeterminizeMatchesReferenceOnRandomProcesses) {
  Rng rng(77);
  auto make = [&](int which) -> Fsp {
    TreeFspOptions opt;
    opt.num_states = 4 + rng.below(9);
    opt.tau_probability = 0.3;
    switch (which) {
      case 0:
        return random_tree_fsp(rng, alphabet, pool, opt, "T");
      case 1:
        return random_acyclic_fsp(rng, alphabet, pool, opt, 3, "D");
      default:
        return random_cyclic_fsp(rng, alphabet, pool, 4 + rng.below(5), 4, "C");
    }
  };
  for (int iter = 0; iter < 30; ++iter) {
    Fsp f = make(iter % 3);
    for (SemanticAnnotation kind : kKinds) {
      AnnotatedDfa flat = annotated_determinize(f, kind);
      AnnotatedDfa ref = annotated_determinize_reference(f, kind);
      expect_dfa_identical(flat, ref, ("iter " + std::to_string(iter)).c_str());
    }
  }
}

TEST_F(FlatKernels, MinimizeMatchesReferenceOnRandomProcesses) {
  Rng rng(78);
  for (int iter = 0; iter < 30; ++iter) {
    Fsp f = (iter % 2 == 0) ? [&] {
      TreeFspOptions opt;
      opt.num_states = 4 + rng.below(9);
      opt.tau_probability = 0.3;
      return random_tree_fsp(rng, alphabet, pool, opt, "T");
    }()
                            : random_cyclic_fsp(rng, alphabet, pool, 4 + rng.below(5), 4, "C");
    for (SemanticAnnotation kind : kKinds) {
      AnnotatedDfa dfa = annotated_determinize(f, kind);
      AnnotatedDfa fast = minimize(dfa);
      AnnotatedDfa ref = minimize_reference(dfa);
      EXPECT_EQ(fast.start, ref.start) << iter;
      EXPECT_EQ(fast.trans, ref.trans) << iter;
      EXPECT_EQ(fast.annotation, ref.annotation) << iter;
    }
  }
}

TEST_F(FlatKernels, NormalFormMatchesReferenceExactly) {
  // States, start, edge order, labels, and declared Sigma — the reference
  // path and the DFA-unfolding path must produce the same Fsp.
  Rng rng(79);
  for (int iter = 0; iter < 30; ++iter) {
    TreeFspOptions opt;
    opt.num_states = 4 + rng.below(10);
    opt.tau_probability = 0.3;
    Fsp f = (iter % 3 == 2) ? random_acyclic_fsp(rng, alphabet, pool, opt, 3, "D")
                            : random_tree_fsp(rng, alphabet, pool, opt, "T");
    Fsp flat = poss_normal_form(f);
    Fsp ref = poss_normal_form_reference(f);
    expect_fsp_identical(flat, ref, ("iter " + std::to_string(iter)).c_str());
  }
}

TEST_F(FlatKernels, NormalFormPreservesGhostSigmaLikeReference) {
  Fsp f = FspBuilder(alphabet, "S").trans("0", "a", "1").action("ghost").build();
  expect_fsp_identical(poss_normal_form(f), poss_normal_form_reference(f), "ghost");
}

TEST_F(FlatKernels, DeterminizeIntrinsicStateCap) {
  // Three independent symbols through tau branches: more than 2 DFA states.
  Fsp f = FspBuilder(alphabet, "B")
              .trans("0", "a", "1")
              .trans("1", "b", "2")
              .trans("2", "c", "3")
              .build();
  EXPECT_NO_THROW(annotated_determinize_flat(f, SemanticAnnotation::kPossibilities,
                                             nullptr, /*max_states=*/8));
  try {
    annotated_determinize_flat(f, SemanticAnnotation::kPossibilities, nullptr,
                               /*max_states=*/2);
    FAIL() << "expected BudgetExceeded";
  } catch (const BudgetExceeded& e) {
    EXPECT_EQ(e.reason(), BudgetDimension::kStates);
    EXPECT_STREQ(e.where(), "annotated_determinize");
  }
}

TEST_F(FlatKernels, NormalFormLimitTripsAsBudgetExceeded) {
  Rng rng(80);
  TreeFspOptions opt;
  opt.num_states = 14;
  opt.tau_probability = 0.3;
  Fsp f = random_tree_fsp(rng, alphabet, pool, opt, "T");
  try {
    poss_normal_form(f, /*limit=*/2);
    FAIL() << "expected BudgetExceeded";
  } catch (const BudgetExceeded& e) {
    EXPECT_EQ(e.reason(), BudgetDimension::kStates);
  }
}

TEST_F(FlatKernels, DeterminizeChargesBudget) {
  Fsp f = FspBuilder(alphabet, "B")
              .trans("0", "a", "1")
              .trans("1", "b", "2")
              .trans("2", "c", "3")
              .build();
  Budget tiny = Budget::with_states(2);
  EXPECT_THROW(annotated_determinize_flat(f, SemanticAnnotation::kPossibilities, &tiny),
               BudgetExceeded);
}

TEST_F(FlatKernels, SubsetFailpointSurfacesThroughBothEntryPoints) {
  Fsp f = FspBuilder(alphabet, "B").trans("0", "a", "1").trans("1", "b", "2").build();
  failpoint::Spec s;
  s.action = failpoint::Action::kThrowBudget;
  s.trigger = failpoint::Trigger::kOnHit;
  s.n = 1;
  {
    failpoint::ScopedDisarm guard;
    failpoint::arm("determinize.subset", s);
    EXPECT_THROW(annotated_determinize(f, SemanticAnnotation::kPossibilities),
                 BudgetExceeded);
  }
  {
    failpoint::ScopedDisarm guard;
    failpoint::arm("determinize.subset", s);
    EXPECT_THROW(poss_normal_form(f), BudgetExceeded);
  }
}

}  // namespace
}  // namespace ccfsp
