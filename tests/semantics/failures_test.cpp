#include "semantics/failures.hpp"

#include <gtest/gtest.h>

#include "fsp/builder.hpp"

namespace ccfsp {
namespace {

class FailTest : public ::testing::Test {
 protected:
  AlphabetPtr alphabet = std::make_shared<Alphabet>();
  ActionSet set(std::initializer_list<const char*> names) {
    ActionSet s(alphabet->size());
    for (const char* n : names) s.set(*alphabet->find(n));
    return s;
  }
};

TEST_F(FailTest, RefusalAtStableState) {
  Fsp f = FspBuilder(alphabet, "P").trans("0", "a", "1").trans("0", "b", "2").build();
  // State 0 is stable offering {a,b}: it refuses nothing of {a}, {b}.
  EXPECT_FALSE(fail_contains(f, {}, set({"a"})));
  EXPECT_FALSE(fail_contains(f, {}, set({"b"})));
  // After "a", state 1 is a leaf: refuses everything.
  EXPECT_TRUE(fail_contains(f, {*alphabet->find("a")}, set({"a", "b"})));
}

TEST_F(FailTest, UnstableStateRefusesViaTauChoice) {
  // 0 -tau-> 1 (offers a), 0 -tau-> 2 (offers b): at eps the process can
  // refuse {a} (by sitting at 2) and {b} (at 1) but not {a,b}.
  Fsp f = FspBuilder(alphabet, "P")
              .trans("0", "tau", "1")
              .trans("0", "tau", "2")
              .trans("1", "a", "3")
              .trans("2", "b", "4")
              .build();
  EXPECT_TRUE(fail_contains(f, {}, set({"a"})));
  EXPECT_TRUE(fail_contains(f, {}, set({"b"})));
  EXPECT_FALSE(fail_contains(f, {}, set({"a", "b"})));
}

TEST_F(FailTest, ReadyThroughTauIsNotRefused) {
  // 0 -tau-> 1 -a->: the HBR arrow p ==a==> passes through taus, so state 0
  // does NOT refuse {a}.
  Fsp f = FspBuilder(alphabet, "P")
              .trans("0", "tau", "1")
              .trans("1", "a", "2")
              .build();
  EXPECT_FALSE(fail_contains(f, {}, set({"a"})));
}

TEST_F(FailTest, StringOutsideLanguageHasNoFailures) {
  Fsp f = FspBuilder(alphabet, "P").trans("0", "a", "1").build();
  EXPECT_FALSE(fail_contains(f, {*alphabet->find("a"), *alphabet->find("a")}, set({})));
}

TEST_F(FailTest, EmptyRefusalSetAlwaysFailsForReachableString) {
  Fsp f = FspBuilder(alphabet, "P").trans("0", "a", "1").build();
  EXPECT_TRUE(fail_contains(f, {}, set({})));
  EXPECT_TRUE(fail_contains(f, {*alphabet->find("a")}, set({})));
}

}  // namespace
}  // namespace ccfsp
