#include "semantics/unary.hpp"

#include <gtest/gtest.h>

#include "fsp/builder.hpp"
#include "semantics/lang.hpp"

namespace ccfsp {
namespace {

class UnaryTest : public ::testing::Test {
 protected:
  AlphabetPtr alphabet = std::make_shared<Alphabet>();
  ActionId t() { return alphabet->intern("t"); }
};

TEST_F(UnaryTest, BudgetFspRealizesBoundedLanguage) {
  Fsp f = unary_budget_fsp(alphabet, t(), 3, "B");
  EXPECT_TRUE(lang_contains(f, {t(), t(), t()}));
  EXPECT_FALSE(lang_contains(f, {t(), t(), t(), t()}));
  EXPECT_EQ(unary_bound_explicit(f, t()), UnaryBound::of(BigInt(3)));
}

TEST_F(UnaryTest, ZeroBudget) {
  Fsp f = unary_budget_fsp(alphabet, t(), 0, "Z");
  EXPECT_EQ(unary_bound_explicit(f, t()), UnaryBound::of(BigInt(0)));
  EXPECT_TRUE(f.sigma_set().test(t()));  // symbol still declared
}

TEST_F(UnaryTest, CycleWithSymbolIsInfinite) {
  Fsp f = FspBuilder(alphabet, "C").trans("0", "t", "1").trans("1", "t", "0").build();
  EXPECT_EQ(unary_bound_explicit(f, t()), UnaryBound::inf());
}

TEST_F(UnaryTest, TauCycleDoesNotCount) {
  Fsp f = FspBuilder(alphabet, "T")
              .trans("0", "t", "1")
              .trans("1", "tau", "1")
              .build();
  EXPECT_EQ(unary_bound_explicit(f, t()), UnaryBound::of(BigInt(1)));
}

TEST_F(UnaryTest, OtherSymbolCycleDoesNotMakeTInfinite) {
  Fsp f = FspBuilder(alphabet, "O")
              .trans("0", "t", "1")
              .trans("1", "u", "1")
              .build();
  EXPECT_EQ(unary_bound_explicit(f, t()), UnaryBound::of(BigInt(1)));
  EXPECT_EQ(unary_bound_explicit(f, *alphabet->find("u")), UnaryBound::inf());
}

TEST_F(UnaryTest, LongestPathCountsOnlyTheSymbol) {
  // t u t u t : bound 3 despite path length 5.
  Fsp f = FspBuilder(alphabet, "L")
              .trans("0", "t", "1")
              .trans("1", "u", "2")
              .trans("2", "t", "3")
              .trans("3", "u", "4")
              .trans("4", "t", "5")
              .build();
  EXPECT_EQ(unary_bound_explicit(f, t()), UnaryBound::of(BigInt(3)));
}

TEST_F(UnaryTest, BranchesTakeTheMax) {
  Fsp f = FspBuilder(alphabet, "B")
              .trans("0", "t", "1")
              .trans("0", "tau", "2")
              .trans("2", "t", "3")
              .trans("3", "t", "4")
              .build();
  EXPECT_EQ(unary_bound_explicit(f, t()), UnaryBound::of(BigInt(2)));
}

TEST_F(UnaryTest, UnaryBoundToString) {
  EXPECT_EQ(UnaryBound::inf().to_string(), "inf");
  EXPECT_EQ(UnaryBound::of(BigInt(42)).to_string(), "42");
}

}  // namespace
}  // namespace ccfsp
