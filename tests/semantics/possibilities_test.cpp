#include "semantics/possibilities.hpp"

#include <gtest/gtest.h>

#include "equiv/equivalences.hpp"
#include "fsp/builder.hpp"
#include "fsp/generate.hpp"
#include "semantics/failures.hpp"
#include "semantics/lang.hpp"

namespace ccfsp {
namespace {

class PossTest : public ::testing::Test {
 protected:
  AlphabetPtr alphabet = std::make_shared<Alphabet>();
  ActionId a() { return alphabet->intern("a"); }
  ActionId b() { return alphabet->intern("b"); }
};

TEST_F(PossTest, TreePossibilitiesOnePerStableState) {
  //      r --a--> u --b--> leaf
  //      r --tau--> v (stable, offers {c})     v --c--> leaf2
  Fsp f = FspBuilder(alphabet, "P")
              .trans("r", "a", "u")
              .trans("u", "b", "l1")
              .trans("r", "tau", "v")
              .trans("v", "c", "l2")
              .build();
  auto poss = possibilities_tree(f);
  // Stable states: u ({b}), l1 ({}), v ({c}), l2 ({}) -> 4 possibilities.
  // r is unstable (has a tau move) and contributes none.
  EXPECT_EQ(poss.size(), 4u);
  ActionId c = *alphabet->find("c");
  Possibility expect_v{{}, {c}};
  EXPECT_NE(std::find(poss.begin(), poss.end(), expect_v), poss.end());
  Possibility expect_u{{a()}, {b()}};
  EXPECT_NE(std::find(poss.begin(), poss.end(), expect_u), poss.end());
  Possibility expect_l1{{a(), b()}, {}};
  EXPECT_NE(std::find(poss.begin(), poss.end(), expect_l1), poss.end());
}

TEST_F(PossTest, RootUnstableMeansNoEpsilonWithRootReady) {
  Fsp f = FspBuilder(alphabet, "P")
              .trans("r", "tau", "v")
              .trans("r", "a", "u")
              .trans("v", "b", "w")
              .build();
  auto poss = possibilities_tree(f);
  // (eps, {a,b}) must NOT be a possibility: r is unstable.
  for (const auto& p : poss) {
    if (p.s.empty()) {
      EXPECT_EQ(p.z, std::vector<ActionId>{b()});
    }
  }
}

TEST_F(PossTest, AcyclicEnumerationAgreesWithTreeExtraction) {
  Rng rng(4242);
  auto pool = std::vector<ActionId>{a(), b(), alphabet->intern("c")};
  for (int iter = 0; iter < 25; ++iter) {
    TreeFspOptions opt;
    opt.num_states = 10;
    opt.tau_probability = 0.25;
    Fsp f = random_tree_fsp(rng, alphabet, pool, opt, "T");
    auto tree_poss = possibilities_tree(f);
    auto enum_poss = possibilities_acyclic(f);
    EXPECT_EQ(tree_poss, enum_poss) << "iter " << iter;
  }
}

TEST_F(PossTest, PossibilityStringsAreExactlyTheLanguage) {
  // Paper: for acyclic FSPs every s in Lang has at least one (s, Z).
  Rng rng(7);
  auto pool = std::vector<ActionId>{a(), b()};
  for (int iter = 0; iter < 15; ++iter) {
    TreeFspOptions opt;
    opt.num_states = 9;
    opt.tau_probability = 0.3;
    Fsp f = random_acyclic_fsp(rng, alphabet, pool, opt, 3, "D");
    auto poss = possibilities_acyclic(f);
    std::set<std::vector<ActionId>> poss_strings;
    for (const auto& p : poss) poss_strings.insert(p.s);
    auto lang = enumerate_lang(f, 32);
    std::set<std::vector<ActionId>> lang_strings(lang.begin(), lang.end());
    EXPECT_EQ(poss_strings, lang_strings) << "iter " << iter;
  }
}

TEST_F(PossTest, PossImpliesFailure) {
  // (s, Z) in Poss implies (s, Sigma - Z) in Fail (Section 2.2 note).
  Fsp f = FspBuilder(alphabet, "P")
              .trans("r", "a", "u")
              .trans("r", "tau", "v")
              .trans("v", "b", "w")
              .build();
  for (const auto& p : possibilities_acyclic(f)) {
    ActionSet refusal = f.sigma_set();
    for (ActionId z : p.z) refusal.reset(z);
    if (refusal.none()) continue;
    EXPECT_TRUE(fail_contains(f, p.s, refusal)) << to_string(p, *alphabet);
  }
}

TEST_F(PossTest, Figure2FailEqualButPossDiffer) {
  // P: tau-branches to a state offering {a} or a state offering {b}.
  // Q: same, plus a third tau-branch to a state offering {a,b}.
  // Failures coincide (the {a,b} state refuses nothing new) but Q has the
  // extra possibility (eps, {a,b}) — Figure 2's separation.
  Fsp p = FspBuilder(alphabet, "P")
              .trans("r", "tau", "pa")
              .trans("r", "tau", "pb")
              .trans("pa", "a", "l1")
              .trans("pb", "b", "l2")
              .build();
  Fsp q = FspBuilder(alphabet, "Q")
              .trans("r", "tau", "qa")
              .trans("r", "tau", "qb")
              .trans("r", "tau", "qab")
              .trans("qa", "a", "l1")
              .trans("qb", "b", "l2")
              .trans("qab", "a", "l3")
              .trans("qab", "b", "l4")
              .build();
  EXPECT_TRUE(failure_equivalent(p, q));
  EXPECT_FALSE(possibility_equivalent(p, q));
  // And possibility equivalence refines language equivalence too.
  EXPECT_TRUE(language_equivalent(p, q));
}

TEST_F(PossTest, CanonicalizeSortsAndDedupes) {
  std::vector<Possibility> poss{{{a()}, {b()}}, {{}, {}}, {{a()}, {b()}}};
  canonicalize(poss);
  EXPECT_EQ(poss.size(), 2u);
  EXPECT_TRUE(poss[0].s.empty());
}

TEST_F(PossTest, ToStringRendersNames) {
  Possibility p{{a(), b()}, {a()}};
  EXPECT_EQ(to_string(p, *alphabet), "(a b, {a})");
  Possibility eps{{}, {}};
  EXPECT_EQ(to_string(eps, *alphabet), "(ε, {})");
}

TEST_F(PossTest, TreeExtractionRejectsNonTree) {
  Fsp dag = FspBuilder(alphabet, "D")
                .trans("r", "a", "x")
                .trans("r", "b", "x")
                .build();
  EXPECT_THROW(possibilities_tree(dag), std::logic_error);
}

TEST_F(PossTest, EnumerationRejectsCycles) {
  Fsp cyc = FspBuilder(alphabet, "C").trans("0", "a", "0").build();
  EXPECT_THROW(possibilities_acyclic(cyc), std::logic_error);
}

}  // namespace
}  // namespace ccfsp
