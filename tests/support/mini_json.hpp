// A tiny recursive-descent JSON reader for tests that must parse emitted
// documents (the observability schema test, bench-row checks) without an
// external dependency. Supports the subset the engine emits: objects,
// arrays, strings with the escapes json_escape produces, integers, doubles,
// true/false/null. Throws std::runtime_error with an offset on malformed
// input — a test failure, never UB.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace ccfsp::testsupport {

struct JsonValue;
using JsonPtr = std::shared_ptr<JsonValue>;

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0;
  std::string string;
  std::vector<JsonPtr> array;
  // std::map: deterministic iteration for error messages and key listings.
  std::map<std::string, JsonPtr> object;

  bool is_object() const { return type == Type::kObject; }
  bool is_array() const { return type == Type::kArray; }
  bool is_string() const { return type == Type::kString; }
  bool is_number() const { return type == Type::kNumber; }
  bool is_bool() const { return type == Type::kBool; }
  bool is_null() const { return type == Type::kNull; }

  bool has(const std::string& key) const { return object.count(key) != 0; }
  const JsonValue& at(const std::string& key) const {
    auto it = object.find(key);
    if (it == object.end()) throw std::runtime_error("missing key: " + key);
    return *it->second;
  }
  std::uint64_t as_u64() const {
    if (!is_number() || number < 0) throw std::runtime_error("not a non-negative number");
    return static_cast<std::uint64_t>(number);
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonPtr parse() {
    JsonPtr v = value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters");
    return v;
  }

 private:
  const std::string& text_;
  std::size_t pos_ = 0;

  [[noreturn]] void fail(const std::string& why) {
    throw std::runtime_error("json parse error at offset " + std::to_string(pos_) + ": " + why);
  }
  void skip_ws() {
    while (pos_ < text_.size() && (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                                   text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }
  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }
  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }
  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  JsonPtr value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') {
      auto v = std::make_shared<JsonValue>();
      v->type = JsonValue::Type::kString;
      v->string = string();
      return v;
    }
    if (c == 't' || c == 'f') return keyword(c == 't' ? "true" : "false", c == 't');
    if (c == 'n') {
      match("null");
      return std::make_shared<JsonValue>();
    }
    return number();
  }

  void match(const char* word) {
    for (const char* p = word; *p; ++p) {
      if (pos_ >= text_.size() || text_[pos_] != *p) fail(std::string("expected ") + word);
      ++pos_;
    }
  }
  JsonPtr keyword(const char* word, bool val) {
    match(word);
    auto v = std::make_shared<JsonValue>();
    v->type = JsonValue::Type::kBool;
    v->boolean = val;
    return v;
  }

  std::string string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("dangling escape");
      char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("short \\u escape");
          unsigned code = 0;
          for (int k = 0; k < 4; ++k) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          // The emitters only escape control characters; keep it simple.
          if (code > 0x7f) fail("non-ascii \\u escape unsupported by mini_json");
          out += static_cast<char>(code);
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  JsonPtr number() {
    const std::size_t start = pos_;
    if (consume('-')) {}
    while (pos_ < text_.size() &&
           ((text_[pos_] >= '0' && text_[pos_] <= '9') || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    auto v = std::make_shared<JsonValue>();
    v->type = JsonValue::Type::kNumber;
    try {
      v->number = std::stod(text_.substr(start, pos_ - start));
    } catch (const std::exception&) {
      fail("bad number");
    }
    return v;
  }

  JsonPtr array() {
    expect('[');
    auto v = std::make_shared<JsonValue>();
    v->type = JsonValue::Type::kArray;
    skip_ws();
    if (consume(']')) return v;
    while (true) {
      v->array.push_back(value());
      skip_ws();
      if (consume(']')) return v;
      expect(',');
    }
  }

  JsonPtr object() {
    expect('{');
    auto v = std::make_shared<JsonValue>();
    v->type = JsonValue::Type::kObject;
    skip_ws();
    if (consume('}')) return v;
    while (true) {
      skip_ws();
      std::string key = string();
      skip_ws();
      expect(':');
      v->object[key] = value();
      skip_ws();
      if (consume('}')) return v;
      expect(',');
    }
  }
};

inline JsonPtr parse_json(const std::string& text) { return JsonParser(text).parse(); }

}  // namespace ccfsp::testsupport
