// Data-driven corpus: every model in models/*.ccfsp is parsed from disk and
// analyzed, and the verdicts must match the expectations written next to
// the model's description. This exercises the full user path (DSL file ->
// Network -> deciders) on realistic concurrency patterns.
#include <gtest/gtest.h>

#include <fstream>
#include <optional>
#include <sstream>
#include <string>

#include "fsp/parse.hpp"
#include "network/network.hpp"
#include "success/cyclic.hpp"
#include "success/linear.hpp"
#include "success/tree_pipeline.hpp"

namespace ccfsp {
namespace {

Network load_model(const std::string& name, AlphabetPtr alphabet) {
  std::string path = std::string(CCFSP_MODELS_DIR) + "/" + name;
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open model " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return Network(alphabet, parse_processes(ss.str(), alphabet));
}

struct CyclicExpectation {
  const char* model;
  const char* process;
  bool blocking;
  bool s_c;
  std::optional<bool> s_a;
};

class CyclicCorpus : public ::testing::TestWithParam<CyclicExpectation> {};

TEST_P(CyclicCorpus, VerdictsMatch) {
  const auto& e = GetParam();
  auto alphabet = std::make_shared<Alphabet>();
  Network net = load_model(e.model, alphabet);
  std::size_t p = SIZE_MAX;
  for (std::size_t i = 0; i < net.size(); ++i) {
    if (net.process(i).name() == e.process) p = i;
  }
  ASSERT_NE(p, SIZE_MAX) << e.process;
  CyclicDecision d = cyclic_decide_explicit(net, p);
  EXPECT_EQ(d.potential_blocking, e.blocking) << e.model << " " << e.process;
  EXPECT_EQ(d.success_collab, e.s_c) << e.model << " " << e.process;
  if (e.s_a.has_value()) {
    ASSERT_TRUE(d.success_adversity.has_value());
    EXPECT_EQ(*d.success_adversity, *e.s_a) << e.model << " " << e.process;
  }
  // The hierarchical heuristic must agree with the explicit verdicts.
  CyclicDecision h = cyclic_decide_tree(net, p);
  EXPECT_EQ(h.potential_blocking, d.potential_blocking);
  EXPECT_EQ(h.success_collab, d.success_collab);
}

INSTANTIATE_TEST_SUITE_P(
    Models, CyclicCorpus,
    ::testing::Values(
        // Semaphore: no deadlock, everyone can run forever, but each client
        // is starvable by its rival.
        CyclicExpectation{"mutex_semaphore.ccfsp", "Client0", true, true, false},
        CyclicExpectation{"mutex_semaphore.ccfsp", "Client1", true, true, false},
        CyclicExpectation{"mutex_semaphore.ccfsp", "Semaphore", false, true, true},
        // Bounded buffer: fully live, nobody starvable.
        CyclicExpectation{"bounded_buffer.ccfsp", "Producer", false, true, true},
        CyclicExpectation{"bounded_buffer.ccfsp", "Consumer", false, true, true},
        CyclicExpectation{"bounded_buffer.ccfsp", "Buffer", false, true, true},
        // Readers/writers: the writer is starvable, readers too (writer +
        // other reader can monopolize), the lock itself always moves.
        CyclicExpectation{"readers_writers.ccfsp", "Writer", true, true, false},
        CyclicExpectation{"readers_writers.ccfsp", "Reader0", true, true, false},
        CyclicExpectation{"readers_writers.ccfsp", "Lock", false, true, true},
        // Train crossing: same shape as the semaphore.
        CyclicExpectation{"train_crossing.ccfsp", "TrainA", true, true, false},
        CyclicExpectation{"train_crossing.ccfsp", "Controller", false, true, true},
        // Barrier: the round structure forces universal participation, so
        // unlike the semaphore nobody is starvable.
        CyclicExpectation{"barrier.ccfsp", "Worker0", false, true, true},
        CyclicExpectation{"barrier.ccfsp", "Worker2", false, true, true},
        CyclicExpectation{"barrier.ccfsp", "Barrier", false, true, true}));

struct AcyclicExpectation {
  const char* model;
  const char* process;
  bool s_u;
  bool s_c;
  std::optional<bool> s_a;
};

class AcyclicCorpus : public ::testing::TestWithParam<AcyclicExpectation> {};

TEST_P(AcyclicCorpus, VerdictsMatch) {
  const auto& e = GetParam();
  auto alphabet = std::make_shared<Alphabet>();
  Network net = load_model(e.model, alphabet);
  std::size_t p = SIZE_MAX;
  for (std::size_t i = 0; i < net.size(); ++i) {
    if (net.process(i).name() == e.process) p = i;
  }
  ASSERT_NE(p, SIZE_MAX) << e.process;
  Theorem3Result r = theorem3_decide(net, p);
  EXPECT_EQ(r.unavoidable_success, e.s_u) << e.model << " " << e.process;
  EXPECT_EQ(r.success_collab, e.s_c) << e.model << " " << e.process;
  if (e.s_a.has_value()) {
    ASSERT_TRUE(r.success_adversity.has_value()) << e.model << " " << e.process;
    EXPECT_EQ(*r.success_adversity, *e.s_a) << e.model << " " << e.process;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Models, AcyclicCorpus,
    ::testing::Values(
        // Two-phase commit cannot wedge, for anyone. The participants make
        // tau choices so their S_a is undefined; the coordinator is tau-free
        // and wins outright.
        AcyclicExpectation{"two_phase_commit.ccfsp", "Coordinator", true, true, true},
        AcyclicExpectation{"two_phase_commit.ccfsp", "Part1", true, true, std::nullopt},
        AcyclicExpectation{"two_phase_commit.ccfsp", "Part2", true, true, std::nullopt},
        // Order mismatch: dead on arrival for both sides.
        AcyclicExpectation{"handshake_deadlock.ccfsp", "P", false, false, false},
        AcyclicExpectation{"handshake_deadlock.ccfsp", "Q", false, false, false},
        // Lossy RPC: completes sometimes, blockable, unwinnable for the
        // caller; the server is equally at the channel's mercy.
        AcyclicExpectation{"lossy_rpc.ccfsp", "Caller", false, true, false},
        AcyclicExpectation{"lossy_rpc.ccfsp", "Server", false, true, false},
        // All-linear pipeline: Proposition 1 territory, always completes.
        AcyclicExpectation{"pipeline.ccfsp", "Source", true, true, true},
        AcyclicExpectation{"pipeline.ccfsp", "Stage", true, true, true},
        AcyclicExpectation{"pipeline.ccfsp", "Sink", true, true, true}));

TEST(Corpus, PipelineModelAlsoSolvedByProposition1) {
  auto alphabet = std::make_shared<Alphabet>();
  Network net = load_model("pipeline.ccfsp", alphabet);
  ASSERT_TRUE(net.all_linear());
  for (std::size_t p = 0; p < net.size(); ++p) {
    EXPECT_TRUE(linear_network_success(net, p)) << p;
  }
}

}  // namespace
}  // namespace ccfsp
