// Bounded chaos sweep as a regular test (the full 1000-schedule sweep runs
// in the chaos-smoke CI job and via tests/chaos/chaos_driver). Two fixed
// seed windows so a failure reproduces exactly: re-run the reported seed
// through chaos_driver --iterations 1 --seed <seed>.
#include <gtest/gtest.h>

#include "../chaos/chaos_harness.hpp"
#include "util/failpoint.hpp"

namespace ccfsp {
namespace {

TEST(ChaosSweep, RandomFailpointSchedulesUpholdTheInvariants) {
  failpoint::ScopedDisarm guard;
  chaos::Stats stats;
  for (std::uint64_t seed = 1; seed <= 120; ++seed) {
    const std::string violation = chaos::run_schedule(seed, stats);
    ASSERT_TRUE(violation.empty()) << violation;
  }
  // The sweep must actually be injecting faults, not vacuously passing.
  EXPECT_GT(stats.sites_fired, 0u);
  EXPECT_GT(stats.exhausted, 0u);
  EXPECT_GT(stats.decided, 0u);
}

TEST(ChaosSweep, HighSeedWindowAlsoHolds) {
  failpoint::ScopedDisarm guard;
  chaos::Stats stats;
  for (std::uint64_t seed = 100000; seed < 100030; ++seed) {
    const std::string violation = chaos::run_schedule(seed, stats);
    ASSERT_TRUE(violation.empty()) << violation;
  }
}

}  // namespace
}  // namespace ccfsp
