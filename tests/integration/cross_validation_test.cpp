// Whole-stack cross-validation sweeps: every fast path in the library is
// checked against an independent implementation on seeded random inputs.
#include <gtest/gtest.h>

#include "algebra/compose.hpp"
#include "equiv/equivalences.hpp"
#include "network/generate.hpp"
#include "semantics/lang.hpp"
#include "semantics/normal_form.hpp"
#include "semantics/poss_automaton.hpp"
#include "semantics/possibilities.hpp"
#include "success/baseline.hpp"
#include "success/context.hpp"
#include "success/game.hpp"
#include "success/tree_pipeline.hpp"

namespace ccfsp {
namespace {

class CrossValidation : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CrossValidation, PossAutomatonAnnotationsMatchEnumeration) {
  // The subset-construction possibilities must equal the path-enumerated
  // possibilities on acyclic processes.
  Rng rng(GetParam());
  auto alphabet = std::make_shared<Alphabet>();
  std::vector<ActionId> pool{alphabet->intern("a"), alphabet->intern("b"),
                             alphabet->intern("c")};
  TreeFspOptions opt;
  opt.num_states = 8;
  opt.tau_probability = 0.3;
  Fsp f = random_acyclic_fsp(rng, alphabet, pool, opt, 3, "D");

  auto poss = possibilities_acyclic(f);
  AnnotatedDfa dfa = annotated_determinize(f, SemanticAnnotation::kPossibilities);
  // Walk the DFA along every possibility string; its annotation must
  // contain the possibility's ready set.
  for (const auto& p : poss) {
    std::uint32_t cur = dfa.start;
    for (ActionId a : p.s) {
      auto it = dfa.trans[cur].find(a);
      ASSERT_NE(it, dfa.trans[cur].end());
      cur = it->second;
    }
    EXPECT_TRUE(dfa.annotation[cur].count(p.z)) << to_string(p, *alphabet);
  }
}

TEST_P(CrossValidation, ComposedLanguageIsProjectionConsistent) {
  // Strings of P || Q restricted to P's private symbols extend to runs, so
  // every enumerated string of the composite must be realizable: check
  // membership in the composite itself and consistency of lang_contains
  // with enumerate_lang.
  Rng rng(GetParam() + 50);
  auto alphabet = std::make_shared<Alphabet>();
  std::vector<ActionId> shared{alphabet->intern("s")};
  std::vector<ActionId> pa = shared, pb = shared;
  pa.push_back(alphabet->intern("x"));
  pb.push_back(alphabet->intern("y"));
  TreeFspOptions opt;
  opt.num_states = 6;
  Fsp p = random_tree_fsp(rng, alphabet, pa, opt, "P");
  Fsp q = random_tree_fsp(rng, alphabet, pb, opt, "Q");
  Fsp c = compose(p, q);
  for (const auto& s : enumerate_lang(c, 6)) {
    EXPECT_TRUE(lang_contains(c, s));
  }
}

TEST_P(CrossValidation, PipelineSaMatchesGameOnTauFreeTreeNetworks) {
  // Build tree networks with tau-free tree processes so S_a is defined,
  // then compare Lemma 5 star evaluation against the knowledge-set game.
  Rng rng(GetParam() + 150);
  NetworkGenOptions opt;
  opt.num_processes = 2 + rng.below(3);
  opt.states_per_process = 4 + rng.below(3);
  opt.symbols_per_edge = 1 + rng.below(2);
  opt.tau_probability = 0.0;  // tau-free
  Network net = random_tree_network(rng, opt);
  for (std::size_t p = 0; p < net.size(); ++p) {
    Theorem3Result r = theorem3_decide(net, p);
    ASSERT_TRUE(r.success_adversity.has_value());
    EXPECT_EQ(*r.success_adversity, success_adversity_network(net, p))
        << "seed " << GetParam() << " p " << p;
  }
}

TEST_P(CrossValidation, NormalFormsCompose) {
  // Lemma 2 used the way Theorem 3 uses it: replacing a composition
  // operand by its normal form preserves the composite's possibilities.
  Rng rng(GetParam() + 250);
  auto alphabet = std::make_shared<Alphabet>();
  std::vector<ActionId> shared{alphabet->intern("h1"), alphabet->intern("h2")};
  std::vector<ActionId> pa = shared, pb = shared;
  pa.push_back(alphabet->intern("priv"));
  TreeFspOptions opt;
  opt.num_states = 7;
  opt.tau_probability = 0.25;
  Fsp p = random_tree_fsp(rng, alphabet, pa, opt, "P");
  Fsp q = random_tree_fsp(rng, alphabet, pb, opt, "Q");
  Fsp qn = poss_normal_form(q);
  EXPECT_TRUE(possibility_equivalent(compose(p, q), compose(p, qn)));
}

TEST_P(CrossValidation, ContextCompositionMatchesGlobalStuckness) {
  // The two-process view (P vs composed context) and the tuple-space global
  // machine must agree on reachable deadlock.
  Rng rng(GetParam() + 350);
  NetworkGenOptions opt;
  opt.num_processes = 3;
  opt.states_per_process = 4;
  Network net = random_tree_network(rng, opt);
  Fsp q = compose_context(net, 0);
  Fsp product = reachable_product(net.process(0), q);
  bool product_stuck = false;
  for (StateId s = 0; s < product.num_states(); ++s) {
    if (product.is_leaf(s)) product_stuck = true;
  }
  GlobalMachine g = build_global(net);
  bool global_stuck = false;
  for (std::uint32_t s = 0; s < g.num_states(); ++s) {
    if (g.is_stuck(s)) global_stuck = true;
  }
  EXPECT_EQ(product_stuck, global_stuck) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrossValidation,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15));

}  // namespace
}  // namespace ccfsp
