// Robustness corpus: every shipped model, analyzed through the governed
// front door under budgets from starvation to generous, must come back with
// a classified outcome — decided or budget-exhausted — and never crash,
// never hang, never report a verdict from a truncated state space.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "fsp/parse.hpp"
#include "network/network.hpp"
#include "success/analyze.hpp"

namespace ccfsp {
namespace {

const char* const kModels[] = {
    "barrier.ccfsp",         "bounded_buffer.ccfsp", "handshake_deadlock.ccfsp",
    "lossy_rpc.ccfsp",       "mutex_semaphore.ccfsp", "pipeline.ccfsp",
    "readers_writers.ccfsp", "train_crossing.ccfsp",  "two_phase_commit.ccfsp",
};

Network load_model(const std::string& name, AlphabetPtr alphabet) {
  std::string path = std::string(CCFSP_MODELS_DIR) + "/" + name;
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open model " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return Network(alphabet, parse_processes(ss.str(), alphabet));
}

class BudgetCorpus : public ::testing::TestWithParam<const char*> {};

TEST_P(BudgetCorpus, EveryBudgetYieldsAClassifiedOutcome) {
  auto alphabet = std::make_shared<Alphabet>();
  Network net = load_model(GetParam(), alphabet);
  for (std::size_t cap : {std::size_t{1}, std::size_t{16}, std::size_t{256},
                          std::size_t{1} << 14}) {
    for (std::size_t p = 0; p < net.size(); ++p) {
      AnalysisReport r;
      ASSERT_NO_THROW(r = analyze(net, p, {Budget::with_states(cap), {}}))
          << GetParam() << " p=" << p << " cap=" << cap;
      EXPECT_TRUE(r.status == OutcomeStatus::kDecided ||
                  r.status == OutcomeStatus::kBudgetExhausted)
          << GetParam() << " p=" << p << " cap=" << cap
          << " status=" << to_string(r.status);
    }
  }
}

TEST_P(BudgetCorpus, GenerousBudgetDecidesAndReportsTheRung) {
  auto alphabet = std::make_shared<Alphabet>();
  Network net = load_model(GetParam(), alphabet);
  AnalyzeOptions opt;
  opt.budget = Budget::with_states(1u << 22);
  AnalysisReport r = analyze(net, 0, opt);
  ASSERT_EQ(r.status, OutcomeStatus::kDecided) << GetParam() << ": " << r.summary();
  EXPECT_TRUE(r.decided_by.has_value()) << GetParam();
}

TEST_P(BudgetCorpus, CancellationAbortsCleanly) {
  auto alphabet = std::make_shared<Alphabet>();
  Network net = load_model(GetParam(), alphabet);
  CancelToken token;
  token.cancel();  // cancelled before we even start
  AnalyzeOptions opt;
  opt.budget = Budget().watch(token);
  AnalysisReport r;
  ASSERT_NO_THROW(r = analyze(net, 0, opt)) << GetParam();
  EXPECT_EQ(r.status, OutcomeStatus::kBudgetExhausted) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Models, BudgetCorpus, ::testing::ValuesIn(kModels));

}  // namespace
}  // namespace ccfsp
