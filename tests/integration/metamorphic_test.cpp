// Metamorphic properties: transformations of a network that provably do not
// change the success predicates, checked across seeded random inputs. These
// catch whole classes of bugs (state bookkeeping, alphabet handling,
// hiding) that pointwise unit tests miss.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "fsp/builder.hpp"
#include "fsp/rename.hpp"
#include "network/generate.hpp"
#include "success/baseline.hpp"
#include "success/game.hpp"
#include "success/tree_pipeline.hpp"

namespace ccfsp {
namespace {

struct Verdicts {
  bool s_u, s_c;
  std::optional<bool> s_a;

  bool operator==(const Verdicts&) const = default;
};

Verdicts verdicts(const Network& net, std::size_t p) {
  Verdicts v{};
  v.s_c = success_collab_global(net, p);
  v.s_u = !potential_blocking_global(net, p);
  if (!net.process(p).has_tau_moves()) {
    v.s_a = success_adversity_network(net, p);
  }
  return v;
}

class Metamorphic : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  Network make_net(Rng& rng) {
    NetworkGenOptions opt;
    opt.num_processes = 2 + rng.below(3);
    opt.states_per_process = 4 + rng.below(3);
    opt.tau_probability = 0.15;
    return random_tree_network(rng, opt);
  }
};

TEST_P(Metamorphic, InertPairDoesNotChangeVerdicts) {
  // Append a disconnected, always-terminating pair of processes: every
  // predicate about P must survive (their handshake can always fire, so
  // they add no deadlocks and no leverage).
  Rng rng(GetParam());
  Network net = make_net(rng);
  Verdicts before = verdicts(net, 0);

  std::vector<Fsp> procs = net.processes();
  auto alphabet = net.alphabet();
  procs.push_back(FspBuilder(alphabet, "InertA").trans("0", "inert_sym", "1").build());
  procs.push_back(FspBuilder(alphabet, "InertB").trans("0", "inert_sym", "1").build());
  Network extended(alphabet, std::move(procs));
  EXPECT_EQ(verdicts(extended, 0), before) << GetParam();
}

TEST_P(Metamorphic, ConsistentRenamingDoesNotChangeVerdicts) {
  Rng rng(GetParam() + 100);
  Network net = make_net(rng);
  Verdicts before = verdicts(net, 0);

  // Rename every action a -> a' across all processes simultaneously.
  auto alphabet = net.alphabet();
  std::map<ActionId, ActionId> mapping;
  std::size_t original_count = alphabet->size();
  for (ActionId a = 0; a < original_count; ++a) {
    mapping[a] = alphabet->intern(alphabet->name(a) + "_renamed");
  }
  std::vector<Fsp> procs;
  for (const Fsp& p : net.processes()) {
    procs.push_back(rename_actions(p, mapping, p.name()));
  }
  Network renamed(alphabet, std::move(procs));
  EXPECT_EQ(verdicts(renamed, 0), before) << GetParam();
}

TEST_P(Metamorphic, DuplicateTransitionsDoNotChangeVerdicts) {
  Rng rng(GetParam() + 200);
  Network net = make_net(rng);
  Verdicts before = verdicts(net, 0);

  std::vector<Fsp> procs;
  for (std::size_t i = 0; i < net.size(); ++i) {
    Fsp copy = net.process(i);
    // Duplicate one existing transition (multigraph edge: same semantics).
    for (StateId s = 0; s < copy.num_states(); ++s) {
      if (!copy.out(s).empty()) {
        Transition t = copy.out(s)[0];
        copy.add_transition(s, t.action, t.target);
        break;
      }
    }
    procs.push_back(std::move(copy));
  }
  Network doubled(net.alphabet(), std::move(procs));
  // S_a's belief bookkeeping must also be insensitive to duplicates, but a
  // duplicated P-transition duplicates a response option only — same game.
  EXPECT_EQ(verdicts(doubled, 0), before) << GetParam();
}

TEST_P(Metamorphic, TauPrefixOnContextProcessDoesNotChangeVerdicts) {
  // Give a CONTEXT process (not P) a fresh tau-prefixed start: silent
  // preamble changes nothing observable.
  Rng rng(GetParam() + 300);
  Network net = make_net(rng);
  Verdicts before = verdicts(net, 0);

  std::vector<Fsp> procs;
  procs.push_back(net.process(0));
  for (std::size_t i = 1; i < net.size(); ++i) {
    const Fsp& orig = net.process(i);
    Fsp padded(net.alphabet(), orig.name());
    StateId fresh = padded.add_state("pre");
    std::vector<StateId> remap(orig.num_states());
    for (StateId s = 0; s < orig.num_states(); ++s) {
      remap[s] = padded.add_state(orig.state_label(s));
    }
    for (StateId s = 0; s < orig.num_states(); ++s) {
      for (const auto& t : orig.out(s)) {
        padded.add_transition(remap[s], t.action, remap[t.target]);
      }
    }
    padded.add_transition(fresh, kTau, remap[orig.start()]);
    padded.set_start(fresh);
    for (ActionId a : orig.sigma()) {
      const auto& sig = padded.sigma();
      if (!std::binary_search(sig.begin(), sig.end(), a)) padded.declare_action(a);
    }
    procs.push_back(std::move(padded));
  }
  Network padded_net(net.alphabet(), std::move(procs));
  EXPECT_EQ(verdicts(padded_net, 0), before) << GetParam();
}

TEST_P(Metamorphic, PipelineAgreesUnderAllTransformations) {
  // The Theorem 3 pipeline on the tau-prefixed variant must match the
  // original's oracle verdicts too (exercises normal forms on the padded
  // processes).
  Rng rng(GetParam() + 300);  // same seed stream as the tau-prefix test
  Network net = make_net(rng);
  Verdicts oracle = verdicts(net, 0);
  Theorem3Result r = theorem3_decide(net, 0);
  EXPECT_EQ(r.success_collab, oracle.s_c);
  EXPECT_EQ(r.unavoidable_success, oracle.s_u);
  if (oracle.s_a.has_value() && r.success_adversity.has_value()) {
    EXPECT_EQ(*r.success_adversity, *oracle.s_a);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Metamorphic,
                         ::testing::Values(301, 302, 303, 304, 305, 306, 307, 308, 309, 310,
                                           311, 312));

}  // namespace
}  // namespace ccfsp
