// Executable transcriptions of the paper's worked figures. Figure 1's exact
// transition diagrams are illustrative (the construction, not the specific
// picture, is normative), so we exercise the construction on a network of
// the stated shape: P1 a tree FSP, P2 acyclic, P3 cyclic, C_N a path
// P1 - P2 - P3 (a tree).
#include <gtest/gtest.h>

#include "algebra/compose.hpp"
#include "fsp/builder.hpp"
#include "network/families.hpp"
#include "network/network.hpp"
#include "semantics/possibilities.hpp"
#include "success/baseline.hpp"
#include "success/game.hpp"
#include "success/tree_pipeline.hpp"

namespace ccfsp {
namespace {

struct Figure1 {
  AlphabetPtr alphabet = std::make_shared<Alphabet>();
  Fsp p1, p2, p3;

  Figure1()
      : p1(FspBuilder(alphabet, "P1")
               .trans("1", "a", "2")
               .trans("1", "b", "3")
               .trans("3", "a", "4")
               .build()),
        p2(FspBuilder(alphabet, "P2")
               .trans("1", "a", "2")
               .trans("1", "c", "3")
               .trans("2", "c", "4")
               .trans("3", "a", "4")
               .trans("1", "b", "4")
               .build()),
        p3(FspBuilder(alphabet, "P3")
               .trans("1", "c", "2")
               .trans("2", "c", "1")
               .build()) {}
};

TEST(Figure1, NetworkShapeMatchesCaption) {
  Figure1 f;
  std::vector<Fsp> procs;
  procs.push_back(f.p1);
  procs.push_back(f.p2);
  procs.push_back(f.p3);
  Network net(f.alphabet, std::move(procs));
  EXPECT_TRUE(net.process(0).is_tree());
  EXPECT_TRUE(net.process(1).is_acyclic());
  EXPECT_FALSE(net.process(1).is_tree());
  EXPECT_FALSE(net.process(2).is_acyclic());
  EXPECT_TRUE(net.is_tree_network());  // P1 - P2 - P3
}

TEST(Figure1, ProductRestrictionAndHiding) {
  Figure1 f;
  // P1 x P2 on the full state set vs the reachable restriction P1 ⊓ P2.
  Fsp full = full_product(f.p1, f.p2);
  Fsp reach = reachable_product(f.p1, f.p2);
  EXPECT_EQ(full.num_states(), f.p1.num_states() * f.p2.num_states());
  EXPECT_LT(reach.num_states(), full.num_states());
  EXPECT_TRUE(isomorphic_by_atoms(full.trimmed(), reach));

  // P1 || P2: shared symbols {a, b} hidden, c still visible (to P3).
  Fsp comp = compose(f.p1, f.p2);
  ActionSet sigma = comp.sigma_set();
  EXPECT_FALSE(sigma.test(*f.alphabet->find("a")));
  EXPECT_FALSE(sigma.test(*f.alphabet->find("b")));
  EXPECT_TRUE(sigma.test(*f.alphabet->find("c")));
  // The composition collapses C_N: (P1||P2) - P3 remains a (2-node) tree.
  std::vector<Fsp> procs;
  procs.push_back(std::move(comp));
  procs.push_back(f.p3);
  Network collapsed(f.alphabet, std::move(procs));
  EXPECT_EQ(collapsed.comm_graph().num_edges(), 1u);
}

TEST(Figure2, PossibilityIllustration) {
  // (s, Z) with s = a b and Z = {z1, z2}: build exactly that shape.
  auto alphabet = std::make_shared<Alphabet>();
  Fsp p = FspBuilder(alphabet, "P")
              .trans("p", "a", "q1")
              .trans("q1", "tau", "q2")
              .trans("q2", "b", "q")
              .trans("q", "z1", "r1")
              .trans("q", "z2", "r2")
              .build();
  auto poss = possibilities_tree(p);
  Possibility expected{{*alphabet->find("a"), *alphabet->find("b")},
                       {*alphabet->find("z1"), *alphabet->find("z2")}};
  EXPECT_NE(std::find(poss.begin(), poss.end(), expected), poss.end());
}

TEST(Figure3, AllPredicates) {
  Network net = figure3_network();
  EXPECT_TRUE(success_collab_global(net, 0));            // S_c
  EXPECT_TRUE(potential_blocking_global(net, 0));        // not S_u
  EXPECT_FALSE(success_adversity_network(net, 0));       // and S_a fails too
  // The same through the Theorem 3 pipeline.
  Theorem3Result r = theorem3_decide(net, 0);
  EXPECT_TRUE(r.success_collab);
  EXPECT_FALSE(r.unavoidable_success);
  EXPECT_EQ(r.success_adversity, std::optional<bool>(false));
}

TEST(Section33Example, SuTrueSaFalseSplit) {
  // The closing Section 3.3 caption: S_u false, S_a true, S_c true.
  Network net = success_separation_network();
  Theorem3Result r = theorem3_decide(net, 0);
  EXPECT_FALSE(r.unavoidable_success);
  EXPECT_EQ(r.success_adversity, std::optional<bool>(true));
  EXPECT_TRUE(r.success_collab);
}

TEST(Figure8a, RingToPathOfComposites) {
  // Fold the ring in half (Figure 8a): parts {0}, {1,5}, {2,4}, {3}. Each
  // composite has at most quadratic size and the collapsed C_N is a path.
  Network ring = token_ring(6);
  std::vector<Fsp> folded;
  folded.push_back(ring.process(0));
  folded.push_back(compose(ring.process(1), ring.process(5)));
  folded.push_back(compose(ring.process(2), ring.process(4)));
  folded.push_back(ring.process(3));
  EXPECT_LE(folded[1].num_states(),
            ring.process(1).num_states() * ring.process(5).num_states());
  Network path(ring.alphabet(), std::move(folded));
  EXPECT_TRUE(path.is_tree_network());  // a 4-node path
}

}  // namespace
}  // namespace ccfsp
