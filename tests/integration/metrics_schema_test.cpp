// Golden-schema test for the observability document: the JSON emitted by
// observability_document_json / `ccfsp_analyze --metrics-json` is a
// versioned contract (docs/observability.md). This test parses a real
// document, asserts every required key with its type, pins schema_version,
// and *fails on unknown keys* so the format cannot drift silently —
// whoever adds a field must bump/extend the schema here and in the docs.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "network/families.hpp"
#include "success/analyze.hpp"
#include "../support/mini_json.hpp"
#include "util/metrics.hpp"
#include "util/version.hpp"

namespace ccfsp {
namespace {

using testsupport::JsonValue;
using testsupport::parse_json;

void expect_only_keys(const JsonValue& obj, const std::set<std::string>& allowed,
                      const char* where) {
  ASSERT_TRUE(obj.is_object()) << where;
  for (const auto& [key, value] : obj.object) {
    EXPECT_TRUE(allowed.count(key)) << "unknown key '" << key << "' in " << where
                                    << " — extend the schema (docs/observability.md) "
                                       "and this test together";
  }
}

void check_span_node(const JsonValue& node, int depth) {
  ASSERT_LT(depth, 32) << "span tree too deep to be plausible";
  expect_only_keys(node, {"name", "count", "total_ns", "children"}, "span node");
  EXPECT_TRUE(node.at("name").is_string());
  EXPECT_TRUE(node.at("count").is_number());
  EXPECT_TRUE(node.at("total_ns").is_number());
  ASSERT_TRUE(node.at("children").is_array());
  for (const auto& child : node.at("children").array) check_span_node(*child, depth + 1);
}

void check_document(const std::string& text, bool expect_report) {
  auto docp = parse_json(text);
  const JsonValue& doc = *docp;
  expect_only_keys(doc, {"schema_version", "build", "counters", "spans", "report"},
                   "document");
  ASSERT_TRUE(doc.has("schema_version"));
  EXPECT_EQ(doc.at("schema_version").as_u64(), 2u);

  // Build stamp: the writer's version string plus the snapshot format it
  // speaks — what a fleet operator correlates persisted artifacts against.
  ASSERT_TRUE(doc.has("build"));
  const JsonValue& build = doc.at("build");
  expect_only_keys(build, {"version", "snapshot_format"}, "build");
  ASSERT_TRUE(build.has("version"));
  EXPECT_TRUE(build.at("version").is_string());
  EXPECT_FALSE(build.at("version").string.empty());
  ASSERT_TRUE(build.has("snapshot_format"));
  EXPECT_EQ(build.at("snapshot_format").as_u64(), kSnapshotFormatVersion);

  // Counters: exactly the compiled-in catalogue — no more, no less — each a
  // non-negative number. Zeros are emitted, so the key set never depends on
  // the run.
  ASSERT_TRUE(doc.has("counters"));
  const JsonValue& counters = doc.at("counters");
  ASSERT_TRUE(counters.is_object());
  std::set<std::string> catalogue;
  for (std::size_t i = 0; i < metrics::kNumCounters; ++i) {
    catalogue.insert(metrics::name(static_cast<metrics::Counter>(i)));
  }
  expect_only_keys(counters, catalogue, "counters");
  for (const std::string& name : catalogue) {
    ASSERT_TRUE(counters.has(name)) << name;
    EXPECT_TRUE(counters.at(name).is_number()) << name;
  }

  ASSERT_TRUE(doc.has("spans"));
  ASSERT_TRUE(doc.at("spans").is_array());
  for (const auto& top : doc.at("spans").array) check_span_node(*top, 0);

  ASSERT_EQ(doc.has("report"), expect_report);
  if (!expect_report) return;
  const JsonValue& report = doc.at("report");
  expect_only_keys(report, {"status", "cyclic_semantics", "decided_by", "verdict", "rungs"},
                   "report");
  EXPECT_TRUE(report.at("status").is_string());
  EXPECT_TRUE(report.at("cyclic_semantics").is_bool());
  if (report.has("decided_by")) {
    EXPECT_TRUE(report.at("decided_by").is_string());
  }

  const JsonValue& verdict = report.at("verdict");
  expect_only_keys(verdict,
                   {"unavoidable_success", "success_collab", "success_adversity",
                    "adversity_applicable"},
                   "verdict");
  for (const char* key : {"unavoidable_success", "success_collab", "success_adversity"}) {
    ASSERT_TRUE(verdict.has(key)) << key;
    EXPECT_TRUE(verdict.at(key).is_bool() || verdict.at(key).is_null()) << key;
  }
  EXPECT_TRUE(verdict.at("adversity_applicable").is_bool());

  ASSERT_TRUE(report.at("rungs").is_array());
  const std::set<std::string> rung_names = {"linear", "unary", "tree", "heuristic", "explicit"};
  const std::set<std::string> statuses = {"decided", "budget-exhausted", "unsupported",
                                          "invalid-input"};
  const std::set<std::string> reasons = {"none", "deadline", "states", "bytes", "cancelled"};
  for (const auto& rp : report.at("rungs").array) {
    const JsonValue& rung = *rp;
    expect_only_keys(rung, {"rung", "status", "attempt", "states_charged", "budget_reason",
                            "detail"},
                     "rung record");
    EXPECT_TRUE(rung_names.count(rung.at("rung").string)) << rung.at("rung").string;
    EXPECT_TRUE(statuses.count(rung.at("status").string)) << rung.at("status").string;
    EXPECT_TRUE(rung.at("attempt").is_number());
    EXPECT_TRUE(rung.at("states_charged").is_number());
    EXPECT_TRUE(reasons.count(rung.at("budget_reason").string))
        << rung.at("budget_reason").string;
    EXPECT_TRUE(rung.at("detail").is_string());
  }
}

AnalysisReport run_collected(const Network& net, metrics::MetricsSink& sink) {
  AnalyzeOptions opt;
  opt.metrics = &sink;
  return analyze(net, 0, opt);
}

TEST(MetricsSchema, DocumentWithReportValidates) {
  const Network net = dining_philosophers(4);
  metrics::MetricsSink sink;
  const AnalysisReport report = run_collected(net, sink);
  check_document(observability_document_json(sink.result, &report), /*expect_report=*/true);
}

TEST(MetricsSchema, DocumentWithoutReportValidates) {
  const Network net = dining_philosophers(3);
  metrics::MetricsSink sink;
  run_collected(net, sink);
  check_document(observability_document_json(sink.result, nullptr), /*expect_report=*/false);
}

TEST(MetricsSchema, DetailStringsSurviveEscaping) {
  // A rung detail with quotes/newlines must round-trip through the emitter
  // and the parser — the emitter's escaping is part of the schema.
  AnalysisReport report;
  report.status = OutcomeStatus::kUnsupported;
  RungOutcome r;
  r.rung = Rung::kTree;
  r.detail = "a \"quoted\" detail\nwith a newline\tand tab \\ backslash";
  report.rungs.push_back(r);
  metrics::MetricsSink sink;
  const std::string doc = observability_document_json(sink.result, &report);
  auto parsed = parse_json(doc);
  EXPECT_EQ(parsed->at("report").at("rungs").array.at(0)->at("detail").string, r.detail);
}

#ifdef CCFSP_ANALYZE_BIN
TEST(MetricsSchema, CliEmittedDocumentValidates) {
  // End to end: drive the real binary exactly as a user would and validate
  // the file it writes. This is the test the acceptance criterion names.
  const std::string out_path =
      ::testing::TempDir() + "/ccfsp_metrics_schema_test.json";
  std::remove(out_path.c_str());
  const std::string cmd = std::string(CCFSP_ANALYZE_BIN) +
                          " --gen phil:4 --ladder --metrics-json " + out_path +
                          " > /dev/null 2>&1";
  const int rc = std::system(cmd.c_str());
  ASSERT_EQ(rc, 0) << cmd;
  std::ifstream in(out_path);
  ASSERT_TRUE(in.good()) << out_path;
  std::ostringstream ss;
  ss << in.rdbuf();
  check_document(ss.str(), /*expect_report=*/true);
  std::remove(out_path.c_str());
}
#endif

}  // namespace
}  // namespace ccfsp
