// The paper's basic ordering of the three notions (Section 3.1):
//   S_u(P,Q)  =>  S_a(P,Q)  =>  S_c(P,Q),
// with Figure 3 showing S_c does not imply S_u. Property-checked across
// random tree networks, both through the oracles and the pipeline.
#include <gtest/gtest.h>

#include "network/generate.hpp"
#include "success/baseline.hpp"
#include "success/game.hpp"
#include "success/tree_pipeline.hpp"

namespace ccfsp {
namespace {

class ImplicationChain : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ImplicationChain, SuImpliesSaImpliesSc) {
  Rng rng(GetParam());
  NetworkGenOptions opt;
  opt.num_processes = 2 + rng.below(3);
  opt.states_per_process = 4 + rng.below(3);
  opt.tau_probability = 0.0;  // keep P tau-free so S_a is defined
  Network net = random_tree_network(rng, opt);
  for (std::size_t p = 0; p < net.size(); ++p) {
    bool s_u = !potential_blocking_global(net, p);
    bool s_a = success_adversity_network(net, p);
    bool s_c = success_collab_global(net, p);
    EXPECT_TRUE(!s_u || s_a) << "S_u => S_a violated, seed " << GetParam() << " p " << p;
    EXPECT_TRUE(!s_a || s_c) << "S_a => S_c violated, seed " << GetParam() << " p " << p;

    // And the pipeline's answers obey the same chain.
    Theorem3Result r = theorem3_decide(net, p);
    ASSERT_TRUE(r.success_adversity.has_value());
    EXPECT_TRUE(!r.unavoidable_success || *r.success_adversity);
    EXPECT_TRUE(!*r.success_adversity || r.success_collab);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ImplicationChain,
                         ::testing::Values(61, 62, 63, 64, 65, 66, 67, 68, 69, 70, 71, 72, 73,
                                           74, 75, 76, 77, 78, 79, 80));

}  // namespace
}  // namespace ccfsp
