// Cooperative interruption of the CLI (docs/robustness.md §7): SIGINT or
// SIGTERM delivered mid-ladder must cancel the governed budget, let the
// run finish with a complete budget-exhausted (cancelled) report, and exit
// with the documented budget exit code 3 — not die on the default signal
// disposition with no report.
#include <gtest/gtest.h>

#ifdef CCFSP_ANALYZE_BIN

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace ccfsp {
namespace {

/// Launch ccfsp_analyze on a workload that runs for minutes unless
/// interrupted, with stdout redirected to `out_path`.
pid_t spawn_long_analysis(const std::string& out_path) {
  const pid_t pid = fork();
  if (pid != 0) return pid;
  const int fd = ::open(out_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) _exit(97);
  ::dup2(fd, STDOUT_FILENO);
  ::close(fd);
  ::execl(CCFSP_ANALYZE_BIN, CCFSP_ANALYZE_BIN, "--gen", "wave:64:32", "--rungs",
          "explicit", "--timeout-ms", "600000", "--retries", "0",
          static_cast<char*>(nullptr));
  _exit(98);
}

void expect_signal_yields_clean_budget_exit(int sig) {
  // Unique per test process AND per signal: ctest -j runs the SIGINT and
  // SIGTERM cases concurrently, and a shared path would let one child's
  // O_TRUNC race the other test's read.
  const std::string out_path = ::testing::TempDir() + "/ccfsp_signal_test." +
                               std::to_string(::getpid()) + "." + std::to_string(sig) +
                               ".out";
  const pid_t pid = spawn_long_analysis(out_path);
  ASSERT_GT(pid, 0);

  // Give the run time to install its handlers and enter the explicit rung;
  // the workload itself needs minutes, so this cannot race completion.
  std::this_thread::sleep_for(std::chrono::milliseconds(500));
  ASSERT_EQ(::kill(pid, sig), 0);

  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status)) << "died on the signal instead of cancelling";
  EXPECT_EQ(WEXITSTATUS(status), 3);  // the documented budget exit code

  std::ifstream in(out_path);
  std::ostringstream ss;
  ss << in.rdbuf();
  const std::string out = ss.str();
  EXPECT_NE(out.find("outcome: budget-exhausted"), std::string::npos) << out;
  std::remove(out_path.c_str());
}

TEST(SignalHandling, SigintCancelsCooperatively) {
  expect_signal_yields_clean_budget_exit(SIGINT);
}

TEST(SignalHandling, SigtermCancelsCooperatively) {
  expect_signal_yields_clean_budget_exit(SIGTERM);
}

}  // namespace
}  // namespace ccfsp

#endif  // CCFSP_ANALYZE_BIN
