// The invariant layer over the metrics counters: they are machine-checkable
// identities about what the engine did, not best-effort diagnostics.
//   - flat and reference build_global report the same states/edges;
//   - --threads 1 and --threads 4 report identical merged counters outside
//     the documented execution-shape set (levels, spawn decisions, frontier
//     shape, ring usage — those legitimately depend on how the build ran);
//   - nf_memo satisfies hits + misses == lookups, and a memoized Theorem 3
//     run on a self-similar family actually hits with unchanged decisions;
//   - the ladder's rung trace is monotone: rungs in requested order,
//     attempt indices contiguous from zero within each rung.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "network/families.hpp"
#include "network/generate.hpp"
#include "network/network.hpp"
#include "success/analyze.hpp"
#include "success/global.hpp"
#include "success/tree_pipeline.hpp"
#include "util/metrics.hpp"
#include "util/rng.hpp"

namespace ccfsp {
namespace {

using metrics::Counter;
using metrics::ScopedEnable;
using metrics::Snapshot;

Snapshot counters_of(const std::function<void()>& run) {
  ScopedEnable on;
  run();
  return metrics::snapshot();
}

std::vector<Network> corpus() {
  std::vector<Network> nets;
  nets.push_back(dining_philosophers(5));
  {
    Rng rng(0x5eed);
    nets.push_back(wave_tree_network(rng, 6, 3));
  }
  for (std::uint64_t seed : {11u, 23u}) {
    Rng rng(seed);
    NetworkGenOptions opt;
    opt.num_processes = 3 + rng.below(3);
    opt.states_per_process = 3 + rng.below(4);
    opt.symbols_per_edge = 1 + rng.below(2);
    opt.tau_probability = 0.15;
    nets.push_back(random_tree_network(rng, opt));
  }
  return nets;
}

TEST(MetricsInvariants, FlatAndReferenceBuildsCountIdenticalStatesAndEdges) {
  for (const Network& net : corpus()) {
    Budget budget;
    const Snapshot flat = counters_of([&] { build_global(net, budget, 1); });
    const Snapshot ref = counters_of([&] { build_global_reference(net, budget); });
    EXPECT_GT(flat.value(Counter::kGlobalStates), 0u);
    EXPECT_EQ(flat.value(Counter::kGlobalStates), ref.value(Counter::kGlobalStates));
    EXPECT_EQ(flat.value(Counter::kGlobalEdges), ref.value(Counter::kGlobalEdges));
  }
}

TEST(MetricsInvariants, Threads1And4ReportIdenticalSemanticCounters) {
  std::vector<bool> shape(metrics::kNumCounters, false);
  for (Counter c : metrics::execution_shape_counters()) {
    shape[static_cast<std::size_t>(c)] = true;
  }
  for (const Network& net : corpus()) {
    Budget budget;
    const Snapshot t1 = counters_of([&] { build_global(net, budget, 1); });
    const Snapshot t4 = counters_of([&] { build_global(net, budget, 4); });
    for (std::size_t i = 0; i < metrics::kNumCounters; ++i) {
      if (shape[i]) continue;
      EXPECT_EQ(t1.counters[i], t4.counters[i])
          << metrics::name(static_cast<Counter>(i));
    }
  }
}

TEST(MetricsInvariants, SequentialAndParallelBuildsReportSameLevelCounts) {
  // global.levels and global.frontier_peak describe the BFS level structure
  // of the state graph, which is a property of the network, not of the
  // execution mode: a --threads 1 wave build and a --threads 4 fused
  // frontier build must agree on both. (They sit in the execution-shape set
  // only because checkpoint *resume* compresses the restored prefix into a
  // single level, not because thread count may move them.)
  for (const Network& net : corpus()) {
    Budget budget;
    const Snapshot t1 = counters_of([&] { build_global(net, budget, 1); });
    const Snapshot t4 = counters_of([&] { build_global(net, budget, 4); });
    EXPECT_GT(t1.value(Counter::kGlobalLevels), 0u);
    EXPECT_EQ(t1.value(Counter::kGlobalLevels), t4.value(Counter::kGlobalLevels));
    EXPECT_EQ(t1.value(Counter::kGlobalFrontierPeak),
              t4.value(Counter::kGlobalFrontierPeak));
  }
}

TEST(MetricsInvariants, SequentialWaveKeysCoverEveryEmittedEdge) {
  // The sequential builder interns every successor through intern_batch:
  // keys resolved across waves must equal edges emitted, and every key goes
  // through the staged wave buffer.
  for (const Network& net : corpus()) {
    Budget budget;
    const Snapshot t1 = counters_of([&] { build_global(net, budget, 1); });
    EXPECT_GT(t1.value(Counter::kInternWaves), 0u);
    EXPECT_EQ(t1.value(Counter::kInternWaveKeys), t1.value(Counter::kGlobalEdges));
    EXPECT_EQ(t1.value(Counter::kInternWaveKeys),
              t1.value(Counter::kGlobalRingInterns));
  }
}

TEST(MetricsInvariants, LadderRunThreads1And4AgreeEndToEnd) {
  // The same identity through the public entry point: a full analyze() run
  // only differs between thread counts on the execution-shape counters.
  const Network net = dining_philosophers(5);
  std::vector<bool> shape(metrics::kNumCounters, false);
  for (Counter c : metrics::execution_shape_counters()) {
    shape[static_cast<std::size_t>(c)] = true;
  }
  metrics::MetricsSink s1, s4;
  AnalyzeOptions o1, o4;
  o1.threads = 1;
  o1.metrics = &s1;
  o4.threads = 4;
  o4.metrics = &s4;
  const AnalysisReport r1 = analyze(net, 0, o1);
  const AnalysisReport r4 = analyze(net, 0, o4);
  EXPECT_EQ(r1.status, r4.status);
  for (std::size_t i = 0; i < metrics::kNumCounters; ++i) {
    if (shape[i]) continue;
    EXPECT_EQ(s1.result.counters[i], s4.result.counters[i])
        << metrics::name(static_cast<Counter>(i));
  }
}

TEST(MetricsInvariants, NfMemoHitsPlusMissesEqualsLookups) {
  Rng rng(0x5eed);
  const Network net = wave_tree_network(rng, 8, 3);
  Theorem3Options opt;
  opt.memoize = true;
  Theorem3Result result;
  const Snapshot snap = counters_of([&] { result = theorem3_decide(net, 0, opt); });
  EXPECT_EQ(snap.value(Counter::kNfMemoLookups),
            snap.value(Counter::kNfMemoHits) + snap.value(Counter::kNfMemoMisses));
  // The counters agree with the pipeline's own bookkeeping.
  EXPECT_EQ(snap.value(Counter::kNfMemoHits), result.memo_hits);
  EXPECT_EQ(snap.value(Counter::kNfMemoMisses), result.memo_misses);
}

TEST(MetricsInvariants, MemoizedTheorem3HitsWithUnchangedDecisions) {
  // The wave family is self-similar: the subtree memo must actually fire,
  // and memoization must not change any decision.
  Rng rng(0x5eed);
  const Network net = wave_tree_network(rng, 8, 3);
  Theorem3Options memoized, plain;
  memoized.memoize = true;
  plain.memoize = false;
  Theorem3Result with_memo, without_memo;
  const Snapshot snap =
      counters_of([&] { with_memo = theorem3_decide(net, 0, memoized); });
  const Snapshot snap_plain =
      counters_of([&] { without_memo = theorem3_decide(net, 0, plain); });
  EXPECT_GT(snap.value(Counter::kNfMemoHits), 0u);
  EXPECT_EQ(snap_plain.value(Counter::kNfMemoLookups), 0u);
  EXPECT_EQ(with_memo.unavoidable_success, without_memo.unavoidable_success);
  EXPECT_EQ(with_memo.success_collab, without_memo.success_collab);
  EXPECT_EQ(with_memo.success_adversity, without_memo.success_adversity);
}

TEST(MetricsInvariants, FspCacheAndRefineCountersFireOnTheHeuristicRung) {
  const Network net = dining_philosophers(4);
  metrics::MetricsSink sink;
  AnalyzeOptions opt;
  opt.metrics = &sink;
  analyze(net, 0, opt);
  EXPECT_GT(sink.result.value(Counter::kFspCacheBuilds), 0u);
  EXPECT_GE(sink.result.value(Counter::kFspCacheStates),
            sink.result.value(Counter::kFspCacheBuilds));
  EXPECT_GT(sink.result.value(Counter::kRefinePops), 0u);
  EXPECT_GE(sink.result.value(Counter::kRefinePops), sink.result.value(Counter::kRefineSplits));
}

TEST(MetricsInvariants, LadderTraceIsMonotoneInRungOrderWithContiguousAttempts) {
  const std::vector<std::vector<Rung>> ladders = {
      {},  // default ladder for the input's classification
      {Rung::kLinear, Rung::kTree, Rung::kExplicit},
      {Rung::kExplicit, Rung::kLinear},
  };
  Rng rng(7);
  NetworkGenOptions gen;
  gen.num_processes = 3;
  gen.states_per_process = 4;
  const Network net = random_tree_network(rng, gen);
  for (const auto& requested : ladders) {
    AnalyzeOptions opt;
    opt.rungs = requested;
    opt.retries = 2;
    opt.budget.limit_states(40);  // small enough to force retries somewhere
    const AnalysisReport report = analyze(net, 0, opt);

    // Reconstruct the order rungs were tried in; it must be a subsequence
    // of the requested (or default) ladder, each rung's attempts contiguous
    // and increasing from zero.
    std::vector<Rung> ladder = requested;
    if (ladder.empty()) {
      ladder = {Rung::kLinear, Rung::kTree, Rung::kExplicit};
    }
    std::size_t ladder_pos = 0;
    std::size_t i = 0;
    while (i < report.rungs.size()) {
      const Rung rung = report.rungs[i].rung;
      while (ladder_pos < ladder.size() && ladder[ladder_pos] != rung) ++ladder_pos;
      ASSERT_LT(ladder_pos, ladder.size())
          << "rung " << to_string(rung) << " out of ladder order";
      unsigned expected_attempt = 0;
      while (i < report.rungs.size() && report.rungs[i].rung == rung) {
        EXPECT_EQ(report.rungs[i].attempt, expected_attempt) << to_string(rung);
        ++expected_attempt;
        ++i;
      }
      ++ladder_pos;
    }
  }
}

TEST(MetricsInvariants, LadderCountersMatchTheRungTrace) {
  const Network net = dining_philosophers(4);
  metrics::MetricsSink sink;
  AnalyzeOptions opt;
  opt.metrics = &sink;
  const AnalysisReport report = analyze(net, 0, opt);
  std::uint64_t decided = 0, unsupported = 0, trips = 0, retries = 0;
  for (const RungOutcome& r : report.rungs) {
    decided += r.status == OutcomeStatus::kDecided;
    unsupported += r.status == OutcomeStatus::kUnsupported;
    trips += r.status == OutcomeStatus::kBudgetExhausted;
    retries += r.attempt >= 1;
  }
  EXPECT_EQ(sink.result.value(Counter::kLadderAttempts), report.rungs.size());
  EXPECT_EQ(sink.result.value(Counter::kLadderDecided), decided);
  EXPECT_EQ(sink.result.value(Counter::kLadderUnsupported), unsupported);
  EXPECT_EQ(sink.result.value(Counter::kLadderBudgetTrips), trips);
  EXPECT_EQ(sink.result.value(Counter::kLadderRetries), retries);
}

}  // namespace
}  // namespace ccfsp
