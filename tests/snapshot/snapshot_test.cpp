// Container-level tests for the sectioned snapshot format: round trips,
// exhaustive truncation, bit flips at every byte, kind/version/magic
// rejection, and the writer/reader failpoints. Every rejection must be a
// structured LoadError — never a crash, never a partially validated view.
#include "snapshot/snapshot.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <string>
#include <vector>

#include "util/failpoint.hpp"
#include "util/io.hpp"

namespace ccfsp::snapshot {
namespace {

std::string temp_path(const char* tag) {
  return "/tmp/ccfsp_snapshot_test_" + std::to_string(::getpid()) + "_" + tag;
}

Writer sample_writer() {
  Writer w(Kind::kGlobalMachine);
  w.add_u32s(1, {1, 2, 3, 4});
  w.add_bytes(2, "payload bytes");
  w.add_u64(3, 0x1122334455667788ull);
  w.add_u32s(4, {});  // empty section is legal
  return w;
}

TEST(SnapshotContainer, RoundTripPreservesSections) {
  const std::string bytes = sample_writer().serialize();
  LoadError err;
  auto r = Reader::load_bytes(bytes, Kind::kGlobalMachine, &err);
  ASSERT_TRUE(r.has_value()) << to_string(err.reason);
  EXPECT_EQ(r->kind(), Kind::kGlobalMachine);
  EXPECT_NE(r->stamp().find("snapshot format"), std::string_view::npos);

  std::vector<std::uint32_t> v;
  ASSERT_TRUE(r->read_u32s(1, &v));
  EXPECT_EQ(v, (std::vector<std::uint32_t>{1, 2, 3, 4}));
  ASSERT_TRUE(r->has(2));
  const auto sec = r->section(2);
  EXPECT_EQ(std::string(sec.data(), sec.size()), "payload bytes");
  std::uint64_t u = 0;
  ASSERT_TRUE(r->read_u64(3, &u));
  EXPECT_EQ(u, 0x1122334455667788ull);
  ASSERT_TRUE(r->has(4));
  EXPECT_TRUE(r->section(4).empty());
  EXPECT_FALSE(r->has(99));
  EXPECT_FALSE(r->read_u32s(99, &v));
}

TEST(SnapshotContainer, EveryTruncationIsAStructuredReject) {
  const std::string bytes = sample_writer().serialize();
  for (std::size_t n = 0; n < bytes.size(); ++n) {
    LoadError err;
    auto r = Reader::load_bytes(bytes.substr(0, n), Kind::kGlobalMachine, &err);
    EXPECT_FALSE(r.has_value()) << "prefix of " << n << " bytes must not load";
  }
}

TEST(SnapshotContainer, EveryBitFlipIsAStructuredReject) {
  const std::string bytes = sample_writer().serialize();
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    std::string flipped = bytes;
    flipped[i] ^= 0x01;
    LoadError err;
    auto r = Reader::load_bytes(flipped, Kind::kGlobalMachine, &err);
    EXPECT_FALSE(r.has_value()) << "bit flip at byte " << i << " must not load";
  }
}

TEST(SnapshotContainer, TrailingGarbageIsRejected) {
  LoadError err;
  EXPECT_FALSE(
      Reader::load_bytes(sample_writer().serialize() + "x", Kind::kGlobalMachine, &err));
  EXPECT_EQ(err.reason, LoadError::Reason::kMalformed);
}

TEST(SnapshotContainer, WrongKindIsRejectedAsWrongKind) {
  const std::string bytes = sample_writer().serialize();
  LoadError err;
  EXPECT_FALSE(Reader::load_bytes(bytes, Kind::kBuildCheckpoint, &err));
  EXPECT_EQ(err.reason, LoadError::Reason::kWrongKind);
}

TEST(SnapshotContainer, BadMagicAndVersionAreDistinguished) {
  std::string bytes = sample_writer().serialize();
  {
    std::string bad = bytes;
    bad[0] = 'X';
    LoadError err;
    EXPECT_FALSE(Reader::load_bytes(bad, Kind::kGlobalMachine, &err));
    EXPECT_EQ(err.reason, LoadError::Reason::kBadMagic);
  }
  {
    // Bytes 8..11 are the little-endian format version; a future version
    // must be kBadVersion (no guessing), even though the footer CRC is now
    // stale too — the version check runs first.
    std::string bad = bytes;
    bad[8] = static_cast<char>(kSnapshotFormatVersion + 1);
    LoadError err;
    EXPECT_FALSE(Reader::load_bytes(bad, Kind::kGlobalMachine, &err));
    EXPECT_EQ(err.reason, LoadError::Reason::kBadVersion);
  }
  {
    LoadError err;
    EXPECT_FALSE(Reader::load_bytes("", Kind::kGlobalMachine, &err));
    EXPECT_EQ(err.reason, LoadError::Reason::kTooShort);
  }
}

TEST(SnapshotContainer, FileRoundTripAndMissingFile) {
  const std::string path = temp_path("file");
  std::string error;
  ASSERT_TRUE(sample_writer().write_file(path, &error)) << error;
  LoadError err;
  auto r = Reader::load_file(path, Kind::kGlobalMachine, &err);
  ASSERT_TRUE(r.has_value()) << to_string(err.reason);
  EXPECT_GT(r->total_bytes(), 0u);
  ::unlink(path.c_str());

  EXPECT_FALSE(Reader::load_file(path, Kind::kGlobalMachine, &err));
  EXPECT_EQ(err.reason, LoadError::Reason::kOpenFailed);
}

TEST(SnapshotContainer, WriterFailpointsFailTheSaveCleanly) {
  const std::string path = temp_path("failpoints");
  for (const char* site : {"snapshot.write_short", "snapshot.fsync", "snapshot.rename"}) {
    failpoint::Spec s;
    s.action = failpoint::Action::kThrowBadAlloc;
    s.trigger = failpoint::Trigger::kOnHit;
    s.n = 1;
    failpoint::arm(site, s);
    std::string error;
    EXPECT_FALSE(sample_writer().write_file(path, &error)) << site;
    failpoint::disarm_all();
    LoadError err;
    EXPECT_FALSE(Reader::load_file(path, Kind::kGlobalMachine, &err)) << site;
    EXPECT_EQ(err.reason, LoadError::Reason::kOpenFailed) << site;
  }
}

TEST(SnapshotContainer, InjectedCorruptionIsCaughtByLoad) {
  // snapshot.corrupt commits a bit-flipped file; the reader must refuse it.
  const std::string path = temp_path("corrupt");
  failpoint::Spec s;
  s.action = failpoint::Action::kThrowBadAlloc;
  s.trigger = failpoint::Trigger::kOnHit;
  s.n = 1;
  failpoint::arm("snapshot.corrupt", s);
  std::string error;
  ASSERT_TRUE(sample_writer().write_file(path, &error)) << error;
  failpoint::disarm_all();
  LoadError err;
  EXPECT_FALSE(Reader::load_file(path, Kind::kGlobalMachine, &err));
  ::unlink(path.c_str());
}

TEST(SnapshotContainer, LoadSectionFailpointIsAnInjectedReject) {
  failpoint::Spec s;
  s.action = failpoint::Action::kThrowBadAlloc;
  s.trigger = failpoint::Trigger::kOnHit;
  s.n = 1;
  failpoint::arm("snapshot.load_section", s);
  LoadError err;
  EXPECT_FALSE(
      Reader::load_bytes(sample_writer().serialize(), Kind::kGlobalMachine, &err));
  EXPECT_EQ(err.reason, LoadError::Reason::kInjected);
  failpoint::disarm_all();
}

TEST(SnapshotContainer, ReasonNamesAreStable) {
  EXPECT_STREQ(to_string(LoadError::Reason::kOpenFailed), "open_failed");
  EXPECT_STREQ(to_string(LoadError::Reason::kSectionCrc), "section_crc");
  EXPECT_STREQ(to_string(LoadError::Reason::kMissingFooter), "missing_footer");
  EXPECT_STREQ(to_string(LoadError::Reason::kWrongContent), "wrong_content");
}

}  // namespace
}  // namespace ccfsp::snapshot
