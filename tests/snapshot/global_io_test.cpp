// Global-machine and checkpoint persistence: a loaded machine must be
// bit-identical to a fresh build, charge the budget identically, refuse the
// wrong network, and resume a checkpointed build into exactly the machine
// an uninterrupted build produces — whatever the checkpoint schedule.
#include "snapshot/global_io.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <optional>
#include <string>
#include <vector>

#include "network/families.hpp"
#include "snapshot/persist.hpp"
#include "util/metrics.hpp"

namespace ccfsp::snapshot {
namespace {

std::string temp_path(const char* tag) {
  return "/tmp/ccfsp_global_io_test_" + std::to_string(::getpid()) + "_" + tag;
}

void expect_identical(const GlobalMachine& a, const GlobalMachine& b) {
  EXPECT_EQ(a.width, b.width);
  EXPECT_EQ(a.words, b.words);
  ASSERT_EQ(a.fields.size(), b.fields.size());
  for (std::size_t i = 0; i < a.fields.size(); ++i) {
    EXPECT_EQ(a.fields[i].word, b.fields[i].word) << i;
    EXPECT_EQ(a.fields[i].shift, b.fields[i].shift) << i;
    EXPECT_EQ(a.fields[i].mask, b.fields[i].mask) << i;
  }
  EXPECT_EQ(a.tuple_words, b.tuple_words);
  EXPECT_EQ(a.edge_target, b.edge_target);
  EXPECT_EQ(a.edge_action, b.edge_action);
  EXPECT_EQ(a.edge_pair, b.edge_pair);
  EXPECT_EQ(a.edge_offsets, b.edge_offsets);
}

TEST(GlobalIo, SaveLoadRoundTripIsBitIdentical) {
  const Network net = dining_philosophers(4);
  const GlobalMachine fresh = build_global(net, Budget::unlimited(), 1);
  const std::string path = temp_path("roundtrip");
  std::string error;
  ASSERT_TRUE(save_global(fresh, net, path, &error)) << error;

  LoadError err;
  auto loaded = load_global(path, net, &err);
  ASSERT_TRUE(loaded.has_value()) << to_string(err.reason) << ": " << err.detail;
  expect_identical(fresh, *loaded);
  ::unlink(path.c_str());
}

TEST(GlobalIo, WrongNetworkIsAFingerprintReject) {
  const Network net = dining_philosophers(4);
  const GlobalMachine fresh = build_global(net, Budget::unlimited(), 1);
  const std::string path = temp_path("wrong_net");
  std::string error;
  ASSERT_TRUE(save_global(fresh, net, path, &error)) << error;

  LoadError err;
  EXPECT_FALSE(load_global(path, dining_philosophers(3), &err));
  EXPECT_EQ(err.reason, LoadError::Reason::kWrongContent);
  // A different family with a different shape rejects too.
  EXPECT_FALSE(load_global(path, token_ring(4), &err));
  EXPECT_EQ(err.reason, LoadError::Reason::kWrongContent);
  ::unlink(path.c_str());
}

TEST(GlobalIo, FingerprintSeparatesFamiliesAndSizes) {
  const std::uint64_t a = network_fingerprint(dining_philosophers(4));
  EXPECT_EQ(a, network_fingerprint(dining_philosophers(4)));
  EXPECT_NE(a, network_fingerprint(dining_philosophers(5)));
  EXPECT_NE(a, network_fingerprint(token_ring(4)));
}

TEST(GlobalIo, ChargeLoadedGlobalMatchesAFreshBuild) {
  const Network net = dining_philosophers(4);
  const Budget build_budget = Budget::unlimited();
  const GlobalMachine g = build_global(net, build_budget, 1);

  const Budget load_budget = Budget::unlimited();
  charge_loaded_global(g, load_budget);
  EXPECT_EQ(load_budget.states_used(), build_budget.states_used());
  EXPECT_EQ(load_budget.bytes_used(), build_budget.bytes_used());

  // The same wall a fresh build would hit: a cap below the machine trips.
  const Budget tight = Budget::with_states(g.num_states() - 1);
  EXPECT_THROW(charge_loaded_global(g, tight), BudgetExceeded);
}

TEST(GlobalIo, ChargeEquivalentCountersOnLoad) {
  const Network net = dining_philosophers(4);
  const GlobalMachine fresh = build_global(net, Budget::unlimited(), 1);
  const std::string path = temp_path("counters");
  std::string error;
  ASSERT_TRUE(save_global(fresh, net, path, &error)) << error;

  metrics::reset();
  metrics::enable();
  LoadError err;
  auto loaded = load_global(path, net, &err);
  ASSERT_TRUE(loaded.has_value()) << to_string(err.reason);
  charge_loaded_global(*loaded, Budget::unlimited());
  metrics::disable();
  const metrics::Snapshot after_load = metrics::snapshot();

  metrics::reset();
  metrics::enable();
  const GlobalMachine rebuilt = build_global(net, Budget::unlimited(), 1);
  metrics::disable();
  const metrics::Snapshot after_build = metrics::snapshot();

  // What the machine *is* must count the same either way; only the
  // execution-shape counters (frontier peaks, interner probes, snapshot.*)
  // may differ.
  EXPECT_EQ(after_load.value(metrics::Counter::kGlobalStates),
            after_build.value(metrics::Counter::kGlobalStates));
  EXPECT_EQ(after_load.value(metrics::Counter::kGlobalEdges),
            after_build.value(metrics::Counter::kGlobalEdges));
  EXPECT_EQ(after_load.value(metrics::Counter::kSnapshotLoads), 1u);
  EXPECT_EQ(after_build.value(metrics::Counter::kSnapshotLoads), 0u);
  metrics::reset();
  ::unlink(path.c_str());
}

TEST(GlobalIo, CheckpointRoundTripPreservesProgress) {
  const Network net = dining_philosophers(4);
  std::optional<GlobalBuildProgress> taken;
  CheckpointOptions ckpt;
  ckpt.interval_states = 64;
  ckpt.on_checkpoint = [&](const GlobalBuildProgress& p) {
    if (!taken) taken = p;  // keep the first (earliest) image
  };
  build_global_checkpointed(net, Budget::unlimited(), ckpt);
  ASSERT_TRUE(taken.has_value());
  ASSERT_GT(taken->cursor, 0u);

  const std::string path = temp_path("ckpt");
  std::string error;
  ASSERT_TRUE(save_checkpoint(*taken, net, path, &error)) << error;
  LoadError err;
  auto back = load_checkpoint(path, net, &err);
  ASSERT_TRUE(back.has_value()) << to_string(err.reason) << ": " << err.detail;
  EXPECT_EQ(back->words, taken->words);
  EXPECT_EQ(back->cursor, taken->cursor);
  EXPECT_EQ(back->tuple_words, taken->tuple_words);
  EXPECT_EQ(back->edge_target, taken->edge_target);
  EXPECT_EQ(back->edge_action, taken->edge_action);
  EXPECT_EQ(back->edge_pair, taken->edge_pair);
  EXPECT_EQ(back->edge_offsets, taken->edge_offsets);

  EXPECT_FALSE(load_checkpoint(path, dining_philosophers(3), &err));
  EXPECT_EQ(err.reason, LoadError::Reason::kWrongContent);
  ::unlink(path.c_str());
}

TEST(GlobalIo, ResumeFromAnyCheckpointReproducesTheMachine) {
  const Network net = dining_philosophers(4);
  const GlobalMachine oracle = build_global(net, Budget::unlimited(), 1);

  // Collect every image a fine-grained schedule produces, then resume from
  // each one — early, middle, late — and demand the identical machine.
  std::vector<GlobalBuildProgress> images;
  CheckpointOptions record;
  record.interval_states = 16;  // phil:4 is ~80 states; several images fit
  record.on_checkpoint = [&](const GlobalBuildProgress& p) { images.push_back(p); };
  expect_identical(oracle, build_global_checkpointed(net, Budget::unlimited(), record));
  ASSERT_GE(images.size(), 3u);

  for (std::size_t pick : {std::size_t{0}, images.size() / 2, images.size() - 1}) {
    CheckpointOptions resume;
    resume.resume = &images[pick];
    const GlobalMachine redone = build_global_checkpointed(net, Budget::unlimited(), resume);
    expect_identical(oracle, redone);
  }
}

TEST(GlobalIo, ResumedBuildRechargesRestoredStates) {
  const Network net = dining_philosophers(4);
  std::optional<GlobalBuildProgress> taken;
  CheckpointOptions record;
  record.interval_states = 24;
  record.on_checkpoint = [&](const GlobalBuildProgress& p) {
    if (!taken) taken = p;
  };
  const Budget clean = Budget::unlimited();
  build_global_checkpointed(net, clean, record);
  ASSERT_TRUE(taken.has_value());

  // Restored states are re-charged like fresh interns: a resumed run's
  // budget usage equals the uninterrupted run's, and a cap below the total
  // trips even though the wall sits inside the restored prefix's worth.
  CheckpointOptions resume;
  resume.resume = &*taken;
  const Budget resumed = Budget::unlimited();
  build_global_checkpointed(net, resumed, resume);
  EXPECT_EQ(resumed.states_used(), clean.states_used());
  EXPECT_EQ(resumed.bytes_used(), clean.bytes_used());

  const Budget tight = Budget::with_states(taken->cursor / 2);
  CheckpointOptions resume_tight;
  resume_tight.resume = &*taken;
  EXPECT_THROW(build_global_checkpointed(net, tight, resume_tight), BudgetExceeded);
}

TEST(GlobalPersist, SourceLoadsSavesAndDegrades) {
  const Network net = dining_philosophers(4);
  const GlobalMachine oracle = build_global(net, Budget::unlimited(), 1);
  const std::string path = temp_path("source");
  std::vector<std::string> notes;

  // First run: nothing on disk — builds fresh, saves.
  GlobalPersistOptions opt;
  opt.load_path = path;
  opt.save_path = path;
  opt.note = [&](const std::string& n) { notes.push_back(n); };
  AnalyzeOptions::GlobalSource source = make_global_source(opt);
  expect_identical(oracle, source(net, Budget::unlimited(), 1));

  // Second run: loads the file it saved; still bit-identical.
  expect_identical(oracle, source(net, Budget::unlimited(), 1));

  // Wrong network on the same path: degradation note + a correct fresh
  // build for *that* network, never a wrong machine.
  const Network other = dining_philosophers(3);
  const std::size_t notes_before = notes.size();
  GlobalPersistOptions wrong;
  wrong.load_path = path;
  wrong.note = [&](const std::string& n) { notes.push_back(n); };
  const GlobalMachine degraded = make_global_source(wrong)(other, Budget::unlimited(), 1);
  expect_identical(build_global(other, Budget::unlimited(), 1), degraded);
  ASSERT_GT(notes.size(), notes_before);
  EXPECT_NE(notes.back().find("wrong_content"), std::string::npos) << notes.back();
  ::unlink(path.c_str());
}

TEST(GlobalPersist, CheckpointedSourceResumesAndCleansUp) {
  const Network net = dining_philosophers(4);
  const GlobalMachine oracle = build_global(net, Budget::unlimited(), 1);
  const std::string ckpt = temp_path("source_ckpt");

  // A budget-walled first attempt leaves a durable checkpoint behind.
  GlobalPersistOptions opt;
  opt.checkpoint_path = ckpt;
  opt.checkpoint_interval = 10;
  opt.resume = true;
  AnalyzeOptions::GlobalSource source = make_global_source(opt);
  EXPECT_THROW(source(net, Budget::with_states(oracle.num_states() / 2), 1), BudgetExceeded);
  LoadError err;
  EXPECT_TRUE(load_checkpoint(ckpt, net, &err).has_value())
      << "interrupted build must leave a loadable checkpoint";

  // The retry resumes from it and completes bit-identically; the consumed
  // checkpoint is unlinked after the completed build.
  expect_identical(oracle, source(net, Budget::unlimited(), 1));
  EXPECT_FALSE(load_checkpoint(ckpt, net, &err).has_value());
  EXPECT_EQ(err.reason, LoadError::Reason::kOpenFailed);
}

}  // namespace
}  // namespace ccfsp::snapshot
