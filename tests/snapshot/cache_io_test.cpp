// The daemon warm-restart image: pooled processes must round-trip into the
// exact pool key they came from, memo entries must survive export/import
// with their rebuilds intact, and every tampered or malformed entry must be
// refused at import — a cache file is untrusted input even after its CRCs
// pass.
#include "snapshot/cache_io.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <string>
#include <utility>
#include <vector>

#include "fsp/builder.hpp"
#include "semantics/normal_form.hpp"

namespace ccfsp::snapshot {
namespace {

std::string temp_path(const char* tag) {
  return "/tmp/ccfsp_cache_io_test_" + std::to_string(::getpid()) + "_" + tag;
}

Fsp sample_fsp(const AlphabetPtr& alphabet) {
  return FspBuilder(alphabet, "P")
      .trans("0", "a", "1")
      .trans("0", "tau", "2")
      .trans("2", "b", "3")
      .trans("1", "a", "3")
      .action("ghost")
      .build();
}

TEST(CacheIo, FspImageRoundTripsStructureAndAlphabet) {
  AlphabetPtr alphabet = std::make_shared<Alphabet>();
  const Fsp f = sample_fsp(alphabet);
  const FspImage img = fsp_image_of(f);
  const Fsp back = fsp_from_image(img);

  EXPECT_EQ(back.name(), f.name());
  ASSERT_EQ(back.num_states(), f.num_states());
  EXPECT_EQ(back.start(), f.start());
  EXPECT_EQ(back.sigma(), f.sigma());
  // The image carries the alphabet in interned-id order, so action ids —
  // not just names — survive the round trip and the transitions compare
  // word for word.
  ASSERT_EQ(back.alphabet()->size(), f.alphabet()->size());
  for (ActionId a = 0; a < f.alphabet()->size(); ++a) {
    EXPECT_EQ(back.alphabet()->name(a), f.alphabet()->name(a)) << a;
  }
  for (StateId s = 0; s < f.num_states(); ++s) {
    EXPECT_EQ(back.out(s), f.out(s)) << "state " << s;
  }
}

TEST(CacheIo, RestoredProcessHitsTheSamePoolEntry) {
  AlphabetPtr alphabet = std::make_shared<Alphabet>();
  const Fsp f = sample_fsp(alphabet);
  SharedCacheRegistry registry;
  auto first = registry.fsp_cache(f, nullptr);
  ASSERT_EQ(registry.fsp_cache_misses(), 1u);

  const Fsp back = fsp_from_image(fsp_image_of(f));
  auto second = registry.fsp_cache(back, nullptr);
  EXPECT_EQ(registry.fsp_cache_hits(), 1u) << "round trip must reproduce the exact pool key";
  EXPECT_EQ(registry.fsp_cache_entries(), 1u);
  EXPECT_EQ(first->bytes(), second->bytes());
}

TEST(CacheIo, MemoExportImportReproducesHitsAndOrder) {
  AlphabetPtr alphabet = std::make_shared<Alphabet>();
  const Fsp f = sample_fsp(alphabet);
  const Fsp g = FspBuilder(alphabet, "Q").trans("0", "b", "1").trans("1", "c", "2").build();

  NormalFormMemo memo;
  for (const Fsp* p : {&f, &g}) {
    std::shared_ptr<const NfLabelShape> shape;
    Fsp nf = poss_normal_form(*p, 1u << 20, nullptr, &shape);
    memo.store(*p, nf, shape);
  }
  const auto exported = memo.export_entries();
  ASSERT_EQ(exported.size(), 2u);

  NormalFormMemo fresh;
  for (const auto& e : exported) {
    EXPECT_TRUE(fresh.import_entry(e));
  }
  EXPECT_EQ(fresh.entries(), memo.entries());
  EXPECT_EQ(fresh.bytes(), memo.bytes());
  for (const Fsp* p : {&f, &g}) {
    auto from_fresh = fresh.find(*p);
    auto from_orig = memo.find(*p);
    ASSERT_TRUE(from_fresh.has_value());
    ASSERT_TRUE(from_orig.has_value());
    ASSERT_EQ(from_fresh->num_states(), from_orig->num_states());
    EXPECT_EQ(from_fresh->start(), from_orig->start());
    EXPECT_EQ(from_fresh->sigma(), from_orig->sigma());
    for (StateId s = 0; s < from_fresh->num_states(); ++s) {
      EXPECT_EQ(from_fresh->out(s), from_orig->out(s)) << "state " << s;
      EXPECT_EQ(from_fresh->state_label(s), from_orig->state_label(s)) << "state " << s;
    }
  }
  // A re-import of an already-present key is refused, not duplicated.
  EXPECT_FALSE(fresh.import_entry(exported.front()));
  EXPECT_EQ(fresh.entries(), 2u);
}

TEST(CacheIo, ImportRefusesEveryTamperedEntry) {
  AlphabetPtr alphabet = std::make_shared<Alphabet>();
  const Fsp f = sample_fsp(alphabet);
  NormalFormMemo memo;
  std::shared_ptr<const NfLabelShape> shape;
  Fsp nf = poss_normal_form(f, 1u << 20, nullptr, &shape);
  memo.store(f, nf, shape);
  const auto exported = memo.export_entries();
  ASSERT_EQ(exported.size(), 1u);
  const NormalFormMemo::ExportedEntry& good = exported.front();
  ASSERT_GE(good.num_routers, 1u);

  auto refuse = [](NormalFormMemo::ExportedEntry e, const char* what) {
    NormalFormMemo m;
    EXPECT_FALSE(m.import_entry(e)) << what;
    EXPECT_EQ(m.entries(), 0u) << what;
  };
  {
    auto e = good;
    e.key.pop_back();
    refuse(e, "truncated key");
  }
  {
    auto e = good;
    e.start = e.num_states;
    refuse(e, "start out of range");
  }
  {
    auto e = good;
    e.num_states = 0;
    refuse(e, "zero states");
  }
  {
    auto e = good;
    e.parent[0] = 0;  // the root's parent must stay UINT32_MAX
    refuse(e, "router pointing at itself");
  }
  {
    auto e = good;
    e.off.back() += 1;
    refuse(e, "CSR tail off the edge columns");
  }
  {
    auto e = good;
    if (!e.tgt.empty()) {
      e.tgt[0] = e.num_states;
      refuse(e, "edge target out of range");
    }
  }
  {
    auto e = good;
    if (!e.act_canon.empty()) {
      e.act_canon[0] = 1u << 20;  // far beyond any canon id the key defines
      refuse(e, "canon action beyond the key's bound");
    }
  }
  {
    auto e = good;
    e.owner.assign(e.owner.size(), e.num_routers);
    refuse(e, "stable state owned by a nonexistent router");
  }
  // The untouched entry still imports: the harness itself is not rejecting
  // everything.
  NormalFormMemo m;
  EXPECT_TRUE(m.import_entry(good));
}

TEST(CacheIo, DaemonCacheSaveLoadRoundTrips) {
  AlphabetPtr alphabet = std::make_shared<Alphabet>();
  const Fsp f = sample_fsp(alphabet);
  NormalFormMemo memo;
  std::shared_ptr<const NfLabelShape> shape;
  Fsp nf = poss_normal_form(f, 1u << 20, nullptr, &shape);
  memo.store(f, nf, shape);

  DaemonCacheImage img;
  img.results.emplace_back("ANALYZE\nmodel one", "{\"code\":\"decided\"}");
  img.results.emplace_back("ANALYZE\nmodel two", "{\"code\":\"budget-exhausted\"}");
  img.memo = memo.export_entries();
  img.pool.push_back(fsp_image_of(f));

  const std::string path = temp_path("roundtrip");
  std::string error;
  ASSERT_TRUE(save_daemon_cache(img, path, &error)) << error;

  LoadError err;
  auto back = load_daemon_cache(path, &err);
  ASSERT_TRUE(back.has_value()) << to_string(err.reason) << ": " << err.detail;
  EXPECT_EQ(back->results, img.results);
  ASSERT_EQ(back->memo.size(), 1u);
  NormalFormMemo fresh;
  EXPECT_TRUE(fresh.import_entry(back->memo.front()));
  ASSERT_EQ(back->pool.size(), 1u);
  const Fsp rebuilt = fsp_from_image(back->pool.front());
  EXPECT_EQ(rebuilt.num_states(), f.num_states());
  EXPECT_EQ(rebuilt.name(), f.name());
  ::unlink(path.c_str());
}

TEST(CacheIo, LoadRejectsMalformedPoolImages) {
  AlphabetPtr alphabet = std::make_shared<Alphabet>();
  DaemonCacheImage img;
  img.pool.push_back(fsp_image_of(sample_fsp(alphabet)));
  img.pool.back().tgt[0] = img.pool.back().num_states;  // out-of-range edge

  const std::string path = temp_path("bad_pool");
  std::string error;
  ASSERT_TRUE(save_daemon_cache(img, path, &error)) << error;
  LoadError err;
  EXPECT_FALSE(load_daemon_cache(path, &err));
  EXPECT_EQ(err.reason, LoadError::Reason::kWrongContent);
  ::unlink(path.c_str());
}

TEST(CacheIo, MissingAndForeignFilesAreStructuredColdStarts) {
  LoadError err;
  EXPECT_FALSE(load_daemon_cache(temp_path("never_written"), &err));
  EXPECT_EQ(err.reason, LoadError::Reason::kOpenFailed);

  // A valid snapshot of another kind must be refused as the wrong kind, not
  // parsed as a cache.
  const std::string path = temp_path("foreign");
  Writer w(Kind::kGlobalMachine);
  w.add_u64(1, 42);
  std::string error;
  ASSERT_TRUE(w.write_file(path, &error)) << error;
  EXPECT_FALSE(load_daemon_cache(path, &err));
  EXPECT_EQ(err.reason, LoadError::Reason::kWrongKind);
  ::unlink(path.c_str());
}

}  // namespace
}  // namespace ccfsp::snapshot
