#include "equiv/equivalences.hpp"

#include <gtest/gtest.h>

#include "fsp/builder.hpp"
#include "fsp/generate.hpp"

namespace ccfsp {
namespace {

class EquivTest : public ::testing::Test {
 protected:
  AlphabetPtr alphabet = std::make_shared<Alphabet>();
};

TEST_F(EquivTest, IdenticalProcessesEquivalentEverywhere) {
  Fsp p = FspBuilder(alphabet, "P").trans("0", "a", "1").trans("1", "b", "2").build();
  Fsp q = FspBuilder(alphabet, "Q").trans("x", "a", "y").trans("y", "b", "z").build();
  EXPECT_TRUE(language_equivalent(p, q));
  EXPECT_TRUE(failure_equivalent(p, q));
  EXPECT_TRUE(possibility_equivalent(p, q));
}

TEST_F(EquivTest, LanguageDifferenceDetected) {
  Fsp p = FspBuilder(alphabet, "P").trans("0", "a", "1").build();
  Fsp q = FspBuilder(alphabet, "Q").trans("0", "a", "1").trans("1", "a", "2").build();
  EXPECT_FALSE(language_equivalent(p, q));
  EXPECT_FALSE(failure_equivalent(p, q));
  EXPECT_FALSE(possibility_equivalent(p, q));
}

TEST_F(EquivTest, HierarchyLangCoarserThanFailures) {
  // a(b+c) vs ab+ac: language equal, failures differ (classic CSP example).
  Fsp det = FspBuilder(alphabet, "Det")
                .trans("0", "a", "1")
                .trans("1", "b", "2")
                .trans("1", "c", "3")
                .build();
  Fsp nondet = FspBuilder(alphabet, "Non")
                   .trans("0", "a", "1")
                   .trans("0", "a", "1'")
                   .trans("1", "b", "2")
                   .trans("1'", "c", "3")
                   .build();
  EXPECT_TRUE(language_equivalent(det, nondet));
  EXPECT_FALSE(failure_equivalent(det, nondet));
  EXPECT_FALSE(possibility_equivalent(det, nondet));
}

TEST_F(EquivTest, HierarchyFailuresCoarserThanPossibilities) {
  // The Figure 2 pair (see possibilities_test for the construction).
  Fsp p = FspBuilder(alphabet, "P")
              .trans("r", "tau", "pa")
              .trans("r", "tau", "pb")
              .trans("pa", "a", "l1")
              .trans("pb", "b", "l2")
              .build();
  Fsp q = FspBuilder(alphabet, "Q")
              .trans("r", "tau", "qa")
              .trans("r", "tau", "qb")
              .trans("r", "tau", "qab")
              .trans("qa", "a", "l1")
              .trans("qb", "b", "l2")
              .trans("qab", "a", "l3")
              .trans("qab", "b", "l4")
              .build();
  EXPECT_TRUE(failure_equivalent(p, q));
  EXPECT_FALSE(possibility_equivalent(p, q));
}

TEST_F(EquivTest, TauUnfoldingIsPossEquivalent) {
  Fsp p = FspBuilder(alphabet, "P").trans("0", "a", "1").build();
  Fsp q = FspBuilder(alphabet, "Q")
              .trans("0", "tau", "1")
              .trans("1", "a", "2")
              .build();
  // A leading tau into the same stable offer: same possibilities.
  EXPECT_TRUE(possibility_equivalent(p, q));
}

TEST_F(EquivTest, StableVsUnstableRootDiffer) {
  // But a tau ALTERNATIVE at the root changes possibilities: in Q the root
  // is unstable and can also refuse a by drifting to a dead stable state.
  Fsp p = FspBuilder(alphabet, "P").trans("0", "a", "1").build();
  Fsp q = FspBuilder(alphabet, "Q")
              .trans("0", "a", "1")
              .trans("0", "tau", "2")
              .build();
  EXPECT_TRUE(language_equivalent(p, q));
  EXPECT_FALSE(possibility_equivalent(p, q));
}

TEST_F(EquivTest, WorksOnCyclicProcesses) {
  Fsp p = FspBuilder(alphabet, "P").trans("0", "a", "0").build();
  Fsp q = FspBuilder(alphabet, "Q").trans("0", "a", "1").trans("1", "a", "0").build();
  // Both are "a forever": language and possibilities agree.
  EXPECT_TRUE(language_equivalent(p, q));
  EXPECT_TRUE(possibility_equivalent(p, q));

  Fsp r = FspBuilder(alphabet, "R")
              .trans("0", "a", "1")
              .trans("1", "a", "0")
              .trans("1", "b", "0")
              .build();
  EXPECT_FALSE(language_equivalent(p, r));
}

TEST_F(EquivTest, DifferentSigmaDeclarationsDoNotAffectTheseEquivalences) {
  // The equivalences are over behaviours; declared-but-unused symbols show
  // up in neither language nor possibilities (composition is where Sigma
  // declarations matter).
  Fsp p = FspBuilder(alphabet, "P").trans("0", "a", "1").build();
  Fsp q = FspBuilder(alphabet, "Q").trans("0", "a", "1").action("ghost2").build();
  EXPECT_TRUE(possibility_equivalent(p, q));
}

}  // namespace
}  // namespace ccfsp
