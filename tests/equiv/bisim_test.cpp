#include "equiv/bisim.hpp"

#include <gtest/gtest.h>

#include "equiv/equivalences.hpp"
#include "fsp/builder.hpp"
#include "fsp/generate.hpp"

namespace ccfsp {
namespace {

class BisimTest : public ::testing::Test {
 protected:
  AlphabetPtr alphabet = std::make_shared<Alphabet>();
};

TEST_F(BisimTest, MergesIdenticalBranches) {
  Fsp f = FspBuilder(alphabet, "P")
              .trans("0", "a", "1")
              .trans("0", "a", "2")
              .trans("1", "b", "3")
              .trans("2", "b", "4")
              .build();
  // 1 ~ 2 and 3 ~ 4.
  auto cls = bisimulation_classes(f);
  EXPECT_EQ(cls[1], cls[2]);
  EXPECT_EQ(cls[3], cls[4]);
  EXPECT_NE(cls[0], cls[1]);
  Fsp q = quotient_by_bisimulation(f);
  EXPECT_EQ(q.num_states(), 3u);
  EXPECT_TRUE(possibility_equivalent(f, q));
}

TEST_F(BisimTest, DistinguishesDifferentFutures) {
  Fsp f = FspBuilder(alphabet, "P")
              .trans("0", "a", "1")
              .trans("0", "a", "2")
              .trans("1", "b", "3")
              .trans("2", "c", "4")
              .build();
  auto cls = bisimulation_classes(f);
  EXPECT_NE(cls[1], cls[2]);
}

TEST_F(BisimTest, TauIsAConcreteLabelForStrongBisim) {
  Fsp p = FspBuilder(alphabet, "P").trans("0", "a", "1").build();
  Fsp q = FspBuilder(alphabet, "Q").trans("0", "tau", "1").trans("1", "a", "2").build();
  // Strong bisim does NOT abstract tau: their quotients have different sizes.
  EXPECT_EQ(quotient_by_bisimulation(p).num_states(), 2u);
  EXPECT_EQ(quotient_by_bisimulation(q).num_states(), 3u);
}

TEST_F(BisimTest, QuotientSoundForAllThreeEquivalences) {
  Rng rng(606);
  std::vector<ActionId> pool{alphabet->intern("a"), alphabet->intern("b")};
  for (int iter = 0; iter < 20; ++iter) {
    Fsp f = random_cyclic_fsp(rng, alphabet, pool, 7, 5, "C");
    Fsp q = quotient_by_bisimulation(f);
    EXPECT_LE(q.num_states(), f.num_states());
    EXPECT_TRUE(language_equivalent(f, q)) << "iter " << iter;
    EXPECT_TRUE(possibility_equivalent(f, q)) << "iter " << iter;
    EXPECT_TRUE(failure_equivalent(f, q)) << "iter " << iter;
  }
}

TEST_F(BisimTest, QuotientOnCyclicProcess) {
  // Two-state loop where both states look alike collapses to one state.
  Fsp f = FspBuilder(alphabet, "P").trans("0", "a", "1").trans("1", "a", "0").build();
  Fsp q = quotient_by_bisimulation(f);
  EXPECT_EQ(q.num_states(), 1u);
  EXPECT_TRUE(language_equivalent(f, q));
}

TEST_F(BisimTest, CompressTrivialTauMergesChains) {
  Fsp f = FspBuilder(alphabet, "P")
              .trans("0", "tau", "1")
              .trans("1", "tau", "2")
              .trans("2", "a", "3")
              .build();
  Fsp c = compress_trivial_tau(f);
  EXPECT_EQ(c.num_states(), 2u);
  EXPECT_TRUE(possibility_equivalent(f, c));
}

TEST_F(BisimTest, CompressKeepsBranchingTauStates) {
  // A state with tau AND another option is a real choice: must survive.
  Fsp f = FspBuilder(alphabet, "P")
              .trans("0", "tau", "1")
              .trans("0", "a", "2")
              .trans("1", "b", "3")
              .build();
  Fsp c = compress_trivial_tau(f);
  EXPECT_EQ(c.num_states(), f.num_states());
  EXPECT_TRUE(possibility_equivalent(f, c));
}

TEST_F(BisimTest, CompressPreservesTauCycles) {
  // A pure tau cycle encodes divergence; compression must not erase it.
  Fsp f = FspBuilder(alphabet, "P")
              .trans("0", "a", "1")
              .trans("1", "tau", "2")
              .trans("2", "tau", "1")
              .build();
  Fsp c = compress_trivial_tau(f);
  bool has_tau_cycle = false;
  for (StateId s = 0; s < c.num_states(); ++s) {
    for (const auto& t : c.out(s)) {
      if (t.action == kTau) {
        // any tau edge inside a cycle counts; cheap check: tau-reach back
        for (StateId r : c.tau_closure(t.target)) {
          if (r == s) has_tau_cycle = true;
        }
      }
    }
  }
  EXPECT_TRUE(has_tau_cycle);
}

TEST_F(BisimTest, SplitterQueueMatchesMooreReferenceExactly) {
  // The Paige–Tarjan kernel must reproduce the retained Moore loop's
  // partition *including the class numbering* on every kind of process the
  // library generates — cyclic, tree-shaped with tau, and degenerate.
  Rng rng(515);
  std::vector<ActionId> pool{alphabet->intern("a"), alphabet->intern("b"),
                             alphabet->intern("c")};
  for (int iter = 0; iter < 40; ++iter) {
    Fsp f = (iter % 2 == 0)
                ? random_cyclic_fsp(rng, alphabet, pool, 4 + rng.below(8), 6, "C")
                : [&] {
                    TreeFspOptions opt;
                    opt.num_states = 4 + rng.below(10);
                    opt.tau_probability = 0.3;
                    return random_tree_fsp(rng, alphabet, pool, opt, "T");
                  }();
    EXPECT_EQ(bisimulation_classes(f), bisimulation_classes_reference(f)) << "iter " << iter;
  }
}

TEST_F(BisimTest, SplitterQueueMatchesMooreOnSingleState) {
  Fsp f(alphabet, "One");
  f.add_state();
  EXPECT_EQ(bisimulation_classes(f), bisimulation_classes_reference(f));
  EXPECT_EQ(bisimulation_classes(f), std::vector<std::size_t>{0});
}

TEST_F(BisimTest, CompressSoundOnRandomProcesses) {
  Rng rng(707);
  std::vector<ActionId> pool{alphabet->intern("a"), alphabet->intern("b")};
  for (int iter = 0; iter < 20; ++iter) {
    TreeFspOptions opt;
    opt.num_states = 10;
    opt.tau_probability = 0.4;
    Fsp f = random_tree_fsp(rng, alphabet, pool, opt, "T");
    Fsp c = compress_trivial_tau(f);
    EXPECT_LE(c.num_states(), f.num_states());
    EXPECT_TRUE(possibility_equivalent(f, c)) << "iter " << iter;
  }
}

}  // namespace
}  // namespace ccfsp
