#include "util/io.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <string>

#include "util/failpoint.hpp"

namespace ccfsp::ioutil {
namespace {

std::string temp_path(const char* tag) {
  return "/tmp/ccfsp_io_test_" + std::to_string(::getpid()) + "_" + tag;
}

TEST(Crc32c, KnownVectors) {
  // The RFC 3720 check value for the Castagnoli polynomial.
  EXPECT_EQ(crc32c("123456789", 9), 0xE3069283u);
  EXPECT_EQ(crc32c("", 0), 0u);
  // 32 zero bytes, another published vector.
  const std::string zeros(32, '\0');
  EXPECT_EQ(crc32c(zeros.data(), zeros.size()), 0x8A9136AAu);
}

TEST(Crc32c, SeedChainsAcrossSplits) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  const std::uint32_t whole = crc32c(data.data(), data.size());
  for (std::size_t cut : {std::size_t{0}, std::size_t{1}, std::size_t{7}, data.size()}) {
    const std::uint32_t first = crc32c(data.data(), cut);
    const std::uint32_t chained = crc32c(data.data() + cut, data.size() - cut, first);
    EXPECT_EQ(chained, whole) << "cut at " << cut;
  }
}

TEST(Crc32c, DetectsSingleBitFlip) {
  std::string data(257, 'x');
  const std::uint32_t clean = crc32c(data.data(), data.size());
  data[100] ^= 0x01;
  EXPECT_NE(crc32c(data.data(), data.size()), clean);
}

TEST(AtomicWrite, RoundTripsAndOverwrites) {
  const std::string path = temp_path("roundtrip");
  const std::string payload = "hello snapshot";
  std::string error;
  ASSERT_TRUE(atomic_write_file(path, payload.data(), payload.size(), &error)) << error;
  std::string back;
  ASSERT_TRUE(read_file(path, &back, &error)) << error;
  EXPECT_EQ(back, payload);

  const std::string second(100000, 'y');
  ASSERT_TRUE(atomic_write_file(path, second.data(), second.size(), &error)) << error;
  ASSERT_TRUE(read_file(path, &back, &error)) << error;
  EXPECT_EQ(back, second);
  ::unlink(path.c_str());
}

TEST(AtomicWrite, MissingDirectoryFailsWithError) {
  std::string error;
  EXPECT_FALSE(atomic_write_file("/nonexistent_dir_ccfsp/file", "x", 1, &error));
  EXPECT_FALSE(error.empty());
}

TEST(ReadFile, MissingFileFailsWithError) {
  std::string out, error;
  EXPECT_FALSE(read_file(temp_path("never_written"), &out, &error));
  EXPECT_FALSE(error.empty());
}

/// Each injected writer fault must leave the destination exactly as it was
/// (old contents or absent) and leave no temp litter behind.
class AtomicWriteFaults : public ::testing::Test {
 protected:
  void TearDown() override { failpoint::disarm_all(); }

  static void arm_throw(const char* site) {
    failpoint::Spec s;
    s.action = failpoint::Action::kThrowBadAlloc;
    s.trigger = failpoint::Trigger::kOnHit;
    s.n = 1;
    failpoint::arm(site, s);
  }
};

TEST_F(AtomicWriteFaults, TornWriteLeavesDestinationUntouched) {
  const std::string path = temp_path("torn");
  const std::string old_payload = "previous committed contents";
  std::string error;
  ASSERT_TRUE(atomic_write_file(path, old_payload.data(), old_payload.size(), &error));

  arm_throw("snapshot.write_short");
  const std::string next(4096, 'z');
  EXPECT_FALSE(atomic_write_file(path, next.data(), next.size(), &error));
  EXPECT_NE(error.find("injected"), std::string::npos) << error;

  std::string back;
  ASSERT_TRUE(read_file(path, &back, &error));
  EXPECT_EQ(back, old_payload);
  ::unlink(path.c_str());
}

TEST_F(AtomicWriteFaults, FsyncAndRenameFaultsFailCleanly) {
  for (const char* site : {"snapshot.fsync", "snapshot.rename"}) {
    const std::string path = temp_path(site);
    arm_throw(site);
    std::string error;
    EXPECT_FALSE(atomic_write_file(path, "abc", 3, &error)) << site;
    std::string back;
    EXPECT_FALSE(read_file(path, &back, &error)) << site << ": destination must not exist";
    failpoint::disarm_all();
  }
}

TEST_F(AtomicWriteFaults, CorruptFaultCommitsFlippedBit) {
  // snapshot.corrupt models storage that commits the WRONG bytes: the write
  // succeeds, one mid-payload bit differs. Reader-side CRCs own detection.
  const std::string path = temp_path("corrupt");
  arm_throw("snapshot.corrupt");
  const std::string payload(512, 'q');
  std::string error;
  ASSERT_TRUE(atomic_write_file(path, payload.data(), payload.size(), &error)) << error;
  std::string back;
  ASSERT_TRUE(read_file(path, &back, &error));
  ASSERT_EQ(back.size(), payload.size());
  EXPECT_NE(back, payload);
  EXPECT_EQ(back[payload.size() / 2] ^ payload[payload.size() / 2], 0x01);
  ::unlink(path.c_str());
}

TEST(RetryWrappers, FullReadWriteOverPipe) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  const std::string msg = "wrapped";
  EXPECT_TRUE(write_full(fds[1], msg.data(), msg.size()));
  std::string buf(msg.size(), '\0');
  EXPECT_TRUE(read_full(fds[0], buf.data(), buf.size()));
  EXPECT_EQ(buf, msg);
  ::close(fds[1]);
  // Writer closed: a full-length read can no longer be satisfied.
  EXPECT_FALSE(read_full(fds[0], buf.data(), buf.size()));
  ::close(fds[0]);
}

}  // namespace
}  // namespace ccfsp::ioutil
