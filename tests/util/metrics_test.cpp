// The metrics subsystem's own contract: the disarmed fast path records
// nothing, enable/disable nest, counters merge across threads with
// per-kind rules (sum vs max), thread exit retires a shard without losing
// its counts, spans nest into a tree keyed by (parent, name), and reset
// survives an open span (lost sample, no crash).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "util/metrics.hpp"
#include "util/trace.hpp"

namespace ccfsp {
namespace {

using metrics::Counter;
using metrics::ScopedEnable;
using metrics::Snapshot;

TEST(Metrics, DisarmedAddRecordsNothing) {
  ASSERT_FALSE(metrics::enabled());
  metrics::add(Counter::kGlobalStates, 100);
  metrics::record_max(Counter::kGlobalFrontierPeak, 100);
  {
    metrics::ScopedSpan span("never");
  }
  ScopedEnable on;  // resets, so anything recorded above would have been lost anyway
  const Snapshot snap = metrics::snapshot();
  EXPECT_EQ(snap.value(Counter::kGlobalStates), 0u);
  EXPECT_TRUE(snap.spans.children.empty());
}

TEST(Metrics, AddAccumulatesAndSnapshotReads) {
  ScopedEnable on;
  metrics::add(Counter::kGlobalStates);
  metrics::add(Counter::kGlobalStates, 9);
  metrics::add(Counter::kGlobalEdges, 3);
  const Snapshot snap = metrics::snapshot();
  EXPECT_EQ(snap.value(Counter::kGlobalStates), 10u);
  EXPECT_EQ(snap.value(Counter::kGlobalEdges), 3u);
  EXPECT_EQ(snap.value(Counter::kRefinePops), 0u);
}

TEST(Metrics, RecordMaxKeepsTheLargest) {
  ScopedEnable on;
  metrics::record_max(Counter::kGlobalFrontierPeak, 5);
  metrics::record_max(Counter::kGlobalFrontierPeak, 17);
  metrics::record_max(Counter::kGlobalFrontierPeak, 9);
  EXPECT_EQ(metrics::snapshot().value(Counter::kGlobalFrontierPeak), 17u);
}

TEST(Metrics, EnableNests) {
  metrics::enable();
  metrics::enable();
  metrics::disable();
  EXPECT_TRUE(metrics::enabled());
  metrics::disable();
  EXPECT_FALSE(metrics::enabled());
}

TEST(Metrics, ResetZeroesEverything) {
  ScopedEnable on;
  metrics::add(Counter::kRefinePops, 7);
  metrics::record_max(Counter::kGlobalFrontierPeak, 7);
  {
    metrics::ScopedSpan span("phase");
  }
  metrics::reset();
  const Snapshot snap = metrics::snapshot();
  EXPECT_EQ(snap.value(Counter::kRefinePops), 0u);
  EXPECT_EQ(snap.value(Counter::kGlobalFrontierPeak), 0u);
  EXPECT_TRUE(snap.spans.children.empty());
}

TEST(Metrics, ThreadsMergeByKind) {
  ScopedEnable on;
  std::vector<std::thread> pool;
  for (int t = 0; t < 4; ++t) {
    pool.emplace_back([t] {
      metrics::add(Counter::kGlobalEdges, 10);
      metrics::record_max(Counter::kGlobalFrontierPeak, static_cast<std::uint64_t>(t + 1));
    });
  }
  for (auto& t : pool) t.join();
  // The workers have exited: their shards retired into the registry totals.
  const Snapshot snap = metrics::snapshot();
  EXPECT_EQ(snap.value(Counter::kGlobalEdges), 40u);  // sum-kind: added
  EXPECT_EQ(snap.value(Counter::kGlobalFrontierPeak), 4u);  // max-kind: max
}

TEST(Metrics, LiveThreadCountsAreVisibleBeforeExit) {
  ScopedEnable on;
  std::atomic<bool> counted{false}, release{false};
  std::thread worker([&] {
    metrics::add(Counter::kGlobalStates, 21);
    counted.store(true);
    while (!release.load()) std::this_thread::yield();
  });
  while (!counted.load()) std::this_thread::yield();
  EXPECT_EQ(metrics::snapshot().value(Counter::kGlobalStates), 21u);
  release.store(true);
  worker.join();
}

TEST(Metrics, SpansNestByPath) {
  ScopedEnable on;
  {
    metrics::ScopedSpan outer("outer");
    {
      metrics::ScopedSpan inner("inner");
    }
    {
      metrics::ScopedSpan inner("inner");
    }
  }
  {
    metrics::ScopedSpan outer("outer");
  }
  const Snapshot snap = metrics::snapshot();
  ASSERT_EQ(snap.spans.children.size(), 1u);
  const metrics::SpanNode& outer = snap.spans.children[0];
  EXPECT_EQ(outer.name, "outer");
  EXPECT_EQ(outer.count, 2u);
  ASSERT_EQ(outer.children.size(), 1u);
  EXPECT_EQ(outer.children[0].name, "inner");
  EXPECT_EQ(outer.children[0].count, 2u);
}

TEST(Metrics, ResetUnderAnOpenSpanLosesOnlyTheSample) {
  ScopedEnable on;
  {
    metrics::ScopedSpan outer("outer");
    metrics::reset();  // contract violation by design: must not crash
    {
      metrics::ScopedSpan fresh("fresh");
    }
  }
  // The pre-reset "outer" tree went to the graveyard; "fresh" opened after
  // the reset re-rooted the thread, so it is a top-level span now.
  const Snapshot snap = metrics::snapshot();
  ASSERT_EQ(snap.spans.children.size(), 1u);
  EXPECT_EQ(snap.spans.children[0].name, "fresh");
}

TEST(Metrics, ScopedCollectFillsTheSinkAndDisables) {
  metrics::MetricsSink sink;
  {
    metrics::ScopedCollect collect(&sink);
    EXPECT_TRUE(metrics::enabled());
    metrics::add(Counter::kLadderAttempts, 2);
  }
  EXPECT_FALSE(metrics::enabled());
  EXPECT_EQ(sink.result.value(Counter::kLadderAttempts), 2u);
}

TEST(Metrics, NullSinkScopedCollectIsANoop) {
  metrics::ScopedCollect collect(nullptr);
  EXPECT_FALSE(metrics::enabled());
}

TEST(Metrics, OutermostCollectResetsNestedDoesNot) {
  metrics::MetricsSink outer_sink, inner_sink;
  {
    metrics::ScopedCollect outer(&outer_sink);
    metrics::add(Counter::kLadderAttempts);
    {
      metrics::ScopedCollect inner(&inner_sink);
      metrics::add(Counter::kLadderAttempts);
    }
  }
  // The nested collector must not have wiped the outer run's counts.
  EXPECT_EQ(inner_sink.result.value(Counter::kLadderAttempts), 2u);
  EXPECT_EQ(outer_sink.result.value(Counter::kLadderAttempts), 2u);
}

TEST(Metrics, CatalogueNamesAreDottedAndUnique) {
  std::vector<std::string> names;
  for (std::size_t i = 0; i < metrics::kNumCounters; ++i) {
    names.emplace_back(metrics::name(static_cast<Counter>(i)));
  }
  for (const std::string& n : names) {
    EXPECT_NE(n.find('.'), std::string::npos) << n;
    for (char c : n) {
      EXPECT_TRUE((c >= 'a' && c <= 'z') || c == '.' || c == '_') << n;
    }
  }
  std::sort(names.begin(), names.end());
  EXPECT_EQ(std::adjacent_find(names.begin(), names.end()), names.end());
}

TEST(Metrics, ExecutionShapeCountersAreCatalogued) {
  for (Counter c : metrics::execution_shape_counters()) {
    EXPECT_LT(static_cast<std::size_t>(c), metrics::kNumCounters);
  }
  EXPECT_FALSE(metrics::execution_shape_counters().empty());
}

TEST(Trace, CountersJsonListsEveryCounterInOrder) {
  ScopedEnable on;
  metrics::add(Counter::kGlobalStates, 5);
  const std::string json = metrics::counters_json(metrics::snapshot());
  EXPECT_NE(json.find("\"global.states\": 5"), std::string::npos);
  // Zeros are included: the document shape never depends on the run.
  EXPECT_NE(json.find("\"ladder.skips\": 0"), std::string::npos);
  for (std::size_t i = 0; i < metrics::kNumCounters; ++i) {
    EXPECT_NE(json.find(std::string("\"") + metrics::name(static_cast<Counter>(i)) + "\""),
              std::string::npos);
  }
}

TEST(Trace, SpanTreeJsonAndRenderAgreeOnStructure) {
  ScopedEnable on;
  {
    metrics::ScopedSpan outer("build");
    metrics::ScopedSpan inner("refine");
  }
  const Snapshot snap = metrics::snapshot();
  const std::string json = metrics::span_tree_json(snap);
  EXPECT_NE(json.find("\"name\": \"build\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"refine\""), std::string::npos);
  const std::string tree = metrics::render_span_tree(snap);
  EXPECT_NE(tree.find("build"), std::string::npos);
  EXPECT_NE(tree.find("  refine"), std::string::npos);  // indented child
}

TEST(Trace, JsonEscapeHandlesQuotesAndControls) {
  EXPECT_EQ(metrics::json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  EXPECT_EQ(metrics::json_escape(std::string(1, '\x01')), "\\u0001");
}

}  // namespace
}  // namespace ccfsp
