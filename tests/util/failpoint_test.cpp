// The failpoint subsystem's own contract: deterministic triggers, the
// config grammar, thread-safe arming, stall release, and the strong
// exception-safety guarantee of the flat interners under injected growth
// failures.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <new>
#include <thread>
#include <vector>

#include "util/budget.hpp"
#include "util/failpoint.hpp"
#include "util/flat_interner.hpp"
#include "util/outcome.hpp"

namespace ccfsp {
namespace {

using failpoint::Action;
using failpoint::ScopedDisarm;
using failpoint::Spec;
using failpoint::Trigger;

TEST(Failpoint, DisarmedHitIsANoop) {
  failpoint::disarm_all();
  for (int i = 0; i < 1000; ++i) failpoint::hit("nonexistent.site");
  EXPECT_TRUE(failpoint::armed_sites().empty());
}

TEST(Failpoint, OnHitFiresExactlyOnTheNthHit) {
  ScopedDisarm guard;
  Spec s;
  s.action = Action::kThrowBadAlloc;
  s.trigger = Trigger::kOnHit;
  s.n = 3;
  failpoint::arm("t.site", s);
  failpoint::hit("t.site");
  failpoint::hit("t.site");
  EXPECT_THROW(failpoint::hit("t.site"), std::bad_alloc);
  // Only the 3rd hit fires; the 4th and later pass through.
  failpoint::hit("t.site");
  failpoint::hit("t.site");
  EXPECT_EQ(failpoint::hits("t.site"), 5u);
}

TEST(Failpoint, EveryKFiresOnMultiples) {
  ScopedDisarm guard;
  Spec s;
  s.action = Action::kThrowBudget;
  s.dimension = failpoint::BudgetKind::kBytes;
  s.trigger = Trigger::kEveryK;
  s.n = 2;
  failpoint::arm("t.every", s);
  std::vector<std::uint64_t> fired;
  for (std::uint64_t i = 1; i <= 6; ++i) {
    try {
      failpoint::hit("t.every");
    } catch (const BudgetExceeded& e) {
      EXPECT_EQ(e.reason(), BudgetDimension::kBytes);
      fired.push_back(i);
    }
  }
  EXPECT_EQ(fired, (std::vector<std::uint64_t>{2, 4, 6}));
}

TEST(Failpoint, ProbabilityIsSeededAndReproducible) {
  ScopedDisarm guard;
  auto firing_pattern = [](std::uint64_t seed) {
    Spec s;
    s.action = Action::kThrowBadAlloc;
    s.trigger = Trigger::kProbability;
    s.num = 1;
    s.den = 3;
    s.seed = seed;
    failpoint::arm("t.prob", s);
    std::vector<bool> fired;
    for (int i = 0; i < 200; ++i) {
      try {
        failpoint::hit("t.prob");
        fired.push_back(false);
      } catch (const std::bad_alloc&) {
        fired.push_back(true);
      }
    }
    return fired;
  };
  auto a = firing_pattern(42);
  auto b = firing_pattern(42);
  auto c = firing_pattern(7);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);  // overwhelmingly likely for 200 draws at p=1/3
  // The rate should be in the right ballpark.
  std::size_t fires = 0;
  for (bool f : a) fires += f;
  EXPECT_GT(fires, 30u);
  EXPECT_LT(fires, 110u);
}

TEST(Failpoint, ArmResetsTheHitCounter) {
  ScopedDisarm guard;
  Spec s;
  s.action = Action::kThrowBadAlloc;
  s.n = 100;  // never fires in this test
  failpoint::arm("t.reset", s);
  failpoint::hit("t.reset");
  failpoint::hit("t.reset");
  EXPECT_EQ(failpoint::hits("t.reset"), 2u);
  failpoint::arm("t.reset", s);
  EXPECT_EQ(failpoint::hits("t.reset"), 0u);
}

TEST(Failpoint, CallbackSeesSiteAndHitIndex) {
  ScopedDisarm guard;
  std::vector<std::uint64_t> seen;
  Spec s;
  s.action = Action::kCallback;
  s.trigger = Trigger::kEveryK;
  s.n = 1;
  s.callback = [&](const char* site, std::uint64_t index) {
    EXPECT_STREQ(site, "t.cb");
    seen.push_back(index);
  };
  failpoint::arm("t.cb", s);
  failpoint::hit("t.cb");
  failpoint::hit("t.cb");
  EXPECT_EQ(seen, (std::vector<std::uint64_t>{1, 2}));
}

TEST(Failpoint, StallParksUntilReleased) {
  ScopedDisarm guard;
  Spec s;
  s.action = Action::kStall;
  s.delay_ms = 10000;  // hard cap we must never reach
  failpoint::arm("t.stall", s);
  std::atomic<bool> done{false};
  auto t0 = std::chrono::steady_clock::now();
  std::thread worker([&] {
    failpoint::hit("t.stall");
    done.store(true);
  });
  // Give the worker a moment to park, then release it.
  while (failpoint::hits("t.stall") == 0) std::this_thread::yield();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_FALSE(done.load());
  // Release repeatedly: the worker may not have parked yet when the first
  // release lands, and a release only wakes threads already waiting.
  while (!done.load()) {
    failpoint::release_stalls();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  worker.join();
  EXPECT_TRUE(done.load());
  auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                std::chrono::steady_clock::now() - t0)
                .count();
  EXPECT_LT(ms, 5000) << "stall should end on release, not on the cap";
}

TEST(Failpoint, ParseGrammarRoundTrips) {
  ScopedDisarm guard;
  std::string err;
  ASSERT_TRUE(failpoint::parse_and_arm(
      "a.site=bad_alloc@hit:2; b.site=budget:deadline@every:3,"
      "c.site=delay:5@prob:1/4:99 ; d.site=stall:50",
      &err))
      << err;
  auto armed = failpoint::armed_sites();
  EXPECT_EQ(armed, (std::vector<std::string>{"a.site", "b.site", "c.site", "d.site"}));
  // a.site: bad_alloc on exactly the 2nd hit.
  failpoint::hit("a.site");
  EXPECT_THROW(failpoint::hit("a.site"), std::bad_alloc);
  // b.site: deadline-flavoured BudgetExceeded on every 3rd hit.
  failpoint::hit("b.site");
  failpoint::hit("b.site");
  try {
    failpoint::hit("b.site");
    FAIL() << "expected BudgetExceeded";
  } catch (const BudgetExceeded& e) {
    EXPECT_EQ(e.reason(), BudgetDimension::kDeadline);
  }
}

TEST(Failpoint, ParseRejectsMalformedConfigs) {
  ScopedDisarm guard;
  std::string err;
  EXPECT_FALSE(failpoint::parse_and_arm("noequals", &err));
  EXPECT_FALSE(failpoint::parse_and_arm("x=unknown_action", &err));
  EXPECT_FALSE(failpoint::parse_and_arm("x=budget@hit:0", &err));
  EXPECT_FALSE(failpoint::parse_and_arm("x=budget@prob:1/0", &err));
  EXPECT_FALSE(failpoint::parse_and_arm("x=delay:abc", &err));
  EXPECT_FALSE(failpoint::parse_and_arm("x=budget:parsecs", &err));
  EXPECT_FALSE(err.empty());
  // Empty config is fine and arms nothing.
  EXPECT_TRUE(failpoint::parse_and_arm("", &err));
  EXPECT_TRUE(failpoint::parse_and_arm(" ; , ", &err));
}

TEST(Failpoint, CatalogIsSortedAndNonEmpty) {
  const auto& sites = failpoint::catalog();
  ASSERT_FALSE(sites.empty());
  for (std::size_t i = 1; i < sites.size(); ++i) EXPECT_LT(sites[i - 1], sites[i]);
}

// ---- run_guarded: the total-surface promise includes real OOM ----

TEST(Failpoint, RunGuardedMapsBadAllocToBudgetExhaustedWithBytesReason) {
  auto out = run_guarded([]() -> int { throw std::bad_alloc(); });
  ASSERT_EQ(out.status(), OutcomeStatus::kBudgetExhausted);
  EXPECT_EQ(out.budget_reason(), BudgetDimension::kBytes);
  EXPECT_NE(out.message().find("bad_alloc"), std::string::npos);
}

// ---- flat interners: strong guarantee under injected growth failure ----

TEST(Failpoint, TupleArenaSurvivesGrowFailureIntact) {
  ScopedDisarm guard;
  // expected=4 starts at 16 slots; the 1/3-load pre-grow check fires while
  // interning the 6th tuple ((5+1)*3 >= 16), so fill exactly 5 first.
  TupleArena arena(2, /*expected=*/4);
  std::vector<std::pair<std::uint32_t, std::uint32_t>> tuples;
  // Fill up to just below the growth threshold.
  for (std::uint32_t i = 0; i < 5; ++i) {
    std::uint32_t t[2] = {i, i + 100};
    auto [id, fresh] = arena.intern(t);
    ASSERT_TRUE(fresh);
    ASSERT_EQ(id, i);
    tuples.emplace_back(t[0], t[1]);
  }
  Spec s;
  s.action = Action::kThrowBadAlloc;
  s.n = 1;
  failpoint::arm("interner.tuple_grow", s);
  std::uint32_t t8[2] = {77, 177};
  EXPECT_THROW(arena.intern(t8), std::bad_alloc);
  // Strong guarantee: nothing changed.
  ASSERT_EQ(arena.size(), 5u);
  for (std::uint32_t i = 0; i < 5; ++i) {
    EXPECT_EQ(arena[i][0], tuples[i].first);
    EXPECT_EQ(arena[i][1], tuples[i].second);
  }
  // The arena stays usable: the same insert now succeeds (failpoint fired
  // once), existing tuples keep their ids.
  auto [id8, fresh8] = arena.intern(t8);
  EXPECT_TRUE(fresh8);
  EXPECT_EQ(id8, 5u);
  std::uint32_t t0[2] = {0, 100};
  EXPECT_EQ(arena.intern(t0), (std::pair<std::uint32_t, bool>{0, false}));
}

TEST(Failpoint, SpanInternerSurvivesGrowFailureIntact) {
  ScopedDisarm guard;
  SpanInterner ids(/*expected=*/4);  // cap 16: grows when interning the 10th
  std::vector<std::vector<std::uint32_t>> spans;
  for (std::uint32_t i = 0; i < 9; ++i) {
    std::vector<std::uint32_t> span{i, i + 1, i + 2};
    auto [id, fresh] = ids.intern({span.data(), span.size()});
    ASSERT_TRUE(fresh);
    ASSERT_EQ(id, i);
    spans.push_back(std::move(span));
  }
  Spec s;
  s.action = Action::kThrowBadAlloc;
  s.n = 1;
  failpoint::arm("interner.span_grow", s);
  std::vector<std::uint32_t> fresh_span{500, 501};
  EXPECT_THROW(ids.intern({fresh_span.data(), fresh_span.size()}), std::bad_alloc);
  ASSERT_EQ(ids.size(), 9u);
  for (std::uint32_t i = 0; i < 9; ++i) {
    auto got = ids.get(i);
    ASSERT_EQ(got.size(), spans[i].size());
    for (std::size_t k = 0; k < got.size(); ++k) EXPECT_EQ(got[k], spans[i][k]);
  }
  auto [id9, fresh9] = ids.intern({fresh_span.data(), fresh_span.size()});
  EXPECT_TRUE(fresh9);
  EXPECT_EQ(id9, 9u);
}

TEST(Failpoint, ParallelHitsCountAtomically) {
  ScopedDisarm guard;
  Spec s;
  s.action = Action::kThrowBadAlloc;
  s.n = 0xffffffff;  // never fires
  failpoint::arm("t.mt", s);
  constexpr int kThreads = 8, kHits = 2000;
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([] {
      for (int i = 0; i < kHits; ++i) failpoint::hit("t.mt");
    });
  }
  for (auto& t : pool) t.join();
  EXPECT_EQ(failpoint::hits("t.mt"), static_cast<std::uint64_t>(kThreads) * kHits);
}

}  // namespace
}  // namespace ccfsp
