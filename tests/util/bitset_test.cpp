#include "util/bitset.hpp"

#include <gtest/gtest.h>

#include <set>

#include "util/rng.hpp"

namespace ccfsp {
namespace {

TEST(DynamicBitset, StartsEmpty) {
  DynamicBitset b(100);
  EXPECT_EQ(b.size(), 100u);
  EXPECT_TRUE(b.none());
  EXPECT_EQ(b.count(), 0u);
  EXPECT_EQ(b.find_first(), 100u);
}

TEST(DynamicBitset, SetResetTest) {
  DynamicBitset b(70);
  b.set(0);
  b.set(63);
  b.set(64);
  b.set(69);
  EXPECT_TRUE(b.test(0));
  EXPECT_TRUE(b.test(63));
  EXPECT_TRUE(b.test(64));
  EXPECT_TRUE(b.test(69));
  EXPECT_FALSE(b.test(1));
  EXPECT_EQ(b.count(), 4u);
  b.reset(63);
  EXPECT_FALSE(b.test(63));
  EXPECT_EQ(b.count(), 3u);
}

TEST(DynamicBitset, FindFirstNextIteratesExactlySetBits) {
  DynamicBitset b(200);
  std::set<std::size_t> expected{0, 1, 63, 64, 65, 127, 128, 199};
  for (std::size_t i : expected) b.set(i);
  std::set<std::size_t> seen;
  for (std::size_t i = b.find_first(); i < b.size(); i = b.find_next(i)) seen.insert(i);
  EXPECT_EQ(seen, expected);
}

TEST(DynamicBitset, SetAlgebra) {
  DynamicBitset a(80), b(80);
  a.set(1);
  a.set(40);
  a.set(70);
  b.set(40);
  b.set(71);
  DynamicBitset u = a | b;
  EXPECT_EQ(u.count(), 4u);
  DynamicBitset i = a & b;
  EXPECT_EQ(i.count(), 1u);
  EXPECT_TRUE(i.test(40));
  DynamicBitset d = a - b;
  EXPECT_EQ(d.count(), 2u);
  EXPECT_TRUE(d.test(1));
  EXPECT_TRUE(d.test(70));
  EXPECT_FALSE(d.test(40));
}

TEST(DynamicBitset, SubsetAndIntersects) {
  DynamicBitset a(64), b(64);
  a.set(3);
  b.set(3);
  b.set(5);
  EXPECT_TRUE(a.is_subset_of(b));
  EXPECT_FALSE(b.is_subset_of(a));
  EXPECT_TRUE(a.intersects(b));
  DynamicBitset c(64);
  c.set(9);
  EXPECT_FALSE(a.intersects(c));
  EXPECT_TRUE(DynamicBitset(64).is_subset_of(a));  // empty set is a subset
}

TEST(DynamicBitset, EqualityAndOrdering) {
  DynamicBitset a(64), b(64);
  EXPECT_EQ(a, b);
  a.set(5);
  EXPECT_NE(a, b);
  EXPECT_TRUE(b < a);
  b.set(6);
  EXPECT_TRUE(a < b);  // 6 > 5 in the most-significant sense
}

TEST(DynamicBitset, HashDistinguishesSizes) {
  DynamicBitset a(64), b(65);
  EXPECT_NE(a.hash(), b.hash());
}

TEST(DynamicBitset, ToIndicesRoundTrip) {
  Rng rng(42);
  for (int iter = 0; iter < 50; ++iter) {
    std::size_t n = 1 + rng.below(300);
    DynamicBitset b(n);
    std::set<std::size_t> expected;
    for (std::size_t k = 0; k < n / 3; ++k) {
      std::size_t i = rng.below(n);
      b.set(i);
      expected.insert(i);
    }
    auto idx = b.to_indices();
    EXPECT_EQ(std::set<std::size_t>(idx.begin(), idx.end()), expected);
    EXPECT_EQ(b.count(), expected.size());
  }
}

TEST(DynamicBitset, ClearResetsEverything) {
  DynamicBitset b(100);
  b.set(3);
  b.set(99);
  b.clear();
  EXPECT_TRUE(b.none());
}

}  // namespace
}  // namespace ccfsp
