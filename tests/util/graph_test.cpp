#include "util/graph.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "util/rng.hpp"

namespace ccfsp {
namespace {

TEST(Digraph, SccOnTwoCycles) {
  // 0 -> 1 -> 2 -> 0 and 3 -> 4 -> 3, with a bridge 2 -> 3.
  Digraph g(5);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 0);
  g.add_edge(2, 3);
  g.add_edge(3, 4);
  g.add_edge(4, 3);
  auto scc = g.scc();
  EXPECT_EQ(scc.num_components, 2u);
  EXPECT_EQ(scc.component[0], scc.component[1]);
  EXPECT_EQ(scc.component[1], scc.component[2]);
  EXPECT_EQ(scc.component[3], scc.component[4]);
  EXPECT_NE(scc.component[0], scc.component[3]);
  // Reverse topological numbering: the sink component {3,4} is numbered
  // before the source component {0,1,2}.
  EXPECT_LT(scc.component[3], scc.component[0]);
}

TEST(Digraph, SccSingletons) {
  Digraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  auto scc = g.scc();
  EXPECT_EQ(scc.num_components, 3u);
}

TEST(Digraph, HasCycleDetectsSelfLoop) {
  Digraph g(2);
  g.add_edge(0, 1);
  EXPECT_FALSE(g.has_cycle());
  g.add_edge(1, 1);
  EXPECT_TRUE(g.has_cycle());
}

TEST(Digraph, TopologicalOrderOnDag) {
  Digraph g(4);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(1, 3);
  g.add_edge(2, 3);
  auto order = g.topological_order();
  ASSERT_TRUE(order.has_value());
  std::vector<std::size_t> pos(4);
  for (std::size_t i = 0; i < 4; ++i) pos[(*order)[i]] = i;
  EXPECT_LT(pos[0], pos[1]);
  EXPECT_LT(pos[0], pos[2]);
  EXPECT_LT(pos[1], pos[3]);
  EXPECT_LT(pos[2], pos[3]);
}

TEST(Digraph, TopologicalOrderRejectsCycle) {
  Digraph g(2);
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  EXPECT_FALSE(g.topological_order().has_value());
}

TEST(Digraph, Reachability) {
  Digraph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  auto r = g.reachable_from(0);
  EXPECT_TRUE(r[0]);
  EXPECT_TRUE(r[1]);
  EXPECT_FALSE(r[2]);
  EXPECT_FALSE(r[3]);
}

TEST(Digraph, CoReachable) {
  Digraph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(3, 3);
  auto c = g.co_reachable({2});
  EXPECT_TRUE(c[0]);
  EXPECT_TRUE(c[1]);
  EXPECT_TRUE(c[2]);
  EXPECT_FALSE(c[3]);
}

TEST(Digraph, SccRandomizedAgreesWithReachability) {
  // u,v in the same SCC iff u reaches v and v reaches u.
  Rng rng(7);
  for (int iter = 0; iter < 20; ++iter) {
    std::size_t n = 2 + rng.below(12);
    Digraph g(n);
    for (std::size_t e = 0; e < 2 * n; ++e) g.add_edge(rng.below(n), rng.below(n));
    auto scc = g.scc();
    std::vector<std::vector<bool>> reach;
    for (std::size_t v = 0; v < n; ++v) reach.push_back(g.reachable_from(v));
    for (std::size_t u = 0; u < n; ++u) {
      for (std::size_t v = 0; v < n; ++v) {
        bool same = scc.component[u] == scc.component[v];
        EXPECT_EQ(same, reach[u][v] && reach[v][u]) << "u=" << u << " v=" << v;
      }
    }
  }
}

TEST(UndirectedGraph, TreeAndRingShapeTests) {
  UndirectedGraph path(3);
  path.add_edge(0, 1);
  path.add_edge(1, 2);
  EXPECT_TRUE(path.is_tree());
  EXPECT_FALSE(path.is_ring());

  UndirectedGraph ring(3);
  ring.add_edge(0, 1);
  ring.add_edge(1, 2);
  ring.add_edge(2, 0);
  EXPECT_FALSE(ring.is_tree());
  EXPECT_TRUE(ring.is_ring());

  UndirectedGraph disconnected(4);
  disconnected.add_edge(0, 1);
  disconnected.add_edge(2, 3);
  EXPECT_FALSE(disconnected.is_tree());
  EXPECT_FALSE(disconnected.is_connected());
}

TEST(UndirectedGraph, BiconnectedComponentsOfTwoTrianglesSharingAVertex) {
  // Triangles {0,1,2} and {2,3,4} share the articulation vertex 2.
  UndirectedGraph g(5);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 0);
  g.add_edge(2, 3);
  g.add_edge(3, 4);
  g.add_edge(4, 2);
  auto comps = g.biconnected_components();
  ASSERT_EQ(comps.size(), 2u);
  std::multiset<std::size_t> sizes{comps[0].size(), comps[1].size()};
  EXPECT_EQ(sizes, (std::multiset<std::size_t>{3, 3}));
}

TEST(UndirectedGraph, BridgesAreSingletonComponents) {
  UndirectedGraph g(4);  // path: every edge is a bridge
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  auto comps = g.biconnected_components();
  EXPECT_EQ(comps.size(), 3u);
  for (const auto& c : comps) EXPECT_EQ(c.size(), 1u);
}

TEST(UndirectedGraph, BiconnectedComponentsPartitionEdges) {
  Rng rng(99);
  for (int iter = 0; iter < 20; ++iter) {
    std::size_t n = 3 + rng.below(10);
    UndirectedGraph g(n);
    std::set<std::pair<std::size_t, std::size_t>> used;
    for (std::size_t e = 0; e < 2 * n; ++e) {
      std::size_t u = rng.below(n), v = rng.below(n);
      if (u == v) continue;
      auto key = std::minmax(u, v);
      if (!used.insert({key.first, key.second}).second) continue;
      g.add_edge(u, v);
    }
    auto comps = g.biconnected_components();
    std::set<std::size_t> covered;
    std::size_t total = 0;
    for (const auto& c : comps) {
      total += c.size();
      for (std::size_t e : c) covered.insert(e);
    }
    EXPECT_EQ(total, g.num_edges());
    EXPECT_EQ(covered.size(), g.num_edges());
  }
}

}  // namespace
}  // namespace ccfsp
