// The Paige–Tarjan splitter-queue kernel's own contract: the result
// refines the initial partition, is stable under every (block, label)
// splitter, is as coarse as a naive Moore fixed point, numbers classes by
// first occurrence, and fires the "normal_form.refine" failpoint per
// popped splitter. (The end-to-end oracle comparisons — against the Moore
// implementations behind bisimulation_classes and minimize — live in
// tests/equiv and tests/semantics.)
#include "util/refine.hpp"

#include <gtest/gtest.h>

#include <map>
#include <tuple>
#include <vector>

#include "util/budget.hpp"
#include "util/failpoint.hpp"
#include "util/rng.hpp"

namespace ccfsp {
namespace {

struct Graph {
  std::uint32_t n = 0;
  std::vector<std::uint32_t> src, label, dst;
  void edge(std::uint32_t s, std::uint32_t a, std::uint32_t d) {
    src.push_back(s);
    label.push_back(a);
    dst.push_back(d);
  }
};

std::vector<std::uint32_t> refine(const Graph& g, std::vector<std::uint32_t> initial) {
  return refine_partition(g.n, g.src, g.label, g.dst, std::move(initial));
}

/// One Moore round: signature = (class, sorted set of (label, target class)).
/// Iterated to a fixed point this is the textbook coarsest-stable-partition
/// computation the kernel must reproduce exactly, numbering included.
std::vector<std::uint32_t> moore(const Graph& g, std::vector<std::uint32_t> cls) {
  // Dense first-occurrence renumber of the seed, matching the kernel.
  {
    std::map<std::uint32_t, std::uint32_t> dense;
    for (auto& c : cls) {
      auto [it, fresh] = dense.emplace(c, static_cast<std::uint32_t>(dense.size()));
      c = it->second;
    }
  }
  for (;;) {
    using Sig = std::pair<std::uint32_t, std::vector<std::pair<std::uint32_t, std::uint32_t>>>;
    std::vector<Sig> sig(g.n);
    for (std::uint32_t s = 0; s < g.n; ++s) sig[s].first = cls[s];
    for (std::size_t k = 0; k < g.src.size(); ++k) {
      sig[g.src[k]].second.emplace_back(g.label[k], cls[g.dst[k]]);
    }
    std::map<Sig, std::uint32_t> ids;
    std::vector<std::uint32_t> next(g.n);
    for (std::uint32_t s = 0; s < g.n; ++s) {
      auto& v = sig[s].second;
      std::sort(v.begin(), v.end());
      v.erase(std::unique(v.begin(), v.end()), v.end());
      auto [it, fresh] = ids.emplace(sig[s], static_cast<std::uint32_t>(ids.size()));
      next[s] = it->second;
    }
    if (next == cls) return cls;
    cls = std::move(next);
  }
}

TEST(Refine, EmptyAndEdgelessInputs) {
  Graph g;
  EXPECT_TRUE(refine(g, {}).empty());
  g.n = 3;
  EXPECT_EQ(refine(g, {0, 0, 0}), (std::vector<std::uint32_t>{0, 0, 0}));
  // No edges: the initial partition is already stable, only renumbered.
  EXPECT_EQ(refine(g, {7, 2, 7}), (std::vector<std::uint32_t>{0, 1, 0}));
}

TEST(Refine, SplitsOnWhoReachesTheSplitter) {
  Graph g;
  g.n = 3;
  g.edge(0, /*a=*/5, 2);  // only state 0 has an a-edge into {2}
  auto cls = refine(g, {0, 0, 1});
  // {0,1} splits on the a-edge into {2}; first-occurrence numbering.
  EXPECT_EQ(cls, (std::vector<std::uint32_t>{0, 1, 2}));
}

TEST(Refine, ClassesNumberedByFirstOccurrence) {
  Graph g;
  g.n = 3;
  g.edge(2, 1, 0);  // state 2 alone reaches the (single) initial block
  auto cls = refine(g, {0, 0, 0});
  EXPECT_EQ(cls, (std::vector<std::uint32_t>{0, 0, 1}));

  Graph h;
  h.n = 3;
  h.edge(0, 1, 1);  // now the distinguished state comes first
  EXPECT_EQ(refine(h, {0, 0, 0}), (std::vector<std::uint32_t>{0, 1, 1}));
}

TEST(Refine, LabelsSplitIndependently) {
  // 0 and 1 both reach block {3} but with different labels — after the
  // target block is split by who reaches {3}, labels a vs b must separate
  // them too (two rounds of refinement).
  Graph g;
  g.n = 4;
  g.edge(0, /*a=*/1, 2);
  g.edge(1, /*b=*/2, 2);
  g.edge(2, /*c=*/3, 3);
  auto cls = refine(g, {0, 0, 0, 1});
  EXPECT_NE(cls[0], cls[1]);
}

TEST(Refine, RespectsInitialPartitionEvenWhenBehaviorIsEqual) {
  // Identical (empty) behaviour, but seeded apart: must stay apart.
  Graph g;
  g.n = 2;
  auto cls = refine(g, {0, 1});
  EXPECT_NE(cls[0], cls[1]);
}

TEST(Refine, NondeterministicEdgesHandled) {
  // Two a-edges out of one state (Hopcroft's smaller-half shortcut is
  // unsound here; the kernel must detect this and enqueue both halves).
  // 0 reaches both final blocks via a; 1 reaches only one.
  Graph g;
  g.n = 4;
  g.edge(0, 1, 2);
  g.edge(0, 1, 3);
  g.edge(1, 1, 2);
  g.edge(3, 2, 3);  // makes 2 and 3 non-equivalent
  auto pt = refine(g, {0, 0, 0, 0});
  auto mo = moore(g, {0, 0, 0, 0});
  EXPECT_EQ(pt, mo);
  EXPECT_NE(pt[0], pt[1]);
}

TEST(Refine, MatchesMooreFixedPointOnRandomGraphs) {
  Rng rng(41);
  for (int iter = 0; iter < 80; ++iter) {
    Graph g;
    g.n = 2 + static_cast<std::uint32_t>(rng.below(12));
    const std::size_t m = rng.below(3 * g.n);
    const std::uint32_t labels = 1 + static_cast<std::uint32_t>(rng.below(3));
    for (std::size_t k = 0; k < m; ++k) {
      g.edge(static_cast<std::uint32_t>(rng.below(g.n)),
             static_cast<std::uint32_t>(rng.below(labels)),
             static_cast<std::uint32_t>(rng.below(g.n)));
    }
    std::vector<std::uint32_t> initial(g.n);
    const std::uint32_t seed_blocks = 1 + static_cast<std::uint32_t>(rng.below(3));
    for (auto& c : initial) c = static_cast<std::uint32_t>(rng.below(seed_blocks));
    EXPECT_EQ(refine(g, initial), moore(g, initial)) << "iter " << iter;
  }
}

TEST(Refine, FailpointFiresPerPoppedSplitter) {
  failpoint::ScopedDisarm guard;
  failpoint::Spec s;
  s.action = failpoint::Action::kThrowBudget;
  s.trigger = failpoint::Trigger::kOnHit;
  s.n = 1;
  failpoint::arm("normal_form.refine", s);
  Graph g;
  g.n = 2;
  g.edge(0, 1, 1);
  EXPECT_THROW(refine(g, {0, 0}), BudgetExceeded);
}

}  // namespace
}  // namespace ccfsp
