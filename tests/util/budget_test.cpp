#include "util/budget.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "util/outcome.hpp"

namespace ccfsp {
namespace {

TEST(Budget, UnlimitedByDefault) {
  Budget b;
  EXPECT_TRUE(b.is_unlimited());
  for (int i = 0; i < 10000; ++i) b.charge(1, 100);
  EXPECT_EQ(b.states_used(), 10000u);
  EXPECT_EQ(b.bytes_used(), 1000000u);
  EXPECT_EQ(b.probe(), BudgetDimension::kNone);
}

TEST(Budget, StateLimitTripsExactlyPastTheCap) {
  Budget b = Budget::with_states(5);
  for (int i = 0; i < 5; ++i) b.charge(1);
  try {
    b.charge(1, 0, "unit_test");
    FAIL() << "expected BudgetExceeded";
  } catch (const BudgetExceeded& e) {
    EXPECT_EQ(e.reason(), BudgetDimension::kStates);
    EXPECT_STREQ(e.where(), "unit_test");
    EXPECT_EQ(e.states_used(), 6u);
    EXPECT_NE(std::string(e.what()).find("unit_test"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("states"), std::string::npos);
  }
}

TEST(Budget, ByteLimitTrips) {
  Budget b = Budget().limit_bytes(1000);
  b.charge(1, 999);
  EXPECT_THROW(b.charge(1, 2), BudgetExceeded);
}

TEST(Budget, DeadlineTrips) {
  Budget b = Budget::with_deadline(std::chrono::milliseconds(1));
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_EQ(b.probe(), BudgetDimension::kDeadline);
  // tick() polls the clock immediately (unlike charge()'s stride): the very
  // first tick past the deadline must throw.
  EXPECT_THROW(b.tick(), BudgetExceeded);
}

TEST(Budget, CancellationIsSharedAcrossCopies) {
  CancelToken token;
  Budget b = Budget().watch(token);
  Budget copy = b.fork();
  EXPECT_EQ(copy.probe(), BudgetDimension::kNone);
  token.cancel();
  EXPECT_EQ(copy.probe(), BudgetDimension::kCancelled);
  EXPECT_THROW(for (int i = 0; i < 1000; ++i) copy.tick(), BudgetExceeded);
}

TEST(Budget, ForkResetsCountersButKeepsLimits) {
  Budget b = Budget::with_states(10);
  for (int i = 0; i < 8; ++i) b.charge(1);
  Budget f = b.fork();
  EXPECT_EQ(f.states_used(), 0u);
  EXPECT_EQ(f.max_states(), 10u);
  for (int i = 0; i < 10; ++i) f.charge(1);  // full fresh allowance
  EXPECT_THROW(f.charge(1), BudgetExceeded);
  EXPECT_EQ(b.states_used(), 8u);  // original untouched
}

TEST(Budget, BudgetExceededIsARuntimeError) {
  // Legacy code catches std::runtime_error for the old ad-hoc cap throws;
  // the typed error must keep satisfying those handlers.
  Budget b = Budget::with_states(0);
  EXPECT_THROW(b.charge(1), std::runtime_error);
}

TEST(Outcome, RunGuardedClassifiesExceptions) {
  auto decided = run_guarded([] { return 42; });
  ASSERT_TRUE(decided.is_decided());
  EXPECT_EQ(decided.value(), 42);

  auto exhausted = run_guarded([]() -> int {
    throw BudgetExceeded(BudgetDimension::kStates, "here", 7, 800);
  });
  EXPECT_EQ(exhausted.status(), OutcomeStatus::kBudgetExhausted);
  EXPECT_EQ(exhausted.states_explored(), 7u);

  auto unsupported = run_guarded([]() -> int { throw std::logic_error("not a tree"); });
  EXPECT_EQ(unsupported.status(), OutcomeStatus::kUnsupported);
  EXPECT_NE(unsupported.message().find("not a tree"), std::string::npos);

  // invalid_argument derives logic_error but must classify as invalid input.
  auto invalid = run_guarded([]() -> int { throw std::invalid_argument("bad index"); });
  EXPECT_EQ(invalid.status(), OutcomeStatus::kInvalidInput);
}

}  // namespace
}  // namespace ccfsp
