// TupleArena / SpanInterner: dense first-insertion ids, exact dedup, payload
// round-trips, and behavior across hash-table growth — the invariants the
// flat global-machine build and the subset construction lean on. The
// intern_batch suite runs under both ctest legs (native and .simd_scalar),
// pinning the batch API to the scalar loop on every dispatch path.
#include "util/flat_interner.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "util/failpoint.hpp"

namespace ccfsp {
namespace {

/// Deterministic pseudo-random words (splitmix-style) for the batch
/// property suites.
std::uint32_t mix32(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return static_cast<std::uint32_t>(x ^ (x >> 31));
}

/// n keys of `width` words drawn from a small universe so waves carry
/// plenty of duplicates (within and across waves).
std::vector<std::uint32_t> random_keys(std::size_t n, std::size_t width,
                                       std::uint32_t universe, std::uint64_t seed) {
  std::vector<std::uint32_t> keys(n * width);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    keys[i] = mix32(seed + i) % universe;
  }
  return keys;
}

TEST(HashWords, LengthParticipates) {
  // Same words split differently must not be forced to collide: the length
  // term distinguishes prefixes.
  std::uint32_t a[] = {1, 2, 3};
  EXPECT_NE(hash_words(a, 2), hash_words(a, 3));
  EXPECT_NE(hash_words(a, 0), hash_words(a, 1));
}

TEST(TupleArena, DenseIdsInInsertionOrder) {
  TupleArena arena(3);
  std::uint32_t t0[] = {1, 2, 3};
  std::uint32_t t1[] = {3, 2, 1};
  std::uint32_t t2[] = {0, 0, 0};
  EXPECT_EQ(arena.intern(t0), (std::pair<std::uint32_t, bool>{0, true}));
  EXPECT_EQ(arena.intern(t1), (std::pair<std::uint32_t, bool>{1, true}));
  EXPECT_EQ(arena.intern(t2), (std::pair<std::uint32_t, bool>{2, true}));
  // Re-interning returns the original id with fresh == false.
  EXPECT_EQ(arena.intern(t1), (std::pair<std::uint32_t, bool>{1, false}));
  EXPECT_EQ(arena.size(), 3u);
}

TEST(TupleArena, PayloadRoundTrip) {
  TupleArena arena(2);
  for (std::uint32_t i = 0; i < 100; ++i) {
    std::uint32_t t[] = {i, i * 7 + 1};
    EXPECT_EQ(arena.intern(t).first, i);
  }
  for (std::uint32_t i = 0; i < 100; ++i) {
    EXPECT_EQ(arena[i][0], i);
    EXPECT_EQ(arena[i][1], i * 7 + 1);
    auto span = arena.get(i);
    ASSERT_EQ(span.size(), 2u);
    EXPECT_EQ(span[1], i * 7 + 1);
  }
}

TEST(TupleArena, DedupSurvivesGrowth) {
  // Push far past the initial 16 slots so grow() rehashes several times,
  // then check every original tuple still maps to its original id.
  TupleArena arena(4);
  std::vector<std::vector<std::uint32_t>> tuples;
  for (std::uint32_t i = 0; i < 5000; ++i) {
    tuples.push_back({i, i ^ 0x9e37u, i * 31, 7});
    EXPECT_EQ(arena.intern(tuples.back().data()).first, i);
  }
  for (std::uint32_t i = 0; i < 5000; ++i) {
    EXPECT_EQ(arena.intern(tuples[i].data()), (std::pair<std::uint32_t, bool>{i, false}));
  }
  EXPECT_EQ(arena.size(), 5000u);
  EXPECT_GT(arena.bytes(), 5000u * 4 * sizeof(std::uint32_t));
}

TEST(TupleArena, ReleaseDataPreservesAddressing) {
  TupleArena arena(2);
  std::uint32_t a[] = {10, 20};
  std::uint32_t b[] = {30, 40};
  arena.intern(a);
  arena.intern(b);
  std::vector<std::uint32_t> data = arena.release_data();
  ASSERT_EQ(data.size(), 4u);
  EXPECT_EQ(data[0], 10u);
  EXPECT_EQ(data[3], 40u);
  EXPECT_EQ(arena.size(), 0u);  // arena is reusable but empty
  EXPECT_EQ(arena.intern(b), (std::pair<std::uint32_t, bool>{0, true}));
}

// ---- intern_batch: the wave API must be indistinguishable from the scalar
// loop (ids, fresh flags, payloads, hashes, growth and rollback behavior) ----

TEST(TupleArenaBatch, MatchesScalarLoopExactly) {
  for (const std::size_t width : {1u, 3u, 8u, 16u}) {
    const std::size_t n = 2000;
    const auto keys = random_keys(n, width, /*universe=*/17, /*seed=*/width);
    std::vector<std::uint64_t> hashes(n);
    for (std::size_t i = 0; i < n; ++i) {
      hashes[i] = hash_words(keys.data() + i * width, width);
    }

    TupleArena scalar(width);
    std::vector<std::uint32_t> scalar_ids(n);
    std::vector<std::uint8_t> scalar_fresh(n);
    for (std::size_t i = 0; i < n; ++i) {
      const auto [id, fresh] = scalar.intern(keys.data() + i * width, hashes[i]);
      scalar_ids[i] = id;
      scalar_fresh[i] = fresh ? 1 : 0;
    }

    // Feed the same stream through waves of varying size (1 exercises the
    // degenerate wave, 333 spans several growths at once).
    for (const std::size_t wave : {std::size_t{1}, std::size_t{7}, std::size_t{333}}) {
      TupleArena batch(width);
      std::vector<std::uint32_t> ids(n);
      std::vector<std::uint8_t> fresh(n);
      std::size_t total_fresh = 0;
      for (std::size_t at = 0; at < n; at += wave) {
        const std::size_t take = std::min(wave, n - at);
        const auto st = batch.intern_batch(keys.data() + at * width, hashes.data() + at,
                                           take, ids.data() + at, fresh.data() + at);
        total_fresh += st.fresh;
      }
      ASSERT_EQ(ids, scalar_ids) << "width=" << width << " wave=" << wave;
      ASSERT_EQ(fresh, scalar_fresh) << "width=" << width << " wave=" << wave;
      ASSERT_EQ(batch.size(), scalar.size());
      ASSERT_EQ(total_fresh, batch.size());
      for (std::uint32_t id = 0; id < batch.size(); ++id) {
        ASSERT_EQ(batch.get(id).size(), scalar.get(id).size());
        ASSERT_TRUE(std::equal(batch.get(id).begin(), batch.get(id).end(),
                               scalar.get(id).begin()));
        ASSERT_EQ(batch.hash_of(id), scalar.hash_of(id));
      }
    }
  }
}

TEST(TupleArenaBatch, HashlessOverloadMatchesHashWords) {
  // The convenience overload routes through simd::hash_tuples, which must be
  // bit-identical to hash_words on every dispatch path — same ids out.
  const std::size_t width = 3, n = 500;
  const auto keys = random_keys(n, width, /*universe=*/11, /*seed=*/42);
  TupleArena with_hashes(width), without(width);
  std::vector<std::uint32_t> ids_a(n), ids_b(n);
  for (std::size_t i = 0; i < n; ++i) {
    ids_a[i] = with_hashes.intern(keys.data() + i * width).first;
  }
  without.intern_batch(keys.data(), n, ids_b.data());
  EXPECT_EQ(ids_a, ids_b);
  ASSERT_EQ(with_hashes.size(), without.size());
  for (std::uint32_t id = 0; id < without.size(); ++id) {
    EXPECT_EQ(without.hash_of(id), with_hashes.hash_of(id));
  }
}

TEST(TupleArenaBatch, DuplicatesWithinOneWave) {
  TupleArena arena(2);
  // a, b, a, a, b, c in a single wave: ids must dedup in first-seen order.
  const std::uint32_t keys[] = {5, 6, 7, 8, 5, 6, 5, 6, 7, 8, 9, 10};
  std::vector<std::uint32_t> ids(6);
  std::vector<std::uint8_t> fresh(6);
  const auto st = arena.intern_batch(keys, 6, ids.data(), fresh.data());
  EXPECT_EQ(ids, (std::vector<std::uint32_t>{0, 1, 0, 0, 1, 2}));
  EXPECT_EQ(fresh, (std::vector<std::uint8_t>{1, 1, 0, 0, 0, 1}));
  EXPECT_EQ(st.fresh, 3u);
  EXPECT_EQ(arena.size(), 3u);
}

TEST(TupleArenaBatch, StatsAreDeterministic) {
  // Two identical runs see identical conflict counts: conflicts are a pure
  // function of the key stream, not of timing or dispatch path.
  const std::size_t width = 2, n = 4000;
  const auto keys = random_keys(n, width, /*universe=*/4096, /*seed=*/7);
  TupleArena a(width), b(width);
  std::vector<std::uint32_t> ids(n);
  const auto sa = a.intern_batch(keys.data(), n, ids.data());
  const auto sb = b.intern_batch(keys.data(), n, ids.data());
  EXPECT_EQ(sa.fresh, sb.fresh);
  EXPECT_EQ(sa.conflicts, sb.conflicts);
}

TEST(TupleArenaBatch, GrowFailureLeavesPrefixAndArenaUsable) {
  failpoint::ScopedDisarm guard;
  const std::size_t width = 2, n = 64;
  std::vector<std::uint32_t> keys(n * width);
  for (std::uint32_t i = 0; i < n; ++i) {
    keys[i * width] = i;
    keys[i * width + 1] = i + 1000;
  }
  // Scalar oracle for the converged state.
  TupleArena oracle(width, /*expected=*/4);
  for (std::size_t i = 0; i < n; ++i) oracle.intern(keys.data() + i * width);

  // expected=4 starts at 16 slots; the pre-grow check fires while interning
  // key 5 ((5+1)*3 >= 16) — mid-wave. The batch must throw there, leaving
  // keys [0, 5) interned with their scalar ids and the arena intact.
  TupleArena arena(width, /*expected=*/4);
  failpoint::Spec s;
  s.action = failpoint::Action::kThrowBadAlloc;
  s.n = 1;
  failpoint::arm("interner.tuple_grow", s);
  std::vector<std::uint32_t> ids(n);
  EXPECT_THROW(arena.intern_batch(keys.data(), n, ids.data()), std::bad_alloc);
  ASSERT_EQ(arena.size(), 5u);
  for (std::uint32_t i = 0; i < 5; ++i) {
    EXPECT_EQ(arena[i][0], keys[i * width]);
    EXPECT_EQ(arena[i][1], keys[i * width + 1]);
  }
  // Strong guarantee per key: retrying the whole stream converges to the
  // scalar result (prefix keys dedup onto their existing ids).
  std::vector<std::uint8_t> fresh(n);
  const auto st = arena.intern_batch(keys.data(), n, ids.data(), fresh.data());
  EXPECT_EQ(st.fresh, n - 5u);
  ASSERT_EQ(arena.size(), oracle.size());
  for (std::uint32_t id = 0; id < arena.size(); ++id) {
    EXPECT_TRUE(std::equal(arena.get(id).begin(), arena.get(id).end(),
                           oracle.get(id).begin()));
  }
  for (std::uint32_t i = 0; i < n; ++i) EXPECT_EQ(ids[i], i);
}

TEST(SpanInterner, WideSpansDedupThroughKernelCompare) {
  // Spans >= 8 words take the simd::equal_u32 compare path; dedup and
  // mismatch detection must be exact there too (including same-hash-length
  // near misses differing only in the last word).
  SpanInterner si;
  std::vector<std::uint32_t> a(23), b(23);
  for (std::uint32_t i = 0; i < 23; ++i) a[i] = b[i] = i * 3 + 1;
  b[22] ^= 1;  // differs only at the tail
  const auto [ida, fa] = si.intern({a.data(), a.size()});
  const auto [idb, fb] = si.intern({b.data(), b.size()});
  EXPECT_TRUE(fa);
  EXPECT_TRUE(fb);
  EXPECT_NE(ida, idb);
  EXPECT_EQ(si.intern({a.data(), a.size()}), (std::pair<std::uint32_t, bool>{ida, false}));
  EXPECT_EQ(si.intern({b.data(), b.size()}), (std::pair<std::uint32_t, bool>{idb, false}));
}

TEST(SpanInterner, VariableLengthDedup) {
  SpanInterner si;
  std::vector<std::uint32_t> s0{1, 2, 3};
  std::vector<std::uint32_t> s1{1, 2};
  std::vector<std::uint32_t> s2{3};
  EXPECT_EQ(si.intern(s0), (std::pair<std::uint32_t, bool>{0, true}));
  EXPECT_EQ(si.intern(s1), (std::pair<std::uint32_t, bool>{1, true}));
  EXPECT_EQ(si.intern(s2), (std::pair<std::uint32_t, bool>{2, true}));
  EXPECT_EQ(si.intern(s0), (std::pair<std::uint32_t, bool>{0, false}));
  // A prefix of an interned span is a distinct key, and concatenations that
  // flatten to the same words stay distinct by length.
  EXPECT_EQ(si.size(), 3u);
  auto got = si.get(1);
  EXPECT_TRUE(std::equal(got.begin(), got.end(), s1.begin(), s1.end()));
}

TEST(SpanInterner, EmptySpanIsAKey) {
  SpanInterner si;
  std::vector<std::uint32_t> empty;
  auto [id, fresh] = si.intern({empty.data(), 0});
  EXPECT_TRUE(fresh);
  EXPECT_EQ(si.get(id).size(), 0u);
  EXPECT_FALSE(si.intern({empty.data(), 0}).second);
}

TEST(SpanInterner, GrowthKeepsIdsStable) {
  SpanInterner si;
  std::vector<std::vector<std::uint32_t>> keys;
  for (std::uint32_t i = 0; i < 3000; ++i) {
    std::vector<std::uint32_t> k;
    for (std::uint32_t j = 0; j <= i % 5; ++j) k.push_back(i * 5 + j);
    keys.push_back(std::move(k));
    EXPECT_EQ(si.intern({keys.back().data(), keys.back().size()}).first, i);
  }
  for (std::uint32_t i = 0; i < 3000; ++i) {
    EXPECT_EQ(si.intern({keys[i].data(), keys[i].size()}),
              (std::pair<std::uint32_t, bool>{i, false}));
    auto got = si.get(i);
    ASSERT_EQ(got.size(), keys[i].size());
    EXPECT_TRUE(std::equal(got.begin(), got.end(), keys[i].begin()));
  }
}

}  // namespace
}  // namespace ccfsp
