// TupleArena / SpanInterner: dense first-insertion ids, exact dedup, payload
// round-trips, and behavior across hash-table growth — the invariants the
// flat global-machine build and the subset construction lean on.
#include "util/flat_interner.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace ccfsp {
namespace {

TEST(HashWords, LengthParticipates) {
  // Same words split differently must not be forced to collide: the length
  // term distinguishes prefixes.
  std::uint32_t a[] = {1, 2, 3};
  EXPECT_NE(hash_words(a, 2), hash_words(a, 3));
  EXPECT_NE(hash_words(a, 0), hash_words(a, 1));
}

TEST(TupleArena, DenseIdsInInsertionOrder) {
  TupleArena arena(3);
  std::uint32_t t0[] = {1, 2, 3};
  std::uint32_t t1[] = {3, 2, 1};
  std::uint32_t t2[] = {0, 0, 0};
  EXPECT_EQ(arena.intern(t0), (std::pair<std::uint32_t, bool>{0, true}));
  EXPECT_EQ(arena.intern(t1), (std::pair<std::uint32_t, bool>{1, true}));
  EXPECT_EQ(arena.intern(t2), (std::pair<std::uint32_t, bool>{2, true}));
  // Re-interning returns the original id with fresh == false.
  EXPECT_EQ(arena.intern(t1), (std::pair<std::uint32_t, bool>{1, false}));
  EXPECT_EQ(arena.size(), 3u);
}

TEST(TupleArena, PayloadRoundTrip) {
  TupleArena arena(2);
  for (std::uint32_t i = 0; i < 100; ++i) {
    std::uint32_t t[] = {i, i * 7 + 1};
    EXPECT_EQ(arena.intern(t).first, i);
  }
  for (std::uint32_t i = 0; i < 100; ++i) {
    EXPECT_EQ(arena[i][0], i);
    EXPECT_EQ(arena[i][1], i * 7 + 1);
    auto span = arena.get(i);
    ASSERT_EQ(span.size(), 2u);
    EXPECT_EQ(span[1], i * 7 + 1);
  }
}

TEST(TupleArena, DedupSurvivesGrowth) {
  // Push far past the initial 16 slots so grow() rehashes several times,
  // then check every original tuple still maps to its original id.
  TupleArena arena(4);
  std::vector<std::vector<std::uint32_t>> tuples;
  for (std::uint32_t i = 0; i < 5000; ++i) {
    tuples.push_back({i, i ^ 0x9e37u, i * 31, 7});
    EXPECT_EQ(arena.intern(tuples.back().data()).first, i);
  }
  for (std::uint32_t i = 0; i < 5000; ++i) {
    EXPECT_EQ(arena.intern(tuples[i].data()), (std::pair<std::uint32_t, bool>{i, false}));
  }
  EXPECT_EQ(arena.size(), 5000u);
  EXPECT_GT(arena.bytes(), 5000u * 4 * sizeof(std::uint32_t));
}

TEST(TupleArena, ReleaseDataPreservesAddressing) {
  TupleArena arena(2);
  std::uint32_t a[] = {10, 20};
  std::uint32_t b[] = {30, 40};
  arena.intern(a);
  arena.intern(b);
  std::vector<std::uint32_t> data = arena.release_data();
  ASSERT_EQ(data.size(), 4u);
  EXPECT_EQ(data[0], 10u);
  EXPECT_EQ(data[3], 40u);
  EXPECT_EQ(arena.size(), 0u);  // arena is reusable but empty
  EXPECT_EQ(arena.intern(b), (std::pair<std::uint32_t, bool>{0, true}));
}

TEST(SpanInterner, VariableLengthDedup) {
  SpanInterner si;
  std::vector<std::uint32_t> s0{1, 2, 3};
  std::vector<std::uint32_t> s1{1, 2};
  std::vector<std::uint32_t> s2{3};
  EXPECT_EQ(si.intern(s0), (std::pair<std::uint32_t, bool>{0, true}));
  EXPECT_EQ(si.intern(s1), (std::pair<std::uint32_t, bool>{1, true}));
  EXPECT_EQ(si.intern(s2), (std::pair<std::uint32_t, bool>{2, true}));
  EXPECT_EQ(si.intern(s0), (std::pair<std::uint32_t, bool>{0, false}));
  // A prefix of an interned span is a distinct key, and concatenations that
  // flatten to the same words stay distinct by length.
  EXPECT_EQ(si.size(), 3u);
  auto got = si.get(1);
  EXPECT_TRUE(std::equal(got.begin(), got.end(), s1.begin(), s1.end()));
}

TEST(SpanInterner, EmptySpanIsAKey) {
  SpanInterner si;
  std::vector<std::uint32_t> empty;
  auto [id, fresh] = si.intern({empty.data(), 0});
  EXPECT_TRUE(fresh);
  EXPECT_EQ(si.get(id).size(), 0u);
  EXPECT_FALSE(si.intern({empty.data(), 0}).second);
}

TEST(SpanInterner, GrowthKeepsIdsStable) {
  SpanInterner si;
  std::vector<std::vector<std::uint32_t>> keys;
  for (std::uint32_t i = 0; i < 3000; ++i) {
    std::vector<std::uint32_t> k;
    for (std::uint32_t j = 0; j <= i % 5; ++j) k.push_back(i * 5 + j);
    keys.push_back(std::move(k));
    EXPECT_EQ(si.intern({keys.back().data(), keys.back().size()}).first, i);
  }
  for (std::uint32_t i = 0; i < 3000; ++i) {
    EXPECT_EQ(si.intern({keys[i].data(), keys[i].size()}),
              (std::pair<std::uint32_t, bool>{i, false}));
    auto got = si.get(i);
    ASSERT_EQ(got.size(), keys[i].size());
    EXPECT_TRUE(std::equal(got.begin(), got.end(), keys[i].begin()));
  }
}

}  // namespace
}  // namespace ccfsp
