// Property tests for the vectorized word kernels: the AVX2 and scalar
// dispatch paths must be bit-identical on every kernel, every span length —
// the 8-word vector blocks AND the 0..7-word scalar tails — and the
// CCFSP_SIMD resolution rule must degrade quietly. On a host without AVX2,
// detail::kernels(kAvx2) returns the scalar table and the identity checks
// pass trivially (that degradation is itself part of the contract).
#include "util/simd.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace ccfsp {
namespace {

using simd::Path;
using simd::detail::Kernels;
using simd::detail::kernels;

std::vector<std::uint64_t> random_words(Rng& rng, std::size_t n, int density) {
  std::vector<std::uint64_t> out(n);
  for (auto& w : out) {
    w = rng.next();
    // Vary density so any/intersects/subset see both early-exit and
    // full-sweep outcomes.
    for (int d = 0; d < density; ++d) w &= rng.next();
  }
  return out;
}

// Lengths covering every tail residue 0..7 around the 8-word block size,
// plus longer spans that exercise several full 64-byte strides.
const std::size_t kLengths[] = {0,  1,  2,  3,  4,  5,  6,  7,  8,  9,  10, 11,
                                12, 13, 14, 15, 16, 17, 23, 24, 31, 32, 33, 64,
                                65, 71, 100};

TEST(Simd, MutatingKernelsBitIdenticalAcrossPaths) {
  const Kernels& scalar = kernels(Path::kScalar);
  const Kernels& avx2 = kernels(Path::kAvx2);
  Rng rng(0x51D0);
  for (std::size_t n : kLengths) {
    for (int density = 0; density < 3; ++density) {
      const auto src = random_words(rng, n, density);
      const auto base = random_words(rng, n, density);
      auto a = base, b = base;
      scalar.or_into(a.data(), src.data(), n);
      avx2.or_into(b.data(), src.data(), n);
      EXPECT_EQ(a, b) << "or_into n=" << n;

      a = base, b = base;
      scalar.and_into(a.data(), src.data(), n);
      avx2.and_into(b.data(), src.data(), n);
      EXPECT_EQ(a, b) << "and_into n=" << n;

      a = base, b = base;
      scalar.andnot_into(a.data(), src.data(), n);
      avx2.andnot_into(b.data(), src.data(), n);
      EXPECT_EQ(a, b) << "andnot_into n=" << n;
    }
  }
}

TEST(Simd, QueryKernelsBitIdenticalAcrossPaths) {
  const Kernels& scalar = kernels(Path::kScalar);
  const Kernels& avx2 = kernels(Path::kAvx2);
  Rng rng(0xB17F1E1D);
  for (std::size_t n : kLengths) {
    for (int density = 0; density < 4; ++density) {
      const auto a = random_words(rng, n, density);
      auto b = random_words(rng, n, density);
      if (density == 3) {
        // Force genuine subset/empty cases, not just random near-misses.
        b = a;
        for (auto& w : b) w |= rng.next();
      }
      EXPECT_EQ(scalar.popcount(a.data(), n), avx2.popcount(a.data(), n)) << n;
      EXPECT_EQ(scalar.any(a.data(), n), avx2.any(a.data(), n)) << n;
      EXPECT_EQ(scalar.intersects(a.data(), b.data(), n),
                avx2.intersects(a.data(), b.data(), n))
          << n;
      EXPECT_EQ(scalar.is_subset_of(a.data(), b.data(), n),
                avx2.is_subset_of(a.data(), b.data(), n))
          << n;
      EXPECT_EQ(scalar.is_subset_of(b.data(), a.data(), n),
                avx2.is_subset_of(b.data(), a.data(), n))
          << n;
      for (std::size_t from = 0; from <= n; ++from) {
        EXPECT_EQ(scalar.next_nonzero_word(a.data(), n, from),
                  avx2.next_nonzero_word(a.data(), n, from))
            << "n=" << n << " from=" << from;
      }
    }
  }
}

TEST(Simd, ZeroAndSaturatedSpans) {
  const Kernels& scalar = kernels(Path::kScalar);
  const Kernels& avx2 = kernels(Path::kAvx2);
  for (std::size_t n : kLengths) {
    const std::vector<std::uint64_t> zero(n, 0);
    const std::vector<std::uint64_t> full(n, ~std::uint64_t{0});
    for (const Kernels* k : {&scalar, &avx2}) {
      EXPECT_EQ(k->popcount(zero.data(), n), 0u);
      EXPECT_EQ(k->popcount(full.data(), n), n * 64);
      EXPECT_FALSE(k->any(zero.data(), n));
      EXPECT_EQ(k->any(full.data(), n), n > 0);
      EXPECT_TRUE(k->is_subset_of(zero.data(), full.data(), n));
      EXPECT_EQ(k->is_subset_of(full.data(), zero.data(), n), n == 0);
      EXPECT_FALSE(k->intersects(zero.data(), full.data(), n));
      EXPECT_EQ(k->next_nonzero_word(zero.data(), n, 0), n);
      EXPECT_EQ(k->next_nonzero_word(full.data(), n, 0), n > 0 ? 0u : n);
    }
  }
}

TEST(Simd, NextNonzeroWordFindsExactIndex) {
  const Kernels& scalar = kernels(Path::kScalar);
  const Kernels& avx2 = kernels(Path::kAvx2);
  for (std::size_t n : {1u, 7u, 8u, 9u, 40u}) {
    for (std::size_t hot = 0; hot < n; ++hot) {
      std::vector<std::uint64_t> w(n, 0);
      w[hot] = 1;
      for (const Kernels* k : {&scalar, &avx2}) {
        EXPECT_EQ(k->next_nonzero_word(w.data(), n, 0), hot);
        EXPECT_EQ(k->next_nonzero_word(w.data(), n, hot), hot);
        EXPECT_EQ(k->next_nonzero_word(w.data(), n, hot + 1), n);
      }
    }
  }
}

std::vector<std::uint32_t> random_u32(Rng& rng, std::size_t n) {
  std::vector<std::uint32_t> out(n);
  for (auto& w : out) w = static_cast<std::uint32_t>(rng.next());
  return out;
}

TEST(Simd, HashTuplesMatchesHashWordsOnBothPaths) {
  const Kernels& scalar = kernels(Path::kScalar);
  const Kernels& avx2 = kernels(Path::kAvx2);
  Rng rng(0x7A5E);
  // Widths hit the gather path (>=1 word) and counts hit the 4-tuple vector
  // blocks plus 0..3 scalar tails.
  for (std::size_t width : {1u, 2u, 3u, 7u, 8u, 16u, 33u}) {
    for (std::size_t n : {0u, 1u, 2u, 3u, 4u, 5u, 7u, 8u, 9u, 63u}) {
      const auto keys = random_u32(rng, width * n);
      std::vector<std::uint64_t> a(n, 0xDEAD), b(n, 0xBEEF);
      scalar.hash_tuples(keys.data(), width, n, a.data());
      avx2.hash_tuples(keys.data(), width, n, b.data());
      EXPECT_EQ(a, b) << "width=" << width << " n=" << n;
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(a[i], simd::hash_words(keys.data() + i * width, width))
            << "width=" << width << " i=" << i;
      }
    }
  }
}

TEST(Simd, EqualU32BitIdenticalIncludingTailOnlyDifferences) {
  const Kernels& scalar = kernels(Path::kScalar);
  const Kernels& avx2 = kernels(Path::kAvx2);
  Rng rng(0xE0A1);
  for (std::size_t n : {0u, 1u, 3u, 7u, 8u, 9u, 15u, 16u, 17u, 40u}) {
    const auto a = random_u32(rng, n);
    auto b = a;
    EXPECT_EQ(scalar.equal_u32(a.data(), b.data(), n), true) << n;
    EXPECT_EQ(avx2.equal_u32(a.data(), b.data(), n), true) << n;
    // Flip exactly one word at every position: differences inside vector
    // blocks AND differences only the tail loop can see must both register.
    for (std::size_t flip = 0; flip < n; ++flip) {
      b = a;
      b[flip] ^= 1;
      EXPECT_FALSE(scalar.equal_u32(a.data(), b.data(), n)) << n << ":" << flip;
      EXPECT_FALSE(avx2.equal_u32(a.data(), b.data(), n)) << n << ":" << flip;
    }
  }
}

TEST(Simd, PrefixSumMatchesScalarIncludingWraparound) {
  const Kernels& scalar = kernels(Path::kScalar);
  const Kernels& avx2 = kernels(Path::kAvx2);
  Rng rng(0x50F7);
  for (std::size_t n : {0u, 1u, 2u, 7u, 8u, 9u, 16u, 17u, 33u, 100u}) {
    for (int round = 0; round < 3; ++round) {
      auto base = random_u32(rng, n);
      if (round == 2) {
        // Force uint32 wraparound: inclusive sums must agree mod 2^32.
        for (auto& w : base) w |= 0xC0000000u;
      }
      auto a = base, b = base;
      scalar.prefix_sum_u32(a.data(), n);
      avx2.prefix_sum_u32(b.data(), n);
      EXPECT_EQ(a, b) << "n=" << n << " round=" << round;
      std::uint32_t acc = 0;
      for (std::size_t i = 0; i < n; ++i) {
        acc += base[i];
        EXPECT_EQ(a[i], acc) << "n=" << n << " i=" << i;
      }
    }
  }
}

TEST(Simd, PackPairsBitIdenticalAcrossPaths) {
  const Kernels& scalar = kernels(Path::kScalar);
  const Kernels& avx2 = kernels(Path::kAvx2);
  Rng rng(0x9A1B);
  for (std::size_t n : {0u, 1u, 3u, 7u, 8u, 9u, 31u, 64u, 65u}) {
    const auto hi = random_u32(rng, n);
    const auto lo = random_u32(rng, n);
    std::vector<std::uint64_t> a(n), b(n);
    scalar.pack_pairs_u64(hi.data(), lo.data(), n, a.data());
    avx2.pack_pairs_u64(hi.data(), lo.data(), n, b.data());
    EXPECT_EQ(a, b) << n;
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(a[i], (std::uint64_t{hi[i]} << 32) | lo[i]) << n << ":" << i;
    }
  }
}

TEST(Simd, ResolutionRule) {
  using simd::detail::resolve_path;
  // Explicit overrides.
  EXPECT_EQ(resolve_path("scalar", true), Path::kScalar);
  EXPECT_EQ(resolve_path("scalar", false), Path::kScalar);
  EXPECT_EQ(resolve_path("avx2", true), Path::kAvx2);
  // Forcing avx2 without hardware support degrades quietly, never SIGILL.
  EXPECT_EQ(resolve_path("avx2", false), Path::kScalar);
  // Auto (explicit, absent, or unrecognized) follows the hardware.
  EXPECT_EQ(resolve_path("auto", true), Path::kAvx2);
  EXPECT_EQ(resolve_path("auto", false), Path::kScalar);
  EXPECT_EQ(resolve_path(nullptr, true), Path::kAvx2);
  EXPECT_EQ(resolve_path(nullptr, false), Path::kScalar);
  EXPECT_EQ(resolve_path("bogus", true), Path::kAvx2);
  EXPECT_EQ(resolve_path("", false), Path::kScalar);
}

TEST(Simd, ActivePathIsCoherent) {
  const Path p = simd::active_path();
  EXPECT_TRUE(p == Path::kScalar || p == Path::kAvx2);
  if (!simd::detail::avx2_supported()) EXPECT_EQ(p, Path::kScalar);
  EXPECT_STREQ(simd::path_name(Path::kScalar), "scalar");
  EXPECT_STREQ(simd::path_name(Path::kAvx2), "avx2");
}

}  // namespace
}  // namespace ccfsp
