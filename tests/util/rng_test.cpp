#include "util/rng.hpp"

#include <gtest/gtest.h>

namespace ccfsp {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.below(7), 7u);
  }
}

TEST(Rng, BelowOneIsAlwaysZero) {
  Rng rng(5);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, RangeInclusive) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    auto v = rng.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, Uniform01InUnitInterval) {
  Rng rng(5);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, BelowIsRoughlyUniform) {
  Rng rng(17);
  std::size_t buckets[10] = {};
  for (int i = 0; i < 100000; ++i) ++buckets[rng.below(10)];
  for (std::size_t b : buckets) {
    EXPECT_GT(b, 9000u);
    EXPECT_LT(b, 11000u);
  }
}

}  // namespace
}  // namespace ccfsp
