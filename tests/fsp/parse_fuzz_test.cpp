// Parser hardening: on arbitrary byte soup, mutated specifications, and
// truncations, the only thing the parser may do besides succeed is throw
// ParseError — never another exception type, never a crash, and every
// ParseError must carry a sane source position. Deterministic (seeded Rng),
// so a failure reproduces by seed.
#include <gtest/gtest.h>

#include <string>
#include <typeinfo>
#include <vector>

#include "fsp/parse.hpp"
#include "util/rng.hpp"

namespace ccfsp {
namespace {

const char* const kSeedSpecs[] = {
    "process P {\n"
    "  start a;\n"
    "  a -go-> b;\n"
    "  b -tau-> c;\n"
    "  alphabet extra;\n"
    "}\n",
    "process Fork {\n"
    "  start f;\n"
    "  f -take0-> l;\n"
    "  f -take1-> r;\n"
    "  l -put0-> f;\n"
    "  r -put1-> f;\n"
    "}\n",
    "process A { start s; s -x-> t; }\n"
    "process B { start u; u -x-> v; v -y-> u; }\n",
};

/// The contract under test: parsing `text` either succeeds or raises a
/// ParseError with a 1-based position. Anything else fails the test.
void expect_contained(const std::string& text) {
  AlphabetPtr alphabet = std::make_shared<Alphabet>();
  try {
    parse_processes(text, alphabet);
  } catch (const ParseError& e) {
    EXPECT_GE(e.line(), 1u) << "input: " << text;
    EXPECT_GE(e.column(), 1u) << "input: " << text;
    EXPECT_FALSE(std::string(e.what()).empty());
  } catch (const std::exception& e) {
    FAIL() << "non-ParseError " << typeid(e).name() << " escaped: " << e.what()
           << "\ninput: " << text;
  }
  // parse_fsp adds the single-block/trailing-input rule; same containment.
  AlphabetPtr fresh = std::make_shared<Alphabet>();
  try {
    parse_fsp(text, fresh);
  } catch (const ParseError&) {
  } catch (const std::exception& e) {
    FAIL() << "non-ParseError " << typeid(e).name() << " escaped from parse_fsp: " << e.what()
           << "\ninput: " << text;
  }
}

TEST(ParseFuzz, RandomPrintableSoup) {
  Rng rng(0xf00d);
  for (int round = 0; round < 400; ++round) {
    std::string text;
    std::size_t len = rng.below(200);
    for (std::size_t i = 0; i < len; ++i) {
      text += static_cast<char>(' ' + rng.below(95));
    }
    expect_contained(text);
  }
}

TEST(ParseFuzz, RandomFullByteRange) {
  Rng rng(0xbeef);
  for (int round = 0; round < 400; ++round) {
    std::string text;
    std::size_t len = rng.below(120);
    for (std::size_t i = 0; i < len; ++i) {
      text += static_cast<char>(rng.below(256));
    }
    expect_contained(text);
  }
}

TEST(ParseFuzz, GrammarShapedSoup) {
  // Random walks over the token vocabulary: hits deep parser paths that
  // byte soup rejects at the first token.
  const char* vocab[] = {"process", "start", "alphabet", "{", "}", ";",
                         "-go->",   "-tau->", "P",        "a", "b", "-->",
                         "--",      "#x\n",   "\n"};
  Rng rng(0xcafe);
  for (int round = 0; round < 600; ++round) {
    std::string text;
    std::size_t len = rng.below(40);
    for (std::size_t i = 0; i < len; ++i) {
      text += vocab[rng.below(std::size(vocab))];
      text += ' ';
    }
    expect_contained(text);
  }
}

TEST(ParseFuzz, MutatedValidSpecs) {
  Rng rng(0x5eed);
  for (const char* seed : kSeedSpecs) {
    const std::string base = seed;
    for (int round = 0; round < 300; ++round) {
      std::string text = base;
      std::size_t edits = 1 + rng.below(4);
      for (std::size_t e = 0; e < edits && !text.empty(); ++e) {
        std::size_t at = rng.below(text.size());
        switch (rng.below(4)) {
          case 0:  // flip a byte
            text[at] = static_cast<char>(rng.below(256));
            break;
          case 1:  // delete a byte
            text.erase(at, 1);
            break;
          case 2:  // insert a byte
            text.insert(at, 1, static_cast<char>(' ' + rng.below(95)));
            break;
          case 3:  // truncate
            text.resize(at);
            break;
        }
      }
      expect_contained(text);
    }
  }
}

TEST(ParseFuzz, ValidSeedsStillParse) {
  for (const char* seed : kSeedSpecs) {
    AlphabetPtr alphabet = std::make_shared<Alphabet>();
    EXPECT_NO_THROW(parse_processes(seed, alphabet)) << seed;
  }
}

TEST(ParseFuzz, PositionsPointAtTheProblem) {
  AlphabetPtr alphabet = std::make_shared<Alphabet>();
  try {
    parse_fsp("process P {\n  start a;\n  a !-> b;\n}\n", alphabet);
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 3u);
    EXPECT_EQ(e.column(), 5u);  // the '!' after "  a "
    EXPECT_EQ(e.token(), "!");
  }
}

TEST(ParseFuzz, BuilderRejectionsBecomeParseErrors) {
  AlphabetPtr alphabet = std::make_shared<Alphabet>();
  // "tau" is reserved as an action name in the alphabet statement.
  EXPECT_THROW(parse_fsp("process P { start a; a -x-> b; alphabet tau; }", alphabet),
               ParseError);
  // Unreachable state rejected at build(), surfaced at the closing brace.
  AlphabetPtr fresh = std::make_shared<Alphabet>();
  try {
    parse_fsp("process P {\n start a;\n a -x-> b;\n c -y-> c;\n}\n", fresh);
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 5u);
  }
}

}  // namespace
}  // namespace ccfsp
