#include "fsp/builder.hpp"

#include <gtest/gtest.h>

namespace ccfsp {
namespace {

TEST(FspBuilder, FirstMentionedStateIsStart) {
  auto alphabet = std::make_shared<Alphabet>();
  Fsp f = FspBuilder(alphabet, "P").trans("s", "a", "t").build();
  EXPECT_EQ(f.state_label(f.start()), "s");
}

TEST(FspBuilder, ExplicitStartOverrides) {
  auto alphabet = std::make_shared<Alphabet>();
  Fsp f = FspBuilder(alphabet, "P")
              .trans("s", "a", "t")
              .trans("t", "b", "s")
              .start("t")
              .build();
  EXPECT_EQ(f.state_label(f.start()), "t");
}

TEST(FspBuilder, StatesDedupedByName) {
  auto alphabet = std::make_shared<Alphabet>();
  Fsp f = FspBuilder(alphabet, "P")
              .trans("a", "x", "b")
              .trans("a", "y", "c")
              .trans("b", "z", "c")
              .build();
  EXPECT_EQ(f.num_states(), 3u);
  EXPECT_EQ(f.num_transitions(), 3u);
}

TEST(FspBuilder, TauKeywordMakesUnobservableMove) {
  auto alphabet = std::make_shared<Alphabet>();
  Fsp f = FspBuilder(alphabet, "P").trans("s", "tau", "t").build();
  EXPECT_TRUE(f.has_tau_moves());
  EXPECT_TRUE(f.sigma().empty());
  EXPECT_FALSE(alphabet->find("tau").has_value());
}

TEST(FspBuilder, DeclaringTauThrows) {
  auto alphabet = std::make_shared<Alphabet>();
  FspBuilder b(alphabet, "P");
  EXPECT_THROW(b.action("tau"), std::invalid_argument);
}

TEST(FspBuilder, BuildValidates) {
  auto alphabet = std::make_shared<Alphabet>();
  FspBuilder b(alphabet, "P");
  b.trans("s", "a", "t");
  b.state("island");  // unreachable
  EXPECT_THROW(b.build(), std::logic_error);
}

TEST(FspBuilder, SharedAlphabetAcrossProcesses) {
  auto alphabet = std::make_shared<Alphabet>();
  Fsp p = FspBuilder(alphabet, "P").trans("0", "x", "1").build();
  Fsp q = FspBuilder(alphabet, "Q").trans("0", "x", "1").build();
  EXPECT_EQ(p.sigma(), q.sigma());
}

}  // namespace
}  // namespace ccfsp
