#include "fsp/fsp.hpp"

#include <gtest/gtest.h>

#include "fsp/builder.hpp"

namespace ccfsp {
namespace {

class FspTest : public ::testing::Test {
 protected:
  AlphabetPtr alphabet = std::make_shared<Alphabet>();
};

TEST_F(FspTest, ClassificationLinear) {
  Fsp f = FspBuilder(alphabet, "L").trans("0", "a", "1").trans("1", "b", "2").build();
  EXPECT_TRUE(f.is_linear());
  EXPECT_TRUE(f.is_tree());
  EXPECT_TRUE(f.is_acyclic());
}

TEST_F(FspTest, ClassificationTree) {
  Fsp f = FspBuilder(alphabet, "T")
              .trans("r", "a", "x")
              .trans("r", "b", "y")
              .build();
  EXPECT_FALSE(f.is_linear());
  EXPECT_TRUE(f.is_tree());
  EXPECT_TRUE(f.is_acyclic());
}

TEST_F(FspTest, ClassificationDag) {
  // Diamond: two paths rejoin — acyclic but not a tree.
  Fsp f = FspBuilder(alphabet, "D")
              .trans("r", "a", "x")
              .trans("r", "b", "y")
              .trans("x", "c", "z")
              .trans("y", "c", "z")
              .build();
  EXPECT_FALSE(f.is_tree());
  EXPECT_TRUE(f.is_acyclic());
}

TEST_F(FspTest, ClassificationCyclic) {
  Fsp f = FspBuilder(alphabet, "C").trans("0", "a", "1").trans("1", "b", "0").build();
  EXPECT_FALSE(f.is_acyclic());
  EXPECT_FALSE(f.is_tree());
  EXPECT_FALSE(f.has_leaves());
}

TEST_F(FspTest, SigmaCollectsUsedAndDeclared) {
  Fsp f = FspBuilder(alphabet, "S").trans("0", "a", "1").action("zz").build();
  ActionId a = *alphabet->find("a");
  ActionId z = *alphabet->find("zz");
  auto sigma = f.sigma();
  EXPECT_EQ(sigma.size(), 2u);
  EXPECT_TRUE(f.sigma_set().test(a));
  EXPECT_TRUE(f.sigma_set().test(z));
}

TEST_F(FspTest, TauIsNotInSigma) {
  Fsp f = FspBuilder(alphabet, "S").trans("0", "tau", "1").trans("1", "a", "2").build();
  EXPECT_EQ(f.sigma().size(), 1u);
  EXPECT_TRUE(f.has_tau_moves());
}

TEST_F(FspTest, StabilityAndReadySets) {
  Fsp f = FspBuilder(alphabet, "R")
              .trans("0", "tau", "1")
              .trans("0", "a", "2")
              .trans("1", "b", "2")
              .build();
  EXPECT_FALSE(f.is_stable(0));
  EXPECT_TRUE(f.is_stable(1));
  EXPECT_TRUE(f.is_leaf(2));
  ActionId a = *alphabet->find("a");
  ActionId b = *alphabet->find("b");
  // out_actions is not tau-closed; ready_actions is.
  EXPECT_TRUE(f.out_actions(0).test(a));
  EXPECT_FALSE(f.out_actions(0).test(b));
  EXPECT_TRUE(f.ready_actions(0).test(a));
  EXPECT_TRUE(f.ready_actions(0).test(b));
}

TEST_F(FspTest, TauClosureAndArrowSuccessors) {
  Fsp f = FspBuilder(alphabet, "A")
              .trans("0", "tau", "1")
              .trans("1", "a", "2")
              .trans("2", "tau", "3")
              .build();
  auto closure = f.tau_closure(0);
  EXPECT_EQ(closure.size(), 2u);  // {0, 1}
  auto succ = f.arrow_successors(0, *alphabet->find("a"));
  EXPECT_EQ(succ.size(), 2u);  // {2, 3}: trailing tau closed
}

TEST_F(FspTest, ValidateRejectsUnreachableState) {
  Fsp f(alphabet, "bad");
  f.add_state();
  f.add_state();  // never connected
  f.set_start(0);
  EXPECT_THROW(f.validate(), std::logic_error);
}

TEST_F(FspTest, TrimDropsUnreachable) {
  Fsp f(alphabet, "t");
  StateId s0 = f.add_state("s0");
  StateId s1 = f.add_state("s1");
  StateId s2 = f.add_state("dead");
  ActionId a = alphabet->intern("a");
  f.add_transition(s0, a, s1);
  f.add_transition(s2, a, s1);
  f.set_start(s0);
  Fsp t = f.trimmed();
  EXPECT_EQ(t.num_states(), 2u);
  EXPECT_NO_THROW(t.validate());
  EXPECT_EQ(t.state_label(t.start()), "s0");
}

TEST_F(FspTest, DepthOfDag) {
  Fsp f = FspBuilder(alphabet, "d")
              .trans("0", "a", "1")
              .trans("1", "b", "2")
              .trans("0", "c", "2")
              .build();
  EXPECT_EQ(f.depth(), 2u);
}

TEST_F(FspTest, DepthThrowsOnCycle) {
  Fsp f = FspBuilder(alphabet, "c").trans("0", "a", "0").build();
  EXPECT_THROW(f.depth(), std::logic_error);
}

TEST_F(FspTest, LeavesEnumeration) {
  Fsp f = FspBuilder(alphabet, "l")
              .trans("r", "a", "x")
              .trans("r", "b", "y")
              .build();
  EXPECT_EQ(f.leaves().size(), 2u);
}

TEST_F(FspTest, AtomsAreUniquePerState) {
  Fsp f = FspBuilder(alphabet, "a1").trans("0", "a", "1").build();
  EXPECT_NE(f.atoms(0), f.atoms(1));
  EXPECT_EQ(f.atoms(0).size(), 1u);
}

TEST_F(FspTest, DotOutputMentionsActionsAndStates) {
  Fsp f = FspBuilder(alphabet, "viz").trans("s", "ping", "t").build();
  std::string dot = f.to_dot();
  EXPECT_NE(dot.find("ping"), std::string::npos);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
}

}  // namespace
}  // namespace ccfsp
