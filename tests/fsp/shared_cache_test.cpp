// Byte accounting and eviction invariants of the shared (cross-request)
// caches behind ccfspd: the NormalFormMemo LRU and SharedCacheRegistry's
// FspAnalysisCache pool. The invariants held here are the ones the STATS
// counters report: retained bytes never exceed the cap, every eviction is
// counted, hits + misses add up to lookups, and LRU order decides victims.
#include "fsp/cache.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "fsp/builder.hpp"
#include "semantics/normal_form.hpp"
#include "util/failpoint.hpp"

namespace ccfsp {
namespace {

class SharedCacheTest : public ::testing::Test {
 protected:
  AlphabetPtr alphabet = std::make_shared<Alphabet>();

  /// Structurally distinct processes: a chain of length n over distinct
  /// actions (action *pattern* is canonicalized away; the state/edge shape
  /// is what keys the memo).
  Fsp chain(int n, const std::string& name) {
    FspBuilder b(alphabet, name);
    for (int i = 0; i < n; ++i) {
      b.trans(std::to_string(i), "a" + std::to_string(i), std::to_string(i + 1));
    }
    return b.build();
  }

  void store_nf(NormalFormMemo& memo, const Fsp& f) {
    std::shared_ptr<const NfLabelShape> shape;
    Fsp nf = poss_normal_form(f, 1u << 20, nullptr, &shape);
    memo.store(f, nf, shape);
  }
};

TEST_F(SharedCacheTest, MemoBytesNeverExceedCapAndEvictionsAreCounted) {
  // Size the cap from real entry sizes: room for the three largest chains,
  // so storing ten must evict.
  NormalFormMemo probe(64u << 20);
  for (int n = 8; n <= 10; ++n) store_nf(probe, chain(n, "probe" + std::to_string(n)));
  const std::size_t cap = probe.bytes();

  NormalFormMemo memo(cap);
  for (int n = 1; n <= 10; ++n) {
    store_nf(memo, chain(n, "c" + std::to_string(n)));
    EXPECT_LE(memo.bytes(), cap) << "after storing chain " << n;
  }
  EXPECT_GT(memo.evictions(), 0u);
  EXPECT_GT(memo.entries(), 0u);
  // Conservation: every admitted entry is either resident or was evicted.
  // (chain(1) alone might have been refused only if larger than the cap,
  // which three chain(8..10) entries rule out.)
  EXPECT_EQ(memo.entries() + memo.evictions(), 10u);
}

TEST_F(SharedCacheTest, MemoHitsPlusMissesEqualLookupsAcrossChurn) {
  NormalFormMemo probe(64u << 20);
  for (int n = 4; n <= 6; ++n) store_nf(probe, chain(n, "p" + std::to_string(n)));
  NormalFormMemo memo(probe.bytes());

  std::size_t lookups = 0;
  for (int round = 0; round < 3; ++round) {
    for (int n = 1; n <= 6; ++n) {
      Fsp f = chain(n, "q" + std::to_string(n));
      if (!memo.find(f).has_value()) store_nf(memo, f);
      ++lookups;
      // A just-stored (or just-hit) entry is MRU: this lookup must hit even
      // while the scan above churns the cold end of the LRU.
      EXPECT_TRUE(memo.find(f).has_value()) << n;
      ++lookups;
    }
  }
  EXPECT_EQ(memo.hits() + memo.misses(), lookups);
  EXPECT_GE(memo.hits(), lookups / 2);
  EXPECT_GT(memo.evictions(), 0u);
}

TEST_F(SharedCacheTest, MemoEvictsLeastRecentlyUsedFirst) {
  // Cap = exactly three resident chains (5, 6, 7).
  NormalFormMemo probe(64u << 20);
  store_nf(probe, chain(5, "p5"));
  store_nf(probe, chain(6, "p6"));
  store_nf(probe, chain(7, "p7"));
  const std::size_t cap = probe.bytes();

  NormalFormMemo memo(cap);
  store_nf(memo, chain(5, "e5"));
  store_nf(memo, chain(6, "e6"));
  store_nf(memo, chain(7, "e7"));
  ASSERT_EQ(memo.evictions(), 0u);
  // Refresh chain(5): chain(6) is now the coldest entry.
  ASSERT_TRUE(memo.find(chain(5, "r5")).has_value());
  // chain(4) is smaller than chain(6), so evicting the one victim suffices.
  store_nf(memo, chain(4, "e4"));
  EXPECT_GE(memo.evictions(), 1u);
  EXPECT_LE(memo.bytes(), cap);
  EXPECT_TRUE(memo.find(chain(5, "r5b")).has_value()) << "refreshed entry evicted";
  EXPECT_FALSE(memo.find(chain(6, "r6")).has_value()) << "LRU victim survived";
}

TEST_F(SharedCacheTest, MemoEvictionFaultLeavesCacheConsistent) {
  failpoint::ScopedDisarm guard;
  NormalFormMemo probe(64u << 20);
  store_nf(probe, chain(5, "p5"));
  store_nf(probe, chain(6, "p6"));
  const std::size_t cap = probe.bytes();

  NormalFormMemo memo(cap);
  store_nf(memo, chain(5, "e5"));
  store_nf(memo, chain(6, "e6"));
  failpoint::Spec s;
  s.action = failpoint::Action::kThrowBadAlloc;
  s.trigger = failpoint::Trigger::kOnHit;
  s.n = 1;
  failpoint::arm("cache.evict", s);
  // The store admits the entry, then the eviction pass faults. The cache
  // may be left over its cap, but must stay structurally consistent.
  EXPECT_THROW(store_nf(memo, chain(7, "e7")), std::bad_alloc);
  failpoint::disarm_all();
  EXPECT_TRUE(memo.find(chain(7, "r7")).has_value());
  // The next eviction-triggering store resumes shrinking below the cap.
  store_nf(memo, chain(4, "e4"));
  EXPECT_LE(memo.bytes(), cap);
  EXPECT_GT(memo.evictions(), 0u);
}

TEST_F(SharedCacheTest, FspPoolCountsHitsMissesAndRespectsByteCap) {
  SharedCacheRegistry::Config probe_cfg;
  SharedCacheRegistry probe(probe_cfg);
  std::size_t three = 0;
  for (int n = 6; n <= 8; ++n) {
    probe.fsp_cache(chain(n, "p" + std::to_string(n)), nullptr);
  }
  three = probe.fsp_cache_bytes();

  SharedCacheRegistry::Config cfg;
  cfg.fsp_cache_max_bytes = three;
  SharedCacheRegistry reg(cfg);
  std::size_t calls = 0;
  for (int round = 0; round < 2; ++round) {
    for (int n = 1; n <= 8; ++n) {
      auto cache = reg.fsp_cache(chain(n, "f" + std::to_string(n)), nullptr);
      ASSERT_NE(cache, nullptr);
      EXPECT_EQ(cache->fsp().num_states(), static_cast<std::size_t>(n + 1));
      EXPECT_LE(reg.fsp_cache_bytes(), three);
      ++calls;
    }
  }
  EXPECT_EQ(reg.fsp_cache_hits() + reg.fsp_cache_misses(), calls);
  EXPECT_GT(reg.fsp_cache_evictions(), 0u);
}

TEST_F(SharedCacheTest, EvictedPoolEntryStaysAliveThroughItsHandle) {
  // Cap = room for exactly chains 5 and 6 together, so admitting chain 4
  // must evict the colder of the two residents.
  SharedCacheRegistry::Config probe_cfg;
  SharedCacheRegistry probe(probe_cfg);
  probe.fsp_cache(chain(5, "p5"), nullptr);
  probe.fsp_cache(chain(6, "p6"), nullptr);
  SharedCacheRegistry::Config cfg;
  cfg.fsp_cache_max_bytes = probe.fsp_cache_bytes();
  SharedCacheRegistry reg(cfg);

  auto held = reg.fsp_cache(chain(5, "h5"), nullptr);
  reg.fsp_cache(chain(6, "h6"), nullptr);  // held (chain 5) is now LRU
  reg.fsp_cache(chain(4, "h4"), nullptr);  // evicts it
  EXPECT_GT(reg.fsp_cache_evictions(), 0u);
  // The handle keeps the evicted tables (and their Fsp) valid.
  EXPECT_EQ(held->fsp().num_states(), 6u);
  EXPECT_FALSE(held->tau_closure(0).empty());
}

TEST_F(SharedCacheTest, WarmPoolHitChargesLikeAColdBuild) {
  SharedCacheRegistry reg{SharedCacheRegistry::Config{}};
  Fsp f = chain(6, "charge");
  reg.fsp_cache(f, nullptr);  // warm the pool, uncharged

  // A budget too small for the cold build must trip identically on the warm
  // hit: cache temperature is invisible to governed accounting.
  Budget tiny = Budget().limit_bytes(8);
  try {
    reg.fsp_cache(f, &tiny);
    FAIL() << "expected BudgetExceeded on the warm hit";
  } catch (const BudgetExceeded& e) {
    EXPECT_EQ(e.reason(), BudgetDimension::kBytes);
  }
}

}  // namespace
}  // namespace ccfsp
