#include "fsp/generate.hpp"

#include <gtest/gtest.h>

#include "network/generate.hpp"
#include "success/baseline.hpp"
#include "success/linear.hpp"

namespace ccfsp {
namespace {

struct GenCase {
  std::uint64_t seed;
};

class GenerateTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GenerateTest, TreeFspIsTreeAndValid) {
  Rng rng(GetParam());
  auto alphabet = std::make_shared<Alphabet>();
  std::vector<ActionId> pool{alphabet->intern("a"), alphabet->intern("b")};
  TreeFspOptions opt;
  opt.num_states = 12;
  Fsp f = random_tree_fsp(rng, alphabet, pool, opt, "T");
  EXPECT_EQ(f.num_states(), 12u);
  EXPECT_TRUE(f.is_tree());
  EXPECT_NO_THROW(f.validate());
}

TEST_P(GenerateTest, LinearFspIsLinear) {
  Rng rng(GetParam());
  auto alphabet = std::make_shared<Alphabet>();
  std::vector<ActionId> pool{alphabet->intern("a")};
  Fsp f = random_linear_fsp(rng, alphabet, pool, 9, 0.3, "L");
  EXPECT_TRUE(f.is_linear());
  EXPECT_EQ(f.num_states(), 10u);
}

TEST_P(GenerateTest, AcyclicFspIsAcyclic) {
  Rng rng(GetParam());
  auto alphabet = std::make_shared<Alphabet>();
  std::vector<ActionId> pool{alphabet->intern("a"), alphabet->intern("b")};
  TreeFspOptions opt;
  opt.num_states = 10;
  Fsp f = random_acyclic_fsp(rng, alphabet, pool, opt, 6, "D");
  EXPECT_TRUE(f.is_acyclic());
  EXPECT_NO_THROW(f.validate());
}

TEST_P(GenerateTest, CyclicFspHasNoLeavesNoTau) {
  Rng rng(GetParam());
  auto alphabet = std::make_shared<Alphabet>();
  std::vector<ActionId> pool{alphabet->intern("a"), alphabet->intern("b")};
  Fsp f = random_cyclic_fsp(rng, alphabet, pool, 8, 4, "C");
  EXPECT_FALSE(f.has_leaves());
  EXPECT_FALSE(f.has_tau_moves());
  EXPECT_NO_THROW(f.validate());
}

TEST_P(GenerateTest, SameSeedSameProcess) {
  auto alphabet = std::make_shared<Alphabet>();
  std::vector<ActionId> pool{alphabet->intern("a"), alphabet->intern("b")};
  TreeFspOptions opt;
  Rng r1(GetParam()), r2(GetParam());
  Fsp f1 = random_tree_fsp(r1, alphabet, pool, opt, "X");
  Fsp f2 = random_tree_fsp(r2, alphabet, pool, opt, "X");
  ASSERT_EQ(f1.num_states(), f2.num_states());
  for (StateId s = 0; s < f1.num_states(); ++s) {
    EXPECT_EQ(f1.out(s), f2.out(s));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GenerateTest, ::testing::Values(1, 2, 3, 17, 99, 12345));

TEST(Generate, WaveNetworksAreLiveLinearTrees) {
  // Wave networks: every process linear and tau-free, C_N a tree, and —
  // the property the benches rely on — no schedule can deadlock them.
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    Rng rng(seed);
    Network net = wave_tree_network(rng, 3 + rng.below(5), 1 + rng.below(3));
    EXPECT_TRUE(net.is_tree_network());
    EXPECT_TRUE(net.all_linear());
    for (std::size_t p = 0; p < net.size(); ++p) {
      EXPECT_FALSE(net.process(p).has_tau_moves());
      EXPECT_TRUE(linear_network_success(net, p)) << "seed " << seed << " p " << p;
      EXPECT_FALSE(potential_blocking_global(net, p)) << "seed " << seed << " p " << p;
    }
  }
}

TEST(Generate, WaveChainGlobalMachineGrowsWithLength) {
  GlobalMachine small = build_global(wave_chain_network(4, 2));
  GlobalMachine big = build_global(wave_chain_network(8, 4));
  EXPECT_GT(big.num_states(), small.num_states());
}

TEST(Generate, WaveRejectsDegenerateParameters) {
  Rng rng(1);
  EXPECT_THROW(wave_tree_network(rng, 1, 3), std::invalid_argument);
  EXPECT_THROW(wave_chain_network(4, 0), std::invalid_argument);
}

TEST(Generate, EmptyPoolThrows) {
  Rng rng(1);
  auto alphabet = std::make_shared<Alphabet>();
  EXPECT_THROW(random_tree_fsp(rng, alphabet, {}, {}, "T"), std::invalid_argument);
  EXPECT_THROW(random_cyclic_fsp(rng, alphabet, {}, 4, 0, "C"), std::invalid_argument);
}

}  // namespace
}  // namespace ccfsp
