#include "fsp/rename.hpp"

#include <gtest/gtest.h>

#include "algebra/compose.hpp"
#include "equiv/equivalences.hpp"
#include "fsp/builder.hpp"
#include "network/families.hpp"
#include "network/network.hpp"
#include "success/baseline.hpp"

namespace ccfsp {
namespace {

TEST(Rename, RelabelsTransitionsAndSigma) {
  auto alphabet = std::make_shared<Alphabet>();
  Fsp f = FspBuilder(alphabet, "T").trans("0", "a", "1").action("b").build();
  Fsp g = rename_actions(f, {{"a", "x"}, {"b", "y"}}, "T2");
  EXPECT_EQ(g.name(), "T2");
  EXPECT_EQ(g.out(g.start())[0].action, *alphabet->find("x"));
  EXPECT_TRUE(g.sigma_set().test(*alphabet->find("y")));
  EXPECT_FALSE(g.sigma_set().test(*alphabet->find("a")));
}

TEST(Rename, UnmappedActionsKept) {
  auto alphabet = std::make_shared<Alphabet>();
  Fsp f = FspBuilder(alphabet, "T").trans("0", "a", "1").trans("1", "keep", "2").build();
  Fsp g = rename_actions(f, {{"a", "x"}}, "T2");
  EXPECT_TRUE(g.sigma_set().test(*alphabet->find("keep")));
}

TEST(Rename, TauPreserved) {
  auto alphabet = std::make_shared<Alphabet>();
  Fsp f = FspBuilder(alphabet, "T").trans("0", "tau", "1").trans("1", "a", "2").build();
  Fsp g = rename_actions(f, {{"a", "x"}}, "T2");
  EXPECT_TRUE(g.has_tau_moves());
}

TEST(Rename, RejectsGluing) {
  auto alphabet = std::make_shared<Alphabet>();
  Fsp f = FspBuilder(alphabet, "T").trans("0", "a", "1").trans("1", "b", "2").build();
  EXPECT_THROW(rename_actions(f, {{"a", "c"}, {"b", "c"}}, "bad"), std::invalid_argument);
  // Mapping a onto an untouched existing action is gluing too.
  EXPECT_THROW(rename_actions(f, {{"a", "b"}}, "bad"), std::invalid_argument);
}

TEST(Rename, RejectsUnknownSource) {
  auto alphabet = std::make_shared<Alphabet>();
  Fsp f = FspBuilder(alphabet, "T").trans("0", "a", "1").build();
  EXPECT_THROW(rename_actions(f, {{"ghost_src", "x"}}, "bad"), std::invalid_argument);
}

TEST(Rename, SwapIsAllowed) {
  // A permutation of Sigma is injective and legal.
  auto alphabet = std::make_shared<Alphabet>();
  Fsp f = FspBuilder(alphabet, "T").trans("0", "a", "1").trans("1", "b", "2").build();
  Fsp g = rename_actions(f, {{"a", "b"}, {"b", "a"}}, "swapped");
  EXPECT_EQ(g.out(g.start())[0].action, *alphabet->find("b"));
}

TEST(Rename, TemplateInstantiationBuildsPhilosophers) {
  // Stamp out dining_philosophers(2) from one generic philosopher and one
  // generic fork; the result must agree with the hand-built family on the
  // deadlock verdict.
  auto alphabet = std::make_shared<Alphabet>();
  Fsp phil = FspBuilder(alphabet, "PhilT")
                 .trans("think", "takeL", "one")
                 .trans("one", "takeR", "eat")
                 .trans("eat", "putL", "halfdone")
                 .trans("halfdone", "putR", "think")
                 .build();
  Fsp fork = FspBuilder(alphabet, "ForkT")
                 .trans("free", "grabA", "heldA")
                 .trans("heldA", "dropA", "free")
                 .trans("free", "grabB", "heldB")
                 .trans("heldB", "dropB", "free")
                 .build();
  std::vector<Fsp> procs;
  // Philosopher i uses left fork i, right fork (i+1) % 2.
  for (int i = 0; i < 2; ++i) {
    int l = i, r = (i + 1) % 2;
    auto tk = [&](int p, int f) { return "take" + std::to_string(p) + "_" + std::to_string(f); };
    auto pt = [&](int p, int f) { return "put" + std::to_string(p) + "_" + std::to_string(f); };
    procs.push_back(rename_actions(phil,
                                   {{"takeL", tk(i, l)},
                                    {"takeR", tk(i, r)},
                                    {"putL", pt(i, l)},
                                    {"putR", pt(i, r)}},
                                   "Phil" + std::to_string(i)));
  }
  for (int f = 0; f < 2; ++f) {
    int a = f, b = (f + 1) % 2;  // fork f: left of phil f, right of phil b
    auto tk = [&](int p, int ff) {
      return "take" + std::to_string(p) + "_" + std::to_string(ff);
    };
    auto pt = [&](int p, int ff) {
      return "put" + std::to_string(p) + "_" + std::to_string(ff);
    };
    procs.push_back(rename_actions(fork,
                                   {{"grabA", tk(a, f)},
                                    {"dropA", pt(a, f)},
                                    {"grabB", tk(b, f)},
                                    {"dropB", pt(b, f)}},
                                   "Fork" + std::to_string(f)));
  }
  Network net(alphabet, std::move(procs));
  EXPECT_TRUE(potential_blocking_cyclic_global(net, 0));
  EXPECT_TRUE(success_collab_cyclic_global(net, 0));
}

}  // namespace
}  // namespace ccfsp
