// NormalFormMemo: when the query's transitions match the stored process
// exactly, the rebuild must be the *exact* Fsp poss_normal_form would
// produce — states, edge order, labels, declared Sigma. When the match is
// only up to an action renaming, the rebuild must be a correct normal form
// of the query (same size, Sigma, labels from the query's symbols,
// possibility-equivalent), though state numbering may differ. Its
// budget/limit behaviour must be indistinguishable from the
// poss_normal_form call it replaces.
#include "fsp/cache.hpp"

#include <gtest/gtest.h>

#include "equiv/equivalences.hpp"
#include "fsp/builder.hpp"
#include "fsp/generate.hpp"
#include "semantics/normal_form.hpp"
#include "util/failpoint.hpp"

namespace ccfsp {
namespace {

void expect_fsp_identical(const Fsp& a, const Fsp& b, const char* what) {
  ASSERT_EQ(a.num_states(), b.num_states()) << what;
  EXPECT_EQ(a.start(), b.start()) << what;
  EXPECT_EQ(a.sigma(), b.sigma()) << what;
  for (StateId s = 0; s < a.num_states(); ++s) {
    EXPECT_EQ(a.out(s), b.out(s)) << what << " state " << s;
    EXPECT_EQ(a.state_label(s), b.state_label(s)) << what << " state " << s;
  }
}

/// poss_normal_form with the label shape captured, as the pipeline calls it.
std::pair<Fsp, std::shared_ptr<const NfLabelShape>> nf_with_shape(const Fsp& p) {
  std::shared_ptr<const NfLabelShape> shape;
  Fsp nf = poss_normal_form(p, 1u << 20, nullptr, &shape);
  return {std::move(nf), std::move(shape)};
}

class NfMemoTest : public ::testing::Test {
 protected:
  AlphabetPtr alphabet = std::make_shared<Alphabet>();
  std::vector<ActionId> pool{alphabet->intern("a"), alphabet->intern("b"),
                             alphabet->intern("c")};
};

TEST_F(NfMemoTest, MissOnEmptyThenHitAfterStore) {
  Fsp f = FspBuilder(alphabet, "P").trans("0", "a", "1").trans("1", "b", "2").build();
  NormalFormMemo memo;
  EXPECT_FALSE(memo.find(f).has_value());
  EXPECT_EQ(memo.misses(), 1u);

  auto [nf, shape] = nf_with_shape(f);
  memo.store(f, nf, shape);
  EXPECT_EQ(memo.entries(), 1u);
  EXPECT_GT(memo.bytes(), 0u);

  auto rebuilt = memo.find(f);
  ASSERT_TRUE(rebuilt.has_value());
  EXPECT_EQ(memo.hits(), 1u);
  expect_fsp_identical(*rebuilt, nf, "same process");
}

TEST_F(NfMemoTest, HitAcrossActionRenaming) {
  // Same structure over different symbols: one entry serves both. The
  // rebuild is the stored normal form transported through the action
  // bijection — a correct normal form of the *query* (its symbols, its
  // labels, its Sigma), isomorphic to poss_normal_form(g) though the
  // renaming may permute state numbering (see NormalFormMemo's contract).
  Fsp f = FspBuilder(alphabet, "P")
              .trans("0", "a", "1")
              .trans("0", "tau", "2")
              .trans("2", "b", "3")
              .build();
  Fsp g = FspBuilder(alphabet, "Q")
              .trans("0", "c", "1")
              .trans("0", "tau", "2")
              .trans("2", "a", "3")
              .action("ghost")
              .build();
  NormalFormMemo memo;
  auto [nf, shape] = nf_with_shape(f);
  memo.store(f, nf, shape);

  auto rebuilt = memo.find(g);
  ASSERT_TRUE(rebuilt.has_value());
  Fsp direct = poss_normal_form(g);
  EXPECT_EQ(rebuilt->num_states(), direct.num_states());
  EXPECT_EQ(rebuilt->start(), direct.start());
  EXPECT_EQ(rebuilt->sigma(), direct.sigma());
  EXPECT_TRUE(possibility_equivalent(*rebuilt, g));
  // The root label is renaming-independent; child labels use g's symbols.
  EXPECT_EQ(rebuilt->state_label(rebuilt->start()), "n");
  // The ghost symbol is in g's Sigma but not f's: the rebuild re-derives
  // declares from the query, so it must survive.
  EXPECT_TRUE(rebuilt->sigma_set().test(*alphabet->find("ghost")));
}

TEST_F(NfMemoTest, DifferentStructureMisses) {
  Fsp f = FspBuilder(alphabet, "P").trans("0", "a", "1").build();
  Fsp g = FspBuilder(alphabet, "Q").trans("0", "a", "1").trans("1", "b", "2").build();
  NormalFormMemo memo;
  auto [nf, shape] = nf_with_shape(f);
  memo.store(f, nf, shape);
  EXPECT_FALSE(memo.find(g).has_value());
  // Same action, different branching shape.
  Fsp h = FspBuilder(alphabet, "R").trans("0", "a", "1").trans("0", "a", "2").build();
  EXPECT_FALSE(memo.find(h).has_value());
  EXPECT_EQ(memo.misses(), 2u);
}

TEST_F(NfMemoTest, RebuildMatchesOnRandomProcesses) {
  Rng rng(321);
  NormalFormMemo memo;
  std::size_t hits = 0;
  for (int iter = 0; iter < 40; ++iter) {
    TreeFspOptions opt;
    opt.num_states = 3 + rng.below(8);
    opt.tau_probability = 0.3;
    Fsp f = random_tree_fsp(rng, alphabet, pool, opt, "T");
    Fsp direct = poss_normal_form(f);
    if (auto rebuilt = memo.find(f)) {
      // The hit may come from an earlier process that matches f only up to
      // an action renaming: the rebuild is then isomorphic to `direct`,
      // not necessarily state-for-state equal.
      ++hits;
      EXPECT_EQ(rebuilt->num_states(), direct.num_states()) << iter;
      EXPECT_EQ(rebuilt->sigma(), direct.sigma()) << iter;
      EXPECT_TRUE(possibility_equivalent(*rebuilt, f)) << iter;
    } else {
      auto [nf, shape] = nf_with_shape(f);
      expect_fsp_identical(nf, direct, "shape capture changes nothing");
      memo.store(f, nf, shape);
    }
  }
  EXPECT_EQ(memo.hits(), hits);
  EXPECT_EQ(memo.hits() + memo.misses(), 40u);
}

TEST_F(NfMemoTest, LimitParityWithPossNormalForm) {
  // A hit on a stored normal form larger than the caller's limit must trip
  // exactly like poss_normal_form(p, limit) would — not silently succeed.
  Fsp f = FspBuilder(alphabet, "P")
              .trans("0", "a", "1")
              .trans("1", "b", "2")
              .trans("2", "c", "3")
              .build();
  NormalFormMemo memo;
  auto [nf, shape] = nf_with_shape(f);
  memo.store(f, nf, shape);
  try {
    memo.find(f, /*limit=*/1);
    FAIL() << "expected BudgetExceeded";
  } catch (const BudgetExceeded& e) {
    EXPECT_EQ(e.reason(), BudgetDimension::kStates);
    EXPECT_STREQ(e.where(), "poss_normal_form");
  }
}

TEST_F(NfMemoTest, HitChargesBudgetLikeARecomputation) {
  Fsp f = FspBuilder(alphabet, "P").trans("0", "a", "1").trans("1", "b", "2").build();
  Budget tiny = Budget::with_states(1);
  NormalFormMemo memo(/*max_bytes=*/64u << 20, &tiny);
  auto [nf, shape] = nf_with_shape(f);
  memo.store(f, nf, shape);
  EXPECT_THROW(memo.find(f), BudgetExceeded);
}

TEST_F(NfMemoTest, ByteCapStopsAdmission) {
  Fsp f = FspBuilder(alphabet, "P").trans("0", "a", "1").build();
  NormalFormMemo memo(/*max_bytes=*/1);
  auto [nf, shape] = nf_with_shape(f);
  memo.store(f, nf, shape);
  EXPECT_EQ(memo.entries(), 0u);
  EXPECT_FALSE(memo.find(f).has_value());
}

TEST_F(NfMemoTest, DuplicateStoreIsANoop) {
  Fsp f = FspBuilder(alphabet, "P").trans("0", "a", "1").build();
  NormalFormMemo memo;
  auto [nf, shape] = nf_with_shape(f);
  memo.store(f, nf, shape);
  const std::size_t bytes = memo.bytes();
  memo.store(f, nf, shape);
  EXPECT_EQ(memo.entries(), 1u);
  EXPECT_EQ(memo.bytes(), bytes);
}

TEST_F(NfMemoTest, FailpointFiresOnHitAndStore) {
  failpoint::ScopedDisarm guard;
  failpoint::Spec s;
  s.action = failpoint::Action::kThrowBadAlloc;
  s.trigger = failpoint::Trigger::kEveryK;
  s.n = 1;
  failpoint::arm("cache.nf_memo", s);
  Fsp f = FspBuilder(alphabet, "P").trans("0", "a", "1").build();
  NormalFormMemo memo;
  auto [nf, shape] = nf_with_shape(f);
  EXPECT_THROW(memo.store(f, nf, shape), std::bad_alloc);
  failpoint::disarm_all();
  memo.store(f, nf, shape);
  failpoint::arm("cache.nf_memo", s);
  EXPECT_THROW(memo.find(f), std::bad_alloc);
}

}  // namespace
}  // namespace ccfsp
