#include "fsp/cache.hpp"

#include <gtest/gtest.h>

#include "fsp/generate.hpp"

namespace ccfsp {
namespace {

TEST(FspAnalysisCache, AgreesWithOnDemandQueries) {
  Rng rng(314);
  auto alphabet = std::make_shared<Alphabet>();
  std::vector<ActionId> pool{alphabet->intern("a"), alphabet->intern("b"),
                             alphabet->intern("c")};
  for (int iter = 0; iter < 20; ++iter) {
    TreeFspOptions opt;
    opt.num_states = 10;
    opt.tau_probability = 0.35;
    Fsp f = iter % 2 ? random_acyclic_fsp(rng, alphabet, pool, opt, 4, "D")
                     : random_cyclic_fsp(rng, alphabet, pool, 8, 5, "C");
    // Cyclic processes from the generator have no tau; splice some in so
    // closures are non-trivial there too.
    if (iter % 2 == 0 && f.num_states() >= 2) {
      f.add_transition(0, kTau, 1);
    }
    FspAnalysisCache cache(f);
    for (StateId s = 0; s < f.num_states(); ++s) {
      EXPECT_EQ(cache.tau_closure(s), f.tau_closure(s)) << iter << " state " << s;
      EXPECT_EQ(cache.ready_actions(s), f.ready_actions(s)) << iter << " state " << s;
      for (ActionId a : pool) {
        EXPECT_EQ(cache.arrow_successors(s, a), f.arrow_successors(s, a))
            << iter << " state " << s << " action " << a;
      }
    }
  }
}

TEST(FspAnalysisCache, MissingActionGivesEmpty) {
  auto alphabet = std::make_shared<Alphabet>();
  Fsp f(alphabet, "single");
  f.add_state();
  f.set_start(0);
  f.declare_action(alphabet->intern("a"));
  FspAnalysisCache cache(f);
  EXPECT_TRUE(cache.arrow_successors(0, *alphabet->find("a")).empty());
}

}  // namespace
}  // namespace ccfsp
