#include "fsp/parse.hpp"

#include <gtest/gtest.h>

#include "equiv/equivalences.hpp"

namespace ccfsp {
namespace {

TEST(Parse, BasicProcess) {
  auto alphabet = std::make_shared<Alphabet>();
  Fsp f = parse_fsp(R"(
    process P1 {
      start q0;
      q0 -a-> q1;
      q1 -tau-> q2;
      q2 -b-> q0;
    }
  )",
                    alphabet);
  EXPECT_EQ(f.name(), "P1");
  EXPECT_EQ(f.num_states(), 3u);
  EXPECT_EQ(f.num_transitions(), 3u);
  EXPECT_TRUE(f.has_tau_moves());
  EXPECT_EQ(f.sigma().size(), 2u);
}

TEST(Parse, DefaultStartIsFirstMentioned) {
  auto alphabet = std::make_shared<Alphabet>();
  Fsp f = parse_fsp("process P { s -go-> t; }", alphabet);
  EXPECT_EQ(f.state_label(f.start()), "s");
}

TEST(Parse, AlphabetStatementDeclaresUnused) {
  auto alphabet = std::make_shared<Alphabet>();
  Fsp f = parse_fsp("process P { s -a-> t; alphabet b c; }", alphabet);
  EXPECT_EQ(f.sigma().size(), 3u);
}

TEST(Parse, CommentsIgnored) {
  auto alphabet = std::make_shared<Alphabet>();
  Fsp f = parse_fsp("process P { # header\n s -a-> t; # trailing\n }", alphabet);
  EXPECT_EQ(f.num_transitions(), 1u);
}

TEST(Parse, MultipleProcesses) {
  auto alphabet = std::make_shared<Alphabet>();
  auto procs = parse_processes(R"(
    process A { s -x-> t; }
    process B { u -x-> v; }
  )",
                               alphabet);
  ASSERT_EQ(procs.size(), 2u);
  EXPECT_EQ(procs[0].name(), "A");
  EXPECT_EQ(procs[1].name(), "B");
}

TEST(Parse, ErrorsCarryLineNumbers) {
  auto alphabet = std::make_shared<Alphabet>();
  try {
    parse_fsp("process P {\n s -a- t;\n }", alphabet);
    FAIL() << "expected parse error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos) << e.what();
  }
}

TEST(Parse, RejectsTrailingGarbage) {
  auto alphabet = std::make_shared<Alphabet>();
  EXPECT_THROW(parse_fsp("process P { s -a-> t; } junk", alphabet), std::runtime_error);
}

TEST(Parse, RejectsMissingSemicolon) {
  auto alphabet = std::make_shared<Alphabet>();
  EXPECT_THROW(parse_fsp("process P { s -a-> t }", alphabet), std::runtime_error);
}

TEST(Parse, RoundTripThroughToDsl) {
  auto alphabet = std::make_shared<Alphabet>();
  Fsp f = parse_fsp(R"(
    process R {
      start s;
      s -a-> t;
      s -tau-> u;
      u -b-> t;
      alphabet unused;
    }
  )",
                    alphabet);
  Fsp g = parse_fsp(to_dsl(f), alphabet);
  EXPECT_EQ(f.num_states(), g.num_states());
  EXPECT_EQ(f.num_transitions(), g.num_transitions());
  EXPECT_EQ(f.sigma(), g.sigma());
  EXPECT_TRUE(possibility_equivalent(f, g));
}

}  // namespace
}  // namespace ccfsp
