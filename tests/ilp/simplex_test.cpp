#include "ilp/simplex.hpp"

#include <gtest/gtest.h>

namespace ccfsp {
namespace {

LinearConstraint con(std::vector<std::int64_t> coeffs, Relation rel, std::int64_t rhs) {
  LinearConstraint c;
  for (auto v : coeffs) c.coeffs.emplace_back(v);
  c.relation = rel;
  c.rhs = Rational(rhs);
  return c;
}

TEST(Simplex, SimpleTwoVarMaximum) {
  // max x + y s.t. x + 2y <= 4, 3x + y <= 6  ->  optimum at (8/5, 6/5), obj 14/5.
  LinearProgram lp;
  lp.num_vars = 2;
  lp.objective = {Rational(1), Rational(1)};
  lp.constraints.push_back(con({1, 2}, Relation::kLessEqual, 4));
  lp.constraints.push_back(con({3, 1}, Relation::kLessEqual, 6));
  auto r = solve_lp(lp);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_EQ(r.objective, Rational(BigInt(14), BigInt(5)));
  EXPECT_EQ(r.solution[0], Rational(BigInt(8), BigInt(5)));
  EXPECT_EQ(r.solution[1], Rational(BigInt(6), BigInt(5)));
}

TEST(Simplex, DetectsUnbounded) {
  // max x s.t. x - y <= 1 (y free to grow keeps x growing).
  LinearProgram lp;
  lp.num_vars = 2;
  lp.objective = {Rational(1), Rational(0)};
  lp.constraints.push_back(con({1, -1}, Relation::kLessEqual, 1));
  EXPECT_EQ(solve_lp(lp).status, LpStatus::kUnbounded);
}

TEST(Simplex, DetectsInfeasible) {
  // x >= 3 and x <= 1.
  LinearProgram lp;
  lp.num_vars = 1;
  lp.objective = {Rational(1)};
  lp.constraints.push_back(con({1}, Relation::kGreaterEqual, 3));
  lp.constraints.push_back(con({1}, Relation::kLessEqual, 1));
  EXPECT_EQ(solve_lp(lp).status, LpStatus::kInfeasible);
}

TEST(Simplex, EqualityConstraints) {
  // max x + y s.t. x + y = 5, x <= 2  ->  (2, 3), obj 5.
  LinearProgram lp;
  lp.num_vars = 2;
  lp.objective = {Rational(1), Rational(1)};
  lp.constraints.push_back(con({1, 1}, Relation::kEqual, 5));
  lp.constraints.push_back(con({1, 0}, Relation::kLessEqual, 2));
  auto r = solve_lp(lp);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_EQ(r.objective, Rational(5));
}

TEST(Simplex, NegativeRhsNormalization) {
  // -x <= -2  (i.e. x >= 2), max -x  ->  x = 2, obj -2.
  LinearProgram lp;
  lp.num_vars = 1;
  lp.objective = {Rational(-1)};
  lp.constraints.push_back(con({-1}, Relation::kLessEqual, -2));
  auto r = solve_lp(lp);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_EQ(r.objective, Rational(-2));
  EXPECT_EQ(r.solution[0], Rational(2));
}

TEST(Simplex, DegenerateTiesTerminateViaBland) {
  // A classically degenerate LP; Bland's rule must not cycle.
  LinearProgram lp;
  lp.num_vars = 4;
  lp.objective = {Rational(BigInt(3), BigInt(4)), Rational(-150), Rational(BigInt(1), BigInt(50)),
                  Rational(-6)};
  LinearConstraint c1;
  c1.coeffs = {Rational(BigInt(1), BigInt(4)), Rational(-60), Rational(BigInt(-1), BigInt(25)),
               Rational(9)};
  c1.relation = Relation::kLessEqual;
  c1.rhs = Rational(0);
  LinearConstraint c2;
  c2.coeffs = {Rational(BigInt(1), BigInt(2)), Rational(-90), Rational(BigInt(-1), BigInt(50)),
               Rational(3)};
  c2.relation = Relation::kLessEqual;
  c2.rhs = Rational(0);
  LinearConstraint c3;
  c3.coeffs = {Rational(0), Rational(0), Rational(1), Rational(0)};
  c3.relation = Relation::kLessEqual;
  c3.rhs = Rational(1);
  lp.constraints = {c1, c2, c3};
  auto r = solve_lp(lp);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_EQ(r.objective, Rational(BigInt(1), BigInt(20)));
}

TEST(Simplex, RedundantEqualityRows) {
  // x + y = 2 stated twice; still solvable.
  LinearProgram lp;
  lp.num_vars = 2;
  lp.objective = {Rational(1), Rational(0)};
  lp.constraints.push_back(con({1, 1}, Relation::kEqual, 2));
  lp.constraints.push_back(con({1, 1}, Relation::kEqual, 2));
  auto r = solve_lp(lp);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_EQ(r.objective, Rational(2));
}

TEST(Simplex, AritytMismatchThrows) {
  LinearProgram lp;
  lp.num_vars = 2;
  lp.objective = {Rational(1)};  // wrong size
  EXPECT_THROW(solve_lp(lp), std::invalid_argument);
}

TEST(Simplex, ZeroVariableProgram) {
  LinearProgram lp;  // max of nothing subject to nothing: optimal, obj 0
  auto r = solve_lp(lp);
  EXPECT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_EQ(r.objective, Rational(0));
}

}  // namespace
}  // namespace ccfsp
