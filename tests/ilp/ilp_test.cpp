#include "ilp/ilp.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace ccfsp {
namespace {

LinearConstraint con(std::vector<std::int64_t> coeffs, Relation rel, BigInt rhs) {
  LinearConstraint c;
  for (auto v : coeffs) c.coeffs.emplace_back(v);
  c.relation = rel;
  c.rhs = Rational(std::move(rhs));
  return c;
}

TEST(Ilp, KnapsackStyle) {
  // max 5x + 4y s.t. 6x + 4y <= 24, x + 2y <= 6, integral.
  // LP optimum is fractional (3, 1.5); ILP optimum is x=4,y=0 -> 20? check:
  // 6*4=24 <= 24 ok, 4 <= 6 ok, obj 20. x=3,y=1: 22 <= 24, 5 <= 6, obj 19.
  LinearProgram lp;
  lp.num_vars = 2;
  lp.objective = {Rational(5), Rational(4)};
  lp.constraints.push_back(con({6, 4}, Relation::kLessEqual, BigInt(24)));
  lp.constraints.push_back(con({1, 2}, Relation::kLessEqual, BigInt(6)));
  auto r = solve_ilp(lp);
  ASSERT_EQ(r.status, IlpStatus::kOptimal);
  EXPECT_EQ(r.objective, Rational(20));
  EXPECT_EQ(r.solution[0], BigInt(4));
  EXPECT_EQ(r.solution[1], BigInt(0));
}

TEST(Ilp, InfeasibleIntegerButFeasibleLp) {
  // 2x = 1 has the LP solution x = 1/2 but no integer solution.
  LinearProgram lp;
  lp.num_vars = 1;
  lp.objective = {Rational(0)};
  lp.constraints.push_back(con({2}, Relation::kEqual, BigInt(1)));
  EXPECT_EQ(solve_ilp(lp).status, IlpStatus::kInfeasible);
}

TEST(Ilp, UnboundedDetected) {
  LinearProgram lp;
  lp.num_vars = 1;
  lp.objective = {Rational(1)};
  EXPECT_EQ(solve_ilp(lp).status, IlpStatus::kUnbounded);
}

TEST(Ilp, BigIntegerBounds) {
  // max x s.t. x <= 2^100: branch-and-bound must return the exact BigInt.
  LinearProgram lp;
  lp.num_vars = 1;
  lp.objective = {Rational(1)};
  lp.constraints.push_back(con({1}, Relation::kLessEqual, BigInt::pow2(100)));
  auto r = solve_ilp(lp);
  ASSERT_EQ(r.status, IlpStatus::kOptimal);
  EXPECT_EQ(r.solution[0], BigInt::pow2(100));
}

TEST(Ilp, EqualityFlowSystem) {
  // x1 - x2 = 0, x1 <= 7, max x1 + x2 -> (7,7).
  LinearProgram lp;
  lp.num_vars = 2;
  lp.objective = {Rational(1), Rational(1)};
  lp.constraints.push_back(con({1, -1}, Relation::kEqual, BigInt(0)));
  lp.constraints.push_back(con({1, 0}, Relation::kLessEqual, BigInt(7)));
  auto r = solve_ilp(lp);
  ASSERT_EQ(r.status, IlpStatus::kOptimal);
  EXPECT_EQ(r.objective, Rational(14));
}

TEST(Ilp, RandomizedAgainstBruteForce) {
  Rng rng(21);
  for (int iter = 0; iter < 60; ++iter) {
    // 2 vars in [0, 8], 3 random <= constraints, random objective.
    LinearProgram lp;
    lp.num_vars = 2;
    lp.objective = {Rational(rng.range(-4, 4)), Rational(rng.range(-4, 4))};
    lp.constraints.push_back(con({1, 0}, Relation::kLessEqual, BigInt(8)));
    lp.constraints.push_back(con({0, 1}, Relation::kLessEqual, BigInt(8)));
    for (int k = 0; k < 3; ++k) {
      lp.constraints.push_back(con({rng.range(-3, 3), rng.range(-3, 3)}, Relation::kLessEqual,
                                   BigInt(rng.range(-2, 12))));
    }
    // Brute force over the 9x9 grid.
    bool any = false;
    std::int64_t best = 0;
    for (std::int64_t x = 0; x <= 8; ++x) {
      for (std::int64_t y = 0; y <= 8; ++y) {
        bool ok = true;
        for (const auto& c : lp.constraints) {
          std::int64_t lhs = 0, cx, cy, rhs;
          c.coeffs[0].num().fits_int64(cx);
          c.coeffs[1].num().fits_int64(cy);
          c.rhs.num().fits_int64(rhs);
          lhs = cx * x + cy * y;
          if (lhs > rhs) {
            ok = false;
            break;
          }
        }
        if (!ok) continue;
        std::int64_t ox, oy;
        lp.objective[0].num().fits_int64(ox);
        lp.objective[1].num().fits_int64(oy);
        std::int64_t obj = ox * x + oy * y;
        if (!any || obj > best) {
          any = true;
          best = obj;
        }
      }
    }
    auto r = solve_ilp(lp);
    if (!any) {
      EXPECT_EQ(r.status, IlpStatus::kInfeasible) << "iter " << iter;
    } else {
      ASSERT_EQ(r.status, IlpStatus::kOptimal) << "iter " << iter;
      EXPECT_EQ(r.objective, Rational(best)) << "iter " << iter;
    }
  }
}

}  // namespace
}  // namespace ccfsp
