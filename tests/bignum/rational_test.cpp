#include "bignum/rational.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace ccfsp {
namespace {

TEST(Rational, NormalizesOnConstruction) {
  Rational r(BigInt(6), BigInt(-4));
  EXPECT_EQ(r.num(), BigInt(-3));
  EXPECT_EQ(r.den(), BigInt(2));
  EXPECT_EQ(r.to_string(), "-3/2");
  Rational z(BigInt(0), BigInt(7));
  EXPECT_TRUE(z.is_zero());
  EXPECT_EQ(z.den(), BigInt(1));
}

TEST(Rational, ZeroDenominatorThrows) {
  EXPECT_THROW(Rational(BigInt(1), BigInt(0)), std::domain_error);
  EXPECT_THROW(Rational(1) / Rational(0), std::domain_error);
}

TEST(Rational, FieldAxiomsSpotChecks) {
  Rational half(BigInt(1), BigInt(2));
  Rational third(BigInt(1), BigInt(3));
  EXPECT_EQ((half + third).to_string(), "5/6");
  EXPECT_EQ((half - third).to_string(), "1/6");
  EXPECT_EQ((half * third).to_string(), "1/6");
  EXPECT_EQ((half / third).to_string(), "3/2");
  EXPECT_EQ((half + (-half)), Rational(0));
}

TEST(Rational, ArithmeticRandomizedAgainstCrossMultiplication) {
  Rng rng(3);
  for (int iter = 0; iter < 500; ++iter) {
    std::int64_t a = rng.range(-50, 50), b = rng.range(1, 50);
    std::int64_t c = rng.range(-50, 50), d = rng.range(1, 50);
    Rational x{BigInt(a), BigInt(b)};
    Rational y{BigInt(c), BigInt(d)};
    // x + y == (ad + cb) / bd
    EXPECT_EQ(x + y, Rational(BigInt(a * d + c * b), BigInt(b * d)));
    EXPECT_EQ(x * y, Rational(BigInt(a * c), BigInt(b * d)));
    // Ordering agrees with cross multiplication.
    EXPECT_EQ(x < y, a * d < c * b);
  }
}

TEST(Rational, FloorCeil) {
  Rational seven_halves(BigInt(7), BigInt(2));
  EXPECT_EQ(seven_halves.floor(), BigInt(3));
  EXPECT_EQ(seven_halves.ceil(), BigInt(4));
  Rational neg(BigInt(-7), BigInt(2));
  EXPECT_EQ(neg.floor(), BigInt(-4));
  EXPECT_EQ(neg.ceil(), BigInt(-3));
  Rational exact(BigInt(6), BigInt(2));
  EXPECT_EQ(exact.floor(), BigInt(3));
  EXPECT_EQ(exact.ceil(), BigInt(3));
  EXPECT_TRUE(exact.is_integer());
}

TEST(Rational, IntegerPromotion) {
  Rational r = 5;
  EXPECT_TRUE(r.is_integer());
  EXPECT_EQ(r.to_string(), "5");
  EXPECT_EQ(r.sign(), 1);
  EXPECT_EQ(Rational(-5).sign(), -1);
  EXPECT_EQ(Rational(0).sign(), 0);
}

TEST(Rational, NoPrecisionLossInLongSums) {
  // sum of 1/k! style terms stays exact: check telescoping identity
  // sum_{k=1..n} 1/(k(k+1)) == n/(n+1).
  Rational sum(0);
  const int n = 60;
  for (int k = 1; k <= n; ++k) {
    sum += Rational(BigInt(1), BigInt(k) * BigInt(k + 1));
  }
  EXPECT_EQ(sum, Rational(BigInt(n), BigInt(n + 1)));
}

}  // namespace
}  // namespace ccfsp
