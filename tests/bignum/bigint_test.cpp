#include "bignum/bigint.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

#include "util/rng.hpp"

namespace ccfsp {
namespace {

TEST(BigInt, Int64RoundTrip) {
  for (std::int64_t v : {std::int64_t{0}, std::int64_t{1}, std::int64_t{-1},
                         std::int64_t{1} << 40, -(std::int64_t{1} << 40),
                         std::numeric_limits<std::int64_t>::max(),
                         std::numeric_limits<std::int64_t>::min()}) {
    BigInt b(v);
    std::int64_t out = 0;
    ASSERT_TRUE(b.fits_int64(out)) << v;
    EXPECT_EQ(out, v);
    EXPECT_EQ(b.to_string(), std::to_string(v));
  }
}

TEST(BigInt, FromStringAndBack) {
  const char* cases[] = {"0", "-1", "123456789012345678901234567890",
                         "-999999999999999999999999999999999999"};
  for (const char* s : cases) {
    EXPECT_EQ(BigInt::from_string(s).to_string(), s);
  }
  EXPECT_EQ(BigInt::from_string("+17").to_string(), "17");
  EXPECT_EQ(BigInt::from_string("-0").to_string(), "0");
  EXPECT_THROW(BigInt::from_string(""), std::invalid_argument);
  EXPECT_THROW(BigInt::from_string("12a"), std::invalid_argument);
}

TEST(BigInt, ArithmeticMatchesInt64) {
  Rng rng(11);
  for (int iter = 0; iter < 2000; ++iter) {
    std::int64_t a = rng.range(-1000000, 1000000);
    std::int64_t b = rng.range(-1000000, 1000000);
    EXPECT_EQ((BigInt(a) + BigInt(b)).to_string(), std::to_string(a + b));
    EXPECT_EQ((BigInt(a) - BigInt(b)).to_string(), std::to_string(a - b));
    EXPECT_EQ((BigInt(a) * BigInt(b)).to_string(), std::to_string(a * b));
    if (b != 0) {
      EXPECT_EQ((BigInt(a) / BigInt(b)).to_string(), std::to_string(a / b));
      EXPECT_EQ((BigInt(a) % BigInt(b)).to_string(), std::to_string(a % b));
    }
  }
}

TEST(BigInt, DivmodIdentityOnLargeOperands) {
  Rng rng(13);
  for (int iter = 0; iter < 200; ++iter) {
    // Build operands of 1-6 limbs from random bits.
    auto random_big = [&] {
      BigInt v(static_cast<std::int64_t>(rng.next() >> 1));
      std::size_t extra = rng.below(4);
      for (std::size_t i = 0; i < extra; ++i) {
        v = v * BigInt(static_cast<std::int64_t>(rng.next() >> 32)) +
            BigInt(static_cast<std::int64_t>(rng.next() >> 33));
      }
      if (rng.chance(1, 2)) v = -v;
      return v;
    };
    BigInt a = random_big(), b = random_big();
    if (b.is_zero()) continue;
    BigInt q, r;
    BigInt::divmod(a, b, q, r);
    EXPECT_EQ(q * b + r, a);
    EXPECT_TRUE(r.abs() < b.abs());
    // Remainder carries the dividend's sign (or is zero).
    if (!r.is_zero()) {
      EXPECT_EQ(r.is_negative(), a.is_negative());
    }
  }
}

TEST(BigInt, DivisionByZeroThrows) {
  EXPECT_THROW(BigInt(1) / BigInt(0), std::domain_error);
}

TEST(BigInt, FloorDivision) {
  EXPECT_EQ(BigInt::fdiv(BigInt(7), BigInt(2)), BigInt(3));
  EXPECT_EQ(BigInt::fdiv(BigInt(-7), BigInt(2)), BigInt(-4));
  EXPECT_EQ(BigInt::fdiv(BigInt(7), BigInt(-2)), BigInt(-4));
  EXPECT_EQ(BigInt::fdiv(BigInt(-7), BigInt(-2)), BigInt(3));
  EXPECT_EQ(BigInt::fdiv(BigInt(-8), BigInt(2)), BigInt(-4));
}

TEST(BigInt, Gcd) {
  EXPECT_EQ(BigInt::gcd(BigInt(12), BigInt(18)), BigInt(6));
  EXPECT_EQ(BigInt::gcd(BigInt(-12), BigInt(18)), BigInt(6));
  EXPECT_EQ(BigInt::gcd(BigInt(0), BigInt(5)), BigInt(5));
  EXPECT_EQ(BigInt::gcd(BigInt(17), BigInt(13)), BigInt(1));
}

TEST(BigInt, Pow2AndBitLength) {
  EXPECT_EQ(BigInt::pow2(0), BigInt(1));
  EXPECT_EQ(BigInt::pow2(10), BigInt(1024));
  EXPECT_EQ(BigInt::pow2(100).to_string(), "1267650600228229401496703205376");
  EXPECT_EQ(BigInt::pow2(100).bit_length(), 101u);
  EXPECT_EQ(BigInt(0).bit_length(), 0u);
  EXPECT_EQ(BigInt(1).bit_length(), 1u);
}

TEST(BigInt, ShiftedLeftMatchesMultiplication) {
  BigInt v = BigInt::from_string("123456789123456789");
  EXPECT_EQ(v.shifted_left(37), v * BigInt::pow2(37));
  EXPECT_EQ((-v).shifted_left(3), -(v * BigInt(8)));
}

TEST(BigInt, ComparisonTotalOrder) {
  BigInt big = BigInt::from_string("1000000000000000000000");
  EXPECT_LT(BigInt(-5), BigInt(0));
  EXPECT_LT(BigInt(0), BigInt(5));
  EXPECT_LT(BigInt(5), big);
  EXPECT_LT(-big, BigInt(-5));
  EXPECT_EQ(big, big);
}

TEST(BigInt, FitsInt64Boundaries) {
  std::int64_t out;
  BigInt max_plus_one = BigInt(std::numeric_limits<std::int64_t>::max()) + BigInt(1);
  EXPECT_FALSE(max_plus_one.fits_int64(out));
  BigInt min_exact = BigInt(std::numeric_limits<std::int64_t>::min());
  EXPECT_TRUE(min_exact.fits_int64(out));
  EXPECT_EQ(out, std::numeric_limits<std::int64_t>::min());
  EXPECT_FALSE((min_exact - BigInt(1)).fits_int64(out));
}

TEST(BigInt, ChainOfDoublingsHasExpectedValue) {
  // The Theorem 4 motivation: m doublings produce an (m+1)-bit number.
  BigInt v(1);
  for (int i = 0; i < 256; ++i) v = v + v;
  EXPECT_EQ(v, BigInt::pow2(256));
  EXPECT_EQ(v.bit_length(), 257u);
}

}  // namespace
}  // namespace ccfsp
