#include "server/frame.hpp"

#include <gtest/gtest.h>

namespace ccfsp::server {
namespace {

TEST(Frame, RoundTrip) {
  const std::string payload = "ANALYZE\nprocess P { start p1; }";
  const std::string wire = encode_frame(payload);
  ASSERT_EQ(wire.size(), payload.size() + 4);

  FrameParser parser(1 << 20);
  parser.feed(wire.data(), wire.size());
  std::string out;
  ASSERT_EQ(parser.next(out), FrameParser::Status::kFrame);
  EXPECT_EQ(out, payload);
  EXPECT_EQ(parser.next(out), FrameParser::Status::kNeedMore);
  EXPECT_FALSE(parser.mid_frame());
}

TEST(Frame, HeaderIsBigEndian) {
  const std::string wire = encode_frame("abc");
  EXPECT_EQ(wire[0], '\x00');
  EXPECT_EQ(wire[1], '\x00');
  EXPECT_EQ(wire[2], '\x00');
  EXPECT_EQ(wire[3], '\x03');
}

TEST(Frame, ZeroLengthPayload) {
  FrameParser parser(64);
  const std::string wire = encode_frame("");
  parser.feed(wire.data(), wire.size());
  std::string out = "sentinel";
  ASSERT_EQ(parser.next(out), FrameParser::Status::kFrame);
  EXPECT_TRUE(out.empty());
}

TEST(Frame, IncrementalByteAtATime) {
  const std::string payload = "hello frames";
  const std::string wire = encode_frame(payload);
  FrameParser parser(1 << 20);
  std::string out;
  for (std::size_t i = 0; i + 1 < wire.size(); ++i) {
    parser.feed(wire.data() + i, 1);
    EXPECT_EQ(parser.next(out), FrameParser::Status::kNeedMore) << "at byte " << i;
    EXPECT_TRUE(parser.mid_frame());
  }
  parser.feed(wire.data() + wire.size() - 1, 1);
  ASSERT_EQ(parser.next(out), FrameParser::Status::kFrame);
  EXPECT_EQ(out, payload);
}

TEST(Frame, PipelinedFramesDrainInOrder) {
  const std::string wire =
      encode_frame("first") + encode_frame("") + encode_frame("third");
  FrameParser parser(1 << 20);
  parser.feed(wire.data(), wire.size());
  std::string out;
  ASSERT_EQ(parser.next(out), FrameParser::Status::kFrame);
  EXPECT_EQ(out, "first");
  ASSERT_EQ(parser.next(out), FrameParser::Status::kFrame);
  EXPECT_EQ(out, "");
  ASSERT_EQ(parser.next(out), FrameParser::Status::kFrame);
  EXPECT_EQ(out, "third");
  EXPECT_EQ(parser.next(out), FrameParser::Status::kNeedMore);
}

TEST(Frame, OversizeDeclarationRefusedBeforeBuffering) {
  FrameParser parser(16);
  // Declares 2^31 bytes; only the header ever arrives.
  const char header[4] = {'\x80', '\x00', '\x00', '\x00'};
  parser.feed(header, 4);
  std::string out;
  EXPECT_EQ(parser.next(out), FrameParser::Status::kOversize);
  EXPECT_EQ(parser.declared(), std::size_t{1} << 31);
  // Sticky: the stream position past the refusal is unknowable.
  EXPECT_EQ(parser.next(out), FrameParser::Status::kOversize);
}

TEST(Frame, ExactCapIsNotOversize) {
  FrameParser parser(8);
  const std::string wire = encode_frame("12345678");
  parser.feed(wire.data(), wire.size());
  std::string out;
  EXPECT_EQ(parser.next(out), FrameParser::Status::kFrame);
  EXPECT_EQ(out, "12345678");
}

TEST(Frame, OneOverCapIsOversize) {
  FrameParser parser(8);
  const std::string wire = encode_frame("123456789");
  parser.feed(wire.data(), wire.size());
  std::string out;
  EXPECT_EQ(parser.next(out), FrameParser::Status::kOversize);
  EXPECT_EQ(parser.declared(), 9u);
}

}  // namespace
}  // namespace ccfsp::server
