// End-to-end daemon tests: a live Daemon on an ephemeral loopback port,
// exercised through BlockingClient — including the poisoned-frame paths a
// well-behaved client can never produce.
#include "server/daemon.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <thread>

#include "../support/mini_json.hpp"
#include "server/client.hpp"
#include "server/frame.hpp"
#include "util/failpoint.hpp"

namespace ccfsp::server {
namespace {

using testsupport::JsonParser;
using testsupport::JsonPtr;

constexpr const char* kTinyRequest =
    "ANALYZE\n"
    "process P { start p1; p1 -a-> p2; }\n"
    "process Q { start q1; q1 -a-> q2; }\n";

/// A daemon on an ephemeral port, torn down (service and all) on scope exit.
struct LiveDaemon {
  explicit LiveDaemon(DaemonConfig dcfg = DaemonConfig{},
                      ServiceConfig scfg = ServiceConfig{})
      : service(scfg), daemon(std::move(dcfg), service) {
    service.start();
    std::string error;
    ok = daemon.start(&error);
    EXPECT_TRUE(ok) << error;
  }
  ~LiveDaemon() {
    failpoint::release_stalls();
    failpoint::disarm_all();
    daemon.drain();
  }

  BlockingClient connect() {
    BlockingClient client;
    std::string error;
    EXPECT_TRUE(client.connect("127.0.0.1", daemon.port(), &error)) << error;
    return client;
  }

  AnalysisService service;
  Daemon daemon;
  bool ok = false;
};

JsonPtr request_reply(BlockingClient& client, const std::string& payload) {
  EXPECT_TRUE(client.send_frame(payload));
  std::string reply;
  EXPECT_TRUE(client.recv_frame(reply, 30000));
  return JsonParser(reply).parse();
}

TEST(Daemon, AnalyzePingStatsOverOneConnection) {
  LiveDaemon live;
  BlockingClient client = live.connect();

  JsonPtr analyze = request_reply(client, kTinyRequest);
  EXPECT_EQ(analyze->at("schema_version").as_u64(), 1u);
  EXPECT_EQ(analyze->at("seq").as_u64(), 0u);
  EXPECT_EQ(analyze->at("code").string, "decided");
  EXPECT_EQ(analyze->at("report").at("status").string, "decided");

  JsonPtr ping = request_reply(client, "PING");
  EXPECT_EQ(ping->at("seq").as_u64(), 1u);
  EXPECT_EQ(ping->at("code").string, "ok");
  EXPECT_TRUE(ping->at("pong").boolean);

  JsonPtr stats = request_reply(client, "STATS");
  EXPECT_EQ(stats->at("seq").as_u64(), 2u);
  EXPECT_EQ(stats->at("code").string, "ok");
  EXPECT_GE(stats->at("stats").at("accepted").as_u64(), 1u);
  EXPECT_TRUE(stats->at("stats").has("uptime_ms"));
  EXPECT_EQ(stats->at("stats").at("warm_start").as_u64(), 0u);
}

TEST(Daemon, FreshConnectionsGetByteIdenticalReplies) {
  LiveDaemon live;
  std::string first, second;
  {
    BlockingClient client = live.connect();
    ASSERT_TRUE(client.send_frame(kTinyRequest));
    ASSERT_TRUE(client.recv_frame(first, 30000));
  }
  {
    BlockingClient client = live.connect();
    ASSERT_TRUE(client.send_frame(kTinyRequest));
    ASSERT_TRUE(client.recv_frame(second, 30000));
  }
  // seq restarts at 0 per connection and the body is deterministic, so a
  // re-run of the same request is bit-identical — warm caches and all.
  EXPECT_EQ(first, second);
}

TEST(Daemon, PipelinedRequestsEachGetTheirSeq) {
  LiveDaemon live;
  BlockingClient client = live.connect();
  ASSERT_TRUE(client.send_raw(encode_frame(kTinyRequest) + encode_frame("PING") +
                              encode_frame(kTinyRequest)));
  std::set<std::uint64_t> seqs;
  for (int i = 0; i < 3; ++i) {
    std::string reply;
    ASSERT_TRUE(client.recv_frame(reply, 30000)) << "reply " << i;
    seqs.insert(JsonParser(reply).parse()->at("seq").as_u64());
  }
  EXPECT_EQ(seqs, (std::set<std::uint64_t>{0, 1, 2}));
}

TEST(Daemon, OversizeDeclarationRepliedThenConnectionClosed) {
  DaemonConfig cfg;
  cfg.max_frame_bytes = 64;
  LiveDaemon live(cfg);
  BlockingClient client = live.connect();
  // Declare 2^24 bytes; send only the header.
  ASSERT_TRUE(client.send_raw(std::string("\x01\x00\x00\x00", 4)));
  std::string reply;
  ASSERT_TRUE(client.recv_frame(reply, 5000));
  EXPECT_EQ(JsonParser(reply).parse()->at("code").string, "oversize");
  // The stream position past a refused payload is unknowable: EOF follows.
  EXPECT_FALSE(client.recv_frame(reply, 5000));
}

TEST(Daemon, OversizePayloadItselfIsRefused) {
  DaemonConfig cfg;
  cfg.max_frame_bytes = 64;
  LiveDaemon live(cfg);
  BlockingClient client = live.connect();
  ASSERT_TRUE(client.send_frame(std::string(65, 'x')));
  std::string reply;
  ASSERT_TRUE(client.recv_frame(reply, 5000));
  EXPECT_EQ(JsonParser(reply).parse()->at("code").string, "oversize");
}

TEST(Daemon, MalformedCommandRepliesAndConnectionSurvives) {
  LiveDaemon live;
  BlockingClient client = live.connect();
  JsonPtr bad = request_reply(client, "FROBNICATE the network");
  EXPECT_EQ(bad->at("code").string, "invalid-request");
  // One bad command must not poison the connection.
  JsonPtr ping = request_reply(client, "PING");
  EXPECT_EQ(ping->at("code").string, "ok");
}

TEST(Daemon, TruncatedFrameAtEofClosesWithoutReply) {
  LiveDaemon live;
  {
    BlockingClient client = live.connect();
    // Declare 100 bytes, deliver 3, then half-close: no complete frame ever
    // arrives, so no reply is owed and the server just closes.
    ASSERT_TRUE(client.send_raw(std::string("\x00\x00\x00\x64", 4) + "abc"));
    client.shutdown_write();
    std::string reply;
    EXPECT_FALSE(client.recv_frame(reply, 5000));
  }
  // The daemon is still healthy for the next connection.
  BlockingClient client = live.connect();
  EXPECT_EQ(request_reply(client, "PING")->at("code").string, "ok");
}

TEST(Daemon, IdleConnectionIsReaped) {
  DaemonConfig cfg;
  cfg.read_timeout_ms = 150;
  LiveDaemon live(cfg);
  BlockingClient client = live.connect();
  // Send nothing: the read watchdog must close us, not leak the connection.
  std::string reply;
  EXPECT_FALSE(client.recv_frame(reply, 5000));
}

TEST(Daemon, AcceptFaultDropsOneConnectionNotTheListener) {
  failpoint::ScopedDisarm guard;
  LiveDaemon live;
  failpoint::Spec s;
  s.action = failpoint::Action::kThrowBadAlloc;
  s.trigger = failpoint::Trigger::kOnHit;
  s.n = 1;
  failpoint::arm("server.accept", s);
  {
    // This connection may be accepted-then-dropped; tolerate either a
    // refused connect or an immediate EOF.
    BlockingClient victim;
    if (victim.connect("127.0.0.1", live.daemon.port())) {
      std::string reply;
      victim.send_frame("PING");
      victim.recv_frame(reply, 2000);
    }
  }
  failpoint::disarm_all();
  BlockingClient client = live.connect();
  EXPECT_EQ(request_reply(client, "PING")->at("code").string, "ok");
}

TEST(Daemon, DrainMidFlightDeliversExactlyOneReply) {
  failpoint::ScopedDisarm guard;
  ServiceConfig scfg;
  scfg.workers = 1;
  LiveDaemon live(DaemonConfig{}, scfg);
  failpoint::Spec s;
  s.action = failpoint::Action::kStall;
  s.trigger = failpoint::Trigger::kOnHit;
  s.n = 1;
  s.delay_ms = 5000;
  failpoint::arm("server.worker", s);

  BlockingClient client = live.connect();
  ASSERT_TRUE(client.send_frame(kTinyRequest));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));  // let it start
  std::thread drainer([&] { live.daemon.drain(); });

  // Drain releases the stall and cancels the budget: exactly one reply
  // arrives (whatever its code), then EOF.
  std::string reply;
  ASSERT_TRUE(client.recv_frame(reply, 15000));
  JsonPtr v = JsonParser(reply).parse();
  EXPECT_TRUE(v->has("code"));
  std::string extra;
  EXPECT_FALSE(client.recv_frame(extra, 2000));
  drainer.join();
}

TEST(Daemon, DrainIsIdempotent) {
  LiveDaemon live;
  live.daemon.drain();
  live.daemon.drain();
  BlockingClient client;
  EXPECT_FALSE(client.connect("127.0.0.1", live.daemon.port()));
}

}  // namespace
}  // namespace ccfsp::server
