// AnalysisService behaviour without sockets: admission, shedding, budget
// isolation, fault containment, single-flight, the result cache, wedge
// escalation, and drain semantics. Failpoints are process-global, so every
// test that arms one disarms on exit.
#include "server/service.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <future>
#include <set>
#include <vector>

#include "../support/mini_json.hpp"
#include "util/failpoint.hpp"
#include "util/io.hpp"

namespace ccfsp::server {
namespace {

using testsupport::JsonParser;
using testsupport::JsonPtr;

constexpr const char* kTinyModel =
    "process P { start p1; p1 -a-> p2; }\n"
    "process Q { start q1; q1 -a-> q2; }\n";

std::string analyze_payload(const std::string& flags = "") {
  return "ANALYZE" + (flags.empty() ? "" : " " + flags) + "\n" + kTinyModel;
}

/// Submit and wait for the (exactly-once) reply body.
std::string roundtrip(AnalysisService& service, const std::string& payload,
                      std::chrono::seconds timeout = std::chrono::seconds(30)) {
  auto promise = std::make_shared<std::promise<std::string>>();
  auto future = promise->get_future();
  service.submit(payload, [promise](std::string body) { promise->set_value(std::move(body)); });
  if (future.wait_for(timeout) != std::future_status::ready) return "<no reply>";
  return future.get();
}

std::string code_of_body(const std::string& body) {
  return JsonParser(body).parse()->at("code").string;
}

struct FailpointGuard {
  ~FailpointGuard() {
    failpoint::release_stalls();
    failpoint::disarm_all();
  }
};

TEST(Service, AnalyzeDecides) {
  AnalysisService service(ServiceConfig{});
  service.start();
  const std::string body = roundtrip(service, analyze_payload());
  JsonPtr v = JsonParser(body).parse();
  EXPECT_EQ(v->at("code").string, "decided");
  EXPECT_EQ(v->at("report").at("status").string, "decided");
  service.drain();
}

TEST(Service, InvalidModelIsInvalidInput) {
  AnalysisService service(ServiceConfig{});
  service.start();
  EXPECT_EQ(code_of_body(roundtrip(service, "ANALYZE\nprocess {{{ nope")), "invalid-input");
  // A Definition 2 violation (action in one process only) is invalid input
  // too, not an internal error.
  EXPECT_EQ(code_of_body(roundtrip(service, "ANALYZE\nprocess P { start p1; p1 -a-> p2; }\n")),
            "invalid-input");
  service.drain();
}

TEST(Service, InvalidRequestIsTaxonomyCoded) {
  AnalysisService service(ServiceConfig{});
  service.start();
  EXPECT_EQ(code_of_body(roundtrip(service, "FROBNICATE\nx")), "invalid-request");
  EXPECT_EQ(code_of_body(roundtrip(service, "ANALYZE --timeout-ms nope\nx")),
            "invalid-request");
  service.drain();
}

TEST(Service, StateBudgetTripsAsBudgetExhausted) {
  AnalysisService service(ServiceConfig{});
  service.start();
  // Pin the ladder to the explicit rung and cap states below the 3x3x3
  // product machine: the wall must surface as a structured reply, not an
  // error frame.
  std::string model =
      "ANALYZE --max-states 10 --rungs explicit --retries 0\n"
      "process A { start a1; a1 -x1-> a2; a2 -x2-> a3; }\n"
      "process B { start b1; b1 -x1-> b2; b2 -x3-> b3; }\n"
      "process C { start c1; c1 -x2-> c2; c2 -x3-> c3; }\n";
  const std::string body = roundtrip(service, model);
  JsonPtr v = JsonParser(body).parse();
  EXPECT_EQ(v->at("code").string, "budget-exhausted");
  service.drain();
}

TEST(Service, DrainRejectsNewWork) {
  AnalysisService service(ServiceConfig{});
  service.start();
  service.drain();
  EXPECT_EQ(code_of_body(roundtrip(service, analyze_payload())), "shutting-down");
}

TEST(Service, SubmitBeforeStartRejects) {
  AnalysisService service(ServiceConfig{});
  EXPECT_EQ(code_of_body(roundtrip(service, analyze_payload())), "shutting-down");
}

TEST(Service, OverloadShedsWithRetryAfter) {
  FailpointGuard guard;
  ServiceConfig cfg;
  cfg.workers = 1;
  cfg.queue_capacity = 2;
  AnalysisService service(cfg);
  service.start();
  // Hold the lone worker inside its first request so the queue backs up.
  failpoint::arm("server.worker", [] {
    failpoint::Spec s;
    s.action = failpoint::Action::kStall;
    s.delay_ms = 2000;
    s.trigger = failpoint::Trigger::kOnHit;
    s.n = 1;
    return s;
  }());

  std::vector<std::future<std::string>> futures;
  auto submit = [&](const std::string& payload) {
    auto p = std::make_shared<std::promise<std::string>>();
    futures.push_back(p->get_future());
    service.submit(payload, [p](std::string body) { p->set_value(std::move(body)); });
  };
  // Distinct payloads so single-flight cannot merge them: the worker takes
  // one, two fill the queue, the rest must shed.
  for (int i = 0; i < 6; ++i) {
    submit(analyze_payload("--max-states " + std::to_string(100000 + i)));
  }

  int shed = 0;
  {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    ServiceStats s = service.stats();
    EXPECT_GE(s.shed, 3u);
  }
  failpoint::release_stalls();
  failpoint::disarm_all();
  for (auto& f : futures) {
    ASSERT_EQ(f.wait_for(std::chrono::seconds(30)), std::future_status::ready);
    JsonPtr v = JsonParser(f.get()).parse();
    const std::string code = v->at("code").string;
    if (code == "overloaded") {
      ++shed;
      EXPECT_GT(v->at("retry_after_ms").as_u64(), 0u);
    } else {
      EXPECT_EQ(code, "decided");
    }
  }
  EXPECT_GE(shed, 3);  // exactly one reply each, some shed, none lost
  service.drain();
}

TEST(Service, SingleFlightSharesDeterministicReplies) {
  FailpointGuard guard;
  ServiceConfig cfg;
  cfg.workers = 2;
  AnalysisService service(cfg);
  service.start();
  // Stall the leader mid-execute so identical followers park as waiters.
  failpoint::arm("server.worker", [] {
    failpoint::Spec s;
    s.action = failpoint::Action::kStall;
    s.delay_ms = 400;
    s.trigger = failpoint::Trigger::kOnHit;
    s.n = 1;
    return s;
  }());

  std::vector<std::future<std::string>> futures;
  for (int i = 0; i < 3; ++i) {
    auto p = std::make_shared<std::promise<std::string>>();
    futures.push_back(p->get_future());
    service.submit(analyze_payload(), [p](std::string body) { p->set_value(std::move(body)); });
  }
  std::vector<std::string> bodies;
  for (auto& f : futures) {
    ASSERT_EQ(f.wait_for(std::chrono::seconds(30)), std::future_status::ready);
    bodies.push_back(f.get());
  }
  EXPECT_EQ(bodies[0], bodies[1]);
  EXPECT_EQ(bodies[1], bodies[2]);
  EXPECT_EQ(code_of_body(bodies[0]), "decided");
  ServiceStats s = service.stats();
  EXPECT_GE(s.single_flight_joins + s.result_cache_hits, 2u);
  service.drain();
}

TEST(Service, ResultCacheHitsAreByteIdentical) {
  AnalysisService service(ServiceConfig{});
  service.start();
  const std::string first = roundtrip(service, analyze_payload());
  const std::string second = roundtrip(service, analyze_payload());
  EXPECT_EQ(first, second);
  EXPECT_GE(service.stats().result_cache_hits, 1u);
  service.drain();
}

TEST(Service, WorkerFaultIsContained) {
  FailpointGuard guard;
  ServiceConfig cfg;
  cfg.workers = 1;
  AnalysisService service(cfg);
  service.start();
  failpoint::arm("server.worker", [] {
    failpoint::Spec s;
    s.action = failpoint::Action::kThrowBadAlloc;
    s.trigger = failpoint::Trigger::kOnHit;
    s.n = 1;
    return s;
  }());
  EXPECT_EQ(code_of_body(roundtrip(service, analyze_payload())), "budget-exhausted");
  // The worker survived its contained fault and serves the next request.
  EXPECT_EQ(code_of_body(roundtrip(service, analyze_payload())), "decided");
  EXPECT_EQ(service.stats().completed, 2u);
  service.drain();
}

TEST(Service, EnqueueFaultShedsOneRequestOnly) {
  FailpointGuard guard;
  AnalysisService service(ServiceConfig{});
  service.start();
  failpoint::arm("server.enqueue", [] {
    failpoint::Spec s;
    s.action = failpoint::Action::kThrowBudget;
    s.trigger = failpoint::Trigger::kOnHit;
    s.n = 1;
    return s;
  }());
  EXPECT_EQ(code_of_body(roundtrip(service, analyze_payload())), "internal");
  EXPECT_EQ(code_of_body(roundtrip(service, analyze_payload())), "decided");
  service.drain();
}

TEST(Service, WedgedWorkerIsReplacedAndRequestGetsWedgedReply) {
  FailpointGuard guard;
  ServiceConfig cfg;
  cfg.workers = 1;
  cfg.wedge_grace_ms = 60;
  cfg.supervisor_poll_ms = 10;
  AnalysisService service(cfg);
  service.start();
  // A stall far past deadline + 2*grace wedges the worker hard: the token
  // cancel cannot unwedge a thread parked in a stall.
  failpoint::arm("server.worker", [] {
    failpoint::Spec s;
    s.action = failpoint::Action::kStall;
    s.delay_ms = 10000;
    s.trigger = failpoint::Trigger::kOnHit;
    s.n = 1;
    return s;
  }());
  const std::string body =
      roundtrip(service, analyze_payload("--timeout-ms 20"), std::chrono::seconds(10));
  EXPECT_EQ(code_of_body(body), "wedged");
  ServiceStats s = service.stats();
  EXPECT_EQ(s.wedged, 1u);
  EXPECT_EQ(s.workers_replaced, 1u);
  EXPECT_GE(s.cancelled_by_supervisor, 1u);
  // The replacement worker serves the next request.
  failpoint::release_stalls();
  failpoint::disarm_all();
  EXPECT_EQ(code_of_body(roundtrip(service, analyze_payload())), "decided");
  service.drain();
}

TEST(Service, StatsJsonIsWellFormed) {
  AnalysisService service(ServiceConfig{});
  service.start();
  roundtrip(service, analyze_payload());
  JsonPtr v = JsonParser(service.stats_json()).parse();
  EXPECT_EQ(v->at("accepted").as_u64(), 1u);
  EXPECT_EQ(v->at("completed").as_u64(), 1u);
  EXPECT_TRUE(v->has("queue_depth"));
  EXPECT_TRUE(v->has("engine_memo_bytes"));
  EXPECT_TRUE(v->has("uptime_ms"));
  // No --cache-dir: this instance started cold and never touched a snapshot.
  EXPECT_EQ(v->at("warm_start").as_u64(), 0u);
  EXPECT_EQ(v->at("snapshot_loads").as_u64(), 0u);
  EXPECT_EQ(v->at("snapshot_cold_starts").as_u64(), 0u);
  EXPECT_TRUE(v->has("snapshot_saves"));
  EXPECT_TRUE(v->has("snapshot_save_failures"));

  // Golden key set: the STATS document is a versioned contract
  // (docs/observability.md §6) — a field appearing or vanishing here must
  // be a deliberate schema change, updated in docs and in this list.
  const std::set<std::string> kStatsKeys = {
      "accepted", "shed", "rejected_draining", "completed", "wedged",
      "cancelled_by_supervisor", "workers_replaced", "result_cache_hits",
      "single_flight_joins", "queue_depth", "result_cache_bytes",
      "result_cache_evictions", "engine_memo_bytes", "engine_fsp_cache_bytes",
      "engine_cache_evictions", "uptime_ms", "warm_start",
      "warm_restored_results", "warm_restored_memo", "warm_restored_pool",
      "snapshot_saves", "snapshot_save_failures", "snapshot_loads",
      "snapshot_cold_starts"};
  std::set<std::string> actual;
  for (const auto& [key, value] : v->object) actual.insert(key);
  EXPECT_EQ(actual, kStatsKeys);
  service.drain();
}

TEST(Service, WarmRestartRestoresCachesAcrossProcessesInSpirit) {
  // Two services sharing a cache_dir model a daemon restart: the first
  // drains (persisting its caches), the second starts warm and must answer
  // byte-identically while reporting the restore in its stats.
  const std::string dir = ::testing::TempDir() + "/ccfsp_warm_restart_test";
  ServiceConfig cfg;
  cfg.cache_dir = dir;

  std::string cold_body;
  {
    AnalysisService service(cfg);
    service.start();
    cold_body = roundtrip(service, analyze_payload());
    EXPECT_EQ(code_of_body(cold_body), "decided");
    service.drain();
    EXPECT_EQ(service.stats().snapshot_saves, 1u);
    EXPECT_EQ(service.stats().snapshot_save_failures, 0u);
  }
  {
    AnalysisService service(cfg);
    service.start();
    ServiceStats warm = service.stats();
    EXPECT_EQ(warm.warm_start, 1u);
    EXPECT_EQ(warm.snapshot_loads, 1u);
    EXPECT_GE(warm.warm_restored_results, 1u);

    const std::string body = roundtrip(service, analyze_payload());
    EXPECT_EQ(body, cold_body) << "warm answers must be bit-identical to cold ones";
    EXPECT_GE(service.stats().result_cache_hits, 1u)
        << "the restored result LRU must serve the repeat request";
    service.drain();
  }
  {
    // A corrupted cache file is a structured cold start, never a failure.
    const std::string snap = dir + "/daemon_cache.snap";
    std::string bytes, error;
    ASSERT_TRUE(ccfsp::ioutil::read_file(snap, &bytes, &error)) << error;
    bytes[bytes.size() / 2] ^= 0x01;
    ASSERT_TRUE(ccfsp::ioutil::atomic_write_file(snap, bytes, &error)) << error;
    AnalysisService service(cfg);
    service.start();
    ServiceStats stats = service.stats();
    EXPECT_EQ(stats.warm_start, 0u);
    EXPECT_EQ(stats.snapshot_cold_starts, 1u);
    EXPECT_EQ(code_of_body(roundtrip(service, analyze_payload())), "decided");
    service.drain();
  }
  std::remove((dir + "/daemon_cache.snap").c_str());
}

TEST(Service, DrainIsIdempotentAndDtorSafe) {
  auto service = std::make_unique<AnalysisService>(ServiceConfig{});
  service->start();
  roundtrip(*service, analyze_payload());
  service->drain();
  service->drain();
  service.reset();  // dtor drains again — must not deadlock or throw
}

}  // namespace
}  // namespace ccfsp::server
