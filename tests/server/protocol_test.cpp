#include "server/protocol.hpp"

#include <gtest/gtest.h>

#include "../support/mini_json.hpp"

namespace ccfsp::server {
namespace {

using testsupport::JsonParser;
using testsupport::JsonPtr;

TEST(Protocol, ReplyCodeNamesRoundTrip) {
  for (int i = 0; i <= static_cast<int>(ReplyCode::kInternal); ++i) {
    const ReplyCode c = static_cast<ReplyCode>(i);
    auto back = reply_code_from_string(to_string(c));
    ASSERT_TRUE(back.has_value()) << to_string(c);
    EXPECT_EQ(*back, c);
  }
  EXPECT_FALSE(reply_code_from_string("nonsense").has_value());
}

TEST(Protocol, ParseAnalyzeWithFlags) {
  ParsedRequest p = parse_request(
      "ANALYZE --timeout-ms 250 --max-states 1000 --retries 2 --rungs linear,tree "
      "--distinguished P\nprocess P { start p1; }\n");
  ASSERT_EQ(p.command, Command::kAnalyze);
  EXPECT_EQ(p.analyze.timeout_ms, 250u);
  EXPECT_EQ(p.analyze.max_states, 1000u);
  EXPECT_TRUE(p.analyze.retries_set);
  EXPECT_EQ(p.analyze.retries, 2u);
  ASSERT_EQ(p.analyze.rungs.size(), 2u);
  EXPECT_EQ(p.analyze.rungs[0], Rung::kLinear);
  EXPECT_EQ(p.analyze.rungs[1], Rung::kTree);
  EXPECT_EQ(p.analyze.distinguished, "P");
  EXPECT_EQ(p.analyze.model_text, "process P { start p1; }\n");
}

TEST(Protocol, ParseAnalyzeBareCommand) {
  ParsedRequest p = parse_request("ANALYZE\nprocess P { start p1; }");
  ASSERT_EQ(p.command, Command::kAnalyze);
  EXPECT_EQ(p.analyze.timeout_ms, 0u);
  EXPECT_FALSE(p.analyze.retries_set);
  EXPECT_TRUE(p.analyze.rungs.empty());
}

TEST(Protocol, ParsePingIgnoresPadding) {
  EXPECT_EQ(parse_request("PING").command, Command::kPing);
  EXPECT_EQ(parse_request("PING xxxxxxxx").command, Command::kPing);
  EXPECT_EQ(parse_request("PING\nextra body ignored").command, Command::kPing);
}

TEST(Protocol, ParseStats) {
  EXPECT_EQ(parse_request("STATS").command, Command::kStats);
  EXPECT_EQ(parse_request("STATS verbose").command, Command::kInvalid);
}

TEST(Protocol, InvalidRequests) {
  EXPECT_EQ(parse_request("").command, Command::kInvalid);
  EXPECT_EQ(parse_request("\nmodel").command, Command::kInvalid);
  EXPECT_EQ(parse_request("FROBNICATE\nx").command, Command::kInvalid);
  EXPECT_EQ(parse_request("ANALYZE").command, Command::kInvalid);  // no model text
  EXPECT_EQ(parse_request("ANALYZE\n").command, Command::kInvalid);
  EXPECT_EQ(parse_request("ANALYZE --timeout-ms\nmodel").command, Command::kInvalid);
  EXPECT_EQ(parse_request("ANALYZE --timeout-ms abc\nmodel").command, Command::kInvalid);
  EXPECT_EQ(parse_request("ANALYZE --rungs bogus\nmodel").command, Command::kInvalid);
  EXPECT_EQ(parse_request("ANALYZE --wat\nmodel").command, Command::kInvalid);
  // Every invalid parse carries a human-readable reason.
  EXPECT_FALSE(parse_request("FROBNICATE\nx").error.empty());
}

TEST(Protocol, WindowsLineEndingTolerated) {
  ParsedRequest p = parse_request("ANALYZE --timeout-ms 5\r\nprocess P { start p1; }");
  ASSERT_EQ(p.command, Command::kAnalyze);
  EXPECT_EQ(p.analyze.timeout_ms, 5u);
}

TEST(Protocol, BodiesAreValidJsonWithCodes) {
  for (const std::string& body :
       {error_body(ReplyCode::kInternal, "boom \"quoted\" \n newline"),
        overloaded_body(125, "queue full"), pong_body(), stats_body("{\"accepted\": 3}")}) {
    JsonPtr v = JsonParser(body).parse();
    ASSERT_TRUE(v->is_object()) << body;
    ASSERT_TRUE(v->has("code")) << body;
    EXPECT_TRUE(reply_code_from_string(v->at("code").string).has_value()) << body;
  }
}

TEST(Protocol, OverloadedBodyCarriesRetryAfter) {
  JsonPtr v = JsonParser(overloaded_body(250, "shed")).parse();
  EXPECT_EQ(v->at("code").string, "overloaded");
  EXPECT_EQ(v->at("retry_after_ms").as_u64(), 250u);
}

TEST(Protocol, WrapReplySplicesEnvelope) {
  const std::string wrapped = wrap_reply(7, pong_body());
  JsonPtr v = JsonParser(wrapped).parse();
  EXPECT_EQ(v->at("schema_version").as_u64(), 1u);
  EXPECT_EQ(v->at("seq").as_u64(), 7u);
  EXPECT_EQ(v->at("code").string, "ok");
  EXPECT_TRUE(v->at("pong").boolean);
}

TEST(Protocol, ReportBodyEmbedsAnalysisReportSchema) {
  AnalysisReport report;
  report.status = OutcomeStatus::kDecided;
  report.decided_by = Rung::kLinear;
  report.verdict.unavoidable_success = true;
  report.verdict.success_collab = true;
  RungOutcome r;
  r.rung = Rung::kLinear;
  r.status = OutcomeStatus::kDecided;
  r.detail = "S_u=yes S_c=yes";
  report.rungs.push_back(r);

  JsonPtr v = JsonParser(report_body(report)).parse();
  EXPECT_EQ(v->at("code").string, "decided");
  const auto& rep = v->at("report");
  EXPECT_EQ(rep.at("status").string, "decided");
  EXPECT_EQ(rep.at("decided_by").string, "linear");
  EXPECT_TRUE(rep.at("verdict").at("unavoidable_success").boolean);
  ASSERT_EQ(rep.at("rungs").array.size(), 1u);
  EXPECT_EQ(rep.at("rungs").array[0]->at("rung").string, "linear");
  EXPECT_EQ(rep.at("rungs").array[0]->at("budget_reason").string, "none");
}

TEST(Protocol, CodeOfMirrorsOutcomeTaxonomy) {
  EXPECT_EQ(code_of(OutcomeStatus::kDecided), ReplyCode::kDecided);
  EXPECT_EQ(code_of(OutcomeStatus::kBudgetExhausted), ReplyCode::kBudgetExhausted);
  EXPECT_EQ(code_of(OutcomeStatus::kUnsupported), ReplyCode::kUnsupported);
  EXPECT_EQ(code_of(OutcomeStatus::kInvalidInput), ReplyCode::kInvalidInput);
}

}  // namespace
}  // namespace ccfsp::server
