#include "reductions/sat_solver.hpp"

#include <gtest/gtest.h>

namespace ccfsp {
namespace {

TEST(SatSolver, TrivialSat) {
  Cnf f;
  f.num_vars = 1;
  f.clauses = {{{0, false}}};
  auto model = solve_sat(f);
  ASSERT_TRUE(model.has_value());
  EXPECT_TRUE((*model)[0]);
}

TEST(SatSolver, TrivialUnsat) {
  Cnf f;
  f.num_vars = 1;
  f.clauses = {{{0, false}}, {{0, true}}};
  EXPECT_FALSE(solve_sat(f).has_value());
}

TEST(SatSolver, EmptyFormulaSat) {
  Cnf f;
  f.num_vars = 0;
  EXPECT_TRUE(solve_sat(f).has_value());
}

TEST(SatSolver, EmptyClauseUnsat) {
  Cnf f;
  f.num_vars = 1;
  f.clauses = {{}};
  EXPECT_FALSE(solve_sat(f).has_value());
}

TEST(SatSolver, UnitPropagationChain) {
  // x1, (~x1|x2), (~x2|x3), (~x3|~x1) -> unsat.
  Cnf f;
  f.num_vars = 3;
  f.clauses = {{{0, false}},
               {{0, true}, {1, false}},
               {{1, true}, {2, false}},
               {{2, true}, {0, true}}};
  EXPECT_FALSE(solve_sat(f).has_value());
}

TEST(SatSolver, PigeonholeThreeIntoTwoUnsat) {
  // Pigeons p in {0,1,2}, holes h in {0,1}; var p*2+h.
  Cnf f;
  f.num_vars = 6;
  for (std::uint32_t p = 0; p < 3; ++p) {
    f.clauses.push_back({{p * 2, false}, {p * 2 + 1, false}});
  }
  for (std::uint32_t h = 0; h < 2; ++h) {
    for (std::uint32_t p1 = 0; p1 < 3; ++p1) {
      for (std::uint32_t p2 = p1 + 1; p2 < 3; ++p2) {
        f.clauses.push_back({{p1 * 2 + h, true}, {p2 * 2 + h, true}});
      }
    }
  }
  EXPECT_FALSE(solve_sat(f).has_value());
}

TEST(SatSolver, ModelsActuallySatisfy) {
  Rng rng(77);
  int sat_count = 0;
  for (int iter = 0; iter < 200; ++iter) {
    Cnf f = random_cnf(rng, 6, 10 + rng.below(15), 3);
    auto model = solve_sat(f);
    if (model) {
      ++sat_count;
      EXPECT_TRUE(evaluates_true(f, *model)) << f.to_string();
    }
  }
  EXPECT_GT(sat_count, 0);  // the mix must include satisfiable instances
}

TEST(SatSolver, AgreesWithBruteForceOnSmallInstances) {
  Rng rng(88);
  for (int iter = 0; iter < 100; ++iter) {
    std::uint32_t n = 2 + rng.below(4);  // up to 5 vars
    Cnf f = random_cnf(rng, n, 3 + rng.below(18), 2 + rng.below(2));
    bool brute = false;
    for (std::uint32_t mask = 0; mask < (1u << n) && !brute; ++mask) {
      std::vector<bool> assignment(n);
      for (std::uint32_t v = 0; v < n; ++v) assignment[v] = mask & (1u << v);
      brute = evaluates_true(f, assignment);
    }
    EXPECT_EQ(solve_sat(f).has_value(), brute) << f.to_string();
  }
}

}  // namespace
}  // namespace ccfsp
