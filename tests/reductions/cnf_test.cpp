#include "reductions/cnf.hpp"

#include <gtest/gtest.h>

#include "reductions/sat_solver.hpp"

namespace ccfsp {
namespace {

TEST(Cnf, ToStringReadable) {
  Cnf f;
  f.num_vars = 2;
  f.clauses = {{{0, false}, {1, true}}};
  EXPECT_EQ(f.to_string(), "(x1 | ~x2)");
}

TEST(Cnf, EvaluatesTrue) {
  Cnf f;
  f.num_vars = 2;
  f.clauses = {{{0, false}, {1, false}}, {{0, true}, {1, false}}};
  EXPECT_TRUE(evaluates_true(f, {true, true}));
  EXPECT_TRUE(evaluates_true(f, {false, true}));
  EXPECT_FALSE(evaluates_true(f, {true, false}));
}

TEST(Cnf, ToThreeSatPreservesSatisfiability) {
  Rng rng(55);
  for (int iter = 0; iter < 40; ++iter) {
    std::uint32_t vars = 3 + rng.below(4);
    Cnf f = random_cnf(rng, vars, 2 + rng.below(6), 2 + rng.below(4));
    Cnf g = to_three_sat(f);
    for (const Clause& c : g.clauses) {
      EXPECT_LE(c.size(), 3u);
      EXPECT_GE(c.size(), 1u);
    }
    EXPECT_EQ(solve_sat(f).has_value(), solve_sat(g).has_value()) << "iter " << iter;
  }
}

TEST(Cnf, ToThreeSatSplitsLongClauses) {
  Cnf f;
  f.num_vars = 6;
  f.clauses = {{{0, false}, {1, false}, {2, false}, {3, false}, {4, false}, {5, false}}};
  Cnf g = to_three_sat(f);
  EXPECT_GT(g.clauses.size(), 1u);
  EXPECT_GT(g.num_vars, f.num_vars);
  EXPECT_TRUE(solve_sat(g).has_value());
}

TEST(Cnf, EmptyClauseEncodedUnsat) {
  Cnf f;
  f.num_vars = 1;
  f.clauses = {{}};
  Cnf g = to_three_sat(f);
  EXPECT_FALSE(solve_sat(g).has_value());
}

TEST(Cnf, RandomCnfRespectsShape) {
  Rng rng(66);
  Cnf f = random_cnf(rng, 10, 20, 3);
  EXPECT_EQ(f.num_vars, 10u);
  EXPECT_EQ(f.clauses.size(), 20u);
  for (const Clause& c : f.clauses) {
    EXPECT_EQ(c.size(), 3u);
    // No duplicate variables inside a clause.
    for (std::size_t i = 0; i < c.size(); ++i) {
      for (std::size_t j = i + 1; j < c.size(); ++j) {
        EXPECT_NE(c[i].var, c[j].var);
      }
    }
  }
}

}  // namespace
}  // namespace ccfsp
