// The hardness gadgets run both ways: the formula through the DPLL / QBF
// oracle, the gadget network through the FSP engine. Theorems 1 and 2 are
// "reproduced" when the two always agree.
#include <gtest/gtest.h>

#include "reductions/gadget_thm2.hpp"
#include "reductions/gadgets_thm1.hpp"
#include "reductions/sat_solver.hpp"
#include "success/baseline.hpp"
#include "success/game.hpp"
#include "success/tree_pipeline.hpp"

namespace ccfsp {
namespace {

Cnf paper_formula() {
  // (x1 | ~x2 | x3) & (x1 | x2 | ~x3) — the Figure 5/6 illustration.
  Cnf f;
  f.num_vars = 3;
  f.clauses = {{{0, false}, {1, true}, {2, false}},
               {{0, false}, {1, false}, {2, true}}};
  return f;
}

TEST(Thm1Case1, PaperFormulaGadget) {
  Cnf f = paper_formula();
  ASSERT_TRUE(solve_sat(f).has_value());
  GadgetNetwork g = thm1_case1_collab_gadget(f);
  EXPECT_TRUE(g.net.is_tree_network());
  // All processes but W are O(1) linear.
  for (std::size_t i = 1; i < g.net.size(); ++i) {
    EXPECT_TRUE(g.net.process(i).is_linear());
    EXPECT_LE(g.net.process(i).num_states(), 3u);
  }
  EXPECT_TRUE(success_collab_global(g.net, g.distinguished));
}

TEST(Thm1Case1, UnsatFormulaGadgetFails) {
  // x & ~x in 3-CNF guise.
  Cnf f;
  f.num_vars = 1;
  f.clauses = {{{0, false}, {0, false}, {0, false}},
               {{0, true}, {0, true}, {0, true}}};
  ASSERT_FALSE(solve_sat(f).has_value());
  GadgetNetwork g = thm1_case1_collab_gadget(f);
  EXPECT_FALSE(success_collab_global(g.net, g.distinguished));
}

class GadgetRandomized : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GadgetRandomized, Case1CollabMatchesSat) {
  Rng rng(GetParam());
  Cnf f = random_cnf(rng, 3 + rng.below(3), 3 + rng.below(6), 3);
  GadgetNetwork g = thm1_case1_collab_gadget(f);
  EXPECT_EQ(success_collab_global(g.net, g.distinguished), solve_sat(f).has_value())
      << f.to_string();
  // The Theorem 3 pipeline handles the gadget too (its C_N is a star).
  EXPECT_EQ(theorem3_decide(g.net, g.distinguished).success_collab,
            solve_sat(f).has_value())
      << f.to_string();
}

TEST_P(GadgetRandomized, Case1BlockingMatchesSat) {
  Rng rng(GetParam() + 100);
  Cnf f = random_cnf(rng, 3 + rng.below(3), 3 + rng.below(5), 3);
  GadgetNetwork g = thm1_case1_blocking_gadget(f);
  EXPECT_EQ(potential_blocking_global(g.net, g.distinguished), solve_sat(f).has_value())
      << f.to_string();
}

TEST_P(GadgetRandomized, Case2CollabMatchesSat) {
  Rng rng(GetParam() + 200);
  Cnf f = random_cnf(rng, 2 + rng.below(3), 2 + rng.below(4), 3);
  GadgetNetwork g = thm1_case2_collab_gadget(f);
  EXPECT_EQ(success_collab_global(g.net, g.distinguished), solve_sat(f).has_value())
      << f.to_string();
}

TEST_P(GadgetRandomized, Case2BlockingMatchesSat) {
  Rng rng(GetParam() + 300);
  Cnf f = random_cnf(rng, 2 + rng.below(3), 2 + rng.below(4), 3);
  GadgetNetwork g = thm1_case2_blocking_gadget(f);
  EXPECT_EQ(potential_blocking_global(g.net, g.distinguished), solve_sat(f).has_value())
      << f.to_string();
}

TEST_P(GadgetRandomized, Thm2AdversityMatchesQbf) {
  Rng rng(GetParam() + 400);
  Qbf q = random_qbf(rng, 2 + rng.below(3), 2 + rng.below(3));
  Thm2Gadget g = thm2_adversity_gadget(q);
  EXPECT_TRUE(g.net.is_tree_network());
  EXPECT_FALSE(g.net.process(g.distinguished).has_tau_moves());
  EXPECT_EQ(success_adversity_network(g.net, g.distinguished), solve_qbf(q))
      << q.matrix.to_string();
}

INSTANTIATE_TEST_SUITE_P(Seeds, GadgetRandomized,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12));

TEST(Thm2, PaperQbfGadget) {
  Qbf q;
  q.prefix = {Quantifier::kExists, Quantifier::kForAll, Quantifier::kExists};
  q.matrix = paper_formula();
  Thm2Gadget g = thm2_adversity_gadget(q);
  EXPECT_TRUE(success_adversity_network(g.net, g.distinguished));
}

TEST(Thm1Case2, StructuralGuarantees) {
  Cnf f = limit_occurrences(paper_formula());
  GadgetNetwork g = thm1_case2_collab_gadget(f);
  for (std::size_t i = 0; i < g.net.size(); ++i) {
    EXPECT_TRUE(g.net.process(i).is_tree()) << g.net.process(i).name();
    EXPECT_LE(g.net.process(i).num_states(), 16u) << g.net.process(i).name();
  }
  // Single-symbol edges (the |Sigma_i cap Sigma_j| <= 1 hypothesis).
  for (auto [i, j] : g.net.comm_graph().edges()) {
    EXPECT_EQ(g.net.shared_actions(i, j).count(), 1u);
  }
}

TEST(LimitOccurrences, BoundsRespectedAndEquisatisfiable) {
  Rng rng(500);
  for (int iter = 0; iter < 30; ++iter) {
    Cnf f = random_cnf(rng, 3 + rng.below(3), 4 + rng.below(8), 3);
    Cnf g = limit_occurrences(f);
    std::vector<std::size_t> pos(g.num_vars, 0), neg(g.num_vars, 0);
    for (const Clause& c : g.clauses) {
      for (const Literal& l : c) {
        ++(l.negated ? neg : pos)[l.var];
      }
    }
    for (std::uint32_t v = 0; v < g.num_vars; ++v) {
      EXPECT_LE(pos[v], 2u);
      EXPECT_LE(neg[v], 2u);
    }
    EXPECT_EQ(solve_sat(f).has_value(), solve_sat(g).has_value()) << iter;
  }
}

}  // namespace
}  // namespace ccfsp
