#include "reductions/qbf.hpp"

#include <gtest/gtest.h>

#include "reductions/sat_solver.hpp"

namespace ccfsp {
namespace {

TEST(Qbf, PaperExampleIsValid) {
  // The Theorem 2 illustration: ∃x1 ∀x2 ∃x3 (x1|~x2|x3) & (x1|x2|~x3).
  // x1 = true satisfies both clauses outright.
  Qbf q;
  q.prefix = {Quantifier::kExists, Quantifier::kForAll, Quantifier::kExists};
  q.matrix.num_vars = 3;
  q.matrix.clauses = {{{0, false}, {1, true}, {2, false}},
                      {{0, false}, {1, false}, {2, true}}};
  EXPECT_TRUE(solve_qbf(q));
}

TEST(Qbf, ForAllCanFalsify) {
  // ∀x1 (x1): false.
  Qbf q;
  q.prefix = {Quantifier::kForAll};
  q.matrix.num_vars = 1;
  q.matrix.clauses = {{{0, false}}};
  EXPECT_FALSE(solve_qbf(q));
}

TEST(Qbf, ExistsThenForAllOrdering) {
  // ∃x1 ∀x2 (x1 xor x2 is satisfied?) encode (x1|x2)&(~x1|~x2): for fixed
  // x1 the adversary picks x2 = x1, falsifying one clause -> false.
  Qbf q;
  q.prefix = {Quantifier::kExists, Quantifier::kForAll};
  q.matrix.num_vars = 2;
  q.matrix.clauses = {{{0, false}, {1, false}}, {{0, true}, {1, true}}};
  EXPECT_FALSE(solve_qbf(q));

  // ∀x2 ∃x1 with the same matrix: now x1 responds to x2 -> true.
  Qbf q2;
  q2.prefix = {Quantifier::kForAll, Quantifier::kExists};
  q2.matrix.num_vars = 2;
  q2.matrix.clauses = {{{0, false}, {1, false}}, {{0, true}, {1, true}}};
  EXPECT_TRUE(solve_qbf(q2));
}

TEST(Qbf, AllExistentialEqualsSat) {
  Rng rng(31);
  for (int iter = 0; iter < 50; ++iter) {
    Cnf f = random_cnf(rng, 4, 6 + rng.below(8), 3);
    Qbf q;
    q.prefix.assign(4, Quantifier::kExists);
    q.matrix = f;
    EXPECT_EQ(solve_qbf(q), solve_sat(f).has_value()) << f.to_string();
  }
}

TEST(Qbf, AllUniversalEqualsValidity) {
  Rng rng(32);
  for (int iter = 0; iter < 30; ++iter) {
    Cnf f = random_cnf(rng, 3, 2 + rng.below(4), 2);
    Qbf q;
    q.prefix.assign(3, Quantifier::kForAll);
    q.matrix = f;
    bool valid = true;
    for (std::uint32_t mask = 0; mask < 8 && valid; ++mask) {
      std::vector<bool> assignment{bool(mask & 1), bool(mask & 2), bool(mask & 4)};
      valid = evaluates_true(f, assignment);
    }
    EXPECT_EQ(solve_qbf(q), valid) << f.to_string();
  }
}

TEST(Qbf, RejectsUnquantifiedVariables) {
  Qbf q;
  q.prefix = {Quantifier::kExists};
  q.matrix.num_vars = 2;
  q.matrix.clauses = {{{1, false}}};
  EXPECT_THROW(solve_qbf(q), std::logic_error);
}

TEST(Qbf, RandomQbfShape) {
  Rng rng(33);
  Qbf q = random_qbf(rng, 5, 7);
  EXPECT_EQ(q.prefix.size(), 5u);
  EXPECT_EQ(q.matrix.clauses.size(), 7u);
  solve_qbf(q);  // must not throw
}

}  // namespace
}  // namespace ccfsp
