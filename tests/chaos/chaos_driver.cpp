// Standalone chaos driver: sweep randomized failpoint schedules through the
// governed analysis front door and fail loudly on the first violated
// invariant (see chaos_harness.hpp). The CI chaos-smoke job runs
//
//   chaos_driver --iterations 1000 --seed 1
//
// and expects exit 0 plus the machine-readable summary line on stdout.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "chaos_harness.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--iterations N] [--seed S]\n"
               "  sweeps N randomized failpoint schedules (default 1000)\n"
               "  through analyze(); exit 0 iff every schedule upholds the\n"
               "  chaos invariants (classified outcome, deterministic\n"
               "  post-fault re-run).\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t iterations = 1000;
  std::uint64_t seed = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--iterations") == 0 && i + 1 < argc) {
      iterations = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else {
      return usage(argv[0]);
    }
  }

  ccfsp::chaos::Stats stats;
  for (std::uint64_t i = 0; i < iterations; ++i) {
    const std::string violation = ccfsp::chaos::run_schedule(seed + i, stats);
    if (!violation.empty()) {
      std::fprintf(stderr, "chaos violation at iteration %llu:\n%s\n",
                   static_cast<unsigned long long>(i), violation.c_str());
      return 1;
    }
    if ((i + 1) % 100 == 0) {
      std::fprintf(stderr, "  %llu/%llu schedules ok\n", static_cast<unsigned long long>(i + 1),
                   static_cast<unsigned long long>(iterations));
    }
  }

  std::printf(
      "{\"chaos\": {\"schedules\": %llu, \"decided\": %llu, \"exhausted\": %llu, "
      "\"unsupported\": %llu, \"retries_used\": %llu, \"sites_fired\": %llu, "
      "\"violations\": 0}}\n",
      static_cast<unsigned long long>(stats.schedules),
      static_cast<unsigned long long>(stats.decided),
      static_cast<unsigned long long>(stats.exhausted),
      static_cast<unsigned long long>(stats.unsupported),
      static_cast<unsigned long long>(stats.retries_used),
      static_cast<unsigned long long>(stats.sites_fired));
  return 0;
}
