// Shared chaos-sweep logic for the bounded gtest (integration/chaos_test)
// and the standalone driver (chaos_driver). One "schedule" is one seeded
// draw of (input network, analyze options, failpoint configuration); the
// harness then checks the engine's two chaos invariants:
//
//   1. Taxonomy validity: whatever the schedule injects — budget walls,
//      allocation failures, delays, stalled workers, cancellations — the
//      governed front door returns a classified AnalysisReport. No crash,
//      no terminate, no hang, no exception past analyze().
//   2. Determinism after recovery: with every failpoint disarmed, re-running
//      the same analysis produces a report bit-identical to the never-
//      faulted baseline taken before the faulted run. Fault handling must
//      not leak state from one run into the next.
//
// Budgets drawn here are state-count caps only — never wall-clock deadlines
// — so the baseline and the post-fault re-run are exactly reproducible.
#pragma once

#include <cstdint>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "fsp/parse.hpp"
#include "network/generate.hpp"
#include "network/network.hpp"
#include "success/analyze.hpp"
#include "util/failpoint.hpp"
#include "util/rng.hpp"

namespace ccfsp::chaos {

struct Stats {
  std::uint64_t schedules = 0;
  std::uint64_t decided = 0;
  std::uint64_t exhausted = 0;
  std::uint64_t unsupported = 0;
  std::uint64_t retries_used = 0;  // rung attempts beyond the first
  std::uint64_t sites_fired = 0;   // failpoint hits that took an action path
};

namespace detail {

inline const char* const kModels[] = {
    "barrier.ccfsp",         "bounded_buffer.ccfsp",  "handshake_deadlock.ccfsp",
    "lossy_rpc.ccfsp",       "mutex_semaphore.ccfsp", "pipeline.ccfsp",
    "readers_writers.ccfsp", "train_crossing.ccfsp",  "two_phase_commit.ccfsp",
};

/// Shipped models, parsed once and cached (the sweep revisits each many
/// times). Keyed by name; the Network is rebuilt per schedule from the
/// cached source so each run gets an independent alphabet.
inline Network load_model(const std::string& name) {
  static std::map<std::string, std::string>* sources = new std::map<std::string, std::string>();
  auto it = sources->find(name);
  if (it == sources->end()) {
    std::string path = std::string(CCFSP_MODELS_DIR) + "/" + name;
    std::ifstream in(path);
    if (!in) throw std::runtime_error("cannot open model " + path);
    std::ostringstream ss;
    ss << in.rdbuf();
    it = sources->emplace(name, ss.str()).first;
  }
  auto alphabet = std::make_shared<Alphabet>();
  return Network(alphabet, parse_processes(it->second, alphabet));
}

inline Network draw_network(Rng& rng) {
  switch (rng.below(4)) {
    case 0:
      return load_model(kModels[rng.below(std::size(kModels))]);
    case 1: {
      NetworkGenOptions opt;
      opt.num_processes = static_cast<std::size_t>(rng.range(2, 5));
      opt.states_per_process = static_cast<std::size_t>(rng.range(3, 6));
      Rng net_rng(rng.next());
      return random_tree_network(net_rng, opt);
    }
    case 2: {
      NetworkGenOptions opt;
      opt.num_processes = static_cast<std::size_t>(rng.range(2, 4));
      opt.states_per_process = static_cast<std::size_t>(rng.range(3, 5));
      Rng net_rng(rng.next());
      return random_cyclic_tree_network(net_rng, opt);
    }
    default:
      return wave_chain_network(static_cast<std::size_t>(rng.range(3, 6)),
                                static_cast<std::size_t>(rng.range(1, 3)));
  }
}

/// A random failpoint configuration over the full compiled-in catalog,
/// rendered through the same grammar the CLI accepts. Stalls are kept on a
/// short cap so an unreleased stall costs milliseconds, not a hang.
inline std::string draw_schedule(Rng& rng) {
  static const char* const kActions[] = {"budget:states", "budget:bytes",  "budget:deadline",
                                         "budget:cancel", "bad_alloc",     "bad_alloc",
                                         "delay:1",       "stall:10"};
  const auto& sites = failpoint::catalog();
  std::string config;
  const std::size_t entries = 1 + rng.below(3);  // 1..3 armed sites
  for (std::size_t e = 0; e < entries; ++e) {
    if (!config.empty()) config += ';';
    config += sites[rng.below(sites.size())];
    config += '=';
    config += kActions[rng.below(std::size(kActions))];
    switch (rng.below(3)) {
      case 0: config += "@hit:" + std::to_string(rng.range(1, 60)); break;
      case 1: config += "@every:" + std::to_string(rng.range(2, 30)); break;
      case 2:
        config += "@prob:1/" + std::to_string(rng.range(4, 16)) + ":" +
                  std::to_string(rng.next() & 0xffffff);
        break;
    }
  }
  return config;
}

/// Byte-exact serialization of everything an AnalysisReport carries; two
/// runs are "bit-identical" iff these strings match.
inline std::string render_report(const AnalysisReport& r) {
  std::ostringstream out;
  out << to_string(r.status) << '|' << r.summary() << '|' << r.cyclic_semantics << '\n';
  for (const RungOutcome& o : r.rungs) {
    out << to_string(o.rung) << '|' << to_string(o.status) << '|' << o.detail << '|'
        << o.states_charged << '|' << o.attempt << '|' << to_string(o.budget_reason) << '\n';
  }
  return out.str();
}

}  // namespace detail

/// Run one chaos schedule. Returns an empty string on success, or a
/// human-readable description of the violated invariant.
inline std::string run_schedule(std::uint64_t seed, Stats& stats) {
  Rng rng(seed);
  ++stats.schedules;

  Network net = detail::draw_network(rng);
  AnalyzeOptions opt;
  static const std::size_t kCaps[] = {64, 512, 4096, 32768};
  opt.budget = Budget::with_states(kCaps[rng.below(std::size(kCaps))]);
  static const unsigned kThreads[] = {1, 2, 4, 8};
  opt.threads = kThreads[rng.below(std::size(kThreads))];
  opt.retries = static_cast<unsigned>(rng.below(3));
  const std::size_t p_index = static_cast<std::size_t>(rng.below(net.size()));
  const std::string schedule = detail::draw_schedule(rng);

  auto describe = [&](const char* what) {
    return std::string(what) + " [seed=" + std::to_string(seed) + " schedule='" + schedule +
           "' threads=" + std::to_string(opt.threads) +
           " cap=" + std::to_string(opt.budget.max_states()) +
           " retries=" + std::to_string(opt.retries) + " p=" + std::to_string(p_index) + "]";
  };

  // Never-faulted baseline.
  failpoint::disarm_all();
  AnalysisReport baseline;
  try {
    baseline = analyze(net, p_index, opt);
  } catch (...) {
    return describe("baseline analyze() threw");
  }
  const std::string baseline_render = detail::render_report(baseline);

  // The faulted run.
  std::string err;
  if (!failpoint::parse_and_arm(schedule, &err)) {
    return describe(("generated schedule failed to parse: " + err).c_str());
  }
  AnalysisReport faulted;
  try {
    faulted = analyze(net, p_index, opt);
  } catch (const std::exception& e) {
    failpoint::disarm_all();
    return describe((std::string("faulted analyze() threw: ") + e.what()).c_str());
  } catch (...) {
    failpoint::disarm_all();
    return describe("faulted analyze() threw a non-exception");
  }
  for (const auto& site : failpoint::armed_sites()) stats.sites_fired += failpoint::hits(site) > 0;
  failpoint::disarm_all();

  switch (faulted.status) {
    case OutcomeStatus::kDecided: ++stats.decided; break;
    case OutcomeStatus::kBudgetExhausted: ++stats.exhausted; break;
    case OutcomeStatus::kUnsupported: ++stats.unsupported; break;
    case OutcomeStatus::kInvalidInput:
      return describe("faulted run classified a valid input as kInvalidInput");
  }
  for (const RungOutcome& o : faulted.rungs) stats.retries_used += o.attempt > 0;

  // Post-fault clean re-run: must reproduce the baseline bit for bit.
  AnalysisReport rerun;
  try {
    rerun = analyze(net, p_index, opt);
  } catch (...) {
    return describe("post-fault clean analyze() threw");
  }
  const std::string rerun_render = detail::render_report(rerun);
  if (rerun_render != baseline_render) {
    return describe(("post-fault re-run diverged from the never-faulted baseline:\n--- baseline\n" +
                     baseline_render + "--- re-run\n" + rerun_render)
                        .c_str());
  }
  return std::string();
}

}  // namespace ccfsp::chaos
