// Kill-recover chaos sweep for the checkpointed global build. Each schedule
// forks a child that builds the machine through the snapshot layer's
// checkpoint/resume path and SIGKILLs *itself* at a seeded-random moment —
// mid-expansion (the global.intern_ring site) or inside a checkpoint commit
// (the snapshot.write_short / snapshot.fsync / snapshot.rename sites, i.e.
// power loss mid-write). The parent relaunches until a child survives, then
// requires the recovery contract: however many kills and partial files the
// schedule produced, the surviving build's machine is bit-identical to an
// uninterrupted build_global, and the consumed checkpoint is cleaned up.
//
// CI runs: crash_recovery_driver --iterations 40 --seed 1
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "network/families.hpp"
#include "snapshot/global_io.hpp"
#include "snapshot/persist.hpp"
#include "success/global.hpp"
#include "util/failpoint.hpp"
#include "util/rng.hpp"

namespace {

using namespace ccfsp;

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--iterations N] [--seed S]\n"
               "  sweeps N SIGKILL-at-random-moment schedules through the\n"
               "  checkpointed global build; exit 0 iff every schedule\n"
               "  recovers into a machine bit-identical to an uninterrupted\n"
               "  build.\n",
               argv0);
  return 2;
}

bool machines_identical(const GlobalMachine& a, const GlobalMachine& b) {
  if (a.width != b.width || a.words != b.words || a.fields.size() != b.fields.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.fields.size(); ++i) {
    if (a.fields[i].word != b.fields[i].word || a.fields[i].shift != b.fields[i].shift ||
        a.fields[i].mask != b.fields[i].mask) {
      return false;
    }
  }
  return a.tuple_words == b.tuple_words && a.edge_target == b.edge_target &&
         a.edge_action == b.edge_action && a.edge_pair == b.edge_pair &&
         a.edge_offsets == b.edge_offsets;
}

/// Child body: build through the persistence source with a suicide
/// failpoint armed. Exit codes: 0 = completed and bit-identical to the
/// oracle, 3 = completed but WRONG MACHINE, 4 = unexpected error. A SIGKILL
/// death is the intended outcome of most schedules.
int run_child(const Network& net, const std::string& ckpt_path, std::uint64_t seed) {
  const GlobalMachine oracle = build_global(net, Budget::unlimited(), 1);

  Rng rng(seed);
  failpoint::Spec s;
  s.action = failpoint::Action::kCallback;
  s.trigger = failpoint::Trigger::kOnHit;
  s.callback = [](const char*, std::uint64_t) { ::kill(::getpid(), SIGKILL); };
  const char* site;
  switch (rng.below(4)) {
    case 0:
      // Mid-expansion: anywhere in the whole BFS, including past the last
      // checkpoint (work since the checkpoint is lost and redone).
      site = "global.intern_ring";
      s.n = 1 + rng.below(oracle.num_states() + oracle.num_states() / 4);
      break;
    case 1:
      site = "snapshot.write_short";  // power loss mid-payload
      s.n = 1 + rng.below(6);
      break;
    case 2:
      site = "snapshot.fsync";  // committed bytes, death before durability
      s.n = 1 + rng.below(4);
      break;
    default:
      site = "snapshot.rename";  // death at the commit point itself
      s.n = 1 + rng.below(4);
      break;
  }
  failpoint::arm(site, s);

  snapshot::GlobalPersistOptions opt;
  opt.checkpoint_path = ckpt_path;
  opt.resume = true;
  opt.checkpoint_interval = 16 + rng.below(64);
  AnalyzeOptions::GlobalSource source = snapshot::make_global_source(opt);
  try {
    const GlobalMachine built = source(net, Budget::unlimited(), 1);
    failpoint::disarm_all();
    return machines_identical(built, oracle) ? 0 : 3;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "child: unexpected error: %s\n", e.what());
    return 4;
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t iterations = 40;
  std::uint64_t seed = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--iterations") == 0 && i + 1 < argc) {
      iterations = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else {
      return usage(argv[0]);
    }
  }

  const Network net = dining_philosophers(4);
  std::uint64_t kills = 0, resumes_observed = 0;

  for (std::uint64_t iter = 0; iter < iterations; ++iter) {
    const std::string ckpt_path = "/tmp/ccfsp_crash_recovery_" +
                                  std::to_string(::getpid()) + "_" +
                                  std::to_string(iter) + ".ckpt";
    // Relaunch until one child survives its own schedule. Each attempt gets
    // a fresh kill point; attempts resume from whatever checkpoint the
    // previous death left behind (possibly none, possibly torn).
    bool survived = false;
    for (int attempt = 0; attempt < 200 && !survived; ++attempt) {
      const pid_t pid = ::fork();
      if (pid < 0) {
        std::perror("fork");
        return 1;
      }
      if (pid == 0) {
        ::_exit(run_child(net, ckpt_path, seed * 1000003u + iter * 257u + attempt));
      }
      int status = 0;
      if (::waitpid(pid, &status, 0) != pid) {
        std::perror("waitpid");
        return 1;
      }
      if (WIFEXITED(status)) {
        const int code = WEXITSTATUS(status);
        if (code == 0) {
          survived = true;
        } else {
          std::fprintf(stderr,
                       "crash-recovery violation at iteration %llu attempt %d: "
                       "child exit %d (3 = machine mismatch after resume)\n",
                       static_cast<unsigned long long>(iter), attempt, code);
          return 1;
        }
      } else if (WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL) {
        ++kills;
        snapshot::LoadError err;
        if (snapshot::load_checkpoint(ckpt_path, net, &err).has_value()) {
          ++resumes_observed;  // the next attempt will restore this image
        }
      } else {
        std::fprintf(stderr, "child died unexpectedly (status 0x%x)\n", status);
        return 1;
      }
    }
    if (!survived) {
      std::fprintf(stderr, "no child survived 200 attempts at iteration %llu\n",
                   static_cast<unsigned long long>(iter));
      return 1;
    }
    // A completed build consumes its checkpoint.
    snapshot::LoadError err;
    if (snapshot::load_checkpoint(ckpt_path, net, &err).has_value()) {
      std::fprintf(stderr, "iteration %llu: checkpoint not cleaned up after completion\n",
                   static_cast<unsigned long long>(iter));
      return 1;
    }
    ::unlink(ckpt_path.c_str());
  }

  std::printf(
      "{\"crash_recovery\": {\"schedules\": %llu, \"kills\": %llu, "
      "\"loadable_checkpoints_seen\": %llu, \"violations\": 0}}\n",
      static_cast<unsigned long long>(iterations), static_cast<unsigned long long>(kills),
      static_cast<unsigned long long>(resumes_observed));
  return 0;
}
