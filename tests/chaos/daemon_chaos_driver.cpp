// Standalone chaos driver for the ccfspd stack: each schedule boots a fresh
// in-process daemon, arms a randomized failpoint schedule over the server
// seams (server.accept, server.frame_read, server.enqueue, server.worker,
// cache.evict), and turns loose a small swarm of adversarial clients —
// well-formed analyses, pipelined bursts, poisoned frames, oversize
// declarations, slow readers — sometimes pulling the drain lever while they
// are still mid-flight. The CI chaos-smoke job runs
//
//   daemon_chaos_driver --iterations 500 --seed 1
//
// and expects exit 0 plus a machine-readable summary line on stdout.
//
// Invariants held on every schedule:
//   1. Exactly-one-reply-or-shed: on any connection, each reply carries a
//      seq the client actually sent, no seq is answered twice, and the
//      reply count never exceeds the request count. (Sheds and error
//      frames *are* replies; a dropped connection is a clean EOF.)
//   2. Drain completes: daemon.drain() returns — with stalls armed, with
//      clients mid-flight, with poisoned frames buffered — within a
//      10-second bound.
//   3. Post-fault determinism: after disarm, a fresh daemon answers the
//      probe payloads byte-identically to the baseline captured before any
//      fault was armed (fresh connection, so seq restarts at 0).
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "server/client.hpp"
#include "server/daemon.hpp"
#include "server/frame.hpp"
#include "server/service.hpp"
#include "util/failpoint.hpp"
#include "util/rng.hpp"

using namespace ccfsp;
using namespace ccfsp::server;

namespace {

const std::vector<std::string>& probe_payloads() {
  static const std::vector<std::string> payloads = {
      "ANALYZE\n"
      "process P { start p1; p1 -a-> p2; }\n"
      "process Q { start q1; q1 -a-> q2; }\n",
      "ANALYZE --rungs linear,tree\n"
      "process A { start a1; a1 -x-> a2; a2 -y-> a3; }\n"
      "process B { start b1; b1 -x-> b2; b2 -z-> b3; }\n"
      "process C { start c1; c1 -y-> c2; c2 -z-> c3; }\n",
      "ANALYZE --max-states 10 --rungs explicit --retries 0\n"
      "process A { start a1; a1 -x1-> a2; a2 -x2-> a3; }\n"
      "process B { start b1; b1 -x1-> b2; b2 -x3-> b3; }\n"
      "process C { start c1; c1 -x2-> c2; c2 -x3-> c3; }\n",
      "ANALYZE --timeout-ms nope\nnot a model",
  };
  return payloads;
}

struct Stats {
  std::uint64_t schedules = 0;
  std::uint64_t requests = 0;
  std::uint64_t replies = 0;
  std::uint64_t sheds = 0;
  std::uint64_t closed_connections = 0;
  std::uint64_t sites_armed = 0;
  std::uint64_t drained_midflight = 0;
};

/// Extract "seq": N from a reply body; SIZE_MAX when absent.
std::uint64_t seq_of(const std::string& reply) {
  const char* p = std::strstr(reply.c_str(), "\"seq\": ");
  if (!p) return ~std::uint64_t{0};
  return std::strtoull(p + 7, nullptr, 10);
}

/// One adversarial client session; returns a violation string or "".
std::string client_session(std::uint16_t port, Rng& rng, Stats& stats,
                           std::atomic<std::uint64_t>* requests,
                           std::atomic<std::uint64_t>* replies,
                           std::atomic<std::uint64_t>* sheds,
                           std::atomic<std::uint64_t>* closed) {
  BlockingClient client;
  if (!client.connect("127.0.0.1", port)) {
    // A refused/dropped connect (accept fault, drain) is a clean outcome.
    closed->fetch_add(1);
    return "";
  }
  const std::uint64_t style = rng.below(10);
  std::uint64_t sent = 0;
  // Poisoned bytes can accidentally decode as frames (4 random bytes are a
  // syntactically valid header), so only well-formed sessions can bound the
  // reply count; unbounded sessions still enforce seq uniqueness.
  bool bounded = true;
  if (style < 5) {
    // Well-formed, possibly pipelined, burst.
    const std::uint64_t burst = 1 + rng.below(4);
    std::string wire;
    for (std::uint64_t i = 0; i < burst; ++i) {
      wire += encode_frame(probe_payloads()[rng.below(probe_payloads().size())]);
    }
    if (!client.send_raw(wire)) {
      closed->fetch_add(1);
      return "";
    }
    sent = burst;
  } else if (style < 7) {
    // Poisoned bytes.
    std::string junk(rng.below(64), '\0');
    for (auto& b : junk) b = static_cast<char>(rng.below(256));
    client.send_raw(junk);
    client.shutdown_write();
    bounded = false;
  } else if (style == 7) {
    // Oversize declaration.
    client.send_raw(std::string("\x7f\xff\xff\xff", 4));
    sent = 1;  // owed exactly one kOversize reply (then close)
  } else {
    // Slow reader: a real request, but dawdle before reading the reply.
    if (client.send_frame(probe_payloads()[rng.below(2)])) {
      sent = 1;
      std::this_thread::sleep_for(std::chrono::milliseconds(rng.below(30)));
    }
  }
  requests->fetch_add(sent);

  // Read replies until EOF/timeout; hold invariant 1 on what arrives.
  std::set<std::uint64_t> seen;
  std::string reply;
  std::uint64_t got = 0;
  while (client.recv_frame(reply, 5000)) {
    ++got;
    replies->fetch_add(1);
    if (reply.find("\"code\": \"overloaded\"") != std::string::npos) sheds->fetch_add(1);
    const std::uint64_t seq = seq_of(reply);
    if (seq == ~std::uint64_t{0}) return "reply without a seq: " + reply;
    if (!seen.insert(seq).second) {
      return "duplicate reply for seq " + std::to_string(seq);
    }
    if (bounded && got > sent) {
      return "received " + std::to_string(got) + " replies for " + std::to_string(sent) +
             " requests";
    }
    if (bounded && got == sent) break;  // all owed replies arrived; skip the EOF wait
  }
  (void)stats;
  return "";
}

std::string run_schedule(std::uint64_t seed, Stats& stats) {
  Rng rng(seed);
  failpoint::disarm_all();

  // Arm 1-3 random server-seam failpoints.
  static const char* kSites[] = {"server.accept", "server.frame_read", "server.enqueue",
                                 "server.worker", "cache.evict"};
  const std::uint64_t num_armed = 1 + rng.below(3);
  for (std::uint64_t i = 0; i < num_armed; ++i) {
    failpoint::Spec spec;
    switch (rng.below(4)) {
      case 0: spec.action = failpoint::Action::kThrowBudget; break;
      case 1: spec.action = failpoint::Action::kThrowBadAlloc; break;
      case 2:
        spec.action = failpoint::Action::kDelay;
        spec.delay_ms = 1 + rng.below(10);
        break;
      default:
        spec.action = failpoint::Action::kStall;
        spec.delay_ms = 50;  // hard cap; drain releases earlier
        break;
    }
    switch (rng.below(3)) {
      case 0:
        spec.trigger = failpoint::Trigger::kOnHit;
        spec.n = 1 + rng.below(3);
        break;
      case 1:
        spec.trigger = failpoint::Trigger::kEveryK;
        spec.n = 2 + rng.below(3);
        break;
      default:
        spec.trigger = failpoint::Trigger::kProbability;
        spec.num = 1;
        spec.den = 2 + rng.below(3);
        spec.seed = seed;
        break;
    }
    failpoint::arm(kSites[rng.below(5)], spec);
    ++stats.sites_armed;
  }

  ServiceConfig scfg;
  scfg.workers = 2;
  scfg.queue_capacity = 4;
  scfg.default_timeout_ms = 500;
  scfg.wedge_grace_ms = 100;
  scfg.supervisor_poll_ms = 10;
  AnalysisService service(scfg);
  service.start();
  DaemonConfig dcfg;
  dcfg.max_frame_bytes = 4096;
  dcfg.read_timeout_ms = 400;
  dcfg.write_timeout_ms = 400;
  Daemon daemon(dcfg, service);
  std::string error;
  if (!daemon.start(&error)) return "daemon failed to start: " + error;

  const std::uint64_t num_clients = 2 + rng.below(4);
  const bool drain_midflight = rng.below(4) == 0;
  std::vector<std::thread> threads;
  std::vector<std::string> violations(num_clients);
  std::atomic<std::uint64_t> requests{0}, replies{0}, sheds{0}, closed{0};
  for (std::uint64_t c = 0; c < num_clients; ++c) {
    const std::uint64_t client_seed = seed * 1000003 + c;
    threads.emplace_back([&, c, client_seed] {
      Rng crng(client_seed);
      violations[c] =
          client_session(daemon.port(), crng, stats, &requests, &replies, &sheds, &closed);
    });
  }

  if (drain_midflight) {
    std::this_thread::sleep_for(std::chrono::milliseconds(rng.below(20)));
    ++stats.drained_midflight;
  } else {
    for (auto& t : threads) t.join();
  }

  // Invariant 2: drain completes, bounded.
  const auto d0 = std::chrono::steady_clock::now();
  daemon.drain();
  const double drain_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - d0)
          .count();
  for (auto& t : threads) {
    if (t.joinable()) t.join();
  }
  if (drain_ms > 10000) {
    return "drain took " + std::to_string(drain_ms) + " ms";
  }
  for (auto& v : violations) {
    if (!v.empty()) return v;
  }

  failpoint::disarm_all();
  stats.requests += requests.load();
  stats.replies += replies.load();
  stats.sheds += sheds.load();
  stats.closed_connections += closed.load();
  ++stats.schedules;
  return "";
}

/// Capture (or verify) the disarmed baseline: one fresh daemon, one fresh
/// connection per probe payload, replies recorded byte-for-byte.
std::string baseline_replies(std::vector<std::string>* out) {
  AnalysisService service(ServiceConfig{});
  service.start();
  Daemon daemon(DaemonConfig{}, service);
  std::string error;
  if (!daemon.start(&error)) return "baseline daemon failed to start: " + error;
  for (const std::string& payload : probe_payloads()) {
    BlockingClient client;
    if (!client.connect("127.0.0.1", daemon.port())) return "baseline connect failed";
    if (!client.send_frame(payload)) return "baseline send failed";
    std::string reply;
    if (!client.recv_frame(reply, 30000)) return "baseline recv failed";
    out->push_back(reply);
  }
  daemon.drain();
  return "";
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t iterations = 500;
  std::uint64_t seed = 1;
  std::uint64_t verify_every = 10;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--iterations") == 0 && i + 1 < argc) {
      iterations = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--verify-every") == 0 && i + 1 < argc) {
      verify_every = std::strtoull(argv[++i], nullptr, 10);
      if (verify_every == 0) verify_every = 1;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--iterations N] [--seed S] [--verify-every K]\n"
                   "  sweeps N randomized failpoint schedules through a live\n"
                   "  ccfspd instance; exit 0 iff every schedule upholds the\n"
                   "  invariants (exactly-one-reply-or-shed, bounded drain,\n"
                   "  byte-identical disarmed replies every K schedules).\n",
                   argv[0]);
      return 2;
    }
  }

  std::vector<std::string> baseline;
  if (std::string err = baseline_replies(&baseline); !err.empty()) {
    std::fprintf(stderr, "%s\n", err.c_str());
    return 1;
  }

  Stats stats;
  std::uint64_t determinism_checks = 0;
  for (std::uint64_t i = 0; i < iterations; ++i) {
    const std::string violation = run_schedule(seed + i, stats);
    if (!violation.empty()) {
      std::fprintf(stderr, "daemon chaos violation at iteration %llu (seed %llu):\n%s\n",
                   static_cast<unsigned long long>(i),
                   static_cast<unsigned long long>(seed + i), violation.c_str());
      return 1;
    }
    if ((i + 1) % verify_every == 0) {
      // Invariant 3: disarmed re-runs are byte-identical to the baseline.
      std::vector<std::string> again;
      if (std::string err = baseline_replies(&again); !err.empty()) {
        std::fprintf(stderr, "post-fault verify failed at iteration %llu: %s\n",
                     static_cast<unsigned long long>(i), err.c_str());
        return 1;
      }
      for (std::size_t p = 0; p < baseline.size(); ++p) {
        if (again[p] != baseline[p]) {
          std::fprintf(stderr,
                       "determinism violation at iteration %llu, probe %zu:\n"
                       "  baseline: %s\n  re-run:   %s\n",
                       static_cast<unsigned long long>(i), p, baseline[p].c_str(),
                       again[p].c_str());
          return 1;
        }
      }
      ++determinism_checks;
    }
    if ((i + 1) % 50 == 0) {
      std::fprintf(stderr, "  %llu/%llu schedules ok\n",
                   static_cast<unsigned long long>(i + 1),
                   static_cast<unsigned long long>(iterations));
    }
  }

  std::printf(
      "{\"daemon_chaos\": {\"schedules\": %llu, \"requests\": %llu, \"replies\": %llu, "
      "\"sheds\": %llu, \"closed_connections\": %llu, \"sites_armed\": %llu, "
      "\"drained_midflight\": %llu, \"determinism_checks\": %llu, \"violations\": 0}}\n",
      static_cast<unsigned long long>(stats.schedules),
      static_cast<unsigned long long>(stats.requests),
      static_cast<unsigned long long>(stats.replies),
      static_cast<unsigned long long>(stats.sheds),
      static_cast<unsigned long long>(stats.closed_connections),
      static_cast<unsigned long long>(stats.sites_armed),
      static_cast<unsigned long long>(stats.drained_midflight),
      static_cast<unsigned long long>(determinism_checks));
  return 0;
}
