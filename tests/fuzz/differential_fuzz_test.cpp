// Differential fuzzing of the flat global-machine builder against the
// std::map reference oracle, under randomly armed failpoint schedules.
// The contract being fuzzed:
//   - when both builders decide, the machines are bit-identical (state
//     numbering, edge order, everything);
//   - whatever a schedule injects, each builder's outcome is a member of
//     the taxonomy (decided / budget-exhausted / invalid-input) — never a
//     crash, a terminate, or a half-built machine;
//   - after disarming, a clean re-run of either builder reproduces the
//     never-faulted machine exactly (no state leaks across runs).
// Inputs are seeded random networks plus the committed seed corpus under
// tests/fuzz/corpus/ (hand-written Definition 2 networks that previously
// exercised interesting paths).
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "fsp/parse.hpp"
#include "network/generate.hpp"
#include "network/network.hpp"
#include "success/global.hpp"
#include "util/failpoint.hpp"
#include "util/rng.hpp"

namespace ccfsp {
namespace {

bool same_machine(const GlobalMachine& a, const GlobalMachine& b) {
  return a.width == b.width && a.words == b.words && a.tuple_words == b.tuple_words &&
         a.edge_target == b.edge_target && a.edge_action == b.edge_action &&
         a.edge_pair == b.edge_pair && a.edge_offsets == b.edge_offsets;
}

bool taxonomy_valid(OutcomeStatus s) {
  return s == OutcomeStatus::kDecided || s == OutcomeStatus::kBudgetExhausted ||
         s == OutcomeStatus::kUnsupported || s == OutcomeStatus::kInvalidInput;
}

/// A random failpoint schedule over the sites the builders cross. Returned
/// as a config string so the fuzzer exercises the parse_and_arm grammar on
/// every iteration, exactly as the CLI and CCFSP_FAILPOINTS would.
std::string random_schedule(Rng& rng) {
  static const char* const kSites[] = {"global.intern_ring", "global.worker", "global.level",
                                       "interner.tuple_grow"};
  static const char* const kActions[] = {"budget:states", "budget:bytes", "budget:deadline",
                                         "bad_alloc", "delay:1"};
  std::string config;
  const std::size_t entries = rng.below(3);  // 0..2 armed sites
  for (std::size_t e = 0; e < entries; ++e) {
    if (!config.empty()) config += ';';
    config += kSites[rng.below(std::size(kSites))];
    config += '=';
    config += kActions[rng.below(std::size(kActions))];
    switch (rng.below(3)) {
      case 0: config += "@hit:" + std::to_string(rng.range(1, 40)); break;
      case 1: config += "@every:" + std::to_string(rng.range(2, 20)); break;
      case 2: config += "@prob:1/8:" + std::to_string(rng.next() & 0xffff); break;
    }
  }
  return config;
}

Network random_network(Rng& rng) {
  NetworkGenOptions opt;
  opt.num_processes = static_cast<std::size_t>(rng.range(2, 5));
  opt.states_per_process = static_cast<std::size_t>(rng.range(3, 6));
  opt.symbols_per_edge = static_cast<std::size_t>(rng.range(1, 2));
  switch (rng.below(4)) {
    case 0: return random_tree_network(rng, opt);
    case 1: {
      opt.num_processes = static_cast<std::size_t>(rng.range(3, 5));
      return random_ring_network(rng, opt);
    }
    case 2: return random_cyclic_tree_network(rng, opt);
    default:
      return random_linear_chain_network(rng, static_cast<std::size_t>(rng.range(2, 4)),
                                         static_cast<std::size_t>(rng.range(2, 5)));
  }
}

/// One differential round: flat (sequential and 4-thread) vs the reference
/// builder, same budget, same schedule re-armed before each run so every
/// builder sees identical trigger state.
void differential_round(const Network& net, const std::string& schedule, std::size_t cap) {
  const Budget budget = cap == 0 ? Budget::unlimited() : Budget::with_states(cap);
  std::string err;

  ASSERT_TRUE(failpoint::parse_and_arm(schedule, &err)) << schedule << ": " << err;
  auto flat = run_guarded([&] { return build_global(net, budget.fork(), 1); });
  failpoint::disarm_all();

  ASSERT_TRUE(failpoint::parse_and_arm(schedule, &err)) << schedule << ": " << err;
  auto par = run_guarded([&] { return build_global(net, budget.fork(), 4); });
  failpoint::disarm_all();

  ASSERT_TRUE(failpoint::parse_and_arm(schedule, &err)) << schedule << ": " << err;
  auto ref = run_guarded([&] { return build_global_reference(net, budget.fork()); });
  failpoint::disarm_all();

  ASSERT_TRUE(taxonomy_valid(flat.status())) << schedule;
  ASSERT_TRUE(taxonomy_valid(par.status())) << schedule;
  ASSERT_TRUE(taxonomy_valid(ref.status())) << schedule;

  if (flat.status() == OutcomeStatus::kDecided && ref.status() == OutcomeStatus::kDecided) {
    EXPECT_TRUE(same_machine(flat.value(), ref.value())) << schedule;
  }
  if (flat.status() == OutcomeStatus::kDecided && par.status() == OutcomeStatus::kDecided) {
    EXPECT_TRUE(same_machine(flat.value(), par.value())) << schedule;
  }

  // Clean re-runs (nothing armed) must agree with each other bit for bit —
  // no residue from the faulted runs.
  auto clean_flat = run_guarded([&] { return build_global(net, budget.fork(), 1); });
  auto clean_ref = run_guarded([&] { return build_global_reference(net, budget.fork()); });
  ASSERT_EQ(clean_flat.status(), clean_ref.status()) << schedule;
  if (clean_flat.status() == OutcomeStatus::kDecided) {
    EXPECT_TRUE(same_machine(clean_flat.value(), clean_ref.value())) << schedule;
  }
}

TEST(DifferentialFuzz, RandomNetworksUnderRandomFailpointSchedules) {
  failpoint::ScopedDisarm guard;
  Rng rng(0xd1ffe7);
  for (int iter = 0; iter < 60; ++iter) {
    Network net = random_network(rng);
    const std::string schedule = random_schedule(rng);
    const std::size_t cap = rng.chance(1, 3) ? static_cast<std::size_t>(rng.range(1, 200)) : 0;
    SCOPED_TRACE("iter=" + std::to_string(iter) + " schedule='" + schedule + "'");
    differential_round(net, schedule, cap);
  }
}

TEST(DifferentialFuzz, SeedCorpusUnderRandomFailpointSchedules) {
  failpoint::ScopedDisarm guard;
  const std::filesystem::path corpus = std::filesystem::path(CCFSP_FUZZ_CORPUS_DIR);
  ASSERT_TRUE(std::filesystem::is_directory(corpus)) << corpus;
  Rng rng(0xc0ff5);
  std::size_t files = 0;
  for (const auto& entry : std::filesystem::directory_iterator(corpus)) {
    if (entry.path().extension() != ".ccfsp") continue;
    ++files;
    std::ifstream in(entry.path());
    std::ostringstream ss;
    ss << in.rdbuf();
    auto alphabet = std::make_shared<Alphabet>();
    Network net(alphabet, parse_processes(ss.str(), alphabet));
    for (int round = 0; round < 8; ++round) {
      SCOPED_TRACE(entry.path().filename().string() + " round=" + std::to_string(round));
      differential_round(net, random_schedule(rng), round % 2 == 0 ? 0 : 64);
    }
  }
  EXPECT_GE(files, 4u) << "seed corpus went missing";
}

}  // namespace
}  // namespace ccfsp
