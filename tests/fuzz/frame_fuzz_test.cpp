// Wire-level fuzzing of the ccfspd ingress path: every *.bin file in the
// corpus, plus seeded random byte streams, is fed (a) to FrameParser and
// parse_request directly and (b) verbatim into a live daemon's socket. The
// property under test is total robustness: no crash, no hang, no missing
// close — a malformed stream either produces taxonomy-coded replies or a
// clean EOF, and the daemon stays healthy for the next connection. The
// corpus is deliberately adversarial: truncated headers, sign-bit and
// maximal length declarations, frames nested inside frames, NUL bytes,
// binary model text, and pipelining bursts.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "server/client.hpp"
#include "server/daemon.hpp"
#include "server/frame.hpp"
#include "server/protocol.hpp"
#include "util/rng.hpp"

namespace ccfsp::server {
namespace {

std::vector<std::filesystem::path> corpus_files() {
  std::vector<std::filesystem::path> files;
  for (const auto& entry : std::filesystem::directory_iterator(CCFSP_FUZZ_CORPUS_DIR)) {
    if (entry.path().extension() == ".bin") files.push_back(entry.path());
  }
  EXPECT_GE(files.size(), 10u) << "fuzz corpus went missing";
  std::sort(files.begin(), files.end());
  return files;
}

std::string slurp(const std::filesystem::path& p) {
  std::ifstream in(p, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in), {});
}

/// Drive one byte stream through the parser stack; every complete frame is
/// also pushed through parse_request. Nothing may throw.
void replay_through_parser(const std::string& bytes, std::size_t max_frame) {
  FrameParser parser(max_frame);
  // Feed in uneven chunks so header/payload boundaries land mid-read.
  std::size_t off = 0, chunk = 1;
  std::string frame;
  while (off < bytes.size()) {
    const std::size_t n = std::min(chunk, bytes.size() - off);
    parser.feed(bytes.data() + off, n);
    off += n;
    chunk = chunk * 2 + 1;
    for (;;) {
      const FrameParser::Status st = parser.next(frame);
      if (st == FrameParser::Status::kFrame) {
        ParsedRequest req = parse_request(frame);
        if (req.command == Command::kInvalid) {
          EXPECT_FALSE(req.error.empty());
        }
        continue;
      }
      if (st == FrameParser::Status::kOversize) return;  // sticky refusal
      break;
    }
  }
}

TEST(FrameFuzz, CorpusNeverThrowsInParserStack) {
  for (const auto& path : corpus_files()) {
    SCOPED_TRACE(path.filename().string());
    const std::string bytes = slurp(path);
    EXPECT_NO_THROW(replay_through_parser(bytes, 1u << 20));
    EXPECT_NO_THROW(replay_through_parser(bytes, 64));  // tiny cap: oversize paths
  }
}

TEST(FrameFuzz, RandomStreamsNeverThrowInParserStack) {
  Rng rng(20250807);
  for (int iter = 0; iter < 2000; ++iter) {
    const std::size_t len = rng.below(200);
    std::string bytes(len, '\0');
    for (auto& b : bytes) b = static_cast<char>(rng.below(256));
    // Half the streams get a plausible frame header up front so payload
    // handling (not just header rejection) is exercised.
    if (len >= 4 && rng.below(2) == 0) {
      const std::uint32_t declared = static_cast<std::uint32_t>(rng.below(260));
      bytes[0] = 0;
      bytes[1] = 0;
      bytes[2] = static_cast<char>(declared >> 8);
      bytes[3] = static_cast<char>(declared & 0xff);
    }
    EXPECT_NO_THROW(replay_through_parser(bytes, 128)) << "iter " << iter;
  }
}

/// The live-daemon property: after any byte stream, the connection ends in
/// a bounded number of reply frames followed by EOF (or just EOF) — and the
/// daemon still serves the next client.
class DaemonFuzz : public ::testing::Test {
 protected:
  void SetUp() override {
    DaemonConfig dcfg;
    dcfg.max_frame_bytes = 4096;
    dcfg.read_timeout_ms = 300;  // reap quickly: fuzz streams often dangle
    ServiceConfig scfg;
    scfg.workers = 2;
    scfg.default_timeout_ms = 500;
    service_ = std::make_unique<AnalysisService>(scfg);
    daemon_ = std::make_unique<Daemon>(dcfg, *service_);
    service_->start();
    std::string error;
    ASSERT_TRUE(daemon_->start(&error)) << error;
  }
  void TearDown() override { daemon_->drain(); }

  /// Send bytes, then drain replies until EOF. Returns false on a hang
  /// (frames kept arriving past any sane bound).
  bool poke(const std::string& bytes) {
    BlockingClient client;
    if (!client.connect("127.0.0.1", daemon_->port())) return false;
    client.send_raw(bytes);
    client.shutdown_write();
    std::string reply;
    for (int frames = 0; client.recv_frame(reply, 3000); ++frames) {
      if (frames > 256) return false;
    }
    return true;
  }

  void expect_healthy() {
    BlockingClient client;
    ASSERT_TRUE(client.connect("127.0.0.1", daemon_->port()));
    ASSERT_TRUE(client.send_frame("PING"));
    std::string reply;
    ASSERT_TRUE(client.recv_frame(reply, 5000));
    EXPECT_NE(reply.find("\"pong\""), std::string::npos);
  }

  std::unique_ptr<AnalysisService> service_;
  std::unique_ptr<Daemon> daemon_;
};

TEST_F(DaemonFuzz, CorpusNeverWedgesTheDaemon) {
  for (const auto& path : corpus_files()) {
    SCOPED_TRACE(path.filename().string());
    EXPECT_TRUE(poke(slurp(path)));
  }
  expect_healthy();
}

TEST_F(DaemonFuzz, RandomStreamsNeverWedgeTheDaemon) {
  Rng rng(0xfeedface);
  for (int iter = 0; iter < 24; ++iter) {
    std::string bytes(rng.below(96), '\0');
    for (auto& b : bytes) b = static_cast<char>(rng.below(256));
    EXPECT_TRUE(poke(bytes)) << "iter " << iter;
  }
  expect_healthy();
}

}  // namespace
}  // namespace ccfsp::server
