// Snapshot-loader fuzzing: every *.snap file in the corpus, plus generated
// truncations, bit flips, and random byte blobs, is pushed through every
// load path — the container reader for each Kind, load_global,
// load_checkpoint, and load_daemon_cache. The property under test is the
// recovery contract: loading never crashes, never throws, and every
// rejection carries a structured LoadError reason; a malformed file can
// only ever cost a cold start.
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "network/families.hpp"
#include "snapshot/cache_io.hpp"
#include "snapshot/global_io.hpp"
#include "snapshot/snapshot.hpp"
#include "util/rng.hpp"

namespace ccfsp::snapshot {
namespace {

std::vector<std::filesystem::path> snapshot_corpus() {
  std::vector<std::filesystem::path> files;
  const auto dir = std::filesystem::path(CCFSP_FUZZ_CORPUS_DIR) / "snapshot";
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() == ".snap") files.push_back(entry.path());
  }
  EXPECT_GE(files.size(), 10u) << "snapshot fuzz corpus went missing";
  std::sort(files.begin(), files.end());
  return files;
}

std::string slurp(const std::filesystem::path& p) {
  std::ifstream in(p, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in), {});
}

/// Push one byte image through every loader. Each loader either validates
/// fully or reports a structured reason; nothing may throw or crash. The
/// reason enum is exercised through to_string so a garbage enum value would
/// trip the assertion rather than slip by.
void replay_through_loaders(const std::string& bytes, const Network& net) {
  for (Kind kind : {Kind::kGlobalMachine, Kind::kBuildCheckpoint, Kind::kDaemonCache}) {
    LoadError err;
    auto r = Reader::load_bytes(bytes, kind, &err);
    if (!r.has_value()) {
      EXPECT_NE(to_string(err.reason), nullptr);
    }
  }
  // The typed loaders only take paths; stage the image in a temp file.
  const std::string path =
      "/tmp/ccfsp_snapshot_fuzz_" + std::to_string(::getpid()) + ".snap";
  std::ofstream(path, std::ios::binary).write(bytes.data(), bytes.size());
  {
    LoadError err;
    auto g = load_global(path, net, &err);
    if (!g.has_value()) EXPECT_NE(to_string(err.reason), nullptr);
  }
  {
    LoadError err;
    auto c = load_checkpoint(path, net, &err);
    if (!c.has_value()) EXPECT_NE(to_string(err.reason), nullptr);
  }
  {
    LoadError err;
    auto d = load_daemon_cache(path, &err);
    if (!d.has_value()) EXPECT_NE(to_string(err.reason), nullptr);
  }
  ::unlink(path.c_str());
}

TEST(SnapshotFuzz, CorpusNeverCrashesALoader) {
  const Network net = dining_philosophers(3);
  for (const auto& path : snapshot_corpus()) {
    SCOPED_TRACE(path.filename().string());
    EXPECT_NO_THROW(replay_through_loaders(slurp(path), net));
  }
}

TEST(SnapshotFuzz, MutationsOfAValidSnapshotNeverCrash) {
  // Start from a genuine machine snapshot and mutate it every way the
  // corpus can't enumerate: every truncation length on a stride, random bit
  // flips, random splices.
  const Network net = dining_philosophers(3);
  const GlobalMachine g = build_global(net, Budget::unlimited(), 1);
  const std::string path =
      "/tmp/ccfsp_snapshot_fuzz_seed_" + std::to_string(::getpid()) + ".snap";
  std::string error;
  ASSERT_TRUE(save_global(g, net, path, &error)) << error;
  const std::string valid = slurp(path);
  ::unlink(path.c_str());
  ASSERT_FALSE(valid.empty());

  for (std::size_t n = 0; n < valid.size(); n += 7) {
    replay_through_loaders(valid.substr(0, n), net);
  }
  Rng rng(0x5eed5a9);
  for (int iter = 0; iter < 200; ++iter) {
    std::string bytes = valid;
    const int flips = 1 + static_cast<int>(rng.below(4));
    for (int i = 0; i < flips; ++i) {
      bytes[rng.below(bytes.size())] ^= static_cast<char>(1u << rng.below(8));
    }
    EXPECT_NO_THROW(replay_through_loaders(bytes, net)) << "iter " << iter;
  }
  for (int iter = 0; iter < 50; ++iter) {
    // Splice a random window of the valid file into a random offset.
    std::string bytes = valid;
    const std::size_t src = rng.below(bytes.size());
    const std::size_t dst = rng.below(bytes.size());
    const std::size_t len = std::min(rng.below(64) + 1, bytes.size() - std::max(src, dst));
    bytes.replace(dst, len, valid.substr(src, len));
    EXPECT_NO_THROW(replay_through_loaders(bytes, net)) << "iter " << iter;
  }
}

TEST(SnapshotFuzz, RandomBlobsNeverCrash) {
  const Network net = dining_philosophers(3);
  Rng rng(0xca5cade);
  for (int iter = 0; iter < 300; ++iter) {
    std::string bytes(rng.below(512), '\0');
    for (auto& b : bytes) b = static_cast<char>(rng.below(256));
    // Half get a real magic so the parser advances into framing territory.
    if (bytes.size() >= 8 && rng.below(2) == 0) bytes.replace(0, 8, "CCFSPSNP");
    EXPECT_NO_THROW(replay_through_loaders(bytes, net)) << "iter " << iter;
  }
}

}  // namespace
}  // namespace ccfsp::snapshot
