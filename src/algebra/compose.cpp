#include "algebra/compose.hpp"

#include <algorithm>
#include <map>
#include <memory>
#include <stdexcept>
#include <unordered_map>

#include "util/graph.hpp"

namespace ccfsp {

namespace {

std::vector<StateAtom> merged_atoms(const Fsp& p1, StateId s1, const Fsp& p2, StateId s2) {
  std::vector<StateAtom> atoms = p1.atoms(s1);
  const auto& a2 = p2.atoms(s2);
  atoms.insert(atoms.end(), a2.begin(), a2.end());
  std::sort(atoms.begin(), atoms.end());
  return atoms;
}

std::string pair_label(const Fsp& p1, StateId s1, const Fsp& p2, StateId s2) {
  return "(" + p1.state_label(s1) + "," + p2.state_label(s2) + ")";
}

void check_composable(const Fsp& p1, const Fsp& p2) {
  if (p1.alphabet() != p2.alphabet()) {
    throw std::logic_error("compose: processes over different Alphabets");
  }
}

/// Add the Definition 3 transitions out of (q1, q2) to `out` given the two
/// component states; `shared` = Sigma1 ∩ Sigma2.
template <typename Emit>
void product_moves(const Fsp& p1, StateId q1, const Fsp& p2, StateId q2,
                   const ActionSet& sigma1, const ActionSet& sigma2, Emit&& emit) {
  for (const auto& t : p1.out(q1)) {
    if (t.action == kTau || !sigma2.test(t.action)) {
      emit(t.action, t.target, q2);
    }
  }
  for (const auto& t : p2.out(q2)) {
    if (t.action == kTau || !sigma1.test(t.action)) {
      emit(t.action, q1, t.target);
    }
  }
  for (const auto& t1 : p1.out(q1)) {
    if (t1.action == kTau || !sigma2.test(t1.action)) continue;
    for (const auto& t2 : p2.out(q2)) {
      if (t2.action == t1.action) emit(t1.action, t1.target, t2.target);
    }
  }
}

void declare_sigma(Fsp& f, const Fsp& p1, const Fsp& p2, bool hide_shared) {
  ActionSet sigma1 = p1.sigma_set();
  ActionSet sigma2 = p2.sigma_set();
  ActionSet target = hide_shared ? (sigma1 | sigma2) - (sigma1 & sigma2) : (sigma1 | sigma2);
  ActionSet used(f.alphabet()->size());
  for (StateId s = 0; s < f.num_states(); ++s) used |= f.out_actions(s);
  for (std::size_t a : (target - used).to_indices()) {
    f.declare_action(static_cast<ActionId>(a));
  }
}

/// declare_sigma with the product's used-action set tracked incrementally
/// by the emit path, skipping the O(states x alphabet) rescan of the
/// finished product (it allocates one ActionSet per state). full_product
/// keeps the rescanning version: it emits from unreachable states too, so
/// its emit-path set would not equal its out_actions union.
void declare_sigma_with_used(Fsp& f, const Fsp& p1, const Fsp& p2, bool hide_shared,
                             const ActionSet& used) {
  ActionSet sigma1 = p1.sigma_set();
  ActionSet sigma2 = p2.sigma_set();
  ActionSet target = hide_shared ? (sigma1 | sigma2) - (sigma1 & sigma2) : (sigma1 | sigma2);
  for (std::size_t a : (target - used).to_indices()) {
    f.declare_action(static_cast<ActionId>(a));
  }
}

/// Shared BFS core of reachable_product and compose. `hide_shared` maps
/// every Sigma1 ∩ Sigma2 action to tau *while the product is built* —
/// hiding only relabels transitions, so the reachable state set and its
/// BFS numbering are identical either way and compose no longer needs a
/// second rebuild pass over the finished product. Labels are lazy: the
/// product keeps an (s1, s2) pair per state plus label *snapshots* of the
/// components, so n-ary folds stop materializing O(states) strings per
/// level and stop retaining whole fold intermediates for label access.
Fsp product_impl(const Fsp& p1, const Fsp& p2, bool hide_shared, const char* sep,
                 const Budget* budget) {
  ActionSet sigma1 = p1.sigma_set();
  ActionSet sigma2 = p2.sigma_set();
  ActionSet shared = sigma1 & sigma2;

  Fsp out(p1.alphabet(), "(" + p1.name() + sep + p2.name() + ")");
  auto pairs = std::make_shared<std::vector<std::pair<StateId, StateId>>>();
  out.set_label_provider(
      [snap1 = p1.label_snapshot(), snap2 = p2.label_snapshot(), pairs](StateId s) {
        if (s >= pairs->size()) return std::string();
        auto [s1, s2] = (*pairs)[s];
        return "(" + snap1(s1) + "," + snap2(s2) + ")";
      });

  std::unordered_map<std::uint64_t, StateId> ids;
  auto key = [&](StateId s1, StateId s2) {
    return (static_cast<std::uint64_t>(s1) << 32) | s2;
  };
  std::vector<std::pair<StateId, StateId>> work;
  auto intern = [&](StateId s1, StateId s2) {
    auto [it, fresh] = ids.try_emplace(key(s1, s2), 0);
    if (fresh) {
      // Atom vector + pair record + map node dominate the footprint.
      if (budget) budget->charge(1, 160, "reachable_product");
      it->second = out.add_state();
      out.set_atoms(it->second, merged_atoms(p1, s1, p2, s2));
      pairs->emplace_back(s1, s2);
      work.emplace_back(s1, s2);
    }
    return it->second;
  };

  StateId start = intern(p1.start(), p2.start());
  out.set_start(start);
  ActionSet used(out.alphabet()->size());
  while (!work.empty()) {
    auto [s1, s2] = work.back();
    work.pop_back();
    StateId from = ids.at(key(s1, s2));
    product_moves(p1, s1, p2, s2, sigma1, sigma2, [&](ActionId a, StateId t1, StateId t2) {
      if (hide_shared && a != kTau && shared.test(a)) a = kTau;
      if (a != kTau) used.set(a);
      out.add_transition(from, a, intern(t1, t2));
    });
  }
  declare_sigma_with_used(out, p1, p2, hide_shared, used);
  return out;
}


}  // namespace

Fsp full_product(const Fsp& p1, const Fsp& p2) {
  check_composable(p1, p2);
  ActionSet sigma1 = p1.sigma_set();
  ActionSet sigma2 = p2.sigma_set();

  Fsp out(p1.alphabet(), "(" + p1.name() + "x" + p2.name() + ")");
  auto pair_id = [&](StateId s1, StateId s2) {
    return static_cast<StateId>(s1 * p2.num_states() + s2);
  };
  for (StateId s1 = 0; s1 < p1.num_states(); ++s1) {
    for (StateId s2 = 0; s2 < p2.num_states(); ++s2) {
      StateId s = out.add_state(pair_label(p1, s1, p2, s2));
      out.set_atoms(s, merged_atoms(p1, s1, p2, s2));
    }
  }
  for (StateId s1 = 0; s1 < p1.num_states(); ++s1) {
    for (StateId s2 = 0; s2 < p2.num_states(); ++s2) {
      product_moves(p1, s1, p2, s2, sigma1, sigma2, [&](ActionId a, StateId t1, StateId t2) {
        out.add_transition(pair_id(s1, s2), a, pair_id(t1, t2));
      });
    }
  }
  out.set_start(pair_id(p1.start(), p2.start()));
  declare_sigma(out, p1, p2, /*hide_shared=*/false);
  return out;
}

Fsp reachable_product(const Fsp& p1, const Fsp& p2, const Budget* budget) {
  check_composable(p1, p2);
  return product_impl(p1, p2, /*hide_shared=*/false, "&", budget);
}

Fsp compose(const Fsp& p1, const Fsp& p2, const Budget* budget) {
  check_composable(p1, p2);
  return product_impl(p1, p2, /*hide_shared=*/true, "||", budget);
}

Fsp add_divergence_leaves(const Fsp& p) {
  // tau-subgraph SCC analysis: a state is tau-divergent iff it can reach,
  // through tau-moves, a tau-cycle (a nontrivial tau-SCC or a tau-self-loop).
  Digraph tau_graph(p.num_states());
  for (StateId s = 0; s < p.num_states(); ++s) {
    for (const auto& t : p.out(s)) {
      if (t.action == kTau) tau_graph.add_edge(s, t.target);
    }
  }
  auto scc = tau_graph.scc();
  std::vector<std::size_t> comp_size(scc.num_components, 0);
  for (StateId s = 0; s < p.num_states(); ++s) ++comp_size[scc.component[s]];
  std::vector<std::size_t> cycle_states;
  for (StateId s = 0; s < p.num_states(); ++s) {
    bool in_cycle = comp_size[scc.component[s]] > 1;
    if (!in_cycle) {
      for (const auto& t : p.out(s)) {
        if (t.action == kTau && t.target == s) in_cycle = true;
      }
    }
    if (in_cycle) cycle_states.push_back(s);
  }
  if (cycle_states.empty()) return p;

  std::vector<bool> divergent = tau_graph.co_reachable(cycle_states);

  Fsp out = p;
  StateId omega = out.add_state("Ω" + std::to_string(p.uid()));
  for (StateId s = 0; s < p.num_states(); ++s) {
    if (divergent[s]) out.add_transition(s, kTau, omega);
  }
  return out;
}

Fsp cyclic_compose(const Fsp& p1, const Fsp& p2, const Budget* budget) {
  return add_divergence_leaves(compose(p1, p2, budget));
}

Fsp compose_all(const std::vector<const Fsp*>& processes, bool cyclic, const Budget* budget) {
  if (processes.empty()) throw std::invalid_argument("compose_all: no processes");
  Fsp acc = *processes[0];
  for (std::size_t i = 1; i < processes.size(); ++i) {
    acc = cyclic ? cyclic_compose(acc, *processes[i], budget)
                 : compose(acc, *processes[i], budget);
  }
  return acc;
}

bool isomorphic_by_atoms(const Fsp& a, const Fsp& b) {
  if (a.num_states() != b.num_states()) return false;
  std::map<std::vector<StateAtom>, StateId> of_b;
  for (StateId s = 0; s < b.num_states(); ++s) {
    if (!of_b.emplace(b.atoms(s), s).second) return false;  // duplicate atoms in b
  }
  std::vector<StateId> map_ab(a.num_states());
  for (StateId s = 0; s < a.num_states(); ++s) {
    auto it = of_b.find(a.atoms(s));
    if (it == of_b.end()) return false;
    map_ab[s] = it->second;
  }
  if (map_ab[a.start()] != b.start()) return false;
  auto lt = [](const Transition& x, const Transition& y) {
    return std::tie(x.action, x.target) < std::tie(y.action, y.target);
  };
  // Sort every b transition list once; b's targets need no remapping, so
  // the sorted lists are loop-invariant across all of a's states.
  std::vector<std::vector<Transition>> b_sorted(b.num_states());
  for (StateId s = 0; s < b.num_states(); ++s) {
    b_sorted[s] = b.out(s);
    std::sort(b_sorted[s].begin(), b_sorted[s].end(), lt);
  }
  std::vector<Transition> ta;
  for (StateId s = 0; s < a.num_states(); ++s) {
    ta.clear();
    for (const auto& t : a.out(s)) ta.push_back({t.action, map_ab[t.target]});
    std::sort(ta.begin(), ta.end(), lt);
    if (ta != b_sorted[map_ab[s]]) return false;
  }
  return true;
}

}  // namespace ccfsp
