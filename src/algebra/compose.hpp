// The composition algebra of Section 2.2: the full product P1 x P2, the
// reachable restriction P1 ⊓ P2, and the composition P1 || P2 which hides
// the shared handshake symbols, plus the Section 4 variant ||' for cyclic
// processes that materializes tau-divergence as fresh leaves.
#pragma once

#include <vector>

#include "fsp/fsp.hpp"
#include "util/budget.hpp"

namespace ccfsp {

/// Definition 3's P1 x P2 on the full state set K1 x K2 (including
/// unreachable pairs). Mostly of pedagogical value; analysis code uses
/// reachable_product.
Fsp full_product(const Fsp& p1, const Fsp& p2);

/// P1 ⊓ P2: the product restricted to states reachable from (start1, start2),
/// built directly by BFS. Shared symbols remain visible. When `budget` is
/// given, every interned product state is charged against it — the product
/// can be |K1|*|K2| and n-ary folds of it are a primary blow-up path.
Fsp reachable_product(const Fsp& p1, const Fsp& p2, const Budget* budget = nullptr);

/// P1 || P2: reachable product with every action of Sigma1 ∩ Sigma2 replaced
/// by tau. The result's Sigma is the symmetric difference Sigma1 ⊕ Sigma2
/// (declared even where unused, so later compositions see the right sharing).
Fsp compose(const Fsp& p1, const Fsp& p2, const Budget* budget = nullptr);

/// Section 4's ||' : like compose, but any state that can reach a cycle of
/// tau-moves through tau-moves gets an extra tau-edge to a fresh leaf,
/// modeling the context's option to diverge silently forever. Restores the
/// property that Poss determines Lang (Lemma 2').
Fsp cyclic_compose(const Fsp& p1, const Fsp& p2, const Budget* budget = nullptr);

/// Left fold of compose / cyclic_compose over >= 1 processes (associative
/// and commutative by Lemma 1, so the order does not affect the result up to
/// state naming). A budget bounds every intermediate composite, not just
/// the final one.
Fsp compose_all(const std::vector<const Fsp*>& processes, bool cyclic = false,
                const Budget* budget = nullptr);

/// Add the tau-divergence leaf treatment of ||' to an already-composed
/// process (used when a composite was produced by plain compose).
Fsp add_divergence_leaves(const Fsp& p);

/// Exact structural equality keyed on composite-state atoms: both processes
/// must have the same atom-identified states, the same start atom-set, and
/// identical transition multisets. This is the naming convention under which
/// Lemma 1 states associativity/commutativity of ||.
bool isomorphic_by_atoms(const Fsp& a, const Fsp& b);

}  // namespace ccfsp
