// Dynamic bitset used throughout the library to represent sets of interned
// action symbols (and occasionally sets of states). Sized at construction;
// all binary operations require equal universe sizes.
#pragma once

#include <cstdint>
#include <cstddef>
#include <functional>
#include <string>
#include <vector>

namespace ccfsp {

/// A fixed-universe dynamic bitset. Unlike std::vector<bool> it supports
/// word-level set algebra (union, intersection, difference, subset tests)
/// and hashing, which the composition and possibility machinery rely on.
class DynamicBitset {
 public:
  DynamicBitset() = default;
  explicit DynamicBitset(std::size_t num_bits)
      : num_bits_(num_bits), words_((num_bits + kWordBits - 1) / kWordBits, 0) {}

  std::size_t size() const { return num_bits_; }

  bool test(std::size_t i) const {
    return (words_[i / kWordBits] >> (i % kWordBits)) & 1u;
  }
  void set(std::size_t i) { words_[i / kWordBits] |= word_t{1} << (i % kWordBits); }
  void reset(std::size_t i) { words_[i / kWordBits] &= ~(word_t{1} << (i % kWordBits)); }
  void assign(std::size_t i, bool v) { v ? set(i) : reset(i); }

  void clear() { std::fill(words_.begin(), words_.end(), word_t{0}); }

  bool any() const;
  bool none() const { return !any(); }
  std::size_t count() const;

  /// Index of the lowest set bit, or size() if none.
  std::size_t find_first() const;
  /// Index of the lowest set bit strictly greater than i, or size() if none.
  std::size_t find_next(std::size_t i) const;

  DynamicBitset& operator|=(const DynamicBitset& o);
  DynamicBitset& operator&=(const DynamicBitset& o);
  DynamicBitset& operator-=(const DynamicBitset& o);  // set difference

  friend DynamicBitset operator|(DynamicBitset a, const DynamicBitset& b) { return a |= b; }
  friend DynamicBitset operator&(DynamicBitset a, const DynamicBitset& b) { return a &= b; }
  friend DynamicBitset operator-(DynamicBitset a, const DynamicBitset& b) { return a -= b; }

  bool intersects(const DynamicBitset& o) const;
  bool is_subset_of(const DynamicBitset& o) const;

  bool operator==(const DynamicBitset& o) const = default;

  /// Strict weak order usable as a map key / canonical sort order.
  bool operator<(const DynamicBitset& o) const;

  std::size_t hash() const;

  /// All set-bit indices in increasing order.
  std::vector<std::size_t> to_indices() const;

  /// "{1,4,7}"-style rendering (by raw index), mainly for debugging.
  std::string to_string() const;

 private:
  using word_t = std::uint64_t;
  static constexpr std::size_t kWordBits = 64;

  std::size_t num_bits_ = 0;
  std::vector<word_t> words_;
};

struct DynamicBitsetHash {
  std::size_t operator()(const DynamicBitset& b) const { return b.hash(); }
};

}  // namespace ccfsp
