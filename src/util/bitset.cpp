#include "util/bitset.hpp"

#include <algorithm>
#include <bit>
#include <cassert>

#include "util/simd.hpp"

namespace ccfsp {

bool DynamicBitset::any() const {
  return simd::any(words_.data(), words_.size());
}

std::size_t DynamicBitset::count() const {
  return static_cast<std::size_t>(simd::popcount(words_.data(), words_.size()));
}

std::size_t DynamicBitset::find_first() const {
  const std::size_t wi = simd::next_nonzero_word(words_.data(), words_.size(), 0);
  if (wi == words_.size()) return num_bits_;
  return wi * kWordBits + static_cast<std::size_t>(std::countr_zero(words_[wi]));
}

std::size_t DynamicBitset::find_next(std::size_t i) const {
  ++i;
  if (i >= num_bits_) return num_bits_;
  std::size_t wi = i / kWordBits;
  word_t w = words_[wi] >> (i % kWordBits);
  if (w != 0) return i + static_cast<std::size_t>(std::countr_zero(w));
  wi = simd::next_nonzero_word(words_.data(), words_.size(), wi + 1);
  if (wi == words_.size()) return num_bits_;
  return wi * kWordBits + static_cast<std::size_t>(std::countr_zero(words_[wi]));
}

DynamicBitset& DynamicBitset::operator|=(const DynamicBitset& o) {
  assert(num_bits_ == o.num_bits_);
  simd::or_into(words_.data(), o.words_.data(), words_.size());
  return *this;
}

DynamicBitset& DynamicBitset::operator&=(const DynamicBitset& o) {
  assert(num_bits_ == o.num_bits_);
  simd::and_into(words_.data(), o.words_.data(), words_.size());
  return *this;
}

DynamicBitset& DynamicBitset::operator-=(const DynamicBitset& o) {
  assert(num_bits_ == o.num_bits_);
  simd::andnot_into(words_.data(), o.words_.data(), words_.size());
  return *this;
}

bool DynamicBitset::intersects(const DynamicBitset& o) const {
  assert(num_bits_ == o.num_bits_);
  return simd::intersects(words_.data(), o.words_.data(), words_.size());
}

bool DynamicBitset::is_subset_of(const DynamicBitset& o) const {
  assert(num_bits_ == o.num_bits_);
  return simd::is_subset_of(words_.data(), o.words_.data(), words_.size());
}

bool DynamicBitset::operator<(const DynamicBitset& o) const {
  if (num_bits_ != o.num_bits_) return num_bits_ < o.num_bits_;
  // Compare from most-significant word so the order agrees with "as integer".
  for (std::size_t i = words_.size(); i-- > 0;) {
    if (words_[i] != o.words_[i]) return words_[i] < o.words_[i];
  }
  return false;
}

std::size_t DynamicBitset::hash() const {
  // FNV-1a over the words plus the size.
  std::size_t h = 1469598103934665603ull;
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  mix(num_bits_);
  for (word_t w : words_) mix(w);
  return h;
}

std::vector<std::size_t> DynamicBitset::to_indices() const {
  std::vector<std::size_t> out;
  out.reserve(count());
  for (std::size_t i = find_first(); i < num_bits_; i = find_next(i)) out.push_back(i);
  return out;
}

std::string DynamicBitset::to_string() const {
  std::string s = "{";
  bool first = true;
  for (std::size_t i : to_indices()) {
    if (!first) s += ',';
    first = false;
    s += std::to_string(i);
  }
  s += '}';
  return s;
}

}  // namespace ccfsp
