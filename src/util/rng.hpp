// Deterministic, seedable random number generation for workload generators
// and property-based tests. xoshiro256** seeded through splitmix64, so a
// single 64-bit seed reproduces any generated network exactly.
#pragma once

#include <cstdint>
#include <cstddef>
#include <cassert>

namespace ccfsp {

/// splitmix64 — used only to expand seeds.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// xoshiro256** 1.0 by Blackman & Vigna (public domain algorithm).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eed) {
    std::uint64_t sm = seed;
    for (auto& s : s_) s = splitmix64(sm);
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, bound) without modulo bias (bound > 0).
  std::uint64_t below(std::uint64_t bound) {
    assert(bound > 0);
    // Lemire's method.
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    std::uint64_t l = static_cast<std::uint64_t>(m);
    if (l < bound) {
      std::uint64_t t = -bound % bound;
      while (l < t) {
        x = next();
        m = static_cast<__uint128_t>(x) * bound;
        l = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    assert(lo <= hi);
    return lo + static_cast<std::int64_t>(below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Bernoulli with probability num/den.
  bool chance(std::uint64_t num, std::uint64_t den) { return below(den) < num; }

  double uniform01() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  std::uint64_t s_[4];
};

}  // namespace ccfsp
