#include "util/graph.hpp"

#include <algorithm>
#include <cassert>
#include <stack>

namespace ccfsp {

std::size_t Digraph::num_edges() const {
  std::size_t m = 0;
  for (const auto& a : adj_) m += a.size();
  return m;
}

Digraph::SccResult Digraph::scc() const {
  const std::size_t n = num_vertices();
  SccResult res;
  res.component.assign(n, static_cast<std::size_t>(-1));

  std::vector<std::size_t> index(n, static_cast<std::size_t>(-1));
  std::vector<std::size_t> lowlink(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<std::size_t> stack;
  std::size_t next_index = 0;

  // Iterative Tarjan: frame = (vertex, next-successor position).
  struct Frame {
    std::size_t v;
    std::size_t pos;
  };
  std::vector<Frame> call;

  for (std::size_t root = 0; root < n; ++root) {
    if (index[root] != static_cast<std::size_t>(-1)) continue;
    call.push_back({root, 0});
    index[root] = lowlink[root] = next_index++;
    stack.push_back(root);
    on_stack[root] = true;

    while (!call.empty()) {
      Frame& f = call.back();
      if (f.pos < adj_[f.v].size()) {
        std::size_t w = adj_[f.v][f.pos++];
        if (index[w] == static_cast<std::size_t>(-1)) {
          index[w] = lowlink[w] = next_index++;
          stack.push_back(w);
          on_stack[w] = true;
          call.push_back({w, 0});
        } else if (on_stack[w]) {
          lowlink[f.v] = std::min(lowlink[f.v], index[w]);
        }
      } else {
        std::size_t v = f.v;
        call.pop_back();
        if (!call.empty()) {
          lowlink[call.back().v] = std::min(lowlink[call.back().v], lowlink[v]);
        }
        if (lowlink[v] == index[v]) {
          // v roots a component; pop it.
          while (true) {
            std::size_t w = stack.back();
            stack.pop_back();
            on_stack[w] = false;
            res.component[w] = res.num_components;
            if (w == v) break;
          }
          ++res.num_components;
        }
      }
    }
  }
  return res;
}

bool Digraph::has_cycle() const {
  // A digraph is acyclic iff every SCC is a single vertex without a self-loop.
  SccResult s = scc();
  std::vector<std::size_t> comp_size(s.num_components, 0);
  for (std::size_t v = 0; v < num_vertices(); ++v) ++comp_size[s.component[v]];
  for (std::size_t v = 0; v < num_vertices(); ++v) {
    if (comp_size[s.component[v]] > 1) return true;
    for (std::size_t w : adj_[v])
      if (w == v) return true;
  }
  return false;
}

std::optional<std::vector<std::size_t>> Digraph::topological_order() const {
  const std::size_t n = num_vertices();
  std::vector<std::size_t> indeg(n, 0);
  for (std::size_t v = 0; v < n; ++v)
    for (std::size_t w : adj_[v]) ++indeg[w];
  std::vector<std::size_t> queue;
  for (std::size_t v = 0; v < n; ++v)
    if (indeg[v] == 0) queue.push_back(v);
  std::vector<std::size_t> order;
  order.reserve(n);
  for (std::size_t qi = 0; qi < queue.size(); ++qi) {
    std::size_t v = queue[qi];
    order.push_back(v);
    for (std::size_t w : adj_[v])
      if (--indeg[w] == 0) queue.push_back(w);
  }
  if (order.size() != n) return std::nullopt;
  return order;
}

std::vector<bool> Digraph::reachable_from(std::size_t start) const {
  std::vector<bool> seen(num_vertices(), false);
  std::vector<std::size_t> stack{start};
  seen[start] = true;
  while (!stack.empty()) {
    std::size_t v = stack.back();
    stack.pop_back();
    for (std::size_t w : adj_[v]) {
      if (!seen[w]) {
        seen[w] = true;
        stack.push_back(w);
      }
    }
  }
  return seen;
}

std::vector<bool> Digraph::co_reachable(const std::vector<std::size_t>& targets) const {
  Digraph rev = reversed();
  std::vector<bool> seen(num_vertices(), false);
  std::vector<std::size_t> stack;
  for (std::size_t t : targets) {
    if (!seen[t]) {
      seen[t] = true;
      stack.push_back(t);
    }
  }
  while (!stack.empty()) {
    std::size_t v = stack.back();
    stack.pop_back();
    for (std::size_t w : rev.adj_[v]) {
      if (!seen[w]) {
        seen[w] = true;
        stack.push_back(w);
      }
    }
  }
  return seen;
}

Digraph Digraph::reversed() const {
  Digraph r(num_vertices());
  for (std::size_t v = 0; v < num_vertices(); ++v)
    for (std::size_t w : adj_[v]) r.add_edge(w, v);
  return r;
}

void UndirectedGraph::add_edge(std::size_t u, std::size_t v) {
  assert(u < adj_.size() && v < adj_.size() && u != v);
  adj_[u].push_back(v);
  adj_[v].push_back(u);
  edges_.emplace_back(u, v);
}

bool UndirectedGraph::is_connected() const {
  if (adj_.empty()) return true;
  std::vector<bool> seen(adj_.size(), false);
  std::vector<std::size_t> stack{0};
  seen[0] = true;
  std::size_t visited = 1;
  while (!stack.empty()) {
    std::size_t v = stack.back();
    stack.pop_back();
    for (std::size_t w : adj_[v]) {
      if (!seen[w]) {
        seen[w] = true;
        ++visited;
        stack.push_back(w);
      }
    }
  }
  return visited == adj_.size();
}

bool UndirectedGraph::is_tree() const {
  return is_connected() && num_edges() + 1 == num_vertices();
}

bool UndirectedGraph::is_ring() const {
  if (num_vertices() < 3 || !is_connected()) return false;
  for (const auto& nb : adj_)
    if (nb.size() != 2) return false;
  return num_edges() == num_vertices();
}

std::vector<std::vector<std::size_t>> UndirectedGraph::biconnected_components() const {
  const std::size_t n = num_vertices();
  std::vector<std::vector<std::size_t>> components;

  // Edge-indexed adjacency for the DFS.
  std::vector<std::vector<std::pair<std::size_t, std::size_t>>> adj(n);  // (nbr, edge idx)
  for (std::size_t e = 0; e < edges_.size(); ++e) {
    auto [u, v] = edges_[e];
    adj[u].emplace_back(v, e);
    adj[v].emplace_back(u, e);
  }

  std::vector<std::size_t> disc(n, 0), low(n, 0);
  std::vector<bool> visited(n, false);
  std::size_t timer = 1;
  std::vector<std::size_t> edge_stack;

  struct Frame {
    std::size_t v;
    std::size_t parent_edge;  // edge used to enter v, or -1
    std::size_t pos;
  };
  std::vector<Frame> call;

  for (std::size_t root = 0; root < n; ++root) {
    if (visited[root]) continue;
    visited[root] = true;
    disc[root] = low[root] = timer++;
    call.push_back({root, static_cast<std::size_t>(-1), 0});

    while (!call.empty()) {
      Frame& f = call.back();
      if (f.pos < adj[f.v].size()) {
        auto [w, e] = adj[f.v][f.pos++];
        if (e == f.parent_edge) continue;
        if (!visited[w]) {
          edge_stack.push_back(e);
          visited[w] = true;
          disc[w] = low[w] = timer++;
          call.push_back({w, e, 0});
        } else if (disc[w] < disc[f.v]) {
          edge_stack.push_back(e);
          low[f.v] = std::min(low[f.v], disc[w]);
        }
      } else {
        Frame done = call.back();
        call.pop_back();
        if (call.empty()) continue;
        Frame& parent = call.back();
        low[parent.v] = std::min(low[parent.v], low[done.v]);
        if (low[done.v] >= disc[parent.v]) {
          // parent.v is an articulation point (or root): pop one component.
          std::vector<std::size_t> comp;
          while (!edge_stack.empty()) {
            std::size_t e = edge_stack.back();
            edge_stack.pop_back();
            comp.push_back(e);
            if (e == done.parent_edge) break;
          }
          components.push_back(std::move(comp));
        }
      }
    }
  }
  return components;
}

}  // namespace ccfsp
