#include "util/trace.hpp"

#include <cinttypes>
#include <cstdio>

namespace ccfsp::metrics {

namespace {

void append_escaped(std::string& out, const std::string& s) {
  for (const char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", static_cast<unsigned char>(ch));
          out += buf;
        } else {
          out += ch;
        }
    }
  }
}

void append_span_json(std::string& out, const SpanNode& node) {
  out += "{\"name\": \"";
  append_escaped(out, node.name);
  out += "\", \"count\": " + std::to_string(node.count);
  out += ", \"total_ns\": " + std::to_string(node.total_ns);
  out += ", \"children\": [";
  for (std::size_t i = 0; i < node.children.size(); ++i) {
    if (i) out += ", ";
    append_span_json(out, node.children[i]);
  }
  out += "]}";
}

std::string format_duration(std::uint64_t ns) {
  char buf[32];
  if (ns < 10'000) {
    std::snprintf(buf, sizeof(buf), "%" PRIu64 "ns", ns);
  } else if (ns < 10'000'000) {
    std::snprintf(buf, sizeof(buf), "%.1fus", static_cast<double>(ns) / 1e3);
  } else if (ns < 10'000'000'000ull) {
    std::snprintf(buf, sizeof(buf), "%.1fms", static_cast<double>(ns) / 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2fs", static_cast<double>(ns) / 1e9);
  }
  return buf;
}

void append_span_lines(std::string& out, const SpanNode& node, int depth) {
  constexpr int kNameColumn = 40;
  std::string line(static_cast<std::size_t>(depth) * 2, ' ');
  line += node.name;
  if (line.size() < kNameColumn) line.resize(kNameColumn, ' ');
  char buf[64];
  std::snprintf(buf, sizeof(buf), " %6" PRIu64 "x  %8s", node.count,
                format_duration(node.total_ns).c_str());
  line += buf;
  out += line;
  out += '\n';
  for (const SpanNode& child : node.children) {
    append_span_lines(out, child, depth + 1);
  }
}

}  // namespace

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  append_escaped(out, s);
  return out;
}

std::string counters_json(const Snapshot& snap) {
  std::string out = "{";
  for (std::size_t i = 0; i < kNumCounters; ++i) {
    if (i) out += ", ";
    out += '"';
    out += name(static_cast<Counter>(i));
    out += "\": " + std::to_string(snap.counters[i]);
  }
  out += "}";
  return out;
}

std::string span_tree_json(const Snapshot& snap) {
  std::string out = "[";
  for (std::size_t i = 0; i < snap.spans.children.size(); ++i) {
    if (i) out += ", ";
    append_span_json(out, snap.spans.children[i]);
  }
  out += "]";
  return out;
}

std::string render_span_tree(const Snapshot& snap) {
  std::string out;
  for (const SpanNode& top : snap.spans.children) {
    append_span_lines(out, top, 0);
  }
  return out;
}

}  // namespace ccfsp::metrics
