// Always-on observability for the analysis engine: a fixed catalogue of
// named monotonic counters and duration-accumulating phase spans, so every
// decider run can explain *why* it was fast or slow — states interned,
// subset closures built, refinement splits, cache hits, ladder rungs
// attempted — instead of proving its complexity shape only through
// end-to-end bench timings.
//
//   metrics::add(metrics::Counter::kGlobalStates, fresh);   // in engine code
//   metrics::ScopedSpan span("build_global");               // phase timing
//
//   metrics::ScopedEnable on;                               // in a test
//   run_something();
//   metrics::Snapshot snap = metrics::snapshot();
//   EXPECT_EQ(snap.value(metrics::Counter::kGlobalStates), 88);
//
// Like the failpoint sites next to which most of these live, the *disarmed*
// path is engineered to stay off the profile: add() and ScopedSpan read one
// relaxed atomic and return (bench/bench_metrics.cpp pins the cost on the
// phil:12 flat build). When enabled, each thread writes its own shard —
// single-writer relaxed atomics, no contention — and shards are merged on
// read, so parallel build_global workers count correctly and a
// --threads 1 / --threads 4 run reports identical semantic counters.
//
// Counters are *identities*, not vibes: tests assert flat and reference
// build_global agree on states/edges, that nf_memo hits + misses equals
// lookups, and so on (tests/integration/metrics_invariants_test.cpp). The
// catalogue, span naming convention, and the JSON export schema are
// documented in docs/observability.md.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace ccfsp::metrics {

/// The compiled-in counter catalogue. Names (see name()) are dotted
/// lowercase, "<layer>.<what>"; add new counters here and to the tables in
/// metrics.cpp and docs/observability.md — the golden-schema test fails on
/// any drift between the three.
enum class Counter : std::uint16_t {
  // build_global (all build modes agree on states/edges; the rest describe
  // execution shape and legitimately differ between modes — see
  // kExecutionShapeCounters).
  kGlobalStates,        // fresh global states interned
  kGlobalEdges,         // global edges emitted
  kGlobalLevels,        // parallel BFS levels processed
  kGlobalLevelsSpawned, // levels that ran on a spawned thread pool
  kGlobalFrontierPeak,  // largest BFS frontier (max, parallel path)
  kGlobalRingInterns,   // successors interned through the staged wave buffer
  kInternWaves,         // intern_batch waves flushed (all build modes)
  kInternWaveKeys,      // keys resolved across those waves
  kInternWaveConflicts, // wave keys that probed past an occupied home slot
  kFrontierChunks,      // frontier chunks claimed by pool workers (parallel path)
  kCsrBytes,            // retained GlobalMachine bytes (max; equal across build modes)
  // annotated_determinize[_flat]
  kDeterminizeSubsets,       // fresh DFA subsets interned
  kDeterminizeClosures,      // tau closures computed (flat kernel, lazy)
  kDeterminizeClosureStates, // total states pushed across those closures
  // util/simd.hpp dispatch (max of the Path enum seen: 1 scalar, 2 avx2)
  kSimdDispatch,
  // util/refine.cpp splitter-queue kernel
  kRefinePops,        // splitter blocks popped off the queue
  kRefineSplits,      // blocks split
  kRefineSmallerHalf, // splits enqueued under Hopcroft's smaller-half rule
  kRefineBothHalves,  // splits enqueued under Kanellakis-Smolka (both halves)
  // fsp/cache.cpp
  kFspCacheBuilds, // FspAnalysisCache constructions
  kFspCacheStates, // states tabled across those builds
  kNfMemoLookups,  // NormalFormMemo::find calls (== hits + misses)
  kNfMemoHits,
  kNfMemoMisses,
  kNfMemoStores,      // blueprints actually stored (cap/duplicate stores excluded)
  kNfMemoStoredBytes, // bytes those blueprints retain
  kCacheEvictions,    // LRU entries evicted (nf memo + shared fsp-cache pool)
  kCacheBytes,        // peak bytes retained by a bounded cache (max)
  // success/analyze.cpp decider ladder
  kLadderAttempts,    // rung attempts (retries included)
  kLadderDecided,     // attempts that returned an answer
  kLadderUnsupported, // attempts rejected by a structural precondition
  kLadderBudgetTrips, // attempts that hit a budget wall
  kLadderRetries,     // escalated re-runs (attempt index >= 1)
  kLadderSkips,       // rungs skipped because the budget was already spent
  // snapshot subsystem (src/snapshot/): persistence of global machines,
  // build checkpoints, and daemon cache images. All execution shape — a
  // load-instead-of-build run legitimately differs from a fresh one, while
  // what it builds (global.states/edges, csr.bytes) must not.
  kSnapshotSaves,           // snapshot files committed (atomic rename succeeded)
  kSnapshotSaveFailures,    // snapshot writes that failed before the commit point
  kSnapshotLoads,           // snapshot files loaded and validated end-to-end
  kSnapshotColdStarts,      // loads rejected (missing/torn/corrupt) -> cold rebuild
  kSnapshotBytesWritten,    // bytes committed across saves
  kSnapshotBytesRead,       // bytes of validated snapshot payload loaded
  kCheckpointWrites,        // periodic build checkpoints persisted
  kCheckpointResumes,       // builds resumed from a durable checkpoint
  kCheckpointResumedStates, // states restored by those resumes
  kNumCounters_,      // sentinel, not a counter
};

inline constexpr std::size_t kNumCounters = static_cast<std::size_t>(Counter::kNumCounters_);

/// How a counter merges across shards and into the retired totals.
enum class Kind { kSum, kMax };

/// Stable dotted name ("global.states") / merge rule of a counter.
const char* name(Counter c);
Kind kind(Counter c);

/// Counters that describe *how* a build executed rather than *what* it
/// built — levels, spawn decisions, frontier shape, the prefetch ring.
/// These legitimately differ between --threads 1 and --threads N (and
/// between flat and reference builds); everything else must not. The
/// invariant tests and docs/observability.md share this list.
const std::vector<Counter>& execution_shape_counters();

namespace detail {
/// Nonzero while at least one enable() is outstanding; 0 is the fast path.
extern std::atomic<int> g_enabled;
void add_slow(Counter c, std::uint64_t delta);
void max_slow(Counter c, std::uint64_t value);
void* span_begin_slow(const char* name);
void span_end_slow(void* node, std::uint64_t ns);
}  // namespace detail

/// True while collection is enabled. Hot code may hoist this check around a
/// batch of add() calls; each add() also checks it, so hoisting is optional.
inline bool enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed) != 0;
}

/// Bump a monotonic counter. Disarmed cost: one relaxed load and a branch.
inline void add(Counter c, std::uint64_t delta = 1) {
  if (!enabled()) return;
  detail::add_slow(c, delta);
}

/// Raise a kMax counter to at least `value` (no-op if already larger).
inline void record_max(Counter c, std::uint64_t value) {
  if (!enabled()) return;
  detail::max_slow(c, value);
}

/// Turn collection on/off. Calls nest (enable twice, disable twice); the
/// counters and span trees persist across disable so a caller can stop the
/// world and then read. Not meant to race with instrumented work: callers
/// enable before starting an analysis and read after it returns (or after
/// joining its workers).
void enable();
void disable();

/// Zero every counter and drop every span. Must not be called while a
/// ScopedSpan is open or instrumented work is in flight on another thread;
/// trees referenced by an open span survive in a graveyard (never freed
/// mid-process) so misuse degrades to lost samples, not to dangling reads.
void reset();

/// One node of the merged phase-span tree: how many times the span ran and
/// the wall time it accumulated, with children nested in call order.
struct SpanNode {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
  std::vector<SpanNode> children;
};

/// A merged point-in-time read of everything collected since reset():
/// counter values in catalogue order plus the span tree (a synthetic
/// unnamed root whose children are the top-level spans of every thread).
struct Snapshot {
  std::array<std::uint64_t, kNumCounters> counters{};
  SpanNode spans;

  std::uint64_t value(Counter c) const {
    return counters[static_cast<std::size_t>(c)];
  }
};

Snapshot snapshot();

/// RAII phase span. Disarmed: one relaxed load per end. The name is copied
/// on first use of each (parent, name) path, so temporaries are fine.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name) {
    if (!enabled()) return;
    node_ = detail::span_begin_slow(name);
    start_ = std::chrono::steady_clock::now();
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  ~ScopedSpan() {
    if (!node_) return;
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - start_)
                        .count();
    detail::span_end_slow(node_, static_cast<std::uint64_t>(ns));
  }

 private:
  void* node_ = nullptr;
  std::chrono::steady_clock::time_point start_{};
};

/// Where a run's metrics land when a caller asks for them: threaded through
/// AnalysisContext / AnalyzeOptions, filled by the ScopedCollect that
/// wrapped the run.
struct MetricsSink {
  Snapshot result;
};

/// RAII collection for one run: enables the registry (resetting it when
/// this is the outermost collector) and stores the merged snapshot into the
/// sink on destruction. A null sink makes the whole object a no-op, so
/// callers can write `ScopedCollect c(opt.metrics);` unconditionally.
class ScopedCollect {
 public:
  explicit ScopedCollect(MetricsSink* sink);
  ScopedCollect(const ScopedCollect&) = delete;
  ScopedCollect& operator=(const ScopedCollect&) = delete;
  ~ScopedCollect();

 private:
  MetricsSink* sink_;
};

/// Test helper: enable + reset on construction, disable on destruction.
struct ScopedEnable {
  ScopedEnable() {
    enable();
    reset();
  }
  ScopedEnable(const ScopedEnable&) = delete;
  ScopedEnable& operator=(const ScopedEnable&) = delete;
  ~ScopedEnable() { disable(); }
};

}  // namespace ccfsp::metrics
