// Vectorized word kernels for the flat engine's set scans. Everything the
// hot loops do to a bitset is one of a handful of shapes — OR a span into an
// accumulator, AND/ANDNOT for intersection and difference, popcount, find
// the next set bit or nonzero word — and all of them sweep uint64_t spans.
// This layer provides those sweeps once, in 64-byte strides, with an AVX2
// path selected by runtime dispatch and a scalar fallback that is
// bit-identical (every kernel is exact bitwise arithmetic, so the two paths
// cannot diverge; tests/util/simd_test.cpp asserts it anyway, tails
// included).
//
// Dispatch is resolved once per process: the CCFSP_SIMD environment variable
// ("scalar", "avx2", "auto") wins, then __builtin_cpu_supports("avx2").
// Forcing "avx2" on a machine without it quietly degrades to scalar — an env
// override must never turn into SIGILL. Callers on a hot path should hoist
// nothing: the per-call cost is one load of the cached kernel table.
//
// DynamicBitset routes its word loops through these kernels; refine_partition
// and annotated_determinize_flat use them directly on their scratch bitmaps.
// Both dispatch paths are exported under detail:: so the property tests can
// drive them explicitly regardless of what the host CPU supports.
#pragma once

#include <cstddef>
#include <cstdint>

namespace ccfsp::simd {

/// 64-bit hash of a word span (multiply-xor per word, murmur-style finalizer).
/// The length participates so that [1,2]+[3] and [1]+[2,3] collide no more
/// often than random spans do. This is the canonical definition — the
/// interners' hash and the hash_tuples kernel below both compute exactly
/// this function, and the batch kernel's AVX2 path must reproduce it bit for
/// bit (exact integer arithmetic, asserted by tests/util/simd_test.cpp).
inline std::uint64_t hash_words(const std::uint32_t* words, std::size_t n) {
  std::uint64_t h = 0x9e3779b97f4a7c15ull ^ (n * 0xff51afd7ed558ccdull);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= words[i];
    h *= 0xff51afd7ed558ccdull;
    h = (h << 27) | (h >> 37);
  }
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ull;
  h ^= h >> 33;
  return h;
}

enum class Path : std::uint8_t {
  kScalar = 1,
  kAvx2 = 2,
};

/// The path every kernel below dispatches through, resolved once per
/// process (env override, then CPU detection — see file comment).
Path active_path();

/// "scalar" / "avx2", for logs and the bench JSON.
const char* path_name(Path p);

namespace detail {

/// Table of per-path kernel entry points. The property tests fetch both
/// tables and compare outputs; production code goes through the free
/// functions below, which forward to the active path's table.
struct Kernels {
  void (*or_into)(std::uint64_t* dst, const std::uint64_t* src, std::size_t n);
  void (*and_into)(std::uint64_t* dst, const std::uint64_t* src, std::size_t n);
  void (*andnot_into)(std::uint64_t* dst, const std::uint64_t* src, std::size_t n);
  std::uint64_t (*popcount)(const std::uint64_t* w, std::size_t n);
  bool (*any)(const std::uint64_t* w, std::size_t n);
  bool (*intersects)(const std::uint64_t* a, const std::uint64_t* b, std::size_t n);
  bool (*is_subset_of)(const std::uint64_t* a, const std::uint64_t* b, std::size_t n);
  std::size_t (*next_nonzero_word)(const std::uint64_t* w, std::size_t n, std::size_t from);
  void (*hash_tuples)(const std::uint32_t* keys, std::size_t width, std::size_t n,
                      std::uint64_t* out);
  bool (*equal_u32)(const std::uint32_t* a, const std::uint32_t* b, std::size_t n);
  void (*prefix_sum_u32)(std::uint32_t* v, std::size_t n);
  void (*pack_pairs_u64)(const std::uint32_t* hi, const std::uint32_t* lo, std::size_t n,
                         std::uint64_t* out);
};

/// True when the host CPU (not the build flags) can run the AVX2 path.
bool avx2_supported();

/// The kernel table for a path. Asking for kAvx2 on a host without AVX2
/// returns the scalar table (same quiet degradation as dispatch).
const Kernels& kernels(Path p);

/// Resolution rule, exposed for tests: maps an env string (may be null) and
/// an availability flag to the chosen path. Unknown strings behave as "auto".
Path resolve_path(const char* env, bool avx2_ok);

const Kernels& active();  // cached table of active_path()

}  // namespace detail

/// dst[i] |= src[i]. Spans must not partially overlap.
inline void or_into(std::uint64_t* dst, const std::uint64_t* src, std::size_t n) {
  detail::active().or_into(dst, src, n);
}

/// dst[i] &= src[i].
inline void and_into(std::uint64_t* dst, const std::uint64_t* src, std::size_t n) {
  detail::active().and_into(dst, src, n);
}

/// dst[i] &= ~src[i] (set difference).
inline void andnot_into(std::uint64_t* dst, const std::uint64_t* src, std::size_t n) {
  detail::active().andnot_into(dst, src, n);
}

/// Total set bits over the span.
inline std::uint64_t popcount(const std::uint64_t* w, std::size_t n) {
  return detail::active().popcount(w, n);
}

/// Any set bit?
inline bool any(const std::uint64_t* w, std::size_t n) {
  return detail::active().any(w, n);
}

/// Do the spans share a set bit?
inline bool intersects(const std::uint64_t* a, const std::uint64_t* b, std::size_t n) {
  return detail::active().intersects(a, b, n);
}

/// Is a ⊆ b (no bit of a outside b)?
inline bool is_subset_of(const std::uint64_t* a, const std::uint64_t* b, std::size_t n) {
  return detail::active().is_subset_of(a, b, n);
}

/// Index of the first nonzero word at or after `from`, or n if none — the
/// sweep primitive behind find_first/find_next and the scratch-bitmap
/// extraction loops.
inline std::size_t next_nonzero_word(const std::uint64_t* w, std::size_t n, std::size_t from) {
  return detail::active().next_nonzero_word(w, n, from);
}

/// out[i] = hash_words(keys + i * width, width) for n fixed-width tuples —
/// the fingerprint wave of the batched intern. The AVX2 path hashes four
/// tuples per step (64x64 multiply built from 32x32 parts, rotate from
/// shifts) and is bit-identical to the scalar loop.
inline void hash_tuples(const std::uint32_t* keys, std::size_t width, std::size_t n,
                        std::uint64_t* out) {
  detail::active().hash_tuples(keys, width, n, out);
}

/// a[0..n) == b[0..n) over uint32 spans — the interners' payload compare for
/// wide keys (packed tuples past the memcmp sweet spot, determinize subsets).
inline bool equal_u32(const std::uint32_t* a, const std::uint32_t* b, std::size_t n) {
  return detail::active().equal_u32(a, b, n);
}

/// In-place inclusive prefix sum, wrapping mod 2^32 like the scalar loop —
/// the offsets pass of refine_partition's counting sorts.
inline void prefix_sum_u32(std::uint32_t* v, std::size_t n) {
  detail::active().prefix_sum_u32(v, n);
}

/// out[i] = hi[i] << 32 | lo[i] — key packing for sort-based uniqueness
/// scans (refine_partition's determinism check).
inline void pack_pairs_u64(const std::uint32_t* hi, const std::uint32_t* lo, std::size_t n,
                           std::uint64_t* out) {
  detail::active().pack_pairs_u64(hi, lo, n, out);
}

}  // namespace ccfsp::simd
