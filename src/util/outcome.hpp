// The structured result type of a governed analysis. A routine under a
// Budget has exactly four ways to come back:
//   kDecided         — it finished; the answer is in value().
//   kBudgetExhausted — a Budget limit tripped; states_explored() says how
//                      far it got and budget_reason() which wall it hit.
//   kUnsupported     — the input violates the routine's structural
//                      precondition (not linear, not a tree, taus in P...).
//   kInvalidInput    — the input itself is malformed (parse error, not a
//                      Definition 2 network, bad index).
// run_guarded() is the single bridge from the library's exception-based
// internals to this taxonomy: the hot loops stay exception-driven (cheap
// when nothing goes wrong), the public analysis surface is total.
#pragma once

#include <optional>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <utility>

#include "util/budget.hpp"

namespace ccfsp {

enum class OutcomeStatus { kDecided, kBudgetExhausted, kUnsupported, kInvalidInput };

inline const char* to_string(OutcomeStatus s) {
  switch (s) {
    case OutcomeStatus::kDecided:
      return "decided";
    case OutcomeStatus::kBudgetExhausted:
      return "budget-exhausted";
    case OutcomeStatus::kUnsupported:
      return "unsupported";
    case OutcomeStatus::kInvalidInput:
      return "invalid-input";
  }
  return "?";
}

template <typename T>
class AnalysisOutcome {
 public:
  static AnalysisOutcome decided(T value) {
    AnalysisOutcome o(OutcomeStatus::kDecided);
    o.value_.emplace(std::move(value));
    return o;
  }

  static AnalysisOutcome budget_exhausted(const BudgetExceeded& e) {
    AnalysisOutcome o(OutcomeStatus::kBudgetExhausted);
    o.message_ = e.what();
    o.budget_reason_ = e.reason();
    o.states_explored_ = e.states_used();
    return o;
  }

  /// A real allocation failure (std::bad_alloc). Classified as budget
  /// exhaustion on the bytes dimension: the machine's memory is the budget
  /// that tripped, and the caller's recovery is the same (retry smaller,
  /// escalate, or report) — not a crash.
  static AnalysisOutcome out_of_memory() {
    AnalysisOutcome o(OutcomeStatus::kBudgetExhausted);
    o.message_ = "allocation failed (std::bad_alloc): bytes budget of the machine exhausted";
    o.budget_reason_ = BudgetDimension::kBytes;
    return o;
  }

  static AnalysisOutcome unsupported(std::string why) {
    AnalysisOutcome o(OutcomeStatus::kUnsupported);
    o.message_ = std::move(why);
    return o;
  }

  static AnalysisOutcome invalid_input(std::string why) {
    AnalysisOutcome o(OutcomeStatus::kInvalidInput);
    o.message_ = std::move(why);
    return o;
  }

  OutcomeStatus status() const { return status_; }
  bool is_decided() const { return status_ == OutcomeStatus::kDecided; }
  explicit operator bool() const { return is_decided(); }

  const T& value() const& {
    require_decided();
    return *value_;
  }
  T& value() & {
    require_decided();
    return *value_;
  }
  /// Move the answer out (the outcome is spent afterwards).
  T take() {
    require_decided();
    return std::move(*value_);
  }

  /// Diagnostic for the non-decided cases; empty when decided.
  const std::string& message() const { return message_; }
  /// Which Budget wall tripped (kNone unless kBudgetExhausted).
  BudgetDimension budget_reason() const { return budget_reason_; }
  /// States charged before exhaustion — "how far the analysis got".
  std::size_t states_explored() const { return states_explored_; }

 private:
  explicit AnalysisOutcome(OutcomeStatus s) : status_(s) {}

  void require_decided() const {
    if (!is_decided()) {
      throw std::logic_error(std::string("AnalysisOutcome::value: outcome is ") +
                             to_string(status_) + (message_.empty() ? "" : ": " + message_));
    }
  }

  OutcomeStatus status_;
  std::optional<T> value_;
  std::string message_;
  BudgetDimension budget_reason_ = BudgetDimension::kNone;
  std::size_t states_explored_ = 0;
};

/// Run `fn` and fold every escape hatch of the legacy API into an outcome:
///   BudgetExceeded        -> kBudgetExhausted (progress preserved)
///   std::bad_alloc        -> kBudgetExhausted (bytes reason; a real OOM is
///                            the machine's budget tripping, not a crash)
///   std::invalid_argument -> kInvalidInput  (caller handed garbage)
///   std::logic_error      -> kUnsupported   (structural precondition unmet)
///   std::runtime_error    -> kInvalidInput  (parse errors and kin)
/// Anything else (logic bugs) propagates — those are crashes to fix, not
/// outcomes to report.
template <typename F>
auto run_guarded(F&& fn) -> AnalysisOutcome<std::invoke_result_t<F>> {
  using Out = AnalysisOutcome<std::invoke_result_t<F>>;
  try {
    return Out::decided(std::forward<F>(fn)());
  } catch (const BudgetExceeded& e) {
    return Out::budget_exhausted(e);
  } catch (const std::bad_alloc&) {
    return Out::out_of_memory();
  } catch (const std::invalid_argument& e) {
    return Out::invalid_input(e.what());
  } catch (const std::logic_error& e) {
    return Out::unsupported(e.what());
  } catch (const std::runtime_error& e) {
    return Out::invalid_input(e.what());
  }
}

}  // namespace ccfsp
