// Paige–Tarjan style partition refinement over CSR-stored labeled edges —
// the shared kernel behind minimize() (possibility/failure/language DFA
// minimization) and bisimulation_classes(). The retained Moore loops
// recompute every state's full signature each round through nested
// std::map/std::set keys, which is O(rounds * m log m) with an allocation
// per signature; this kernel instead keeps a splitter queue of blocks and
// splits only the predecessor sets of each popped splitter, processing the
// smaller half first — O(m log n) edge touches overall and no per-round
// allocations.
//
// The computed partition is the *coarsest* refinement of the initial one
// that is stable under every (block, label) splitter — exactly the fixed
// point the Moore loops converge to — and the returned numbering (classes
// by first occurrence in state order) is exactly the numbering the Moore
// loops' insertion-ordered signature maps produce, so the two
// implementations are interchangeable, which the property tests assert.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace ccfsp {

/// Coarsest stable refinement of `initial` under the labeled edge relation
/// (edge_src[k] --edge_label[k]--> edge_dst[k]; labels are opaque 32-bit
/// words — callers pass ActionId values, kTau included).
/// Stability: for every final block C, splitter block B and label a, either
/// every member of C has an a-edge into B or none does. Returns one class
/// id per state, classes numbered by first occurrence in state order.
///
/// The "normal_form.refine" failpoint fires once per popped splitter.
std::vector<std::uint32_t> refine_partition(std::uint32_t num_states,
                                            std::span<const std::uint32_t> edge_src,
                                            std::span<const std::uint32_t> edge_label,
                                            std::span<const std::uint32_t> edge_dst,
                                            std::vector<std::uint32_t> initial);

}  // namespace ccfsp
