// Small graph library: directed graphs with SCC / topological sort /
// reachability, and undirected graphs with connectivity, biconnected
// components, and tree / ring shape tests. These back the FSP structural
// classification (linear / tree / acyclic / cyclic) and the communication
// graph analysis (tree network, ring network, k-tree partition).
#pragma once

#include <cstddef>
#include <optional>
#include <utility>
#include <vector>

namespace ccfsp {

/// Directed graph on vertices 0..n-1 with an adjacency list.
class Digraph {
 public:
  explicit Digraph(std::size_t n = 0) : adj_(n) {}

  std::size_t num_vertices() const { return adj_.size(); }
  std::size_t num_edges() const;

  void add_edge(std::size_t u, std::size_t v) { adj_[u].push_back(v); }
  const std::vector<std::size_t>& successors(std::size_t u) const { return adj_[u]; }

  /// Tarjan's algorithm (iterative). Returns component id per vertex;
  /// component ids are in reverse topological order (0 = a sink component... the
  /// usual Tarjan numbering: a component is numbered before any component that
  /// can reach it).
  struct SccResult {
    std::vector<std::size_t> component;  // vertex -> component id
    std::size_t num_components = 0;
  };
  SccResult scc() const;

  /// True iff the graph has a directed cycle.
  bool has_cycle() const;

  /// Topological order (empty optional if cyclic).
  std::optional<std::vector<std::size_t>> topological_order() const;

  /// Vertices reachable from `start` (including start).
  std::vector<bool> reachable_from(std::size_t start) const;

  /// Vertices from which some vertex in `targets` is reachable.
  std::vector<bool> co_reachable(const std::vector<std::size_t>& targets) const;

  Digraph reversed() const;

 private:
  std::vector<std::vector<std::size_t>> adj_;
};

/// Undirected simple graph on vertices 0..n-1.
class UndirectedGraph {
 public:
  explicit UndirectedGraph(std::size_t n = 0) : adj_(n) {}

  std::size_t num_vertices() const { return adj_.size(); }
  std::size_t num_edges() const { return edges_.size(); }

  void add_edge(std::size_t u, std::size_t v);
  const std::vector<std::size_t>& neighbors(std::size_t u) const { return adj_[u]; }
  const std::vector<std::pair<std::size_t, std::size_t>>& edges() const { return edges_; }

  bool is_connected() const;

  /// Connected + acyclic (the shape of a tree network's communication graph).
  bool is_tree() const;

  /// Connected + every vertex has degree exactly 2 and n >= 3.
  bool is_ring() const;

  /// Biconnected components as lists of edge indices (into edges()).
  /// An isolated vertex contributes nothing; a bridge is its own component.
  std::vector<std::vector<std::size_t>> biconnected_components() const;

 private:
  std::vector<std::vector<std::size_t>> adj_;
  std::vector<std::pair<std::size_t, std::size_t>> edges_;
};

}  // namespace ccfsp
