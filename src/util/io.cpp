#include "util/io.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include <fcntl.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>

#include "util/failpoint.hpp"

namespace ccfsp::ioutil {

namespace {

// Slicing-by-4 CRC32C tables, generated once at first use. The generator
// polynomial is 0x82F63B78 (0x1EDC6F41 reflected).
struct Crc32cTables {
  std::uint32_t t[4][256];
  Crc32cTables() {
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) c = (c >> 1) ^ ((c & 1) ? 0x82F63B78u : 0);
      t[0][i] = c;
    }
    for (std::uint32_t i = 0; i < 256; ++i) {
      t[1][i] = (t[0][i] >> 8) ^ t[0][t[0][i] & 0xff];
      t[2][i] = (t[1][i] >> 8) ^ t[0][t[1][i] & 0xff];
      t[3][i] = (t[2][i] >> 8) ^ t[0][t[2][i] & 0xff];
    }
  }
};

const Crc32cTables& tables() {
  static const Crc32cTables kTables;
  return kTables;
}

std::string errno_string(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

void set_error(std::string* error, std::string msg) {
  if (error) *error = std::move(msg);
}

/// fsync the directory containing `path`, so the rename itself is durable.
bool fsync_parent_dir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash + 1);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return false;
  const bool ok = ::fsync(fd) == 0;
  ::close(fd);
  return ok;
}

}  // namespace

std::uint32_t crc32c(const void* data, std::size_t n, std::uint32_t seed) {
  const Crc32cTables& tb = tables();
  const unsigned char* p = static_cast<const unsigned char*>(data);
  std::uint32_t c = ~seed;
  while (n >= 4) {
    c ^= static_cast<std::uint32_t>(p[0]) | (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) | (static_cast<std::uint32_t>(p[3]) << 24);
    c = tb.t[3][c & 0xff] ^ tb.t[2][(c >> 8) & 0xff] ^ tb.t[1][(c >> 16) & 0xff] ^
        tb.t[0][c >> 24];
    p += 4;
    n -= 4;
  }
  while (n-- > 0) c = (c >> 8) ^ tb.t[0][(c ^ *p++) & 0xff];
  return ~c;
}

long read_retry(int fd, void* buf, std::size_t n) {
  for (;;) {
    const ssize_t r = ::read(fd, buf, n);
    if (r >= 0 || errno != EINTR) return static_cast<long>(r);
  }
}

long write_retry(int fd, const void* buf, std::size_t n) {
  for (;;) {
    const ssize_t r = ::write(fd, buf, n);
    if (r >= 0 || errno != EINTR) return static_cast<long>(r);
  }
}

long send_retry(int fd, const void* buf, std::size_t n, int flags) {
  for (;;) {
    const ssize_t r = ::send(fd, buf, n, flags);
    if (r >= 0 || errno != EINTR) return static_cast<long>(r);
  }
}

int accept_retry(int listen_fd) {
  for (;;) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd >= 0 || errno != EINTR) return fd;
  }
}

bool write_full(int fd, const void* buf, std::size_t n) {
  const char* p = static_cast<const char*>(buf);
  while (n > 0) {
    const long w = write_retry(fd, p, n);
    if (w <= 0) return false;
    p += w;
    n -= static_cast<std::size_t>(w);
  }
  return true;
}

bool read_full(int fd, void* buf, std::size_t n) {
  char* p = static_cast<char*>(buf);
  while (n > 0) {
    const long r = read_retry(fd, p, n);
    if (r <= 0) return false;
    p += r;
    n -= static_cast<std::size_t>(r);
  }
  return true;
}

bool read_file(const std::string& path, std::string* out, std::string* error) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    set_error(error, errno_string("open"));
    return false;
  }
  out->clear();
  char buf[1 << 16];
  for (;;) {
    const long r = read_retry(fd, buf, sizeof(buf));
    if (r == 0) break;
    if (r < 0) {
      set_error(error, errno_string("read"));
      ::close(fd);
      return false;
    }
    out->append(buf, static_cast<std::size_t>(r));
  }
  ::close(fd);
  return true;
}

bool atomic_write_file(const std::string& path, const void* data, std::size_t n,
                       std::string* error) {
  const std::string tmp = path + ".tmp." + std::to_string(::getpid());
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    set_error(error, errno_string("open " + tmp));
    return false;
  }

  // Payload staging copy only when the corrupt failpoint fires; the common
  // path writes straight from the caller's buffer.
  const char* payload = static_cast<const char*>(data);
  std::string corrupted;
  try {
    failpoint::hit("snapshot.corrupt");
  } catch (...) {
    // Injected "storage corrupted the committed bytes" fault: flip one bit
    // mid-payload and carry on — the write SUCCEEDS, the reader must catch it.
    corrupted.assign(payload, n);
    if (n > 0) corrupted[n / 2] ^= 0x01;
    payload = corrupted.data();
  }

  auto fail = [&](std::string msg) {
    ::close(fd);
    ::unlink(tmp.c_str());
    set_error(error, std::move(msg));
    return false;
  };

  bool closed = false;
  try {
    // Split the payload so the torn-write failpoint sits between the two
    // chunks: an armed throw leaves a genuinely short temp file behind.
    const std::size_t tail = n < 64 ? n : 64;
    if (!write_full(fd, payload, n - tail)) return fail(errno_string("write " + tmp));
    failpoint::hit("snapshot.write_short");
    if (!write_full(fd, payload + (n - tail), tail)) return fail(errno_string("write " + tmp));
    failpoint::hit("snapshot.fsync");
    if (::fsync(fd) != 0) return fail(errno_string("fsync " + tmp));
    closed = true;
    if (::close(fd) != 0) {
      ::unlink(tmp.c_str());
      set_error(error, errno_string("close " + tmp));
      return false;
    }
    failpoint::hit("snapshot.rename");
  } catch (...) {
    // A failpoint threw mid-write: the destination is untouched; drop the
    // (possibly torn) temp file and report the injected failure.
    if (!closed) ::close(fd);
    ::unlink(tmp.c_str());
    set_error(error, "injected fault before commit of " + path);
    return false;
  }

  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const std::string msg = errno_string("rename " + tmp);
    ::unlink(tmp.c_str());
    set_error(error, msg);
    return false;
  }
  if (!fsync_parent_dir(path)) {
    // The rename already committed; a failed directory fsync only weakens
    // durability of the *name*, not atomicity. Report success.
  }
  return true;
}

}  // namespace ccfsp::ioutil
