// Flat-memory interning for the state-space engine. The explicit global
// machine and the subset constructions spend most of their time asking "have
// I seen this tuple of 32-bit ids before?"; answering that through a
// std::map<std::vector<...>, id> costs O(len * log n) word comparisons and
// two heap allocations per query. The structures here answer it with one
// 64-bit hash, an open-addressing probe, and a memcmp against storage that
// is packed contiguously into a single growable block:
//   - TupleArena    fixed-width tuples (the m-tuples of the global machine);
//                   element i of tuple t lives at data()[t * width + i].
//   - SpanInterner  variable-length sorted id sets (determinization subsets),
//                   addressed through an offsets table.
// Both assign dense ids in first-insertion order, which is what makes the
// BFS numbering of their callers deterministic.
//
// Exception safety: both interners provide the *strong* guarantee on
// intern() — if an allocation fails (for real, or injected through the
// "interner.tuple_grow" / "interner.span_grow" failpoints), the arena is
// left exactly as it was before the call: the hash table is rehashed into
// a fresh block and swapped in only on success, and the packed payload is
// rolled back if a later append throws. A caller that catches the failure
// may keep using the arena (same ids, same contents) or discard it.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <new>
#include <span>
#include <utility>
#include <vector>

#if defined(__linux__)
#include <sys/mman.h>
#endif

#include "util/failpoint.hpp"
#include "util/simd.hpp"

namespace ccfsp {

/// Zero-initialized block backing an open-addressing slot table. Small
/// tables sit on the heap; once a table reaches kHugeBytes the block is
/// mmap'd and tagged MADV_HUGEPAGE instead. A probe is a random access into
/// the whole table, so past a few MB nearly every lookup costs a dTLB miss
/// on 4K pages — 2MB pages put the entire table behind a handful of TLB
/// entries. The mmap path also gets its zero pages from the kernel lazily,
/// which turns the eager memset a vector would do on each 4x growth into
/// first-touch faults spread across the rehash.
template <typename Word>
class SlotBlock {
 public:
  SlotBlock() = default;
  explicit SlotBlock(std::size_t n) { reset(n); }
  ~SlotBlock() { release(); }
  SlotBlock(const SlotBlock&) = delete;
  SlotBlock& operator=(const SlotBlock&) = delete;
  SlotBlock(SlotBlock&& o) noexcept { swap(o); }
  SlotBlock& operator=(SlotBlock&& o) noexcept {
    swap(o);
    return *this;
  }

  /// Discard the current block and allocate a fresh zeroed one. The new
  /// block is acquired before the old one is released, so a std::bad_alloc
  /// leaves the current contents untouched (strong guarantee).
  void reset(std::size_t n) {
    SlotBlock next;
    next.acquire(n);
    swap(next);
  }

  void swap(SlotBlock& o) noexcept {
    std::swap(p_, o.p_);
    std::swap(n_, o.n_);
    std::swap(mapped_, o.mapped_);
  }

  Word* data() { return p_; }
  const Word* data() const { return p_; }
  std::size_t size() const { return n_; }
  Word& operator[](std::size_t i) { return p_[i]; }
  const Word& operator[](std::size_t i) const { return p_[i]; }
  const Word* begin() const { return p_; }
  const Word* end() const { return p_ + n_; }

 private:
  static constexpr std::size_t kHugeBytes = std::size_t{2} << 20;

  void acquire(std::size_t n) {
    const std::size_t bytes = n * sizeof(Word);
#if defined(__linux__)
    if (bytes >= kHugeBytes) {
      void* p = ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE, MAP_PRIVATE | MAP_ANONYMOUS,
                       -1, 0);
      if (p == MAP_FAILED) throw std::bad_alloc();
      ::madvise(p, bytes, MADV_HUGEPAGE);  // best effort; 4K pages still work
      p_ = static_cast<Word*>(p);
      n_ = n;
      mapped_ = true;
      return;
    }
#endif
    p_ = static_cast<Word*>(std::calloc(n, sizeof(Word)));
    if (p_ == nullptr) throw std::bad_alloc();
    n_ = n;
    mapped_ = false;
  }

  void release() noexcept {
    if (p_ == nullptr) return;
#if defined(__linux__)
    if (mapped_) {
      ::munmap(p_, n_ * sizeof(Word));
      p_ = nullptr;
      n_ = 0;
      return;
    }
#endif
    std::free(p_);
    p_ = nullptr;
    n_ = 0;
  }

  Word* p_ = nullptr;
  std::size_t n_ = 0;
  bool mapped_ = false;
};

/// 64-bit hash of a word span. The canonical definition lives in the simd
/// layer (simd::hash_tuples is its batched form and must match it bit for
/// bit); this alias keeps the interners' historical spelling.
inline std::uint64_t hash_words(const std::uint32_t* words, std::size_t n) {
  return simd::hash_words(words, n);
}

/// Payload compare for interner probes: spans wide enough to amortize a
/// kernel dispatch go through the simd layer (one 256-bit xor+testz per 8
/// words on the AVX2 path); narrow spans — the packed global-machine tuples
/// are 1-3 words — use a branchless xor-accumulate loop. (Not memcmp: with
/// a runtime length that's a real library call, and the probe loop makes
/// one per duplicate successor — millions on a big build.)
inline bool intern_keys_equal(const std::uint32_t* a, const std::uint32_t* b, std::size_t n) {
  if (n >= 8) return simd::equal_u32(a, b, n);
  std::uint32_t d = 0;
  for (std::size_t k = 0; k < n; ++k) d |= a[k] ^ b[k];
  return d == 0;
}

/// Interns fixed-width tuples of 32-bit words. Ids are dense and assigned in
/// first-insertion order; tuple payloads are packed back to back in one
/// vector, so iterating all interned tuples is a linear scan.
///
/// Callers that can compute a tuple's hash incrementally (the global-machine
/// build maintains a Zobrist hash across one-or-two-coordinate updates) pass
/// it to intern(tuple, h); each slot carries a 32-bit fingerprint of the
/// hash so mismatched probes are rejected without touching the (cold) packed
/// payload. The hash choice is the caller's, but must be consistent for the
/// lifetime of the arena.
class TupleArena {
 public:
  explicit TupleArena(std::size_t width, std::size_t expected = 64) : width_(width) {
    std::size_t cap = 16;
    while (cap < expected * 3) cap <<= 1;  // keep load under 1/3
    slots_.reset(cap);
    data_.reserve(expected * width_);
  }

  /// Intern `tuple` (exactly width() words); returns {dense id, fresh?}.
  std::pair<std::uint32_t, bool> intern(const std::uint32_t* tuple) {
    return intern(tuple, hash_words(tuple, width_));
  }

  /// Same, with a caller-supplied hash (all interns into one arena must use
  /// the same hash function).
  std::pair<std::uint32_t, bool> intern(const std::uint32_t* tuple, std::uint64_t h) {
    std::uint32_t conflicts = 0;
    return intern_probe<false>(tuple, h, conflicts);
  }

  /// Per-wave statistics from intern_batch. `conflicts` counts keys whose
  /// home slot held a different entry (resolution took more than one probe
  /// step) — the table-pressure signal behind the intern.wave_conflicts
  /// counter.
  struct BatchStats {
    std::uint32_t fresh = 0;
    std::uint32_t conflicts = 0;
  };

  /// Intern `n` tuples (each exactly width() words, packed back to back in
  /// `keys`) with caller-supplied hashes. Exactly equivalent to calling
  /// intern(keys + i*width, hashes[i]) in ascending i — same dense ids, same
  /// growth points, same failpoint hits, same strong guarantee per key (a
  /// throw on key k leaves keys [0, k) interned and the arena consistent) —
  /// but software-pipelined: every key's home-slot cache line is prefetched
  /// up front, and candidate payloads are prefetched a few keys ahead of
  /// their probe, so the wave overlaps the memory latency the one-at-a-time
  /// loop pays serially. out_ids[i] receives the id; out_fresh[i] (when
  /// non-null) 1/0 for fresh/seen.
  BatchStats intern_batch(const std::uint32_t* keys, const std::uint64_t* hashes,
                          std::size_t n, std::uint32_t* out_ids,
                          std::uint8_t* out_fresh = nullptr) {
    BatchStats st;
    {
      // Wave 1: home slots. A mid-batch grow invalidates these hints (the
      // resolve loop re-reads the table, so only the overlap is lost).
      const std::uint64_t* slots = slots_.data();
      const std::size_t mask = slots_.size() - 1;
      for (std::size_t i = 0; i < n; ++i) __builtin_prefetch(&slots[hashes[i] & mask]);
    }
    // Wave 2: resolve in key order. The payload hint runs a few keys ahead:
    // by then the home slot is resident (wave 1), so peeking it to find the
    // candidate payload is cheap, and the payload line arrives by probe time.
    //
    // The probe below is intern_probe<true> hand-inlined with the table view
    // (slot block, mask, payload base, count) held in locals: the resolve
    // loop's own stores make the compiler re-load those members on every key
    // if they live behind `this`. Any change to the probe or its growth
    // discipline must be mirrored in intern_probe — the contract above (same
    // growth points, same failpoint hits as the scalar loop) is load-bearing
    // for the failpoint property tests.
    constexpr std::size_t kPayloadLead = 8;
    const std::size_t w = width_;
    std::uint64_t* slots = slots_.data();
    std::size_t nslots = slots_.size();
    std::size_t mask = nslots - 1;
    const std::uint32_t* payload = data_.data();
    std::size_t cnt = count_;
    for (std::size_t i = 0; i < n; ++i) {
      if (i + kPayloadLead < n) prefetch_payload(hashes[i + kPayloadLead]);
      const std::uint64_t h = hashes[i];
      const std::uint32_t* const key = keys + i * w;
      // Pre-grow exactly like the scalar loop: checked per key, duplicate or
      // not, so an injected grow failure trips at the same key index.
      if ((cnt + 1) * 3 >= nslots) {
        grow();
        slots = slots_.data();
        nslots = slots_.size();
        mask = nslots - 1;
      }
      const std::uint64_t fp = h >> 32;
      bool collided = false;
      std::uint32_t id;
      std::uint8_t fresh;
      for (std::size_t probe = h & mask;; probe = (probe + 1) & mask) {
        const std::uint64_t slot = slots[probe];
        if ((slot & 0xffffffffull) == 0) {
          id = static_cast<std::uint32_t>(cnt);
          data_.insert(data_.end(), key, key + w);  // append: strong
          try {
            hashes_.push_back(h);
          } catch (...) {
            data_.resize(data_.size() - w);  // roll the payload back
            throw;
          }
          count_ = ++cnt;
          slots[probe] = (fp << 32) | (id + 1);
          payload = data_.data();  // append may have moved the block
          fresh = 1;
          ++st.fresh;
          break;
        }
        if ((slot >> 32) != fp) {  // fingerprint miss: skip the payload
          collided = true;
          continue;
        }
        const std::uint32_t cand = static_cast<std::uint32_t>(slot & 0xffffffffull) - 1;
        if (intern_keys_equal(payload + static_cast<std::size_t>(cand) * w, key, w)) {
          id = cand;
          fresh = 0;
          break;
        }
        collided = true;
      }
      if (collided) ++st.conflicts;
      out_ids[i] = id;
      if (out_fresh != nullptr) out_fresh[i] = fresh;
    }
    return st;
  }

  /// Batch intern without precomputed hashes: the fingerprint wave runs
  /// through the simd::hash_tuples kernel first (bit-identical to hash_words
  /// on every dispatch path), then resolves as above.
  BatchStats intern_batch(const std::uint32_t* keys, std::size_t n, std::uint32_t* out_ids,
                          std::uint8_t* out_fresh = nullptr) {
    hash_scratch_.resize(n);
    simd::hash_tuples(keys, width_, n, hash_scratch_.data());
    return intern_batch(keys, hash_scratch_.data(), n, out_ids, out_fresh);
  }

  /// Hint that intern(tuple, h) is imminent: pull the home slot's cache line
  /// in early. The BFS buffers one state's successors, prefetching each, then
  /// interns them in order — overlapping the table's cache misses.
  void prefetch(std::uint64_t h) const {
    __builtin_prefetch(&slots_[h & (slots_.size() - 1)]);
  }

  /// Second-stage hint: if the home slot already holds a fingerprint match,
  /// pull the candidate's packed payload in ahead of the memcmp. Issued a few
  /// entries ahead of intern() in the staged BFS loop.
  void prefetch_payload(std::uint64_t h) const {
    const std::uint64_t slot = slots_[h & (slots_.size() - 1)];
    if ((slot & 0xffffffffull) == 0 || (slot >> 32) != (h >> 32)) return;
    const std::uint32_t id = static_cast<std::uint32_t>(slot & 0xffffffffull) - 1;
    const std::uint32_t* p = data_.data() + static_cast<std::size_t>(id) * width_;
    __builtin_prefetch(p);
    if (width_ > 16) __builtin_prefetch(p + 16);
  }

  /// Raw view of the hash-slot block for callers that hoist the home-slot
  /// prefetch out of intern() (the global build's emission ring). The
  /// pointer and mask are invalidated by any fresh intern that grows the
  /// table — re-read them after every fresh insert.
  const std::uint64_t* slot_data() const { return slots_.data(); }
  std::size_t slot_mask() const { return slots_.size() - 1; }

  const std::uint32_t* operator[](std::uint32_t id) const {
    return data_.data() + static_cast<std::size_t>(id) * width_;
  }
  std::span<const std::uint32_t> get(std::uint32_t id) const { return {(*this)[id], width_}; }
  /// The hash `id` was interned under (for incremental successor hashing).
  std::uint64_t hash_of(std::uint32_t id) const { return hashes_[id]; }

  std::size_t size() const { return count_; }
  std::size_t width() const { return width_; }

  /// Current footprint (payload + hash slots), for budget estimates.
  std::size_t bytes() const {
    return data_.capacity() * sizeof(std::uint32_t) + slots_.size() * sizeof(std::uint64_t) +
           hashes_.capacity() * sizeof(std::uint64_t);
  }

  /// Surrender the packed payload (id * width addressing preserved). The
  /// arena is empty afterwards.
  std::vector<std::uint32_t> release_data() {
    std::vector<std::uint32_t> out = std::move(data_);
    data_.clear();
    hashes_.clear();
    slots_.reset(16);
    count_ = 0;
    return out;
  }

 private:
  /// The probe loop shared by intern() and intern_batch(). kCount statically
  /// gates the conflict bookkeeping so the single-key path pays nothing for
  /// it. Grows lazily exactly like the historical intern(): batch callers
  /// hit the same grow() points (and the same injected failures) as the
  /// equivalent scalar loop.
  template <bool kCount>
  std::pair<std::uint32_t, bool> intern_probe(const std::uint32_t* tuple, std::uint64_t h,
                                              std::uint32_t& conflicts) {
    // Grow *before* touching anything: a throwing rehash (real bad_alloc or
    // an injected one) then leaves the arena byte-identical to before the
    // call, and the insert below always has a slot free. Load is capped at
    // 1/3 and growth is 2x: clusters stay short at that load, and doubling
    // (rather than quadrupling) keeps the final table within one size class
    // of what the state count needs — the probe loop is cache/TLB-miss
    // bound, so on big models halving the table's footprint buys more than
    // fewer rehash sweeps would.
    if ((count_ + 1) * 3 >= slots_.size()) grow();
    std::size_t mask = slots_.size() - 1;
    const std::uint64_t fp = h >> 32;
    bool collided = false;
    for (std::size_t probe = h & mask;; probe = (probe + 1) & mask) {
      std::uint64_t slot = slots_[probe];
      if ((slot & 0xffffffffull) == 0) {
        const std::uint32_t id = static_cast<std::uint32_t>(count_);
        data_.insert(data_.end(), tuple, tuple + width_);  // append: strong
        try {
          hashes_.push_back(h);
        } catch (...) {
          data_.resize(data_.size() - width_);  // roll the payload back
          throw;
        }
        ++count_;
        slots_[probe] = (fp << 32) | (id + 1);
        if (kCount && collided) ++conflicts;
        return {id, true};
      }
      if ((slot >> 32) != fp) {  // fingerprint miss: skip the payload
        collided = true;
        continue;
      }
      const std::uint32_t id = static_cast<std::uint32_t>(slot & 0xffffffffull) - 1;
      if (intern_keys_equal(data_.data() + static_cast<std::size_t>(id) * width_, tuple,
                            width_)) {
        if (kCount && collided) ++conflicts;
        return {id, false};
      }
      collided = true;
    }
  }

  void grow() {
    failpoint::hit("interner.tuple_grow");
    // Rehash into a fresh block and swap only on success; a throw anywhere
    // in here leaves slots_ (and the rest of the arena) untouched.
    SlotBlock<std::uint64_t> next(slots_.size() * 2);
    const std::size_t mask = next.size() - 1;
    for (std::uint64_t slot : slots_) {
      if ((slot & 0xffffffffull) == 0) continue;
      const std::uint64_t h = hashes_[static_cast<std::uint32_t>(slot & 0xffffffffull) - 1];
      std::size_t probe = h & mask;
      while ((next[probe] & 0xffffffffull) != 0) probe = (probe + 1) & mask;
      next[probe] = slot;
    }
    slots_.swap(next);
  }

  std::size_t width_;
  std::size_t count_ = 0;
  std::vector<std::uint32_t> data_;    // count_ * width_ packed payloads
  std::vector<std::uint64_t> hashes_;  // per id, as supplied at intern time
  SlotBlock<std::uint64_t> slots_;     // fingerprint<<32 | id+1; low half 0 = empty
  std::vector<std::uint64_t> hash_scratch_;  // hash-less intern_batch staging
};

/// Interns variable-length spans of 32-bit words (canonical form is the
/// caller's business — determinization interns sorted, deduplicated sets).
/// Dense ids in first-insertion order; payloads packed, addressed by an
/// offsets table.
class SpanInterner {
 public:
  explicit SpanInterner(std::size_t expected = 64) {
    std::size_t cap = 16;
    while (cap * 10 < expected * 16) cap <<= 1;
    slots_.reset(cap);
    offsets_.push_back(0);
  }

  std::pair<std::uint32_t, bool> intern(std::span<const std::uint32_t> span) {
    // Pre-grow for the same strong guarantee as TupleArena::intern.
    if ((count_ + 1) * 16 >= slots_.size() * 10) grow();
    const std::uint64_t h = hash_words(span.data(), span.size());
    std::size_t mask = slots_.size() - 1;
    for (std::size_t probe = h & mask;; probe = (probe + 1) & mask) {
      std::uint32_t slot = slots_[probe];
      if (slot == 0) {
        const std::uint32_t id = static_cast<std::uint32_t>(count_);
        const std::size_t old_size = data_.size();
        data_.insert(data_.end(), span.begin(), span.end());  // append: strong
        try {
          offsets_.push_back(static_cast<std::uint64_t>(data_.size()));
        } catch (...) {
          data_.resize(old_size);
          throw;
        }
        ++count_;
        slots_[probe] = id + 1;
        return {id, true};
      }
      const std::uint32_t id = slot - 1;
      // The empty span is a legal key; the compare's pointers are nonnull-
      // attributed, so size 0 must short-circuit before the call. Subset
      // keys from determinization run long, so the wide-compare path routes
      // through the simd kernel (see intern_keys_equal).
      if (length(id) == span.size() &&
          (span.empty() ||
           intern_keys_equal(data_.data() + offsets_[id], span.data(), span.size()))) {
        return {id, false};
      }
    }
  }

  std::span<const std::uint32_t> get(std::uint32_t id) const {
    return {data_.data() + offsets_[id], length(id)};
  }

  std::size_t size() const { return count_; }
  std::size_t bytes() const {
    return data_.capacity() * sizeof(std::uint32_t) + slots_.size() * sizeof(std::uint32_t) +
           offsets_.capacity() * sizeof(std::uint64_t);
  }

 private:
  std::size_t length(std::uint32_t id) const {
    return static_cast<std::size_t>(offsets_[id + 1] - offsets_[id]);
  }

  void grow() {
    failpoint::hit("interner.span_grow");
    SlotBlock<std::uint32_t> next(slots_.size() * 2);
    const std::size_t mask = next.size() - 1;
    for (std::uint32_t slot : slots_) {
      if (slot == 0) continue;
      const std::uint32_t id = slot - 1;
      const std::uint64_t h = hash_words(data_.data() + offsets_[id], length(id));
      std::size_t probe = h & mask;
      while (next[probe] != 0) probe = (probe + 1) & mask;
      next[probe] = slot;
    }
    slots_.swap(next);
  }

  std::size_t count_ = 0;
  std::vector<std::uint32_t> data_;
  std::vector<std::uint64_t> offsets_;  // count_ + 1 entries
  SlotBlock<std::uint32_t> slots_;
};

}  // namespace ccfsp
