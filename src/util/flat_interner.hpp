// Flat-memory interning for the state-space engine. The explicit global
// machine and the subset constructions spend most of their time asking "have
// I seen this tuple of 32-bit ids before?"; answering that through a
// std::map<std::vector<...>, id> costs O(len * log n) word comparisons and
// two heap allocations per query. The structures here answer it with one
// 64-bit hash, an open-addressing probe, and a memcmp against storage that
// is packed contiguously into a single growable block:
//   - TupleArena    fixed-width tuples (the m-tuples of the global machine);
//                   element i of tuple t lives at data()[t * width + i].
//   - SpanInterner  variable-length sorted id sets (determinization subsets),
//                   addressed through an offsets table.
// Both assign dense ids in first-insertion order, which is what makes the
// BFS numbering of their callers deterministic.
//
// Exception safety: both interners provide the *strong* guarantee on
// intern() — if an allocation fails (for real, or injected through the
// "interner.tuple_grow" / "interner.span_grow" failpoints), the arena is
// left exactly as it was before the call: the hash table is rehashed into
// a fresh block and swapped in only on success, and the packed payload is
// rolled back if a later append throws. A caller that catches the failure
// may keep using the arena (same ids, same contents) or discard it.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <utility>
#include <vector>

#include "util/failpoint.hpp"

namespace ccfsp {

/// 64-bit hash of a word span (multiply-xor per word, murmur-style finalizer).
/// The length participates so that [1,2]+[3] and [1]+[2,3] collide no more
/// often than random spans do.
inline std::uint64_t hash_words(const std::uint32_t* words, std::size_t n) {
  std::uint64_t h = 0x9e3779b97f4a7c15ull ^ (n * 0xff51afd7ed558ccdull);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= words[i];
    h *= 0xff51afd7ed558ccdull;
    h = (h << 27) | (h >> 37);
  }
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ull;
  h ^= h >> 33;
  return h;
}

/// Interns fixed-width tuples of 32-bit words. Ids are dense and assigned in
/// first-insertion order; tuple payloads are packed back to back in one
/// vector, so iterating all interned tuples is a linear scan.
///
/// Callers that can compute a tuple's hash incrementally (the global-machine
/// build maintains a Zobrist hash across one-or-two-coordinate updates) pass
/// it to intern(tuple, h); each slot carries a 32-bit fingerprint of the
/// hash so mismatched probes are rejected without touching the (cold) packed
/// payload. The hash choice is the caller's, but must be consistent for the
/// lifetime of the arena.
class TupleArena {
 public:
  explicit TupleArena(std::size_t width, std::size_t expected = 64) : width_(width) {
    std::size_t cap = 16;
    while (cap < expected * 3) cap <<= 1;  // keep load under 1/3
    slots_.assign(cap, 0);
    data_.reserve(expected * width_);
  }

  /// Intern `tuple` (exactly width() words); returns {dense id, fresh?}.
  std::pair<std::uint32_t, bool> intern(const std::uint32_t* tuple) {
    return intern(tuple, hash_words(tuple, width_));
  }

  /// Same, with a caller-supplied hash (all interns into one arena must use
  /// the same hash function).
  std::pair<std::uint32_t, bool> intern(const std::uint32_t* tuple, std::uint64_t h) {
    // Grow *before* touching anything: a throwing rehash (real bad_alloc or
    // an injected one) then leaves the arena byte-identical to before the
    // call, and the insert below always has a slot free. Load is capped at
    // 1/3 and growth is 4x: the intern loop is probe-bound (every fresh
    // tuple walks a cluster before finding its empty slot), and the deeper
    // table both shortens clusters and quarters the number of whole-table
    // rehash sweeps on a growing state space.
    if ((count_ + 1) * 3 >= slots_.size()) grow();
    std::size_t mask = slots_.size() - 1;
    const std::uint64_t fp = h >> 32;
    for (std::size_t probe = h & mask;; probe = (probe + 1) & mask) {
      std::uint64_t slot = slots_[probe];
      if ((slot & 0xffffffffull) == 0) {
        const std::uint32_t id = static_cast<std::uint32_t>(count_);
        data_.insert(data_.end(), tuple, tuple + width_);  // append: strong
        try {
          hashes_.push_back(h);
        } catch (...) {
          data_.resize(data_.size() - width_);  // roll the payload back
          throw;
        }
        ++count_;
        slots_[probe] = (fp << 32) | (id + 1);
        return {id, true};
      }
      if ((slot >> 32) != fp) continue;  // fingerprint miss: skip the payload
      const std::uint32_t id = static_cast<std::uint32_t>(slot & 0xffffffffull) - 1;
      if (std::memcmp(data_.data() + static_cast<std::size_t>(id) * width_, tuple,
                      width_ * sizeof(std::uint32_t)) == 0) {
        return {id, false};
      }
    }
  }

  /// Hint that intern(tuple, h) is imminent: pull the home slot's cache line
  /// in early. The BFS buffers one state's successors, prefetching each, then
  /// interns them in order — overlapping the table's cache misses.
  void prefetch(std::uint64_t h) const {
    __builtin_prefetch(&slots_[h & (slots_.size() - 1)]);
  }

  /// Second-stage hint: if the home slot already holds a fingerprint match,
  /// pull the candidate's packed payload in ahead of the memcmp. Issued a few
  /// entries ahead of intern() in the staged BFS loop.
  void prefetch_payload(std::uint64_t h) const {
    const std::uint64_t slot = slots_[h & (slots_.size() - 1)];
    if ((slot & 0xffffffffull) == 0 || (slot >> 32) != (h >> 32)) return;
    const std::uint32_t id = static_cast<std::uint32_t>(slot & 0xffffffffull) - 1;
    const std::uint32_t* p = data_.data() + static_cast<std::size_t>(id) * width_;
    __builtin_prefetch(p);
    if (width_ > 16) __builtin_prefetch(p + 16);
  }

  /// Raw view of the hash-slot block for callers that hoist the home-slot
  /// prefetch out of intern() (the global build's emission ring). The
  /// pointer and mask are invalidated by any fresh intern that grows the
  /// table — re-read them after every fresh insert.
  const std::uint64_t* slot_data() const { return slots_.data(); }
  std::size_t slot_mask() const { return slots_.size() - 1; }

  const std::uint32_t* operator[](std::uint32_t id) const {
    return data_.data() + static_cast<std::size_t>(id) * width_;
  }
  std::span<const std::uint32_t> get(std::uint32_t id) const { return {(*this)[id], width_}; }
  /// The hash `id` was interned under (for incremental successor hashing).
  std::uint64_t hash_of(std::uint32_t id) const { return hashes_[id]; }

  std::size_t size() const { return count_; }
  std::size_t width() const { return width_; }

  /// Current footprint (payload + hash slots), for budget estimates.
  std::size_t bytes() const {
    return data_.capacity() * sizeof(std::uint32_t) + slots_.size() * sizeof(std::uint64_t) +
           hashes_.capacity() * sizeof(std::uint64_t);
  }

  /// Surrender the packed payload (id * width addressing preserved). The
  /// arena is empty afterwards.
  std::vector<std::uint32_t> release_data() {
    std::vector<std::uint32_t> out = std::move(data_);
    data_.clear();
    hashes_.clear();
    slots_.assign(16, 0);
    count_ = 0;
    return out;
  }

 private:
  void grow() {
    failpoint::hit("interner.tuple_grow");
    // Rehash into a fresh block and swap only on success; a throw anywhere
    // in here leaves slots_ (and the rest of the arena) untouched.
    std::vector<std::uint64_t> next(slots_.size() * 4, 0);
    const std::size_t mask = next.size() - 1;
    for (std::uint64_t slot : slots_) {
      if ((slot & 0xffffffffull) == 0) continue;
      const std::uint64_t h = hashes_[static_cast<std::uint32_t>(slot & 0xffffffffull) - 1];
      std::size_t probe = h & mask;
      while ((next[probe] & 0xffffffffull) != 0) probe = (probe + 1) & mask;
      next[probe] = slot;
    }
    slots_.swap(next);
  }

  std::size_t width_;
  std::size_t count_ = 0;
  std::vector<std::uint32_t> data_;    // count_ * width_ packed payloads
  std::vector<std::uint64_t> hashes_;  // per id, as supplied at intern time
  std::vector<std::uint64_t> slots_;   // fingerprint<<32 | id+1; low half 0 = empty
};

/// Interns variable-length spans of 32-bit words (canonical form is the
/// caller's business — determinization interns sorted, deduplicated sets).
/// Dense ids in first-insertion order; payloads packed, addressed by an
/// offsets table.
class SpanInterner {
 public:
  explicit SpanInterner(std::size_t expected = 64) {
    std::size_t cap = 16;
    while (cap * 10 < expected * 16) cap <<= 1;
    slots_.assign(cap, 0);
    offsets_.push_back(0);
  }

  std::pair<std::uint32_t, bool> intern(std::span<const std::uint32_t> span) {
    // Pre-grow for the same strong guarantee as TupleArena::intern.
    if ((count_ + 1) * 16 >= slots_.size() * 10) grow();
    const std::uint64_t h = hash_words(span.data(), span.size());
    std::size_t mask = slots_.size() - 1;
    for (std::size_t probe = h & mask;; probe = (probe + 1) & mask) {
      std::uint32_t slot = slots_[probe];
      if (slot == 0) {
        const std::uint32_t id = static_cast<std::uint32_t>(count_);
        const std::size_t old_size = data_.size();
        data_.insert(data_.end(), span.begin(), span.end());  // append: strong
        try {
          offsets_.push_back(static_cast<std::uint64_t>(data_.size()));
        } catch (...) {
          data_.resize(old_size);
          throw;
        }
        ++count_;
        slots_[probe] = id + 1;
        return {id, true};
      }
      const std::uint32_t id = slot - 1;
      // The empty span is a legal key; memcmp's pointers are nonnull-
      // attributed, so size 0 must short-circuit before the call.
      if (length(id) == span.size() &&
          (span.empty() || std::memcmp(data_.data() + offsets_[id], span.data(),
                                       span.size() * sizeof(std::uint32_t)) == 0)) {
        return {id, false};
      }
    }
  }

  std::span<const std::uint32_t> get(std::uint32_t id) const {
    return {data_.data() + offsets_[id], length(id)};
  }

  std::size_t size() const { return count_; }
  std::size_t bytes() const {
    return data_.capacity() * sizeof(std::uint32_t) + slots_.size() * sizeof(std::uint32_t) +
           offsets_.capacity() * sizeof(std::uint64_t);
  }

 private:
  std::size_t length(std::uint32_t id) const {
    return static_cast<std::size_t>(offsets_[id + 1] - offsets_[id]);
  }

  void grow() {
    failpoint::hit("interner.span_grow");
    std::vector<std::uint32_t> next(slots_.size() * 2, 0);
    const std::size_t mask = next.size() - 1;
    for (std::uint32_t slot : slots_) {
      if (slot == 0) continue;
      const std::uint32_t id = slot - 1;
      const std::uint64_t h = hash_words(data_.data() + offsets_[id], length(id));
      std::size_t probe = h & mask;
      while (next[probe] != 0) probe = (probe + 1) & mask;
      next[probe] = slot;
    }
    slots_.swap(next);
  }

  std::size_t count_ = 0;
  std::vector<std::uint32_t> data_;
  std::vector<std::uint64_t> offsets_;  // count_ + 1 entries
  std::vector<std::uint32_t> slots_;
};

}  // namespace ccfsp
