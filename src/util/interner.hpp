// String interner: maps strings to dense 32-bit ids and back. Used by the
// Alphabet so that actions are compared and hashed as integers on hot paths.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace ccfsp {

class Interner {
 public:
  using Id = std::uint32_t;

  /// Intern `s`, returning its id (existing or fresh).
  Id intern(std::string_view s) {
    auto it = ids_.find(std::string(s));
    if (it != ids_.end()) return it->second;
    Id id = static_cast<Id>(strings_.size());
    strings_.emplace_back(s);
    ids_.emplace(strings_.back(), id);
    return id;
  }

  /// Lookup without inserting.
  std::optional<Id> find(std::string_view s) const {
    auto it = ids_.find(std::string(s));
    if (it == ids_.end()) return std::nullopt;
    return it->second;
  }

  const std::string& str(Id id) const { return strings_[id]; }
  std::size_t size() const { return strings_.size(); }

 private:
  std::vector<std::string> strings_;
  std::unordered_map<std::string, Id> ids_;
};

}  // namespace ccfsp
