#include "util/failpoint.hpp"

#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <map>
#include <mutex>
#include <new>
#include <thread>

#include "util/budget.hpp"
#include "util/rng.hpp"

namespace ccfsp::failpoint {

namespace detail {
std::atomic<int> g_armed{0};
}  // namespace detail

namespace {

struct Site {
  Spec spec;
  std::uint64_t count = 0;  // hits since armed
  Rng rng{0x5eed};          // reseeded from spec.seed at arm time
};

struct Registry {
  std::mutex mu;
  std::condition_variable stall_cv;
  std::uint64_t stall_epoch = 0;  // bumped by release_stalls()/disarm
  std::map<std::string, Site> sites;
};

Registry& registry() {
  static Registry* r = new Registry();  // leaked: hits may race static dtors
  return *r;
}

BudgetDimension to_dimension(BudgetKind k) {
  switch (k) {
    case BudgetKind::kStates: return BudgetDimension::kStates;
    case BudgetKind::kBytes: return BudgetDimension::kBytes;
    case BudgetKind::kDeadline: return BudgetDimension::kDeadline;
    case BudgetKind::kCancelled: return BudgetDimension::kCancelled;
  }
  return BudgetDimension::kStates;
}

}  // namespace

namespace detail {

void hit_slow(const char* site_name) {
  Registry& reg = registry();
  Spec spec;
  std::uint64_t index = 0;
  bool fire = false;
  {
    std::lock_guard<std::mutex> lock(reg.mu);
    auto it = reg.sites.find(site_name);
    if (it == reg.sites.end()) return;
    Site& site = it->second;
    index = ++site.count;
    switch (site.spec.trigger) {
      case Trigger::kOnHit:
        fire = index == site.spec.n;
        break;
      case Trigger::kEveryK:
        fire = site.spec.n > 0 && index % site.spec.n == 0;
        break;
      case Trigger::kProbability:
        fire = site.spec.den > 0 && site.rng.chance(site.spec.num, site.spec.den);
        break;
    }
    if (fire) spec = it->second.spec;  // copy out: act outside the lock
  }
  if (!fire) return;

  switch (spec.action) {
    case Action::kThrowBudget:
      throw BudgetExceeded(to_dimension(spec.dimension), site_name, 0, 0);
    case Action::kThrowBadAlloc:
      throw std::bad_alloc();
    case Action::kDelay:
      std::this_thread::sleep_for(std::chrono::milliseconds(spec.delay_ms));
      return;
    case Action::kStall: {
      // Park until released/disarmed, but never past the hard cap — an
      // armed stall must not be able to wedge a run permanently.
      std::unique_lock<std::mutex> lock(reg.mu);
      const std::uint64_t epoch = reg.stall_epoch;
      reg.stall_cv.wait_for(lock, std::chrono::milliseconds(spec.delay_ms), [&] {
        return reg.stall_epoch != epoch || reg.sites.find(site_name) == reg.sites.end();
      });
      return;
    }
    case Action::kCallback:
      if (spec.callback) spec.callback(site_name, index);
      return;
  }
}

}  // namespace detail

void arm(const std::string& site, Spec spec) {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  auto [it, fresh] = reg.sites.try_emplace(site);
  it->second.spec = std::move(spec);
  it->second.count = 0;
  it->second.rng = Rng(it->second.spec.seed);
  if (fresh) detail::g_armed.fetch_add(1, std::memory_order_relaxed);
}

void disarm(const std::string& site) {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  if (reg.sites.erase(site) > 0) {
    detail::g_armed.fetch_sub(1, std::memory_order_relaxed);
    ++reg.stall_epoch;
    reg.stall_cv.notify_all();
  }
}

void disarm_all() {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  if (!reg.sites.empty()) {
    detail::g_armed.fetch_sub(static_cast<int>(reg.sites.size()), std::memory_order_relaxed);
    reg.sites.clear();
  }
  ++reg.stall_epoch;
  reg.stall_cv.notify_all();
}

void release_stalls() {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  ++reg.stall_epoch;
  reg.stall_cv.notify_all();
}

std::uint64_t hits(const std::string& site) {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  auto it = reg.sites.find(site);
  return it == reg.sites.end() ? 0 : it->second.count;
}

std::vector<std::string> armed_sites() {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  std::vector<std::string> out;
  out.reserve(reg.sites.size());
  for (const auto& [name, _] : reg.sites) out.push_back(name);
  return out;
}

namespace {

/// Split `s` on the first occurrence of `c`; returns {s, ""} when absent.
std::pair<std::string, std::string> split1(const std::string& s, char c) {
  auto pos = s.find(c);
  if (pos == std::string::npos) return {s, std::string()};
  return {s.substr(0, pos), s.substr(pos + 1)};
}

bool parse_u64(const std::string& s, std::uint64_t& out) {
  if (s.empty()) return false;
  std::uint64_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    if (v > (UINT64_MAX - (c - '0')) / 10) return false;
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  out = v;
  return true;
}

bool parse_action(const std::string& text, Spec& spec, std::string* error) {
  auto [head, rest] = split1(text, ':');
  if (head == "budget") {
    spec.action = Action::kThrowBudget;
    if (rest.empty() || rest == "states") {
      spec.dimension = BudgetKind::kStates;
    } else if (rest == "bytes") {
      spec.dimension = BudgetKind::kBytes;
    } else if (rest == "deadline") {
      spec.dimension = BudgetKind::kDeadline;
    } else if (rest == "cancel" || rest == "cancelled") {
      spec.dimension = BudgetKind::kCancelled;
    } else {
      if (error) *error = "unknown budget dimension '" + rest + "'";
      return false;
    }
    return true;
  }
  if (head == "bad_alloc") {
    if (!rest.empty()) {
      if (error) *error = "bad_alloc takes no argument";
      return false;
    }
    spec.action = Action::kThrowBadAlloc;
    return true;
  }
  if (head == "delay" || head == "stall") {
    spec.action = head == "delay" ? Action::kDelay : Action::kStall;
    if (!parse_u64(rest, spec.delay_ms)) {
      if (error) *error = head + " needs a millisecond count, got '" + rest + "'";
      return false;
    }
    return true;
  }
  if (error) *error = "unknown action '" + head + "'";
  return false;
}

bool parse_trigger(const std::string& text, Spec& spec, std::string* error) {
  auto [head, rest] = split1(text, ':');
  if (head == "hit" || head == "every") {
    spec.trigger = head == "hit" ? Trigger::kOnHit : Trigger::kEveryK;
    if (!parse_u64(rest, spec.n) || spec.n == 0) {
      if (error) *error = head + " needs a positive count, got '" + rest + "'";
      return false;
    }
    return true;
  }
  if (head == "prob") {
    spec.trigger = Trigger::kProbability;
    auto [frac, seed] = split1(rest, ':');
    auto [num, den] = split1(frac, '/');
    if (!parse_u64(num, spec.num) || !parse_u64(den, spec.den) || spec.den == 0) {
      if (error) *error = "prob needs num/den, got '" + frac + "'";
      return false;
    }
    if (!seed.empty() && !parse_u64(seed, spec.seed)) {
      if (error) *error = "bad prob seed '" + seed + "'";
      return false;
    }
    return true;
  }
  if (error) *error = "unknown trigger '" + head + "'";
  return false;
}

}  // namespace

bool parse_and_arm(const std::string& config, std::string* error) {
  std::size_t begin = 0;
  while (begin <= config.size()) {
    std::size_t end = config.find_first_of(";,", begin);
    if (end == std::string::npos) end = config.size();
    std::string entry = config.substr(begin, end - begin);
    begin = end + 1;
    // Trim surrounding whitespace.
    while (!entry.empty() && (entry.front() == ' ' || entry.front() == '\t')) entry.erase(0, 1);
    while (!entry.empty() && (entry.back() == ' ' || entry.back() == '\t')) entry.pop_back();
    if (entry.empty()) {
      if (end == config.size()) break;
      continue;
    }
    auto [site, spec_text] = split1(entry, '=');
    if (site.empty() || spec_text.empty()) {
      if (error) *error = "expected site=action[@trigger], got '" + entry + "'";
      return false;
    }
    auto [action_text, trigger_text] = split1(spec_text, '@');
    Spec spec;
    if (!parse_action(action_text, spec, error)) return false;
    if (!trigger_text.empty() && !parse_trigger(trigger_text, spec, error)) return false;
    arm(site, std::move(spec));
    if (end == config.size()) break;
  }
  return true;
}

bool arm_from_env(std::string* error) {
  const char* env = std::getenv("CCFSP_FAILPOINTS");
  if (!env || !*env) return true;
  return parse_and_arm(env, error);
}

const std::vector<std::string>& catalog() {
  static const std::vector<std::string> kSites = {
      "analyze.rung",          // success/analyze.cpp: entering a ladder rung
      "cache.evict",           // fsp/cache.cpp: per LRU eviction (memo + fsp pool)
      "cache.fill",            // fsp/cache.cpp: per-state row of FspAnalysisCache
      "cache.nf_memo",         // fsp/cache.cpp: NormalFormMemo hit / store
      "determinize.subset",    // semantics/poss_automaton.cpp: fresh DFA subset
      "global.intern_ring",    // success/global.cpp: per expanded state (sequential)
      "global.level",          // success/global.cpp: per BFS level (parallel)
      "global.worker",         // success/global.cpp: per expanded state (worker)
      "interner.span_grow",    // util/flat_interner.hpp: SpanInterner rehash
      "interner.tuple_grow",   // util/flat_interner.hpp: TupleArena rehash
      "normal_form.refine",    // util/refine.cpp: per popped splitter block
      "parse.process",         // fsp/parse.cpp: per parsed process block
      "server.accept",         // server/daemon.cpp: per accepted connection
      "server.enqueue",        // server/service.cpp: per admission attempt
      "server.frame_read",     // server/daemon.cpp: per complete request frame
      "server.worker",         // server/service.cpp: per dequeued request
      "snapshot.corrupt",      // util/io.cpp: bit-flip the payload, commit anyway
      "snapshot.fsync",        // util/io.cpp: before fsync of the temp file
      "snapshot.load_section", // snapshot/snapshot.cpp: per section validated on load
      "snapshot.rename",       // util/io.cpp: after fsync, before the rename commit
      "snapshot.write_short",  // util/io.cpp: before the payload tail (torn write)
  };
  return kSites;
}

}  // namespace ccfsp::failpoint
