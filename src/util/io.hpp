// Low-level I/O substrate shared by the snapshot subsystem and the daemon:
// EINTR-safe syscall wrappers (one audited retry loop instead of inline
// copies at every call site), CRC32C (Castagnoli) for section checksums,
// and crash-safe whole-file replacement via the classic temp-file + fsync +
// rename + directory-fsync dance. Failure injection for the write path goes
// through the snapshot.* failpoint sites (see failpoint::catalog()).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace ccfsp::ioutil {

/// CRC32C (Castagnoli polynomial 0x1EDC6F41, reflected), the checksum the
/// snapshot format uses per section and for its footer commit record.
/// Table-driven (slicing-by-4); `seed` chains incremental computations —
/// pass a previous result to continue it over the next buffer.
std::uint32_t crc32c(const void* data, std::size_t n, std::uint32_t seed = 0);

/// ::read that retries EINTR. Returns the syscall result otherwise
/// (0 on EOF, -1 with errno set on any other error).
long read_retry(int fd, void* buf, std::size_t n);

/// ::write that retries EINTR.
long write_retry(int fd, const void* buf, std::size_t n);

/// ::send that retries EINTR (flags pass through, e.g. MSG_NOSIGNAL).
long send_retry(int fd, const void* buf, std::size_t n, int flags);

/// ::accept that retries EINTR. Returns the connection fd, or -1 with
/// errno set (never EINTR).
int accept_retry(int listen_fd);

/// Write all n bytes, retrying EINTR and short writes. False on error.
bool write_full(int fd, const void* buf, std::size_t n);

/// Read exactly n bytes, retrying EINTR and short reads. False on EOF or
/// error before n bytes arrived.
bool read_full(int fd, void* buf, std::size_t n);

/// Read a whole regular file into `out`. False (with *error set when
/// non-null) if the file cannot be opened or read.
bool read_file(const std::string& path, std::string* out, std::string* error = nullptr);

/// Atomically replace `path` with `data`: write `path`.tmp.<pid>, fsync it,
/// rename over `path`, fsync the parent directory. A crash at any point
/// leaves either the old file or the new one, never a mix; a failure leaves
/// `path` untouched (the temp file is unlinked on the error paths that
/// reach it). Failpoint sites, in write order:
///   snapshot.write_short — before the final bytes of the payload are
///     written (an armed throw leaves a torn temp file, exercising the
///     short-write path);
///   snapshot.corrupt — after the payload is staged; an armed throw is
///     swallowed and instead flips one bit of the payload mid-file, so the
///     commit SUCCEEDS with a corrupted file (exercising load-side CRC
///     detection, the "silently wrong machine" guard);
///   snapshot.fsync — before fsync(tmp);
///   snapshot.rename — after fsync, before the rename commit point.
/// Returns false with *error set (when non-null) on any failure.
bool atomic_write_file(const std::string& path, const void* data, std::size_t n,
                       std::string* error = nullptr);

inline bool atomic_write_file(const std::string& path, const std::string& data,
                              std::string* error = nullptr) {
  return atomic_write_file(path, data.data(), data.size(), error);
}

}  // namespace ccfsp::ioutil
