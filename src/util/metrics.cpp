#include "util/metrics.hpp"

#include <algorithm>
#include <cassert>
#include <memory>
#include <mutex>

namespace ccfsp::metrics {

namespace {

struct CounterInfo {
  const char* name;
  Kind kind;
};

// Keep in catalogue order; the static_assert below catches a missing row.
constexpr CounterInfo kCounterInfo[] = {
    {"global.states", Kind::kSum},
    {"global.edges", Kind::kSum},
    {"global.levels", Kind::kSum},
    {"global.levels_spawned", Kind::kSum},
    {"global.frontier_peak", Kind::kMax},
    {"global.ring_interns", Kind::kSum},
    {"intern.waves", Kind::kSum},
    {"intern.wave_keys", Kind::kSum},
    {"intern.wave_conflicts", Kind::kSum},
    {"frontier.chunks", Kind::kSum},
    {"csr.bytes", Kind::kMax},
    {"determinize.subsets", Kind::kSum},
    {"determinize.closures", Kind::kSum},
    {"determinize.closure_states", Kind::kSum},
    {"simd.dispatch", Kind::kMax},
    {"refine.pops", Kind::kSum},
    {"refine.splits", Kind::kSum},
    {"refine.smaller_half", Kind::kSum},
    {"refine.both_halves", Kind::kSum},
    {"fsp_cache.builds", Kind::kSum},
    {"fsp_cache.states", Kind::kSum},
    {"nf_memo.lookups", Kind::kSum},
    {"nf_memo.hits", Kind::kSum},
    {"nf_memo.misses", Kind::kSum},
    {"nf_memo.stores", Kind::kSum},
    {"nf_memo.stored_bytes", Kind::kSum},
    {"cache.evictions", Kind::kSum},
    {"cache.bytes", Kind::kMax},
    {"ladder.attempts", Kind::kSum},
    {"ladder.decided", Kind::kSum},
    {"ladder.unsupported", Kind::kSum},
    {"ladder.budget_trips", Kind::kSum},
    {"ladder.retries", Kind::kSum},
    {"ladder.skips", Kind::kSum},
    {"snapshot.saves", Kind::kSum},
    {"snapshot.save_failures", Kind::kSum},
    {"snapshot.loads", Kind::kSum},
    {"snapshot.cold_starts", Kind::kSum},
    {"snapshot.bytes_written", Kind::kSum},
    {"snapshot.bytes_read", Kind::kSum},
    {"checkpoint.writes", Kind::kSum},
    {"checkpoint.resumes", Kind::kSum},
    {"checkpoint.resumed_states", Kind::kSum},
};
static_assert(sizeof(kCounterInfo) / sizeof(kCounterInfo[0]) == kNumCounters,
              "counter catalogue table out of sync with the Counter enum");

// One node of the live span tree. Nodes are allocated once, never move, and
// are only ever freed at process exit (active trees, then graveyard), so a
// ScopedSpan may safely write into its node even after a (contract-
// violating) reset() raced with it. count/ns take real fetch_adds: distinct
// threads walking the same span path share the node. Spans are coarse
// (phases, not per-edge work), so this is off the hot path by construction.
struct Node {
  std::string name;
  std::atomic<std::uint64_t> count{0};
  std::atomic<std::uint64_t> ns{0};
  std::vector<std::unique_ptr<Node>> children;

  explicit Node(std::string n) : name(std::move(n)) {}
};

// Per-thread counter shard. Only the owning thread writes (plain
// load+store, relaxed — no lock prefix on the hot path); snapshot() and
// reset() read/write it from other threads only under the registry mutex
// while the owner is quiesced, and the atomics keep even contract
// violations defined behaviour.
struct Shard {
  std::array<std::atomic<std::uint64_t>, kNumCounters> values{};
};

struct Registry {
  std::mutex mu;
  int enable_depth = 0;          // mirrors g_enabled, kept for invariants
  int collect_depth = 0;         // nesting of ScopedCollect
  std::uint64_t epoch = 0;       // bumped by reset(); invalidates cursors
  std::vector<Shard*> live;      // shards of running threads (not owned)
  std::array<std::uint64_t, kNumCounters> retired{};  // merged dead shards
  std::unique_ptr<Node> root = std::make_unique<Node>("");
  std::vector<std::unique_ptr<Node>> graveyard;  // trees displaced by reset()
};

// Leaked singleton: thread-exit hooks and late ScopedSpans may run during
// static destruction, after a function-local static would have died.
Registry& registry() {
  static Registry* g = new Registry;
  return *g;
}

void merge_into(std::array<std::uint64_t, kNumCounters>& out, const Shard& s) {
  for (std::size_t i = 0; i < kNumCounters; ++i) {
    const std::uint64_t v = s.values[i].load(std::memory_order_relaxed);
    if (kCounterInfo[i].kind == Kind::kMax) {
      out[i] = std::max(out[i], v);
    } else {
      out[i] += v;
    }
  }
}

// Registers with the registry on first use, merges into the retired totals
// on thread exit so counts from joined build_global workers survive them.
struct ShardHandle {
  Shard* shard;

  ShardHandle() : shard(new Shard) {
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    r.live.push_back(shard);
  }
  ~ShardHandle() {
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    merge_into(r.retired, *shard);
    r.live.erase(std::remove(r.live.begin(), r.live.end(), shard), r.live.end());
    delete shard;
  }
};

Shard& local_shard() {
  thread_local ShardHandle handle;
  return *handle.shard;
}

// Per-thread position in the span tree. The epoch check re-roots a thread
// whose cached path was displaced into the graveyard by reset().
struct SpanCursor {
  std::uint64_t epoch = ~std::uint64_t{0};
  std::vector<Node*> stack;
};

SpanCursor& local_cursor() {
  thread_local SpanCursor cursor;
  return cursor;
}

void copy_tree(const Node& from, SpanNode& to) {
  to.name = from.name;
  to.count = from.count.load(std::memory_order_relaxed);
  to.total_ns = from.ns.load(std::memory_order_relaxed);
  to.children.reserve(from.children.size());
  for (const auto& child : from.children) {
    copy_tree(*child, to.children.emplace_back());
  }
}

}  // namespace

namespace detail {

std::atomic<int> g_enabled{0};

void add_slow(Counter c, std::uint64_t delta) {
  auto& v = local_shard().values[static_cast<std::size_t>(c)];
  v.store(v.load(std::memory_order_relaxed) + delta, std::memory_order_relaxed);
}

void max_slow(Counter c, std::uint64_t value) {
  auto& v = local_shard().values[static_cast<std::size_t>(c)];
  if (v.load(std::memory_order_relaxed) < value) {
    v.store(value, std::memory_order_relaxed);
  }
}

void* span_begin_slow(const char* name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  SpanCursor& cursor = local_cursor();
  if (cursor.epoch != r.epoch) {
    cursor.stack.clear();
    cursor.epoch = r.epoch;
  }
  Node* parent = cursor.stack.empty() ? r.root.get() : cursor.stack.back();
  Node* node = nullptr;
  for (const auto& child : parent->children) {
    if (child->name == name) {
      node = child.get();
      break;
    }
  }
  if (!node) {
    node = parent->children.emplace_back(std::make_unique<Node>(name)).get();
  }
  cursor.stack.push_back(node);
  return node;
}

void span_end_slow(void* opaque, std::uint64_t ns) {
  Node* node = static_cast<Node*>(opaque);
  node->count.fetch_add(1, std::memory_order_relaxed);
  node->ns.fetch_add(ns, std::memory_order_relaxed);
  SpanCursor& cursor = local_cursor();
  // A reset() between begin and end cleared the cursor (epoch bump); the
  // sample above still lands in the graveyarded node, we just don't pop.
  if (!cursor.stack.empty() && cursor.stack.back() == node) {
    cursor.stack.pop_back();
  }
}

}  // namespace detail

const char* name(Counter c) {
  return kCounterInfo[static_cast<std::size_t>(c)].name;
}

Kind kind(Counter c) {
  return kCounterInfo[static_cast<std::size_t>(c)].kind;
}

const std::vector<Counter>& execution_shape_counters() {
  static const std::vector<Counter> kShape = {
      Counter::kGlobalLevels,
      Counter::kGlobalLevelsSpawned,
      Counter::kGlobalFrontierPeak,
      Counter::kGlobalRingInterns,
      Counter::kInternWaves,
      Counter::kInternWaveKeys,
      Counter::kInternWaveConflicts,
      Counter::kFrontierChunks,
      Counter::kSimdDispatch,
      Counter::kSnapshotSaves,
      Counter::kSnapshotSaveFailures,
      Counter::kSnapshotLoads,
      Counter::kSnapshotColdStarts,
      Counter::kSnapshotBytesWritten,
      Counter::kSnapshotBytesRead,
      Counter::kCheckpointWrites,
      Counter::kCheckpointResumes,
      Counter::kCheckpointResumedStates,
  };
  return kShape;
}

void enable() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  ++r.enable_depth;
  detail::g_enabled.store(r.enable_depth, std::memory_order_relaxed);
}

void disable() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  assert(r.enable_depth > 0 && "disable() without matching enable()");
  if (r.enable_depth > 0) --r.enable_depth;
  detail::g_enabled.store(r.enable_depth, std::memory_order_relaxed);
}

void reset() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  r.retired.fill(0);
  for (Shard* s : r.live) {
    for (auto& v : s->values) v.store(0, std::memory_order_relaxed);
  }
  // Displace rather than destroy the old tree: a ScopedSpan opened before
  // this reset still holds a pointer into it.
  r.graveyard.push_back(std::move(r.root));
  r.root = std::make_unique<Node>("");
  ++r.epoch;
}

Snapshot snapshot() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  Snapshot snap;
  snap.counters = r.retired;
  for (const Shard* s : r.live) merge_into(snap.counters, *s);
  copy_tree(*r.root, snap.spans);
  return snap;
}

ScopedCollect::ScopedCollect(MetricsSink* sink) : sink_(sink) {
  if (!sink_) return;
  enable();
  Registry& r = registry();
  bool outermost = false;
  {
    std::lock_guard<std::mutex> lock(r.mu);
    outermost = r.collect_depth++ == 0;
  }
  if (outermost) reset();
}

ScopedCollect::~ScopedCollect() {
  if (!sink_) return;
  sink_->result = snapshot();
  {
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    --r.collect_depth;
  }
  disable();
}

}  // namespace ccfsp::metrics
