#include "util/version.hpp"

#ifndef CCFSP_GIT_DESCRIBE
#define CCFSP_GIT_DESCRIBE "unknown"
#endif

namespace ccfsp {

const char* build_git_describe() { return CCFSP_GIT_DESCRIBE; }

std::string build_info_string(const char* tool) {
  return std::string(tool) + " " + CCFSP_GIT_DESCRIBE + " (snapshot format " +
         std::to_string(kSnapshotFormatVersion) + ")";
}

}  // namespace ccfsp
