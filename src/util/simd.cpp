#include "util/simd.hpp"

#include <bit>
#include <cstdlib>
#include <cstring>

// The AVX2 path is compiled with per-function target attributes (no -mavx2
// needed for the translation unit), so a binary built for plain x86-64 still
// carries it and picks it at runtime. Non-x86 or non-GNU toolchains compile
// the scalar table only.
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define CCFSP_SIMD_X86 1
#include <immintrin.h>
#else
#define CCFSP_SIMD_X86 0
#endif

namespace ccfsp::simd {

namespace {

// ---- scalar path -----------------------------------------------------------
// Plain word loops. Under a -mavx2 build the compiler may auto-vectorize
// these; they remain the "scalar algorithm" and stay bit-identical — every
// kernel is exact bitwise arithmetic.

void scalar_or_into(std::uint64_t* dst, const std::uint64_t* src, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] |= src[i];
}

void scalar_and_into(std::uint64_t* dst, const std::uint64_t* src, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] &= src[i];
}

void scalar_andnot_into(std::uint64_t* dst, const std::uint64_t* src, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] &= ~src[i];
}

std::uint64_t scalar_popcount(const std::uint64_t* w, std::size_t n) {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < n; ++i) total += static_cast<std::uint64_t>(std::popcount(w[i]));
  return total;
}

bool scalar_any(const std::uint64_t* w, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i)
    if (w[i] != 0) return true;
  return false;
}

bool scalar_intersects(const std::uint64_t* a, const std::uint64_t* b, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i)
    if (a[i] & b[i]) return true;
  return false;
}

bool scalar_is_subset_of(const std::uint64_t* a, const std::uint64_t* b, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i)
    if (a[i] & ~b[i]) return false;
  return true;
}

std::size_t scalar_next_nonzero_word(const std::uint64_t* w, std::size_t n, std::size_t from) {
  for (std::size_t i = from; i < n; ++i)
    if (w[i] != 0) return i;
  return n;
}

constexpr detail::Kernels kScalarKernels = {
    scalar_or_into,    scalar_and_into,     scalar_andnot_into,
    scalar_popcount,   scalar_any,          scalar_intersects,
    scalar_is_subset_of, scalar_next_nonzero_word,
};

#if CCFSP_SIMD_X86

// ---- AVX2 path -------------------------------------------------------------
// 64-byte sweeps: two 256-bit lanes per iteration for the streaming ops,
// testz/testc for the early-exit predicates, and the classic nibble-LUT +
// psadbw horizontal popcount. All loads are unaligned (loadu): the callers'
// spans live in std::vector storage with no alignment guarantee.

__attribute__((target("avx2"))) void avx2_or_into(std::uint64_t* dst, const std::uint64_t* src,
                                                  std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256i a0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    __m256i a1 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i + 4));
    __m256i b0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    __m256i b1 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i + 4));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), _mm256_or_si256(a0, b0));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i + 4), _mm256_or_si256(a1, b1));
  }
  for (; i < n; ++i) dst[i] |= src[i];
}

__attribute__((target("avx2"))) void avx2_and_into(std::uint64_t* dst, const std::uint64_t* src,
                                                   std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256i a0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    __m256i a1 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i + 4));
    __m256i b0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    __m256i b1 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i + 4));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), _mm256_and_si256(a0, b0));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i + 4), _mm256_and_si256(a1, b1));
  }
  for (; i < n; ++i) dst[i] &= src[i];
}

__attribute__((target("avx2"))) void avx2_andnot_into(std::uint64_t* dst,
                                                      const std::uint64_t* src, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256i a0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    __m256i a1 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i + 4));
    __m256i b0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    __m256i b1 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i + 4));
    // andnot computes ~first & second, so src goes first.
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), _mm256_andnot_si256(b0, a0));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i + 4), _mm256_andnot_si256(b1, a1));
  }
  for (; i < n; ++i) dst[i] &= ~src[i];
}

__attribute__((target("avx2,popcnt"))) std::uint64_t avx2_popcount(const std::uint64_t* w,
                                                                   std::size_t n) {
  const __m256i lut =
      _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4, 0, 1, 1, 2, 1, 2, 2, 3,
                       1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low = _mm256_set1_epi8(0x0f);
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + i));
    __m256i lo = _mm256_shuffle_epi8(lut, _mm256_and_si256(v, low));
    __m256i hi = _mm256_shuffle_epi8(lut, _mm256_and_si256(_mm256_srli_epi16(v, 4), low));
    acc = _mm256_add_epi64(
        acc, _mm256_sad_epu8(_mm256_add_epi8(lo, hi), _mm256_setzero_si256()));
  }
  std::uint64_t lanes[4];
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(lanes), acc);
  std::uint64_t total = lanes[0] + lanes[1] + lanes[2] + lanes[3];
  for (; i < n; ++i) total += static_cast<std::uint64_t>(_mm_popcnt_u64(w[i]));
  return total;
}

__attribute__((target("avx2"))) bool avx2_any(const std::uint64_t* w, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + i));
    if (!_mm256_testz_si256(v, v)) return true;
  }
  for (; i < n; ++i)
    if (w[i] != 0) return true;
  return false;
}

__attribute__((target("avx2"))) bool avx2_intersects(const std::uint64_t* a,
                                                     const std::uint64_t* b, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    if (!_mm256_testz_si256(va, vb)) return true;
  }
  for (; i < n; ++i)
    if (a[i] & b[i]) return true;
  return false;
}

__attribute__((target("avx2"))) bool avx2_is_subset_of(const std::uint64_t* a,
                                                       const std::uint64_t* b, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    // testc(b, a) == 1  <=>  (~b & a) == 0  <=>  a ⊆ b.
    if (!_mm256_testc_si256(vb, va)) return false;
  }
  for (; i < n; ++i)
    if (a[i] & ~b[i]) return false;
  return true;
}

__attribute__((target("avx2"))) std::size_t avx2_next_nonzero_word(const std::uint64_t* w,
                                                                   std::size_t n,
                                                                   std::size_t from) {
  std::size_t i = from;
  for (; i < n && (i & 3) != 0; ++i)
    if (w[i] != 0) return i;
  for (; i + 4 <= n; i += 4) {
    __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + i));
    if (!_mm256_testz_si256(v, v)) {
      for (std::size_t k = 0; k < 4; ++k)
        if (w[i + k] != 0) return i + k;
    }
  }
  for (; i < n; ++i)
    if (w[i] != 0) return i;
  return n;
}

constexpr detail::Kernels kAvx2Kernels = {
    avx2_or_into,    avx2_and_into,     avx2_andnot_into,
    avx2_popcount,   avx2_any,          avx2_intersects,
    avx2_is_subset_of, avx2_next_nonzero_word,
};

#endif  // CCFSP_SIMD_X86

}  // namespace

namespace detail {

bool avx2_supported() {
#if CCFSP_SIMD_X86
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

Path resolve_path(const char* env, bool avx2_ok) {
  if (env != nullptr) {
    if (std::strcmp(env, "scalar") == 0) return Path::kScalar;
    if (std::strcmp(env, "avx2") == 0) return avx2_ok ? Path::kAvx2 : Path::kScalar;
    // Unknown strings (and "auto") fall through to detection.
  }
  return avx2_ok ? Path::kAvx2 : Path::kScalar;
}

const Kernels& kernels(Path p) {
#if CCFSP_SIMD_X86
  if (p == Path::kAvx2 && avx2_supported()) return kAvx2Kernels;
#else
  (void)p;
#endif
  return kScalarKernels;
}

const Kernels& active() {
  static const Kernels& k = kernels(active_path());
  return k;
}

}  // namespace detail

Path active_path() {
  static const Path p =
      detail::resolve_path(std::getenv("CCFSP_SIMD"), detail::avx2_supported());
  return p;
}

const char* path_name(Path p) {
  return p == Path::kAvx2 ? "avx2" : "scalar";
}

}  // namespace ccfsp::simd
