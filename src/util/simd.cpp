#include "util/simd.hpp"

#include <bit>
#include <cstdlib>
#include <cstring>

// The AVX2 path is compiled with per-function target attributes (no -mavx2
// needed for the translation unit), so a binary built for plain x86-64 still
// carries it and picks it at runtime. Non-x86 or non-GNU toolchains compile
// the scalar table only.
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define CCFSP_SIMD_X86 1
#include <immintrin.h>
#else
#define CCFSP_SIMD_X86 0
#endif

namespace ccfsp::simd {

namespace {

// ---- scalar path -----------------------------------------------------------
// Plain word loops. Under a -mavx2 build the compiler may auto-vectorize
// these; they remain the "scalar algorithm" and stay bit-identical — every
// kernel is exact bitwise arithmetic.

void scalar_or_into(std::uint64_t* dst, const std::uint64_t* src, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] |= src[i];
}

void scalar_and_into(std::uint64_t* dst, const std::uint64_t* src, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] &= src[i];
}

void scalar_andnot_into(std::uint64_t* dst, const std::uint64_t* src, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] &= ~src[i];
}

std::uint64_t scalar_popcount(const std::uint64_t* w, std::size_t n) {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < n; ++i) total += static_cast<std::uint64_t>(std::popcount(w[i]));
  return total;
}

bool scalar_any(const std::uint64_t* w, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i)
    if (w[i] != 0) return true;
  return false;
}

bool scalar_intersects(const std::uint64_t* a, const std::uint64_t* b, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i)
    if (a[i] & b[i]) return true;
  return false;
}

bool scalar_is_subset_of(const std::uint64_t* a, const std::uint64_t* b, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i)
    if (a[i] & ~b[i]) return false;
  return true;
}

std::size_t scalar_next_nonzero_word(const std::uint64_t* w, std::size_t n, std::size_t from) {
  for (std::size_t i = from; i < n; ++i)
    if (w[i] != 0) return i;
  return n;
}

void scalar_hash_tuples(const std::uint32_t* keys, std::size_t width, std::size_t n,
                        std::uint64_t* out) {
  for (std::size_t i = 0; i < n; ++i) out[i] = hash_words(keys + i * width, width);
}

bool scalar_equal_u32(const std::uint32_t* a, const std::uint32_t* b, std::size_t n) {
  return n == 0 || std::memcmp(a, b, n * sizeof(std::uint32_t)) == 0;
}

void scalar_prefix_sum_u32(std::uint32_t* v, std::size_t n) {
  std::uint32_t acc = 0;
  for (std::size_t i = 0; i < n; ++i) {
    acc += v[i];
    v[i] = acc;
  }
}

void scalar_pack_pairs_u64(const std::uint32_t* hi, const std::uint32_t* lo, std::size_t n,
                           std::uint64_t* out) {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = (static_cast<std::uint64_t>(hi[i]) << 32) | lo[i];
  }
}

constexpr detail::Kernels kScalarKernels = {
    scalar_or_into,    scalar_and_into,     scalar_andnot_into,
    scalar_popcount,   scalar_any,          scalar_intersects,
    scalar_is_subset_of, scalar_next_nonzero_word,
    scalar_hash_tuples, scalar_equal_u32,   scalar_prefix_sum_u32,
    scalar_pack_pairs_u64,
};

#if CCFSP_SIMD_X86

// ---- AVX2 path -------------------------------------------------------------
// 64-byte sweeps: two 256-bit lanes per iteration for the streaming ops,
// testz/testc for the early-exit predicates, and the classic nibble-LUT +
// psadbw horizontal popcount. All loads are unaligned (loadu): the callers'
// spans live in std::vector storage with no alignment guarantee.

__attribute__((target("avx2"))) void avx2_or_into(std::uint64_t* dst, const std::uint64_t* src,
                                                  std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256i a0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    __m256i a1 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i + 4));
    __m256i b0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    __m256i b1 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i + 4));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), _mm256_or_si256(a0, b0));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i + 4), _mm256_or_si256(a1, b1));
  }
  for (; i < n; ++i) dst[i] |= src[i];
}

__attribute__((target("avx2"))) void avx2_and_into(std::uint64_t* dst, const std::uint64_t* src,
                                                   std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256i a0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    __m256i a1 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i + 4));
    __m256i b0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    __m256i b1 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i + 4));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), _mm256_and_si256(a0, b0));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i + 4), _mm256_and_si256(a1, b1));
  }
  for (; i < n; ++i) dst[i] &= src[i];
}

__attribute__((target("avx2"))) void avx2_andnot_into(std::uint64_t* dst,
                                                      const std::uint64_t* src, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256i a0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    __m256i a1 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i + 4));
    __m256i b0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    __m256i b1 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i + 4));
    // andnot computes ~first & second, so src goes first.
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), _mm256_andnot_si256(b0, a0));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i + 4), _mm256_andnot_si256(b1, a1));
  }
  for (; i < n; ++i) dst[i] &= ~src[i];
}

__attribute__((target("avx2,popcnt"))) std::uint64_t avx2_popcount(const std::uint64_t* w,
                                                                   std::size_t n) {
  const __m256i lut =
      _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4, 0, 1, 1, 2, 1, 2, 2, 3,
                       1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low = _mm256_set1_epi8(0x0f);
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + i));
    __m256i lo = _mm256_shuffle_epi8(lut, _mm256_and_si256(v, low));
    __m256i hi = _mm256_shuffle_epi8(lut, _mm256_and_si256(_mm256_srli_epi16(v, 4), low));
    acc = _mm256_add_epi64(
        acc, _mm256_sad_epu8(_mm256_add_epi8(lo, hi), _mm256_setzero_si256()));
  }
  std::uint64_t lanes[4];
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(lanes), acc);
  std::uint64_t total = lanes[0] + lanes[1] + lanes[2] + lanes[3];
  for (; i < n; ++i) total += static_cast<std::uint64_t>(_mm_popcnt_u64(w[i]));
  return total;
}

__attribute__((target("avx2"))) bool avx2_any(const std::uint64_t* w, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + i));
    if (!_mm256_testz_si256(v, v)) return true;
  }
  for (; i < n; ++i)
    if (w[i] != 0) return true;
  return false;
}

__attribute__((target("avx2"))) bool avx2_intersects(const std::uint64_t* a,
                                                     const std::uint64_t* b, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    if (!_mm256_testz_si256(va, vb)) return true;
  }
  for (; i < n; ++i)
    if (a[i] & b[i]) return true;
  return false;
}

__attribute__((target("avx2"))) bool avx2_is_subset_of(const std::uint64_t* a,
                                                       const std::uint64_t* b, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    // testc(b, a) == 1  <=>  (~b & a) == 0  <=>  a ⊆ b.
    if (!_mm256_testc_si256(vb, va)) return false;
  }
  for (; i < n; ++i)
    if (a[i] & ~b[i]) return false;
  return true;
}

__attribute__((target("avx2"))) std::size_t avx2_next_nonzero_word(const std::uint64_t* w,
                                                                   std::size_t n,
                                                                   std::size_t from) {
  std::size_t i = from;
  for (; i < n && (i & 3) != 0; ++i)
    if (w[i] != 0) return i;
  for (; i + 4 <= n; i += 4) {
    __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + i));
    if (!_mm256_testz_si256(v, v)) {
      for (std::size_t k = 0; k < 4; ++k)
        if (w[i + k] != 0) return i + k;
    }
  }
  for (; i < n; ++i)
    if (w[i] != 0) return i;
  return n;
}

// 64x64 -> low-64 multiply per lane from three 32x32 halves — AVX2 has no
// 64-bit mullo. Exact mod-2^64 arithmetic, so the batch hash below is
// bit-identical to the scalar hash_words.
__attribute__((target("avx2"))) inline __m256i avx2_mul64(__m256i a, __m256i b) {
  const __m256i alo_bhi = _mm256_mul_epu32(a, _mm256_srli_epi64(b, 32));
  const __m256i ahi_blo = _mm256_mul_epu32(_mm256_srli_epi64(a, 32), b);
  const __m256i cross = _mm256_add_epi64(alo_bhi, ahi_blo);
  return _mm256_add_epi64(_mm256_mul_epu32(a, b), _mm256_slli_epi64(cross, 32));
}

__attribute__((target("avx2"))) void avx2_hash_tuples(const std::uint32_t* keys,
                                                      std::size_t width, std::size_t n,
                                                      std::uint64_t* out) {
  const __m256i c1 = _mm256_set1_epi64x(static_cast<long long>(0xff51afd7ed558ccdull));
  const __m256i c2 = _mm256_set1_epi64x(static_cast<long long>(0xc4ceb9fe1a85ec53ull));
  const std::uint64_t seed = 0x9e3779b97f4a7c15ull ^ (width * 0xff51afd7ed558ccdull);
  const __m256i vseed = _mm256_set1_epi64x(static_cast<long long>(seed));
  // Word j of tuples i..i+3 sits at stride `width`; one gather pulls all
  // four lanes per round of the per-word mix.
  const __m128i lane_off = _mm_setr_epi32(0, static_cast<int>(width), static_cast<int>(2 * width),
                                          static_cast<int>(3 * width));
  std::size_t i = 0;
  if (width <= (std::size_t{1} << 29)) {  // gather indices are 32-bit
    for (; i + 4 <= n; i += 4) {
      const std::uint32_t* base = keys + i * width;
      __m256i h = vseed;
      __m128i idx = lane_off;
      const __m128i one = _mm_set1_epi32(1);
      for (std::size_t j = 0; j < width; ++j) {
        const __m128i w32 = _mm_i32gather_epi32(reinterpret_cast<const int*>(base), idx, 4);
        idx = _mm_add_epi32(idx, one);
        h = _mm256_xor_si256(h, _mm256_cvtepu32_epi64(w32));
        h = avx2_mul64(h, c1);
        h = _mm256_or_si256(_mm256_slli_epi64(h, 27), _mm256_srli_epi64(h, 37));
      }
      h = _mm256_xor_si256(h, _mm256_srli_epi64(h, 33));
      h = avx2_mul64(h, c2);
      h = _mm256_xor_si256(h, _mm256_srli_epi64(h, 33));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), h);
    }
  }
  for (; i < n; ++i) out[i] = hash_words(keys + i * width, width);
}

__attribute__((target("avx2"))) bool avx2_equal_u32(const std::uint32_t* a,
                                                    const std::uint32_t* b, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    const __m256i x = _mm256_xor_si256(va, vb);
    if (!_mm256_testz_si256(x, x)) return false;
  }
  for (; i < n; ++i)
    if (a[i] != b[i]) return false;
  return true;
}

__attribute__((target("avx2"))) void avx2_prefix_sum_u32(std::uint32_t* v, std::size_t n) {
  // Hillis-Steele inside each 256-bit block, then carry the block total.
  // uint32 wrap-around matches the scalar loop exactly.
  __m256i carry = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256i x = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v + i));
    x = _mm256_add_epi32(x, _mm256_slli_si256(x, 4));
    x = _mm256_add_epi32(x, _mm256_slli_si256(x, 8));
    // Add the low lane's running total into every element of the high lane.
    __m256i low = _mm256_permute2x128_si256(x, x, 0x08);  // [0, x.low]
    x = _mm256_add_epi32(x, _mm256_shuffle_epi32(low, 0xff));
    x = _mm256_add_epi32(x, carry);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(v + i), x);
    carry = _mm256_permutevar8x32_epi32(x, _mm256_set1_epi32(7));
  }
  std::uint32_t acc = i == 0 ? 0 : v[i - 1];
  for (; i < n; ++i) {
    acc += v[i];
    v[i] = acc;
  }
}

__attribute__((target("avx2"))) void avx2_pack_pairs_u64(const std::uint32_t* hi,
                                                         const std::uint32_t* lo,
                                                         std::size_t n, std::uint64_t* out) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128i vh = _mm_loadu_si128(reinterpret_cast<const __m128i*>(hi + i));
    const __m128i vl = _mm_loadu_si128(reinterpret_cast<const __m128i*>(lo + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i), _mm_unpacklo_epi32(vl, vh));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i + 2), _mm_unpackhi_epi32(vl, vh));
  }
  for (; i < n; ++i) out[i] = (static_cast<std::uint64_t>(hi[i]) << 32) | lo[i];
}

constexpr detail::Kernels kAvx2Kernels = {
    avx2_or_into,    avx2_and_into,     avx2_andnot_into,
    avx2_popcount,   avx2_any,          avx2_intersects,
    avx2_is_subset_of, avx2_next_nonzero_word,
    avx2_hash_tuples,  avx2_equal_u32,  avx2_prefix_sum_u32,
    avx2_pack_pairs_u64,
};

#endif  // CCFSP_SIMD_X86

}  // namespace

namespace detail {

bool avx2_supported() {
#if CCFSP_SIMD_X86
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

Path resolve_path(const char* env, bool avx2_ok) {
  if (env != nullptr) {
    if (std::strcmp(env, "scalar") == 0) return Path::kScalar;
    if (std::strcmp(env, "avx2") == 0) return avx2_ok ? Path::kAvx2 : Path::kScalar;
    // Unknown strings (and "auto") fall through to detection.
  }
  return avx2_ok ? Path::kAvx2 : Path::kScalar;
}

const Kernels& kernels(Path p) {
#if CCFSP_SIMD_X86
  if (p == Path::kAvx2 && avx2_supported()) return kAvx2Kernels;
#else
  (void)p;
#endif
  return kScalarKernels;
}

const Kernels& active() {
  static const Kernels& k = kernels(active_path());
  return k;
}

}  // namespace detail

Path active_path() {
  static const Path p =
      detail::resolve_path(std::getenv("CCFSP_SIMD"), detail::avx2_supported());
  return p;
}

const char* path_name(Path p) {
  return p == Path::kAvx2 ? "avx2" : "scalar";
}

}  // namespace ccfsp::simd
