// Resource governance for the analysis engine. Every expensive routine in
// the library — the explicit global machine G (exponential by design), the
// possibility subset construction (PSPACE-hard territory), the composition
// folds, the knowledge-set games — is handed a Budget and cooperatively
// polls it while it works. The paper guarantees polynomial behaviour only
// for structured networks (Prop 1, Thm 3, Thm 4); for everything else the
// Budget is what turns "exponential" into "bounded", so that no input can
// hang or OOM the engine (see docs/robustness.md).
//
// A Budget combines four independent limits, all optional:
//   - a wall-clock deadline (absolute, measured on the steady clock),
//   - a state/node count (the classic max_states cap, now accounted),
//   - an estimated byte footprint,
//   - an external cancellation token (thread-safe, shareable).
// Work loops call charge() as they allocate; when any limit trips, a
// BudgetExceeded is thrown carrying the dimension that tripped and how far
// the work got. BudgetExceeded derives from std::runtime_error, so legacy
// callers that caught the old ad-hoc throws keep working; new callers catch
// it specifically (or use run_guarded in util/outcome.hpp) to turn it into
// a structured BudgetExhausted outcome.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <limits>
#include <memory>
#include <stdexcept>
#include <string>

namespace ccfsp {

/// Which limit a charge tripped. kNone means "within budget".
enum class BudgetDimension { kNone, kDeadline, kStates, kBytes, kCancelled };

const char* to_string(BudgetDimension d);

/// Thrown by Budget::charge when a limit trips. The `states_used` /
/// `bytes_used` fields record the progress made before the wall — the
/// "how far did it get" payload surfaced by AnalysisOutcome.
class BudgetExceeded : public std::runtime_error {
 public:
  BudgetExceeded(BudgetDimension reason, const char* where, std::size_t states_used,
                 std::size_t bytes_used);

  BudgetDimension reason() const { return reason_; }
  /// The routine that hit the wall (static-duration string literal).
  const char* where() const { return where_; }
  std::size_t states_used() const { return states_used_; }
  std::size_t bytes_used() const { return bytes_used_; }

 private:
  BudgetDimension reason_;
  const char* where_;
  std::size_t states_used_;
  std::size_t bytes_used_;
};

/// Shareable cancellation flag: hand copies to worker code and to whoever
/// may want to abort it (a signal handler, a supervising thread). Copies
/// alias one atomic flag.
class CancelToken {
 public:
  CancelToken() : flag_(std::make_shared<std::atomic<bool>>(false)) {}
  void cancel() const { flag_->store(true, std::memory_order_relaxed); }
  bool cancelled() const { return flag_->load(std::memory_order_relaxed); }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

class Budget {
 public:
  static constexpr std::size_t kNoLimit = std::numeric_limits<std::size_t>::max();

  /// Default: unlimited. charge() is then a cheap counter bump.
  Budget() = default;

  static Budget unlimited() { return Budget(); }
  static Budget with_states(std::size_t n) { return Budget().limit_states(n); }
  static Budget with_deadline(std::chrono::milliseconds d) {
    return Budget().limit_duration(d);
  }

  Budget& limit_states(std::size_t n) {
    max_states_ = n;
    return *this;
  }
  Budget& limit_bytes(std::size_t n) {
    max_bytes_ = n;
    return *this;
  }
  /// Deadline `d` from now on the steady clock.
  Budget& limit_duration(std::chrono::milliseconds d) {
    deadline_ = std::chrono::steady_clock::now() + d;
    has_deadline_ = true;
    return *this;
  }
  Budget& watch(CancelToken token) {
    token_ = std::move(token);
    has_token_ = true;
    return *this;
  }

  bool is_unlimited() const {
    return max_states_ == kNoLimit && max_bytes_ == kNoLimit && !has_deadline_ && !has_token_;
  }

  /// A fresh view of the same budget for an independent phase: identical
  /// limits, deadline and cancel token, but zeroed counters. Count limits
  /// are therefore per-phase while the deadline stays globally absolute —
  /// exactly what the degradation ladder wants per rung.
  Budget fork() const {
    Budget b = *this;
    b.states_used_ = 0;
    b.bytes_used_ = 0;
    b.charges_since_poll_ = 0;
    return b;
  }

  /// Account for `states` more nodes and `bytes` more estimated memory;
  /// throw BudgetExceeded if any limit trips. The clock and the cancel
  /// token are polled every kPollStride calls so charge() stays cheap
  /// enough for the hottest loops. `where` names the caller in the error.
  void charge(std::size_t states, std::size_t bytes = 0, const char* where = "analysis") const {
    states_used_ += states;
    bytes_used_ += bytes;
    if (states_used_ > max_states_) {
      throw BudgetExceeded(BudgetDimension::kStates, where, states_used_, bytes_used_);
    }
    if (bytes_used_ > max_bytes_) {
      throw BudgetExceeded(BudgetDimension::kBytes, where, states_used_, bytes_used_);
    }
    if ((has_deadline_ || has_token_) && ++charges_since_poll_ >= kPollStride) {
      charges_since_poll_ = 0;
      poll(where);
    }
  }

  /// A zero-cost-accounting checkpoint for loops that iterate without
  /// allocating (fixpoint sweeps, cache builds, per-position expansion).
  /// Unlike charge(), tick() polls the deadline and cancel token
  /// immediately: its call sites do an unbounded amount of work per call
  /// (a whole fixpoint sweep, a tau-closure fold), so stride-based polling
  /// here could starve the clock for minutes. One steady_clock read per
  /// tick is cheap next to the work each tick demarcates.
  void tick(const char* where = "analysis") const {
    if (has_deadline_ || has_token_) {
      charges_since_poll_ = 0;
      poll(where);
    }
  }

  /// Non-throwing probe; forces an immediate clock/token poll.
  BudgetDimension probe() const {
    if (states_used_ > max_states_) return BudgetDimension::kStates;
    if (bytes_used_ > max_bytes_) return BudgetDimension::kBytes;
    if (has_token_ && token_.cancelled()) return BudgetDimension::kCancelled;
    if (has_deadline_ && std::chrono::steady_clock::now() > deadline_) {
      return BudgetDimension::kDeadline;
    }
    return BudgetDimension::kNone;
  }

  std::size_t states_used() const { return states_used_; }
  std::size_t bytes_used() const { return bytes_used_; }
  std::size_t max_states() const { return max_states_; }
  std::size_t max_bytes() const { return max_bytes_; }
  bool has_deadline() const { return has_deadline_; }

 private:
  // Poll the clock every this many charges. Charges are issued per
  // interned state / subset / position, each of which costs a map insert
  // (microseconds), so a stride of 64 bounds deadline overshoot well under
  // any practical tolerance while keeping clock reads off the hot path.
  static constexpr std::size_t kPollStride = 64;

  void poll(const char* where) const {
    if (has_token_ && token_.cancelled()) {
      throw BudgetExceeded(BudgetDimension::kCancelled, where, states_used_, bytes_used_);
    }
    if (has_deadline_ && std::chrono::steady_clock::now() > deadline_) {
      throw BudgetExceeded(BudgetDimension::kDeadline, where, states_used_, bytes_used_);
    }
  }

  std::size_t max_states_ = kNoLimit;
  std::size_t max_bytes_ = kNoLimit;
  std::chrono::steady_clock::time_point deadline_{};
  bool has_deadline_ = false;
  bool has_token_ = false;
  CancelToken token_;

  // Charging is logically const: a Budget threaded by const& through a
  // call tree accumulates usage without every signature needing Budget&.
  // Single analysis = single thread; cross-thread aborts go through the
  // (atomic) CancelToken, never through these counters.
  mutable std::size_t states_used_ = 0;
  mutable std::size_t bytes_used_ = 0;
  mutable std::size_t charges_since_poll_ = 0;
};

}  // namespace ccfsp
