// Deterministic fault injection for the analysis engine. The dangerous
// seams of the library — interner growth, the global-machine intern ring,
// the parallel shard workers, subset constructions, cache fills, the
// parser, the ladder's rung boundaries — are instrumented with *named
// failpoints*: compiled-in sites that normally cost one relaxed atomic
// load, and that a test, the chaos driver, or an operator can arm to
// throw, delay, or stall at a precisely reproducible moment.
//
//   failpoint::hit("global.intern_ring");       // in engine code
//
//   failpoint::Spec s;                          // in a test
//   s.action = failpoint::Action::kThrowBadAlloc;
//   s.trigger = failpoint::Trigger::kOnHit;     // trip on the Nth hit
//   s.n = 3;
//   failpoint::arm("global.intern_ring", s);
//
// or, from the environment / CLI (see docs/robustness.md §6 for the
// grammar):
//
//   CCFSP_FAILPOINTS='interner.tuple_grow=bad_alloc@hit:2' ccfsp_analyze ...
//   ccfsp_analyze --failpoints 'analyze.rung=budget@every:2;cache.fill=delay:5' ...
//
// Triggers are deterministic: per-site hit counters (atomic, so parallel
// workers count correctly) select the Nth or every-Kth hit, and the
// probabilistic trigger draws from a seeded util/rng.hpp generator — the
// same seed always trips at the same hits. Actions map onto the failure
// modes the engine must survive: BudgetExceeded (a budget wall mid-work),
// std::bad_alloc (allocation failure), a fixed delay (scheduling jitter),
// and a stall (a thread parked until release_stalls()/disarm, bounded by a
// hard cap — for wedged-worker scenarios).
//
// Everything here is engineered so the *disarmed* path stays off the
// profile: hit() reads one relaxed atomic counter of armed sites and
// returns. Sites sit at per-state / per-level granularity, never per-edge
// (bench/bench_failpoint.cpp pins the cost on the phil:12 flat build).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace ccfsp::failpoint {

namespace detail {
/// Number of currently armed sites; 0 is the fast path.
extern std::atomic<int> g_armed;
void hit_slow(const char* site);
}  // namespace detail

/// Mark an injection site. Disarmed cost: one relaxed load and a branch.
inline void hit(const char* site) {
  if (detail::g_armed.load(std::memory_order_relaxed) == 0) return;
  detail::hit_slow(site);
}

enum class Action {
  kThrowBudget,    // throw BudgetExceeded (dimension from Spec::dimension)
  kThrowBadAlloc,  // throw std::bad_alloc
  kDelay,          // sleep for delay_ms, then continue
  kStall,          // park until release_stalls()/disarm, capped at delay_ms
  kCallback,       // invoke Spec::callback (programmatic arming only)
};

enum class Trigger {
  kOnHit,        // fire on exactly the n-th hit (1-based)
  kEveryK,       // fire on every hit whose index is a multiple of n
  kProbability,  // fire with probability num/den, drawn from a seeded Rng
};

/// Which budget dimension a kThrowBudget action reports. Mirrors
/// BudgetDimension without pulling budget.hpp into this header.
enum class BudgetKind { kStates, kBytes, kDeadline, kCancelled };

struct Spec {
  Action action = Action::kThrowBudget;
  Trigger trigger = Trigger::kOnHit;
  BudgetKind dimension = BudgetKind::kStates;
  /// kOnHit: the hit index to fire on; kEveryK: the stride. 1-based.
  std::uint64_t n = 1;
  /// kProbability: fire with probability num/den from Rng(seed).
  std::uint64_t num = 1;
  std::uint64_t den = 2;
  std::uint64_t seed = 0x5eed;
  /// kDelay: sleep this long. kStall: hard cap on the park (so an armed
  /// stall can never deadlock a run that forgot to release it).
  std::uint64_t delay_ms = 10;
  /// kCallback: invoked with the site name and the (1-based) hit index.
  /// May throw; whatever it throws propagates from hit().
  std::function<void(const char* site, std::uint64_t hit_index)> callback;
};

/// Arm `site` with `spec` (replacing any previous arming and resetting the
/// site's hit counter). Site names are free-form, but only names in
/// catalog() correspond to compiled-in sites.
void arm(const std::string& site, Spec spec);

/// Disarm one site (no-op if not armed). Wakes any thread stalled on it.
void disarm(const std::string& site);

/// Disarm everything and wake all stalled threads. Tests and the chaos
/// driver call this between schedules; it also resets all hit counters.
void disarm_all();

/// Wake stalled threads without disarming (the stall will not re-park the
/// same hit, but future hits can stall again).
void release_stalls();

/// Hits observed at `site` since it was armed (0 if never armed).
std::uint64_t hits(const std::string& site);

/// Currently armed site names, sorted.
std::vector<std::string> armed_sites();

/// Parse and arm a failpoint configuration string:
///   config  := entry (( ';' | ',' ) entry)*
///   entry   := site '=' action [ '@' trigger ]
///   action  := 'budget' [ ':' ('states'|'bytes'|'deadline'|'cancel') ]
///            | 'bad_alloc' | 'delay' ':' ms | 'stall' ':' max_ms
///   trigger := 'hit' ':' n | 'every' ':' k | 'prob' ':' num '/' den [':' seed]
/// Defaults: trigger hit:1, budget dimension states.
/// Returns false (arming nothing from the bad entry onward) and fills
/// *error on a malformed config.
bool parse_and_arm(const std::string& config, std::string* error = nullptr);

/// Read CCFSP_FAILPOINTS from the environment and parse_and_arm it.
/// Returns true when the variable is unset or parsed cleanly. Called by
/// the CLI and the chaos driver — the library never reads the environment
/// on its own.
bool arm_from_env(std::string* error = nullptr);

/// The compiled-in site catalog (stable names, sorted): what the chaos
/// driver sweeps and docs/robustness.md documents.
const std::vector<std::string>& catalog();

/// RAII guard: disarm_all() on destruction, so a test that throws mid-sweep
/// cannot leak armed failpoints into the next test.
struct ScopedDisarm {
  ScopedDisarm() = default;
  ScopedDisarm(const ScopedDisarm&) = delete;
  ScopedDisarm& operator=(const ScopedDisarm&) = delete;
  ~ScopedDisarm() { disarm_all(); }
};

}  // namespace ccfsp::failpoint
