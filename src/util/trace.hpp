// Rendering for metrics snapshots: JSON fragments for machine consumers
// (the --metrics-json document, bench rows) and a human-readable span tree
// for --trace. Lives in util so benches and tests can render counters
// without linking the success layer; the full versioned document — schema
// in docs/observability.md — is assembled by observability_document_json()
// in src/success/analyze.hpp, which layers the analysis report on top of
// these fragments.
#pragma once

#include <string>

#include "util/metrics.hpp"

namespace ccfsp::metrics {

/// Escape a string for embedding in a JSON string literal (quotes,
/// backslashes, control characters; no surrounding quotes added).
std::string json_escape(const std::string& s);

/// `{"global.states": 12, ...}` — every catalogued counter, zeros
/// included, in catalogue order so the document is diffable.
std::string counters_json(const Snapshot& snap);

/// `[{"name": ..., "count": N, "total_ns": N, "children": [...]}, ...]` —
/// the children of the synthetic root, i.e. the top-level spans.
std::string span_tree_json(const Snapshot& snap);

/// Human span tree for --trace, one node per line:
///   build_global                 1x   12.3ms
///     determinize.flat           4x    1.1ms
/// Durations pick a unit per node (ns/us/ms/s). Returns "" when no spans
/// were recorded.
std::string render_span_tree(const Snapshot& snap);

}  // namespace ccfsp::metrics
