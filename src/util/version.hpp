// Build identity: the git revision stamped in at configure time and the
// on-disk snapshot format version. Both CLIs print it (--version), the
// snapshot writer embeds it in every file header, and the metrics JSON
// document carries it so an artifact can always be traced to the build
// that produced it.
#pragma once

#include <cstdint>
#include <string>

namespace ccfsp {

/// Version of the sectioned snapshot container format (src/snapshot/).
/// Bump on any incompatible layout change; readers reject other versions
/// as a structured cold start, never a guess.
inline constexpr std::uint32_t kSnapshotFormatVersion = 1;

/// `git describe --always --dirty` of the tree this binary was built from,
/// or "unknown" when the stamp was unavailable at configure time.
const char* build_git_describe();

/// One-line build stamp, e.g. "ccfspd 3daa80f (snapshot format 1)".
std::string build_info_string(const char* tool);

}  // namespace ccfsp
