#include "util/budget.hpp"

namespace ccfsp {

const char* to_string(BudgetDimension d) {
  switch (d) {
    case BudgetDimension::kNone:
      return "none";
    case BudgetDimension::kDeadline:
      return "deadline";
    case BudgetDimension::kStates:
      return "states";
    case BudgetDimension::kBytes:
      return "bytes";
    case BudgetDimension::kCancelled:
      return "cancelled";
  }
  return "?";
}

namespace {

std::string exceeded_message(BudgetDimension reason, const char* where, std::size_t states_used,
                             std::size_t bytes_used) {
  std::string msg(where);
  msg += ": budget exceeded (";
  msg += to_string(reason);
  msg += ") after ";
  msg += std::to_string(states_used);
  msg += " states / ~";
  msg += std::to_string(bytes_used);
  msg += " bytes";
  return msg;
}

}  // namespace

BudgetExceeded::BudgetExceeded(BudgetDimension reason, const char* where,
                               std::size_t states_used, std::size_t bytes_used)
    : std::runtime_error(exceeded_message(reason, where, states_used, bytes_used)),
      reason_(reason),
      where_(where),
      states_used_(states_used),
      bytes_used_(bytes_used) {}

}  // namespace ccfsp
