#include "util/refine.hpp"

#include <algorithm>
#include <bit>

#include "util/failpoint.hpp"
#include "util/metrics.hpp"
#include "util/simd.hpp"

namespace ccfsp {

std::vector<std::uint32_t> refine_partition(std::uint32_t num_states,
                                            std::span<const std::uint32_t> edge_src,
                                            std::span<const std::uint32_t> edge_label,
                                            std::span<const std::uint32_t> edge_dst,
                                            std::vector<std::uint32_t> initial) {
  metrics::ScopedSpan span("refine");
  const std::uint32_t n = num_states;
  const std::size_t m = edge_src.size();
  std::vector<std::uint32_t> cls(n);
  if (n == 0) return cls;

  // Normalize the initial classes to dense first-occurrence ids.
  std::uint32_t num_initial = 0;
  {
    std::vector<std::uint32_t> dense;
    for (std::uint32_t s = 0; s < n; ++s) {
      const std::uint32_t c = initial[s];
      if (c >= dense.size()) dense.resize(c + 1, UINT32_MAX);
      if (dense[c] == UINT32_MAX) dense[c] = num_initial++;
      cls[s] = dense[c];
    }
  }

  // Incoming edges in CSR form, grouped by target (counting sort). The
  // offsets pass is the simd prefix-sum kernel; the scatter stays scalar
  // (data-dependent addressing).
  std::vector<std::uint32_t> in_off(n + 1, 0);
  for (std::size_t k = 0; k < m; ++k) ++in_off[edge_dst[k] + 1];
  simd::prefix_sum_u32(in_off.data(), n + 1);
  std::vector<std::uint32_t> in_act(m);
  std::vector<std::uint32_t> in_src(m);
  {
    std::vector<std::uint32_t> cursor(in_off.begin(), in_off.end() - 1);
    for (std::size_t k = 0; k < m; ++k) {
      const std::uint32_t at = cursor[edge_dst[k]]++;
      in_act[at] = edge_label[k];
      in_src[at] = edge_src[k];
    }
  }

  // Hopcroft's smaller-half rule (enqueue only the smaller part of a split
  // block that is not itself queued) is sound only when no state carries two
  // edges with the same label: x in pre_a(C1) then implies x has no a-edge
  // into the sibling C2, which is what lets stability w.r.t. C2 ride on
  // stability w.r.t. the parent. The subset-construction DFAs satisfy this;
  // raw FSPs in general do not, and there both halves must be enqueued
  // (the Kanellakis–Smolka discipline, O(nm) worst case).
  bool deterministic = true;
  {
    std::vector<std::uint64_t> keys(m);
    simd::pack_pairs_u64(edge_src.data(), edge_label.data(), m, keys.data());
    std::sort(keys.begin(), keys.end());
    deterministic = std::adjacent_find(keys.begin(), keys.end()) == keys.end();
  }

  // Refinable partition: states contiguous per block, with positions.
  struct Block {
    std::uint32_t begin, end;
    std::uint32_t size() const { return end - begin; }
  };
  std::vector<std::uint32_t> elems(n), pos(n), block_of(cls);
  std::vector<Block> blocks(num_initial);
  {
    std::vector<std::uint32_t> count(num_initial + 1, 0);
    for (std::uint32_t s = 0; s < n; ++s) ++count[cls[s] + 1];
    simd::prefix_sum_u32(count.data(), num_initial + 1);
    for (std::uint32_t c = 0; c < num_initial; ++c) blocks[c] = {count[c], count[c + 1]};
    std::vector<std::uint32_t> cursor(num_initial);
    for (std::uint32_t c = 0; c < num_initial; ++c) cursor[c] = blocks[c].begin;
    for (std::uint32_t s = 0; s < n; ++s) {
      const std::uint32_t at = cursor[cls[s]]++;
      elems[at] = s;
      pos[s] = at;
    }
  }

  // Splitter queue, seeded with every initial block (stability with respect
  // to the seed partition is part of the contract).
  std::vector<std::uint32_t> queue;
  std::vector<std::uint8_t> in_queue;
  queue.reserve(num_initial * 2);
  in_queue.assign(num_initial, 1);
  for (std::uint32_t c = 0; c < num_initial; ++c) queue.push_back(c);

  std::vector<std::uint32_t> members;  // splitter snapshot
  std::vector<std::uint8_t> marked(n, 0);
  std::vector<std::uint32_t> marked_list;
  std::vector<std::uint32_t> moved;  // per block id, cursor into its front
  std::vector<std::uint32_t> touched;
  moved.assign(num_initial, 0);

  // Per-pop predecessor grouping: instead of collecting (label, source)
  // pairs and sorting them (O(P log P) per pop), sources are scattered into
  // per-label buckets and a touched-label bitmap, and the bitmap is swept
  // ascending with the vectorized next_nonzero_word kernel — O(P) plus a
  // SIMD scan over the words the pop actually dirtied. Labels are ActionId
  // values and need not be dense (kTau is 0xffffffff), so in_act is remapped
  // to dense ids once up front; the sweep order over dense ids is still a
  // fixed total order on labels, so splits stay deterministic.
  metrics::record_max(metrics::Counter::kSimdDispatch,
                      static_cast<std::uint64_t>(simd::active_path()));
  std::vector<std::uint32_t> label_ids(edge_label.begin(), edge_label.end());
  std::sort(label_ids.begin(), label_ids.end());
  label_ids.erase(std::unique(label_ids.begin(), label_ids.end()), label_ids.end());
  for (std::size_t k = 0; k < m; ++k) {
    in_act[k] = static_cast<std::uint32_t>(
        std::lower_bound(label_ids.begin(), label_ids.end(), in_act[k]) -
        label_ids.begin());
  }
  const std::uint32_t num_labels = std::max<std::uint32_t>(
      1, static_cast<std::uint32_t>(label_ids.size()));
  std::vector<std::vector<std::uint32_t>> bucket(num_labels);
  const std::size_t label_words = (num_labels + 63) / 64;
  std::vector<std::uint64_t> label_bits(label_words, 0);

  while (!queue.empty()) {
    const std::uint32_t b = queue.back();
    queue.pop_back();
    in_queue[b] = 0;
    failpoint::hit("normal_form.refine");
    metrics::add(metrics::Counter::kRefinePops);

    // Snapshot: the block may itself split while it acts as the splitter.
    members.assign(elems.begin() + blocks[b].begin, elems.begin() + blocks[b].end);
    for (std::uint32_t s : members) {
      for (std::uint32_t k = in_off[s]; k < in_off[s + 1]; ++k) {
        const std::uint32_t a = in_act[k];
        bucket[a].push_back(in_src[k]);
        label_bits[a >> 6] |= std::uint64_t{1} << (a & 63);
      }
    }

    for (std::size_t w = simd::next_nonzero_word(label_bits.data(), label_words, 0);
         w < label_words;
         w = simd::next_nonzero_word(label_bits.data(), label_words, w + 1)) {
      std::uint64_t bits = label_bits[w];
      label_bits[w] = 0;
      while (bits != 0) {
        const std::uint32_t a =
            static_cast<std::uint32_t>(w * 64 + std::countr_zero(bits));
        bits &= bits - 1;
        // Mark the distinct a-predecessors of the splitter.
        marked_list.clear();
        for (const std::uint32_t s : bucket[a]) {
          if (!marked[s]) {
            marked[s] = 1;
            marked_list.push_back(s);
          }
        }
        bucket[a].clear();
        // Move each block's marked members to its front.
        touched.clear();
        for (std::uint32_t s : marked_list) {
          const std::uint32_t c = block_of[s];
          if (moved[c] == 0) touched.push_back(c);
          const std::uint32_t at = blocks[c].begin + moved[c]++;
          const std::uint32_t other = elems[at];
          elems[pos[s]] = other;
          pos[other] = pos[s];
          elems[at] = s;
          pos[s] = at;
        }
        // Split every partially-marked block; enqueue per Hopcroft's rule.
        for (std::uint32_t c : touched) {
          const std::uint32_t cnt = moved[c];
          moved[c] = 0;
          if (cnt == blocks[c].size()) continue;  // fully marked: stable
          const std::uint32_t d = static_cast<std::uint32_t>(blocks.size());
          blocks.push_back({blocks[c].begin, blocks[c].begin + cnt});
          blocks[c].begin += cnt;
          moved.push_back(0);
          in_queue.push_back(0);
          for (std::uint32_t at = blocks[d].begin; at < blocks[d].end; ++at) {
            block_of[elems[at]] = d;
          }
          metrics::add(metrics::Counter::kRefineSplits);
          if (in_queue[c]) {
            // Parent already queued: neither enqueue rule applies.
            in_queue[d] = 1;
            queue.push_back(d);
          } else if (deterministic) {
            metrics::add(metrics::Counter::kRefineSmallerHalf);
            const std::uint32_t smaller = blocks[d].size() <= blocks[c].size() ? d : c;
            in_queue[smaller] = 1;
            queue.push_back(smaller);
          } else {
            metrics::add(metrics::Counter::kRefineBothHalves);
            in_queue[c] = 1;
            queue.push_back(c);
            in_queue[d] = 1;
            queue.push_back(d);
          }
        }
        for (std::uint32_t s : marked_list) marked[s] = 0;
      }
    }
  }

  // Classes by first occurrence in state order — the numbering the retained
  // Moore oracles produce on their final round.
  std::vector<std::uint32_t> renumber(blocks.size(), UINT32_MAX);
  std::uint32_t next_id = 0;
  std::vector<std::uint32_t> out(n);
  for (std::uint32_t s = 0; s < n; ++s) {
    std::uint32_t& r = renumber[block_of[s]];
    if (r == UINT32_MAX) r = next_id++;
    out[s] = r;
  }
  return out;
}

}  // namespace ccfsp
