#include "util/refine.hpp"

#include <algorithm>

#include "util/failpoint.hpp"
#include "util/metrics.hpp"

namespace ccfsp {

std::vector<std::uint32_t> refine_partition(std::uint32_t num_states,
                                            std::span<const std::uint32_t> edge_src,
                                            std::span<const std::uint32_t> edge_label,
                                            std::span<const std::uint32_t> edge_dst,
                                            std::vector<std::uint32_t> initial) {
  metrics::ScopedSpan span("refine");
  const std::uint32_t n = num_states;
  const std::size_t m = edge_src.size();
  std::vector<std::uint32_t> cls(n);
  if (n == 0) return cls;

  // Normalize the initial classes to dense first-occurrence ids.
  std::uint32_t num_initial = 0;
  {
    std::vector<std::uint32_t> dense;
    for (std::uint32_t s = 0; s < n; ++s) {
      const std::uint32_t c = initial[s];
      if (c >= dense.size()) dense.resize(c + 1, UINT32_MAX);
      if (dense[c] == UINT32_MAX) dense[c] = num_initial++;
      cls[s] = dense[c];
    }
  }

  // Incoming edges in CSR form, grouped by target (counting sort).
  std::vector<std::uint32_t> in_off(n + 1, 0);
  for (std::size_t k = 0; k < m; ++k) ++in_off[edge_dst[k] + 1];
  for (std::uint32_t s = 0; s < n; ++s) in_off[s + 1] += in_off[s];
  std::vector<std::uint32_t> in_act(m);
  std::vector<std::uint32_t> in_src(m);
  {
    std::vector<std::uint32_t> cursor(in_off.begin(), in_off.end() - 1);
    for (std::size_t k = 0; k < m; ++k) {
      const std::uint32_t at = cursor[edge_dst[k]]++;
      in_act[at] = edge_label[k];
      in_src[at] = edge_src[k];
    }
  }

  // Hopcroft's smaller-half rule (enqueue only the smaller part of a split
  // block that is not itself queued) is sound only when no state carries two
  // edges with the same label: x in pre_a(C1) then implies x has no a-edge
  // into the sibling C2, which is what lets stability w.r.t. C2 ride on
  // stability w.r.t. the parent. The subset-construction DFAs satisfy this;
  // raw FSPs in general do not, and there both halves must be enqueued
  // (the Kanellakis–Smolka discipline, O(nm) worst case).
  bool deterministic = true;
  {
    std::vector<std::uint64_t> keys(m);
    for (std::size_t k = 0; k < m; ++k) {
      keys[k] = (static_cast<std::uint64_t>(edge_src[k]) << 32) | edge_label[k];
    }
    std::sort(keys.begin(), keys.end());
    deterministic = std::adjacent_find(keys.begin(), keys.end()) == keys.end();
  }

  // Refinable partition: states contiguous per block, with positions.
  struct Block {
    std::uint32_t begin, end;
    std::uint32_t size() const { return end - begin; }
  };
  std::vector<std::uint32_t> elems(n), pos(n), block_of(cls);
  std::vector<Block> blocks(num_initial);
  {
    std::vector<std::uint32_t> count(num_initial + 1, 0);
    for (std::uint32_t s = 0; s < n; ++s) ++count[cls[s] + 1];
    for (std::uint32_t c = 0; c < num_initial; ++c) {
      blocks[c] = {count[c], count[c] + count[c + 1]};
      count[c + 1] = blocks[c].end;
    }
    std::vector<std::uint32_t> cursor(num_initial);
    for (std::uint32_t c = 0; c < num_initial; ++c) cursor[c] = blocks[c].begin;
    for (std::uint32_t s = 0; s < n; ++s) {
      const std::uint32_t at = cursor[cls[s]]++;
      elems[at] = s;
      pos[s] = at;
    }
  }

  // Splitter queue, seeded with every initial block (stability with respect
  // to the seed partition is part of the contract).
  std::vector<std::uint32_t> queue;
  std::vector<std::uint8_t> in_queue;
  queue.reserve(num_initial * 2);
  in_queue.assign(num_initial, 1);
  for (std::uint32_t c = 0; c < num_initial; ++c) queue.push_back(c);

  std::vector<std::uint32_t> members;              // splitter snapshot
  std::vector<std::pair<std::uint32_t, std::uint32_t>> preds;  // (label, source)
  std::vector<std::uint8_t> marked(n, 0);
  std::vector<std::uint32_t> marked_list;
  std::vector<std::uint32_t> moved;  // per block id, cursor into its front
  std::vector<std::uint32_t> touched;
  moved.assign(num_initial, 0);

  while (!queue.empty()) {
    const std::uint32_t b = queue.back();
    queue.pop_back();
    in_queue[b] = 0;
    failpoint::hit("normal_form.refine");
    metrics::add(metrics::Counter::kRefinePops);

    // Snapshot: the block may itself split while it acts as the splitter.
    members.assign(elems.begin() + blocks[b].begin, elems.begin() + blocks[b].end);
    preds.clear();
    for (std::uint32_t s : members) {
      for (std::uint32_t k = in_off[s]; k < in_off[s + 1]; ++k) {
        preds.emplace_back(in_act[k], in_src[k]);
      }
    }
    std::sort(preds.begin(), preds.end(),
              [](const auto& x, const auto& y) { return x.first < y.first; });

    for (std::size_t i = 0; i < preds.size();) {
      const std::uint32_t a = preds[i].first;
      std::size_t j = i;
      // Mark the distinct a-predecessors of the splitter.
      marked_list.clear();
      for (; j < preds.size() && preds[j].first == a; ++j) {
        const std::uint32_t s = preds[j].second;
        if (!marked[s]) {
          marked[s] = 1;
          marked_list.push_back(s);
        }
      }
      // Move each block's marked members to its front.
      touched.clear();
      for (std::uint32_t s : marked_list) {
        const std::uint32_t c = block_of[s];
        if (moved[c] == 0) touched.push_back(c);
        const std::uint32_t at = blocks[c].begin + moved[c]++;
        const std::uint32_t other = elems[at];
        elems[pos[s]] = other;
        pos[other] = pos[s];
        elems[at] = s;
        pos[s] = at;
      }
      // Split every partially-marked block; enqueue per Hopcroft's rule.
      for (std::uint32_t c : touched) {
        const std::uint32_t cnt = moved[c];
        moved[c] = 0;
        if (cnt == blocks[c].size()) continue;  // fully marked: stable
        const std::uint32_t d = static_cast<std::uint32_t>(blocks.size());
        blocks.push_back({blocks[c].begin, blocks[c].begin + cnt});
        blocks[c].begin += cnt;
        moved.push_back(0);
        in_queue.push_back(0);
        for (std::uint32_t at = blocks[d].begin; at < blocks[d].end; ++at) {
          block_of[elems[at]] = d;
        }
        metrics::add(metrics::Counter::kRefineSplits);
        if (in_queue[c]) {
          // Parent already queued: neither enqueue rule applies.
          in_queue[d] = 1;
          queue.push_back(d);
        } else if (deterministic) {
          metrics::add(metrics::Counter::kRefineSmallerHalf);
          const std::uint32_t smaller = blocks[d].size() <= blocks[c].size() ? d : c;
          in_queue[smaller] = 1;
          queue.push_back(smaller);
        } else {
          metrics::add(metrics::Counter::kRefineBothHalves);
          in_queue[c] = 1;
          queue.push_back(c);
          in_queue[d] = 1;
          queue.push_back(d);
        }
      }
      for (std::uint32_t s : marked_list) marked[s] = 0;
      i = j;
    }
  }

  // Classes by first occurrence in state order — the numbering the retained
  // Moore oracles produce on their final round.
  std::vector<std::uint32_t> renumber(blocks.size(), UINT32_MAX);
  std::uint32_t next_id = 0;
  std::vector<std::uint32_t> out(n);
  for (std::uint32_t s = 0; s < n; ++s) {
    std::uint32_t& r = renumber[block_of[s]];
    if (r == UINT32_MAX) r = next_id++;
    out[s] = r;
  }
  return out;
}

}  // namespace ccfsp
