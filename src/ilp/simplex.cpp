#include "ilp/simplex.hpp"

#include <cassert>
#include <stdexcept>

namespace ccfsp {

namespace {

/// Dense tableau: rows = constraints, columns = variables (structural +
/// slack/surplus + artificial) + RHS column. basis_[r] = variable of row r.
class Tableau {
 public:
  Tableau(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), a_(rows, std::vector<Rational>(cols + 1)), basis_(rows, 0) {}

  Rational& at(std::size_t r, std::size_t c) { return a_[r][c]; }
  Rational& rhs(std::size_t r) { return a_[r][cols_]; }
  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::vector<std::size_t>& basis() { return basis_; }

  /// Pivot on (pr, pc): variable pc enters the basis at row pr.
  void pivot(std::size_t pr, std::size_t pc) {
    Rational p = a_[pr][pc];
    assert(!p.is_zero());
    for (auto& v : a_[pr]) v /= p;
    for (std::size_t r = 0; r < rows_; ++r) {
      if (r == pr || a_[r][pc].is_zero()) continue;
      Rational f = a_[r][pc];
      for (std::size_t c = 0; c <= cols_; ++c) {
        a_[r][c] -= f * a_[pr][c];
      }
    }
    basis_[pr] = pc;
  }

 private:
  std::size_t rows_, cols_;
  std::vector<std::vector<Rational>> a_;
  std::vector<std::size_t> basis_;
};

/// Reduced cost of column c under objective obj (maximization):
///   z_c - obj_c  =  sum_r obj[basis_r] * a[r][c]  -  obj[c].
/// A column improves the objective when this is negative.
Rational reduced_cost(Tableau& t, const std::vector<Rational>& obj, std::size_t c) {
  Rational z;
  for (std::size_t r = 0; r < t.rows(); ++r) {
    const Rational& coef = t.at(r, c);
    if (!coef.is_zero() && !obj[t.basis()[r]].is_zero()) {
      z += obj[t.basis()[r]] * coef;
    }
  }
  return z - obj[c];
}

enum class IterStatus { kOptimal, kUnbounded };

/// Run primal simplex iterations to optimality with Bland's rule.
/// `allowed` masks out columns that must not enter (e.g. artificials in
/// phase 2).
IterStatus iterate(Tableau& t, const std::vector<Rational>& obj, const std::vector<bool>& allowed) {
  while (true) {
    // Entering column: lowest index with negative reduced cost (Bland).
    std::size_t enter = t.cols();
    for (std::size_t c = 0; c < t.cols(); ++c) {
      if (!allowed[c]) continue;
      if (reduced_cost(t, obj, c).sign() < 0) {
        enter = c;
        break;
      }
    }
    if (enter == t.cols()) return IterStatus::kOptimal;

    // Leaving row: min ratio rhs/coef over positive coefs; ties broken by
    // smallest basis variable index (Bland).
    std::size_t leave = t.rows();
    Rational best_ratio;
    for (std::size_t r = 0; r < t.rows(); ++r) {
      const Rational& coef = t.at(r, enter);
      if (coef.sign() <= 0) continue;
      Rational ratio = t.rhs(r) / coef;
      if (leave == t.rows() || ratio < best_ratio ||
          (ratio == best_ratio && t.basis()[r] < t.basis()[leave])) {
        leave = r;
        best_ratio = ratio;
      }
    }
    if (leave == t.rows()) return IterStatus::kUnbounded;
    t.pivot(leave, enter);
  }
}

}  // namespace

LpResult solve_lp(const LinearProgram& lp) {
  for (const auto& con : lp.constraints) {
    if (con.coeffs.size() != lp.num_vars) {
      throw std::invalid_argument("solve_lp: constraint arity mismatch");
    }
  }
  if (lp.objective.size() != lp.num_vars) {
    throw std::invalid_argument("solve_lp: objective arity mismatch");
  }

  const std::size_t m = lp.constraints.size();
  const std::size_t n = lp.num_vars;

  // Column layout: [0, n) structural, then one slack/surplus per inequality,
  // then one artificial per row that needs it.
  std::size_t num_slack = 0;
  for (const auto& con : lp.constraints) {
    if (con.relation != Relation::kEqual) ++num_slack;
  }

  // Normalize rows so RHS >= 0 (flip the row otherwise), then decide which
  // rows need artificials: a <= row with rhs >= 0 can start with its slack
  // basic; everything else gets an artificial.
  struct Row {
    std::vector<Rational> coeffs;
    Rational rhs;
    Relation rel;
  };
  std::vector<Row> rows(m);
  for (std::size_t i = 0; i < m; ++i) {
    rows[i].coeffs = lp.constraints[i].coeffs;
    rows[i].rhs = lp.constraints[i].rhs;
    rows[i].rel = lp.constraints[i].relation;
    if (rows[i].rhs.sign() < 0) {
      for (auto& c : rows[i].coeffs) c = -c;
      rows[i].rhs = -rows[i].rhs;
      if (rows[i].rel == Relation::kLessEqual) {
        rows[i].rel = Relation::kGreaterEqual;
      } else if (rows[i].rel == Relation::kGreaterEqual) {
        rows[i].rel = Relation::kLessEqual;
      }
    }
  }

  std::size_t num_artificial = 0;
  for (const auto& row : rows) {
    if (row.rel != Relation::kLessEqual) ++num_artificial;
  }

  const std::size_t total_cols = n + num_slack + num_artificial;
  Tableau t(m, total_cols);

  std::size_t slack_at = n;
  std::size_t art_at = n + num_slack;
  std::vector<bool> is_artificial(total_cols, false);

  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) t.at(i, j) = rows[i].coeffs[j];
    t.rhs(i) = rows[i].rhs;
    switch (rows[i].rel) {
      case Relation::kLessEqual:
        t.at(i, slack_at) = Rational(1);
        t.basis()[i] = slack_at++;
        break;
      case Relation::kGreaterEqual:
        t.at(i, slack_at) = Rational(-1);
        ++slack_at;
        t.at(i, art_at) = Rational(1);
        is_artificial[art_at] = true;
        t.basis()[i] = art_at++;
        break;
      case Relation::kEqual:
        t.at(i, art_at) = Rational(1);
        is_artificial[art_at] = true;
        t.basis()[i] = art_at++;
        break;
    }
  }

  std::vector<bool> allow_all(total_cols, true);

  // Phase 1: maximize -(sum of artificials); feasible iff optimum is 0.
  if (num_artificial > 0) {
    std::vector<Rational> phase1(total_cols);
    for (std::size_t c = 0; c < total_cols; ++c) {
      if (is_artificial[c]) phase1[c] = Rational(-1);
    }
    IterStatus st = iterate(t, phase1, allow_all);
    (void)st;  // phase 1 objective is bounded above by 0; cannot be unbounded
    Rational phase1_obj;
    for (std::size_t r = 0; r < m; ++r) {
      if (is_artificial[t.basis()[r]]) phase1_obj -= t.rhs(r);
    }
    if (!phase1_obj.is_zero()) {
      return {LpStatus::kInfeasible, Rational(), {}};
    }
    // Drive any artificial still basic (at zero) out of the basis.
    for (std::size_t r = 0; r < m; ++r) {
      if (!is_artificial[t.basis()[r]]) continue;
      std::size_t enter = total_cols;
      for (std::size_t c = 0; c < n + num_slack; ++c) {
        if (!t.at(r, c).is_zero()) {
          enter = c;
          break;
        }
      }
      if (enter != total_cols) {
        t.pivot(r, enter);
      }
      // If the whole row is zero the constraint is redundant; the artificial
      // stays basic at value 0, which is harmless as long as it never
      // re-enters — guaranteed by the phase-2 mask below.
    }
  }

  // Phase 2: original objective, artificials barred from entering.
  std::vector<Rational> obj(total_cols);
  for (std::size_t j = 0; j < n; ++j) obj[j] = lp.objective[j];
  std::vector<bool> allowed(total_cols, true);
  for (std::size_t c = 0; c < total_cols; ++c) {
    if (is_artificial[c]) allowed[c] = false;
  }
  if (iterate(t, obj, allowed) == IterStatus::kUnbounded) {
    return {LpStatus::kUnbounded, Rational(), {}};
  }

  LpResult res;
  res.status = LpStatus::kOptimal;
  res.solution.assign(n, Rational());
  for (std::size_t r = 0; r < m; ++r) {
    if (t.basis()[r] < n) res.solution[t.basis()[r]] = t.rhs(r);
  }
  for (std::size_t j = 0; j < n; ++j) res.objective += lp.objective[j] * res.solution[j];
  return res;
}

}  // namespace ccfsp
