#include "ilp/ilp.hpp"

#include <stdexcept>
#include <utility>

namespace ccfsp {

namespace {

struct SearchState {
  const LinearProgram* base = nullptr;
  std::size_t nodes = 0;
  std::size_t max_nodes = 0;
  bool found = false;
  Rational best_obj;
  std::vector<BigInt> best_x;
};

void branch(SearchState& st, LinearProgram lp) {
  if (++st.nodes > st.max_nodes) {
    throw std::runtime_error("solve_ilp: node budget exhausted");
  }
  LpResult rel = solve_lp(lp);
  if (rel.status == LpStatus::kInfeasible) return;
  if (rel.status == LpStatus::kUnbounded) {
    // With integral data, an unbounded relaxation of a feasible region that
    // contains an integer point means the ILP is unbounded as well. Signal
    // by throwing a distinguished exception type upward; the driver treats
    // top-level unboundedness before branching, and deeper subproblems only
    // shrink the region, so this cannot trigger there with rational data.
    throw std::logic_error("solve_ilp: unbounded subproblem after branching");
  }
  if (st.found && rel.objective <= st.best_obj) return;  // bound

  // Find a fractional variable.
  std::size_t frac = lp.num_vars;
  for (std::size_t j = 0; j < lp.num_vars; ++j) {
    if (!rel.solution[j].is_integer()) {
      frac = j;
      break;
    }
  }
  if (frac == lp.num_vars) {
    // Integral optimum of the relaxation.
    if (!st.found || rel.objective > st.best_obj) {
      st.found = true;
      st.best_obj = rel.objective;
      st.best_x.clear();
      for (const auto& v : rel.solution) st.best_x.push_back(v.num());
    }
    return;
  }

  BigInt fl = rel.solution[frac].floor();

  // Branch x_frac <= floor.
  {
    LinearProgram down = lp;
    LinearConstraint c;
    c.coeffs.assign(lp.num_vars, Rational());
    c.coeffs[frac] = Rational(1);
    c.relation = Relation::kLessEqual;
    c.rhs = Rational(fl);
    down.constraints.push_back(std::move(c));
    branch(st, std::move(down));
  }
  // Branch x_frac >= floor + 1.
  {
    LinearProgram up = lp;
    LinearConstraint c;
    c.coeffs.assign(lp.num_vars, Rational());
    c.coeffs[frac] = Rational(1);
    c.relation = Relation::kGreaterEqual;
    c.rhs = Rational(fl + BigInt(1));
    up.constraints.push_back(std::move(c));
    branch(st, std::move(up));
  }
}

}  // namespace

IlpResult solve_ilp(const LinearProgram& lp, std::size_t max_nodes) {
  // Top-level unboundedness check: if the relaxation is unbounded and the
  // region contains any integer point, the ILP is unbounded. We verify
  // integer feasibility by a bounded probe (objective forced to 0 and a box
  // added) rather than assuming it.
  LpResult root = solve_lp(lp);
  if (root.status == LpStatus::kInfeasible) return {IlpStatus::kInfeasible, {}, {}, 1};
  if (root.status == LpStatus::kUnbounded) {
    // Probe: does an integer point exist at all? Box the region; a rational
    // polyhedron that is feasible contains a point with coordinates bounded
    // by a function of the data, and our use sites have small data, so a
    // generous box suffices in practice. We grow the box a few times before
    // giving up (which would throw).
    for (std::int64_t box = 16; box <= 1 << 20; box *= 64) {
      LinearProgram probe = lp;
      probe.objective.assign(lp.num_vars, Rational());
      for (std::size_t j = 0; j < lp.num_vars; ++j) {
        LinearConstraint c;
        c.coeffs.assign(lp.num_vars, Rational());
        c.coeffs[j] = Rational(1);
        c.relation = Relation::kLessEqual;
        c.rhs = Rational(box);
        probe.constraints.push_back(std::move(c));
      }
      IlpResult probe_res = solve_ilp(probe, max_nodes);
      if (probe_res.status == IlpStatus::kOptimal) {
        return {IlpStatus::kUnbounded, {}, {}, probe_res.nodes_explored + 1};
      }
    }
    return {IlpStatus::kInfeasible, {}, {}, 1};
  }

  SearchState st;
  st.base = &lp;
  st.max_nodes = max_nodes;
  branch(st, lp);

  IlpResult res;
  res.nodes_explored = st.nodes;
  if (!st.found) {
    res.status = IlpStatus::kInfeasible;
    return res;
  }
  res.status = IlpStatus::kOptimal;
  res.objective = st.best_obj;
  res.solution = std::move(st.best_x);
  return res;
}

}  // namespace ccfsp
