// Branch-and-bound integer programming over the exact simplex. The paper's
// Theorem 4 invokes Lenstra's fixed-dimension IP algorithm [Le]; here the
// dimension is likewise a constant (edge multiplicities of an O(1)-size
// machine), so plain branch-and-bound with exact LP relaxations serves as the
// functional equivalent (see DESIGN.md §1).
#pragma once

#include <optional>
#include <vector>

#include "ilp/simplex.hpp"

namespace ccfsp {

enum class IlpStatus { kOptimal, kInfeasible, kUnbounded };

struct IlpResult {
  IlpStatus status = IlpStatus::kInfeasible;
  Rational objective;              // integral when kOptimal (vars are integers)
  std::vector<BigInt> solution;    // size num_vars when kOptimal
  std::size_t nodes_explored = 0;  // branch-and-bound statistics
};

/// maximize objective . x subject to lp.constraints, x >= 0 and integral.
///
/// `max_nodes` caps the search; if exceeded the solver throws, which in this
/// codebase indicates a misuse (the Theorem 4 instances are tiny in dimension).
IlpResult solve_ilp(const LinearProgram& lp, std::size_t max_nodes = 100000);

}  // namespace ccfsp
