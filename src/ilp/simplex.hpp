// Exact two-phase primal simplex over rationals (dense tableau, Bland's
// anti-cycling rule). This is the LP engine under the fixed-dimension ILP
// solver that stands in for Lenstra's algorithm [Le] in Theorem 4.
#pragma once

#include <cstddef>
#include <vector>

#include "bignum/rational.hpp"

namespace ccfsp {

enum class Relation { kLessEqual, kEqual, kGreaterEqual };

struct LinearConstraint {
  std::vector<Rational> coeffs;  // one per structural variable
  Relation relation = Relation::kLessEqual;
  Rational rhs;
};

/// maximize objective . x  subject to constraints, x >= 0 componentwise.
struct LinearProgram {
  std::size_t num_vars = 0;
  std::vector<Rational> objective;  // size num_vars
  std::vector<LinearConstraint> constraints;
};

enum class LpStatus { kOptimal, kInfeasible, kUnbounded };

struct LpResult {
  LpStatus status = LpStatus::kInfeasible;
  Rational objective;
  std::vector<Rational> solution;  // size num_vars when kOptimal
};

/// Solve exactly. Never returns approximate answers; throws only on
/// malformed input (mismatched coefficient counts).
LpResult solve_lp(const LinearProgram& lp);

}  // namespace ccfsp
