#include "semantics/lang.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>
#include <unordered_map>

namespace ccfsp {

namespace {

/// tau-closed subset of states reached from `states` by one observable `a`.
std::vector<StateId> step(const Fsp& p, const std::vector<StateId>& states, ActionId a) {
  std::set<StateId> next;
  for (StateId s : states) {
    for (const auto& t : p.out(s)) {
      if (t.action == a) {
        for (StateId r : p.tau_closure(t.target)) next.insert(r);
      }
    }
  }
  return {next.begin(), next.end()};
}

}  // namespace

bool lang_contains(const Fsp& p, const std::vector<ActionId>& s) {
  std::vector<StateId> cur = p.tau_closure(p.start());
  for (ActionId a : s) {
    cur = step(p, cur, a);
    if (cur.empty()) return false;
  }
  return true;
}

std::vector<std::vector<ActionId>> enumerate_lang(const Fsp& p, std::size_t max_len,
                                                  std::size_t limit) {
  // BFS over tau-closed subsets; a subset may repeat along different strings,
  // and that is fine — we enumerate strings, not states.
  std::vector<std::vector<ActionId>> out;
  struct Item {
    std::vector<ActionId> s;
    std::vector<StateId> states;
  };
  std::vector<Item> frontier{{{}, p.tau_closure(p.start())}};
  out.push_back({});
  for (std::size_t len = 0; len < max_len && !frontier.empty(); ++len) {
    std::vector<Item> next_frontier;
    for (const auto& item : frontier) {
      // Candidate next actions = union of out-actions over the subset.
      std::set<ActionId> actions;
      for (StateId s : item.states) {
        for (const auto& t : p.out(s)) {
          if (t.action != kTau) actions.insert(t.action);
        }
      }
      for (ActionId a : actions) {
        auto next = step(p, item.states, a);
        if (next.empty()) continue;
        std::vector<ActionId> s2 = item.s;
        s2.push_back(a);
        out.push_back(s2);
        if (out.size() > limit) throw std::runtime_error("enumerate_lang: limit exceeded");
        next_frontier.push_back({std::move(s2), std::move(next)});
      }
    }
    frontier = std::move(next_frontier);
  }
  std::sort(out.begin(), out.end());
  return out;
}

bool lang_infinite(const Fsp& p) {
  // Infinite iff some reachable cycle contains an observable transition:
  // check for an observable edge inside a single SCC.
  auto scc = p.digraph().scc();
  for (StateId s = 0; s < p.num_states(); ++s) {
    for (const auto& t : p.out(s)) {
      if (t.action != kTau && scc.component[s] == scc.component[t.target]) {
        // Self-loops and intra-SCC edges both qualify; an intra-SCC edge can
        // be traversed arbitrarily often. (All states are reachable from the
        // start by the FSP invariant.)
        return true;
      }
    }
  }
  return false;
}

std::optional<std::size_t> longest_string_length(const Fsp& p) {
  if (lang_infinite(p)) return std::nullopt;
  // Longest observable path in a graph whose observable edges form a DAG
  // across SCCs (tau cycles may exist; collapse SCCs first — inside an SCC
  // only tau edges can occur here, contributing length 0).
  auto scc = p.digraph().scc();
  std::size_t k = scc.num_components;
  // Build condensation with weights (1 for observable, 0 for tau).
  std::vector<std::vector<std::pair<std::size_t, std::size_t>>> cadj(k);
  for (StateId s = 0; s < p.num_states(); ++s) {
    for (const auto& t : p.out(s)) {
      std::size_t a = scc.component[s], b = scc.component[t.target];
      std::size_t w = t.action == kTau ? 0 : 1;
      if (a != b || w != 0) {
        if (a == b) continue;  // intra-SCC observable is impossible here
        cadj[a].emplace_back(b, w);
      }
    }
  }
  // Tarjan numbers components in reverse topological order: every edge goes
  // from a higher component id to a lower one, so iterate ids descending.
  std::vector<std::size_t> best(k, 0);
  std::size_t answer = 0;
  for (std::size_t c = k; c-- > 0;) {
    // best[c] is finalized only after all predecessors processed; reverse
    // topological order guarantees predecessors have higher ids.
    for (auto [d, w] : cadj[c]) {
      // process edges out of c when visiting c; push-style relaxation needs
      // c finalized first, so walk ids from high to low.
      best[d] = std::max(best[d], best[c] + w);
      answer = std::max(answer, best[d]);
    }
  }
  return answer;
}

bool lang_intersection_infinite(const Fsp& p, const Fsp& q) {
  if (p.alphabet() != q.alphabet()) {
    throw std::logic_error("lang_intersection_infinite: different Alphabets");
  }
  ActionSet shared = p.sigma_set() & q.sigma_set();

  // Synchronized product: shared observables handshake, everything else
  // (tau and symbols private to one side) moves alone. A reachable cycle
  // containing a shared action yields arbitrarily long common strings.
  struct Key {
    StateId a, b;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const {
      return (static_cast<std::size_t>(k.a) << 32) ^ k.b;
    }
  };
  std::unordered_map<Key, std::size_t, KeyHash> id;
  std::vector<Key> nodes;
  auto intern = [&](Key k) {
    auto [it, fresh] = id.try_emplace(k, nodes.size());
    if (fresh) nodes.push_back(k);
    return it->second;
  };

  std::vector<std::vector<std::pair<std::size_t, bool>>> adj;  // (target, is_shared)
  intern({p.start(), q.start()});
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    Key k = nodes[i];
    std::vector<std::pair<std::size_t, bool>> edges;
    for (const auto& t : p.out(k.a)) {
      if (t.action == kTau || !shared.test(t.action)) {
        edges.emplace_back(intern({t.target, k.b}), false);
      } else {
        for (const auto& u : q.out(k.b)) {
          if (u.action == t.action) edges.emplace_back(intern({t.target, u.target}), true);
        }
      }
    }
    for (const auto& u : q.out(k.b)) {
      if (u.action == kTau || !shared.test(u.action)) {
        edges.emplace_back(intern({k.a, u.target}), false);
      }
    }
    adj.push_back(std::move(edges));
    // `nodes` can grow during iteration; adj stays index-aligned because we
    // append exactly one row per visited node in order.
  }

  Digraph g(nodes.size());
  for (std::size_t i = 0; i < adj.size(); ++i) {
    for (auto [j, sharedEdge] : adj[i]) g.add_edge(i, j);
  }
  auto scc = g.scc();
  for (std::size_t i = 0; i < adj.size(); ++i) {
    for (auto [j, sharedEdge] : adj[i]) {
      if (sharedEdge && scc.component[i] == scc.component[j]) return true;
    }
  }
  return false;
}

}  // namespace ccfsp
