#include "semantics/failures.hpp"

#include <set>

namespace ccfsp {

bool fail_contains(const Fsp& p, const std::vector<ActionId>& s, const ActionSet& z) {
  // Subset of states reachable via s, tau-closed.
  std::set<StateId> cur;
  for (StateId q : p.tau_closure(p.start())) cur.insert(q);
  for (ActionId a : s) {
    std::set<StateId> next;
    for (StateId q : cur) {
      for (const auto& t : p.out(q)) {
        if (t.action == a) {
          for (StateId r : p.tau_closure(t.target)) next.insert(r);
        }
      }
    }
    cur = std::move(next);
    if (cur.empty()) return false;
  }
  for (StateId q : cur) {
    if (!p.ready_actions(q).intersects(z)) return true;
  }
  return false;
}

}  // namespace ccfsp
