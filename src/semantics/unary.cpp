#include "semantics/unary.hpp"

#include <algorithm>

#include "util/graph.hpp"

namespace ccfsp {

UnaryBound unary_bound_explicit(const Fsp& p, ActionId symbol) {
  auto scc = p.digraph().scc();
  for (StateId s = 0; s < p.num_states(); ++s) {
    for (const auto& t : p.out(s)) {
      if (t.action == symbol && scc.component[s] == scc.component[t.target]) {
        return UnaryBound::inf();
      }
    }
  }
  // Longest weighted path over the SCC condensation (symbol edges weigh 1).
  // Tarjan ids are in reverse topological order; the start's component is
  // the unique maximum, so process ids descending with push relaxation.
  std::size_t k = scc.num_components;
  std::vector<std::vector<std::pair<std::size_t, std::size_t>>> cadj(k);
  for (StateId s = 0; s < p.num_states(); ++s) {
    for (const auto& t : p.out(s)) {
      std::size_t a = scc.component[s], b = scc.component[t.target];
      if (a != b) cadj[a].emplace_back(b, t.action == symbol ? 1u : 0u);
    }
  }
  std::vector<std::size_t> best(k, 0);
  std::size_t answer = 0;
  for (std::size_t c = k; c-- > 0;) {
    for (auto [d, w] : cadj[c]) {
      best[d] = std::max(best[d], best[c] + w);
      answer = std::max(answer, best[d]);
    }
  }
  return UnaryBound::of(BigInt(static_cast<std::int64_t>(answer)));
}

Fsp unary_budget_fsp(const AlphabetPtr& alphabet, ActionId symbol, std::size_t count,
                     const std::string& name) {
  Fsp f(alphabet, name);
  StateId prev = f.add_state();
  f.set_start(prev);
  for (std::size_t i = 0; i < count; ++i) {
    StateId next = f.add_state();
    f.add_transition(prev, symbol, next);
    prev = next;
  }
  if (count == 0) f.declare_action(symbol);
  return f;
}

}  // namespace ccfsp
