// Unary-language normal forms (Theorem 4): over a one-symbol communication
// alphabet, a prefix-closed language is determined by the supremum of its
// string lengths — a number L (meaning {a^j | j <= L}) or infinity. The
// number must be held in binary (BigInt): a chain of multiply-by-2
// processes makes L exponential in the network size.
#pragma once

#include "bignum/bigint.hpp"
#include "fsp/fsp.hpp"

namespace ccfsp {

struct UnaryBound {
  bool infinite = false;
  BigInt count;  // meaningful when !infinite

  static UnaryBound inf() { return {true, BigInt(0)}; }
  static UnaryBound of(BigInt v) { return {false, std::move(v)}; }

  bool operator==(const UnaryBound&) const = default;
  std::string to_string() const { return infinite ? "inf" : count.to_string(); }
};

/// Max number of occurrences of `symbol` along any path of p (tau and other
/// symbols traverse freely but do not count); infinite iff some reachable
/// cycle contains a `symbol` transition. This is the explicit-state oracle
/// that the ILP-based Theorem 4 propagation is validated against.
UnaryBound unary_bound_explicit(const Fsp& p, ActionId symbol);

/// The FSP realization of the budget language {symbol^j | j <= count}:
/// a path of `count` transitions. Only for small counts (testing).
Fsp unary_budget_fsp(const AlphabetPtr& alphabet, ActionId symbol, std::size_t count,
                     const std::string& name);

}  // namespace ccfsp
