#include "semantics/poss_automaton.hpp"

#include <algorithm>
#include <bit>

#include "fsp/cache.hpp"
#include "util/failpoint.hpp"
#include "util/metrics.hpp"
#include "util/refine.hpp"
#include "util/simd.hpp"

namespace ccfsp {

namespace {

std::vector<ActionId> set_to_sorted(const ActionSet& s) {
  std::vector<ActionId> out;
  for (std::size_t a : s.to_indices()) out.push_back(static_cast<ActionId>(a));
  return out;
}

/// a ⊆ b for sorted, duplicate-free spans (two-pointer merge walk).
bool span_subset(std::span<const std::uint32_t> a, std::span<const std::uint32_t> b) {
  std::size_t j = 0;
  for (std::uint32_t x : a) {
    while (j < b.size() && b[j] < x) ++j;
    if (j == b.size() || b[j] != x) return false;
    ++j;
  }
  return true;
}

std::set<std::vector<ActionId>> annotate(const Fsp& p, const FspAnalysisCache& cache,
                                         const std::vector<StateId>& subset,
                                         SemanticAnnotation kind) {
  std::set<std::vector<ActionId>> ann;
  switch (kind) {
    case SemanticAnnotation::kLanguage:
      break;
    case SemanticAnnotation::kPossibilities:
      for (StateId q : subset) {
        if (p.is_stable(q)) ann.insert(set_to_sorted(p.out_actions(q)));
      }
      break;
    case SemanticAnnotation::kFailures: {
      // Minimal ready sets form an antichain equivalent to the maximal
      // refusal sets of the failures model. Deduplicate, order by popcount,
      // and compare each candidate against the kept antichain only: any
      // strict subset of a candidate is strictly smaller, so it (or a subset
      // of it) was already kept — O(k * |antichain|) subset checks instead
      // of the all-pairs O(k^2) loop.
      std::vector<ActionSet> readies;
      for (StateId q : subset) readies.push_back(cache.ready_actions(q));
      std::sort(readies.begin(), readies.end(),
                [](const ActionSet& x, const ActionSet& y) {
                  const std::size_t cx = x.count(), cy = y.count();
                  return cx != cy ? cx < cy : x < y;
                });
      readies.erase(std::unique(readies.begin(), readies.end()), readies.end());
      std::vector<const ActionSet*> kept;
      for (const ActionSet& r : readies) {
        bool minimal = true;
        for (const ActionSet* k : kept) {
          if (k->is_subset_of(r)) {  // strict: equal sets were deduplicated
            minimal = false;
            break;
          }
        }
        if (minimal) {
          kept.push_back(&r);
          ann.insert(set_to_sorted(r));
        }
      }
      break;
    }
  }
  return ann;
}

}  // namespace

std::uint32_t FlatAnnotatedDfa::step(std::uint32_t s, ActionId a) const {
  const ActionId* b = trans_action.data() + trans_off[s];
  const ActionId* e = trans_action.data() + trans_off[s + 1];
  const ActionId* it = std::lower_bound(b, e, a);
  if (it == e || *it != a) return UINT32_MAX;
  return trans_target[trans_off[s] + static_cast<std::uint32_t>(it - b)];
}

FlatAnnotatedDfa annotated_determinize_flat(const Fsp& p, SemanticAnnotation kind,
                                            const Budget* budget, std::size_t max_states) {
  metrics::ScopedSpan span("determinize.flat");
  FlatAnnotatedDfa dfa;
  const std::size_t n = p.num_states();

  // Per-state edge tables in one pass: non-tau out edges sorted by action
  // (CSR), tau out edges (CSR), stability. Deliberately *not* an
  // FspAnalysisCache: its arrow table costs O(closure^2 * degree) to fill
  // and nothing below needs it.
  std::vector<std::uint32_t> out_off(n + 1, 0), tau_off(n + 1, 0);
  std::vector<ActionId> out_act;
  std::vector<StateId> out_tgt, tau_tgt;
  std::vector<std::uint8_t> stable(n, 0);
  {
    std::size_t m = 0, mt = 0;
    for (StateId s = 0; s < n; ++s) {
      for (const auto& t : p.out(s)) {
        t.action == kTau ? ++mt : ++m;
      }
    }
    out_act.resize(m);
    out_tgt.resize(m);
    tau_tgt.resize(mt);
    std::size_t at = 0, tat = 0;
    std::vector<std::pair<ActionId, StateId>> row;
    for (StateId s = 0; s < n; ++s) {
      row.clear();
      for (const auto& t : p.out(s)) {
        if (t.action == kTau) {
          tau_tgt[tat++] = t.target;
        } else {
          row.emplace_back(t.action, t.target);
        }
      }
      std::sort(row.begin(), row.end());
      for (auto [a, t] : row) {
        out_act[at] = a;
        out_tgt[at] = t;
        ++at;
      }
      out_off[s + 1] = static_cast<std::uint32_t>(at);
      tau_off[s + 1] = static_cast<std::uint32_t>(tat);
      stable[s] = tau_off[s + 1] == tau_off[s] ? 1 : 0;
    }
  }

  // Tau closures, computed lazily — only the start and the targets of
  // followed non-tau edges ever need one — with an epoch-stamped seen array
  // instead of Fsp::tau_closure's fresh O(n) bitmap per call (that
  // allocation is quadratic over a chain-heavy composite and was the
  // dominant cost of the extraction this kernel replaces).
  std::vector<std::vector<StateId>> closure(n);
  std::vector<std::uint8_t> closure_done(n, 0);
  std::vector<std::uint32_t> seen_mark(n, 0);
  std::uint32_t epoch = 0;
  std::vector<StateId> dfs;
  auto closure_of = [&](StateId s) -> const std::vector<StateId>& {
    if (!closure_done[s]) {
      ++epoch;
      dfs.assign(1, s);
      seen_mark[s] = epoch;
      std::vector<StateId>& cl = closure[s];
      while (!dfs.empty()) {
        const StateId q = dfs.back();
        dfs.pop_back();
        cl.push_back(q);
        for (std::uint32_t k = tau_off[q]; k < tau_off[q + 1]; ++k) {
          const StateId t = tau_tgt[k];
          if (seen_mark[t] != epoch) {
            seen_mark[t] = epoch;
            dfs.push_back(t);
          }
        }
      }
      std::sort(cl.begin(), cl.end());
      closure_done[s] = 1;
      if (budget) {
        budget->charge(0, cl.size() * sizeof(StateId) + 32, "annotated_determinize");
      }
      if (metrics::enabled()) {
        metrics::add(metrics::Counter::kDeterminizeClosures);
        metrics::add(metrics::Counter::kDeterminizeClosureStates, cl.size());
      }
    }
    return closure[s];
  };

  // Interned per-state annotation source, also lazy: the stable ready set Z
  // under kPossibilities, the (closure-wide) ready-action set under
  // kFailures.
  std::vector<std::uint32_t> state_ann(n, UINT32_MAX);
  std::vector<ActionId> scratch;
  auto ann_of = [&](StateId q) {
    if (state_ann[q] == UINT32_MAX) {
      if (kind == SemanticAnnotation::kPossibilities) {
        scratch.assign(out_act.begin() + out_off[q], out_act.begin() + out_off[q + 1]);
        scratch.erase(std::unique(scratch.begin(), scratch.end()), scratch.end());
      } else {
        scratch.clear();
        for (StateId c : closure_of(q)) {
          scratch.insert(scratch.end(), out_act.begin() + out_off[c],
                         out_act.begin() + out_off[c + 1]);
        }
        std::sort(scratch.begin(), scratch.end());
        scratch.erase(std::unique(scratch.begin(), scratch.end()), scratch.end());
      }
      state_ann[q] = dfa.ann_sets.intern({scratch.data(), scratch.size()}).first;
    }
    return state_ann[q];
  };
  auto span_less = [&](std::uint32_t x, std::uint32_t y) {
    const auto sx = dfa.ann_sets.get(x), sy = dfa.ann_sets.get(y);
    return std::lexicographical_compare(sx.begin(), sx.end(), sy.begin(), sy.end());
  };

  auto intern_subset = [&](std::span<const StateId> subset) {
    auto [id, fresh] = dfa.subsets.intern(subset);
    if (fresh) {
      failpoint::hit("determinize.subset");
      metrics::add(metrics::Counter::kDeterminizeSubsets);
      if (dfa.subsets.size() > max_states) {
        throw BudgetExceeded(BudgetDimension::kStates, "annotated_determinize",
                             dfa.subsets.size(), dfa.subsets.bytes());
      }
      if (budget) {
        budget->charge(1, subset.size() * sizeof(StateId) + 160, "annotated_determinize");
      }
    }
    return id;
  };

  dfa.trans_off.push_back(0);
  dfa.ann_off.push_back(0);
  {
    const auto& cl = closure_of(p.start());
    dfa.start = intern_subset({cl.data(), cl.size()});
  }

  std::vector<StateId> subset;
  std::vector<std::uint32_t> ann;
  std::vector<std::pair<ActionId, StateId>> moves;
  std::vector<StateId> next;
  // Scratch bitmap over the NFA states for the successor unions below;
  // always left all-zero between uses.
  std::vector<std::uint64_t> union_words((n + 63) / 64, 0);
  metrics::record_max(metrics::Counter::kSimdDispatch,
                      static_cast<std::uint64_t>(simd::active_path()));
  for (std::uint32_t i = 0; i < dfa.subsets.size(); ++i) {
    // Copy: the interner's packed storage may move as successors are interned.
    const auto sp = dfa.subsets.get(i);
    subset.assign(sp.begin(), sp.end());

    ann.clear();
    switch (kind) {
      case SemanticAnnotation::kLanguage:
        break;
      case SemanticAnnotation::kPossibilities:
        for (StateId q : subset) {
          if (stable[q]) ann.push_back(ann_of(q));
        }
        // Lex order over the spans; interning dedups, so equal spans are
        // equal ids and land adjacent.
        std::sort(ann.begin(), ann.end(), span_less);
        ann.erase(std::unique(ann.begin(), ann.end()), ann.end());
        break;
      case SemanticAnnotation::kFailures: {
        // Minimal-ready-set antichain, as in annotate() above but on interned
        // spans: candidates ascending by length, each checked against the
        // kept antichain with a two-pointer subset walk.
        for (StateId q : subset) ann.push_back(ann_of(q));
        std::sort(ann.begin(), ann.end());
        ann.erase(std::unique(ann.begin(), ann.end()), ann.end());
        std::sort(ann.begin(), ann.end(), [&](std::uint32_t x, std::uint32_t y) {
          const std::size_t lx = dfa.ann_sets.get(x).size(), ly = dfa.ann_sets.get(y).size();
          return lx != ly ? lx < ly : span_less(x, y);
        });
        std::size_t kept = 0;
        for (std::uint32_t cand : ann) {
          bool minimal = true;
          for (std::size_t k = 0; k < kept && minimal; ++k) {
            minimal = !span_subset(dfa.ann_sets.get(ann[k]), dfa.ann_sets.get(cand));
          }
          if (minimal) ann[kept++] = cand;
        }
        ann.resize(kept);
        std::sort(ann.begin(), ann.end(), span_less);
        break;
      }
    }
    dfa.ann_ids.insert(dfa.ann_ids.end(), ann.begin(), ann.end());
    dfa.ann_off.push_back(static_cast<std::uint32_t>(dfa.ann_ids.size()));

    moves.clear();
    for (StateId q : subset) {
      for (std::uint32_t k = out_off[q]; k < out_off[q + 1]; ++k) {
        moves.emplace_back(out_act[k], out_tgt[k]);
      }
    }
    std::sort(moves.begin(), moves.end());
    for (std::size_t k = 0; k < moves.size();) {
      const ActionId a = moves[k].first;
      std::size_t k2 = k + 1;
      while (k2 < moves.size() && moves[k2].first == a) ++k2;
      next.clear();
      if (k2 == k + 1) {
        // Single a-mover: its closure is already sorted and unique, so the
        // union degenerates to a copy (the common case on sparse alphabets).
        const auto& cl = closure_of(moves[k].second);
        next.assign(cl.begin(), cl.end());
      } else {
        // Union the closures through a scratch bitmap and read the result
        // back ascending with the vectorized find-next kernel — ascending
        // extraction of set bits IS sort+unique. Only the dirty word range
        // is swept and cleared, so the scratch amortizes to O(union size).
        std::size_t lo = union_words.size(), hi = 0;
        for (; k < k2; ++k) {
          const auto& cl = closure_of(moves[k].second);
          lo = std::min(lo, static_cast<std::size_t>(cl.front() >> 6));
          hi = std::max(hi, static_cast<std::size_t>(cl.back() >> 6));
          for (StateId q : cl) union_words[q >> 6] |= std::uint64_t{1} << (q & 63);
        }
        for (std::size_t w = simd::next_nonzero_word(union_words.data(), hi + 1, lo);
             w <= hi; w = simd::next_nonzero_word(union_words.data(), hi + 1, w + 1)) {
          std::uint64_t bits = union_words[w];
          union_words[w] = 0;
          while (bits != 0) {
            next.push_back(static_cast<StateId>(w * 64 + std::countr_zero(bits)));
            bits &= bits - 1;
          }
        }
      }
      k = k2;
      const std::uint32_t target = intern_subset({next.data(), next.size()});
      dfa.trans_action.push_back(a);
      dfa.trans_target.push_back(target);
    }
    dfa.trans_off.push_back(static_cast<std::uint32_t>(dfa.trans_action.size()));
  }
  return dfa;
}

AnnotatedDfa annotated_determinize(const Fsp& p, SemanticAnnotation kind,
                                   const Budget* budget) {
  FlatAnnotatedDfa flat = annotated_determinize_flat(p, kind, budget);
  AnnotatedDfa dfa;
  dfa.start = flat.start;
  const std::size_t n = flat.num_states();
  dfa.trans.resize(n);
  dfa.annotation.resize(n);
  dfa.subsets.resize(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    for (std::uint32_t k = flat.trans_off[i]; k < flat.trans_off[i + 1]; ++k) {
      dfa.trans[i].emplace(flat.trans_action[k], flat.trans_target[k]);
    }
    for (std::uint32_t id : flat.annotation(i)) {
      const auto sp = flat.ann_sets.get(id);
      dfa.annotation[i].insert(std::vector<ActionId>(sp.begin(), sp.end()));
    }
    const auto sub = flat.subsets.get(i);
    dfa.subsets[i].assign(sub.begin(), sub.end());
  }
  return dfa;
}

AnnotatedDfa annotated_determinize_reference(const Fsp& p, SemanticAnnotation kind,
                                             const Budget* budget) {
  metrics::ScopedSpan span("determinize.reference");
  AnnotatedDfa dfa;
  // Closures and ready sets come from the analysis cache (each is computed
  // once per state instead of once per subset membership), and subsets are
  // deduplicated by hash instead of through a std::map of vectors. Subsets
  // are interned in the same order as the flat kernel — sorted-unique keys,
  // actions ascending — so the DFA numbering is unchanged.
  FspAnalysisCache cache(p, budget);
  SpanInterner ids;

  auto intern = [&](const std::vector<StateId>& subset) {
    auto [id, fresh] = ids.intern({subset.data(), subset.size()});
    if (fresh) {
      failpoint::hit("determinize.subset");
      metrics::add(metrics::Counter::kDeterminizeSubsets);
      if (budget) {
        budget->charge(1, subset.size() * sizeof(StateId) + 160, "annotated_determinize");
      }
      dfa.trans.emplace_back();
      dfa.annotation.push_back(annotate(p, cache, subset, kind));
      dfa.subsets.push_back(subset);
    }
    return id;
  };

  dfa.start = intern(cache.tau_closure(p.start()));
  std::vector<ActionId> actions;
  std::vector<StateId> next;
  for (std::uint32_t i = 0; i < dfa.trans.size(); ++i) {
    // Collect candidate actions from the subset (copy: vectors may reallocate
    // as intern() appends).
    std::vector<StateId> subset = dfa.subsets[i];
    actions.clear();
    for (StateId s : subset) {
      for (const auto& t : p.out(s)) {
        if (t.action != kTau) actions.push_back(t.action);
      }
    }
    std::sort(actions.begin(), actions.end());
    actions.erase(std::unique(actions.begin(), actions.end()), actions.end());
    for (ActionId a : actions) {
      next.clear();
      for (StateId s : subset) {
        for (const auto& t : p.out(s)) {
          if (t.action == a) {
            const auto& cl = cache.tau_closure(t.target);
            next.insert(next.end(), cl.begin(), cl.end());
          }
        }
      }
      if (next.empty()) continue;
      std::sort(next.begin(), next.end());
      next.erase(std::unique(next.begin(), next.end()), next.end());
      std::uint32_t target = intern(next);
      dfa.trans[i].emplace(a, target);
    }
  }
  return dfa;
}

namespace {

/// Shared quotient construction: given final classes, renumber in BFS order
/// from the start so equivalent inputs produce identical automata.
AnnotatedDfa build_quotient(const AnnotatedDfa& dfa, const std::vector<std::size_t>& cls,
                            std::size_t num_classes) {
  AnnotatedDfa out;
  std::vector<std::uint32_t> renumber(num_classes, UINT32_MAX);
  std::vector<std::size_t> representative;
  auto visit = [&](std::size_t s) {
    if (renumber[cls[s]] == UINT32_MAX) {
      renumber[cls[s]] = static_cast<std::uint32_t>(representative.size());
      representative.push_back(s);
    }
    return renumber[cls[s]];
  };
  out.start = visit(dfa.start);
  for (std::uint32_t c = 0; c < representative.size(); ++c) {
    std::size_t rep = representative[c];
    out.trans.emplace_back();
    out.annotation.push_back(dfa.annotation[rep]);
    for (const auto& [a, t] : dfa.trans[rep]) {
      out.trans[c].emplace(a, visit(t));
    }
  }
  return out;
}

}  // namespace

AnnotatedDfa minimize(const AnnotatedDfa& dfa) {
  const std::size_t n = dfa.num_states();
  // Initial partition by annotation.
  std::map<std::set<std::vector<ActionId>>, std::uint32_t> ann_ids;
  std::vector<std::uint32_t> initial(n);
  for (std::size_t s = 0; s < n; ++s) {
    auto [it, _] = ann_ids.try_emplace(dfa.annotation[s],
                                       static_cast<std::uint32_t>(ann_ids.size()));
    initial[s] = it->second;
  }

  // Coarsest stable refinement via the splitter-queue kernel. The DFA is
  // label-deterministic, so the kernel runs its O(m log n) smaller-half path.
  std::vector<std::uint32_t> src, act, dst;
  for (std::size_t s = 0; s < n; ++s) {
    for (const auto& [a, t] : dfa.trans[s]) {
      src.push_back(static_cast<std::uint32_t>(s));
      act.push_back(a);
      dst.push_back(t);
    }
  }
  std::vector<std::uint32_t> refined =
      refine_partition(static_cast<std::uint32_t>(n), src, act, dst, std::move(initial));

  std::size_t num_classes = 0;
  std::vector<std::size_t> cls(n);
  for (std::size_t s = 0; s < n; ++s) {
    cls[s] = refined[s];
    num_classes = std::max(num_classes, cls[s] + 1);
  }
  return build_quotient(dfa, cls, num_classes);
}

AnnotatedDfa minimize_reference(const AnnotatedDfa& dfa) {
  const std::size_t n = dfa.num_states();
  // Initial partition by annotation.
  std::map<std::set<std::vector<ActionId>>, std::size_t> ann_ids;
  std::vector<std::size_t> cls(n);
  for (std::size_t s = 0; s < n; ++s) {
    auto [it, _] = ann_ids.try_emplace(dfa.annotation[s], ann_ids.size());
    cls[s] = it->second;
  }
  std::size_t num_classes = ann_ids.size();

  // Moore refinement: signature = (current class, action -> target class).
  while (true) {
    std::map<std::pair<std::size_t, std::map<ActionId, std::size_t>>, std::size_t> sig_ids;
    std::vector<std::size_t> next(n);
    for (std::size_t s = 0; s < n; ++s) {
      std::map<ActionId, std::size_t> moves;
      for (const auto& [a, t] : dfa.trans[s]) moves.emplace(a, cls[t]);
      auto [it, _] = sig_ids.try_emplace({cls[s], std::move(moves)}, sig_ids.size());
      next[s] = it->second;
    }
    if (sig_ids.size() == num_classes) break;
    num_classes = sig_ids.size();
    cls = std::move(next);
  }

  return build_quotient(dfa, cls, num_classes);
}

bool annotated_dfa_equivalent(const AnnotatedDfa& a, const AnnotatedDfa& b) {
  std::set<std::pair<std::uint32_t, std::uint32_t>> visited;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> work{{a.start, b.start}};
  visited.insert(work[0]);
  while (!work.empty()) {
    auto [u, v] = work.back();
    work.pop_back();
    if (a.annotation[u] != b.annotation[v]) return false;
    // Defined-action sets must agree.
    auto it = a.trans[u].begin();
    auto jt = b.trans[v].begin();
    while (it != a.trans[u].end() || jt != b.trans[v].end()) {
      if (it == a.trans[u].end() || jt == b.trans[v].end() || it->first != jt->first) {
        return false;
      }
      auto next = std::make_pair(it->second, jt->second);
      if (visited.insert(next).second) work.push_back(next);
      ++it;
      ++jt;
    }
  }
  return true;
}

}  // namespace ccfsp
