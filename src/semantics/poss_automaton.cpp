#include "semantics/poss_automaton.hpp"

#include <algorithm>

#include "fsp/cache.hpp"
#include "util/failpoint.hpp"
#include "util/flat_interner.hpp"

namespace ccfsp {

namespace {

std::vector<ActionId> set_to_sorted(const ActionSet& s) {
  std::vector<ActionId> out;
  for (std::size_t a : s.to_indices()) out.push_back(static_cast<ActionId>(a));
  return out;
}

std::set<std::vector<ActionId>> annotate(const Fsp& p, const FspAnalysisCache& cache,
                                         const std::vector<StateId>& subset,
                                         SemanticAnnotation kind) {
  std::set<std::vector<ActionId>> ann;
  switch (kind) {
    case SemanticAnnotation::kLanguage:
      break;
    case SemanticAnnotation::kPossibilities:
      for (StateId q : subset) {
        if (p.is_stable(q)) ann.insert(set_to_sorted(p.out_actions(q)));
      }
      break;
    case SemanticAnnotation::kFailures: {
      // Minimal ready sets form an antichain equivalent to the maximal
      // refusal sets of the failures model.
      std::vector<ActionSet> readies;
      for (StateId q : subset) readies.push_back(cache.ready_actions(q));
      for (std::size_t i = 0; i < readies.size(); ++i) {
        bool minimal = true;
        for (std::size_t j = 0; j < readies.size() && minimal; ++j) {
          if (i != j && readies[j].is_subset_of(readies[i]) && readies[j] != readies[i]) {
            minimal = false;
          }
        }
        if (minimal) ann.insert(set_to_sorted(readies[i]));
      }
      break;
    }
  }
  return ann;
}

}  // namespace

AnnotatedDfa annotated_determinize(const Fsp& p, SemanticAnnotation kind,
                                   const Budget* budget) {
  AnnotatedDfa dfa;
  // Closures and ready sets come from the analysis cache (each is computed
  // once per state instead of once per subset membership), and subsets are
  // deduplicated by hash instead of through a std::map of vectors. Subsets
  // are interned in the same order as before — sorted-unique keys, actions
  // ascending — so the DFA numbering is unchanged.
  FspAnalysisCache cache(p, budget);
  SpanInterner ids;

  auto intern = [&](const std::vector<StateId>& subset) {
    auto [id, fresh] = ids.intern({subset.data(), subset.size()});
    if (fresh) {
      failpoint::hit("determinize.subset");
      if (budget) {
        budget->charge(1, subset.size() * sizeof(StateId) + 160, "annotated_determinize");
      }
      dfa.trans.emplace_back();
      dfa.annotation.push_back(annotate(p, cache, subset, kind));
      dfa.subsets.push_back(subset);
    }
    return id;
  };

  dfa.start = intern(cache.tau_closure(p.start()));
  std::vector<ActionId> actions;
  std::vector<StateId> next;
  for (std::uint32_t i = 0; i < dfa.trans.size(); ++i) {
    // Collect candidate actions from the subset (copy: vectors may reallocate
    // as intern() appends).
    std::vector<StateId> subset = dfa.subsets[i];
    actions.clear();
    for (StateId s : subset) {
      for (const auto& t : p.out(s)) {
        if (t.action != kTau) actions.push_back(t.action);
      }
    }
    std::sort(actions.begin(), actions.end());
    actions.erase(std::unique(actions.begin(), actions.end()), actions.end());
    for (ActionId a : actions) {
      next.clear();
      for (StateId s : subset) {
        for (const auto& t : p.out(s)) {
          if (t.action == a) {
            const auto& cl = cache.tau_closure(t.target);
            next.insert(next.end(), cl.begin(), cl.end());
          }
        }
      }
      if (next.empty()) continue;
      std::sort(next.begin(), next.end());
      next.erase(std::unique(next.begin(), next.end()), next.end());
      std::uint32_t target = intern(next);
      dfa.trans[i].emplace(a, target);
    }
  }
  return dfa;
}

AnnotatedDfa minimize(const AnnotatedDfa& dfa) {
  const std::size_t n = dfa.num_states();
  // Initial partition by annotation.
  std::map<std::set<std::vector<ActionId>>, std::size_t> ann_ids;
  std::vector<std::size_t> cls(n);
  for (std::size_t s = 0; s < n; ++s) {
    auto [it, _] = ann_ids.try_emplace(dfa.annotation[s], ann_ids.size());
    cls[s] = it->second;
  }
  std::size_t num_classes = ann_ids.size();

  // Moore refinement: signature = (current class, action -> target class).
  while (true) {
    std::map<std::pair<std::size_t, std::map<ActionId, std::size_t>>, std::size_t> sig_ids;
    std::vector<std::size_t> next(n);
    for (std::size_t s = 0; s < n; ++s) {
      std::map<ActionId, std::size_t> moves;
      for (const auto& [a, t] : dfa.trans[s]) moves.emplace(a, cls[t]);
      auto [it, _] = sig_ids.try_emplace({cls[s], std::move(moves)}, sig_ids.size());
      next[s] = it->second;
    }
    if (sig_ids.size() == num_classes) break;
    num_classes = sig_ids.size();
    cls = std::move(next);
  }

  // Build the quotient, numbering classes in BFS order from the start so
  // equivalent inputs produce identical (not merely isomorphic) automata.
  AnnotatedDfa out;
  std::vector<std::uint32_t> renumber(num_classes, UINT32_MAX);
  std::vector<std::size_t> representative;
  auto visit = [&](std::size_t s) {
    if (renumber[cls[s]] == UINT32_MAX) {
      renumber[cls[s]] = static_cast<std::uint32_t>(representative.size());
      representative.push_back(s);
    }
    return renumber[cls[s]];
  };
  out.start = visit(dfa.start);
  for (std::uint32_t c = 0; c < representative.size(); ++c) {
    std::size_t rep = representative[c];
    out.trans.emplace_back();
    out.annotation.push_back(dfa.annotation[rep]);
    for (const auto& [a, t] : dfa.trans[rep]) {
      out.trans[c].emplace(a, visit(t));
    }
  }
  return out;
}

bool annotated_dfa_equivalent(const AnnotatedDfa& a, const AnnotatedDfa& b) {
  std::set<std::pair<std::uint32_t, std::uint32_t>> visited;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> work{{a.start, b.start}};
  visited.insert(work[0]);
  while (!work.empty()) {
    auto [u, v] = work.back();
    work.pop_back();
    if (a.annotation[u] != b.annotation[v]) return false;
    // Defined-action sets must agree.
    auto it = a.trans[u].begin();
    auto jt = b.trans[v].begin();
    while (it != a.trans[u].end() || jt != b.trans[v].end()) {
      if (it == a.trans[u].end() || jt == b.trans[v].end() || it->first != jt->first) {
        return false;
      }
      auto next = std::make_pair(it->second, jt->second);
      if (visited.insert(next).second) work.push_back(next);
      ++it;
      ++jt;
    }
  }
  return true;
}

}  // namespace ccfsp
