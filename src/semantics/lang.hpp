// Lang(P) queries (Definition 4): membership, bounded enumeration, and
// finiteness/longest-string analysis. An FSP's language is prefix-closed by
// construction (every state "accepts").
#pragma once

#include <optional>
#include <vector>

#include "fsp/fsp.hpp"

namespace ccfsp {

/// Is s in Lang(P)? (s given as observable action ids; tau never appears.)
bool lang_contains(const Fsp& p, const std::vector<ActionId>& s);

/// All strings of Lang(P) with length <= max_len, sorted lexicographically.
/// Throws if more than `limit` strings would be produced.
std::vector<std::vector<ActionId>> enumerate_lang(const Fsp& p, std::size_t max_len,
                                                  std::size_t limit = 1u << 20);

/// True iff Lang(P) is infinite, i.e. some reachable cycle contains an
/// observable action.
bool lang_infinite(const Fsp& p);

/// Length of the longest string in Lang(P), or nullopt if Lang(P) is
/// infinite.
std::optional<std::size_t> longest_string_length(const Fsp& p);

/// True iff Lang(P) ∩ Lang(Q) is infinite — the cyclic success-with-
/// collaboration predicate of Section 4 in its two-process form. Both
/// processes are treated as NFAs over their full alphabets; the
/// intersection synchronizes on shared symbols only (symbols private to one
/// side interleave freely).
bool lang_intersection_infinite(const Fsp& p, const Fsp& q);

}  // namespace ccfsp
