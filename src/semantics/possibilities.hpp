// Poss(P), the paper's central semantic object (Definition 4): the pairs
// (s, Z) such that s drives P to some stable state (no outgoing tau) whose
// outgoing action set is exactly Z. Possibility equivalence refines HBR
// failure equivalence and is a congruence for composition (Lemma 2 / 2'),
// which is what makes the Theorem 3 hierarchy sound.
#pragma once

#include <string>
#include <vector>

#include "fsp/fsp.hpp"
#include "util/budget.hpp"

namespace ccfsp {

struct Possibility {
  std::vector<ActionId> s;  // the observable string
  std::vector<ActionId> z;  // the ready set at the stable state, sorted

  bool operator==(const Possibility&) const = default;
  auto operator<=>(const Possibility&) const = default;
};

/// Explicit Poss(P) for a *tree* FSP: one possibility per reachable stable
/// state, whose string is read off the unique root path. Linear time and
/// size; the backbone of the Theorem 3 reduction step.
std::vector<Possibility> possibilities_tree(const Fsp& p);

/// Explicit Poss(P) for any acyclic FSP by exhaustive path traversal.
/// Worst-case exponential (that blow-up is Theorem 1's succinctness source);
/// throws BudgetExceeded if more than `limit` traversal items or distinct
/// possibilities accumulate, or if the optional caller `budget` runs out.
/// Intended for oracles in tests and for the polynomially-bounded composites
/// arising inside the Theorem 3 pipeline.
std::vector<Possibility> possibilities_acyclic(const Fsp& p, std::size_t limit = 1u << 20,
                                               const Budget* budget = nullptr);

/// Canonicalize: sort + dedupe.
void canonicalize(std::vector<Possibility>& poss);

/// Human-readable rendering "(a b, {c,d})" for debugging and docs.
std::string to_string(const Possibility& poss, const Alphabet& alphabet);

}  // namespace ccfsp
