// The annotated subset construction: a deterministic automaton over
// observable strings whose states are tau-closed NFA state subsets, each
// carrying a canonical semantic annotation. One engine serves all three
// equivalences used in the paper:
//   - language equivalence        (no annotation),
//   - possibility equivalence     (ready sets of stable members; Def. 4),
//   - failure equivalence         (minimal ready antichain ≙ maximal
//                                  refusals; the HBR model).
// Worst-case exponential — testing possibility equivalence of cyclic
// processes is PSPACE-complete [KS] — but small on the tree-structured
// inputs of Theorem 3.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "fsp/fsp.hpp"
#include "util/budget.hpp"

namespace ccfsp {

enum class SemanticAnnotation { kLanguage, kPossibilities, kFailures };

struct AnnotatedDfa {
  std::uint32_t start = 0;
  /// Deterministic transitions; absent action = string leaves the language.
  std::vector<std::map<ActionId, std::uint32_t>> trans;
  /// Canonical per-state annotation: a set of sorted action-id vectors.
  std::vector<std::set<std::vector<ActionId>>> annotation;
  /// Underlying NFA subsets (diagnostics, size studies in the benches).
  std::vector<std::vector<StateId>> subsets;

  std::size_t num_states() const { return trans.size(); }
};

/// The subset construction is worst-case exponential in |p|; when `budget`
/// is given, every interned DFA state is charged (count + subset bytes) so
/// an adversarial input stops with BudgetExceeded instead of exhausting
/// memory.
AnnotatedDfa annotated_determinize(const Fsp& p, SemanticAnnotation kind,
                                   const Budget* budget = nullptr);

/// Equivalence of two annotated DFAs by synchronous traversal from the
/// start states: annotations must match everywhere and the transition
/// structure must agree on defined actions.
bool annotated_dfa_equivalent(const AnnotatedDfa& a, const AnnotatedDfa& b);

/// Canonical minimization: merge states with equal annotation and equal
/// (action -> class) behaviour, to a fixed point (Moore-style refinement
/// seeded by the annotations). Two FSPs are semantically equivalent under
/// the chosen annotation iff their minimized automata are isomorphic, and
/// the minimized size is a canonical complexity measure (used by benches).
/// The `subsets` diagnostic is dropped in the result.
AnnotatedDfa minimize(const AnnotatedDfa& dfa);

}  // namespace ccfsp
