// The annotated subset construction: a deterministic automaton over
// observable strings whose states are tau-closed NFA state subsets, each
// carrying a canonical semantic annotation. One engine serves all three
// equivalences used in the paper:
//   - language equivalence        (no annotation),
//   - possibility equivalence     (ready sets of stable members; Def. 4),
//   - failure equivalence         (minimal ready antichain ≙ maximal
//                                  refusals; the HBR model).
// Worst-case exponential — testing possibility equivalence of cyclic
// processes is PSPACE-complete [KS] — but small on the tree-structured
// inputs of Theorem 3.
//
// Two representations exist. The flat kernel (FlatAnnotatedDfa) stores
// transitions in CSR form and annotations as SpanInterner ids — it is what
// the hot paths (possibility normal form, the star deciders' factor DFAs)
// consume. The map/set representation (AnnotatedDfa) is the stable public
// shape; annotated_determinize() now materializes it from the flat kernel,
// while annotated_determinize_reference() retains the original
// implementation as the test oracle.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "fsp/fsp.hpp"
#include "util/budget.hpp"
#include "util/flat_interner.hpp"

namespace ccfsp {

enum class SemanticAnnotation { kLanguage, kPossibilities, kFailures };

struct AnnotatedDfa {
  std::uint32_t start = 0;
  /// Deterministic transitions; absent action = string leaves the language.
  std::vector<std::map<ActionId, std::uint32_t>> trans;
  /// Canonical per-state annotation: a set of sorted action-id vectors.
  std::vector<std::set<std::vector<ActionId>>> annotation;
  /// Underlying NFA subsets (diagnostics, size studies in the benches).
  std::vector<std::vector<StateId>> subsets;

  std::size_t num_states() const { return trans.size(); }
};

/// Flat annotated DFA: CSR transitions (actions ascending within a state)
/// and per-state annotation lists of interned sorted action spans, ordered
/// lexicographically — the same canonical order the std::set-based
/// representation iterates in.
struct FlatAnnotatedDfa {
  std::uint32_t start = 0;
  std::vector<std::uint32_t> trans_off;     // num_states + 1
  std::vector<ActionId> trans_action;       // ascending within each state
  std::vector<std::uint32_t> trans_target;
  std::vector<std::uint32_t> ann_off;       // num_states + 1
  std::vector<std::uint32_t> ann_ids;       // ids into ann_sets, lex order
  SpanInterner ann_sets;                    // sorted ActionId spans
  SpanInterner subsets;                     // NFA subset of DFA state i = get(i)

  std::size_t num_states() const { return trans_off.size() - 1; }
  std::span<const std::uint32_t> annotation(std::uint32_t s) const {
    return {ann_ids.data() + ann_off[s],
            static_cast<std::size_t>(ann_off[s + 1] - ann_off[s])};
  }
  /// Target of the a-transition out of s, or UINT32_MAX if undefined.
  std::uint32_t step(std::uint32_t s, ActionId a) const;
};

/// The subset construction is worst-case exponential in |p|; when `budget`
/// is given, every interned DFA state is charged (count + subset bytes) so
/// an adversarial input stops with BudgetExceeded instead of exhausting
/// memory. `max_states` is an intrinsic cap on DFA states that works even
/// without a budget (poss_normal_form passes its state limit through: every
/// DFA state becomes at least one normal-form router, so a DFA beyond the
/// limit can only produce a normal form beyond the limit). Subsets are
/// interned in BFS discovery order (sorted-unique member keys, actions
/// ascending), matching the reference numbering.
FlatAnnotatedDfa annotated_determinize_flat(const Fsp& p, SemanticAnnotation kind,
                                            const Budget* budget = nullptr,
                                            std::size_t max_states = SIZE_MAX);

/// The map/set representation, materialized from the flat kernel. Content
/// is identical to annotated_determinize_reference (tested).
AnnotatedDfa annotated_determinize(const Fsp& p, SemanticAnnotation kind,
                                   const Budget* budget = nullptr);

/// The retained original implementation (per-subset std::set dedup over an
/// FspAnalysisCache): the correctness oracle for the flat kernel.
AnnotatedDfa annotated_determinize_reference(const Fsp& p, SemanticAnnotation kind,
                                             const Budget* budget = nullptr);

/// Equivalence of two annotated DFAs by synchronous traversal from the
/// start states: annotations must match everywhere and the transition
/// structure must agree on defined actions.
bool annotated_dfa_equivalent(const AnnotatedDfa& a, const AnnotatedDfa& b);

/// Canonical minimization: merge states with equal annotation and equal
/// (action -> class) behaviour, to a fixed point. Two FSPs are semantically
/// equivalent under the chosen annotation iff their minimized automata are
/// isomorphic, and the minimized size is a canonical complexity measure
/// (used by benches). The `subsets` diagnostic is dropped in the result.
/// The fixed point is computed by the Paige–Tarjan splitter-queue kernel
/// (util/refine.hpp) seeded with the annotation partition; the result —
/// numbering included — is identical to minimize_reference (tested).
AnnotatedDfa minimize(const AnnotatedDfa& dfa);

/// The retained Moore-refinement implementation (signature maps rebuilt
/// every round): the oracle minimize() is tested against.
AnnotatedDfa minimize_reference(const AnnotatedDfa& dfa);

}  // namespace ccfsp
