#include "semantics/normal_form.hpp"

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <stdexcept>

#include "semantics/poss_automaton.hpp"

namespace ccfsp {

Fsp fsp_from_possibilities(const std::vector<Possibility>& poss, const AlphabetPtr& alphabet,
                           const std::string& name) {
  if (poss.empty()) {
    throw std::invalid_argument("fsp_from_possibilities: empty set (even the empty "
                                "string must carry a possibility in an acyclic FSP)");
  }

  // Group possibilities by string and collect the string set.
  std::map<std::vector<ActionId>, std::vector<const Possibility*>> by_string;
  for (const auto& p : poss) by_string[p.s].push_back(&p);

  // Prefix closure check.
  for (const auto& [s, _] : by_string) {
    if (!s.empty()) {
      std::vector<ActionId> prefix(s.begin(), s.end() - 1);
      if (!by_string.count(prefix)) {
        throw std::invalid_argument("fsp_from_possibilities: string set not prefix-closed");
      }
    }
  }

  Fsp out(alphabet, name);
  std::map<std::vector<ActionId>, StateId> router;
  for (const auto& [s, _] : by_string) {
    std::string label = "n";
    for (ActionId a : s) label += "_" + alphabet->name(a);
    router[s] = out.add_state(label);
  }
  out.set_start(router.at({}));

  for (const auto& [s, group] : by_string) {
    StateId rs = router.at(s);
    // Which extensions are covered by some stable sibling's ready set?
    std::set<ActionId> covered;
    for (const Possibility* p : group) {
      StateId stable = out.add_state(out.state_label(rs) + "!");
      out.add_transition(rs, kTau, stable);
      for (ActionId a : p->z) {
        std::vector<ActionId> sa = s;
        sa.push_back(a);
        auto it = router.find(sa);
        if (it == router.end()) {
          throw std::invalid_argument(
              "fsp_from_possibilities: ready action leads outside the string set");
        }
        out.add_transition(stable, a, it->second);
        covered.insert(a);
      }
    }
    // Direct router edges for extensions no stable sibling offers.
    for (const auto& [s2, _2] : by_string) {
      if (s2.size() != s.size() + 1) continue;
      if (!std::equal(s.begin(), s.end(), s2.begin())) continue;
      ActionId a = s2.back();
      if (!covered.count(a)) out.add_transition(rs, a, router.at(s2));
    }
  }

  out.validate();
  return out;
}

Fsp poss_normal_form(const Fsp& p, std::size_t limit, const Budget* budget,
                     std::shared_ptr<const NfLabelShape>* out_shape) {
  // Same contract as the reference path (which inherits it from
  // possibilities_acyclic): cyclic processes have no finite unfolding.
  if (!p.is_acyclic()) throw std::logic_error("poss_normal_form: process has a cycle");

  // The DFA's state reached by string s carries, as its kPossibilities
  // annotation, exactly the Z-sets of the possibilities (s, Z) — so the
  // router trie is the DFA's tree unfolding and Poss(P) never needs to be
  // enumerated string by string.
  FlatAnnotatedDfa dfa =
      annotated_determinize_flat(p, SemanticAnnotation::kPossibilities, budget, limit);

  auto shape = std::make_shared<NfLabelShape>();
  shape->alphabet = p.alphabet();

  // Pass 1: pre-order unfolding, children in ascending action order —
  // router ids land in lexicographic string order, matching the reference's
  // by_string map. The unfold tree can be much larger than the DFA (a DFA
  // state appears once per string reaching it), so every created state is
  // counted against `limit`, the same output-size proxy the reference
  // bounds through its traversal items.
  std::size_t work = 0;
  auto count_state = [&] {
    if (++work > limit) {
      throw BudgetExceeded(BudgetDimension::kStates, "poss_normal_form", work, work * 24);
    }
    if (budget) budget->charge(1, 24, "poss_normal_form");
  };

  struct Pending {
    std::uint32_t dfa_state, parent;
    ActionId via;
  };
  std::vector<std::uint32_t> router_dfa;
  std::vector<Pending> stack{{dfa.start, UINT32_MAX, kTau}};
  while (!stack.empty()) {
    const Pending pd = stack.back();
    stack.pop_back();
    count_state();
    const std::uint32_t r = static_cast<std::uint32_t>(router_dfa.size());
    router_dfa.push_back(pd.dfa_state);
    shape->parent.push_back(pd.parent);
    shape->via.push_back(pd.via);
    for (std::uint32_t k = dfa.trans_off[pd.dfa_state + 1]; k > dfa.trans_off[pd.dfa_state];
         --k) {
      stack.push_back({dfa.trans_target[k - 1], r, dfa.trans_action[k - 1]});
    }
  }
  const std::uint32_t num_routers = static_cast<std::uint32_t>(router_dfa.size());
  shape->num_routers = num_routers;

  // Children of router r in id order == ascending action order, aligned 1:1
  // with the DFA transitions of its state.
  std::vector<std::uint32_t> child_off(num_routers + 1, 0);
  for (std::uint32_t r = 0; r < num_routers; ++r) {
    const std::uint32_t d = router_dfa[r];
    child_off[r + 1] = child_off[r] + (dfa.trans_off[d + 1] - dfa.trans_off[d]);
  }
  std::vector<std::uint32_t> child_ids(child_off[num_routers]);
  {
    std::vector<std::uint32_t> cursor(child_off.begin(), child_off.end() - 1);
    for (std::uint32_t r = 1; r < num_routers; ++r) {
      child_ids[cursor[shape->parent[r]]++] = r;
    }
  }

  // Pass 2: routers first (ids 0..R-1), then per router its stable children
  // in Z-set lex order — the annotation list's order — with edges added in
  // the reference's order: tau + Z edges per stable child, then direct
  // router edges for uncovered extensions, actions ascending.
  Fsp out(p.alphabet(), p.name() + "_nf");
  out.set_label_provider([shape](StateId s) { return shape->label(s); });
  for (std::uint32_t r = 0; r < num_routers; ++r) out.add_state();
  out.set_start(0);

  ActionSet used(p.alphabet()->size());
  std::vector<std::uint8_t> covered(p.alphabet()->size(), 0);
  std::vector<ActionId> touched;
  for (std::uint32_t r = 0; r < num_routers; ++r) {
    const std::uint32_t d = router_dfa[r];
    const ActionId* tb = dfa.trans_action.data() + dfa.trans_off[d];
    const ActionId* te = dfa.trans_action.data() + dfa.trans_off[d + 1];
    touched.clear();
    for (std::uint32_t z : dfa.annotation(d)) {
      count_state();
      const StateId st = out.add_state();
      shape->owner.push_back(r);
      out.add_transition(r, kTau, st);
      for (ActionId a : dfa.ann_sets.get(z)) {
        // Every ready action of a possibility extends the language, so the
        // DFA transition — and with it the aligned child router — exists.
        const std::uint32_t idx = static_cast<std::uint32_t>(std::lower_bound(tb, te, a) - tb);
        out.add_transition(st, a, child_ids[child_off[r] + idx]);
        used.set(a);
        if (!covered[a]) {
          covered[a] = 1;
          touched.push_back(a);
        }
      }
    }
    for (std::uint32_t k = dfa.trans_off[d], c = child_off[r]; k < dfa.trans_off[d + 1];
         ++k, ++c) {
      const ActionId a = dfa.trans_action[k];
      if (!covered[a]) {
        out.add_transition(r, a, child_ids[c]);
        used.set(a);
      }
    }
    for (ActionId a : touched) covered[a] = 0;
  }

  out.validate();
  // Sigma must be preserved exactly: a declared-but-unused symbol still
  // blocks the partner's handshakes under ||, whereas dropping it from
  // Sigma would let the partner move autonomously — a different semantics.
  for (ActionId a : p.sigma()) {
    if (!used.test(a)) out.declare_action(a);
  }
  if (out_shape) *out_shape = shape;
  return out;
}

Fsp poss_normal_form_reference(const Fsp& p, std::size_t limit, const Budget* budget) {
  std::vector<Possibility> poss =
      p.is_tree() ? possibilities_tree(p) : possibilities_acyclic(p, limit, budget);
  Fsp nf = fsp_from_possibilities(poss, p.alphabet(), p.name() + "_nf");
  // Sigma must be preserved exactly (see poss_normal_form above).
  ActionSet used(p.alphabet()->size());
  for (StateId s = 0; s < nf.num_states(); ++s) used |= nf.out_actions(s);
  for (ActionId a : p.sigma()) {
    if (!used.test(a)) nf.declare_action(a);
  }
  return nf;
}

}  // namespace ccfsp
