#include "semantics/normal_form.hpp"

#include <map>
#include <set>
#include <stdexcept>

namespace ccfsp {

Fsp fsp_from_possibilities(const std::vector<Possibility>& poss, const AlphabetPtr& alphabet,
                           const std::string& name) {
  if (poss.empty()) {
    throw std::invalid_argument("fsp_from_possibilities: empty set (even the empty "
                                "string must carry a possibility in an acyclic FSP)");
  }

  // Group possibilities by string and collect the string set.
  std::map<std::vector<ActionId>, std::vector<const Possibility*>> by_string;
  for (const auto& p : poss) by_string[p.s].push_back(&p);

  // Prefix closure check.
  for (const auto& [s, _] : by_string) {
    if (!s.empty()) {
      std::vector<ActionId> prefix(s.begin(), s.end() - 1);
      if (!by_string.count(prefix)) {
        throw std::invalid_argument("fsp_from_possibilities: string set not prefix-closed");
      }
    }
  }

  Fsp out(alphabet, name);
  std::map<std::vector<ActionId>, StateId> router;
  for (const auto& [s, _] : by_string) {
    std::string label = "n";
    for (ActionId a : s) label += "_" + alphabet->name(a);
    router[s] = out.add_state(label);
  }
  out.set_start(router.at({}));

  for (const auto& [s, group] : by_string) {
    StateId rs = router.at(s);
    // Which extensions are covered by some stable sibling's ready set?
    std::set<ActionId> covered;
    for (const Possibility* p : group) {
      StateId stable = out.add_state(out.state_label(rs) + "!");
      out.add_transition(rs, kTau, stable);
      for (ActionId a : p->z) {
        std::vector<ActionId> sa = s;
        sa.push_back(a);
        auto it = router.find(sa);
        if (it == router.end()) {
          throw std::invalid_argument(
              "fsp_from_possibilities: ready action leads outside the string set");
        }
        out.add_transition(stable, a, it->second);
        covered.insert(a);
      }
    }
    // Direct router edges for extensions no stable sibling offers.
    for (const auto& [s2, _2] : by_string) {
      if (s2.size() != s.size() + 1) continue;
      if (!std::equal(s.begin(), s.end(), s2.begin())) continue;
      ActionId a = s2.back();
      if (!covered.count(a)) out.add_transition(rs, a, router.at(s2));
    }
  }

  out.validate();
  return out;
}

Fsp poss_normal_form(const Fsp& p, std::size_t limit, const Budget* budget) {
  std::vector<Possibility> poss =
      p.is_tree() ? possibilities_tree(p) : possibilities_acyclic(p, limit, budget);
  Fsp nf = fsp_from_possibilities(poss, p.alphabet(), p.name() + "_nf");
  // Sigma must be preserved exactly: a declared-but-unused symbol still
  // blocks the partner's handshakes under ||, whereas dropping it from
  // Sigma would let the partner move autonomously — a different semantics.
  ActionSet used(p.alphabet()->size());
  for (StateId s = 0; s < nf.num_states(); ++s) used |= nf.out_actions(s);
  for (ActionId a : p.sigma()) {
    if (!used.test(a)) nf.declare_action(a);
  }
  return nf;
}

}  // namespace ccfsp
