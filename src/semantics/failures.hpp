// Direct Fail(p) queries from the HBR failures model as quoted in Section 2:
//   Fail(p) = { (s, Z) | some p' with p ==s==> p' refuses every z in Z }.
// Used by tests to reproduce Figure 2's point: Fail(P) = Fail(Q) does not
// imply Poss(P) = Poss(Q) (possibility equivalence is strictly finer).
#pragma once

#include <vector>

#include "fsp/fsp.hpp"

namespace ccfsp {

/// Is (s, Z) a failure of P?
bool fail_contains(const Fsp& p, const std::vector<ActionId>& s, const ActionSet& z);

}  // namespace ccfsp
