// Possibility-preserving normal forms — the Reduction Step of Theorem 3
// (Figures 8b and 9). Given Poss(P) as an explicit set, build a small FSP
// realizing exactly that possibility set; replacing a subtree of the network
// by its normal form leaves every success predicate unchanged (Lemmas 2-5).
//
// Construction: a trie of "router" states, one per possibility string
// (possibility strings are prefix-closed for any acyclic FSP), where each
// router n_s is unstable (tau edges to one "stable" child per possibility
// (s, Z)) and the stable child has exactly Z outgoing, each action a in Z
// leading to router n_{sa}. Routers also carry direct a-edges to n_{sa}
// for extensions not offered by any stable sibling, keeping Lang intact.
// The result is a DAG of size O(sum |s| + sum |Z|); the paper flattens it
// to a tree, which is equivalent up to possibility equivalence (tested).
//
// poss_normal_form() builds the trie by unfolding the flat annotated
// subset-construction DFA (semantics/poss_automaton.hpp): the DFA's states
// under kPossibilities carry exactly the Z-sets per string class, so the
// trie is the DFA's tree unfolding — no explicit Poss(P) enumeration, no
// per-string std::map keys. poss_normal_form_reference() retains the
// original extract-then-rebuild path as the test oracle; both produce
// bit-identical automata (tested).
#pragma once

#include <memory>
#include <string>

#include "fsp/cache.hpp"
#include "semantics/possibilities.hpp"

namespace ccfsp {

/// Realize an explicit possibility set as an FSP. Preconditions (satisfied
/// by any set produced from an acyclic FSP, enforced by throwing):
///  - the string set {s | (s,Z) in poss} is prefix-closed and non-empty,
///  - for every (s,Z) and a in Z, sa is also a possibility string.
Fsp fsp_from_possibilities(const std::vector<Possibility>& poss, const AlphabetPtr& alphabet,
                           const std::string& name);

/// Possibility normal form of an acyclic FSP, via the flat annotated-DFA
/// unfolding. `limit` bounds the number of normal-form states built (the
/// same output-size proxy the reference path bounds through its traversal
/// items); an optional caller `budget` is charged alongside it (and can
/// trip first). State labels are materialized lazily on first request.
/// When `out_shape` is non-null it receives the label shape the result's
/// provider reads from (shared with the returned Fsp).
Fsp poss_normal_form(const Fsp& p, std::size_t limit = 1u << 20,
                     const Budget* budget = nullptr,
                     std::shared_ptr<const NfLabelShape>* out_shape = nullptr);

/// The retained original implementation: extract Poss explicitly
/// (linear-time tree walk when p is a tree, subset traversal otherwise)
/// and rebuild with fsp_from_possibilities. The correctness oracle for
/// poss_normal_form.
Fsp poss_normal_form_reference(const Fsp& p, std::size_t limit = 1u << 20,
                               const Budget* budget = nullptr);

}  // namespace ccfsp
