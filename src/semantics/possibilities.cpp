#include "semantics/possibilities.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>

namespace ccfsp {

std::vector<Possibility> possibilities_tree(const Fsp& p) {
  if (!p.is_tree()) throw std::logic_error("possibilities_tree: not a tree FSP");

  // Unique parent edge per non-root state.
  std::vector<StateId> parent(p.num_states(), 0);
  std::vector<ActionId> in_action(p.num_states(), kTau);
  for (StateId s = 0; s < p.num_states(); ++s) {
    for (const auto& t : p.out(s)) {
      parent[t.target] = s;
      in_action[t.target] = t.action;
    }
  }

  std::vector<Possibility> poss;
  for (StateId q = 0; q < p.num_states(); ++q) {
    if (!p.is_stable(q)) continue;
    Possibility pz;
    // Read the root path backwards, keeping observable labels only.
    for (StateId v = q; v != p.start(); v = parent[v]) {
      if (in_action[v] != kTau) pz.s.push_back(in_action[v]);
    }
    std::reverse(pz.s.begin(), pz.s.end());
    for (std::size_t a : p.out_actions(q).to_indices()) pz.z.push_back(static_cast<ActionId>(a));
    poss.push_back(std::move(pz));
  }
  canonicalize(poss);
  return poss;
}

std::vector<Possibility> possibilities_acyclic(const Fsp& p, std::size_t limit,
                                               const Budget* budget) {
  if (!p.is_acyclic()) throw std::logic_error("possibilities_acyclic: process has a cycle");

  std::set<Possibility> poss;
  struct Item {
    std::vector<ActionId> s;
    std::vector<StateId> states;  // tau-closed subset reached by s
  };
  std::vector<Item> frontier{{{}, p.tau_closure(p.start())}};
  std::size_t work = 0;

  auto harvest = [&](const Item& item) {
    for (StateId q : item.states) {
      if (p.is_stable(q)) {
        Possibility pz;
        pz.s = item.s;
        for (std::size_t a : p.out_actions(q).to_indices()) {
          pz.z.push_back(static_cast<ActionId>(a));
        }
        poss.insert(std::move(pz));
      }
    }
  };

  while (!frontier.empty()) {
    std::vector<Item> next_frontier;
    for (const auto& item : frontier) {
      if (++work > limit || poss.size() > limit) {
        throw BudgetExceeded(BudgetDimension::kStates, "possibilities_acyclic", work,
                             work * sizeof(Item));
      }
      if (budget) budget->charge(1, item.states.size() * sizeof(StateId) + 64,
                                 "possibilities_acyclic");
      harvest(item);
      std::set<ActionId> actions;
      for (StateId s : item.states) {
        for (const auto& t : p.out(s)) {
          if (t.action != kTau) actions.insert(t.action);
        }
      }
      for (ActionId a : actions) {
        std::set<StateId> next;
        for (StateId s : item.states) {
          for (const auto& t : p.out(s)) {
            if (t.action == a) {
              for (StateId r : p.tau_closure(t.target)) next.insert(r);
            }
          }
        }
        if (next.empty()) continue;
        Item ni;
        ni.s = item.s;
        ni.s.push_back(a);
        ni.states.assign(next.begin(), next.end());
        next_frontier.push_back(std::move(ni));
      }
    }
    frontier = std::move(next_frontier);
  }
  return {poss.begin(), poss.end()};
}

void canonicalize(std::vector<Possibility>& poss) {
  std::sort(poss.begin(), poss.end());
  poss.erase(std::unique(poss.begin(), poss.end()), poss.end());
}

std::string to_string(const Possibility& poss, const Alphabet& alphabet) {
  std::string out = "(";
  for (std::size_t i = 0; i < poss.s.size(); ++i) {
    if (i) out += ' ';
    out += alphabet.name(poss.s[i]);
  }
  if (poss.s.empty()) out += "ε";
  out += ", {";
  for (std::size_t i = 0; i < poss.z.size(); ++i) {
    if (i) out += ',';
    out += alphabet.name(poss.z[i]);
  }
  out += "})";
  return out;
}

}  // namespace ccfsp
