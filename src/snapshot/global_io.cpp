#include "snapshot/global_io.hpp"

#include <cstring>

#include "util/io.hpp"
#include "util/metrics.hpp"

namespace ccfsp::snapshot {

namespace {

// Section ids shared by the global-machine and checkpoint kinds.
constexpr std::uint32_t kSecMeta = 1;
constexpr std::uint32_t kSecFields = 2;
constexpr std::uint32_t kSecTuples = 3;
constexpr std::uint32_t kSecEdgeTarget = 4;
constexpr std::uint32_t kSecEdgeAction = 5;
constexpr std::uint32_t kSecEdgePair = 6;
constexpr std::uint32_t kSecEdgeOffsets = 7;
constexpr std::uint32_t kSecNetFp = 8;

/// FNV-1a 64-bit over an explicit value stream — stable, order-sensitive,
/// and independent of alphabet interning order (names, not ids).
struct FpStream {
  std::uint64_t h = 0xcbf29ce484222325ull;
  void byte(unsigned char b) {
    h ^= b;
    h *= 0x100000001b3ull;
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) byte(static_cast<unsigned char>(v >> (i * 8)));
  }
  void str(std::string_view s) {
    u64(s.size());
    for (char c : s) byte(static_cast<unsigned char>(c));
  }
};

std::optional<GlobalMachine> content_fail(LoadError* err, std::string detail) {
  if (err) {
    err->reason = LoadError::Reason::kWrongContent;
    err->detail = std::move(detail);
  }
  return std::nullopt;
}

/// Shared by both loaders: the fingerprint section must match `net`.
bool check_fingerprint(const Reader& r, const Network& net, LoadError* err) {
  std::uint64_t fp = 0;
  if (!r.read_u64(kSecNetFp, &fp) || fp != network_fingerprint(net)) {
    if (err) {
      err->reason = LoadError::Reason::kWrongContent;
      err->detail = "network fingerprint mismatch";
    }
    return false;
  }
  return true;
}

/// CSR shape validation shared by machine and checkpoint loads: offsets
/// monotone from 0 to the edge count, targets within `num_states`, movers
/// and partners within `width`, actions within the alphabet (or tau).
bool check_csr(const std::vector<std::uint32_t>& offsets,
               const std::vector<std::uint32_t>& target,
               const std::vector<std::uint32_t>& action,
               const std::vector<std::uint32_t>& pair, std::size_t num_states,
               std::size_t width, std::size_t alphabet_size, std::string* why) {
  const std::size_t edges = target.size();
  if (action.size() != edges || pair.size() != edges) {
    *why = "edge column sizes disagree";
    return false;
  }
  if (offsets.empty() || offsets.front() != 0 || offsets.back() != edges) {
    *why = "offset bounds";
    return false;
  }
  for (std::size_t i = 1; i < offsets.size(); ++i) {
    if (offsets[i] < offsets[i - 1]) {
      *why = "offsets not monotone";
      return false;
    }
  }
  for (std::size_t k = 0; k < edges; ++k) {
    if (target[k] >= num_states) {
      *why = "edge target out of range";
      return false;
    }
    if (action[k] != kTau && action[k] >= alphabet_size) {
      *why = "edge action out of range";
      return false;
    }
    if ((pair[k] >> 16) >= width || (pair[k] & 0xffffu) >= width) {
      *why = "edge mover out of range";
      return false;
    }
  }
  return true;
}

}  // namespace

std::uint64_t network_fingerprint(const Network& net) {
  FpStream fp;
  const auto& alphabet = *net.alphabet();
  fp.u64(net.size());
  for (std::size_t i = 0; i < net.size(); ++i) {
    const Fsp& p = net.process(i);
    fp.u64(p.num_states());
    fp.u64(p.start());
    for (StateId q = 0; q < p.num_states(); ++q) {
      const auto& out = p.out(q);
      fp.u64(out.size());
      for (const Transition& t : out) {
        if (t.action == kTau) {
          fp.str("\ttau");
        } else {
          fp.str(alphabet.name(t.action));
        }
        fp.u64(t.target);
      }
    }
    fp.u64(p.sigma().size());
    for (ActionId a : p.sigma()) fp.str(alphabet.name(a));
  }
  return fp.h;
}

bool save_global(const GlobalMachine& g, const Network& net, const std::string& path,
                 std::string* error) {
  Writer w(Kind::kGlobalMachine);
  w.add_u32s(kSecMeta, {g.width, g.words, static_cast<std::uint32_t>(g.num_states()),
                        static_cast<std::uint32_t>(g.num_edges())});
  std::vector<std::uint32_t> fields;
  fields.reserve(g.fields.size() * 3);
  for (const GlobalMachine::Field& f : g.fields) {
    fields.push_back(f.word);
    fields.push_back(f.shift);
    fields.push_back(f.mask);
  }
  w.add_u32s(kSecFields, fields);
  w.add_u32s(kSecTuples, g.tuple_words);
  w.add_u32s(kSecEdgeTarget, g.edge_target);
  w.add_u32s(kSecEdgeAction, g.edge_action);
  w.add_u32s(kSecEdgePair, g.edge_pair);
  w.add_u32s(kSecEdgeOffsets, g.edge_offsets);
  w.add_u64(kSecNetFp, network_fingerprint(net));
  return w.write_file(path, error);
}

std::optional<GlobalMachine> load_global(const std::string& path, const Network& net,
                                         LoadError* err) {
  auto r = Reader::load_file(path, Kind::kGlobalMachine, err);
  if (!r) return std::nullopt;
  if (!check_fingerprint(*r, net, err)) {
    metrics::add(metrics::Counter::kSnapshotColdStarts);
    return std::nullopt;
  }

  auto reject = [&](std::string detail) {
    metrics::add(metrics::Counter::kSnapshotColdStarts);
    return content_fail(err, std::move(detail));
  };

  std::vector<std::uint32_t> meta, fields;
  GlobalMachine g;
  if (!r->read_u32s(kSecMeta, &meta) || meta.size() != 4) return reject("meta section");
  if (!r->read_u32s(kSecFields, &fields) || fields.size() % 3 != 0) {
    return reject("fields section");
  }
  if (!r->read_u32s(kSecTuples, &g.tuple_words) ||
      !r->read_u32s(kSecEdgeTarget, &g.edge_target) ||
      !r->read_u32s(kSecEdgeAction, &g.edge_action) ||
      !r->read_u32s(kSecEdgePair, &g.edge_pair) ||
      !r->read_u32s(kSecEdgeOffsets, &g.edge_offsets)) {
    return reject("missing section");
  }
  g.width = meta[0];
  g.words = meta[1];
  const std::size_t num_states = meta[2];
  const std::size_t num_edges = meta[3];

  if (g.width != net.size()) return reject("width mismatch");
  if (g.words == 0 || fields.size() / 3 != g.width) return reject("field count");
  g.fields.reserve(g.width);
  for (std::size_t i = 0; i < fields.size(); i += 3) {
    if (fields[i] >= g.words) return reject("field word out of range");
    g.fields.push_back({fields[i], fields[i + 1], fields[i + 2]});
  }
  if (g.tuple_words.size() != num_states * g.words) return reject("tuple block size");
  if (g.edge_target.size() != num_edges) return reject("edge count");
  if (g.edge_offsets.size() != num_states + 1) return reject("offset count");
  std::string why;
  if (!check_csr(g.edge_offsets, g.edge_target, g.edge_action, g.edge_pair, num_states,
                 g.width, net.alphabet()->size(), &why)) {
    return reject(why);
  }
  if (num_states == 0) return reject("empty machine");

  // Every stored tuple must decode to in-range local states, and state 0
  // must decode to the network's initial tuple — the "never a silently
  // wrong machine" guard for a file whose CRCs pass but whose content was
  // written against different engine internals.
  for (std::uint32_t s = 0; s < num_states; ++s) {
    for (std::size_t i = 0; i < g.width; ++i) {
      if (g.local_state(s, i) >= net.process(i).num_states()) {
        return reject("tuple decodes out of range");
      }
    }
  }
  for (std::size_t i = 0; i < g.width; ++i) {
    if (g.local_state(0, i) != net.process(i).start()) {
      return reject("state 0 is not the initial tuple");
    }
  }
  return g;
}

void charge_loaded_global(const GlobalMachine& g, const Budget& budget) {
  const std::size_t n = g.num_states();
  budget.charge(n, n * flat_build_bytes_per_state(g.width), "build_global");
  metrics::add(metrics::Counter::kGlobalStates, n);
  metrics::add(metrics::Counter::kGlobalEdges, g.num_edges());
  metrics::record_max(metrics::Counter::kCsrBytes, g.memory_bytes());
}

bool save_checkpoint(const GlobalBuildProgress& p, const Network& net,
                     const std::string& path, std::string* error) {
  Writer w(Kind::kBuildCheckpoint);
  w.add_u32s(kSecMeta, {p.words, p.cursor});
  w.add_u32s(kSecTuples, p.tuple_words);
  w.add_u32s(kSecEdgeTarget, p.edge_target);
  w.add_u32s(kSecEdgeAction, p.edge_action);
  w.add_u32s(kSecEdgePair, p.edge_pair);
  w.add_u32s(kSecEdgeOffsets, p.edge_offsets);
  w.add_u64(kSecNetFp, network_fingerprint(net));
  if (!w.write_file(path, error)) return false;
  metrics::add(metrics::Counter::kCheckpointWrites);
  return true;
}

std::optional<GlobalBuildProgress> load_checkpoint(const std::string& path,
                                                   const Network& net, LoadError* err) {
  auto r = Reader::load_file(path, Kind::kBuildCheckpoint, err);
  if (!r) return std::nullopt;
  auto reject = [&](std::string detail) -> std::optional<GlobalBuildProgress> {
    metrics::add(metrics::Counter::kSnapshotColdStarts);
    if (err) {
      err->reason = LoadError::Reason::kWrongContent;
      err->detail = std::move(detail);
    }
    return std::nullopt;
  };
  if (!check_fingerprint(*r, net, err)) {
    metrics::add(metrics::Counter::kSnapshotColdStarts);
    return std::nullopt;
  }
  std::vector<std::uint32_t> meta;
  GlobalBuildProgress p;
  if (!r->read_u32s(kSecMeta, &meta) || meta.size() != 2) return reject("meta section");
  if (!r->read_u32s(kSecTuples, &p.tuple_words) ||
      !r->read_u32s(kSecEdgeTarget, &p.edge_target) ||
      !r->read_u32s(kSecEdgeAction, &p.edge_action) ||
      !r->read_u32s(kSecEdgePair, &p.edge_pair) ||
      !r->read_u32s(kSecEdgeOffsets, &p.edge_offsets)) {
    return reject("missing section");
  }
  p.words = meta[0];
  p.cursor = meta[1];
  if (p.words == 0 || p.tuple_words.size() % p.words != 0) return reject("tuple block size");
  const std::size_t num_states = p.tuple_words.size() / p.words;
  if (num_states == 0 || p.cursor > num_states) return reject("cursor out of range");
  if (p.edge_offsets.size() != static_cast<std::size_t>(p.cursor) + 1) {
    return reject("offset count");
  }
  std::string why;
  if (!check_csr(p.edge_offsets, p.edge_target, p.edge_action, p.edge_pair, num_states,
                 net.size(), net.alphabet()->size(), &why)) {
    return reject(why);
  }
  return p;
}

}  // namespace ccfsp::snapshot
