#include "snapshot/snapshot.hpp"

#include <cassert>
#include <cstring>

#include "util/failpoint.hpp"
#include "util/io.hpp"
#include "util/metrics.hpp"

namespace ccfsp::snapshot {

namespace {

constexpr char kMagic[8] = {'C', 'C', 'F', 'S', 'P', 'S', 'N', 'P'};
constexpr char kFooterMagic[8] = {'C', 'C', 'F', 'S', 'P', 'E', 'N', 'D'};
// Fixed header: magic + version + kind + stamp_len (stamp follows).
constexpr std::size_t kHeaderFixed = 8 + 4 + 4 + 4;
constexpr std::size_t kSectionHeader = 4 + 8 + 4;
constexpr std::size_t kFooterSize = 8 + 4 + 4;
// Caps a hostile stamp/section-count field before any allocation happens.
constexpr std::size_t kMaxStamp = 4096;
constexpr std::size_t kMaxSections = 4096;

void put_u32(std::string& out, std::uint32_t v) {
  char b[4] = {static_cast<char>(v), static_cast<char>(v >> 8), static_cast<char>(v >> 16),
               static_cast<char>(v >> 24)};
  out.append(b, 4);
}

void put_u64(std::string& out, std::uint64_t v) {
  put_u32(out, static_cast<std::uint32_t>(v));
  put_u32(out, static_cast<std::uint32_t>(v >> 32));
}

std::uint32_t get_u32(const char* p) {
  return static_cast<std::uint32_t>(static_cast<unsigned char>(p[0])) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(p[1])) << 8) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(p[2])) << 16) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(p[3])) << 24);
}

std::uint64_t get_u64(const char* p) {
  return static_cast<std::uint64_t>(get_u32(p)) |
         (static_cast<std::uint64_t>(get_u32(p + 4)) << 32);
}

std::optional<Reader> fail(LoadError* err, LoadError::Reason reason, std::string detail) {
  if (err) {
    err->reason = reason;
    err->detail = std::move(detail);
  }
  return std::nullopt;
}

}  // namespace

const char* to_string(LoadError::Reason r) {
  switch (r) {
    case LoadError::Reason::kOpenFailed: return "open_failed";
    case LoadError::Reason::kTooShort: return "too_short";
    case LoadError::Reason::kBadMagic: return "bad_magic";
    case LoadError::Reason::kBadVersion: return "bad_version";
    case LoadError::Reason::kWrongKind: return "wrong_kind";
    case LoadError::Reason::kTruncatedSection: return "truncated_section";
    case LoadError::Reason::kSectionCrc: return "section_crc";
    case LoadError::Reason::kMissingFooter: return "missing_footer";
    case LoadError::Reason::kFooterCrc: return "footer_crc";
    case LoadError::Reason::kMalformed: return "malformed";
    case LoadError::Reason::kWrongContent: return "wrong_content";
    case LoadError::Reason::kInjected: return "injected";
  }
  return "unknown";
}

Writer::Writer(Kind kind) : kind_(kind) {}

void Writer::add_section(std::uint32_t id, const void* data, std::size_t n) {
  for (const Section& s : sections_) assert(s.id != id && "duplicate snapshot section id");
  sections_.push_back({id, std::string(static_cast<const char*>(data), n)});
}

void Writer::add_bytes(std::uint32_t id, std::string_view bytes) {
  add_section(id, bytes.data(), bytes.size());
}

void Writer::add_u32s(std::uint32_t id, const std::vector<std::uint32_t>& v) {
  std::string payload;
  payload.reserve(v.size() * 4);
  for (std::uint32_t x : v) put_u32(payload, x);
  sections_.push_back({id, std::move(payload)});
}

void Writer::add_u64(std::uint32_t id, std::uint64_t v) {
  std::string payload;
  put_u64(payload, v);
  sections_.push_back({id, std::move(payload)});
}

std::string Writer::serialize() const {
  const std::string stamp = build_info_string("ccfsp");
  std::string out;
  std::size_t total = kHeaderFixed + stamp.size() + 4 + kFooterSize;
  for (const Section& s : sections_) total += kSectionHeader + s.payload.size();
  out.reserve(total);

  out.append(kMagic, 8);
  put_u32(out, kSnapshotFormatVersion);
  put_u32(out, static_cast<std::uint32_t>(kind_));
  put_u32(out, static_cast<std::uint32_t>(stamp.size()));
  out.append(stamp);
  put_u32(out, static_cast<std::uint32_t>(sections_.size()));
  for (const Section& s : sections_) {
    put_u32(out, s.id);
    put_u64(out, s.payload.size());
    put_u32(out, ioutil::crc32c(s.payload.data(), s.payload.size()));
    out.append(s.payload);
  }
  const std::uint32_t body_crc = ioutil::crc32c(out.data(), out.size());
  out.append(kFooterMagic, 8);
  put_u32(out, static_cast<std::uint32_t>(sections_.size()));
  put_u32(out, body_crc);
  return out;
}

bool Writer::write_file(const std::string& path, std::string* error) const {
  const std::string bytes = serialize();
  if (!ioutil::atomic_write_file(path, bytes, error)) {
    metrics::add(metrics::Counter::kSnapshotSaveFailures);
    return false;
  }
  metrics::add(metrics::Counter::kSnapshotSaves);
  metrics::add(metrics::Counter::kSnapshotBytesWritten, bytes.size());
  return true;
}

std::optional<Reader> Reader::load_bytes(std::string bytes, Kind expect, LoadError* err) {
  const std::size_t n = bytes.size();
  const char* p = bytes.data();
  if (n < kHeaderFixed) return fail(err, LoadError::Reason::kTooShort, "header");
  if (std::memcmp(p, kMagic, 8) != 0) return fail(err, LoadError::Reason::kBadMagic, "");
  const std::uint32_t version = get_u32(p + 8);
  if (version != kSnapshotFormatVersion) {
    return fail(err, LoadError::Reason::kBadVersion,
                "format version " + std::to_string(version));
  }
  const std::uint32_t kind = get_u32(p + 12);
  const std::uint32_t stamp_len = get_u32(p + 16);
  if (stamp_len > kMaxStamp || kHeaderFixed + stamp_len + 4 > n) {
    return fail(err, LoadError::Reason::kTooShort, "stamp");
  }
  std::size_t off = kHeaderFixed + stamp_len;
  const std::uint32_t section_count = get_u32(p + off);
  off += 4;
  if (section_count > kMaxSections) {
    return fail(err, LoadError::Reason::kMalformed,
                "section count " + std::to_string(section_count));
  }

  // Walk the section framing first — bounds checks only, no payload reads.
  // If the file is long enough for a footer we validate the whole-file CRC
  // *before* trusting any length field deeply; but the framing walk itself
  // is needed to find where the footer should start, so it stays purely
  // arithmetic with overflow-safe comparisons.
  std::vector<Section> sections;
  sections.reserve(section_count);
  for (std::uint32_t s = 0; s < section_count; ++s) {
    if (off + kSectionHeader > n) return fail(err, LoadError::Reason::kTruncatedSection, "");
    const std::uint32_t id = get_u32(p + off);
    const std::uint64_t len = get_u64(p + off + 4);
    off += kSectionHeader;
    if (len > n || off + len > n) {
      return fail(err, LoadError::Reason::kTruncatedSection,
                  "section " + std::to_string(id));
    }
    for (const Section& prev : sections) {
      if (prev.id == id) {
        return fail(err, LoadError::Reason::kMalformed,
                    "duplicate section " + std::to_string(id));
      }
    }
    sections.push_back({id, off, static_cast<std::size_t>(len)});
    off += static_cast<std::size_t>(len);
  }

  // Commit record.
  if (off + kFooterSize > n) return fail(err, LoadError::Reason::kMissingFooter, "");
  if (std::memcmp(p + off, kFooterMagic, 8) != 0) {
    return fail(err, LoadError::Reason::kMissingFooter, "footer magic");
  }
  if (get_u32(p + off + 8) != section_count) {
    return fail(err, LoadError::Reason::kMalformed, "footer section count");
  }
  if (get_u32(p + off + 12) != ioutil::crc32c(p, off)) {
    return fail(err, LoadError::Reason::kFooterCrc, "");
  }
  if (off + kFooterSize != n) {
    return fail(err, LoadError::Reason::kMalformed, "trailing bytes");
  }

  // Per-section payload CRCs (localizes a bit flip to one section in the
  // error detail; the footer CRC above already covered the bytes).
  for (const Section& s : sections) {
    try {
      failpoint::hit("snapshot.load_section");
    } catch (...) {
      return fail(err, LoadError::Reason::kInjected,
                  "section " + std::to_string(s.id));
    }
    const std::uint32_t want = get_u32(p + s.offset - 4);
    if (ioutil::crc32c(p + s.offset, s.size) != want) {
      return fail(err, LoadError::Reason::kSectionCrc, "section " + std::to_string(s.id));
    }
  }

  // Only after full validation: reject a kind mismatch (the file is intact,
  // just not the artifact the caller asked for).
  if (kind != static_cast<std::uint32_t>(expect)) {
    return fail(err, LoadError::Reason::kWrongKind, "kind " + std::to_string(kind));
  }

  Reader r;
  r.bytes_ = std::move(bytes);
  r.sections_ = std::move(sections);
  r.kind_ = static_cast<Kind>(kind);
  r.stamp_.assign(r.bytes_.data() + kHeaderFixed, stamp_len);
  return r;
}

std::optional<Reader> Reader::load_file(const std::string& path, Kind expect, LoadError* err) {
  std::string bytes;
  std::string io_error;
  if (!ioutil::read_file(path, &bytes, &io_error)) {
    metrics::add(metrics::Counter::kSnapshotColdStarts);
    fail(err, LoadError::Reason::kOpenFailed, path + ": " + io_error);
    return std::nullopt;
  }
  auto r = load_bytes(std::move(bytes), expect, err);
  if (!r) {
    metrics::add(metrics::Counter::kSnapshotColdStarts);
    return std::nullopt;
  }
  metrics::add(metrics::Counter::kSnapshotLoads);
  metrics::add(metrics::Counter::kSnapshotBytesRead, r->total_bytes());
  return r;
}

bool Reader::has(std::uint32_t id) const {
  for (const Section& s : sections_) {
    if (s.id == id) return true;
  }
  return false;
}

std::span<const char> Reader::section(std::uint32_t id) const {
  for (const Section& s : sections_) {
    if (s.id == id) return {bytes_.data() + s.offset, s.size};
  }
  return {};
}

bool Reader::read_u32s(std::uint32_t id, std::vector<std::uint32_t>* out) const {
  if (!has(id)) return false;
  const std::span<const char> sec = section(id);
  if (sec.size() % 4 != 0) return false;
  out->resize(sec.size() / 4);
  for (std::size_t i = 0; i < out->size(); ++i) (*out)[i] = get_u32(sec.data() + i * 4);
  return true;
}

bool Reader::read_u64(std::uint32_t id, std::uint64_t* out) const {
  const std::span<const char> sec = section(id);
  if (!has(id) || sec.size() != 8) return false;
  *out = get_u64(sec.data());
  return true;
}

}  // namespace ccfsp::snapshot
