#include "snapshot/persist.hpp"

#include <algorithm>

#include <unistd.h>

#include "snapshot/global_io.hpp"
#include "success/global.hpp"

namespace ccfsp::snapshot {

namespace {

void tell(const GlobalPersistOptions& opt, const std::string& msg) {
  if (opt.note) opt.note(msg);
}

}  // namespace

AnalyzeOptions::GlobalSource make_global_source(const GlobalPersistOptions& opt) {
  return [opt](const Network& net, const Budget& budget, unsigned threads) -> GlobalMachine {
    // 1. A saved machine short-circuits everything (charged like a build).
    if (!opt.load_path.empty()) {
      LoadError err;
      if (auto g = load_global(opt.load_path, net, &err)) {
        charge_loaded_global(*g, budget);
        tell(opt, "loaded global machine from " + opt.load_path + " (" +
                      std::to_string(g->num_states()) + " states)");
        if (!opt.save_path.empty() && opt.save_path != opt.load_path) {
          std::string werr;
          if (!save_global(*g, net, opt.save_path, &werr)) {
            tell(opt, "save-global failed: " + werr);
          }
        }
        return *std::move(g);
      }
      tell(opt, std::string("load-global degraded to a cold build (") +
                    to_string(err.reason) +
                    (err.detail.empty() ? "" : ": " + err.detail) + ")");
    }

    GlobalMachine g;
    if (opt.checkpoint_path.empty()) {
      g = build_global(net, budget, threads);
    } else {
      // 2. Checkpointed (sequential) build, resuming when asked and possible.
      CheckpointOptions ckpt;
      ckpt.interval_states = opt.checkpoint_interval;
      ckpt.on_checkpoint = [&](const GlobalBuildProgress& p) {
        std::string werr;
        if (!save_checkpoint(p, net, opt.checkpoint_path, &werr)) {
          // A failed checkpoint write must not kill the build it protects;
          // the previous durable checkpoint (if any) stays valid.
          tell(opt, "checkpoint write failed: " + werr);
        }
      };
      GlobalBuildProgress resume_image;
      if (opt.resume) {
        LoadError err;
        if (auto p = load_checkpoint(opt.checkpoint_path, net, &err)) {
          resume_image = *std::move(p);
          ckpt.resume = &resume_image;
          tell(opt, "resuming build from checkpoint (" +
                        std::to_string(resume_image.tuple_words.size() /
                                       std::max<std::uint32_t>(1, resume_image.words)) +
                        " states, cursor " + std::to_string(resume_image.cursor) + ")");
        } else {
          tell(opt, std::string("no usable checkpoint (") + to_string(err.reason) +
                        (err.detail.empty() ? "" : ": " + err.detail) +
                        "), cold build");
        }
      }
      if (threads > 1) {
        tell(opt, "checkpointing forces the sequential build path "
                  "(result is bit-identical)");
      }
      g = build_global_checkpointed(net, budget, ckpt);
      // Completed: the checkpoint is consumed. A stale checkpoint must not
      // shadow a finished build on the next run.
      ::unlink(opt.checkpoint_path.c_str());
    }

    if (!opt.save_path.empty()) {
      std::string werr;
      if (save_global(g, net, opt.save_path, &werr)) {
        tell(opt, "saved global machine to " + opt.save_path + " (" +
                      std::to_string(g.num_states()) + " states)");
      } else {
        tell(opt, "save-global failed: " + werr);
      }
    }
    return g;
  };
}

}  // namespace ccfsp::snapshot
