// The sectioned snapshot container every persisted artifact shares: global
// machines, build checkpoints, daemon cache images. Layout (little-endian):
//
//   header   "CCFSPSNP" | u32 format_version | u32 kind | u32 stamp_len |
//            stamp bytes (build_info_string of the writer) | u32 section_count
//   sections section_count times:
//            u32 section_id | u64 payload_len | u32 crc32c(payload) | payload
//   footer   "CCFSPEND" | u32 section_count | u32 crc32c(everything above)
//
// The footer is the commit record: a file without a valid footer is a torn
// write (the atomic_write_file rename never happened, or the storage lost
// the tail) and loads as a structured cold start. Per-section CRCs localize
// bit flips; the footer CRC covers the header and section framing too, so
// no flipped length field can walk the parser out of bounds unnoticed.
// Loading NEVER throws on malformed input and never returns a partially
// validated view — it is all-or-nothing by construction.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/version.hpp"

namespace ccfsp::snapshot {

/// What a snapshot file contains; a reader rejects a kind mismatch (e.g. a
/// checkpoint handed to --load-global) as a structured cold start.
enum class Kind : std::uint32_t {
  kGlobalMachine = 1,
  kBuildCheckpoint = 2,
  kDaemonCache = 3,
};

/// Why a load degraded to a cold start. Every rejection path maps to one of
/// these — the daemon logs it, tests assert on it, and the fuzz suite
/// requires a structured reason (never a crash) for every corpus file.
struct LoadError {
  enum class Reason {
    kOpenFailed,        // file missing or unreadable
    kTooShort,          // shorter than the fixed header
    kBadMagic,          // not a snapshot file
    kBadVersion,        // written by an incompatible format version
    kWrongKind,         // valid snapshot of a different artifact kind
    kTruncatedSection,  // section framing walks past end of file
    kSectionCrc,        // a section's payload failed its CRC32C
    kMissingFooter,     // no commit record — torn write
    kFooterCrc,         // framing/commit record failed its CRC32C
    kMalformed,         // inconsistent counts or duplicate section ids
    kWrongContent,      // sections validated but contents don't apply
                        // (missing section, fingerprint mismatch, bad shape)
    kInjected,          // a snapshot.load_section failpoint fired
  };
  Reason reason = Reason::kOpenFailed;
  std::string detail;
};

const char* to_string(LoadError::Reason r);

/// Accumulates sections and commits them as one atomic file. Section ids
/// are caller-defined per Kind; duplicate ids are a programming error
/// (asserted). The build stamp is embedded automatically.
class Writer {
 public:
  explicit Writer(Kind kind);

  void add_section(std::uint32_t id, const void* data, std::size_t n);
  void add_bytes(std::uint32_t id, std::string_view bytes);
  void add_u32s(std::uint32_t id, const std::vector<std::uint32_t>& v);
  void add_u64(std::uint32_t id, std::uint64_t v);

  /// The serialized container (header + sections + footer).
  std::string serialize() const;

  /// serialize() + ioutil::atomic_write_file + snapshot.saves/bytes_written
  /// metrics (snapshot.save_failures on any failure).
  bool write_file(const std::string& path, std::string* error = nullptr) const;

 private:
  Kind kind_;
  struct Section {
    std::uint32_t id;
    std::string payload;
  };
  std::vector<Section> sections_;
};

/// A fully validated, immutable view of a loaded snapshot. Construction via
/// load_file/load_bytes only; if either returns a value, every section's
/// framing and CRC checked out and accessors cannot fail structurally.
class Reader {
 public:
  /// Reads and validates `path`. On any failure returns nullopt with *err
  /// filled (when non-null) and bumps snapshot.cold_starts; on success
  /// bumps snapshot.loads / snapshot.bytes_read.
  static std::optional<Reader> load_file(const std::string& path, Kind expect,
                                         LoadError* err = nullptr);
  /// Same validation over an in-memory image (fuzzing, tests). Does not
  /// touch the metrics registry.
  static std::optional<Reader> load_bytes(std::string bytes, Kind expect,
                                          LoadError* err = nullptr);

  Kind kind() const { return kind_; }
  /// Build stamp of the writer that produced the file.
  std::string_view stamp() const { return stamp_; }

  bool has(std::uint32_t id) const;
  /// Raw payload of a section; empty span if absent (check has() to
  /// distinguish an absent section from an empty one).
  std::span<const char> section(std::uint32_t id) const;
  /// Decodes a section of packed u32s. False if absent or its size is not
  /// a multiple of 4.
  bool read_u32s(std::uint32_t id, std::vector<std::uint32_t>* out) const;
  /// Decodes an 8-byte section. False if absent or mis-sized.
  bool read_u64(std::uint32_t id, std::uint64_t* out) const;

  std::size_t total_bytes() const { return bytes_.size(); }

 private:
  Reader() = default;
  std::string bytes_;  // owns the image; sections_ index into it
  struct Section {
    std::uint32_t id;
    std::size_t offset, size;
  };
  std::vector<Section> sections_;
  Kind kind_ = Kind::kGlobalMachine;
  std::string stamp_;
};

}  // namespace ccfsp::snapshot
