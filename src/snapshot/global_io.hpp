// Persistence of the v2 GlobalMachine and of mid-build checkpoint images,
// on top of the sectioned snapshot container. Every file embeds a
// structural fingerprint of the network it was built from, so a snapshot
// can never be applied to the wrong model — a mismatch is a structured
// cold start (LoadError::Reason::kWrongContent), exactly like a torn write.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "network/network.hpp"
#include "snapshot/snapshot.hpp"
#include "success/global.hpp"
#include "util/budget.hpp"

namespace ccfsp::snapshot {

/// Structural fingerprint of a network: process count, per-process state
/// counts, starts, transition structure with action *names* (ids are
/// alphabet-relative and not stable across parses), and declared alphabets.
/// Two networks fingerprint equal iff build_global would produce the same
/// machine for both.
std::uint64_t network_fingerprint(const Network& net);

/// Serialize `g` (built from `net`) and commit it atomically to `path`.
bool save_global(const GlobalMachine& g, const Network& net, const std::string& path,
                 std::string* error = nullptr);

/// Load a machine persisted by save_global and validate it end to end:
/// container CRCs, network fingerprint, packing layout against Packer(net),
/// CSR shape (monotone offsets, in-range targets/actions/movers), and the
/// initial tuple. Returns nullopt with *err filled on any failure — the
/// caller cold-builds instead.
std::optional<GlobalMachine> load_global(const std::string& path, const Network& net,
                                         LoadError* err = nullptr);

/// Charge `budget` and bump the build counters exactly as a fresh flat
/// build of `g` would have (states, bytes, global.states/edges, csr.bytes)
/// — the charge-equivalence contract: analyses over a loaded machine see
/// the same budget walls and the same non-execution-shape counters as over
/// a freshly built one. Throws BudgetExceeded like the build would.
void charge_loaded_global(const GlobalMachine& g, const Budget& budget);

/// Serialize a mid-build checkpoint image and commit it atomically.
/// Bumps checkpoint.writes on success.
bool save_checkpoint(const GlobalBuildProgress& p, const Network& net,
                     const std::string& path, std::string* error = nullptr);

/// Load and validate a checkpoint image for `net` (fingerprint + internal
/// consistency; the builder re-validates the parts only it can check).
std::optional<GlobalBuildProgress> load_checkpoint(const std::string& path,
                                                   const Network& net,
                                                   LoadError* err = nullptr);

}  // namespace ccfsp::snapshot
