#include "snapshot/cache_io.hpp"

#include <cstring>
#include <unordered_set>

#include "fsp/alphabet.hpp"
#include "util/metrics.hpp"

namespace ccfsp::snapshot {

namespace {

constexpr std::uint32_t kSecResults = 1;
constexpr std::uint32_t kSecMemo = 2;
constexpr std::uint32_t kSecPool = 3;

// Sanity ceilings for decoded counts. Real images stay far under these; a
// corrupt count that slipped past the CRCs must not drive a multi-gigabyte
// reserve before the per-element bounds checks get a chance to reject it.
constexpr std::uint32_t kMaxItems = 1u << 22;
constexpr std::uint32_t kMaxStringLen = 1u << 26;

void put_u32(std::string* out, std::uint32_t v) {
  char b[4];
  for (int i = 0; i < 4; ++i) b[i] = static_cast<char>(v >> (i * 8));
  out->append(b, 4);
}

void put_str(std::string* out, std::string_view s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out->append(s.data(), s.size());
}

void put_u32s(std::string* out, const std::vector<std::uint32_t>& v) {
  put_u32(out, static_cast<std::uint32_t>(v.size()));
  for (std::uint32_t x : v) put_u32(out, x);
}

/// Bounds-checked cursor over one section payload. Every get_* returns a
/// safe default once `ok` drops; callers check ok at the end (and may check
/// early to stop loops).
struct Src {
  const char* p;
  std::size_t n;
  std::size_t at = 0;
  bool ok = true;

  explicit Src(std::span<const char> s) : p(s.data()), n(s.size()) {}

  std::uint32_t get_u32() {
    if (!ok || n - at < 4) {
      ok = false;
      return 0;
    }
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(static_cast<unsigned char>(p[at + i])) << (i * 8);
    }
    at += 4;
    return v;
  }

  std::uint32_t get_count(std::uint32_t cap) {
    const std::uint32_t v = get_u32();
    if (v > cap) ok = false;
    return ok ? v : 0;
  }

  std::string get_str() {
    const std::uint32_t len = get_count(kMaxStringLen);
    if (!ok || n - at < len) {
      ok = false;
      return {};
    }
    std::string s(p + at, len);
    at += len;
    return s;
  }

  std::vector<std::uint32_t> get_u32s() {
    const std::uint32_t len = get_count(kMaxItems);
    std::vector<std::uint32_t> v;
    if (!ok || (n - at) / 4 < len) {
      ok = false;
      return v;
    }
    v.reserve(len);
    for (std::uint32_t i = 0; i < len; ++i) v.push_back(get_u32());
    return v;
  }

  bool done() const { return ok && at == n; }
};

std::optional<DaemonCacheImage> reject(LoadError* err, std::string detail) {
  metrics::add(metrics::Counter::kSnapshotColdStarts);
  if (err) {
    err->reason = LoadError::Reason::kWrongContent;
    err->detail = std::move(detail);
  }
  return std::nullopt;
}

bool valid_fsp_image(const FspImage& img) {
  if (img.num_states == 0 || img.start >= img.num_states) return false;
  if (img.first_edge.size() != static_cast<std::size_t>(img.num_states) + 1) return false;
  if (img.first_edge.front() != 0 || img.first_edge.back() != img.act.size()) return false;
  for (std::size_t i = 1; i < img.first_edge.size(); ++i) {
    if (img.first_edge[i] < img.first_edge[i - 1]) return false;
  }
  if (img.tgt.size() != img.act.size()) return false;
  for (std::size_t k = 0; k < img.act.size(); ++k) {
    if (img.act[k] != 0 && img.act[k] - 1 >= img.action_names.size()) return false;
    if (img.tgt[k] >= img.num_states) return false;
  }
  // Re-interning must reproduce ids 0..n-1 in order, so names are unique;
  // every declared Sigma name must resolve without growing the alphabet.
  std::unordered_set<std::string_view> seen;
  for (const std::string& s : img.action_names) {
    if (!seen.insert(s).second) return false;
  }
  for (const std::string& s : img.sigma_names) {
    if (!seen.count(s)) return false;
  }
  return true;
}

}  // namespace

FspImage fsp_image_of(const Fsp& f) {
  FspImage img;
  img.name = f.name();
  const auto& alphabet = *f.alphabet();
  img.action_names.reserve(alphabet.size());
  for (ActionId a = 0; a < alphabet.size(); ++a) img.action_names.push_back(alphabet.name(a));
  img.num_states = static_cast<std::uint32_t>(f.num_states());
  img.start = f.start();
  img.first_edge.reserve(f.num_states() + 1);
  img.first_edge.push_back(0);
  for (StateId s = 0; s < f.num_states(); ++s) {
    for (const Transition& t : f.out(s)) {
      img.act.push_back(t.action == kTau ? 0 : t.action + 1);
      img.tgt.push_back(t.target);
    }
    img.first_edge.push_back(static_cast<std::uint32_t>(img.act.size()));
  }
  for (ActionId a : f.sigma()) img.sigma_names.push_back(alphabet.name(a));
  return img;
}

Fsp fsp_from_image(const FspImage& img) {
  auto alphabet = std::make_shared<Alphabet>();
  for (const std::string& s : img.action_names) alphabet->intern(s);
  Fsp f(alphabet, img.name);
  for (std::uint32_t s = 0; s < img.num_states; ++s) f.add_state();
  f.set_start(img.start);
  for (std::uint32_t s = 0; s < img.num_states; ++s) {
    for (std::uint32_t k = img.first_edge[s]; k < img.first_edge[s + 1]; ++k) {
      f.add_transition(s, img.act[k] == 0 ? kTau : img.act[k] - 1, img.tgt[k]);
    }
  }
  for (const std::string& s : img.sigma_names) f.declare_action(*alphabet->find(s));
  return f;
}

bool save_daemon_cache(const DaemonCacheImage& img, const std::string& path,
                       std::string* error) {
  Writer w(Kind::kDaemonCache);

  std::string results;
  put_u32(&results, static_cast<std::uint32_t>(img.results.size()));
  for (const auto& [payload, body] : img.results) {
    put_str(&results, payload);
    put_str(&results, body);
  }
  w.add_bytes(kSecResults, results);

  std::string memo;
  put_u32(&memo, static_cast<std::uint32_t>(img.memo.size()));
  for (const auto& e : img.memo) {
    put_u32s(&memo, e.key);
    put_u32(&memo, e.num_states);
    put_u32(&memo, e.start);
    put_u32(&memo, e.num_routers);
    put_u32s(&memo, e.off);
    put_u32s(&memo, e.act_canon);
    put_u32s(&memo, e.tgt);
    put_u32s(&memo, e.parent);
    put_u32s(&memo, e.via_canon);
    put_u32s(&memo, e.owner);
  }
  w.add_bytes(kSecMemo, memo);

  std::string pool;
  put_u32(&pool, static_cast<std::uint32_t>(img.pool.size()));
  for (const FspImage& f : img.pool) {
    put_str(&pool, f.name);
    put_u32(&pool, static_cast<std::uint32_t>(f.action_names.size()));
    for (const std::string& s : f.action_names) put_str(&pool, s);
    put_u32(&pool, f.num_states);
    put_u32(&pool, f.start);
    put_u32s(&pool, f.first_edge);
    put_u32s(&pool, f.act);
    put_u32s(&pool, f.tgt);
    put_u32(&pool, static_cast<std::uint32_t>(f.sigma_names.size()));
    for (const std::string& s : f.sigma_names) put_str(&pool, s);
  }
  w.add_bytes(kSecPool, pool);

  return w.write_file(path, error);
}

std::optional<DaemonCacheImage> load_daemon_cache(const std::string& path, LoadError* err) {
  auto r = Reader::load_file(path, Kind::kDaemonCache, err);
  if (!r) return std::nullopt;
  if (!r->has(kSecResults) || !r->has(kSecMemo) || !r->has(kSecPool)) {
    return reject(err, "missing section");
  }

  DaemonCacheImage img;
  {
    Src s(r->section(kSecResults));
    const std::uint32_t count = s.get_count(kMaxItems);
    for (std::uint32_t i = 0; i < count && s.ok; ++i) {
      std::string payload = s.get_str();
      std::string body = s.get_str();
      img.results.emplace_back(std::move(payload), std::move(body));
    }
    if (!s.done()) return reject(err, "results section malformed");
  }
  {
    Src s(r->section(kSecMemo));
    const std::uint32_t count = s.get_count(kMaxItems);
    for (std::uint32_t i = 0; i < count && s.ok; ++i) {
      NormalFormMemo::ExportedEntry e;
      e.key = s.get_u32s();
      e.num_states = s.get_u32();
      e.start = s.get_u32();
      e.num_routers = s.get_u32();
      e.off = s.get_u32s();
      e.act_canon = s.get_u32s();
      e.tgt = s.get_u32s();
      e.parent = s.get_u32s();
      e.via_canon = s.get_u32s();
      e.owner = s.get_u32s();
      // Blueprint-level invariants are import_entry's contract; the decoder
      // only proves the framing.
      img.memo.push_back(std::move(e));
    }
    if (!s.done()) return reject(err, "memo section malformed");
  }
  {
    Src s(r->section(kSecPool));
    const std::uint32_t count = s.get_count(kMaxItems);
    for (std::uint32_t i = 0; i < count && s.ok; ++i) {
      FspImage f;
      f.name = s.get_str();
      const std::uint32_t names = s.get_count(kMaxItems);
      for (std::uint32_t k = 0; k < names && s.ok; ++k) {
        f.action_names.push_back(s.get_str());
      }
      f.num_states = s.get_u32();
      f.start = s.get_u32();
      f.first_edge = s.get_u32s();
      f.act = s.get_u32s();
      f.tgt = s.get_u32s();
      const std::uint32_t sigmas = s.get_count(kMaxItems);
      for (std::uint32_t k = 0; k < sigmas && s.ok; ++k) {
        f.sigma_names.push_back(s.get_str());
      }
      if (!s.ok) break;
      if (!valid_fsp_image(f)) return reject(err, "pool entry shape");
      img.pool.push_back(std::move(f));
    }
    if (!s.done()) return reject(err, "pool section malformed");
  }
  return img;
}

}  // namespace ccfsp::snapshot
