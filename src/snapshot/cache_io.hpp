// Warm-restart image for the ccfspd analysis service: the deterministic
// result LRU, the normal-form memo, and the FspAnalysisCache pool, all in
// one Kind::kDaemonCache snapshot. The image is best-effort by design — a
// daemon that fails to load it starts cold and correct, and every entry is
// re-validated on import (the container's CRCs prove the bytes survived,
// not that they are safe inputs), so a stale or hostile cache file can cost
// warmth but never correctness. Charge-equivalence of the engine caches is
// what makes a warm daemon answer bit-identically to a cold one; this file
// only moves cache temperature across a restart.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "fsp/cache.hpp"
#include "fsp/fsp.hpp"
#include "snapshot/snapshot.hpp"

namespace ccfsp::snapshot {

/// One pooled process in portable form. Action ids are alphabet-relative,
/// so the image carries the alphabet's names in interned-id order and the
/// restore re-interns them in that order — the rebuilt process reproduces
/// the pool's exact structural key. Labels and atoms are deliberately not
/// carried: pool entries are consulted only for their analysis tables
/// (exact_key_of ignores both), and the restored process re-derives
/// self-consistent defaults.
struct FspImage {
  std::string name;
  std::vector<std::string> action_names;  // alphabet, in interned id order
  std::uint32_t num_states = 0;
  std::uint32_t start = 0;
  /// Per state: first_edge[s] .. first_edge[s+1] indexes into act/tgt.
  std::vector<std::uint32_t> first_edge;  // CSR, num_states + 1 entries
  std::vector<std::uint32_t> act;         // 0 = tau, else action id + 1
  std::vector<std::uint32_t> tgt;
  std::vector<std::string> sigma_names;   // declared Sigma, by name
};

/// Everything drain() persists. All three lists are most-recently-used
/// first, so a restore that re-admits in reverse ends with the same LRU
/// order the old process had.
struct DaemonCacheImage {
  std::vector<std::pair<std::string, std::string>> results;  // payload, body
  std::vector<NormalFormMemo::ExportedEntry> memo;
  std::vector<FspImage> pool;
};

/// Snapshot a process into portable form.
FspImage fsp_image_of(const Fsp& f);

/// Rebuild a process from a *validated* image (load_daemon_cache proves the
/// shape; passing an unvalidated image is a programming error).
Fsp fsp_from_image(const FspImage& img);

bool save_daemon_cache(const DaemonCacheImage& img, const std::string& path,
                       std::string* error = nullptr);

/// Load and structurally validate a cache image: every count, offset,
/// action id, and target is bounds-checked before the image is returned.
/// Memo entries still pass through NormalFormMemo::import_entry (which owns
/// the blueprint-level invariants). Failure is a structured cold start.
std::optional<DaemonCacheImage> load_daemon_cache(const std::string& path,
                                                  LoadError* err = nullptr);

}  // namespace ccfsp::snapshot
