// Wires snapshot persistence into the decider ladder: a factory producing
// the AnalyzeOptions::global_source hook that (in priority order) loads a
// saved machine, resumes a checkpointed build, runs a fresh build with
// periodic durable checkpoints, and/or saves the finished machine. All
// charge-equivalent to a plain build_global — decisions, budget walls, and
// non-execution-shape counters match a fresh run bit for bit.
#pragma once

#include <functional>
#include <string>

#include "success/analyze.hpp"

namespace ccfsp::snapshot {

struct GlobalPersistOptions {
  /// Try to load the machine from this snapshot before building
  /// (--load-global). A failed load degrades to whatever the remaining
  /// options say — never an error.
  std::string load_path;
  /// Save the machine here after a successful build or load (--save-global).
  std::string save_path;
  /// Persist periodic build checkpoints here (--checkpoint). Forces the
  /// sequential build path (checkpoints are state-boundary images of the
  /// sequential BFS); the machine is unchanged — sequential and parallel
  /// builds are bit-identical by contract. Deleted after a completed build.
  std::string checkpoint_path;
  /// Resume from checkpoint_path if a validating checkpoint exists there
  /// (--resume). In-process retry escalations resume from the newest
  /// checkpoint too — a budget-doubled retry keeps the states it paid for.
  bool resume = false;
  /// Checkpoint every this many expanded states.
  std::size_t checkpoint_interval = 1 << 15;
  /// Where degradation notes go ("checkpoint load failed: torn write, cold
  /// build instead"); null = silent. The CLI points this at stderr.
  std::function<void(const std::string&)> note;
};

/// Build the explicit-rung hook. The returned callable is stateless across
/// invocations except through the filesystem, so ladder retries compose:
/// every call re-probes load_path/checkpoint_path afresh.
AnalyzeOptions::GlobalSource make_global_source(const GlobalPersistOptions& opt);

}  // namespace ccfsp::snapshot
