// Wire framing for the ccfspd analysis service: every message (request or
// reply) is a 4-byte big-endian payload length followed by that many bytes.
// The parser is incremental — feed() whatever the socket produced, then
// drain complete frames with next() — and enforces a declared-length cap
// *before* buffering a payload, so a hostile 4-byte header cannot make the
// server allocate gigabytes. Anything 4 bytes long is a syntactically valid
// header; the only framing-level error is therefore kOversize. A frame that
// never completes (truncated stream) simply stays kNeedMore — the
// connection's read watchdog, not the parser, decides when to give up.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace ccfsp::server {

/// Prepend the 4-byte big-endian length header to `payload`.
std::string encode_frame(std::string_view payload);

class FrameParser {
 public:
  enum class Status { kNeedMore, kFrame, kOversize };

  explicit FrameParser(std::size_t max_frame_bytes) : max_frame_bytes_(max_frame_bytes) {}

  void feed(const char* data, std::size_t n) { buffer_.append(data, n); }

  /// Extract the next complete frame into `payload`. kOversize is sticky
  /// for the offending frame: the caller is expected to reply with an
  /// error frame and close, because the stream position past a refused
  /// payload is unknowable without buffering it.
  Status next(std::string& payload);

  /// The length the current (incomplete or oversize) header declared.
  std::size_t declared() const { return declared_; }
  std::size_t buffered() const { return buffer_.size(); }
  /// True while partial frame bytes are buffered awaiting the rest.
  bool mid_frame() const { return !buffer_.empty(); }

  /// Drop all buffered bytes and any sticky oversize state (new stream).
  void reset() {
    buffer_.clear();
    declared_ = 0;
  }

 private:
  std::size_t max_frame_bytes_;
  std::size_t declared_ = 0;
  std::string buffer_;
};

}  // namespace ccfsp::server
