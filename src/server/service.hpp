// The fault-contained analysis engine behind ccfspd: a fixed worker pool
// fed by a bounded admission queue, every request executed under its own
// Budget with full exception containment. Overload policy is shed, not
// queue-forever: a full queue turns the request into an immediate
// kOverloaded reply with a retry_after_ms hint, so clients see latency
// bounded by the queue they were admitted to. A supervisor thread watches
// for wedged workers (a request still running past its deadline plus
// grace): first it fires the request's cancel token (cooperative), and if
// the worker still does not come back it delivers a kWedged reply on the
// request's behalf, bumps the worker's generation, and spawns a
// replacement — the stuck thread's eventual reply loses the exactly-once
// race and is discarded. Graceful drain stops admission, cancels every
// in-flight budget, flushes replies, and joins everything (including
// replaced workers, whose stalls are released first).
//
// Identical concurrent requests are single-flighted: one leader computes,
// followers wait, and — when the leader's reply is deterministic (no
// deadline- or cancellation-tripped rung) — share its bytes. A bounded
// result LRU keeps those deterministic reply bodies across requests;
// charge-equivalence of the engine caches (fsp/cache.hpp) is what makes a
// cached body byte-identical to a fresh run's.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "fsp/cache.hpp"
#include "server/protocol.hpp"
#include "util/budget.hpp"

namespace ccfsp::server {

struct ServiceConfig {
  unsigned workers = 4;
  std::size_t queue_capacity = 64;
  /// Per-request wall-clock ceiling: a request may ask for less via
  /// --timeout-ms but never more.
  std::uint64_t default_timeout_ms = 2000;
  std::uint64_t max_timeout_ms = 30000;
  /// Per-rung state cap; a request's --max-states is clamped to this.
  std::size_t max_states = std::size_t{1} << 22;
  unsigned default_retries = 1;
  /// Supervisor escalation: cancel at deadline + grace, declare the worker
  /// wedged and replace it at deadline + 2 * grace.
  std::uint64_t wedge_grace_ms = 500;
  std::uint64_t supervisor_poll_ms = 20;
  std::size_t result_cache_max_bytes = 8u << 20;
  SharedCacheRegistry::Config engine_caches;
  /// When non-empty, drain() persists the result LRU and the engine caches
  /// to a checksummed snapshot under this directory and start() reloads
  /// whatever validates (--cache-dir). A missing, torn, or corrupt image
  /// costs warmth, never correctness: every entry is re-validated on import
  /// and any failure is a structured cold start.
  std::string cache_dir;
};

struct ServiceStats {
  std::uint64_t accepted = 0;
  std::uint64_t shed = 0;
  std::uint64_t rejected_draining = 0;
  std::uint64_t completed = 0;
  std::uint64_t wedged = 0;
  std::uint64_t cancelled_by_supervisor = 0;
  std::uint64_t workers_replaced = 0;
  std::uint64_t result_cache_hits = 0;
  std::uint64_t single_flight_joins = 0;
  std::size_t queue_depth = 0;
  std::size_t result_cache_bytes = 0;
  std::uint64_t result_cache_evictions = 0;
  std::size_t engine_memo_bytes = 0;
  std::size_t engine_fsp_cache_bytes = 0;
  std::uint64_t engine_cache_evictions = 0;
  /// Milliseconds since start(); 0 before the service started.
  std::uint64_t uptime_ms = 0;
  /// 1 when start() restored at least one entry from the cache snapshot.
  std::uint64_t warm_start = 0;
  std::uint64_t warm_restored_results = 0;
  std::uint64_t warm_restored_memo = 0;
  std::uint64_t warm_restored_pool = 0;
  /// Service-local snapshot ops (the global metrics registry is only armed
  /// per-request; these count the daemon's own cache persistence).
  std::uint64_t snapshot_saves = 0;
  std::uint64_t snapshot_save_failures = 0;
  std::uint64_t snapshot_loads = 0;
  std::uint64_t snapshot_cold_starts = 0;
};

class AnalysisService {
 public:
  /// Delivered exactly once per submitted request with the reply *body*
  /// (a {"code": ...} object; the transport adds the envelope). May be
  /// invoked from a worker, the supervisor, or submit() itself (shed /
  /// drain rejections) — never twice.
  using ReplyFn = std::function<void(std::string body)>;

  explicit AnalysisService(ServiceConfig cfg);
  ~AnalysisService();

  /// Spawn the worker pool and supervisor and install the shared engine
  /// caches. Call once, before the first submit().
  void start();

  /// Admit one ANALYZE payload. Shedding, drain rejection, and enqueue
  /// faults all still reply (with kOverloaded / kShuttingDown / kInternal).
  void submit(std::string payload, ReplyFn reply);

  /// Stop admission, cancel in-flight requests, flush replies, join all
  /// threads (bounded by `deadline` per joinable stage). Idempotent.
  void drain(std::chrono::milliseconds deadline = std::chrono::milliseconds(10000));

  bool draining() const;
  ServiceStats stats() const;
  /// The stats snapshot as a JSON object (for the STATS command).
  std::string stats_json() const;

 private:
  struct Pending {
    std::string payload;
    ReplyFn reply;
    std::atomic<bool> replied{false};

    /// Exactly-once delivery; the losing caller's body is dropped.
    bool deliver(const std::string& body) {
      if (replied.exchange(true)) return false;
      reply(body);
      return true;
    }
  };
  using PendingPtr = std::shared_ptr<Pending>;

  struct WorkerSlot {
    std::thread thread;
    std::uint64_t generation = 0;
    // Supervisor-visible view of the in-flight request (guarded by mu_).
    bool busy = false;
    std::chrono::steady_clock::time_point started{};
    std::chrono::milliseconds deadline{0};
    bool cancel_fired = false;
    CancelToken token;
    PendingPtr current;
  };

  struct FlightEntry {
    std::vector<PendingPtr> waiters;
  };

  struct ExecResult {
    std::string body;
    /// True when the body cannot depend on timing or injected faults: safe
    /// to cache and to hand to single-flight followers.
    bool cacheable = false;
  };

  void worker_loop(std::size_t slot, std::uint64_t generation);
  void supervisor_loop();
  /// Warm restart halves (no-ops without cfg_.cache_dir). Caller holds mu_.
  void load_cache_image_locked();
  void save_cache_image_locked();
  /// Run one request end to end; returns the reply body. Never throws.
  ExecResult execute(const std::string& payload, const CancelToken& token);
  /// True when `body` came from a run whose outcome cannot depend on
  /// timing: safe to cache and to hand to single-flight followers.
  static bool deterministic_body(const AnalysisReport& report);

  std::string result_cache_find(const std::string& payload);
  void result_cache_store(const std::string& payload, const std::string& body);

  ServiceConfig cfg_;
  SharedCacheRegistry registry_;

  mutable std::mutex mu_;
  std::condition_variable queue_cv_;
  std::condition_variable idle_cv_;
  std::deque<PendingPtr> queue_;
  std::vector<std::unique_ptr<WorkerSlot>> slots_;
  std::vector<std::thread> zombies_;  // replaced worker threads, joined at drain
  std::unordered_map<std::string, FlightEntry> in_flight_;
  bool started_ = false;
  bool draining_ = false;
  bool drained_ = false;
  bool supervisor_stop_ = false;
  std::thread supervisor_;

  // Result cache: payload -> deterministic reply body, LRU by payload.
  struct CacheEntry {
    std::string payload;
    std::string body;
  };
  std::list<CacheEntry> cache_lru_;  // front = most recently used
  std::unordered_map<std::string, std::list<CacheEntry>::iterator> cache_index_;
  std::size_t cache_bytes_ = 0;

  std::chrono::steady_clock::time_point started_at_{};

  ServiceStats stats_;
};

}  // namespace ccfsp::server
