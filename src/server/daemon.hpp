// The socket face of ccfspd: a listener on 127.0.0.1 (port 0 = ephemeral,
// reported by port()), one accept thread, and one thread per connection
// speaking the length-prefixed framing of server/frame.hpp. Connection
// hygiene is the daemon's job, not the service's:
//
//   - a read watchdog closes connections idle (or stuck mid-frame) longer
//     than read_timeout_ms with no outstanding requests;
//   - a slow-client write budget: the cumulative time a reply write spends
//     blocked on POLLOUT may not exceed write_timeout_ms, after which the
//     connection is condemned — a client that stops reading cannot pin a
//     worker's reply path;
//   - an oversize frame declaration gets a kOversize error frame and the
//     connection is closed (the stream position past a refused payload is
//     unknowable);
//   - pipelined requests are all admitted; replies carry the request's seq
//     and may complete out of order.
//
// drain() stops accepting, lets the service flush its in-flight replies,
// then wakes and joins every connection thread. PING and STATS are answered
// inline on the connection thread (no admission queue) so liveness probes
// work even under full overload.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "server/service.hpp"

namespace ccfsp::server {

struct DaemonConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  // 0 = pick an ephemeral port
  std::size_t max_frame_bytes = 1u << 20;
  std::uint64_t read_timeout_ms = 5000;
  std::uint64_t write_timeout_ms = 2000;
};

class Daemon {
 public:
  Daemon(DaemonConfig cfg, AnalysisService& service);
  ~Daemon();

  /// Bind, listen, and spawn the accept thread. False (with *error set) on
  /// any socket failure.
  bool start(std::string* error);

  /// The bound port (after start()).
  std::uint16_t port() const { return port_; }

  /// Stop accepting, flush in-flight replies (drains the service), wake
  /// and join every connection. Idempotent.
  void drain();

  std::uint64_t connections_accepted() const {
    return connections_accepted_.load(std::memory_order_relaxed);
  }
  std::uint64_t connections_condemned() const {
    return connections_condemned_.load(std::memory_order_relaxed);
  }

 private:
  struct Connection;

  void accept_loop();
  void connection_loop(std::shared_ptr<Connection> conn);
  /// Frame-and-send one reply on conn under its write budget; condemns the
  /// connection on a blown budget or a dead peer.
  void send_reply(const std::shared_ptr<Connection>& conn, const std::string& payload);

  DaemonConfig cfg_;
  AnalysisService& service_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  bool drained_ = false;
  std::thread accept_thread_;
  std::atomic<std::uint64_t> connections_accepted_{0};
  std::atomic<std::uint64_t> connections_condemned_{0};

  std::mutex conns_mu_;
  std::list<std::shared_ptr<Connection>> conns_;
};

}  // namespace ccfsp::server
