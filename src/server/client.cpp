#include "server/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "server/frame.hpp"
#include "util/io.hpp"

namespace ccfsp::server {

bool BlockingClient::connect(const std::string& host, std::uint16_t port, std::string* error) {
  close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    if (error) *error = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    if (error) *error = "bad host '" + host + "'";
    close();
    return false;
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    if (error) *error = std::string("connect: ") + std::strerror(errno);
    close();
    return false;
  }
  int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  parser_.reset();  // a fresh stream: drop any residue from a prior peer
  return true;
}

bool BlockingClient::send_frame(std::string_view payload) {
  return send_raw(encode_frame(payload));
}

bool BlockingClient::send_raw(std::string_view bytes) {
  if (fd_ < 0) return false;
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const long n = ioutil::send_retry(fd_, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n < 0) return false;
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

bool BlockingClient::recv_frame(std::string& payload, std::uint64_t timeout_ms) {
  if (fd_ < 0) return false;
  char buf[16384];
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  for (;;) {
    switch (parser_.next(payload)) {
      case FrameParser::Status::kFrame: return true;
      case FrameParser::Status::kOversize: return false;
      case FrameParser::Status::kNeedMore: break;
    }
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) return false;
    const auto left =
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now).count();
    pollfd pfd{fd_, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, static_cast<int>(left));
    if (rc < 0 && errno == EINTR) continue;
    if (rc <= 0) return false;
    const long n = ioutil::read_retry(fd_, buf, sizeof(buf));
    if (n <= 0) return false;
    parser_.feed(buf, static_cast<std::size_t>(n));
  }
}

void BlockingClient::shutdown_write() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

void BlockingClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace ccfsp::server
