#include "server/daemon.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstring>

#include "server/frame.hpp"
#include "util/failpoint.hpp"
#include "util/io.hpp"

namespace ccfsp::server {

struct Daemon::Connection {
  int fd = -1;
  std::thread thread;
  std::atomic<bool> stop{false};

  // Write side: replies arrive from worker threads; one at a time on the
  // wire, and none after the connection is condemned.
  std::mutex write_mu;
  bool open = true;

  // The read loop may only close the fd once every admitted request has
  // replied (or been condemned); outstanding tracks that.
  std::mutex state_mu;
  std::condition_variable state_cv;
  std::size_t outstanding = 0;
  std::uint64_t next_seq = 0;
};

Daemon::Daemon(DaemonConfig cfg, AnalysisService& service)
    : cfg_(std::move(cfg)), service_(service) {}

Daemon::~Daemon() { drain(); }

bool Daemon::start(std::string* error) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    if (error) *error = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(cfg_.port);
  if (::inet_pton(AF_INET, cfg_.host.c_str(), &addr.sin_addr) != 1) {
    if (error) *error = "bad host '" + cfg_.host + "'";
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    if (error) *error = std::string("bind: ") + std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  if (::listen(listen_fd_, 64) != 0) {
    if (error) *error = std::string("listen: ") + std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
    port_ = ntohs(addr.sin_port);
  }
  accept_thread_ = std::thread([this] { accept_loop(); });
  return true;
}

void Daemon::accept_loop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, 100);
    if (rc <= 0) continue;
    const int fd = ioutil::accept_retry(listen_fd_);
    if (fd < 0) continue;
    try {
      failpoint::hit("server.accept");
    } catch (...) {
      // An injected accept fault drops this one connection; the listener
      // survives and the client sees a clean close.
      ::close(fd);
      continue;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    // Non-blocking: reads are gated by poll anyway, and the write path
    // *needs* EAGAIN to meter its slow-client budget.
    ::fcntl(fd, F_SETFL, ::fcntl(fd, F_GETFL, 0) | O_NONBLOCK);
    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      if (stopping_.load(std::memory_order_relaxed)) {
        ::close(fd);
        continue;
      }
      conns_.push_back(conn);
    }
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    conn->thread = std::thread([this, conn] { connection_loop(conn); });
  }
}

void Daemon::send_reply(const std::shared_ptr<Connection>& conn, const std::string& payload) {
  const std::string frame = encode_frame(payload);
  std::lock_guard<std::mutex> lock(conn->write_mu);
  if (!conn->open) return;
  std::size_t sent = 0;
  std::uint64_t blocked_ms = 0;
  while (sent < frame.size()) {
    const long n =
        ioutil::send_retry(conn->fd, frame.data() + sent, frame.size() - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // The slow-client write budget: wait for writability in slices and
      // cap the *cumulative* blocked time, so a reader that stalls forever
      // costs a bounded amount of a worker's (or supervisor's) time.
      if (blocked_ms >= cfg_.write_timeout_ms) {
        conn->open = false;
        connections_condemned_.fetch_add(1, std::memory_order_relaxed);
        ::shutdown(conn->fd, SHUT_RDWR);
        return;
      }
      pollfd pfd{conn->fd, POLLOUT, 0};
      const std::uint64_t slice = std::min<std::uint64_t>(50, cfg_.write_timeout_ms - blocked_ms);
      ::poll(&pfd, 1, static_cast<int>(slice));
      blocked_ms += slice;
      continue;
    }
    // Peer reset / dead socket: condemn quietly.
    conn->open = false;
    connections_condemned_.fetch_add(1, std::memory_order_relaxed);
    ::shutdown(conn->fd, SHUT_RDWR);
    return;
  }
}

void Daemon::connection_loop(std::shared_ptr<Connection> conn) {
  FrameParser parser(cfg_.max_frame_bytes);
  char buf[16384];
  bool eof = false;
  bool condemned = false;
  auto last_activity = std::chrono::steady_clock::now();

  while (!eof && !condemned && !conn->stop.load(std::memory_order_relaxed)) {
    pollfd pfd{conn->fd, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, 100);
    const auto now = std::chrono::steady_clock::now();
    if (rc <= 0 || !(pfd.revents & (POLLIN | POLLHUP | POLLERR))) {
      // Read watchdog: an idle or mid-frame-stuck connection with nothing
      // outstanding is closed; one with outstanding requests is left to the
      // reply path (its requests will flush or condemn it).
      std::size_t outstanding;
      {
        std::lock_guard<std::mutex> lock(conn->state_mu);
        outstanding = conn->outstanding;
      }
      if (outstanding == 0 &&
          now - last_activity > std::chrono::milliseconds(cfg_.read_timeout_ms)) {
        break;
      }
      continue;
    }
    const long n = ioutil::read_retry(conn->fd, buf, sizeof(buf));
    if (n == 0) {
      eof = true;
      break;
    }
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) continue;
      condemned = true;
      break;
    }
    last_activity = now;
    parser.feed(buf, static_cast<std::size_t>(n));

    std::string payload;
    for (;;) {
      const FrameParser::Status st = parser.next(payload);
      if (st == FrameParser::Status::kNeedMore) break;
      std::uint64_t seq;
      {
        std::lock_guard<std::mutex> lock(conn->state_mu);
        seq = conn->next_seq++;
      }
      if (st == FrameParser::Status::kOversize) {
        send_reply(conn, wrap_reply(seq, error_body(ReplyCode::kOversize,
                                                    "declared frame length " +
                                                        std::to_string(parser.declared()) +
                                                        " exceeds the limit")));
        condemned = true;
        break;
      }
      bool frame_fault = false;
      try {
        failpoint::hit("server.frame_read");
      } catch (...) {
        frame_fault = true;
      }
      if (frame_fault) {
        send_reply(conn, wrap_reply(seq, error_body(ReplyCode::kInternal,
                                                    "injected frame-read fault contained")));
        continue;
      }
      // PING / STATS answer inline — liveness probes and stats must work
      // even when the admission queue is rejecting everything.
      ParsedRequest peeked = parse_request(payload);
      if (peeked.command == Command::kPing) {
        send_reply(conn, wrap_reply(seq, pong_body()));
        continue;
      }
      if (peeked.command == Command::kStats) {
        send_reply(conn, wrap_reply(seq, stats_body(service_.stats_json())));
        continue;
      }
      if (peeked.command == Command::kInvalid) {
        send_reply(conn, wrap_reply(seq, error_body(ReplyCode::kInvalidRequest, peeked.error)));
        continue;
      }
      {
        std::lock_guard<std::mutex> lock(conn->state_mu);
        ++conn->outstanding;
      }
      Daemon* self = this;
      service_.submit(std::move(payload), [self, conn, seq](std::string body) {
        self->send_reply(conn, wrap_reply(seq, body));
        {
          std::lock_guard<std::mutex> lock(conn->state_mu);
          --conn->outstanding;
        }
        conn->state_cv.notify_all();
      });
    }
  }

  // Flush: wait until every admitted request on this connection has
  // replied. The service's own drain/cancel machinery bounds this.
  {
    std::unique_lock<std::mutex> lock(conn->state_mu);
    conn->state_cv.wait(lock, [&] { return conn->outstanding == 0; });
  }
  {
    std::lock_guard<std::mutex> lock(conn->write_mu);
    conn->open = false;
    ::close(conn->fd);
    conn->fd = -1;
  }
}

void Daemon::drain() {
  if (drained_) return;
  stopping_.store(true, std::memory_order_relaxed);
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  // Wake every connection's read loop; EOF-draining connections stop
  // admitting and wait for their outstanding replies.
  std::list<std::shared_ptr<Connection>> conns;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns = conns_;
  }
  for (auto& c : conns) {
    c->stop.store(true, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(c->write_mu);
    if (c->open) ::shutdown(c->fd, SHUT_RD);
  }
  // Cancel in-flight analyses and flush their replies.
  service_.drain();
  for (auto& c : conns) {
    if (c->thread.joinable()) c->thread.join();
  }
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns_.clear();
  }
  drained_ = true;
}

}  // namespace ccfsp::server
