#include "server/protocol.hpp"

#include <cerrno>
#include <cstdlib>

#include "util/trace.hpp"

namespace ccfsp::server {

const char* to_string(ReplyCode code) {
  switch (code) {
    case ReplyCode::kOk: return "ok";
    case ReplyCode::kDecided: return "decided";
    case ReplyCode::kBudgetExhausted: return "budget-exhausted";
    case ReplyCode::kUnsupported: return "unsupported";
    case ReplyCode::kInvalidInput: return "invalid-input";
    case ReplyCode::kInvalidRequest: return "invalid-request";
    case ReplyCode::kOverloaded: return "overloaded";
    case ReplyCode::kShuttingDown: return "shutting-down";
    case ReplyCode::kWedged: return "wedged";
    case ReplyCode::kOversize: return "oversize";
    case ReplyCode::kInternal: return "internal";
  }
  return "?";
}

std::optional<ReplyCode> reply_code_from_string(const std::string& name) {
  for (int i = 0; i <= static_cast<int>(ReplyCode::kInternal); ++i) {
    ReplyCode c = static_cast<ReplyCode>(i);
    if (name == to_string(c)) return c;
  }
  return std::nullopt;
}

ReplyCode code_of(OutcomeStatus status) {
  switch (status) {
    case OutcomeStatus::kDecided: return ReplyCode::kDecided;
    case OutcomeStatus::kBudgetExhausted: return ReplyCode::kBudgetExhausted;
    case OutcomeStatus::kUnsupported: return ReplyCode::kUnsupported;
    case OutcomeStatus::kInvalidInput: return ReplyCode::kInvalidInput;
  }
  return ReplyCode::kInternal;
}

namespace {

bool parse_u64(const std::string& s, std::uint64_t& out) {
  if (s.empty()) return false;
  std::uint64_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    if (v > (UINT64_MAX - static_cast<std::uint64_t>(c - '0')) / 10) return false;
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  out = v;
  return true;
}

std::vector<std::string> split_tokens(const std::string& line) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : line) {
    if (c == ' ' || c == '\t' || c == '\r') {
      if (!cur.empty()) out.push_back(std::move(cur));
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (!cur.empty()) out.push_back(std::move(cur));
  return out;
}

ParsedRequest invalid(std::string why) {
  ParsedRequest p;
  p.command = Command::kInvalid;
  p.error = std::move(why);
  return p;
}

}  // namespace

ParsedRequest parse_request(const std::string& payload) {
  if (payload.empty()) return invalid("empty request payload");
  const std::size_t nl = payload.find('\n');
  const std::string first = payload.substr(0, nl == std::string::npos ? payload.size() : nl);
  std::vector<std::string> tokens = split_tokens(first);
  if (tokens.empty()) return invalid("blank command line");

  ParsedRequest p;
  if (tokens[0] == "PING") {
    p.command = Command::kPing;  // any padding tokens are ignored
    return p;
  }
  if (tokens[0] == "STATS") {
    if (tokens.size() > 1) return invalid("STATS takes no arguments");
    p.command = Command::kStats;
    return p;
  }
  if (tokens[0] != "ANALYZE") {
    return invalid("unknown command '" + tokens[0] + "'");
  }

  p.command = Command::kAnalyze;
  AnalyzeRequest& a = p.analyze;
  for (std::size_t i = 1; i < tokens.size(); ++i) {
    const std::string& t = tokens[i];
    auto next_value = [&](std::uint64_t& out) -> bool {
      return i + 1 < tokens.size() && parse_u64(tokens[++i], out);
    };
    if (t == "--timeout-ms") {
      if (!next_value(a.timeout_ms)) return invalid("--timeout-ms needs a number");
    } else if (t == "--max-states") {
      std::uint64_t v = 0;
      if (!next_value(v)) return invalid("--max-states needs a number");
      a.max_states = static_cast<std::size_t>(v);
    } else if (t == "--retries") {
      std::uint64_t v = 0;
      if (!next_value(v) || v > 16) return invalid("--retries needs a number <= 16");
      a.retries = static_cast<unsigned>(v);
      a.retries_set = true;
    } else if (t == "--rungs") {
      if (i + 1 >= tokens.size()) return invalid("--rungs needs a list");
      std::string csv = tokens[++i], cur;
      csv += ',';
      for (char c : csv) {
        if (c != ',') {
          cur += c;
          continue;
        }
        if (cur.empty()) continue;
        std::optional<Rung> r = rung_from_string(cur);
        if (!r) return invalid("unknown rung '" + cur + "'");
        a.rungs.push_back(*r);
        cur.clear();
      }
      if (a.rungs.empty()) return invalid("--rungs needs a non-empty list");
    } else if (t == "--distinguished") {
      if (i + 1 >= tokens.size()) return invalid("--distinguished needs a name");
      a.distinguished = tokens[++i];
    } else {
      return invalid("unknown ANALYZE flag '" + t + "'");
    }
  }
  if (nl == std::string::npos || nl + 1 >= payload.size()) {
    return invalid("ANALYZE needs model text after the command line");
  }
  a.model_text = payload.substr(nl + 1);
  return p;
}

std::string error_body(ReplyCode code, const std::string& message) {
  std::string out = "{\"code\": \"";
  out += to_string(code);
  out += "\", \"error\": \"" + metrics::json_escape(message) + "\"}";
  return out;
}

std::string overloaded_body(std::uint64_t retry_after_ms, const std::string& message) {
  std::string out = "{\"code\": \"";
  out += to_string(ReplyCode::kOverloaded);
  out += "\", \"retry_after_ms\": " + std::to_string(retry_after_ms);
  out += ", \"error\": \"" + metrics::json_escape(message) + "\"}";
  return out;
}

std::string report_body(const AnalysisReport& report) {
  std::string out = "{\"code\": \"";
  out += to_string(code_of(report.status));
  out += "\", \"report\": " + analysis_report_json(report) + "}";
  return out;
}

std::string pong_body() {
  std::string out = "{\"code\": \"";
  out += to_string(ReplyCode::kOk);
  out += "\", \"pong\": true}";
  return out;
}

std::string stats_body(const std::string& stats_json_object) {
  std::string out = "{\"code\": \"";
  out += to_string(ReplyCode::kOk);
  out += "\", \"stats\": " + stats_json_object + "}";
  return out;
}

std::string wrap_reply(std::uint64_t seq, const std::string& body) {
  // Bodies are complete objects beginning '{'; splice the envelope fields
  // ahead of the body's first key.
  std::string out = "{\"schema_version\": 1, \"seq\": " + std::to_string(seq) + ", ";
  out += body.substr(1);
  return out;
}

}  // namespace ccfsp::server
