#include "server/frame.hpp"

namespace ccfsp::server {

std::string encode_frame(std::string_view payload) {
  const std::uint32_t n = static_cast<std::uint32_t>(payload.size());
  std::string out;
  out.reserve(4 + payload.size());
  out.push_back(static_cast<char>((n >> 24) & 0xff));
  out.push_back(static_cast<char>((n >> 16) & 0xff));
  out.push_back(static_cast<char>((n >> 8) & 0xff));
  out.push_back(static_cast<char>(n & 0xff));
  out.append(payload);
  return out;
}

FrameParser::Status FrameParser::next(std::string& payload) {
  if (buffer_.size() < 4) return Status::kNeedMore;
  const unsigned char* b = reinterpret_cast<const unsigned char*>(buffer_.data());
  declared_ = (static_cast<std::size_t>(b[0]) << 24) | (static_cast<std::size_t>(b[1]) << 16) |
              (static_cast<std::size_t>(b[2]) << 8) | static_cast<std::size_t>(b[3]);
  if (declared_ > max_frame_bytes_) return Status::kOversize;
  if (buffer_.size() < 4 + declared_) return Status::kNeedMore;
  payload.assign(buffer_, 4, declared_);
  buffer_.erase(0, 4 + declared_);
  return Status::kFrame;
}

}  // namespace ccfsp::server
