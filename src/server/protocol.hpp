// The ccfspd request/reply protocol, one layer above the length-prefixed
// framing (server/frame.hpp). A request payload is UTF-8 text whose first
// line is the command —
//
//   ANALYZE [--timeout-ms N] [--max-states N] [--retries N]
//           [--rungs a,b,...] [--distinguished NAME]
//   PING [padding]
//   STATS
//
// — and, for ANALYZE, everything after the first newline is the model text
// in the ccfsp DSL. A reply payload is one JSON object:
//
//   {"schema_version": 1, "seq": N, "code": "<code>", ...}
//
// where seq is the request's 0-based index on its connection (replies to
// pipelined requests may arrive out of order; seq is the correlator) and
// code is the reply taxonomy below. ANALYZE successes carry "report" (the
// exact analysis_report_json schema of the observability document); errors
// carry "error"; overloaded sheds carry "retry_after_ms"; PING carries
// "pong"; STATS carries "stats". Every request gets exactly one reply with
// exactly one code — the chaos harness holds the server to that.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "success/analyze.hpp"

namespace ccfsp::server {

/// Everything a reply can mean. The first five mirror the analysis outcome
/// taxonomy; the rest are service-level conditions.
enum class ReplyCode {
  kOk,              // PING / STATS succeeded
  kDecided,         // analysis completed with a full verdict
  kBudgetExhausted, // a budget wall (or injected fault read as one) tripped
  kUnsupported,     // every applicable rung was structurally inapplicable
  kInvalidInput,    // the model text failed to parse / validate
  kInvalidRequest,  // unknown command, bad flag, missing model text
  kOverloaded,      // admission queue full — shed, retry after the hint
  kShuttingDown,    // the service is draining; no new work accepted
  kWedged,          // the worker was declared wedged and replaced
  kOversize,        // declared frame length exceeds the server's cap
  kInternal,        // contained unexpected exception; worker survived
};

const char* to_string(ReplyCode code);
std::optional<ReplyCode> reply_code_from_string(const std::string& name);

/// ReplyCode view of an analysis outcome.
ReplyCode code_of(OutcomeStatus status);

enum class Command { kAnalyze, kPing, kStats, kInvalid };

struct AnalyzeRequest {
  std::uint64_t timeout_ms = 0;  // 0 = service default
  std::size_t max_states = 0;    // 0 = service default
  unsigned retries = 0;
  bool retries_set = false;      // absent flag falls back to the service default
  std::vector<Rung> rungs;
  std::string distinguished;     // empty = first process
  std::string model_text;
};

struct ParsedRequest {
  Command command = Command::kInvalid;
  AnalyzeRequest analyze;
  std::string error;  // set when command == kInvalid
};

ParsedRequest parse_request(const std::string& payload);

/// Reply bodies: complete JSON objects starting {"code": ...}. The daemon
/// splices the envelope in with wrap_reply.
std::string error_body(ReplyCode code, const std::string& message);
std::string overloaded_body(std::uint64_t retry_after_ms, const std::string& message);
std::string report_body(const AnalysisReport& report);
std::string pong_body();
std::string stats_body(const std::string& stats_json_object);

/// {"schema_version": 1, "seq": N, <body without its opening brace>.
std::string wrap_reply(std::uint64_t seq, const std::string& body);

}  // namespace ccfsp::server
