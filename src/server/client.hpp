// A minimal blocking client for ccfspd, used by the test suite, the chaos
// harness, and the daemon benchmark. Deliberately low-level: send_raw()
// exists precisely so tests can write poisoned bytes (bad length prefixes,
// truncated frames) that the well-behaved framing API would never produce.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "server/frame.hpp"

namespace ccfsp::server {

class BlockingClient {
 public:
  BlockingClient() = default;
  ~BlockingClient() { close(); }
  BlockingClient(const BlockingClient&) = delete;
  BlockingClient& operator=(const BlockingClient&) = delete;
  BlockingClient(BlockingClient&& other) noexcept
      : fd_(other.fd_), parser_(std::move(other.parser_)) {
    other.fd_ = -1;
  }

  bool connect(const std::string& host, std::uint16_t port, std::string* error = nullptr);
  bool connected() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Length-prefix and send one request payload.
  bool send_frame(std::string_view payload);
  /// Send bytes verbatim — the poisoned-frame backdoor.
  bool send_raw(std::string_view bytes);
  /// Receive one complete reply frame; false on timeout, EOF, oversize
  /// declaration, or socket error.
  bool recv_frame(std::string& payload, std::uint64_t timeout_ms = 5000);
  /// Half-close the write side (tells the server we are done sending).
  void shutdown_write();
  void close();

 private:
  int fd_ = -1;
  // Persists across recv_frame() calls: pipelined replies often arrive in
  // one TCP segment, and bytes past the first frame must not be dropped.
  // A reply frame is at most a few hundred KB; 16 MB declared is a protocol
  // violation from the peer, not something to buffer.
  FrameParser parser_{16u << 20};
};

}  // namespace ccfsp::server
