#include "server/service.hpp"

#include <sys/stat.h>

#include <algorithm>
#include <new>
#include <stdexcept>

#include "fsp/parse.hpp"
#include "network/network.hpp"
#include "snapshot/cache_io.hpp"
#include "util/failpoint.hpp"

namespace ccfsp::server {

namespace {

/// One reply body every rejection path shares; computed once.
std::string shutting_down_body() {
  return error_body(ReplyCode::kShuttingDown, "service is draining; retry against a fresh instance");
}

std::string cache_image_path(const std::string& dir) { return dir + "/daemon_cache.snap"; }

}  // namespace

AnalysisService::AnalysisService(ServiceConfig cfg)
    : cfg_(std::move(cfg)), registry_(cfg_.engine_caches) {
  if (cfg_.workers == 0) cfg_.workers = 1;
  if (cfg_.queue_capacity == 0) cfg_.queue_capacity = 1;
}

AnalysisService::~AnalysisService() { drain(); }

void AnalysisService::start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (started_) return;
  started_ = true;
  started_at_ = std::chrono::steady_clock::now();
  SharedCacheRegistry::install(&registry_);
  load_cache_image_locked();
  slots_.reserve(cfg_.workers);
  for (unsigned i = 0; i < cfg_.workers; ++i) {
    auto slot = std::make_unique<WorkerSlot>();
    slot->thread = std::thread([this, i] { worker_loop(i, 0); });
    slots_.push_back(std::move(slot));
  }
  supervisor_ = std::thread([this] { supervisor_loop(); });
}

bool AnalysisService::draining() const {
  std::lock_guard<std::mutex> lock(mu_);
  return draining_;
}

void AnalysisService::submit(std::string payload, ReplyFn reply) {
  auto pending = std::make_shared<Pending>();
  pending->payload = std::move(payload);
  pending->reply = std::move(reply);

  std::string rejection;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (draining_ || !started_) {
      ++stats_.rejected_draining;
      rejection = shutting_down_body();
    } else {
      try {
        failpoint::hit("server.enqueue");
        if (queue_.size() >= cfg_.queue_capacity) {
          ++stats_.shed;
          // Load shedding: the hint scales with how much admitted work each
          // worker already owes, so synchronized retry storms spread out.
          const std::uint64_t hint = std::clamp<std::uint64_t>(
              cfg_.default_timeout_ms * (1 + queue_.size() / cfg_.workers) / 4, 10, 2000);
          rejection = overloaded_body(hint, "admission queue full");
        } else {
          ++stats_.accepted;
          queue_.push_back(pending);
          queue_cv_.notify_one();
        }
      } catch (const std::exception& e) {
        // An injected (or real) admission fault sheds this one request; the
        // acceptor and the queue survive.
        rejection = error_body(ReplyCode::kInternal,
                               std::string("admission failed: ") + e.what());
      }
    }
  }
  if (!rejection.empty()) pending->deliver(rejection);
}

bool AnalysisService::deterministic_body(const AnalysisReport& report) {
  for (const RungOutcome& r : report.rungs) {
    if (r.budget_reason == BudgetDimension::kDeadline ||
        r.budget_reason == BudgetDimension::kCancelled) {
      return false;
    }
  }
  return true;
}

std::string AnalysisService::result_cache_find(const std::string& payload) {
  // Caller holds mu_.
  auto it = cache_index_.find(payload);
  if (it == cache_index_.end()) return {};
  cache_lru_.splice(cache_lru_.begin(), cache_lru_, it->second);
  ++stats_.result_cache_hits;
  return it->second->body;
}

void AnalysisService::result_cache_store(const std::string& payload, const std::string& body) {
  // Caller holds mu_.
  if (cache_index_.count(payload)) return;
  const std::size_t entry_bytes = payload.size() + body.size() + 128;
  if (entry_bytes > cfg_.result_cache_max_bytes) return;
  cache_lru_.push_front(CacheEntry{payload, body});
  cache_index_.emplace(payload, cache_lru_.begin());
  cache_bytes_ += entry_bytes;
  while (cache_bytes_ > cfg_.result_cache_max_bytes) {
    CacheEntry& cold = cache_lru_.back();
    cache_bytes_ -= cold.payload.size() + cold.body.size() + 128;
    cache_index_.erase(cold.payload);
    cache_lru_.pop_back();
    ++stats_.result_cache_evictions;
  }
}

void AnalysisService::load_cache_image_locked() {
  if (cfg_.cache_dir.empty()) return;
  snapshot::LoadError err;
  auto img = snapshot::load_daemon_cache(cache_image_path(cfg_.cache_dir), &err);
  if (!img) {
    // A missing image is the normal first boot; anything else is a detected
    // torn write or corruption, degraded to a counted cold start.
    if (err.reason != snapshot::LoadError::Reason::kOpenFailed) {
      ++stats_.snapshot_cold_starts;
    }
    return;
  }
  ++stats_.snapshot_loads;

  // Result LRU: the image is MRU-first, so appending at the back rebuilds
  // the order; admission stops at the byte cap (coldest entries lose).
  for (auto& [payload, body] : img->results) {
    if (cache_index_.count(payload)) continue;
    const std::size_t entry_bytes = payload.size() + body.size() + 128;
    if (cache_bytes_ + entry_bytes > cfg_.result_cache_max_bytes) break;
    cache_lru_.push_back(CacheEntry{payload, body});
    cache_index_.emplace(payload, std::prev(cache_lru_.end()));
    cache_bytes_ += entry_bytes;
    ++stats_.warm_restored_results;
  }

  // Normal-form memo: import_entry re-validates every blueprint and appends
  // coldest-so-far, so image order (MRU first) is preserved.
  for (const auto& e : img->memo) {
    if (registry_.memo().import_entry(e)) ++stats_.warm_restored_memo;
  }

  // Analysis-table pool: rebuild each process and re-admit through the
  // ordinary miss path, coldest first so the MRU order comes out right.
  for (auto it = img->pool.rbegin(); it != img->pool.rend(); ++it) {
    try {
      const Fsp f = snapshot::fsp_from_image(*it);
      registry_.fsp_cache(f, nullptr);
      ++stats_.warm_restored_pool;
    } catch (const std::exception&) {
      // One unbuildable entry (e.g. an allocation failure on a huge table)
      // costs that entry's warmth only.
    }
  }

  if (stats_.warm_restored_results + stats_.warm_restored_memo +
          stats_.warm_restored_pool >
      0) {
    stats_.warm_start = 1;
  }
}

void AnalysisService::save_cache_image_locked() {
  if (cfg_.cache_dir.empty()) return;
  ::mkdir(cfg_.cache_dir.c_str(), 0755);  // EEXIST is fine
  snapshot::DaemonCacheImage img;
  img.results.reserve(cache_lru_.size());
  for (const CacheEntry& e : cache_lru_) img.results.emplace_back(e.payload, e.body);
  img.memo = registry_.memo().export_entries();
  for (const auto& f : registry_.fsp_pool_entries()) {
    img.pool.push_back(snapshot::fsp_image_of(*f));
  }
  std::string error;
  if (snapshot::save_daemon_cache(img, cache_image_path(cfg_.cache_dir), &error)) {
    ++stats_.snapshot_saves;
  } else {
    ++stats_.snapshot_save_failures;
  }
}

AnalysisService::ExecResult AnalysisService::execute(const std::string& payload,
                                                     const CancelToken& token) {
  try {
    failpoint::hit("server.worker");
    ParsedRequest parsed = parse_request(payload);
    switch (parsed.command) {
      case Command::kInvalid:
        return {error_body(ReplyCode::kInvalidRequest, parsed.error), true};
      case Command::kPing:
        return {pong_body(), false};
      case Command::kStats:
        return {stats_body(stats_json()), false};
      case Command::kAnalyze:
        break;
    }
    const AnalyzeRequest& a = parsed.analyze;
    const std::uint64_t timeout_ms =
        a.timeout_ms ? std::min(a.timeout_ms, cfg_.max_timeout_ms) : cfg_.default_timeout_ms;
    const std::size_t max_states =
        a.max_states ? std::min(a.max_states, cfg_.max_states) : cfg_.max_states;

    auto alphabet = std::make_shared<Alphabet>();
    Network net(alphabet, parse_processes(a.model_text, alphabet));
    std::size_t p = 0;
    if (!a.distinguished.empty()) {
      bool found = false;
      for (std::size_t i = 0; i < net.size(); ++i) {
        if (net.process(i).name() == a.distinguished) {
          p = i;
          found = true;
        }
      }
      if (!found) {
        return {error_body(ReplyCode::kInvalidInput,
                           "no process named '" + a.distinguished + "'"),
                true};
      }
    }

    AnalyzeOptions opt;
    opt.budget.limit_duration(std::chrono::milliseconds(timeout_ms));
    opt.budget.limit_states(max_states);
    opt.budget.watch(token);
    opt.retries = a.retries_set ? a.retries : cfg_.default_retries;
    opt.rungs = a.rungs;
    AnalysisReport report = analyze(net, p, opt);
    return {report_body(report), deterministic_body(report)};
  } catch (const ParseError& e) {
    return {error_body(ReplyCode::kInvalidInput, e.what()), true};
  } catch (const BudgetExceeded& e) {
    // A wall tripping *outside* analyze() (an injected server.worker fault,
    // say) is not a reproducible engine outcome: never cache it.
    return {error_body(ReplyCode::kBudgetExhausted, e.what()), false};
  } catch (const std::bad_alloc&) {
    return {error_body(ReplyCode::kBudgetExhausted, "allocation failed inside the worker"),
            false};
  } catch (const std::logic_error& e) {
    // Network validation (Definition 2) and kin: the input, not the worker.
    return {error_body(ReplyCode::kInvalidInput, e.what()), true};
  } catch (const std::exception& e) {
    return {error_body(ReplyCode::kInternal, e.what()), false};
  } catch (...) {
    return {error_body(ReplyCode::kInternal, "unknown exception contained in worker"), false};
  }
}

void AnalysisService::worker_loop(std::size_t slot_index, std::uint64_t generation) {
  for (;;) {
    PendingPtr pending;
    CancelToken token;
    {
      std::unique_lock<std::mutex> lock(mu_);
      WorkerSlot* slot = slots_[slot_index].get();
      queue_cv_.wait(lock, [&] {
        return draining_ || !queue_.empty() || slot->generation != generation;
      });
      if (slot->generation != generation) return;  // replaced while idle (not expected)
      if (queue_.empty()) {
        if (draining_) return;
        continue;
      }
      pending = queue_.front();
      queue_.pop_front();
      if (draining_) {
        lock.unlock();
        pending->deliver(shutting_down_body());
        continue;
      }
      // Result cache first, then single-flight: followers of an in-flight
      // identical payload park as waiters and this worker moves on.
      if (std::string body = result_cache_find(pending->payload); !body.empty()) {
        lock.unlock();
        pending->deliver(body);
        continue;
      }
      auto [it, leader] = in_flight_.try_emplace(pending->payload);
      if (!leader) {
        it->second.waiters.push_back(pending);
        ++stats_.single_flight_joins;
        continue;
      }
      // Publish the in-flight request for the supervisor's wedge scan. The
      // deadline mirrors execute()'s clamping of the request's own flag.
      ParsedRequest peek = parse_request(pending->payload);
      std::uint64_t timeout_ms = cfg_.default_timeout_ms;
      if (peek.command == Command::kAnalyze && peek.analyze.timeout_ms) {
        timeout_ms = std::min(peek.analyze.timeout_ms, cfg_.max_timeout_ms);
      }
      token = CancelToken();
      slot->busy = true;
      slot->started = std::chrono::steady_clock::now();
      slot->deadline = std::chrono::milliseconds(timeout_ms);
      slot->cancel_fired = false;
      slot->token = token;
      slot->current = pending;
    }

    ExecResult result = execute(pending->payload, token);
    const std::string& body = result.body;
    const bool cacheable = result.cacheable;

    std::vector<PendingPtr> waiters;
    bool replaced = false;
    bool drain_waiters = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      WorkerSlot* slot = slots_[slot_index].get();
      auto it = in_flight_.find(pending->payload);
      if (it != in_flight_.end()) {
        waiters = std::move(it->second.waiters);
        in_flight_.erase(it);
      }
      ++stats_.completed;
      if (cacheable) result_cache_store(pending->payload, body);
      drain_waiters = draining_;
      replaced = slot->generation != generation;
      if (!replaced) {
        slot->busy = false;
        slot->current.reset();
      }
      if (!cacheable && !drain_waiters && !waiters.empty()) {
        // A timing-dependent body must not be shared: followers re-run.
        // They re-enter at the front — they have been waiting longest.
        for (auto& w : waiters) queue_.push_front(w);
        queue_cv_.notify_all();
        waiters.clear();
      }
    }

    pending->deliver(body);
    for (auto& w : waiters) {
      w->deliver(drain_waiters && !cacheable ? shutting_down_body() : body);
    }
    if (replaced) return;  // a replacement worker owns the slot now
  }
}

void AnalysisService::supervisor_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    idle_cv_.wait_for(lock, std::chrono::milliseconds(cfg_.supervisor_poll_ms));
    if (supervisor_stop_) return;
    const auto now = std::chrono::steady_clock::now();
    const auto grace = std::chrono::milliseconds(cfg_.wedge_grace_ms);
    std::vector<PendingPtr> wedged;
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      WorkerSlot* slot = slots_[i].get();
      if (!slot->busy) continue;
      const auto elapsed = now - slot->started;
      if (elapsed > slot->deadline + grace && !slot->cancel_fired) {
        // Stage 1: the budget should have tripped by now; fire the
        // cooperative cancel in case the worker is stuck somewhere that
        // only polls the token.
        slot->token.cancel();
        slot->cancel_fired = true;
        ++stats_.cancelled_by_supervisor;
      }
      if (elapsed > slot->deadline + grace + grace && !draining_) {
        // Stage 2: declare the worker wedged. Reply on its behalf (the
        // exactly-once slot makes the stuck thread's eventual reply a
        // no-op), retire the thread, and restore pool capacity.
        ++stats_.wedged;
        ++stats_.workers_replaced;
        wedged.push_back(slot->current);
        slot->generation += 1;
        zombies_.push_back(std::move(slot->thread));
        const std::uint64_t gen = slot->generation;
        slot->busy = false;
        slot->current.reset();
        slot->thread = std::thread([this, i, gen] { worker_loop(i, gen); });
      }
    }
    if (!wedged.empty()) {
      lock.unlock();
      const std::string body = error_body(
          ReplyCode::kWedged, "worker exceeded its deadline escalation and was replaced");
      for (auto& p : wedged) {
        if (p) p->deliver(body);
      }
      lock.lock();
    }
  }
}

void AnalysisService::drain(std::chrono::milliseconds /*deadline*/) {
  std::vector<PendingPtr> queued;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!started_ || drained_) {
      drained_ = true;
      return;
    }
    draining_ = true;
    // Unstarted work is rejected, not run: drain time stays bounded by the
    // in-flight requests, which the cancellations below cut short.
    queued.assign(queue_.begin(), queue_.end());
    queue_.clear();
    for (auto& slot : slots_) {
      if (slot->busy) slot->token.cancel();
    }
    queue_cv_.notify_all();
    idle_cv_.notify_all();
  }
  const std::string body = shutting_down_body();
  for (auto& p : queued) p->deliver(body);
  // A fault-injected stall must not outlive the service: wake all parked
  // sites now (their wait predicate re-checks the armed registry).
  failpoint::release_stalls();

  for (auto& slot : slots_) {
    if (slot->thread.joinable()) slot->thread.join();
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    supervisor_stop_ = true;
    idle_cv_.notify_all();
  }
  if (supervisor_.joinable()) supervisor_.join();
  for (auto& z : zombies_) {
    if (z.joinable()) z.join();
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Workers are gone and admission is closed: the caches are quiescent,
    // so this is the one moment the image is a consistent snapshot.
    save_cache_image_locked();
    SharedCacheRegistry::install(nullptr);
    drained_ = true;
  }
}

ServiceStats AnalysisService::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  ServiceStats s = stats_;
  s.queue_depth = queue_.size();
  s.result_cache_bytes = cache_bytes_;
  s.engine_memo_bytes = registry_.memo().bytes();
  s.engine_fsp_cache_bytes = registry_.fsp_cache_bytes();
  s.engine_cache_evictions =
      registry_.memo().evictions() + registry_.fsp_cache_evictions();
  if (started_) {
    s.uptime_ms = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - started_at_)
            .count());
  }
  return s;
}

std::string AnalysisService::stats_json() const {
  const ServiceStats s = stats();
  std::string out = "{";
  auto field = [&](const char* name, std::uint64_t v, bool first = false) {
    if (!first) out += ", ";
    out += std::string("\"") + name + "\": " + std::to_string(v);
  };
  field("accepted", s.accepted, true);
  field("shed", s.shed);
  field("rejected_draining", s.rejected_draining);
  field("completed", s.completed);
  field("wedged", s.wedged);
  field("cancelled_by_supervisor", s.cancelled_by_supervisor);
  field("workers_replaced", s.workers_replaced);
  field("result_cache_hits", s.result_cache_hits);
  field("single_flight_joins", s.single_flight_joins);
  field("queue_depth", s.queue_depth);
  field("result_cache_bytes", s.result_cache_bytes);
  field("result_cache_evictions", s.result_cache_evictions);
  field("engine_memo_bytes", s.engine_memo_bytes);
  field("engine_fsp_cache_bytes", s.engine_fsp_cache_bytes);
  field("engine_cache_evictions", s.engine_cache_evictions);
  field("uptime_ms", s.uptime_ms);
  field("warm_start", s.warm_start);
  field("warm_restored_results", s.warm_restored_results);
  field("warm_restored_memo", s.warm_restored_memo);
  field("warm_restored_pool", s.warm_restored_pool);
  field("snapshot_saves", s.snapshot_saves);
  field("snapshot_save_failures", s.snapshot_save_failures);
  field("snapshot_loads", s.snapshot_loads);
  field("snapshot_cold_starts", s.snapshot_cold_starts);
  out += "}";
  return out;
}

}  // namespace ccfsp::server
