// Exact rational numbers over BigInt. The simplex solver in src/ilp works
// entirely in these, so LP pivoting is exact and ILP feasibility answers are
// never subject to floating-point error.
#pragma once

#include <compare>
#include <string>

#include "bignum/bigint.hpp"

namespace ccfsp {

/// Invariant: denominator > 0, gcd(|num|, den) == 1, zero is 0/1.
class Rational {
 public:
  Rational() : num_(0), den_(1) {}
  Rational(BigInt num) : num_(std::move(num)), den_(1) {}  // NOLINT — deliberate promotion
  Rational(std::int64_t v) : num_(v), den_(1) {}           // NOLINT — deliberate promotion
  Rational(BigInt num, BigInt den);

  const BigInt& num() const { return num_; }
  const BigInt& den() const { return den_; }

  bool is_zero() const { return num_.is_zero(); }
  bool is_integer() const { return den_ == BigInt(1); }
  int sign() const { return num_.sign(); }

  Rational operator-() const;
  friend Rational operator+(const Rational& a, const Rational& b);
  friend Rational operator-(const Rational& a, const Rational& b);
  friend Rational operator*(const Rational& a, const Rational& b);
  friend Rational operator/(const Rational& a, const Rational& b);

  Rational& operator+=(const Rational& o) { return *this = *this + o; }
  Rational& operator-=(const Rational& o) { return *this = *this - o; }
  Rational& operator*=(const Rational& o) { return *this = *this * o; }
  Rational& operator/=(const Rational& o) { return *this = *this / o; }

  std::strong_ordering operator<=>(const Rational& o) const;
  bool operator==(const Rational& o) const = default;

  /// Largest integer <= this (exact).
  BigInt floor() const;
  /// Smallest integer >= this (exact).
  BigInt ceil() const;

  std::string to_string() const;

 private:
  void normalize();
  BigInt num_;
  BigInt den_;
};

}  // namespace ccfsp
