// Arbitrary-precision signed integer, written from scratch for this library.
// Theorem 4's unary-language normal forms are O(m)-bit lengths (a chain of m
// multiply-by-2 processes yields 2^m), and the exact simplex over rationals
// needs overflow-free arithmetic, so fixed-width integers do not suffice.
#pragma once

#include <cstdint>
#include <compare>
#include <string>
#include <string_view>
#include <vector>

namespace ccfsp {

/// Sign-magnitude big integer over 32-bit limbs (little-endian).
/// Invariant: no leading zero limbs; zero is {} with non-negative sign.
class BigInt {
 public:
  BigInt() = default;
  BigInt(std::int64_t v);  // NOLINT(google-explicit-constructor) — deliberate, ints are BigInts
  static BigInt from_string(std::string_view decimal);

  bool is_zero() const { return limbs_.empty(); }
  bool is_negative() const { return negative_; }
  int sign() const { return is_zero() ? 0 : (negative_ ? -1 : 1); }

  BigInt operator-() const;
  BigInt abs() const;

  friend BigInt operator+(const BigInt& a, const BigInt& b);
  friend BigInt operator-(const BigInt& a, const BigInt& b);
  friend BigInt operator*(const BigInt& a, const BigInt& b);
  /// Truncated division (C++ semantics: quotient rounds toward zero).
  friend BigInt operator/(const BigInt& a, const BigInt& b);
  friend BigInt operator%(const BigInt& a, const BigInt& b);

  BigInt& operator+=(const BigInt& o) { return *this = *this + o; }
  BigInt& operator-=(const BigInt& o) { return *this = *this - o; }
  BigInt& operator*=(const BigInt& o) { return *this = *this * o; }
  BigInt& operator/=(const BigInt& o) { return *this = *this / o; }
  BigInt& operator%=(const BigInt& o) { return *this = *this % o; }

  /// Quotient and remainder in one pass; remainder has the dividend's sign.
  static void divmod(const BigInt& a, const BigInt& b, BigInt& q, BigInt& r);

  /// Floor division (quotient rounds toward -inf); used by the ILP brancher.
  static BigInt fdiv(const BigInt& a, const BigInt& b);

  static BigInt gcd(BigInt a, BigInt b);
  static BigInt pow2(std::size_t k);  // 2^k

  BigInt shifted_left(std::size_t bits) const;

  std::strong_ordering operator<=>(const BigInt& o) const;
  bool operator==(const BigInt& o) const = default;

  /// Number of bits in the magnitude (0 for zero).
  std::size_t bit_length() const;

  /// Exact conversion; returns false (and leaves out untouched) on overflow.
  bool fits_int64(std::int64_t& out) const;

  std::string to_string() const;
  std::size_t hash() const;

 private:
  static int cmp_mag(const std::vector<std::uint32_t>& a, const std::vector<std::uint32_t>& b);
  static std::vector<std::uint32_t> add_mag(const std::vector<std::uint32_t>& a,
                                            const std::vector<std::uint32_t>& b);
  // Requires |a| >= |b|.
  static std::vector<std::uint32_t> sub_mag(const std::vector<std::uint32_t>& a,
                                            const std::vector<std::uint32_t>& b);
  static std::vector<std::uint32_t> mul_mag(const std::vector<std::uint32_t>& a,
                                            const std::vector<std::uint32_t>& b);
  static void divmod_mag(const std::vector<std::uint32_t>& a, const std::vector<std::uint32_t>& b,
                         std::vector<std::uint32_t>& q, std::vector<std::uint32_t>& r);
  void trim();

  bool negative_ = false;
  std::vector<std::uint32_t> limbs_;
};

struct BigIntHash {
  std::size_t operator()(const BigInt& v) const { return v.hash(); }
};

}  // namespace ccfsp
