#include "bignum/bigint.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace ccfsp {

namespace {
constexpr std::uint64_t kBase = 1ull << 32;
}

BigInt::BigInt(std::int64_t v) {
  negative_ = v < 0;
  // Careful with INT64_MIN: negate in unsigned space.
  std::uint64_t mag = negative_ ? ~static_cast<std::uint64_t>(v) + 1 : static_cast<std::uint64_t>(v);
  while (mag != 0) {
    limbs_.push_back(static_cast<std::uint32_t>(mag & 0xffffffffu));
    mag >>= 32;
  }
}

BigInt BigInt::from_string(std::string_view s) {
  BigInt out;
  bool neg = false;
  std::size_t i = 0;
  if (i < s.size() && (s[i] == '-' || s[i] == '+')) {
    neg = s[i] == '-';
    ++i;
  }
  if (i >= s.size()) throw std::invalid_argument("BigInt: empty numeral");
  for (; i < s.size(); ++i) {
    char c = s[i];
    if (c < '0' || c > '9') throw std::invalid_argument("BigInt: bad digit");
    out = out * BigInt(10) + BigInt(c - '0');
  }
  if (neg && !out.is_zero()) out.negative_ = true;
  return out;
}

void BigInt::trim() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
  if (limbs_.empty()) negative_ = false;
}

int BigInt::cmp_mag(const std::vector<std::uint32_t>& a, const std::vector<std::uint32_t>& b) {
  if (a.size() != b.size()) return a.size() < b.size() ? -1 : 1;
  for (std::size_t i = a.size(); i-- > 0;) {
    if (a[i] != b[i]) return a[i] < b[i] ? -1 : 1;
  }
  return 0;
}

std::vector<std::uint32_t> BigInt::add_mag(const std::vector<std::uint32_t>& a,
                                           const std::vector<std::uint32_t>& b) {
  const auto& big = a.size() >= b.size() ? a : b;
  const auto& small = a.size() >= b.size() ? b : a;
  std::vector<std::uint32_t> out;
  out.reserve(big.size() + 1);
  std::uint64_t carry = 0;
  for (std::size_t i = 0; i < big.size(); ++i) {
    std::uint64_t sum = carry + big[i] + (i < small.size() ? small[i] : 0u);
    out.push_back(static_cast<std::uint32_t>(sum & 0xffffffffu));
    carry = sum >> 32;
  }
  if (carry) out.push_back(static_cast<std::uint32_t>(carry));
  return out;
}

std::vector<std::uint32_t> BigInt::sub_mag(const std::vector<std::uint32_t>& a,
                                           const std::vector<std::uint32_t>& b) {
  assert(cmp_mag(a, b) >= 0);
  std::vector<std::uint32_t> out;
  out.reserve(a.size());
  std::int64_t borrow = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    std::int64_t diff = static_cast<std::int64_t>(a[i]) - borrow -
                        (i < b.size() ? static_cast<std::int64_t>(b[i]) : 0);
    if (diff < 0) {
      diff += static_cast<std::int64_t>(kBase);
      borrow = 1;
    } else {
      borrow = 0;
    }
    out.push_back(static_cast<std::uint32_t>(diff));
  }
  while (!out.empty() && out.back() == 0) out.pop_back();
  return out;
}

std::vector<std::uint32_t> BigInt::mul_mag(const std::vector<std::uint32_t>& a,
                                           const std::vector<std::uint32_t>& b) {
  if (a.empty() || b.empty()) return {};
  std::vector<std::uint32_t> out(a.size() + b.size(), 0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    std::uint64_t carry = 0;
    for (std::size_t j = 0; j < b.size(); ++j) {
      std::uint64_t cur = static_cast<std::uint64_t>(a[i]) * b[j] + out[i + j] + carry;
      out[i + j] = static_cast<std::uint32_t>(cur & 0xffffffffu);
      carry = cur >> 32;
    }
    std::size_t k = i + b.size();
    while (carry) {
      std::uint64_t cur = out[k] + carry;
      out[k] = static_cast<std::uint32_t>(cur & 0xffffffffu);
      carry = cur >> 32;
      ++k;
    }
  }
  while (!out.empty() && out.back() == 0) out.pop_back();
  return out;
}

void BigInt::divmod_mag(const std::vector<std::uint32_t>& a, const std::vector<std::uint32_t>& b,
                        std::vector<std::uint32_t>& q, std::vector<std::uint32_t>& r) {
  if (b.empty()) throw std::domain_error("BigInt: division by zero");
  q.clear();
  r.clear();
  if (cmp_mag(a, b) < 0) {
    r = a;
    return;
  }
  if (b.size() == 1) {
    // Fast path: divide by a single limb.
    std::uint64_t d = b[0];
    q.assign(a.size(), 0);
    std::uint64_t rem = 0;
    for (std::size_t i = a.size(); i-- > 0;) {
      std::uint64_t cur = (rem << 32) | a[i];
      q[i] = static_cast<std::uint32_t>(cur / d);
      rem = cur % d;
    }
    while (!q.empty() && q.back() == 0) q.pop_back();
    if (rem) r.push_back(static_cast<std::uint32_t>(rem));
    return;
  }

  // Knuth algorithm D with normalization.
  int shift = 0;
  std::uint32_t top = b.back();
  while ((top & 0x80000000u) == 0) {
    top <<= 1;
    ++shift;
  }
  auto shl = [&](const std::vector<std::uint32_t>& x) {
    if (shift == 0) return x;
    std::vector<std::uint32_t> y(x.size() + 1, 0);
    for (std::size_t i = 0; i < x.size(); ++i) {
      y[i] |= x[i] << shift;
      y[i + 1] = x[i] >> (32 - shift);
    }
    while (!y.empty() && y.back() == 0) y.pop_back();
    return y;
  };
  std::vector<std::uint32_t> u = shl(a);
  std::vector<std::uint32_t> v = shl(b);
  const std::size_t n = v.size();
  const std::size_t m = u.size() - n;
  u.resize(u.size() + 1, 0);  // extra limb for the algorithm
  q.assign(m + 1, 0);

  for (std::size_t j = m + 1; j-- > 0;) {
    std::uint64_t num = (static_cast<std::uint64_t>(u[j + n]) << 32) | u[j + n - 1];
    std::uint64_t qhat = num / v[n - 1];
    std::uint64_t rhat = num % v[n - 1];
    while (qhat >= kBase ||
           qhat * v[n - 2] > ((rhat << 32) | u[j + n - 2])) {
      --qhat;
      rhat += v[n - 1];
      if (rhat >= kBase) break;
    }
    // Multiply-subtract qhat * v from u[j .. j+n].
    std::int64_t borrow = 0;
    std::uint64_t carry = 0;
    for (std::size_t i = 0; i < n; ++i) {
      std::uint64_t p = qhat * v[i] + carry;
      carry = p >> 32;
      std::int64_t t = static_cast<std::int64_t>(u[i + j]) -
                       static_cast<std::int64_t>(p & 0xffffffffu) - borrow;
      if (t < 0) {
        t += static_cast<std::int64_t>(kBase);
        borrow = 1;
      } else {
        borrow = 0;
      }
      u[i + j] = static_cast<std::uint32_t>(t);
    }
    std::int64_t t = static_cast<std::int64_t>(u[j + n]) - static_cast<std::int64_t>(carry) - borrow;
    if (t < 0) {
      // qhat was one too large; add back.
      t += static_cast<std::int64_t>(kBase);
      --qhat;
      std::uint64_t c2 = 0;
      for (std::size_t i = 0; i < n; ++i) {
        std::uint64_t s = static_cast<std::uint64_t>(u[i + j]) + v[i] + c2;
        u[i + j] = static_cast<std::uint32_t>(s & 0xffffffffu);
        c2 = s >> 32;
      }
      t += static_cast<std::int64_t>(c2);
      t &= 0xffffffff;
    }
    u[j + n] = static_cast<std::uint32_t>(t);
    q[j] = static_cast<std::uint32_t>(qhat);
  }

  while (!q.empty() && q.back() == 0) q.pop_back();
  // Remainder = u[0..n) shifted back.
  r.assign(u.begin(), u.begin() + static_cast<std::ptrdiff_t>(n));
  if (shift != 0) {
    for (std::size_t i = 0; i + 1 < r.size(); ++i) {
      r[i] = (r[i] >> shift) | (r[i + 1] << (32 - shift));
    }
    if (!r.empty()) r.back() >>= shift;
  }
  while (!r.empty() && r.back() == 0) r.pop_back();
}

BigInt BigInt::operator-() const {
  BigInt out = *this;
  if (!out.is_zero()) out.negative_ = !out.negative_;
  return out;
}

BigInt BigInt::abs() const {
  BigInt out = *this;
  out.negative_ = false;
  return out;
}

BigInt operator+(const BigInt& a, const BigInt& b) {
  BigInt out;
  if (a.negative_ == b.negative_) {
    out.limbs_ = BigInt::add_mag(a.limbs_, b.limbs_);
    out.negative_ = a.negative_;
  } else {
    int c = BigInt::cmp_mag(a.limbs_, b.limbs_);
    if (c == 0) return BigInt{};
    if (c > 0) {
      out.limbs_ = BigInt::sub_mag(a.limbs_, b.limbs_);
      out.negative_ = a.negative_;
    } else {
      out.limbs_ = BigInt::sub_mag(b.limbs_, a.limbs_);
      out.negative_ = b.negative_;
    }
  }
  out.trim();
  return out;
}

BigInt operator-(const BigInt& a, const BigInt& b) { return a + (-b); }

BigInt operator*(const BigInt& a, const BigInt& b) {
  BigInt out;
  out.limbs_ = BigInt::mul_mag(a.limbs_, b.limbs_);
  out.negative_ = !out.limbs_.empty() && (a.negative_ != b.negative_);
  return out;
}

void BigInt::divmod(const BigInt& a, const BigInt& b, BigInt& q, BigInt& r) {
  std::vector<std::uint32_t> qm, rm;
  divmod_mag(a.limbs_, b.limbs_, qm, rm);
  q.limbs_ = std::move(qm);
  q.negative_ = !q.limbs_.empty() && (a.negative_ != b.negative_);
  r.limbs_ = std::move(rm);
  r.negative_ = !r.limbs_.empty() && a.negative_;
}

BigInt operator/(const BigInt& a, const BigInt& b) {
  BigInt q, r;
  BigInt::divmod(a, b, q, r);
  return q;
}

BigInt operator%(const BigInt& a, const BigInt& b) {
  BigInt q, r;
  BigInt::divmod(a, b, q, r);
  return r;
}

BigInt BigInt::fdiv(const BigInt& a, const BigInt& b) {
  BigInt q, r;
  divmod(a, b, q, r);
  // Truncated quotient rounds toward zero; fix up when signs differ and
  // the division was inexact.
  if (!r.is_zero() && (a.is_negative() != b.is_negative())) q -= BigInt(1);
  return q;
}

BigInt BigInt::gcd(BigInt a, BigInt b) {
  a.negative_ = false;
  b.negative_ = false;
  while (!b.is_zero()) {
    BigInt r = a % b;
    a = std::move(b);
    b = std::move(r);
  }
  return a;
}

BigInt BigInt::pow2(std::size_t k) { return BigInt(1).shifted_left(k); }

BigInt BigInt::shifted_left(std::size_t bits) const {
  if (is_zero()) return {};
  BigInt out;
  std::size_t limb_shift = bits / 32;
  std::size_t bit_shift = bits % 32;
  out.limbs_.assign(limbs_.size() + limb_shift + 1, 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    out.limbs_[i + limb_shift] |= limbs_[i] << bit_shift;
    if (bit_shift != 0) out.limbs_[i + limb_shift + 1] = limbs_[i] >> (32 - bit_shift);
  }
  out.negative_ = negative_;
  out.trim();
  return out;
}

std::strong_ordering BigInt::operator<=>(const BigInt& o) const {
  if (negative_ != o.negative_) {
    return negative_ ? std::strong_ordering::less : std::strong_ordering::greater;
  }
  int c = cmp_mag(limbs_, o.limbs_);
  if (negative_) c = -c;
  return c < 0   ? std::strong_ordering::less
         : c > 0 ? std::strong_ordering::greater
                 : std::strong_ordering::equal;
}

std::size_t BigInt::bit_length() const {
  if (limbs_.empty()) return 0;
  std::size_t bits = (limbs_.size() - 1) * 32;
  std::uint32_t top = limbs_.back();
  while (top) {
    ++bits;
    top >>= 1;
  }
  return bits;
}

bool BigInt::fits_int64(std::int64_t& out) const {
  if (limbs_.size() > 2) return false;
  std::uint64_t mag = 0;
  if (limbs_.size() >= 1) mag |= limbs_[0];
  if (limbs_.size() == 2) mag |= static_cast<std::uint64_t>(limbs_[1]) << 32;
  if (negative_) {
    if (mag > 0x8000000000000000ull) return false;
    out = static_cast<std::int64_t>(~mag + 1);
  } else {
    if (mag > 0x7fffffffffffffffull) return false;
    out = static_cast<std::int64_t>(mag);
  }
  return true;
}

std::string BigInt::to_string() const {
  if (is_zero()) return "0";
  std::vector<std::uint32_t> mag = limbs_;
  std::string digits;
  while (!mag.empty()) {
    // Divide magnitude by 10^9, collect remainder.
    std::uint64_t rem = 0;
    for (std::size_t i = mag.size(); i-- > 0;) {
      std::uint64_t cur = (rem << 32) | mag[i];
      mag[i] = static_cast<std::uint32_t>(cur / 1000000000ull);
      rem = cur % 1000000000ull;
    }
    while (!mag.empty() && mag.back() == 0) mag.pop_back();
    for (int d = 0; d < 9; ++d) {
      digits.push_back(static_cast<char>('0' + rem % 10));
      rem /= 10;
    }
  }
  while (digits.size() > 1 && digits.back() == '0') digits.pop_back();
  if (negative_) digits.push_back('-');
  std::reverse(digits.begin(), digits.end());
  return digits;
}

std::size_t BigInt::hash() const {
  std::size_t h = negative_ ? 0x9e3779b97f4a7c15ull : 0x85ebca6b1ce4e5b9ull;
  for (std::uint32_t l : limbs_) {
    h ^= l;
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace ccfsp
