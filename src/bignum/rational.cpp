#include "bignum/rational.hpp"

#include <stdexcept>
#include <utility>

namespace ccfsp {

Rational::Rational(BigInt num, BigInt den) : num_(std::move(num)), den_(std::move(den)) {
  if (den_.is_zero()) throw std::domain_error("Rational: zero denominator");
  normalize();
}

void Rational::normalize() {
  if (den_.is_negative()) {
    num_ = -num_;
    den_ = -den_;
  }
  if (num_.is_zero()) {
    den_ = BigInt(1);
    return;
  }
  BigInt g = BigInt::gcd(num_, den_);
  if (g != BigInt(1)) {
    num_ /= g;
    den_ /= g;
  }
}

Rational Rational::operator-() const {
  Rational out = *this;
  out.num_ = -out.num_;
  return out;
}

Rational operator+(const Rational& a, const Rational& b) {
  return Rational(a.num_ * b.den_ + b.num_ * a.den_, a.den_ * b.den_);
}

Rational operator-(const Rational& a, const Rational& b) { return a + (-b); }

Rational operator*(const Rational& a, const Rational& b) {
  return Rational(a.num_ * b.num_, a.den_ * b.den_);
}

Rational operator/(const Rational& a, const Rational& b) {
  if (b.is_zero()) throw std::domain_error("Rational: division by zero");
  return Rational(a.num_ * b.den_, a.den_ * b.num_);
}

std::strong_ordering Rational::operator<=>(const Rational& o) const {
  // den > 0 on both sides, so cross-multiplication preserves order.
  return num_ * o.den_ <=> o.num_ * den_;
}

BigInt Rational::floor() const { return BigInt::fdiv(num_, den_); }

BigInt Rational::ceil() const { return -BigInt::fdiv(-num_, den_); }

std::string Rational::to_string() const {
  if (is_integer()) return num_.to_string();
  return num_.to_string() + "/" + den_.to_string();
}

}  // namespace ccfsp
