// The equivalence notions the paper juggles, in increasing fineness on
// acyclic FSPs: language, failure (HBR), possibility (the paper's choice).
// All three decide via the annotated subset construction; worst-case
// exponential ([KS]: possibility equivalence of cyclic FSPs is
// PSPACE-complete), cheap on tree-structured inputs.
#pragma once

#include "fsp/fsp.hpp"

namespace ccfsp {

bool language_equivalent(const Fsp& a, const Fsp& b);
bool failure_equivalent(const Fsp& a, const Fsp& b);
bool possibility_equivalent(const Fsp& a, const Fsp& b);

}  // namespace ccfsp
