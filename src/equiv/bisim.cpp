#include "equiv/bisim.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "util/refine.hpp"

namespace ccfsp {

std::vector<std::size_t> bisimulation_classes(const Fsp& p) {
  // Splitter-queue refinement (util/refine.hpp) from the trivial partition.
  // FSPs are nondeterministic in general, so the kernel runs its enqueue-
  // both-halves discipline; the resulting partition — and the numbering,
  // classes by first occurrence in state order — matches the retained Moore
  // oracle exactly (tested).
  const std::uint32_t n = static_cast<std::uint32_t>(p.num_states());
  std::vector<std::uint32_t> src, act, dst;
  for (StateId s = 0; s < n; ++s) {
    for (const auto& t : p.out(s)) {
      src.push_back(s);
      act.push_back(t.action);
      dst.push_back(t.target);
    }
  }
  std::vector<std::uint32_t> refined =
      refine_partition(n, src, act, dst, std::vector<std::uint32_t>(n, 0));
  return {refined.begin(), refined.end()};
}

std::vector<std::size_t> bisimulation_classes_reference(const Fsp& p) {
  std::vector<std::size_t> cls(p.num_states(), 0);
  std::size_t num_classes = 1;
  while (true) {
    // Signature = set of (action, target class); bisimilar states share it.
    std::map<std::set<std::pair<ActionId, std::size_t>>, std::size_t> sig_ids;
    std::vector<std::size_t> next(p.num_states());
    for (StateId s = 0; s < p.num_states(); ++s) {
      std::set<std::pair<ActionId, std::size_t>> sig;
      for (const auto& t : p.out(s)) sig.emplace(t.action, cls[t.target]);
      auto [it, _] = sig_ids.try_emplace(sig, sig_ids.size());
      next[s] = it->second;
    }
    if (sig_ids.size() == num_classes) {
      // Refinement is monotone (classes only split), so an unchanged count
      // means a fixed point.
      return next;
    }
    num_classes = sig_ids.size();
    cls = std::move(next);
  }
}

Fsp quotient_by_bisimulation(const Fsp& p) {
  auto cls = bisimulation_classes(p);
  std::size_t num_classes = *std::max_element(cls.begin(), cls.end()) + 1;

  Fsp out(p.alphabet(), p.name() + "_bq");
  std::vector<StateId> block_state(num_classes);
  std::vector<StateId> representative(num_classes, 0);
  std::vector<bool> seen(num_classes, false);
  for (StateId s = 0; s < p.num_states(); ++s) {
    if (!seen[cls[s]]) {
      seen[cls[s]] = true;
      representative[cls[s]] = s;
    }
  }
  for (std::size_t c = 0; c < num_classes; ++c) {
    block_state[c] = out.add_state(p.state_label(representative[c]));
    out.set_atoms(block_state[c], p.atoms(representative[c]));
  }
  for (std::size_t c = 0; c < num_classes; ++c) {
    std::set<std::pair<ActionId, std::size_t>> sig;
    for (const auto& t : p.out(representative[c])) sig.emplace(t.action, cls[t.target]);
    for (auto [a, d] : sig) out.add_transition(block_state[c], a, block_state[d]);
  }
  out.set_start(block_state[cls[p.start()]]);

  ActionSet used(p.alphabet()->size());
  for (StateId s = 0; s < out.num_states(); ++s) used |= out.out_actions(s);
  for (ActionId a : p.sigma()) {
    if (!used.test(a)) out.declare_action(a);
  }
  return out.trimmed();
}

Fsp compress_trivial_tau(const Fsp& p) {
  // candidate[s] = t if s's only transition is a single tau to t != s.
  std::vector<StateId> redirect(p.num_states());
  for (StateId s = 0; s < p.num_states(); ++s) redirect[s] = s;
  for (StateId s = 0; s < p.num_states(); ++s) {
    if (p.out(s).size() == 1 && p.out(s)[0].action == kTau && p.out(s)[0].target != s) {
      redirect[s] = p.out(s)[0].target;
    }
  }
  // Resolve chains; a pure pass-through tau cycle stays put (it encodes
  // divergence, which must not be erased).
  auto resolve = [&](StateId s) {
    std::set<StateId> onpath;
    StateId cur = s;
    while (redirect[cur] != cur) {
      if (!onpath.insert(cur).second) return s;  // cycle: keep s as-is
      cur = redirect[cur];
    }
    return cur;
  };

  Fsp out(p.alphabet(), p.name() + "_tc");
  std::vector<StateId> newid(p.num_states(), 0);
  std::vector<bool> kept(p.num_states(), false);
  for (StateId s = 0; s < p.num_states(); ++s) {
    StateId r = resolve(s);
    if (r == s) kept[s] = true;
  }
  // A cycle member that resolve() returned as itself must stay; ensure the
  // start's representative is kept too.
  StateId start_rep = resolve(p.start());
  kept[start_rep] = true;
  for (StateId s = 0; s < p.num_states(); ++s) {
    if (kept[s]) {
      newid[s] = out.add_state(p.state_label(s));
      out.set_atoms(newid[s], p.atoms(s));
    }
  }
  for (StateId s = 0; s < p.num_states(); ++s) {
    if (!kept[s]) continue;
    for (const auto& t : p.out(s)) {
      out.add_transition(newid[s], t.action, newid[resolve(t.target)]);
    }
  }
  out.set_start(newid[start_rep]);

  ActionSet used(p.alphabet()->size());
  for (StateId s = 0; s < out.num_states(); ++s) used |= out.out_actions(s);
  for (ActionId a : p.sigma()) {
    if (!used.test(a)) out.declare_action(a);
  }
  return out.trimmed();
}

}  // namespace ccfsp
