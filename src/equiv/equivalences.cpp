#include "equiv/equivalences.hpp"

#include "semantics/poss_automaton.hpp"

namespace ccfsp {

namespace {

bool equivalent(const Fsp& a, const Fsp& b, SemanticAnnotation kind) {
  return annotated_dfa_equivalent(annotated_determinize(a, kind),
                                  annotated_determinize(b, kind));
}

}  // namespace

bool language_equivalent(const Fsp& a, const Fsp& b) {
  return equivalent(a, b, SemanticAnnotation::kLanguage);
}

bool failure_equivalent(const Fsp& a, const Fsp& b) {
  return equivalent(a, b, SemanticAnnotation::kFailures);
}

bool possibility_equivalent(const Fsp& a, const Fsp& b) {
  return equivalent(a, b, SemanticAnnotation::kPossibilities);
}

}  // namespace ccfsp
