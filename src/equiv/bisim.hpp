// Strong bisimulation (tau treated as an ordinary label) via partition
// refinement. Strictly finer than possibility equivalence, so quotienting
// by it is a *sound* state-space reducer: the paper suggests exactly this
// kind of cheap reduction as the practical heuristic for the cyclic case,
// where exact possibility normal forms are PSPACE-hard [KS].
#pragma once

#include <vector>

#include "fsp/fsp.hpp"

namespace ccfsp {

/// Coarsest strong bisimulation: block index per state (classes numbered by
/// first occurrence in state order). Computed by the Paige–Tarjan splitter-
/// queue kernel in util/refine.hpp.
std::vector<std::size_t> bisimulation_classes(const Fsp& p);

/// The retained Moore-refinement implementation (full signature maps rebuilt
/// every round): the oracle bisimulation_classes() is tested against.
std::vector<std::size_t> bisimulation_classes_reference(const Fsp& p);

/// Quotient of p by strong bisimilarity (transitions deduplicated). The
/// result is possibility-equivalent (hence language- and failure-
/// equivalent) to p.
Fsp quotient_by_bisimulation(const Fsp& p);

/// Remove "pass-through" tau transitions: a state whose only transition is
/// a single tau to another state is merged into its target (sound for all
/// three equivalences; this is the tau-compression half of the cyclic
/// heuristic's ablation).
Fsp compress_trivial_tau(const Fsp& p);

}  // namespace ccfsp
