// Section 5 raises the symmetric generalization: the process of interest is
// itself a composition P = P_1 || ... || P_m of network members. The paper
// leaves the tree-process case open; here we provide the natural semantics
// and the explicit decision procedures, so the open question is at least
// executable:
//   group unavoidable success:  every maximal evolution parks EVERY group
//                               member on one of its leaves;
//   group success w/ collab:    some maximal evolution does.
// (Success-in-adversity for a group needs a joint partial-information
// strategy and is exactly the open problem — not provided.)
#pragma once

#include <vector>

#include "network/network.hpp"
#include "util/budget.hpp"

namespace ccfsp {

struct GroupSuccess {
  bool unavoidable_success = false;
  bool success_collab = false;
};

/// Explicit decision on the global machine. `group` must be a non-empty set
/// of distinct process indices. Throws BudgetExceeded (never a silently
/// truncated answer) when G outgrows the budget / max_states cap.
GroupSuccess group_success(const Network& net, const std::vector<std::size_t>& group,
                           const Budget& budget);
GroupSuccess group_success(const Network& net, const std::vector<std::size_t>& group,
                           std::size_t max_states = 1u << 22);

}  // namespace ccfsp
