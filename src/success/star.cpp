#include "success/star.hpp"

#include <map>
#include <optional>
#include <stdexcept>

#include "semantics/poss_automaton.hpp"
#include "semantics/possibilities.hpp"

namespace ccfsp {

namespace {

constexpr std::uint32_t kNoFactor = UINT32_MAX;
constexpr std::uint32_t kDeadDfaState = UINT32_MAX;

struct StarView {
  const Fsp* p;
  std::vector<AnnotatedDfa> dfas;          // one per factor, kPossibilities
  std::vector<std::uint32_t> factor_of;    // action -> factor index (or kNoFactor)

  std::size_t num_factors() const { return dfas.size(); }
};

StarView make_view(const Fsp& p, const StarContext& ctx) {
  StarView v;
  v.p = &p;
  v.factor_of.assign(p.alphabet()->size(), kNoFactor);
  for (std::uint32_t i = 0; i < ctx.factors.size(); ++i) {
    for (ActionId a : ctx.factors[i]->sigma()) {
      if (v.factor_of[a] != kNoFactor) {
        throw std::logic_error("star context: factor alphabets are not disjoint");
      }
      v.factor_of[a] = i;
    }
    v.dfas.push_back(ctx.use_reference_kernels
                         ? annotated_determinize_reference(*ctx.factors[i],
                                                           SemanticAnnotation::kPossibilities)
                         : annotated_determinize(*ctx.factors[i],
                                                 SemanticAnnotation::kPossibilities));
  }
  return v;
}

/// Walk every factor's DFA along the projection of s; returns one DFA state
/// per factor, or nullopt if some projection leaves its factor's language
/// (or s uses a symbol no factor owns).
std::optional<std::vector<std::uint32_t>> walk(const StarView& v,
                                               const std::vector<ActionId>& s) {
  std::vector<std::uint32_t> cur(v.num_factors());
  for (std::uint32_t i = 0; i < v.num_factors(); ++i) cur[i] = v.dfas[i].start;
  for (ActionId a : s) {
    std::uint32_t f = v.factor_of[a];
    if (f == kNoFactor) return std::nullopt;
    auto it = v.dfas[f].trans[cur[f]].find(a);
    if (it == v.dfas[f].trans[cur[f]].end()) return std::nullopt;
    cur[f] = it->second;
  }
  return cur;
}

/// Can the whole context reach a stable configuration (one stable state per
/// factor) whose combined ready set avoids `x`? (Lemma 4's condition with
/// Y = union of the Y_i, decomposed per factor.)
bool context_can_refuse(const StarView& v, const std::vector<std::uint32_t>& dfa_states,
                        const ActionSet& x) {
  for (std::uint32_t i = 0; i < v.num_factors(); ++i) {
    bool ok = false;
    for (const auto& z : v.dfas[i].annotation[dfa_states[i]]) {
      bool disjoint = true;
      for (ActionId a : z) {
        if (x.test(a)) {
          disjoint = false;
          break;
        }
      }
      if (disjoint) {
        ok = true;
        break;
      }
    }
    if (!ok) return false;
  }
  return true;
}

std::vector<Possibility> possibilities_of(const Fsp& p) {
  return p.is_tree() ? possibilities_tree(p) : possibilities_acyclic(p);
}

}  // namespace

bool star_success_collab(const Fsp& p, const StarContext& ctx) {
  StarView v = make_view(p, ctx);
  for (const auto& poss : possibilities_of(p)) {
    if (!poss.z.empty()) continue;  // Lemma 3 wants (s, {})
    if (walk(v, poss.s)) return true;
  }
  return false;
}

bool star_potential_blocking(const Fsp& p, const StarContext& ctx) {
  StarView v = make_view(p, ctx);
  for (const auto& poss : possibilities_of(p)) {
    if (poss.z.empty()) continue;  // Lemma 4 wants X nonempty
    auto states = walk(v, poss.s);
    if (!states) continue;  // s not in Lang(Q)
    ActionSet x(p.alphabet()->size());
    for (ActionId a : poss.z) x.set(a);
    if (context_can_refuse(v, *states, x)) return true;
  }
  return false;
}

bool star_success_adversity(const Fsp& p, const StarContext& ctx) {
  if (p.has_tau_moves()) {
    throw std::logic_error("star_success_adversity: P must be tau-free (Fig 4)");
  }
  if (!p.is_tree()) {
    throw std::logic_error("star_success_adversity: P must be a tree FSP");
  }
  StarView v = make_view(p, ctx);

  // Lemma 5's bottom-up evaluation, run top-down with memoization implicit
  // in the tree shape (each P state is visited once, with the unique factor
  // DFA states induced by its root path).
  auto win = [&](auto&& self, StateId ps, const std::vector<std::uint32_t>& dfa_states) -> bool {
    if (p.is_leaf(ps)) return true;
    ActionSet out = p.out_actions(ps);
    if (context_can_refuse(v, dfa_states, out)) return false;  // Q can block here

    // Group P's transitions by action.
    std::map<ActionId, std::vector<StateId>> children;
    for (const auto& t : p.out(ps)) children[t.action].push_back(t.target);

    for (const auto& [a, succs] : children) {
      std::uint32_t f = v.factor_of[a];
      if (f == kNoFactor) continue;  // never offered
      auto it = v.dfas[f].trans[dfa_states[f]].find(a);
      if (it == v.dfas[f].trans[dfa_states[f]].end()) continue;  // not playable
      std::vector<std::uint32_t> next = dfa_states;
      next[f] = it->second;
      bool some_win = false;
      for (StateId c : succs) {
        if (self(self, c, next)) {
          some_win = true;
          break;
        }
      }
      if (!some_win) return false;  // Q offers a and every response loses
    }
    return true;
  };

  std::vector<std::uint32_t> init(v.num_factors());
  for (std::uint32_t i = 0; i < v.num_factors(); ++i) init[i] = v.dfas[i].start;
  return win(win, p.start(), init);
}

}  // namespace ccfsp
