#include "success/analyze.hpp"

#include "success/baseline.hpp"
#include "success/context.hpp"
#include "success/cyclic.hpp"
#include "success/game.hpp"
#include "success/global.hpp"
#include "success/linear.hpp"
#include "success/tree_pipeline.hpp"
#include "success/unary_sc.hpp"
#include "util/failpoint.hpp"
#include "util/trace.hpp"
#include "util/version.hpp"

namespace ccfsp {

const char* to_string(Rung r) {
  switch (r) {
    case Rung::kLinear: return "linear";
    case Rung::kUnary: return "unary";
    case Rung::kTree: return "tree";
    case Rung::kHeuristic: return "heuristic";
    case Rung::kExplicit: return "explicit";
  }
  return "?";
}

std::optional<Rung> rung_from_string(const std::string& name) {
  if (name == "linear") return Rung::kLinear;
  if (name == "unary") return Rung::kUnary;
  if (name == "tree") return Rung::kTree;
  if (name == "heuristic") return Rung::kHeuristic;
  if (name == "explicit") return Rung::kExplicit;
  return std::nullopt;
}

namespace {

void merge(std::optional<bool>& slot, std::optional<bool> value) {
  if (!slot.has_value() && value.has_value()) slot = value;
}

std::string render(const Verdict& v) {
  auto bit = [](const std::optional<bool>& b) {
    return !b.has_value() ? std::string("?") : std::string(*b ? "yes" : "no");
  };
  std::string s = "S_u=" + bit(v.unavoidable_success) + " S_c=" + bit(v.success_collab);
  if (v.adversity_applicable) s += " S_a=" + bit(v.success_adversity);
  return s;
}

/// Run one rung against its forked budget, merging whatever it establishes
/// into `verdict` as it goes (so a mid-rung wall keeps partial answers).
RungOutcome attempt(Rung rung, const Network& net, std::size_t p_index, bool cyclic,
                    const Budget& rung_budget, unsigned threads,
                    const AnalyzeOptions::GlobalSource& global_source, Verdict& verdict) {
  RungOutcome out;
  out.rung = rung;
  const Fsp& p = net.process(p_index);
  metrics::ScopedSpan span(to_string(rung));
  try {
    failpoint::hit("analyze.rung");
    switch (rung) {
      case Rung::kLinear: {
        if (!net.all_linear()) {
          out.detail = "network is not all-linear (Proposition 1 inapplicable)";
          return out;
        }
        bool v = linear_network_success(net, p_index);
        // Prop 1: all three notions coincide on linear networks.
        merge(verdict.unavoidable_success, v);
        merge(verdict.success_collab, v);
        if (verdict.adversity_applicable) merge(verdict.success_adversity, v);
        break;
      }
      case Rung::kUnary: {
        if (!cyclic) {
          out.detail = "Theorem 4 targets cyclic unary-tree networks; input is acyclic";
          return out;
        }
        // Throws logic_error when the network is not a unary tree.
        merge(verdict.success_collab, unary_success_collab(net, p_index).success_collab);
        break;
      }
      case Rung::kTree: {
        // theorem3_decide itself rejects cyclic inputs with a logic_error.
        Theorem3Options t3;
        t3.budget = &rung_budget;
        Theorem3Result r = theorem3_decide(net, p_index, t3);
        merge(verdict.unavoidable_success, r.unavoidable_success);
        merge(verdict.success_collab, r.success_collab);
        merge(verdict.success_adversity, r.success_adversity);
        break;
      }
      case Rung::kHeuristic: {
        if (!cyclic) {
          out.detail = "the ||' heuristic implements the Section 4 readings; "
                       "input is acyclic";
          return out;
        }
        CyclicDecision d = cyclic_decide_tree(net, p_index, {}, rung_budget);
        merge(verdict.unavoidable_success, !d.potential_blocking);
        merge(verdict.success_collab, d.success_collab);
        merge(verdict.success_adversity, d.success_adversity);
        break;
      }
      case Rung::kExplicit: {
        GlobalMachine g = global_source ? global_source(net, rung_budget, threads)
                                        : build_global(net, rung_budget, threads);
        if (cyclic) {
          merge(verdict.unavoidable_success, !potential_blocking_cyclic_on(net, g, p_index));
          merge(verdict.success_collab, success_collab_cyclic_on(net, g, p_index));
        } else {
          merge(verdict.unavoidable_success, !potential_blocking_on(net, g, p_index));
          merge(verdict.success_collab, success_collab_on(net, g, p_index));
        }
        if (verdict.adversity_applicable && !verdict.success_adversity.has_value()) {
          Fsp q = compose_context(net, p_index, cyclic, &rung_budget);
          verdict.success_adversity = success_adversity(p, q, rung_budget, cyclic);
        }
        break;
      }
    }
    out.status = OutcomeStatus::kDecided;
    out.detail = render(verdict);
  } catch (const BudgetExceeded& e) {
    out.status = OutcomeStatus::kBudgetExhausted;
    out.detail = e.what();
    out.budget_reason = e.reason();
  } catch (const std::bad_alloc&) {
    // A real (or injected) allocation failure inside a rung is this rung's
    // bytes budget tripping, not a crash: the rung's partial state has
    // unwound, the next rung (or a retry) starts clean.
    out.status = OutcomeStatus::kBudgetExhausted;
    out.detail = "allocation failed (std::bad_alloc) inside this rung";
    out.budget_reason = BudgetDimension::kBytes;
  } catch (const std::logic_error& e) {
    out.status = OutcomeStatus::kUnsupported;
    out.detail = e.what();
  }
  out.states_charged = rung_budget.states_used();
  return out;
}

/// Saturating `limit * 2^attempt` for the escalation schedule; kNoLimit
/// stays kNoLimit.
std::size_t escalate(std::size_t limit, unsigned attempt) {
  if (limit == Budget::kNoLimit) return limit;
  for (unsigned i = 0; i < attempt; ++i) {
    if (limit > Budget::kNoLimit / 2) return Budget::kNoLimit;
    limit *= 2;
  }
  return limit;
}

}  // namespace

std::string AnalysisReport::summary() const {
  std::string s = to_string(status);
  s += ": ";
  s += render(verdict);
  if (decided_by) s += std::string(" (decided by ") + ccfsp::to_string(*decided_by) + ")";
  s += cyclic_semantics ? " [Section 4 readings]" : " [Section 3 readings]";
  return s;
}

AnalysisReport analyze(const Network& net, std::size_t p_index, const AnalyzeOptions& opt) {
  const AnalysisContext ctx{&opt.budget, opt.metrics};
  metrics::ScopedCollect collect(ctx.metrics);
  metrics::ScopedSpan span("analyze");
  AnalysisReport report;
  if (p_index >= net.size()) {
    report.status = OutcomeStatus::kInvalidInput;
    return report;
  }
  report.cyclic_semantics = !net.all_acyclic();
  const Fsp& p = net.process(p_index);
  report.verdict.adversity_applicable = !p.has_tau_moves() && net.size() >= 2;

  std::vector<Rung> ladder = opt.rungs;
  if (ladder.empty()) {
    ladder = report.cyclic_semantics
                 ? std::vector<Rung>{Rung::kUnary, Rung::kHeuristic, Rung::kExplicit}
                 : std::vector<Rung>{Rung::kLinear, Rung::kTree, Rung::kExplicit};
  }

  bool exhausted = false;
  for (Rung rung : ladder) {
    if (report.verdict.complete()) break;
    // A spent deadline / a cancelled token dooms every further rung; record
    // one skip marker and stop rather than burning a fork per rung. The
    // marker carries the spent dimension like every other attempt record —
    // a trace consumer must never have to parse detail strings to learn
    // which wall ended the run.
    if (const BudgetDimension spent = opt.budget.probe(); spent != BudgetDimension::kNone) {
      RungOutcome skip;
      skip.rung = rung;
      skip.status = OutcomeStatus::kBudgetExhausted;
      skip.budget_reason = spent;
      skip.detail = std::string("budget already exhausted (") + to_string(spent) +
                    ") before this rung started";
      report.rungs.push_back(std::move(skip));
      metrics::add(metrics::Counter::kLadderSkips);
      exhausted = true;
      break;
    }
    // One rung, up to 1 + opt.retries attempts: a count-budget trip
    // (states/bytes, including bad_alloc) re-runs the rung under a fork
    // whose count limits double per attempt. Deadline/cancellation trips
    // are final — they would re-trip instantly — and a spent global budget
    // stops the escalation mid-way.
    bool now_complete = false;
    for (unsigned att = 0;; ++att) {
      Budget rung_budget = opt.budget.fork();
      rung_budget.limit_states(escalate(opt.budget.max_states(), att));
      rung_budget.limit_bytes(escalate(opt.budget.max_bytes(), att));
      RungOutcome outcome = attempt(rung, net, p_index, report.cyclic_semantics, rung_budget,
                                    opt.threads == 0 ? 1 : opt.threads, opt.global_source,
                                    report.verdict);
      outcome.attempt = att;
      if (metrics::enabled()) {
        metrics::add(metrics::Counter::kLadderAttempts);
        if (att >= 1) metrics::add(metrics::Counter::kLadderRetries);
        switch (outcome.status) {
          case OutcomeStatus::kDecided:
            metrics::add(metrics::Counter::kLadderDecided);
            break;
          case OutcomeStatus::kBudgetExhausted:
            metrics::add(metrics::Counter::kLadderBudgetTrips);
            break;
          default:
            metrics::add(metrics::Counter::kLadderUnsupported);
            break;
        }
      }
      exhausted |= outcome.status == OutcomeStatus::kBudgetExhausted;
      now_complete = report.verdict.complete();
      const bool retryable = outcome.status == OutcomeStatus::kBudgetExhausted &&
                             (outcome.budget_reason == BudgetDimension::kStates ||
                              outcome.budget_reason == BudgetDimension::kBytes);
      report.rungs.push_back(std::move(outcome));
      if (now_complete || !retryable || att >= opt.retries ||
          opt.budget.probe() != BudgetDimension::kNone) {
        break;
      }
    }
    if (now_complete && !report.decided_by) report.decided_by = rung;
  }

  if (report.verdict.complete()) {
    report.status = OutcomeStatus::kDecided;
  } else if (exhausted) {
    report.status = OutcomeStatus::kBudgetExhausted;
  } else {
    report.status = OutcomeStatus::kUnsupported;
  }
  return report;
}

namespace {

std::string tristate_json(const std::optional<bool>& b) {
  return !b.has_value() ? "null" : (*b ? "true" : "false");
}

}  // namespace

std::string analysis_report_json(const AnalysisReport& report) {
  std::string out = "{\"status\": \"";
  out += to_string(report.status);
  out += "\", \"cyclic_semantics\": ";
  out += report.cyclic_semantics ? "true" : "false";
  if (report.decided_by) {
    out += ", \"decided_by\": \"";
    out += to_string(*report.decided_by);
    out += '"';
  }
  out += ", \"verdict\": {\"unavoidable_success\": " +
         tristate_json(report.verdict.unavoidable_success);
  out += ", \"success_collab\": " + tristate_json(report.verdict.success_collab);
  out += ", \"success_adversity\": " + tristate_json(report.verdict.success_adversity);
  out += ", \"adversity_applicable\": ";
  out += report.verdict.adversity_applicable ? "true" : "false";
  out += "}, \"rungs\": [";
  for (std::size_t i = 0; i < report.rungs.size(); ++i) {
    const RungOutcome& r = report.rungs[i];
    if (i) out += ", ";
    out += "{\"rung\": \"";
    out += to_string(r.rung);
    out += "\", \"status\": \"";
    out += to_string(r.status);
    out += "\", \"attempt\": " + std::to_string(r.attempt);
    out += ", \"states_charged\": " + std::to_string(r.states_charged);
    out += ", \"budget_reason\": \"";
    out += to_string(r.budget_reason);
    out += "\", \"detail\": \"" + metrics::json_escape(r.detail) + "\"}";
  }
  out += "]}";
  return out;
}

std::string observability_document_json(const metrics::Snapshot& snap,
                                        const AnalysisReport* report) {
  // Keep every key in lockstep with docs/observability.md and the
  // golden-schema test — the document is a contract, not a debug dump.
  // v2 added the "build" object (git stamp + snapshot format version) so
  // any archived document traces to the binary that produced it.
  std::string out = "{\n";
  out += "  \"schema_version\": 2,\n";
  out += "  \"build\": {\"version\": \"" + metrics::json_escape(build_git_describe()) +
         "\", \"snapshot_format\": " + std::to_string(kSnapshotFormatVersion) + "},\n";
  out += "  \"counters\": " + metrics::counters_json(snap);
  out += ",\n  \"spans\": " + metrics::span_tree_json(snap);
  if (report) {
    out += ",\n  \"report\": " + analysis_report_json(*report);
  }
  out += "\n}\n";
  return out;
}

}  // namespace ccfsp
