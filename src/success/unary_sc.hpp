// Theorem 4: for a tree network of O(1)-size cyclic processes whose edges
// carry one-symbol alphabets, success-with-collaboration is decidable in
// polynomial time. The normal form of a subtree is a single number — the
// largest count of parent-edge handshakes its composition permits (or
// infinity) — held in binary, since a chain of multiply-by-2 processes makes
// it exponential in m. Each propagation step maximizes a walk through a
// constant-size machine subject to per-child budget constraints; we solve it
// as an exact integer program over edge multiplicities (the stand-in for
// Lenstra's fixed-dimension IP algorithm [Le]; see DESIGN.md).
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "network/network.hpp"
#include "semantics/unary.hpp"

namespace ccfsp {

/// One propagation step: the unary bound of `machine` on `parent_symbol`,
/// given budgets for each child symbol. `machine` must be small — the
/// solver enumerates edge-support subsets (2^|E|); throws if |E| > 20.
UnaryBound unary_reduction_step(const Fsp& machine, ActionId parent_symbol,
                                const std::vector<std::pair<ActionId, UnaryBound>>& budgets);

struct UnaryScResult {
  bool success_collab = false;
  /// The computed budget each neighbor subtree of P offers on its edge
  /// symbol, in neighbor order — the Theorem 4 normal forms (E15's payload).
  std::vector<std::pair<ActionId, UnaryBound>> root_budgets;
};

/// Decide S_c(P, Q) for a tree network with |Sigma_i ∩ Sigma_j| <= 1 on
/// every C_N edge: propagate unary bounds leaves-to-root, then test whether
/// P has an affordable run that reaches a cycle of unbounded symbols.
UnaryScResult unary_success_collab(const Network& net, std::size_t p_index);

}  // namespace ccfsp
