// Random maximal schedules of a network, respecting the continuity rule:
// while any handshake or internal move is enabled, one fires (picked
// uniformly). A differential validator for the analytic deciders — a
// schedule that jams with the distinguished process off-leaf IS a potential
// blocking witness, and a network certified S_u can never produce one —
// and the engine behind demo traces.
#pragma once

#include <cstdint>
#include <vector>

#include "network/network.hpp"
#include "util/rng.hpp"

namespace ccfsp {

struct ScheduleStep {
  std::uint32_t mover;
  std::uint32_t partner;  // == mover for an internal tau move
  ActionId action;        // kTau for internal moves
};

struct SimulationResult {
  std::vector<ScheduleStep> steps;
  std::vector<StateId> final_tuple;
  /// True iff the run ended because nothing was enabled (as opposed to
  /// hitting max_steps, which only cyclic networks do).
  bool stuck = false;
};

SimulationResult simulate_random(const Network& net, std::uint64_t seed,
                                 std::size_t max_steps = 10000);

/// Render a schedule as readable lines (mirrors format_witness).
std::string format_schedule(const Network& net, const SimulationResult& result);

}  // namespace ccfsp
