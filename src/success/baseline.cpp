#include "success/baseline.hpp"

#include "util/graph.hpp"

namespace ccfsp {

namespace {

bool p_at_leaf(const Network& net, const GlobalMachine& g, std::uint32_t state,
               std::size_t p_index) {
  return net.process(p_index).is_leaf(g.tuples[state][p_index]);
}

}  // namespace

bool success_collab_global(const Network& net, std::size_t p_index, std::size_t max_states) {
  GlobalMachine g = build_global(net, max_states);
  for (std::uint32_t s = 0; s < g.num_states(); ++s) {
    if (g.is_stuck(s) && p_at_leaf(net, g, s, p_index)) return true;
  }
  return false;
}

bool potential_blocking_global(const Network& net, std::size_t p_index, std::size_t max_states) {
  GlobalMachine g = build_global(net, max_states);
  for (std::uint32_t s = 0; s < g.num_states(); ++s) {
    if (g.is_stuck(s) && !p_at_leaf(net, g, s, p_index)) return true;
  }
  return false;
}

bool success_collab_cyclic_global(const Network& net, std::size_t p_index,
                                  std::size_t max_states) {
  GlobalMachine g = build_global(net, max_states);
  Digraph d(g.num_states());
  for (std::uint32_t s = 0; s < g.num_states(); ++s) {
    for (const auto& e : g.edges[s]) d.add_edge(s, e.target);
  }
  auto scc = d.scc();
  for (std::uint32_t s = 0; s < g.num_states(); ++s) {
    for (const auto& e : g.edges[s]) {
      if (g.process_moves(e, p_index) && scc.component[s] == scc.component[e.target]) {
        return true;
      }
    }
  }
  return false;
}

bool potential_blocking_cyclic_global(const Network& net, std::size_t p_index,
                                      std::size_t max_states) {
  GlobalMachine g = build_global(net, max_states);
  // Case 1: a reachable stuck state (with no leaves anywhere in a Section 4
  // network, any stall strands P; if P does sit at a leaf there, it has
  // still "stopped moving", which is failure in the cyclic reading).
  for (std::uint32_t s = 0; s < g.num_states(); ++s) {
    if (g.is_stuck(s)) return true;
  }
  // Case 2: a reachable cycle consisting purely of non-P moves — the rest of
  // the network can churn forever while P is starved.
  Digraph d(g.num_states());
  for (std::uint32_t s = 0; s < g.num_states(); ++s) {
    for (const auto& e : g.edges[s]) {
      if (!g.process_moves(e, p_index)) d.add_edge(s, e.target);
    }
  }
  auto scc = d.scc();
  for (std::uint32_t s = 0; s < g.num_states(); ++s) {
    for (const auto& e : g.edges[s]) {
      if (!g.process_moves(e, p_index) && scc.component[s] == scc.component[e.target]) {
        return true;
      }
    }
  }
  return false;
}

}  // namespace ccfsp
