#include "success/baseline.hpp"

#include "util/graph.hpp"

namespace ccfsp {

namespace {

bool p_at_leaf(const Network& net, const GlobalMachine& g, std::uint32_t state,
               std::size_t p_index) {
  return net.process(p_index).is_leaf(g.local_state(state, p_index));
}

}  // namespace

bool success_collab_on(const Network& net, const GlobalMachine& g, std::size_t p_index) {
  for (std::uint32_t s = 0; s < g.num_states(); ++s) {
    if (g.is_stuck(s) && p_at_leaf(net, g, s, p_index)) return true;
  }
  return false;
}

bool potential_blocking_on(const Network& net, const GlobalMachine& g, std::size_t p_index) {
  for (std::uint32_t s = 0; s < g.num_states(); ++s) {
    if (g.is_stuck(s) && !p_at_leaf(net, g, s, p_index)) return true;
  }
  return false;
}

bool success_collab_cyclic_on(const Network& net, const GlobalMachine& g,
                              std::size_t p_index) {
  (void)net;
  Digraph d(g.num_states());
  for (std::uint32_t s = 0; s < g.num_states(); ++s) {
    for (std::uint32_t t : g.out_targets(s)) d.add_edge(s, t);
  }
  auto scc = d.scc();
  for (std::uint32_t s = 0; s < g.num_states(); ++s) {
    for (std::uint32_t k = g.edge_offsets[s]; k < g.edge_offsets[s + 1]; ++k) {
      if (g.process_moves(k, p_index) && scc.component[s] == scc.component[g.target(k)]) {
        return true;
      }
    }
  }
  return false;
}

bool potential_blocking_cyclic_on(const Network& net, const GlobalMachine& g,
                                  std::size_t p_index) {
  (void)net;
  // Case 1: a reachable stuck state (with no leaves anywhere in a Section 4
  // network, any stall strands P; if P does sit at a leaf there, it has
  // still "stopped moving", which is failure in the cyclic reading).
  for (std::uint32_t s = 0; s < g.num_states(); ++s) {
    if (g.is_stuck(s)) return true;
  }
  // Case 2: a reachable cycle consisting purely of non-P moves — the rest of
  // the network can churn forever while P is starved.
  Digraph d(g.num_states());
  for (std::uint32_t s = 0; s < g.num_states(); ++s) {
    for (std::uint32_t k = g.edge_offsets[s]; k < g.edge_offsets[s + 1]; ++k) {
      if (!g.process_moves(k, p_index)) d.add_edge(s, g.target(k));
    }
  }
  auto scc = d.scc();
  for (std::uint32_t s = 0; s < g.num_states(); ++s) {
    for (std::uint32_t k = g.edge_offsets[s]; k < g.edge_offsets[s + 1]; ++k) {
      if (!g.process_moves(k, p_index) && scc.component[s] == scc.component[g.target(k)]) {
        return true;
      }
    }
  }
  return false;
}

bool success_collab_global(const Network& net, std::size_t p_index, const Budget& budget) {
  GlobalMachine g = build_global(net, budget);
  return success_collab_on(net, g, p_index);
}

bool potential_blocking_global(const Network& net, std::size_t p_index, const Budget& budget) {
  GlobalMachine g = build_global(net, budget);
  return potential_blocking_on(net, g, p_index);
}

bool success_collab_cyclic_global(const Network& net, std::size_t p_index,
                                  const Budget& budget) {
  GlobalMachine g = build_global(net, budget);
  return success_collab_cyclic_on(net, g, p_index);
}

bool potential_blocking_cyclic_global(const Network& net, std::size_t p_index,
                                      const Budget& budget) {
  GlobalMachine g = build_global(net, budget);
  return potential_blocking_cyclic_on(net, g, p_index);
}

bool success_collab_global(const Network& net, std::size_t p_index, std::size_t max_states) {
  return success_collab_global(net, p_index, Budget::with_states(max_states));
}

bool potential_blocking_global(const Network& net, std::size_t p_index,
                               std::size_t max_states) {
  return potential_blocking_global(net, p_index, Budget::with_states(max_states));
}

bool success_collab_cyclic_global(const Network& net, std::size_t p_index,
                                  std::size_t max_states) {
  return success_collab_cyclic_global(net, p_index, Budget::with_states(max_states));
}

bool potential_blocking_cyclic_global(const Network& net, std::size_t p_index,
                                      std::size_t max_states) {
  return potential_blocking_cyclic_global(net, p_index, Budget::with_states(max_states));
}

}  // namespace ccfsp
