// Proposition 1: for networks of linear FSPs there are no meaningful
// choices, all three success notions coincide, and they can be decided in
// linear time by occurrence matching + dependency-cycle detection.
#pragma once

#include "network/network.hpp"

namespace ccfsp {

/// The common value of S_u = S_a = S_c for an all-linear network.
/// Throws std::logic_error if some process is not linear.
bool linear_network_success(const Network& net, std::size_t p_index);

}  // namespace ccfsp
