// Helpers for the two-process view of a network: P = the distinguished
// process, Q = the composition of everything else (Section 3 preamble).
#pragma once

#include "algebra/compose.hpp"
#include "network/network.hpp"
#include "util/budget.hpp"
#include "util/metrics.hpp"

namespace ccfsp {

/// The per-run ambient state the success-layer entry points thread through
/// their helpers: the governing budget and the optional metrics sink.
/// Counters and spans are recorded through the process-wide registry (hot
/// code must not chase a pointer per event), so the sink here is the
/// *destination* — the ScopedCollect wrapping the run snapshots into it —
/// and carrying it in the context keeps ownership explicit end to end.
struct AnalysisContext {
  const Budget* budget = nullptr;
  metrics::MetricsSink* metrics = nullptr;
};

/// Q = P_2 || P_3 || ... || P_m, folding every process except p_index.
/// Symbols internal to the context are hidden by ||; symbols shared with P
/// stay visible. With `cyclic` set, uses the Section 4 operator ||' so that
/// tau-divergence inside the context is materialized as leaves. A budget
/// bounds every intermediate composite of the fold.
inline Fsp compose_context(const Network& net, std::size_t p_index, bool cyclic = false,
                           const Budget* budget = nullptr) {
  std::vector<const Fsp*> rest;
  for (std::size_t i = 0; i < net.size(); ++i) {
    if (i != p_index) rest.push_back(&net.process(i));
  }
  Fsp q = compose_all(rest, cyclic, budget);
  if (cyclic && rest.size() == 1) q = add_divergence_leaves(q);
  return q;
}

}  // namespace ccfsp
