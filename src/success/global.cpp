#include "success/global.hpp"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>

#include "fsp/action_index.hpp"
#include "util/failpoint.hpp"
#include "util/flat_interner.hpp"
#include "util/metrics.hpp"

namespace ccfsp {

namespace {

// Estimated retained bytes per interned tuple in the flat build: the packed
// tuple itself, its hash slot (with load-factor slack), its CSR offset, and
// an amortized share of the edge array.
std::size_t flat_bytes_per_state(std::size_t m) { return m * sizeof(StateId) + 48; }

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Upper bound on the reachable state count: the product of the component
/// state counts, saturated. Used as a capacity hint — a small product means
/// the whole build fits a pre-sized arena and edge buffer, so tiny corpus
/// models pay no rehash/regrow overhead at all (the "small-model fast path"
/// is the same code, minus every reallocation).
std::size_t product_bound(const Network& net) {
  constexpr std::size_t kCap = std::size_t{1} << 20;
  std::size_t prod = 1;
  for (std::size_t i = 0; i < net.size(); ++i) {
    const std::size_t ns = net.process(i).num_states();
    if (ns == 0) return 0;
    if (prod > kCap / ns) return kCap;
    prod *= ns;
  }
  return prod;
}

/// Arena capacity hint derived from the product bound: exact for small
/// models, clamped low for big ones. The clamp is deliberately modest —
/// reachable states usually sit far below the product, the arena's 4x
/// growth amortizes cheaply on models that do explode, and a large upfront
/// slot block (zeroed on construction) is pure fixed cost on the tiny
/// models where the flat build has to beat the map-based reference on
/// microseconds.
std::size_t expected_states_hint(const Network& net) {
  constexpr std::size_t kClamp = 256;
  return std::max<std::size_t>(16, std::min(product_bound(net), kClamp));
}

/// One local transition with everything the expansion inner loop needs
/// precomputed at flatten time: the handshake partner, the partner's dense
/// action slot in its ActionIndex cell table, the Zobrist hash delta of the
/// mover's coordinate change, and the mover's packed-patch bits. Transitions
/// that can never emit an edge from this side — handshakes whose partner has
/// a lower process id (the pair is emitted from the lower side) or whose
/// partner never fires the action — are dropped entirely.
struct FlatTr {
  std::uint64_t zdelta;   // zob(i, source) ^ zob(i, target)
  std::uint32_t set_i;    // (target & mask_i) << shift_i, ORed after clear
  std::uint32_t partner;  // == owning process for tau moves
  std::uint32_t slot;     // partner's dense action slot (handshakes only)
  ActionId action;
};

/// Every process's surviving transitions as one shared CSR (declaration
/// order kept, processes concatenated). Fsp stores a heap-allocated vector
/// per state; the expansion loop touches a random state of every process
/// for every global state, so the copy buys locality for the price of one
/// pass over each process — and packing all processes into two arrays
/// keeps the flatten to three allocations total, part of the small-model
/// fixed cost the bench's flat-vs-reference gate measures.
struct FlatNet {
  std::vector<FlatTr> tr;           // all processes, concatenated
  std::vector<std::uint32_t> off;   // process i, state q: off[base[i]+q .. +q+1]
  std::vector<std::uint32_t> base;  // per process, start index into off
};

struct Packer;  // fwd
struct Zobrist;

FlatNet flatten_processes(
    const Network& net, const std::vector<ActionIndex>& index,
    const std::vector<std::pair<std::uint32_t, std::uint32_t>>& owners, const Packer& packer,
    const Zobrist& zob);

/// Raw per-process view of an ActionIndex cell table, hoisted out of the
/// expansion loop so a handshake lookup is one multiply-add and one load.
struct IdxRef {
  const std::pair<std::uint32_t, std::uint32_t>* cells;
  const StateId* targets;
  std::size_t slots;
};

/// Bit-packs an m-tuple of local states: coordinate i takes
/// bit_width(|Q_i| - 1) bits (min 1) and never straddles a 32-bit word
/// boundary, so a patch is one masked OR. Interning packed keys shrinks the
/// probe working set by ~4-8x (phil:12 drops from 24 words to 3), which is
/// what keeps the hash table's payload compares inside the cache. The
/// machine keeps the packed block as GlobalMachine::tuple_words — no decode
/// pass on the way out, and a ~12x smaller per-state tuple footprint.
struct Packer {
  struct Coord {
    std::uint32_t word, shift, mask;
    std::uint32_t clear;  // ~(mask << shift): the word with this coord blanked
  };
  std::vector<Coord> coord;
  std::uint32_t words = 1;

  explicit Packer(const Network& net) {
    std::uint32_t w = 0, used = 0;
    coord.reserve(net.size());
    for (std::size_t i = 0; i < net.size(); ++i) {
      const auto ns = static_cast<std::uint64_t>(net.process(i).num_states());
      std::uint32_t bits = 1;
      while ((1ull << bits) < ns) ++bits;
      if (used + bits > 32) {
        ++w;
        used = 0;
      }
      const std::uint32_t mask = bits >= 32 ? 0xffffffffu : (1u << bits) - 1;
      coord.push_back({w, used, mask, ~(mask << used)});
      used += bits;
    }
    words = w + 1;
  }

  void pack(const StateId* tuple, std::uint32_t* out) const {
    for (std::uint32_t k = 0; k < words; ++k) out[k] = 0;
    for (std::size_t i = 0; i < coord.size(); ++i) {
      out[coord[i].word] |= (tuple[i] & coord[i].mask) << coord[i].shift;
    }
  }
  void unpack(const std::uint32_t* packed, StateId* out) const {
    for (std::size_t i = 0; i < coord.size(); ++i) {
      out[i] = (packed[coord[i].word] >> coord[i].shift) & coord[i].mask;
    }
  }

  /// The public Field table of this packing (what GlobalMachine retains).
  std::vector<GlobalMachine::Field> fields() const {
    std::vector<GlobalMachine::Field> out;
    out.reserve(coord.size());
    for (const Coord& c : coord) out.push_back({c.word, c.shift, c.mask});
    return out;
  }
};

/// Zobrist table: an independent random 64-bit key per (process, local
/// state). A tuple hashes to the XOR of its coordinates' keys, so a
/// successor differing in one or two coordinates is re-hashed in O(1)
/// instead of O(m) — the intern loop is the hottest path in the engine and
/// hashing was the largest term in it.
struct Zobrist {
  std::vector<std::uint64_t> keys;  // one flat block, process i at off[i]
  std::vector<std::uint32_t> off;

  explicit Zobrist(const Network& net) {
    off.reserve(net.size());
    for (std::size_t i = 0; i < net.size(); ++i) {
      off.push_back(static_cast<std::uint32_t>(keys.size()));
      for (std::size_t q = 0; q < net.process(i).num_states(); ++q) {
        keys.push_back(splitmix64((static_cast<std::uint64_t>(i) << 32) | q));
      }
    }
  }

  std::uint64_t key(std::uint32_t i, StateId q) const { return keys[off[i] + q]; }

  std::uint64_t of_tuple(const StateId* tuple, std::size_t m) const {
    std::uint64_t h = 0;
    for (std::size_t i = 0; i < m; ++i) h ^= key(static_cast<std::uint32_t>(i), tuple[i]);
    return h;
  }
};

FlatNet flatten_processes(
    const Network& net, const std::vector<ActionIndex>& index,
    const std::vector<std::pair<std::uint32_t, std::uint32_t>>& owners, const Packer& packer,
    const Zobrist& zob) {
  FlatNet fn;
  std::size_t states_total = 0, trans_total = 0;
  for (std::uint32_t i = 0; i < net.size(); ++i) {
    states_total += net.process(i).num_states();
    trans_total += net.process(i).num_transitions();
  }
  fn.base.reserve(net.size());
  fn.off.reserve(states_total + net.size());
  fn.tr.reserve(trans_total);
  for (std::uint32_t i = 0; i < net.size(); ++i) {
    const Fsp& p = net.process(i);
    const Packer::Coord ci = packer.coord[i];
    fn.base.push_back(static_cast<std::uint32_t>(fn.off.size()));
    fn.off.push_back(static_cast<std::uint32_t>(fn.tr.size()));
    for (StateId q = 0; q < p.num_states(); ++q) {
      for (const Transition& t : p.out(q)) {
        FlatTr ft;
        ft.zdelta = zob.key(i, q) ^ zob.key(i, t.target);
        ft.set_i = (t.target & ci.mask) << ci.shift;
        ft.action = t.action;
        if (t.action == kTau) {
          ft.partner = i;
          ft.slot = 0;
        } else {
          auto [o1, o2] = owners[t.action];
          ft.partner = (o1 == i) ? o2 : o1;
          if (ft.partner < i) continue;  // the lower side emits this pair
          ft.slot = index[ft.partner].slot_of(t.action);
          if (ft.slot == UINT32_MAX) continue;  // partner never fires it
        }
        fn.tr.push_back(ft);
      }
      fn.off.push_back(static_cast<std::uint32_t>(fn.tr.size()));
    }
  }
  return fn;
}

/// Enumerate the Definition 3 successors of `tuple` in the canonical order
/// every build mode shares: processes ascending, each process's transitions
/// in declaration order, handshake partner targets in declaration order.
/// `tuple` is the unpacked parent, `pscratch` its packed form; each emitted
/// successor patches the one or two moved coordinates of `pscratch` (and the
/// Zobrist hash) in O(1), emits, and restores — the emit callback sees the
/// successor's packed key and hash.
template <typename Emit>
void expand_tuple(const FlatNet& fn, const std::vector<IdxRef>& idx,
                  const Packer& packer, const Zobrist& zob, const StateId* tuple,
                  std::uint64_t h, std::uint32_t m, std::uint32_t* pscratch, Emit&& emit) {
  for (std::uint32_t i = 0; i < m; ++i) {
    const StateId qi = tuple[i];
    const std::uint32_t bi = fn.base[i] + qi;
    std::uint32_t k = fn.off[bi];
    const std::uint32_t kend = fn.off[bi + 1];
    if (k == kend) continue;
    const Packer::Coord ci = packer.coord[i];
    const std::uint32_t save_i = pscratch[ci.word];
    const std::uint32_t base_i = save_i & ci.clear;
    for (; k < kend; ++k) {
      const FlatTr& t = fn.tr[k];
      const std::uint32_t j = t.partner;
      if (j == i) {  // tau move
        pscratch[ci.word] = base_i | t.set_i;
        emit(i, i, kTau, h ^ t.zdelta);
        pscratch[ci.word] = save_i;
      } else {  // handshake; j > i and the slot are precomputed
        const StateId qj = tuple[j];
        const IdxRef& rj = idx[j];
        const auto cell = rj.cells[static_cast<std::size_t>(qj) * rj.slots + t.slot];
        if (cell.first == cell.second) continue;
        pscratch[ci.word] = base_i | t.set_i;
        const Packer::Coord cj = packer.coord[j];
        const std::uint32_t base_j = pscratch[cj.word] & cj.clear;  // sees i's patch
        // Row pointers hoisted into locals: emit's stores are uint32_t/
        // uint64_t writes the compiler must assume alias the tables, so
        // without these it re-loads zob.off[j] on every emitted edge.
        const std::uint64_t* const zj = zob.keys.data() + zob.off[j];
        const StateId* const tj = rj.targets;
        const std::uint64_t hi = h ^ t.zdelta ^ zj[qj];
        for (std::uint32_t e = cell.first; e < cell.second; ++e) {
          const StateId u = tj[e];
          pscratch[cj.word] = base_j | ((u & cj.mask) << cj.shift);
          emit(i, j, t.action, hi ^ zj[u]);
        }
        // Restore j's coordinate first, then i's whole word — the order makes
        // the shared-word case (base_j already carries i's patch) come out
        // right.
        pscratch[cj.word] = base_j | ((qj & cj.mask) << cj.shift);
        pscratch[ci.word] = save_i;
      }
    }
  }
}

/// Growable struct-of-arrays edge buffer for the builders: three uint32
/// columns (target, action, (mover<<16)|partner) grown together, so the hot
/// emission loop pays one capacity check per edge instead of three
/// std::vector bookkeeping updates.
struct EdgeCols {
  // realloc-backed columns: the arena hint clamps low on purpose, so big
  // models grow these from ~1K to millions of edges — with realloc, glibc
  // extends the large mmap'd blocks in place (mremap) instead of copying
  // ~2x the final column bytes the way new[]+memcpy doubling would.
  struct Buf {
    std::uint32_t* p = nullptr;
    ~Buf() { std::free(p); }
    Buf() = default;
    Buf(const Buf&) = delete;
    Buf& operator=(const Buf&) = delete;
    Buf(Buf&& o) noexcept : p(o.p) { o.p = nullptr; }
    Buf& operator=(Buf&& o) noexcept {
      std::swap(p, o.p);
      return *this;
    }
    std::uint32_t* get() const { return p; }
    void extend(std::size_t ncap) {
      void* np = std::realloc(p, ncap * sizeof(std::uint32_t));
      if (np == nullptr) throw std::bad_alloc();
      p = static_cast<std::uint32_t*>(np);
    }
  };
  Buf tgt, act, pair;
  std::size_t n = 0, cap = 0;

  void reserve(std::size_t need) {
    if (need <= cap) return;
    std::size_t ncap = cap == 0 ? 1024 : cap * 2;
    while (ncap < need) ncap *= 2;
    tgt.extend(ncap);
    act.extend(ncap);
    pair.extend(ncap);
    cap = ncap;
  }

  void push(std::uint32_t target, std::uint32_t action, std::uint32_t movers) {
    if (n == cap) reserve(n + 1);
    tgt.p[n] = target;
    act.p[n] = action;
    pair.p[n] = movers;
    ++n;
  }
};

/// Exact-capacity copy of a vector (reserve-then-insert, so capacity ==
/// size on every mainstream allocator). All build modes finalize through
/// this, which is what makes memory_bytes() — and the csr.bytes counter —
/// equal across them.
template <typename T>
std::vector<T> exact_fit(std::vector<T>&& v) {
  if (v.capacity() == v.size()) return std::move(v);
  std::vector<T> out;
  out.reserve(v.size());
  out.insert(out.end(), v.begin(), v.end());
  return out;
}

std::vector<std::uint32_t> exact_fit(const std::uint32_t* data, std::size_t n) {
  std::vector<std::uint32_t> out;
  out.reserve(n);
  out.insert(out.end(), data, data + n);
  return out;
}

/// Move the builder's edge columns and offsets into the machine at exact
/// capacity and record the retained footprint.
void finalize_machine(GlobalMachine& g, EdgeCols&& cols,
                      std::vector<std::uint32_t>&& offsets) {
  g.edge_target = exact_fit(cols.tgt.get(), cols.n);
  g.edge_action = exact_fit(cols.act.get(), cols.n);
  g.edge_pair = exact_fit(cols.pair.get(), cols.n);
  cols = EdgeCols{};
  g.edge_offsets = exact_fit(std::move(offsets));
  metrics::record_max(metrics::Counter::kCsrBytes, g.memory_bytes());
}

GlobalMachine build_sequential(const Network& net, const Budget& budget,
                               const FlatNet& procs,
                               const std::vector<IdxRef>& idx, const Packer& packer,
                               const Zobrist& zob, std::size_t expected,
                               const CheckpointOptions* ckpt = nullptr) {
  const std::uint32_t m = static_cast<std::uint32_t>(net.size());
  const std::size_t bytes_per_state = flat_bytes_per_state(m);

  const std::uint32_t W = packer.words;
  TupleArena arena(W, expected);
  GlobalMachine g;
  g.width = m;
  g.words = W;
  g.fields = packer.fields();

  std::vector<std::uint32_t> offsets;
  offsets.reserve(expected + 1);
  EdgeCols cols;
  cols.reserve(expected * 4);

  // Successors are staged into a *wave*: a contiguous SoA buffer of packed
  // keys and hashes filled across many source states, then resolved by one
  // TupleArena::intern_batch call that prefetches every home slot before any
  // probe runs. The wave spans state boundaries, so the prefetch pipeline is
  // hundreds of keys deep instead of one state's out-degree — that depth is
  // what hides the table's cache misses on models past the LLC. Resolution
  // order equals emission order, so the dense numbering (and with it every
  // bit-identity oracle) is exactly the one-at-a-time loop's. The two edge
  // columns that don't depend on the target id (action, pair) are written
  // straight into the CSR at their final offsets at emit time, and
  // intern_batch writes resolved ids straight into the target column — no
  // bounce buffers, no bulk copy at flush. Per-source edge counts are staged
  // alongside so the offsets column is rebuilt at flush time.
  constexpr std::size_t kWaveKeys = 256;

  // Exact bound on one state's successor count, from the static structure:
  // per process the widest fan-out any local state contributes (tau moves
  // count 1, handshakes the largest partner cell for that slot), summed.
  // Sized to it, the wave buffers never reallocate, so the emit path below
  // is pure stores through hoisted pointers — no capacity check per edge.
  std::size_t max_out = 0;
  for (std::uint32_t i = 0; i < m; ++i) {
    std::size_t widest = 0;
    const std::size_t nq = net.process(i).num_states();
    for (std::size_t q = 0; q < nq; ++q) {
      const std::uint32_t bi = procs.base[i] + static_cast<std::uint32_t>(q);
      std::size_t s = 0;
      for (std::uint32_t k = procs.off[bi]; k < procs.off[bi + 1]; ++k) {
        const FlatTr& t = procs.tr[k];
        if (t.partner == i) {
          ++s;
          continue;
        }
        const IdxRef& rj = idx[t.partner];
        const std::size_t nqj = net.process(t.partner).num_states();
        std::size_t cmax = 0;
        for (std::size_t qj = 0; qj < nqj; ++qj) {
          const auto cell = rj.cells[qj * rj.slots + t.slot];
          cmax = std::max(cmax, static_cast<std::size_t>(cell.second - cell.first));
        }
        s += cmax;
      }
      widest = std::max(widest, s);
    }
    max_out += widest;
  }

  const std::size_t wave_cap = kWaveKeys + max_out;
  struct Wave {
    std::vector<std::uint32_t> words;    // n * W packed successor keys
    std::vector<std::uint64_t> hash;     // n Zobrist hashes
    std::vector<std::uint32_t> src_len;  // per staged source: its edge count
    std::size_t n = 0;                   // staged keys (logical size)
  } wave;
  wave.words.resize(wave_cap * W);
  wave.hash.resize(wave_cap);
  wave.src_len.reserve(2 * kWaveKeys);

  std::vector<StateId> cur_tuple(m);
  std::vector<std::uint32_t> pscratch(W, 0);
  std::uint32_t start_cur = 0;
  if (ckpt != nullptr && ckpt->resume != nullptr) {
    // Resume: re-intern the image's tuples in id order. The arena assigns
    // dense ids in insertion order and Zobrist keys are a pure function of
    // (process, local state), so the restored arena — ids, hashes, packed
    // payload — is bit-identical to the one the checkpointed run held.
    // Restored states are charged like fresh interns: a resumed run must
    // hit the same budget walls as an uninterrupted one.
    const GlobalBuildProgress& r = *ckpt->resume;
    const std::size_t restored = r.words == 0 ? 0 : r.tuple_words.size() / r.words;
    const std::size_t redges = r.edge_target.size();
    if (r.words != W || r.tuple_words.size() != restored * W || restored == 0 ||
        restored > UINT32_MAX || r.cursor > restored ||
        r.edge_offsets.size() != static_cast<std::size_t>(r.cursor) + 1 ||
        r.edge_offsets.front() != 0 || r.edge_offsets.back() != redges ||
        r.edge_action.size() != redges || r.edge_pair.size() != redges) {
      throw std::invalid_argument("build_global: inconsistent resume image");
    }
    for (std::size_t t = 0; t < restored; ++t) {
      std::memcpy(pscratch.data(), r.tuple_words.data() + t * W, W * sizeof(std::uint32_t));
      packer.unpack(pscratch.data(), cur_tuple.data());
      const auto [id, fresh] = arena.intern(pscratch.data(), zob.of_tuple(cur_tuple.data(), m));
      if (!fresh || id != t) {
        throw std::invalid_argument("build_global: duplicate tuple in resume image");
      }
      budget.charge(1, bytes_per_state, "build_global");
    }
    cols.reserve(redges);
    for (std::size_t k = 0; k < redges; ++k) {
      if (r.edge_target[k] >= restored) {
        throw std::invalid_argument("build_global: dangling edge in resume image");
      }
      cols.push(r.edge_target[k], r.edge_action[k], r.edge_pair[k]);
    }
    offsets.assign(r.edge_offsets.begin(), r.edge_offsets.end());
    start_cur = r.cursor;
    metrics::add(metrics::Counter::kGlobalStates, restored);
    metrics::add(metrics::Counter::kGlobalEdges, redges);
    metrics::add(metrics::Counter::kCheckpointResumes);
    metrics::add(metrics::Counter::kCheckpointResumedStates, restored);
  } else {
    offsets.push_back(0);
    for (std::size_t i = 0; i < m; ++i) cur_tuple[i] = net.process(i).start();
    packer.pack(cur_tuple.data(), pscratch.data());
    arena.intern(pscratch.data(), zob.of_tuple(cur_tuple.data(), m));
    budget.charge(1, bytes_per_state, "build_global");
    metrics::add(metrics::Counter::kGlobalStates);
    // Level 0 is the initial state alone — counted here so the sequential
    // build reports the same global.levels total as the parallel one (which
    // counts every non-empty frontier it processes).
    if (metrics::enabled()) {
      metrics::add(metrics::Counter::kGlobalLevels);
      metrics::record_max(metrics::Counter::kGlobalFrontierPeak, 1);
    }
  }

  // Gather-free edge emission: the action and mover-pair columns are staged
  // *directly* into the CSR at their final offsets (the wave only buffers
  // what interning needs — keys and hashes), and intern_batch writes the
  // resolved ids straight into the target column. ensure_stage keeps one
  // wave's worth of headroom reserved so the emit path never checks
  // capacity; ca/cp are re-hoisted whenever the reserve reallocates.
  std::uint32_t* ca = nullptr;
  std::uint32_t* cp = nullptr;
  auto ensure_stage = [&] {
    cols.reserve(cols.n + wave_cap);
    ca = cols.act.get();
    cp = cols.pair.get();
  };
  ensure_stage();

  auto flush_wave = [&] {
    const std::size_t n = wave.n;
    if (n != 0) {
      // Resolved ids land in the reserved tgt stripe — no bounce buffer.
      const TupleArena::BatchStats st = arena.intern_batch(
          wave.words.data(), wave.hash.data(), n, cols.tgt.get() + cols.n);
      if (st.fresh != 0) {
        // Same totals as the one-at-a-time loop, coarser trip points — the
        // precedent the parallel build's per-level charge set.
        budget.charge(st.fresh, st.fresh * bytes_per_state, "build_global");
      }
      cols.n += n;
      if (metrics::enabled()) {
        metrics::add(metrics::Counter::kGlobalStates, st.fresh);
        metrics::add(metrics::Counter::kGlobalEdges, n);
        metrics::add(metrics::Counter::kGlobalRingInterns, n);
        metrics::add(metrics::Counter::kInternWaves);
        metrics::add(metrics::Counter::kInternWaveKeys, n);
        metrics::add(metrics::Counter::kInternWaveConflicts, st.conflicts);
      }
    }
    // Offsets for every source staged in this wave (zero-successor states
    // included): offsets.back() == cols.n - n held before the append, so the
    // running sum lands exactly on the new cols.n.
    std::uint32_t acc = static_cast<std::uint32_t>(cols.n - n);
    for (const std::uint32_t c : wave.src_len) {
      acc += c;
      offsets.push_back(acc);
    }
    wave.n = 0;
    wave.src_len.clear();
    ensure_stage();
  };

  std::uint32_t cur = start_cur;
  std::size_t level_end = arena.size();
  // Staging pointers, hoisted: the wave buffers are sized once and never
  // reallocate, so the emit lambda writes through them unconditionally. The
  // edge columns (ca/cp) are refreshed by ensure_stage whenever cols grows.
  std::uint32_t* const ww = wave.words.data();
  std::uint64_t* const wh = wave.hash.data();
  for (;;) {
    if (cur >= level_end) {
      // BFS level boundary: everything below level_end is expanded and
      // staged; completing the wave materializes the whole next level.
      // (On resume the restored prefix counts as one level — global.levels
      // is an execution-shape counter, not part of the machine.)
      flush_wave();
      if (cur == arena.size()) break;  // wave added nothing: build complete
      if (metrics::enabled()) {
        metrics::add(metrics::Counter::kGlobalLevels);
        metrics::record_max(metrics::Counter::kGlobalFrontierPeak, arena.size() - level_end);
      }
      level_end = arena.size();
    }
    // Injection seam: per expanded state, NOT per edge — the disarmed check
    // must stay invisible on the phil:12 profile (bench_failpoint.cpp).
    // Metrics follow the same rule: per-wave deltas, never per-edge adds.
    failpoint::hit("global.intern_ring");
    // Copy: the arena's packed block may reallocate as the wave interns.
    std::memcpy(pscratch.data(), arena[cur], W * sizeof(std::uint32_t));
    packer.unpack(pscratch.data(), cur_tuple.data());
    const std::uint64_t cur_hash = arena.hash_of(cur);
    const std::size_t staged_before = wave.n;
    const std::uint32_t* const ps = pscratch.data();
    // wn lives in a register across the whole expansion: wave.n is a struct
    // member the compiler would reload per edge (wh's uint64_t stores may
    // alias it). Same story for the cols.n-offset column bases.
    std::size_t wn = staged_before;
    std::uint32_t* const cab = ca + cols.n;
    std::uint32_t* const cpb = cp + cols.n;
    expand_tuple(procs, idx, packer, zob, cur_tuple.data(), cur_hash, m, pscratch.data(),
                 [&](std::uint32_t i, std::uint32_t j, ActionId a, std::uint64_t h) {
                   // Pure stores: wave_cap bounds this state's fan-out, so no
                   // buffer can need growth mid-state (flush runs below).
                   const std::size_t at = wn++;
                   std::uint32_t* const wp = ww + at * W;
                   for (std::uint32_t k = 0; k < W; ++k) wp[k] = ps[k];
                   wh[at] = h;
                   cab[at] = a;
                   cpb[at] = (i << 16) | j;
                 });
    wave.n = wn;
    wave.src_len.push_back(static_cast<std::uint32_t>(wn - staged_before));
    ++cur;
    if (wave.n >= kWaveKeys) flush_wave();
    if (ckpt != nullptr && ckpt->on_checkpoint && ckpt->interval_states != 0 &&
        static_cast<std::size_t>(cur) % ckpt->interval_states == 0) {
      // State boundary: flush first so offsets cover every expanded state
      // and the image is self-consistent by construction. The copies are the
      // price of durability and scale with what is being made durable.
      flush_wave();
      GlobalBuildProgress progress;
      progress.words = W;
      progress.cursor = cur;
      progress.tuple_words.assign(arena[0], arena[0] + arena.size() * W);
      progress.edge_target.assign(cols.tgt.get(), cols.tgt.get() + cols.n);
      progress.edge_action.assign(cols.act.get(), cols.act.get() + cols.n);
      progress.edge_pair.assign(cols.pair.get(), cols.pair.get() + cols.n);
      progress.edge_offsets = offsets;
      ckpt->on_checkpoint(progress);
    }
  }
  // The packed arena block *is* the machine's tuple storage — no decode pass.
  g.tuple_words = exact_fit(arena.release_data());
  finalize_machine(g, std::move(cols), std::move(offsets));
  return g;
}

/// Parallel level-synchronous BFS on a persistent worker pool. Tuples are
/// interned into `threads` shards selected by hash; workers claim fixed-size
/// chunks of the current frontier off a shared cursor (one atomic per chunk,
/// one synchronization per level) and record each source's edges as one
/// contiguous run in a worker-local buffer. The final sequential renumber
/// pass — a BFS over the runs in canonical edge order — is agnostic to which
/// worker claimed which chunk, so it reproduces the sequential numbering
/// exactly no matter how the chunks raced.
GlobalMachine build_parallel(const Network& net, const Budget& budget, unsigned threads,
                             const FlatNet& procs, const std::vector<IdxRef>& idx,
                             const Packer& packer, const Zobrist& zob, std::size_t expected) {
  const std::uint32_t m = static_cast<std::uint32_t>(net.size());
  const std::size_t bytes_per_state = flat_bytes_per_state(m);
  const unsigned T = threads;

  struct PEdge {
    std::uint64_t ptarget;  // (shard << 32) | shard-local id
    std::uint32_t mover;
    std::uint32_t partner;
    ActionId action;
  };
  struct Run {
    std::uint32_t worker = 0;
    std::uint32_t begin = 0;
    std::uint32_t count = 0;
  };
  struct Shard {
    explicit Shard(std::size_t width, std::size_t expected_per_shard)
        : arena(width, expected_per_shard) {}
    TupleArena arena;
    std::mutex mu;
    std::vector<std::uint32_t> fresh;  // locals interned this level
    std::vector<Run> runs;             // per local id, filled when expanded
  };

  const std::uint32_t W = packer.words;
  std::deque<Shard> shards;  // deque: Shard holds a mutex and cannot move
  for (unsigned s = 0; s < T; ++s) shards.emplace_back(W, std::max<std::size_t>(16, expected / T));
  std::vector<std::vector<PEdge>> worker_edges(T);
  std::vector<std::vector<std::uint32_t>> worker_pscratch(T);
  std::vector<std::vector<StateId>> worker_tuple(T);
  // Worker-local per-shard staging: successors accumulate by home shard and
  // are interned as one intern_batch per shard per flush — one lock
  // acquisition per wave instead of one per edge, and the batch's prefetch
  // pipeline runs under the lock where the misses actually happen. Edges are
  // recorded at emit time with the target patched in at flush (runs index
  // into the edge vector by position, so late patching is invisible to the
  // renumber pass; aborted levels discard the vectors wholesale).
  struct ShardStage {
    std::vector<std::uint32_t> words;     // n * W packed keys
    std::vector<std::uint64_t> hash;      // n hashes
    std::vector<std::size_t> edge_idx;    // n indices into the worker's edges
    std::vector<std::uint32_t> ids;       // intern_batch output
    std::vector<std::uint8_t> fresh;      // intern_batch fresh flags
  };
  std::vector<std::vector<ShardStage>> worker_stage(T);
  for (unsigned w = 0; w < T; ++w) {
    worker_pscratch[w].assign(W, 0);
    worker_tuple[w].assign(m, 0);
    worker_stage[w].resize(T);
  }
  constexpr std::size_t kWaveKeys = 256;  // staged keys per worker before a flush

  auto provisional = [](std::uint32_t shard, std::uint32_t local) {
    return (static_cast<std::uint64_t>(shard) << 32) | local;
  };

  // Intern the initial tuple.
  std::vector<StateId> init(m);
  std::vector<std::uint32_t> init_packed(W);
  for (std::size_t i = 0; i < m; ++i) init[i] = net.process(i).start();
  packer.pack(init.data(), init_packed.data());
  const std::uint64_t init_hash = zob.of_tuple(init.data(), m);
  const std::uint32_t init_shard = static_cast<std::uint32_t>(init_hash % T);
  shards[init_shard].arena.intern(init_packed.data(), init_hash);
  shards[init_shard].runs.emplace_back();
  budget.charge(1, bytes_per_state, "build_global");
  metrics::add(metrics::Counter::kGlobalStates);

  // Frontier snapshot: packed tuples + hashes (workers must never read a
  // shard arena another worker may be growing).
  std::vector<std::uint64_t> frontier{provisional(init_shard, 0)};
  std::vector<std::uint32_t> frontier_words(init_packed);  // |frontier| * W
  std::vector<std::uint64_t> frontier_hashes{init_hash};

  std::atomic<bool> stop{false};
  std::atomic<std::size_t> level_fresh{0};
  const std::size_t max_states = budget.max_states();
  std::size_t states_total = 1;
  std::size_t levels_spawned = 0;
  std::uint64_t chunks_claimed = 0;

  // Per-level chunked work distribution (set by the build thread before each
  // generation, read by the workers).
  std::size_t level_n = 0;
  std::size_t chunk_size = 1;
  std::size_t num_chunks = 0;
  std::atomic<std::size_t> next_chunk{0};

  // A worker that throws (an injected failure in a shard arena, a real
  // bad_alloc, a failpoint at "global.worker") must never unwind out of the
  // pool thread body — that is std::terminate. The first exception is
  // parked here, every other worker is stopped, the level completes, and
  // the exception is rethrown on the build thread.
  std::exception_ptr worker_error;
  std::mutex worker_error_mu;

  auto work = [&](unsigned w) noexcept {
    try {
      std::vector<std::uint32_t>& pscratch = worker_pscratch[w];
      std::vector<StateId>& tuple = worker_tuple[w];
      std::vector<PEdge>& edges = worker_edges[w];
      std::vector<ShardStage>& stage = worker_stage[w];
      std::size_t staged_total = 0;

      // Resolve one shard's staged keys under its lock, then patch the
      // recorded edges' provisional targets. Shards are flushed one at a
      // time (never holding two locks), so flushes cannot deadlock.
      auto flush_shard = [&](std::uint32_t s) {
        ShardStage& st = stage[s];
        const std::size_t n = st.hash.size();
        if (n == 0) return;
        st.ids.resize(n);
        st.fresh.resize(n);
        TupleArena::BatchStats bs;
        Shard& shard = shards[s];
        {
          std::lock_guard<std::mutex> lock(shard.mu);
          bs = shard.arena.intern_batch(st.words.data(), st.hash.data(), n, st.ids.data(),
                                        st.fresh.data());
          for (std::size_t k = 0; k < n; ++k) {
            if (st.fresh[k] != 0) shard.fresh.push_back(st.ids[k]);
          }
        }
        if (bs.fresh != 0) level_fresh.fetch_add(bs.fresh, std::memory_order_relaxed);
        for (std::size_t k = 0; k < n; ++k) {
          edges[st.edge_idx[k]].ptarget = provisional(s, st.ids[k]);
        }
        if (metrics::enabled()) {
          metrics::add(metrics::Counter::kInternWaves);
          metrics::add(metrics::Counter::kInternWaveKeys, n);
          metrics::add(metrics::Counter::kInternWaveConflicts, bs.conflicts);
        }
        st.words.clear();
        st.hash.clear();
        st.edge_idx.clear();
      };
      auto flush_all = [&] {
        for (std::uint32_t s = 0; s < T; ++s) flush_shard(s);
        staged_total = 0;
      };

      std::size_t emitted = 0;
      std::size_t c;
      while ((c = next_chunk.fetch_add(1, std::memory_order_relaxed)) < num_chunks) {
        const std::size_t begin = c * chunk_size;
        const std::size_t end = std::min(level_n, begin + chunk_size);
        for (std::size_t f = begin; f < end; ++f) {
          failpoint::hit("global.worker");
          const std::uint64_t src = frontier[f];
          Run run;
          run.worker = w;
          run.begin = static_cast<std::uint32_t>(edges.size());
          std::memcpy(pscratch.data(), frontier_words.data() + f * W,
                      W * sizeof(std::uint32_t));
          packer.unpack(pscratch.data(), tuple.data());
          expand_tuple(
              procs, idx, packer, zob, tuple.data(), frontier_hashes[f], m, pscratch.data(),
              [&](std::uint32_t i, std::uint32_t j, ActionId a, std::uint64_t h) {
                const std::uint32_t sh = static_cast<std::uint32_t>(h % T);
                ShardStage& st = stage[sh];
                st.words.insert(st.words.end(), pscratch.data(), pscratch.data() + W);
                st.hash.push_back(h);
                st.edge_idx.push_back(edges.size());
                edges.push_back({0, i, j, a});  // target patched at flush
                ++staged_total;
                if ((++emitted & 1023u) == 0 && !stop.load(std::memory_order_relaxed)) {
                  // Cooperative early-out: the level result is discarded
                  // on abort (stop always ends in a throw on the build
                  // thread), so partially staged waves are harmless.
                  if (states_total + level_fresh.load(std::memory_order_relaxed) >
                          max_states ||
                      budget.probe() != BudgetDimension::kNone) {
                    stop.store(true, std::memory_order_relaxed);
                  }
                }
              });
          run.count = static_cast<std::uint32_t>(edges.size()) - run.begin;
          // Per expanded source, not per edge — same granularity rule as the
          // sequential loop. Shard-local, so workers never contend.
          metrics::add(metrics::Counter::kGlobalEdges, run.count);
          shards[src >> 32].runs[static_cast<std::uint32_t>(src)] = run;
          if (stop.load(std::memory_order_relaxed)) return;
          if (staged_total >= kWaveKeys) flush_all();
        }
      }
      flush_all();
    } catch (...) {
      {
        std::lock_guard<std::mutex> lock(worker_error_mu);
        if (!worker_error) worker_error = std::current_exception();
      }
      stop.store(true, std::memory_order_relaxed);
    }
  };

  // Persistent pool, created lazily on the first level wide enough to fan
  // out and kept until the build ends: one generation handoff per level
  // replaces T thread spawns + joins per level. The guard joins the pool on
  // every exit path (including a BudgetExceeded unwinding past it).
  struct Pool {
    std::mutex mu;
    std::condition_variable start_cv, done_cv;
    std::uint64_t gen = 0;
    unsigned running = 0;
    bool exiting = false;
    std::vector<std::thread> members;

    ~Pool() { shutdown(); }
    void shutdown() {
      {
        std::lock_guard<std::mutex> lock(mu);
        exiting = true;
      }
      start_cv.notify_all();
      for (std::thread& t : members) t.join();
      members.clear();
    }
  };
  Pool pool;

  auto pool_member = [&](unsigned w) {
    std::uint64_t seen = 0;
    for (;;) {
      {
        std::unique_lock<std::mutex> lock(pool.mu);
        pool.start_cv.wait(lock, [&] { return pool.exiting || pool.gen != seen; });
        if (pool.exiting) return;
        seen = pool.gen;
      }
      work(w);
      {
        std::lock_guard<std::mutex> lock(pool.mu);
        if (--pool.running == 0) pool.done_cv.notify_one();
      }
    }
  };

  auto ensure_pool = [&] {
    if (!pool.members.empty()) return;
    pool.members.reserve(T);
    try {
      for (unsigned w = 0; w < T; ++w) pool.members.emplace_back(pool_member, w);
    } catch (...) {
      // Thread spawn failed: release whatever did start, then let the
      // failure surface as an outcome instead of terminating on ~thread().
      pool.shutdown();
      throw;
    }
  };

  auto run_level_on_pool = [&] {
    {
      std::lock_guard<std::mutex> lock(pool.mu);
      pool.running = T;
      ++pool.gen;
    }
    pool.start_cv.notify_all();
    std::unique_lock<std::mutex> lock(pool.mu);
    pool.done_cv.wait(lock, [&] { return pool.running == 0; });
  };

  while (!frontier.empty()) {
    budget.tick("build_global");
    const std::size_t n = frontier.size();
    level_n = n;

    if (n < kParallelFrontierThreshold) {
      // Thread gate: a small frontier is all handoff overhead. Running the
      // same worker body inline (it claims every chunk) produces the same
      // edges, runs, and shard contents, so the renumber pass below — and
      // with it the machine — is unchanged.
      chunk_size = n;
      num_chunks = 1;
      next_chunk.store(0, std::memory_order_relaxed);
      work(0);
    } else {
      ++levels_spawned;
      chunk_size = std::max<std::size_t>(512, n / (static_cast<std::size_t>(T) * 8));
      num_chunks = (n + chunk_size - 1) / chunk_size;
      next_chunk.store(0, std::memory_order_relaxed);
      chunks_claimed += num_chunks;
      ensure_pool();
      run_level_on_pool();
    }
    if (worker_error) std::rethrow_exception(worker_error);
    failpoint::hit("global.level");

    // Account for the whole level at once: same totals as the sequential
    // build, coarser trip points. Throws BudgetExceeded past the wall.
    const std::size_t fresh_total = level_fresh.exchange(0);
    if (fresh_total > 0) {
      budget.charge(fresh_total, fresh_total * bytes_per_state, "build_global");
    }
    budget.tick("build_global");
    if (stop.load()) {
      // probe() fired mid-level but the post-level charge/tick passed (e.g.
      // a token cancelled and re-armed); treat it as exhausted anyway.
      throw BudgetExceeded(BudgetDimension::kCancelled, "build_global", budget.states_used(),
                           budget.bytes_used());
    }
    states_total += fresh_total;
    if (metrics::enabled()) {
      metrics::add(metrics::Counter::kGlobalStates, fresh_total);
      metrics::add(metrics::Counter::kGlobalLevels);
      metrics::record_max(metrics::Counter::kGlobalFrontierPeak, n);
    }

    // Collect the next frontier and snapshot its packed tuples.
    frontier.clear();
    frontier_words.clear();
    frontier_hashes.clear();
    for (std::uint32_t s = 0; s < T; ++s) {
      Shard& shard = shards[s];
      for (std::uint32_t local : shard.fresh) {
        frontier.push_back(provisional(s, local));
        frontier_words.insert(frontier_words.end(), shard.arena[local],
                              shard.arena[local] + W);
        frontier_hashes.push_back(shard.arena.hash_of(local));
      }
      shard.fresh.clear();
      shard.runs.resize(shard.arena.size());
    }
  }
  pool.shutdown();

  // Canonical renumber: FIFO BFS over the recorded runs assigns final ids in
  // first-discovery order scanning each state's edges in emission order —
  // exactly the id assignment of the sequential build.
  GlobalMachine g;
  g.width = m;
  g.words = W;
  g.fields = packer.fields();
  g.levels_spawned = levels_spawned;
  metrics::add(metrics::Counter::kGlobalLevelsSpawned, levels_spawned);
  metrics::add(metrics::Counter::kFrontierChunks, chunks_claimed);

  std::size_t edges_total = 0;
  for (const auto& we : worker_edges) edges_total += we.size();
  g.tuple_words.reserve(states_total * W);
  EdgeCols cols;
  cols.reserve(std::max<std::size_t>(1, edges_total));
  std::vector<std::uint32_t> offsets;
  offsets.reserve(states_total + 1);
  offsets.push_back(0);

  constexpr std::uint32_t kUnassigned = UINT32_MAX;
  std::vector<std::vector<std::uint32_t>> canon(T);
  for (std::uint32_t s = 0; s < T; ++s) canon[s].assign(shards[s].arena.size(), kUnassigned);
  std::vector<std::uint64_t> order;
  order.reserve(states_total);
  canon[init_shard][0] = 0;
  order.push_back(provisional(init_shard, 0));

  for (std::size_t f = 0; f < order.size(); ++f) {
    const std::uint32_t sh = static_cast<std::uint32_t>(order[f] >> 32);
    const std::uint32_t local = static_cast<std::uint32_t>(order[f]);
    g.tuple_words.insert(g.tuple_words.end(), shards[sh].arena[local],
                         shards[sh].arena[local] + W);
    const Run& run = shards[sh].runs[local];
    const PEdge* e = worker_edges[run.worker].data() + run.begin;
    for (std::uint32_t k = 0; k < run.count; ++k) {
      const std::uint32_t tsh = static_cast<std::uint32_t>(e[k].ptarget >> 32);
      const std::uint32_t tlocal = static_cast<std::uint32_t>(e[k].ptarget);
      std::uint32_t& c = canon[tsh][tlocal];
      if (c == kUnassigned) {
        c = static_cast<std::uint32_t>(order.size());
        order.push_back(e[k].ptarget);
      }
      cols.push(c, e[k].action, (e[k].mover << 16) | e[k].partner);
    }
    offsets.push_back(static_cast<std::uint32_t>(cols.n));
  }
  g.tuple_words = exact_fit(std::move(g.tuple_words));
  finalize_machine(g, std::move(cols), std::move(offsets));
  return g;
}

}  // namespace

std::vector<std::pair<std::uint32_t, std::uint32_t>> action_owner_table(
    const std::vector<Fsp>& processes, std::size_t alphabet_size) {
  std::vector<std::pair<std::uint32_t, std::uint32_t>> owners(
      alphabet_size, {UINT32_MAX, UINT32_MAX});
  std::vector<std::uint32_t> count(alphabet_size, 0);
  for (std::uint32_t i = 0; i < processes.size(); ++i) {
    for (ActionId a : processes[i].sigma()) {
      if (count[a] == 0) {
        owners[a].first = i;
      } else if (count[a] == 1) {
        owners[a].second = i;
      }
      ++count[a];
    }
  }
  for (ActionId a = 0; a < alphabet_size; ++a) {
    if (count[a] != 0 && count[a] != 2) {
      const std::string name =
          processes.empty() ? std::to_string(a) : processes[0].alphabet()->name(a);
      throw std::invalid_argument("build_global: action '" + name + "' belongs to " +
                                  std::to_string(count[a]) +
                                  " process alphabets (Definition 2 requires exactly 2)");
    }
  }
  return owners;
}

namespace {

/// Everything the expansion loops need, flattened once per build. Shared by
/// the plain and the checkpointed entry points.
struct BuildContext {
  std::vector<std::pair<std::uint32_t, std::uint32_t>> owners;
  Packer packer;
  Zobrist zob;
  FlatNet procs;
  std::vector<IdxRef> idx;
  std::size_t expected;

  explicit BuildContext(const Network& net) : packer(net), zob(net) {
    if (net.size() > UINT16_MAX) {
      throw std::logic_error("build_global: networks past 65535 processes are unsupported");
    }
    owners = action_owner_table(net.processes(), net.alphabet()->size());
    // The per-process indexes are cached on the Network (pure function of
    // the immutable processes); repeated builds of one network pay
    // construction once, which matters on micro models where it rivals the
    // build itself.
    const std::vector<ActionIndex>& index = net.action_indexes();
    procs = flatten_processes(net, index, owners, packer, zob);
    idx.reserve(index.size());
    for (const ActionIndex& ai : index) {
      idx.push_back({ai.cells_data(), ai.targets_data(), ai.num_slots()});
    }
    expected = expected_states_hint(net);
  }
};

}  // namespace

std::size_t flat_build_bytes_per_state(std::size_t width) {
  return flat_bytes_per_state(width);
}

GlobalMachine build_global(const Network& net, const Budget& budget, unsigned threads) {
  metrics::ScopedSpan span("build_global");
  BuildContext cx(net);
  if (threads > 64) threads = 64;
  if (threads > 1) {
    return build_parallel(net, budget, threads, cx.procs, cx.idx, cx.packer, cx.zob,
                          cx.expected);
  }
  return build_sequential(net, budget, cx.procs, cx.idx, cx.packer, cx.zob, cx.expected);
}

GlobalMachine build_global_checkpointed(const Network& net, const Budget& budget,
                                        const CheckpointOptions& ckpt) {
  metrics::ScopedSpan span("build_global");
  BuildContext cx(net);
  return build_sequential(net, budget, cx.procs, cx.idx, cx.packer, cx.zob, cx.expected,
                          &ckpt);
}

GlobalMachine build_global(const Network& net, const Budget& budget) {
  return build_global(net, budget, 1);
}

GlobalMachine build_global(const Network& net, std::size_t max_states) {
  return build_global(net, Budget::with_states(max_states), 1);
}

GlobalMachine build_global_reference(const Network& net, const Budget& budget) {
  metrics::ScopedSpan span("build_global.reference");
  const std::size_t m = net.size();
  // Per interned tuple: the tuple vector itself, the interning map node,
  // and the (amortized) edge list headers.
  const std::size_t bytes_per_state = m * sizeof(StateId) + 96;

  auto owners = action_owner_table(net.processes(), net.alphabet()->size());

  struct RefEdge {
    std::uint32_t target;
    ActionId action;
    std::uint16_t mover, partner;
  };
  std::vector<std::vector<StateId>> tuples;
  std::vector<std::vector<RefEdge>> edges;
  std::map<std::vector<StateId>, std::uint32_t> ids;
  auto intern = [&](std::vector<StateId> tuple) {
    auto [it, fresh] = ids.try_emplace(tuple, static_cast<std::uint32_t>(tuples.size()));
    if (fresh) {
      budget.charge(1, bytes_per_state, "build_global");
      tuples.push_back(std::move(tuple));
      edges.emplace_back();
    }
    return it->second;
  };

  std::vector<StateId> init(m);
  for (std::size_t i = 0; i < m; ++i) init[i] = net.process(i).start();
  intern(std::move(init));

  for (std::uint32_t cur = 0; cur < tuples.size(); ++cur) {
    std::vector<StateId> tuple = tuples[cur];  // copy: tuples vector grows
    for (std::uint32_t i = 0; i < m; ++i) {
      const Fsp& pi = net.process(i);
      for (const auto& t : pi.out(tuple[i])) {
        if (t.action == kTau) {
          std::vector<StateId> next = tuple;
          next[i] = t.target;
          std::uint32_t target = intern(std::move(next));
          edges[cur].push_back({target, kTau, static_cast<std::uint16_t>(i),
                                static_cast<std::uint16_t>(i)});
        } else {
          auto [o1, o2] = owners[t.action];
          std::uint32_t j = (o1 == i) ? o2 : o1;
          if (j < i) continue;  // emit each handshake once (from the lower id)
          const Fsp& pj = net.process(j);
          for (const auto& u : pj.out(tuple[j])) {
            if (u.action == t.action) {
              std::vector<StateId> next = tuple;
              next[i] = t.target;
              next[j] = u.target;
              std::uint32_t target = intern(std::move(next));
              edges[cur].push_back({target, t.action, static_cast<std::uint16_t>(i),
                                    static_cast<std::uint16_t>(j)});
            }
          }
        }
      }
    }
  }

  // Flatten into the packed struct-of-arrays layout through the same Packer
  // the flat builds use, so the machines compare bit-identically.
  const Packer packer(net);
  const std::uint32_t W = packer.words;
  GlobalMachine g;
  g.width = static_cast<std::uint32_t>(m);
  g.words = W;
  g.fields = packer.fields();
  std::size_t edges_total = 0;
  for (const auto& row : edges) edges_total += row.size();
  g.tuple_words.reserve(tuples.size() * W);
  EdgeCols cols;
  cols.reserve(std::max<std::size_t>(1, edges_total));
  std::vector<std::uint32_t> offsets;
  offsets.reserve(tuples.size() + 1);
  offsets.push_back(0);
  std::vector<std::uint32_t> packed(W);
  for (std::uint32_t s = 0; s < tuples.size(); ++s) {
    packer.pack(tuples[s].data(), packed.data());
    g.tuple_words.insert(g.tuple_words.end(), packed.begin(), packed.end());
    for (const RefEdge& e : edges[s]) {
      cols.push(e.target, e.action,
                (static_cast<std::uint32_t>(e.mover) << 16) | e.partner);
    }
    offsets.push_back(static_cast<std::uint32_t>(cols.n));
  }
  g.tuple_words = exact_fit(std::move(g.tuple_words));
  finalize_machine(g, std::move(cols), std::move(offsets));
  // End-of-build totals: the oracle is not a hot path, and whole-build
  // counts are what the flat-vs-reference identity tests compare.
  metrics::add(metrics::Counter::kGlobalStates, tuples.size());
  metrics::add(metrics::Counter::kGlobalEdges, g.num_edges());
  return g;
}

AnalysisOutcome<GlobalMachine> try_build_global(const Network& net, const Budget& budget,
                                                unsigned threads) {
  return run_guarded([&] { return build_global(net, budget, threads); });
}

}  // namespace ccfsp
