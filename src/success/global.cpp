#include "success/global.hpp"

#include <atomic>
#include <deque>
#include <cstring>
#include <map>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>

#include "fsp/action_index.hpp"
#include "util/failpoint.hpp"
#include "util/flat_interner.hpp"
#include "util/metrics.hpp"

namespace ccfsp {

namespace {

// Estimated retained bytes per interned tuple in the flat build: the packed
// tuple itself, its hash slot (with load-factor slack), its CSR offset, and
// an amortized share of the edge array.
std::size_t flat_bytes_per_state(std::size_t m) { return m * sizeof(StateId) + 48; }

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// One local transition with everything the expansion inner loop needs
/// precomputed at flatten time: the handshake partner, the partner's dense
/// action slot in its ActionIndex cell table, the Zobrist hash delta of the
/// mover's coordinate change, and the mover's packed-patch bits. Transitions
/// that can never emit an edge from this side — handshakes whose partner has
/// a lower process id (the pair is emitted from the lower side) or whose
/// partner never fires the action — are dropped entirely.
struct FlatTr {
  std::uint64_t zdelta;   // zob(i, source) ^ zob(i, target)
  std::uint32_t set_i;    // (target & mask_i) << shift_i, ORed after clear
  std::uint32_t partner;  // == owning process for tau moves
  std::uint32_t slot;     // partner's dense action slot (handshakes only)
  ActionId action;
};

/// One process's surviving transitions as CSR (declaration order kept).
/// Fsp stores a heap-allocated vector per state; the expansion loop touches
/// a random state of every process for every global state, so the copy buys
/// locality for the price of one pass over each process.
struct FlatProc {
  std::vector<std::uint32_t> off;  // num_states + 1
  std::vector<FlatTr> tr;
};

struct Packer;  // fwd
struct Zobrist;

std::vector<FlatProc> flatten_processes(
    const Network& net, const std::vector<ActionIndex>& index,
    const std::vector<std::pair<std::uint32_t, std::uint32_t>>& owners, const Packer& packer,
    const Zobrist& zob);

/// Raw per-process view of an ActionIndex cell table, hoisted out of the
/// expansion loop so a handshake lookup is one multiply-add and one load.
struct IdxRef {
  const std::pair<std::uint32_t, std::uint32_t>* cells;
  const StateId* targets;
  std::size_t slots;
};

/// Bit-packs an m-tuple of local states: coordinate i takes
/// bit_width(|Q_i| - 1) bits (min 1) and never straddles a 32-bit word
/// boundary, so a patch is one masked OR. Interning packed keys shrinks the
/// probe working set by ~4-8x (phil:12 drops from 24 words to 3), which is
/// what keeps the hash table's payload compares inside the cache; the public
/// GlobalMachine::tuple_data stays unpacked — builders decode on the way out.
struct Packer {
  struct Coord {
    std::uint32_t word, shift, mask;
    std::uint32_t clear;  // ~(mask << shift): the word with this coord blanked
  };
  std::vector<Coord> coord;
  std::uint32_t words = 1;

  explicit Packer(const Network& net) {
    std::uint32_t w = 0, used = 0;
    coord.reserve(net.size());
    for (std::size_t i = 0; i < net.size(); ++i) {
      const auto ns = static_cast<std::uint64_t>(net.process(i).num_states());
      std::uint32_t bits = 1;
      while ((1ull << bits) < ns) ++bits;
      if (used + bits > 32) {
        ++w;
        used = 0;
      }
      const std::uint32_t mask = bits >= 32 ? 0xffffffffu : (1u << bits) - 1;
      coord.push_back({w, used, mask, ~(mask << used)});
      used += bits;
    }
    words = w + 1;
  }

  void pack(const StateId* tuple, std::uint32_t* out) const {
    for (std::uint32_t k = 0; k < words; ++k) out[k] = 0;
    for (std::size_t i = 0; i < coord.size(); ++i) {
      out[coord[i].word] |= (tuple[i] & coord[i].mask) << coord[i].shift;
    }
  }
  void unpack(const std::uint32_t* packed, StateId* out) const {
    for (std::size_t i = 0; i < coord.size(); ++i) {
      out[i] = (packed[coord[i].word] >> coord[i].shift) & coord[i].mask;
    }
  }
  void patch(std::uint32_t* packed, std::uint32_t i, StateId q) const {
    const Coord& c = coord[i];
    packed[c.word] = (packed[c.word] & ~(c.mask << c.shift)) | ((q & c.mask) << c.shift);
  }
};

/// Zobrist table: an independent random 64-bit key per (process, local
/// state). A tuple hashes to the XOR of its coordinates' keys, so a
/// successor differing in one or two coordinates is re-hashed in O(1)
/// instead of O(m) — the intern loop is the hottest path in the engine and
/// hashing was the largest term in it.
struct Zobrist {
  std::vector<std::uint64_t> keys;  // one flat block, process i at off[i]
  std::vector<std::uint32_t> off;

  explicit Zobrist(const Network& net) {
    off.reserve(net.size());
    for (std::size_t i = 0; i < net.size(); ++i) {
      off.push_back(static_cast<std::uint32_t>(keys.size()));
      for (std::size_t q = 0; q < net.process(i).num_states(); ++q) {
        keys.push_back(splitmix64((static_cast<std::uint64_t>(i) << 32) | q));
      }
    }
  }

  std::uint64_t key(std::uint32_t i, StateId q) const { return keys[off[i] + q]; }

  std::uint64_t of_tuple(const StateId* tuple, std::size_t m) const {
    std::uint64_t h = 0;
    for (std::size_t i = 0; i < m; ++i) h ^= key(static_cast<std::uint32_t>(i), tuple[i]);
    return h;
  }
};

std::vector<FlatProc> flatten_processes(
    const Network& net, const std::vector<ActionIndex>& index,
    const std::vector<std::pair<std::uint32_t, std::uint32_t>>& owners, const Packer& packer,
    const Zobrist& zob) {
  std::vector<FlatProc> procs(net.size());
  for (std::uint32_t i = 0; i < net.size(); ++i) {
    const Fsp& p = net.process(i);
    const Packer::Coord ci = packer.coord[i];
    FlatProc& fp = procs[i];
    fp.off.reserve(p.num_states() + 1);
    fp.off.push_back(0);
    fp.tr.reserve(p.num_transitions());
    for (StateId q = 0; q < p.num_states(); ++q) {
      for (const Transition& t : p.out(q)) {
        FlatTr ft;
        ft.zdelta = zob.key(i, q) ^ zob.key(i, t.target);
        ft.set_i = (t.target & ci.mask) << ci.shift;
        ft.action = t.action;
        if (t.action == kTau) {
          ft.partner = i;
          ft.slot = 0;
        } else {
          auto [o1, o2] = owners[t.action];
          ft.partner = (o1 == i) ? o2 : o1;
          if (ft.partner < i) continue;  // the lower side emits this pair
          ft.slot = index[ft.partner].slot_of(t.action);
          if (ft.slot == UINT32_MAX) continue;  // partner never fires it
        }
        fp.tr.push_back(ft);
      }
      fp.off.push_back(static_cast<std::uint32_t>(fp.tr.size()));
    }
  }
  return procs;
}

/// Enumerate the Definition 3 successors of `tuple` in the canonical order
/// every build mode shares: processes ascending, each process's transitions
/// in declaration order, handshake partner targets in declaration order.
/// `tuple` is the unpacked parent, `pscratch` its packed form; each emitted
/// successor patches the one or two moved coordinates of `pscratch` (and the
/// Zobrist hash) in O(1), emits, and restores — the emit callback sees the
/// successor's packed key and hash.
template <typename Emit>
void expand_tuple(const std::vector<FlatProc>& procs, const std::vector<IdxRef>& idx,
                  const Packer& packer, const Zobrist& zob, const StateId* tuple,
                  std::uint64_t h, std::uint32_t m, std::uint32_t* pscratch, Emit&& emit) {
  for (std::uint32_t i = 0; i < m; ++i) {
    const FlatProc& pi = procs[i];
    const StateId qi = tuple[i];
    std::uint32_t k = pi.off[qi];
    const std::uint32_t kend = pi.off[qi + 1];
    if (k == kend) continue;
    const Packer::Coord ci = packer.coord[i];
    const std::uint32_t save_i = pscratch[ci.word];
    const std::uint32_t base_i = save_i & ci.clear;
    for (; k < kend; ++k) {
      const FlatTr& t = pi.tr[k];
      const std::uint32_t j = t.partner;
      if (j == i) {  // tau move
        pscratch[ci.word] = base_i | t.set_i;
        emit(i, i, kTau, h ^ t.zdelta);
        pscratch[ci.word] = save_i;
      } else {  // handshake; j > i and the slot are precomputed
        const StateId qj = tuple[j];
        const IdxRef& rj = idx[j];
        const auto cell = rj.cells[static_cast<std::size_t>(qj) * rj.slots + t.slot];
        if (cell.first == cell.second) continue;
        pscratch[ci.word] = base_i | t.set_i;
        const Packer::Coord cj = packer.coord[j];
        const std::uint32_t base_j = pscratch[cj.word] & cj.clear;  // sees i's patch
        const std::uint64_t hi = h ^ t.zdelta ^ zob.key(j, qj);
        for (std::uint32_t e = cell.first; e < cell.second; ++e) {
          const StateId u = rj.targets[e];
          pscratch[cj.word] = base_j | ((u & cj.mask) << cj.shift);
          emit(i, j, t.action, hi ^ zob.key(j, u));
        }
        // Restore j's coordinate first, then i's whole word — the order makes
        // the shared-word case (base_j already carries i's patch) come out
        // right.
        pscratch[cj.word] = base_j | ((qj & cj.mask) << cj.shift);
        pscratch[ci.word] = save_i;
      }
    }
  }
}

GlobalMachine build_sequential(const Network& net, const Budget& budget,
                               const std::vector<FlatProc>& procs,
                               const std::vector<IdxRef>& idx, const Packer& packer,
                               const Zobrist& zob) {
  const std::uint32_t m = static_cast<std::uint32_t>(net.size());
  const std::size_t bytes_per_state = flat_bytes_per_state(m);

  const std::uint32_t W = packer.words;
  TupleArena arena(W);
  GlobalMachine g;
  g.width = m;
  g.edge_offsets.push_back(0);

  std::vector<StateId> cur_tuple(m);
  std::vector<std::uint32_t> pscratch(W);
  for (std::size_t i = 0; i < m; ++i) cur_tuple[i] = net.process(i).start();
  packer.pack(cur_tuple.data(), pscratch.data());
  arena.intern(pscratch.data(), zob.of_tuple(cur_tuple.data(), m));
  budget.charge(1, bytes_per_state, "build_global");
  metrics::add(metrics::Counter::kGlobalStates);

  // Successors pass through a small FIFO ring: each emit snapshots the
  // packed key, prefetches its hash slot, and the intern happens K entries
  // later (still in emission order, so the numbering is untouched) — by then
  // the slot's cache line is usually in flight or resident. Networks too
  // wide for the ring's inline key storage intern directly.
  constexpr unsigned kRing = 16;     // power of two
  constexpr unsigned kRingMaxW = 8;  // packed words storable inline
  struct Pending {
    std::uint32_t w[kRingMaxW];
    std::uint64_t h;
    ActionId a;
    std::uint16_t i, j;
  };
  Pending ring[kRing];
  unsigned rhead = 0, rcount = 0;
  auto drain_one = [&] {
    Pending& p = ring[rhead++ & (kRing - 1)];
    --rcount;
    auto [target, fresh] = arena.intern(p.w, p.h);
    if (fresh) budget.charge(1, bytes_per_state, "build_global");
    g.edge_data.push_back({target, p.a, p.i, p.j});
  };

  for (std::uint32_t cur = 0; cur < arena.size(); ++cur) {
    // Injection seam: per expanded state, NOT per edge — the disarmed check
    // must stay invisible on the phil:12 profile (bench_failpoint.cpp).
    // Metrics follow the same rule: per-state deltas, never per-edge adds.
    failpoint::hit("global.intern_ring");
    const std::size_t states_before = arena.size();
    const std::size_t edges_before = g.edge_data.size();
    // Copy: the arena's packed block may reallocate as we intern successors.
    std::memcpy(pscratch.data(), arena[cur], W * sizeof(std::uint32_t));
    packer.unpack(pscratch.data(), cur_tuple.data());
    const std::uint64_t cur_hash = arena.hash_of(cur);
    if (W <= kRingMaxW) {
      expand_tuple(procs, idx, packer, zob, cur_tuple.data(), cur_hash, m, pscratch.data(),
                   [&](std::uint32_t i, std::uint32_t j, ActionId a, std::uint64_t h) {
                     if (rcount == kRing) drain_one();
                     Pending& p = ring[(rhead + rcount++) & (kRing - 1)];
                     std::memcpy(p.w, pscratch.data(), W * sizeof(std::uint32_t));
                     p.h = h;
                     p.a = a;
                     p.i = static_cast<std::uint16_t>(i);
                     p.j = static_cast<std::uint16_t>(j);
                     arena.prefetch(h);
                   });
      while (rcount > 0) drain_one();
    } else {
      expand_tuple(procs, idx, packer, zob, cur_tuple.data(), cur_hash, m, pscratch.data(),
                   [&](std::uint32_t i, std::uint32_t j, ActionId a, std::uint64_t h) {
                     auto [target, fresh] = arena.intern(pscratch.data(), h);
                     if (fresh) budget.charge(1, bytes_per_state, "build_global");
                     g.edge_data.push_back({target, a, static_cast<std::uint16_t>(i),
                                            static_cast<std::uint16_t>(j)});
                   });
    }
    g.edge_offsets.push_back(static_cast<std::uint32_t>(g.edge_data.size()));
    if (metrics::enabled()) {
      const std::uint64_t edge_delta = g.edge_data.size() - edges_before;
      metrics::add(metrics::Counter::kGlobalStates, arena.size() - states_before);
      metrics::add(metrics::Counter::kGlobalEdges, edge_delta);
      // Every successor of this state went through the prefetch ring iff the
      // network fit the ring's inline key storage.
      if (W <= kRingMaxW) metrics::add(metrics::Counter::kGlobalRingInterns, edge_delta);
    }
  }
  // Decode the packed arena into the public unpacked tuple block.
  const std::vector<std::uint32_t> packed = arena.release_data();
  g.tuple_data.resize(static_cast<std::size_t>(g.edge_offsets.size() - 1) * m);
  for (std::size_t id = 0; id + 1 < g.edge_offsets.size(); ++id) {
    packer.unpack(packed.data() + id * W, g.tuple_data.data() + id * m);
  }
  return g;
}

/// Parallel level-synchronous BFS. Tuples are interned into `threads` shards
/// selected by hash; workers expand disjoint slices of the current frontier
/// and record each source's edges as one contiguous run in a worker-local
/// buffer, so the final sequential renumber pass — a BFS over the runs in
/// canonical edge order — reproduces the sequential numbering exactly.
GlobalMachine build_parallel(const Network& net, const Budget& budget, unsigned threads,
                             const std::vector<FlatProc>& procs, const std::vector<IdxRef>& idx,
                             const Packer& packer, const Zobrist& zob) {
  const std::uint32_t m = static_cast<std::uint32_t>(net.size());
  const std::size_t bytes_per_state = flat_bytes_per_state(m);
  const unsigned T = threads;

  struct PEdge {
    std::uint64_t ptarget;  // (shard << 32) | shard-local id
    std::uint32_t mover;
    std::uint32_t partner;
    ActionId action;
  };
  struct Run {
    std::uint32_t worker = 0;
    std::uint32_t begin = 0;
    std::uint32_t count = 0;
  };
  struct Shard {
    explicit Shard(std::size_t width) : arena(width) {}
    TupleArena arena;
    std::mutex mu;
    std::vector<std::uint32_t> fresh;  // locals interned this level
    std::vector<Run> runs;             // per local id, filled when expanded
  };

  const std::uint32_t W = packer.words;
  std::deque<Shard> shards;  // deque: Shard holds a mutex and cannot move
  for (unsigned s = 0; s < T; ++s) shards.emplace_back(W);
  std::vector<std::vector<PEdge>> worker_edges(T);

  auto provisional = [](std::uint32_t shard, std::uint32_t local) {
    return (static_cast<std::uint64_t>(shard) << 32) | local;
  };

  // Intern the initial tuple.
  std::vector<StateId> init(m);
  std::vector<std::uint32_t> init_packed(W);
  for (std::size_t i = 0; i < m; ++i) init[i] = net.process(i).start();
  packer.pack(init.data(), init_packed.data());
  const std::uint64_t init_hash = zob.of_tuple(init.data(), m);
  const std::uint32_t init_shard = static_cast<std::uint32_t>(init_hash % T);
  shards[init_shard].arena.intern(init_packed.data(), init_hash);
  shards[init_shard].runs.emplace_back();
  budget.charge(1, bytes_per_state, "build_global");
  metrics::add(metrics::Counter::kGlobalStates);

  std::vector<std::uint64_t> frontier{provisional(init_shard, 0)};
  std::vector<StateId> frontier_tuples = init;        // |frontier| * m snapshot
  std::vector<std::uint64_t> frontier_hashes{init_hash};

  std::atomic<bool> stop{false};
  std::atomic<std::size_t> level_fresh{0};
  const std::size_t max_states = budget.max_states();
  std::size_t states_total = 1;
  std::size_t levels_spawned = 0;

  // A worker that throws (an injected failure in a shard arena, a real
  // bad_alloc, a failpoint at "global.worker") must never unwind out of the
  // std::thread body — that is std::terminate. The first exception is
  // parked here, every other worker is stopped, all threads are joined,
  // and only then is it rethrown on the build thread.
  std::exception_ptr worker_error;
  std::mutex worker_error_mu;

  while (!frontier.empty()) {
    budget.tick("build_global");
    const std::size_t n = frontier.size();

    auto work = [&](unsigned w) noexcept {
      try {
        const std::size_t begin = n * w / T, end = n * (w + 1) / T;
        std::vector<std::uint32_t> pscratch(W);
        std::vector<PEdge>& edges = worker_edges[w];
        std::size_t emitted = 0;
        for (std::size_t f = begin; f < end; ++f) {
          failpoint::hit("global.worker");
          const std::uint64_t src = frontier[f];
          Run run;
          run.worker = w;
          run.begin = static_cast<std::uint32_t>(edges.size());
          const StateId* tuple = frontier_tuples.data() + f * m;
          packer.pack(tuple, pscratch.data());
          expand_tuple(procs, idx, packer, zob, tuple, frontier_hashes[f], m, pscratch.data(),
                       [&](std::uint32_t i, std::uint32_t j, ActionId a, std::uint64_t h) {
                         const std::uint32_t sh = static_cast<std::uint32_t>(h % T);
                         Shard& shard = shards[sh];
                         std::uint32_t local;
                         bool fresh;
                         {
                           std::lock_guard<std::mutex> lock(shard.mu);
                           std::tie(local, fresh) = shard.arena.intern(pscratch.data(), h);
                           if (fresh) shard.fresh.push_back(local);
                         }
                         if (fresh) level_fresh.fetch_add(1, std::memory_order_relaxed);
                         edges.push_back({provisional(sh, local), i, j, a});
                         if ((++emitted & 1023u) == 0 && !stop.load(std::memory_order_relaxed)) {
                           // Cooperative early-out: the level result is discarded
                           // on abort, so a partial expansion is harmless.
                           if (states_total + level_fresh.load(std::memory_order_relaxed) >
                                   max_states ||
                               budget.probe() != BudgetDimension::kNone) {
                             stop.store(true, std::memory_order_relaxed);
                           }
                         }
                       });
          run.count = static_cast<std::uint32_t>(edges.size()) - run.begin;
          // Per expanded source, not per edge — same granularity rule as the
          // sequential loop. Shard-local, so workers never contend.
          metrics::add(metrics::Counter::kGlobalEdges, run.count);
          shards[src >> 32].runs[static_cast<std::uint32_t>(src)] = run;
          if (stop.load(std::memory_order_relaxed)) return;
        }
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(worker_error_mu);
          if (!worker_error) worker_error = std::current_exception();
        }
        stop.store(true, std::memory_order_relaxed);
      }
    };

    if (n < kParallelFrontierThreshold) {
      // Thread gate: a small frontier is all spawn/join overhead. Running
      // the same worker bodies inline (in worker order) produces the same
      // edges, runs, and shard contents, so the renumber pass below — and
      // with it the machine — is unchanged.
      for (unsigned w = 0; w < T; ++w) work(w);
    } else {
      ++levels_spawned;
      std::vector<std::thread> pool;
      pool.reserve(T);
      try {
        for (unsigned w = 0; w < T; ++w) pool.emplace_back(work, w);
      } catch (...) {
        // Thread spawn failed: stop and join whatever did start, then let the
        // failure surface as an outcome instead of terminating on ~thread().
        stop.store(true, std::memory_order_relaxed);
        for (auto& t : pool) t.join();
        throw;
      }
      for (auto& t : pool) t.join();
    }
    if (worker_error) std::rethrow_exception(worker_error);
    failpoint::hit("global.level");

    // Account for the whole level at once: same totals as the sequential
    // build, coarser trip points. Throws BudgetExceeded past the wall.
    const std::size_t fresh_total = level_fresh.exchange(0);
    if (fresh_total > 0) {
      budget.charge(fresh_total, fresh_total * bytes_per_state, "build_global");
    }
    budget.tick("build_global");
    if (stop.load()) {
      // probe() fired mid-level but the post-level charge/tick passed (e.g.
      // a token cancelled and re-armed); treat it as exhausted anyway.
      throw BudgetExceeded(BudgetDimension::kCancelled, "build_global", budget.states_used(),
                           budget.bytes_used());
    }
    states_total += fresh_total;
    if (metrics::enabled()) {
      metrics::add(metrics::Counter::kGlobalStates, fresh_total);
      metrics::add(metrics::Counter::kGlobalLevels);
      metrics::record_max(metrics::Counter::kGlobalFrontierPeak, n);
    }

    // Collect the next frontier and snapshot its tuples (workers must never
    // read a shard arena another worker may be growing).
    frontier.clear();
    frontier_tuples.clear();
    frontier_hashes.clear();
    for (std::uint32_t s = 0; s < T; ++s) {
      Shard& shard = shards[s];
      for (std::uint32_t local : shard.fresh) {
        frontier.push_back(provisional(s, local));
        frontier_tuples.resize(frontier_tuples.size() + m);
        packer.unpack(shard.arena[local], frontier_tuples.data() + frontier_tuples.size() - m);
        frontier_hashes.push_back(shard.arena.hash_of(local));
      }
      shard.fresh.clear();
      shard.runs.resize(shard.arena.size());
    }
  }

  // Canonical renumber: FIFO BFS over the recorded runs assigns final ids in
  // first-discovery order scanning each state's edges in emission order —
  // exactly the id assignment of the sequential build.
  GlobalMachine g;
  g.width = m;
  g.levels_spawned = levels_spawned;
  metrics::add(metrics::Counter::kGlobalLevelsSpawned, levels_spawned);
  g.tuple_data.reserve(states_total * m);
  g.edge_offsets.reserve(states_total + 1);
  g.edge_offsets.push_back(0);

  constexpr std::uint32_t kUnassigned = UINT32_MAX;
  std::vector<std::vector<std::uint32_t>> canon(T);
  for (std::uint32_t s = 0; s < T; ++s) canon[s].assign(shards[s].arena.size(), kUnassigned);
  std::vector<std::uint64_t> order;
  order.reserve(states_total);
  canon[init_shard][0] = 0;
  order.push_back(provisional(init_shard, 0));

  for (std::size_t f = 0; f < order.size(); ++f) {
    const std::uint32_t sh = static_cast<std::uint32_t>(order[f] >> 32);
    const std::uint32_t local = static_cast<std::uint32_t>(order[f]);
    g.tuple_data.resize(g.tuple_data.size() + m);
    packer.unpack(shards[sh].arena[local], g.tuple_data.data() + g.tuple_data.size() - m);
    const Run& run = shards[sh].runs[local];
    const PEdge* e = worker_edges[run.worker].data() + run.begin;
    for (std::uint32_t k = 0; k < run.count; ++k) {
      const std::uint32_t tsh = static_cast<std::uint32_t>(e[k].ptarget >> 32);
      const std::uint32_t tlocal = static_cast<std::uint32_t>(e[k].ptarget);
      std::uint32_t& c = canon[tsh][tlocal];
      if (c == kUnassigned) {
        c = static_cast<std::uint32_t>(order.size());
        order.push_back(e[k].ptarget);
      }
      g.edge_data.push_back({c, e[k].action, static_cast<std::uint16_t>(e[k].mover),
                             static_cast<std::uint16_t>(e[k].partner)});
    }
    g.edge_offsets.push_back(static_cast<std::uint32_t>(g.edge_data.size()));
  }
  return g;
}

}  // namespace

std::vector<std::pair<std::uint32_t, std::uint32_t>> action_owner_table(
    const std::vector<Fsp>& processes, std::size_t alphabet_size) {
  std::vector<std::pair<std::uint32_t, std::uint32_t>> owners(
      alphabet_size, {UINT32_MAX, UINT32_MAX});
  std::vector<std::uint32_t> count(alphabet_size, 0);
  for (std::uint32_t i = 0; i < processes.size(); ++i) {
    for (ActionId a : processes[i].sigma()) {
      if (count[a] == 0) {
        owners[a].first = i;
      } else if (count[a] == 1) {
        owners[a].second = i;
      }
      ++count[a];
    }
  }
  for (ActionId a = 0; a < alphabet_size; ++a) {
    if (count[a] != 0 && count[a] != 2) {
      const std::string name =
          processes.empty() ? std::to_string(a) : processes[0].alphabet()->name(a);
      throw std::invalid_argument("build_global: action '" + name + "' belongs to " +
                                  std::to_string(count[a]) +
                                  " process alphabets (Definition 2 requires exactly 2)");
    }
  }
  return owners;
}

GlobalMachine build_global(const Network& net, const Budget& budget, unsigned threads) {
  metrics::ScopedSpan span("build_global");
  if (net.size() > UINT16_MAX) {
    throw std::logic_error("build_global: networks past 65535 processes are unsupported");
  }
  auto owners = action_owner_table(net.processes(), net.alphabet()->size());
  std::vector<ActionIndex> index;
  index.reserve(net.size());
  for (std::size_t i = 0; i < net.size(); ++i) index.emplace_back(net.process(i));
  const Packer packer(net);
  const Zobrist zob(net);
  auto procs = flatten_processes(net, index, owners, packer, zob);
  std::vector<IdxRef> idx;
  idx.reserve(index.size());
  for (const ActionIndex& ai : index) {
    idx.push_back({ai.cells_data(), ai.targets_data(), ai.num_slots()});
  }
  if (threads > 64) threads = 64;
  if (threads > 1) return build_parallel(net, budget, threads, procs, idx, packer, zob);
  return build_sequential(net, budget, procs, idx, packer, zob);
}

GlobalMachine build_global(const Network& net, const Budget& budget) {
  return build_global(net, budget, 1);
}

GlobalMachine build_global(const Network& net, std::size_t max_states) {
  return build_global(net, Budget::with_states(max_states), 1);
}

GlobalMachine build_global_reference(const Network& net, const Budget& budget) {
  metrics::ScopedSpan span("build_global.reference");
  const std::size_t m = net.size();
  // Per interned tuple: the tuple vector itself, the interning map node,
  // and the (amortized) edge list headers.
  const std::size_t bytes_per_state = m * sizeof(StateId) + 96;

  auto owners = action_owner_table(net.processes(), net.alphabet()->size());

  std::vector<std::vector<StateId>> tuples;
  std::vector<std::vector<GlobalMachine::Edge>> edges;
  std::map<std::vector<StateId>, std::uint32_t> ids;
  auto intern = [&](std::vector<StateId> tuple) {
    auto [it, fresh] = ids.try_emplace(tuple, static_cast<std::uint32_t>(tuples.size()));
    if (fresh) {
      budget.charge(1, bytes_per_state, "build_global");
      tuples.push_back(std::move(tuple));
      edges.emplace_back();
    }
    return it->second;
  };

  std::vector<StateId> init(m);
  for (std::size_t i = 0; i < m; ++i) init[i] = net.process(i).start();
  intern(std::move(init));

  for (std::uint32_t cur = 0; cur < tuples.size(); ++cur) {
    std::vector<StateId> tuple = tuples[cur];  // copy: tuples vector grows
    for (std::uint32_t i = 0; i < m; ++i) {
      const Fsp& pi = net.process(i);
      for (const auto& t : pi.out(tuple[i])) {
        if (t.action == kTau) {
          std::vector<StateId> next = tuple;
          next[i] = t.target;
          std::uint32_t target = intern(std::move(next));
          edges[cur].push_back({target, kTau, static_cast<std::uint16_t>(i),
                                static_cast<std::uint16_t>(i)});
        } else {
          auto [o1, o2] = owners[t.action];
          std::uint32_t j = (o1 == i) ? o2 : o1;
          if (j < i) continue;  // emit each handshake once (from the lower id)
          const Fsp& pj = net.process(j);
          for (const auto& u : pj.out(tuple[j])) {
            if (u.action == t.action) {
              std::vector<StateId> next = tuple;
              next[i] = t.target;
              next[j] = u.target;
              std::uint32_t target = intern(std::move(next));
              edges[cur].push_back({target, t.action, static_cast<std::uint16_t>(i),
                                    static_cast<std::uint16_t>(j)});
            }
          }
        }
      }
    }
  }

  GlobalMachine g;
  g.width = static_cast<std::uint32_t>(m);
  g.tuple_data.reserve(tuples.size() * m);
  g.edge_offsets.reserve(tuples.size() + 1);
  g.edge_offsets.push_back(0);
  for (std::uint32_t s = 0; s < tuples.size(); ++s) {
    g.tuple_data.insert(g.tuple_data.end(), tuples[s].begin(), tuples[s].end());
    g.edge_data.insert(g.edge_data.end(), edges[s].begin(), edges[s].end());
    g.edge_offsets.push_back(static_cast<std::uint32_t>(g.edge_data.size()));
  }
  // End-of-build totals: the oracle is not a hot path, and whole-build
  // counts are what the flat-vs-reference identity tests compare.
  metrics::add(metrics::Counter::kGlobalStates, tuples.size());
  metrics::add(metrics::Counter::kGlobalEdges, g.edge_data.size());
  return g;
}

AnalysisOutcome<GlobalMachine> try_build_global(const Network& net, const Budget& budget,
                                                unsigned threads) {
  return run_guarded([&] { return build_global(net, budget, threads); });
}

}  // namespace ccfsp
