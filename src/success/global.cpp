#include "success/global.hpp"

#include <map>
#include <stdexcept>

namespace ccfsp {

GlobalMachine build_global(const Network& net, const Budget& budget) {
  const std::size_t m = net.size();
  // Per interned tuple: the tuple vector itself, the interning map node,
  // and the (amortized) edge list headers.
  const std::size_t bytes_per_state = m * sizeof(StateId) + 96;

  // Per-action owner pair (each action belongs to exactly two processes).
  std::vector<std::pair<std::uint32_t, std::uint32_t>> owners(
      net.alphabet()->size(), {UINT32_MAX, UINT32_MAX});
  for (std::uint32_t i = 0; i < m; ++i) {
    for (ActionId a : net.process(i).sigma()) {
      if (owners[a].first == UINT32_MAX) {
        owners[a].first = i;
      } else {
        owners[a].second = i;
      }
    }
  }

  GlobalMachine g;
  std::map<std::vector<StateId>, std::uint32_t> ids;
  auto intern = [&](std::vector<StateId> tuple) {
    auto [it, fresh] = ids.try_emplace(tuple, static_cast<std::uint32_t>(g.tuples.size()));
    if (fresh) {
      budget.charge(1, bytes_per_state, "build_global");
      g.tuples.push_back(std::move(tuple));
      g.edges.emplace_back();
    }
    return it->second;
  };

  std::vector<StateId> init(m);
  for (std::size_t i = 0; i < m; ++i) init[i] = net.process(i).start();
  intern(std::move(init));

  for (std::uint32_t cur = 0; cur < g.tuples.size(); ++cur) {
    std::vector<StateId> tuple = g.tuples[cur];  // copy: tuples vector grows
    for (std::uint32_t i = 0; i < m; ++i) {
      const Fsp& pi = net.process(i);
      for (const auto& t : pi.out(tuple[i])) {
        if (t.action == kTau) {
          std::vector<StateId> next = tuple;
          next[i] = t.target;
          // intern() may reallocate g.edges; resolve the target first.
          std::uint32_t target = intern(std::move(next));
          g.edges[cur].push_back({target, i, i, kTau});
        } else {
          // Handshake with the unique partner process.
          auto [o1, o2] = owners[t.action];
          std::uint32_t j = (o1 == i) ? o2 : o1;
          if (j == UINT32_MAX || j == i) continue;  // symbol declared only here
          if (j < i) continue;                      // emit each handshake once (from the lower id)
          const Fsp& pj = net.process(j);
          for (const auto& u : pj.out(tuple[j])) {
            if (u.action == t.action) {
              std::vector<StateId> next = tuple;
              next[i] = t.target;
              next[j] = u.target;
              std::uint32_t target = intern(std::move(next));
              g.edges[cur].push_back({target, i, j, t.action});
            }
          }
        }
      }
    }
  }
  return g;
}

GlobalMachine build_global(const Network& net, std::size_t max_states) {
  return build_global(net, Budget::with_states(max_states));
}

AnalysisOutcome<GlobalMachine> try_build_global(const Network& net, const Budget& budget) {
  return run_guarded([&] { return build_global(net, budget); });
}

}  // namespace ccfsp
