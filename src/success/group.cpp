#include "success/group.hpp"

#include <algorithm>
#include <stdexcept>

#include "success/global.hpp"

namespace ccfsp {

GroupSuccess group_success(const Network& net, const std::vector<std::size_t>& group,
                           std::size_t max_states) {
  return group_success(net, group, Budget::with_states(max_states));
}

GroupSuccess group_success(const Network& net, const std::vector<std::size_t>& group,
                           const Budget& budget) {
  if (group.empty()) throw std::invalid_argument("group_success: empty group");
  std::vector<std::size_t> sorted = group;
  std::sort(sorted.begin(), sorted.end());
  if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end()) {
    throw std::invalid_argument("group_success: duplicate process index");
  }
  if (sorted.back() >= net.size()) {
    throw std::invalid_argument("group_success: process index out of range");
  }

  GlobalMachine g = build_global(net, budget);
  auto group_done = [&](std::uint32_t s) {
    for (std::size_t i : sorted) {
      if (!net.process(i).is_leaf(g.local_state(s, i))) return false;
    }
    return true;
  };

  GroupSuccess result;
  result.unavoidable_success = true;
  for (std::uint32_t s = 0; s < g.num_states(); ++s) {
    if (!g.is_stuck(s)) continue;
    if (group_done(s)) {
      result.success_collab = true;
    } else {
      result.unavoidable_success = false;
    }
  }
  // A network whose global machine never sticks (cyclic material) cannot
  // park the group at leaves at all.
  bool any_stuck = false;
  for (std::uint32_t s = 0; s < g.num_states(); ++s) any_stuck |= g.is_stuck(s);
  if (!any_stuck) result.unavoidable_success = false;
  return result;
}

}  // namespace ccfsp
