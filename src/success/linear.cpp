#include "success/linear.hpp"

#include <map>
#include <stdexcept>

#include "util/graph.hpp"

namespace ccfsp {

namespace {

/// The observable action sequence of a linear process, in path order.
std::vector<ActionId> action_sequence(const Fsp& p) {
  std::vector<ActionId> seq;
  StateId cur = p.start();
  while (!p.is_leaf(cur)) {
    const Transition& t = p.out(cur)[0];
    if (t.action != kTau) seq.push_back(t.action);
    cur = t.target;
  }
  return seq;
}

}  // namespace

bool linear_network_success(const Network& net, std::size_t p_index) {
  const std::size_t m = net.size();
  for (std::size_t i = 0; i < m; ++i) {
    if (!net.process(i).is_linear()) {
      throw std::logic_error("linear_network_success: process '" + net.process(i).name() +
                             "' is not linear");
    }
  }

  // Node = one occurrence of an action in one process's sequence.
  struct Node {
    std::size_t process;
    std::size_t index;      // position within the process sequence
    ActionId action;
    std::size_t occurrence;  // k-th occurrence of this action in this process
  };
  std::vector<Node> nodes;
  std::vector<std::vector<std::size_t>> node_of(m);  // process -> its node ids in order
  for (std::size_t i = 0; i < m; ++i) {
    auto seq = action_sequence(net.process(i));
    std::map<ActionId, std::size_t> occ;
    for (std::size_t k = 0; k < seq.size(); ++k) {
      node_of[i].push_back(nodes.size());
      nodes.push_back({i, k, seq[k], occ[seq[k]]++});
    }
  }

  // Match the k-th occurrence of each action across its two owner processes.
  std::map<std::pair<ActionId, std::size_t>, std::vector<std::size_t>> by_occ;
  for (std::size_t n = 0; n < nodes.size(); ++n) {
    by_occ[{nodes[n].action, nodes[n].occurrence}].push_back(n);
  }
  std::vector<std::size_t> partner(nodes.size(), static_cast<std::size_t>(-1));
  for (const auto& [key, group] : by_occ) {
    if (group.size() == 2) {
      partner[group[0]] = group[1];
      partner[group[1]] = group[0];
    }
    // group.size() == 1: occurrence with no counterpart — stays unmatched.
  }

  // Delete unmatched nodes and everything after them (in-process), with
  // deletions propagating to partners.
  std::vector<bool> dead(nodes.size(), false);
  std::vector<std::size_t> work;
  auto kill = [&](std::size_t n) {
    if (!dead[n]) {
      dead[n] = true;
      work.push_back(n);
    }
  };
  for (std::size_t n = 0; n < nodes.size(); ++n) {
    if (partner[n] == static_cast<std::size_t>(-1)) kill(n);
  }
  while (!work.empty()) {
    std::size_t n = work.back();
    work.pop_back();
    // Everything after n in its process can never run.
    const auto& order = node_of[nodes[n].process];
    for (std::size_t k = nodes[n].index + 1; k < order.size(); ++k) kill(order[k]);
    // The partner occurrence can never handshake.
    if (partner[n] != static_cast<std::size_t>(-1)) kill(partner[n]);
  }

  // If any action of the distinguished process died, it cannot complete.
  for (std::size_t n : node_of[p_index]) {
    if (dead[n]) return false;
  }

  // H': one vertex per surviving matched pair; arcs follow in-process order.
  std::vector<std::size_t> pair_id(nodes.size(), static_cast<std::size_t>(-1));
  std::size_t num_pairs = 0;
  for (std::size_t n = 0; n < nodes.size(); ++n) {
    if (!dead[n] && pair_id[n] == static_cast<std::size_t>(-1)) {
      pair_id[n] = pair_id[partner[n]] = num_pairs++;
    }
  }
  Digraph h(num_pairs);
  for (std::size_t i = 0; i < m; ++i) {
    std::size_t prev = static_cast<std::size_t>(-1);
    for (std::size_t n : node_of[i]) {
      if (dead[n]) break;  // everything later is dead too
      if (prev != static_cast<std::size_t>(-1) && pair_id[n] != prev) {
        h.add_edge(prev, pair_id[n]);
      }
      prev = pair_id[n];
    }
  }

  // Keep only pairs that P's pairs depend on (predecessors of P's pairs,
  // including those pairs themselves); a dependency cycle there blocks P.
  std::vector<std::size_t> p_pairs;
  for (std::size_t n : node_of[p_index]) p_pairs.push_back(pair_id[n]);
  if (p_pairs.empty()) return true;  // P has nothing to do: its start is its leaf
  auto relevant = h.co_reachable(p_pairs);

  Digraph hr(num_pairs);
  for (std::size_t v = 0; v < num_pairs; ++v) {
    if (!relevant[v]) continue;
    for (std::size_t w : h.successors(v)) {
      if (relevant[w]) hr.add_edge(v, w);
    }
  }
  return !hr.has_cycle();
}

}  // namespace ccfsp
