#include "success/poss_decide.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <stdexcept>
#include <vector>

#include "semantics/poss_automaton.hpp"

namespace ccfsp {

namespace {

/// Walk the synchronized product of the two possibility automata and test
/// `found` at every reachable pair (every common string s).
template <typename Found>
bool search_product(const Fsp& p, const Fsp& q, Found&& found) {
  if (p.alphabet() != q.alphabet()) {
    throw std::logic_error("poss_decide: processes over different Alphabets");
  }
  AnnotatedDfa dp = annotated_determinize(p, SemanticAnnotation::kPossibilities);
  AnnotatedDfa dq = annotated_determinize(q, SemanticAnnotation::kPossibilities);

  std::set<std::pair<std::uint32_t, std::uint32_t>> seen;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> work{{dp.start, dq.start}};
  seen.insert(work[0]);
  while (!work.empty()) {
    auto [sp, sq] = work.back();
    work.pop_back();
    if (found(dp.annotation[sp], dq.annotation[sq])) return true;
    // Common extensions only: both sides must define the action.
    for (const auto& [a, tp] : dp.trans[sp]) {
      auto it = dq.trans[sq].find(a);
      if (it == dq.trans[sq].end()) continue;
      auto next = std::make_pair(tp, it->second);
      if (seen.insert(next).second) work.push_back(next);
    }
  }
  return false;
}

using Annotation = std::set<std::vector<ActionId>>;

bool mutually_refusing(const Annotation& ap, const Annotation& aq, bool require_nonempty_x) {
  for (const auto& x : ap) {
    if (require_nonempty_x && x.empty()) continue;
    for (const auto& y : aq) {
      bool disjoint = true;
      for (ActionId a : x) {
        // Both sorted; a linear merge would be faster, but Z sets are tiny.
        if (std::binary_search(y.begin(), y.end(), a)) {
          disjoint = false;
          break;
        }
      }
      if (disjoint) return true;
    }
  }
  return false;
}

}  // namespace

bool collab_by_possibilities(const Fsp& p, const Fsp& q) {
  return search_product(p, q, [](const Annotation& ap, const Annotation& aq) {
    (void)aq;
    return ap.count({}) > 0;  // (s, {}) in Poss(P); s in Lang(Q) by reachability
  });
}

bool blocking_by_possibilities(const Fsp& p, const Fsp& q) {
  return search_product(p, q, [](const Annotation& ap, const Annotation& aq) {
    return mutually_refusing(ap, aq, /*require_nonempty_x=*/true);
  });
}

bool cyclic_blocking_by_possibilities(const Fsp& p, const Fsp& q) {
  return search_product(p, q, [](const Annotation& ap, const Annotation& aq) {
    return mutually_refusing(ap, aq, /*require_nonempty_x=*/false);
  });
}

}  // namespace ccfsp
