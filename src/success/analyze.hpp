// The graceful-degradation decider ladder: one front door for "analyze this
// network" that classifies the input structurally and tries the deciders
// cheapest-first, under a caller-supplied resource budget —
//
//   Section 3 (all processes acyclic):
//     linear    Prop 1    occurrence matching, linear time
//     tree      Thm 3     k-tree pipeline with possibility normal forms
//     explicit  Sec 3.1   the global machine G, exponential
//   Section 4 (some process cyclic):
//     unary     Thm 4     unary-tree ILP propagation (S_c only)
//     heuristic Sec 4     ||' tree composition with bisimulation shrinking
//     explicit  Prop 2    the global machine, cyclic readings
//
// Every rung attempt is recorded: what ran, what it answered, why it was
// inapplicable, or how far it got before the budget tripped. The verdict is
// merged incrementally, so a run that exhausts its budget still reports
// whatever the cheaper rungs (or the completed part of the current rung)
// established. See docs/robustness.md.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "network/network.hpp"
#include "success/global.hpp"
#include "util/budget.hpp"
#include "util/metrics.hpp"
#include "util/outcome.hpp"

namespace ccfsp {

enum class Rung { kLinear, kUnary, kTree, kHeuristic, kExplicit };

const char* to_string(Rung r);

/// Parse a rung name ("linear", "unary", "tree", "heuristic", "explicit");
/// nullopt for anything else.
std::optional<Rung> rung_from_string(const std::string& name);

/// The record of one rung attempt. A rung retried under escalation (see
/// AnalyzeOptions::retries) contributes one entry per attempt.
struct RungOutcome {
  Rung rung;
  OutcomeStatus status = OutcomeStatus::kUnsupported;
  /// Why it was inapplicable, or the budget message, or what it decided.
  std::string detail;
  /// States charged against this rung's (forked) budget before it returned
  /// or tripped — the "how far did it get" payload.
  std::size_t states_charged = 0;
  /// 0 for the first try, 1.. for escalated retries of the same rung.
  unsigned attempt = 0;
  /// Which budget wall tripped (kNone unless kBudgetExhausted). Drives the
  /// retry decision: only count-based walls (states/bytes) are retryable.
  BudgetDimension budget_reason = BudgetDimension::kNone;
};

/// The (possibly partial) answer. Fields are set as rungs decide them and
/// never overwritten, so the cheapest rung that answered wins.
struct Verdict {
  std::optional<bool> unavoidable_success;  // S_u
  std::optional<bool> success_collab;       // S_c
  std::optional<bool> success_adversity;    // S_a
  /// S_a is only defined under the Figure 4 assumption (P tau-free) and
  /// with a nonempty context; when false, an absent success_adversity does
  /// not count against completeness.
  bool adversity_applicable = false;

  bool complete() const {
    return unavoidable_success.has_value() && success_collab.has_value() &&
           (!adversity_applicable || success_adversity.has_value());
  }
};

struct AnalysisReport {
  /// kDecided iff the verdict is complete; kBudgetExhausted if some rung hit
  /// the wall first; kUnsupported if every rung was inapplicable;
  /// kInvalidInput for malformed requests (bad index, empty rung list).
  OutcomeStatus status = OutcomeStatus::kUnsupported;
  Verdict verdict;
  /// One entry per rung attempted, in order.
  std::vector<RungOutcome> rungs;
  /// The rung whose answer completed the verdict, when decided.
  std::optional<Rung> decided_by;
  /// True when the Section 4 readings of the predicates were used.
  bool cyclic_semantics = false;

  std::string summary() const;
};

struct AnalyzeOptions {
  /// Governs the whole run. Each rung gets a fork(): fresh state/byte
  /// counters, the same absolute deadline and cancel token.
  Budget budget;
  /// Which rungs to try, in the given order. Empty = the default ladder for
  /// the input's classification (see file comment). Explicitly requested
  /// rungs run even when the default classification would skip them — an
  /// inapplicable rung reports kUnsupported and the ladder moves on.
  std::vector<Rung> rungs;
  /// Worker threads for the explicit rung's global-machine construction
  /// (1 = sequential). The result is bit-identical either way; see
  /// build_global.
  unsigned threads = 1;
  /// Bounded retry-with-escalation: when a rung exhausts a *count* budget
  /// (states/bytes — never a deadline or a cancellation, which re-trip
  /// immediately), re-run it up to this many more times under a fork()
  /// whose count limits are geometrically grown (doubled per attempt).
  /// Each attempt is recorded in the rung trace with its attempt index.
  /// The absolute deadline and the cancel token still bound every retry.
  unsigned retries = 0;
  /// When non-null, the run executes under a metrics::ScopedCollect and the
  /// merged counter/span snapshot lands here when analyze() returns. Null
  /// (the default) keeps the whole metrics layer on its disarmed fast path.
  metrics::MetricsSink* metrics = nullptr;
  /// How the explicit rung acquires its GlobalMachine.
  using GlobalSource = std::function<GlobalMachine(const Network&, const Budget&, unsigned)>;
  /// When set, the explicit rung calls this instead of build_global — the
  /// snapshot layer's load/save/checkpoint orchestration plugs in here (see
  /// snapshot/persist.hpp) without the success layer growing a file-I/O
  /// dependency. The hook must be charge-equivalent to build_global: same
  /// budget charges, same machine, same counters (execution shape aside) —
  /// the decider ladder, the retry escalation, and every downstream
  /// predicate treat its result exactly like a fresh build.
  GlobalSource global_source;
};

/// Analyze net.process(p_index) under the options. Never throws on budget
/// exhaustion, allocation failure, or structural mismatch — those become
/// the report's status; only programmer errors propagate.
AnalysisReport analyze(const Network& net, std::size_t p_index,
                       const AnalyzeOptions& opt = {});

/// The report object shared by the observability document and the ccfspd
/// reply protocol: status, semantics, verdict, and the full rung trace.
/// Deterministic for count-governed runs — the engine is deterministic and
/// the shared caches are charge-equivalent, so two runs of the same input
/// under the same count limits render byte-identically (a deadline- or
/// cancellation-tripped rung is the only timing-dependent content).
std::string analysis_report_json(const AnalysisReport& report);

/// The versioned observability document emitted by `ccfsp_analyze
/// --metrics-json` (schema_version, the full counter catalogue, the span
/// tree, and — when `report` is non-null — the rung trace and verdict).
/// The schema is a contract: docs/observability.md documents it and
/// tests/integration/metrics_schema_test.cpp fails on drift.
std::string observability_document_json(const metrics::Snapshot& snap,
                                        const AnalysisReport* report);

}  // namespace ccfsp
