// Witness extraction: the predicates of Section 3 are existential over
// evolutions, and a validation tool should hand back the evolution itself —
// the schedule that deadlocks the distinguished process, or the cooperative
// schedule that drives it home. Witnesses come from shortest-path search on
// the explicit global machine, so they are optimal in step count.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "success/global.hpp"

namespace ccfsp {

struct WitnessStep {
  /// Index of the moving process, and the partner for a handshake (equal to
  /// `mover` for an internal tau move).
  std::uint32_t mover;
  std::uint32_t partner;
  /// Local states after the step, for rendering.
  std::vector<StateId> tuple_after;
};

struct Witness {
  std::vector<WitnessStep> steps;
  /// The final (stuck) global tuple.
  std::vector<StateId> final_tuple;
};

/// A shortest evolution to a global leaf with P *off* one of its leaves —
/// a potential-blocking witness (nullopt iff S_u holds). All witness
/// extractors build the explicit global machine and therefore throw
/// BudgetExceeded — never silently truncate — when the budget (or the
/// legacy max_states cap) runs out before G is complete.
std::optional<Witness> blocking_witness(const Network& net, std::size_t p_index,
                                       const Budget& budget);
std::optional<Witness> blocking_witness(const Network& net, std::size_t p_index,
                                        std::size_t max_states = 1u << 22);

/// A shortest evolution to a global leaf with P *on* one of its leaves —
/// a success-with-collaboration witness (nullopt iff not S_c).
std::optional<Witness> collab_witness(const Network& net, std::size_t p_index,
                                     const Budget& budget);
std::optional<Witness> collab_witness(const Network& net, std::size_t p_index,
                                      std::size_t max_states = 1u << 22);

/// Render a witness as one line per step: "Phil0 -- take0_0 --> Fork0" style
/// (the action name is recovered from the local states involved).
std::string format_witness(const Network& net, const Witness& witness);

/// A counterexample for the cyclic reading of potential blocking: either a
/// finite schedule into a globally stuck state (cycle empty), or a lasso —
/// a prefix followed by a repeatable cycle of non-P moves that starves P
/// forever.
struct LassoWitness {
  std::vector<WitnessStep> prefix;
  std::vector<WitnessStep> cycle;  // empty = plain stuck-state witness
  std::vector<StateId> pump_tuple;  // the tuple the cycle returns to

  bool is_starvation() const { return !cycle.empty(); }
};

/// nullopt iff the cyclic S_u holds for P (no stuck state, no non-P cycle
/// reachable).
std::optional<LassoWitness> cyclic_blocking_witness(const Network& net, std::size_t p_index,
                                                    const Budget& budget);
std::optional<LassoWitness> cyclic_blocking_witness(const Network& net, std::size_t p_index,
                                                    std::size_t max_states = 1u << 22);

std::string format_lasso(const Network& net, const LassoWitness& witness);

}  // namespace ccfsp
