// Lemmas 3 and 4 taken literally, at the semantic level: decide success
// predicates for the two-process view {P, Q} purely from Poss(P), Poss(Q)
// and Lang(Q), by walking the synchronized product of the two annotated
// possibility automata. No global tuple machine, no game — a third,
// independent decision path used to cross-validate the other two, and the
// clearest executable rendering of what the lemmas actually say:
//   S_c  (Lemma 3):   some s in Lang(Q) with (s, {}) in Poss(P);
//   ¬S_u (Lemma 4):   some s with (s,X) in Poss(P), (s,Y) in Poss(Q),
//                     X nonempty (acyclic reading) and X ∩ Y = {}.
// The Section 4 variants use the same formulas after Q has been composed
// with ||' (divergence leaves make Poss(Q) honest about tau-loops) and
// drop the X nonempty requirement.
#pragma once

#include "fsp/fsp.hpp"

namespace ccfsp {

/// Lemma 3. P and Q over the same Alphabet; all of P's symbols must be
/// shared with Q (the closed two-process view — compose the context first).
bool collab_by_possibilities(const Fsp& p, const Fsp& q);

/// Lemma 4 (acyclic reading: X must be nonempty — P stalled off-leaf).
bool blocking_by_possibilities(const Fsp& p, const Fsp& q);

/// Lemma 4' (cyclic reading: any mutually-refusing stable pair blocks,
/// including Y = {} from a divergence leaf). Pass Q built with ||'.
bool cyclic_blocking_by_possibilities(const Fsp& p, const Fsp& q);

}  // namespace ccfsp
