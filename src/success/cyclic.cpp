#include "success/cyclic.hpp"

#include <algorithm>
#include <stdexcept>

#include "algebra/compose.hpp"
#include "equiv/bisim.hpp"
#include "semantics/lang.hpp"
#include "success/baseline.hpp"
#include "success/context.hpp"
#include "success/game.hpp"

namespace ccfsp {

CyclicDecision cyclic_decide_explicit(const Network& net, std::size_t p_index,
                                      std::size_t max_states) {
  return cyclic_decide_explicit(net, p_index, Budget::with_states(max_states));
}

CyclicDecision cyclic_decide_explicit(const Network& net, std::size_t p_index,
                                      const Budget& budget) {
  CyclicDecision d;
  GlobalMachine g = build_global(net, budget);
  d.potential_blocking = potential_blocking_cyclic_on(net, g, p_index);
  d.success_collab = success_collab_cyclic_on(net, g, p_index);
  const Fsp& p = net.process(p_index);
  if (!p.has_tau_moves()) {
    Fsp q = compose_context(net, p_index, /*cyclic=*/true, &budget);
    d.max_intermediate_states = q.num_states();
    d.success_adversity = success_adversity(p, q, budget, /*cyclic_goal=*/true);
  }
  return d;
}

namespace {

Fsp reduce_cyclic(const Fsp& f, const CyclicHeuristicOptions& opt) {
  Fsp cur = f;
  if (opt.use_tau_compression) cur = compress_trivial_tau(cur);
  if (opt.use_bisimulation) cur = quotient_by_bisimulation(cur);
  return cur;
}

struct CyclicPipeline {
  const Network* net;
  const CyclicHeuristicOptions* opt;
  const Budget* budget = nullptr;
  std::vector<std::vector<std::size_t>> quotient_adj;
  std::vector<std::vector<std::size_t>> part_members;
  std::size_t max_states = 0;

  Fsp reduce_subtree(std::size_t part, std::size_t parent) {
    std::vector<const Fsp*> members;
    for (std::size_t i : part_members[part]) members.push_back(&net->process(i));
    Fsp acc = compose_all(members, /*cyclic=*/true, budget);
    for (std::size_t child : quotient_adj[part]) {
      if (child == parent) continue;
      Fsp child_red = reduce_subtree(child, part);
      acc = cyclic_compose(acc, child_red, budget);
    }
    max_states = std::max(max_states, acc.num_states());
    if (budget) budget->tick("cyclic_decide_tree");
    return reduce_cyclic(acc, *opt);
  }
};

}  // namespace

CyclicDecision cyclic_decide_tree(const Network& net, std::size_t p_index,
                                  const CyclicHeuristicOptions& opt, std::size_t max_states) {
  return cyclic_decide_tree(net, p_index, opt, Budget::with_states(max_states));
}

CyclicDecision cyclic_decide_tree(const Network& net, std::size_t p_index,
                                  const CyclicHeuristicOptions& opt, const Budget& budget) {
  KTreePartition partition = ktree_partition(net);

  CyclicPipeline pipe;
  pipe.net = &net;
  pipe.opt = &opt;
  pipe.budget = &budget;
  pipe.part_members = partition.parts;
  pipe.quotient_adj.assign(partition.parts.size(), {});
  for (auto [a, b] : partition.quotient_edges) {
    pipe.quotient_adj[a].push_back(b);
    pipe.quotient_adj[b].push_back(a);
  }

  const std::size_t root_part = partition.part_of(p_index);
  const Fsp& p = net.process(p_index);

  // Reduce everything except P itself into one context process. Start with
  // P's part-mates, then fold in each reduced subtree, then every stray
  // quotient component.
  std::vector<Fsp> pieces;
  for (std::size_t i : partition.parts[root_part]) {
    if (i != p_index) pieces.push_back(net.process(i));
  }
  for (std::size_t child : pipe.quotient_adj[root_part]) {
    pieces.push_back(pipe.reduce_subtree(child, root_part));
  }
  {
    std::vector<bool> seen(partition.parts.size(), false);
    std::vector<std::size_t> stack{root_part};
    seen[root_part] = true;
    while (!stack.empty()) {
      std::size_t v = stack.back();
      stack.pop_back();
      for (std::size_t w : pipe.quotient_adj[v]) {
        if (!seen[w]) {
          seen[w] = true;
          stack.push_back(w);
        }
      }
    }
    for (std::size_t part = 0; part < partition.parts.size(); ++part) {
      if (seen[part]) continue;
      pieces.push_back(pipe.reduce_subtree(part, static_cast<std::size_t>(-1)));
      std::vector<std::size_t> s2{part};
      seen[part] = true;
      while (!s2.empty()) {
        std::size_t v = s2.back();
        s2.pop_back();
        for (std::size_t w : pipe.quotient_adj[v]) {
          if (!seen[w]) {
            seen[w] = true;
            s2.push_back(w);
          }
        }
      }
    }
  }

  Fsp q = [&] {
    if (pieces.empty()) {
      throw std::logic_error("cyclic_decide_tree: network has no context for P");
    }
    std::vector<const Fsp*> ptrs;
    for (const auto& f : pieces) ptrs.push_back(&f);
    Fsp composed = compose_all(ptrs, /*cyclic=*/true, &budget);
    if (ptrs.size() == 1) composed = add_divergence_leaves(composed);
    return reduce_cyclic(composed, opt);
  }();
  pipe.max_states = std::max(pipe.max_states, q.num_states());

  CyclicDecision d;
  d.max_intermediate_states = pipe.max_states;

  // Final two-process analysis on {P, Q}: small thanks to the reductions.
  // Potential blocking: a reachable product state where P and Q are both
  // stable with disjoint offers (Q's divergence options are leaves by ||').
  {
    Fsp prod = reachable_product(p, q, &budget);
    // In the product, P's moves synchronize on all of P's symbols; blocking
    // states are those with no outgoing transitions at all, or where only Q
    // could move silently forever — the latter shows up as a tau-cycle,
    // which ||' already turned into a reachable leaf inside q.
    bool blocked = false;
    for (StateId s = 0; s < prod.num_states() && !blocked; ++s) {
      if (prod.is_leaf(s)) blocked = true;
    }
    if (!blocked) {
      // A reachable cycle of pure tau (Q churning alone) also strands P:
      // look for a cycle in the tau-only subgraph.
      Digraph tau_graph(prod.num_states());
      for (StateId s = 0; s < prod.num_states(); ++s) {
        for (const auto& t : prod.out(s)) {
          if (t.action == kTau) tau_graph.add_edge(s, t.target);
        }
      }
      blocked = tau_graph.has_cycle();
    }
    d.potential_blocking = blocked;
  }
  d.success_collab = lang_intersection_infinite(p, q);
  if (!p.has_tau_moves()) {
    d.success_adversity = success_adversity(p, q, budget, /*cyclic_goal=*/true);
  }
  return d;
}

}  // namespace ccfsp
