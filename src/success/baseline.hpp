// Baseline deciders for the three success predicates on the explicit global
// machine (Section 3.1 definitions applied literally, plus their Section 4
// cyclic generalizations). Exponential in the network size — these are the
// oracles and the benchmark foil for the structured algorithms. Every
// entry point is budget-governed: either it finishes on the complete G or
// it throws BudgetExceeded (never a verdict from a truncated machine).
#pragma once

#include "success/global.hpp"

namespace ccfsp {

/// S_c(P, Q): some reachable global leaf has P at one of its leaves.
bool success_collab_global(const Network& net, std::size_t p_index, const Budget& budget);
bool success_collab_global(const Network& net, std::size_t p_index,
                           std::size_t max_states = kDefaultMaxStates);

/// not S_u(P, Q): some reachable global leaf has P stranded off-leaf.
bool potential_blocking_global(const Network& net, std::size_t p_index, const Budget& budget);
bool potential_blocking_global(const Network& net, std::size_t p_index,
                               std::size_t max_states = kDefaultMaxStates);

/// Section 4 S_c for cyclic networks: P can move infinitely often with the
/// context's collaboration — a reachable global cycle containing a P-move.
bool success_collab_cyclic_global(const Network& net, std::size_t p_index,
                                  const Budget& budget);
bool success_collab_cyclic_global(const Network& net, std::size_t p_index,
                                  std::size_t max_states = kDefaultMaxStates);

/// Section 4 not S_u for cyclic networks: some evolution strands P forever —
/// a reachable globally stuck state, or a reachable cycle of non-P moves
/// (the context diverging or churning among itself while P waits).
bool potential_blocking_cyclic_global(const Network& net, std::size_t p_index,
                                      const Budget& budget);
bool potential_blocking_cyclic_global(const Network& net, std::size_t p_index,
                                      std::size_t max_states = kDefaultMaxStates);

// Same predicates on a machine the caller already built (and paid for).
// The degradation ladder builds G once and answers everything from it.
bool success_collab_on(const Network& net, const GlobalMachine& g, std::size_t p_index);
bool potential_blocking_on(const Network& net, const GlobalMachine& g, std::size_t p_index);
bool success_collab_cyclic_on(const Network& net, const GlobalMachine& g, std::size_t p_index);
bool potential_blocking_cyclic_on(const Network& net, const GlobalMachine& g,
                                  std::size_t p_index);

}  // namespace ccfsp
